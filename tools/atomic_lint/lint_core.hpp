// Atomic-ordering lint — the repo's atomics conventions, mechanically
// enforced (ISSUE 7, tentpole leg 2).
//
// Rules (each violation carries the kebab-case rule id):
//
//   implicit-seq-cst    an operation on a std::atomic (or one of the
//                       repo's ordering-parameterized wrappers: era_clock,
//                       head-policy words, dw128) that does not spell its
//                       memory order: bare `load()`, `store(v)`,
//                       `fetch_add(v)`, two-argument compare_exchange, ...
//   atomic-compound-op  `++`/`--`/`+=`/`=` on a declared std::atomic
//                       variable — sugar for a seq_cst RMW/store nobody
//                       audited. Spell fetch_add/store with an order.
//   unjustified-seq-cst a `memory_order_seq_cst` (or `__ATOMIC_SEQ_CST`)
//                       site with no `// seq_cst:` justification comment on
//                       the same line or within the 4 lines above it.
//                       seq_cst is the expensive order; every use must say
//                       which reordering it is paying to rule out.
//   fence-needs-order   atomic_thread_fence/atomic_signal_fence whose
//                       argument is not a literal memory_order constant.
//   consume-banned      memory_order_consume anywhere. Its specification
//                       is unimplementable (every compiler silently
//                       promotes it to acquire); write acquire.
//
// The linter is lexical, not a C++ parser: it strips comments and string
// literals, then pattern-matches call forms (`.op(` / `->op(`) and
// declaration forms (`atomic<...> name`). That is exact enough for this
// tree (and the unit tests pin each rule on known-good/known-bad
// snippets); it is not a general-purpose tool.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace atomic_lint {

struct violation {
  std::string file;
  unsigned line = 0;
  std::string rule;
  std::string detail;
};

namespace detail {

/// Source with comments / string / char literals blanked (newlines kept so
/// offsets map to the same lines), plus the comment text collected per
/// 1-based line for the justification rule.
struct stripped {
  std::string code;
  std::vector<std::string> comment_by_line;  // index 0 unused
};

inline bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

inline stripped strip(std::string_view src) {
  stripped out;
  out.code.assign(src.size(), ' ');
  std::size_t line_count = 1;
  for (char c : src) line_count += c == '\n';
  out.comment_by_line.assign(line_count + 1, std::string());

  enum class st { code, line_comment, block_comment, str, chr, raw_str };
  st state = st::code;
  std::string raw_delim;  // for raw strings: ")delim\""
  unsigned line = 1;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    if (c == '\n') {
      out.code[i] = '\n';
      ++line;
      if (state == st::line_comment) state = st::code;
      continue;
    }
    switch (state) {
      case st::code:
        if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
          state = st::line_comment;
        } else if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
          state = st::block_comment;
          ++i;
          if (i < src.size() && src[i] == '\n') ++line;
        } else if (c == 'R' && i + 1 < src.size() && src[i + 1] == '"' &&
                   (i == 0 || !ident_char(src[i - 1]))) {
          // R"delim( ... )delim"
          std::size_t j = i + 2;
          raw_delim = ")";
          while (j < src.size() && src[j] != '(') raw_delim += src[j++];
          raw_delim += '"';
          i = j;  // at '(' (or end)
          state = st::raw_str;
        } else if (c == '"') {
          state = st::str;
        } else if (c == '\'' && (i == 0 || !ident_char(src[i - 1]))) {
          state = st::chr;  // skip digit separators like 1'000
        } else {
          out.code[i] = c;
        }
        break;
      case st::line_comment:
        out.comment_by_line[line] += c;
        break;
      case st::block_comment:
        if (c == '*' && i + 1 < src.size() && src[i + 1] == '/') {
          state = st::code;
          ++i;
        } else {
          out.comment_by_line[line] += c;
        }
        break;
      case st::str:
        if (c == '\\') {
          ++i;
          if (i < src.size() && src[i] == '\n') ++line;
        } else if (c == '"') {
          state = st::code;
        }
        break;
      case st::chr:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = st::code;
        }
        break;
      case st::raw_str:
        if (c == ')' && src.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = st::code;
        }
        break;
    }
  }
  return out;
}

inline std::vector<std::size_t> line_starts(std::string_view code) {
  std::vector<std::size_t> starts{0, 0};  // lines are 1-based
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

inline unsigned line_of(const std::vector<std::size_t>& starts,
                        std::size_t pos) {
  unsigned lo = 1, hi = static_cast<unsigned>(starts.size() - 1);
  while (lo < hi) {
    const unsigned mid = (lo + hi + 1) / 2;
    if (starts[mid] <= pos) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

/// Span of a balanced parenthesized argument list starting at `open`
/// (which must index a '('). Returns the exclusive end (index past ')'),
/// or npos when unbalanced.
inline std::size_t match_paren(std::string_view code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '(') ++depth;
    if (code[i] == ')' && --depth == 0) return i + 1;
  }
  return std::string_view::npos;
}

inline bool args_name_an_order(std::string_view args) {
  if (args.find("memory_order") != std::string_view::npos ||
      args.find("__ATOMIC_") != std::string_view::npos) {
    return true;
  }
  // Ordering-forwarding wrappers (era_clock::load, the head-policy words):
  // the wrapper's own body passes the caller's order through a parameter
  // that must be named exactly `order` to count.
  std::size_t pos = 0;
  while ((pos = args.find("order", pos)) != std::string_view::npos) {
    const bool own_token =
        (pos == 0 || !ident_char(args[pos - 1])) &&
        (pos + 5 >= args.size() || !ident_char(args[pos + 5]));
    if (own_token) return true;
    pos += 5;
  }
  return false;
}

/// One-line context snippet for a violation.
inline std::string snippet(std::string_view src,
                           const std::vector<std::size_t>& starts,
                           unsigned line) {
  const std::size_t b = starts[line];
  std::size_t e = src.find('\n', b);
  if (e == std::string_view::npos) e = src.size();
  std::string s(src.substr(b, e - b));
  const std::size_t first = s.find_first_not_of(" \t");
  if (first != std::string::npos) s.erase(0, first);
  if (s.size() > 80) s = s.substr(0, 77) + "...";
  return s;
}

}  // namespace detail

/// Operations whose call sites must spell a memory order. `clear` /
/// `wait` / `notify_*` are omitted: the first collides with every
/// container in the standard library, and none of them appears in this
/// tree (the unit tests would catch one sneaking in via the seq_cst
/// justification rule the moment it was spelled explicitly).
inline const char* const kOrderedOps[] = {
    "load",          "store",
    "exchange",      "fetch_add",
    "fetch_sub",     "fetch_and",
    "fetch_or",      "fetch_xor",
    "test_and_set",  "compare_exchange_weak",
    "compare_exchange_strong",
};

/// Lint one translation unit. `file` is used only for labeling.
inline std::vector<violation> lint_source(std::string_view file,
                                          std::string_view src) {
  std::vector<violation> out;
  const detail::stripped s = detail::strip(src);
  const std::string_view code = s.code;
  const std::vector<std::size_t> starts = detail::line_starts(code);

  const auto add = [&](std::size_t pos, const char* rule, std::string msg) {
    const unsigned line = detail::line_of(starts, pos);
    out.push_back({std::string(file), line, rule,
                   msg + " | " + detail::snippet(src, starts, line)});
  };

  // --- implicit-seq-cst: `.op(...)` / `->op(...)` without an order ------
  for (const char* op : kOrderedOps) {
    const std::string_view opv{op};
    std::size_t pos = 0;
    while ((pos = code.find(opv, pos)) != std::string_view::npos) {
      const std::size_t at = pos;
      pos += opv.size();
      // Must be a member call: preceded by '.' or '->', followed by '('.
      const bool dot = at >= 1 && code[at - 1] == '.';
      const bool arrow = at >= 2 && code[at - 2] == '-' && code[at - 1] == '>';
      if (!dot && !arrow) continue;
      if (at + opv.size() >= code.size()) continue;
      if (detail::ident_char(code[at + opv.size()])) continue;  // longer id
      std::size_t open = at + opv.size();
      while (open < code.size() &&
             std::isspace(static_cast<unsigned char>(code[open])) != 0) {
        ++open;
      }
      if (open >= code.size() || code[open] != '(') continue;
      // `.load` as a member-pointer or declaration never parses this way;
      // a call through `std::mem_fn` would, but none exists in-tree.
      const std::size_t close = detail::match_paren(code, open);
      if (close == std::string_view::npos) continue;
      const std::string_view args = code.substr(open + 1, close - open - 2);
      if (!detail::args_name_an_order(args)) {
        add(at, "implicit-seq-cst",
            std::string("'") + op +
                "' call without an explicit memory order (defaults to "
                "seq_cst)");
      }
      pos = close;
    }
  }

  // --- unjustified-seq-cst / consume-banned -----------------------------
  for (const std::string_view needle :
       {std::string_view("memory_order_seq_cst"),
        std::string_view("__ATOMIC_SEQ_CST")}) {
    std::size_t pos = 0;
    while ((pos = code.find(needle, pos)) != std::string_view::npos) {
      const unsigned line = detail::line_of(starts, pos);
      bool justified = false;
      const unsigned lookback = line > 4 ? line - 4 : 1;
      for (unsigned l = lookback; l <= line && !justified; ++l) {
        justified = s.comment_by_line[l].find("seq_cst:") != std::string::npos;
      }
      if (!justified) {
        add(pos, "unjustified-seq-cst",
            "seq_cst with no '// seq_cst:' justification comment on the "
            "line or the 4 lines above");
      }
      pos += needle.size();
    }
  }
  for (const std::string_view needle :
       {std::string_view("memory_order_consume"),
        std::string_view("__ATOMIC_CONSUME")}) {
    std::size_t pos = 0;
    while ((pos = code.find(needle, pos)) != std::string_view::npos) {
      add(pos, "consume-banned",
          "memory_order_consume is banned (compilers promote it to acquire; "
          "write acquire)");
      pos += needle.size();
    }
  }

  // --- fence-needs-order ------------------------------------------------
  for (const std::string_view fence :
       {std::string_view("atomic_thread_fence"),
        std::string_view("atomic_signal_fence")}) {
    std::size_t pos = 0;
    while ((pos = code.find(fence, pos)) != std::string_view::npos) {
      const std::size_t at = pos;
      pos += fence.size();
      if (at >= 1 && detail::ident_char(code[at - 1])) continue;
      std::size_t open = at + fence.size();
      while (open < code.size() &&
             std::isspace(static_cast<unsigned char>(code[open])) != 0) {
        ++open;
      }
      if (open >= code.size() || code[open] != '(') continue;
      const std::size_t close = detail::match_paren(code, open);
      if (close == std::string_view::npos) continue;
      std::string arg(code.substr(open + 1, close - open - 2));
      std::erase_if(arg, [](char c) {
        return std::isspace(static_cast<unsigned char>(c)) != 0;
      });
      const bool literal = arg == "std::memory_order_relaxed" ||
                           arg == "std::memory_order_acquire" ||
                           arg == "std::memory_order_release" ||
                           arg == "std::memory_order_acq_rel" ||
                           arg == "std::memory_order_seq_cst" ||
                           arg == "memory_order_relaxed" ||
                           arg == "memory_order_acquire" ||
                           arg == "memory_order_release" ||
                           arg == "memory_order_acq_rel" ||
                           arg == "memory_order_seq_cst";
      if (!literal) {
        add(at, "fence-needs-order",
            "fence must name a literal memory_order constant, got '" + arg +
                "'");
      }
    }
  }

  // --- atomic-compound-op -----------------------------------------------
  // Collect variables declared `...atomic<...> name` (covers std::atomic
  // members, locals, and padded<std::atomic<..>> once the inner match
  // fires). Then flag ++/--/compound/plain assignment on those names.
  //
  // Heuristic limits, chosen to make false positives structurally
  // impossible at the cost of missing some true ones:
  //   - pointers/references to atomics are not registered (assigning the
  //     pointer is not an atomic op);
  //   - a name that is *also* declared with a non-atomic type anywhere in
  //     the file (`Node* next`, `std::uint64_t lo = ...`) is dropped
  //     entirely — the lexical pass cannot scope-resolve it;
  //   - an occurrence that is itself a declaration (preceded by another
  //     identifier, `*`, `&` or `>`) is never flagged.
  std::vector<std::string> atomics;
  {
    std::size_t pos = 0;
    while ((pos = code.find("atomic<", pos)) != std::string_view::npos) {
      if (pos >= 1 && detail::ident_char(code[pos - 1]) &&
          !(pos >= 5 && code.compare(pos - 5, 5, "std::") == 0)) {
        ++pos;
        continue;  // some_other_atomic<...>
      }
      // Balance the template argument list.
      std::size_t i = pos + 6;  // at '<'
      int depth = 0;
      for (; i < code.size(); ++i) {
        if (code[i] == '<') ++depth;
        if (code[i] == '>' && --depth == 0) break;
      }
      pos = i;
      if (i >= code.size()) break;
      ++i;
      // Skip further template closers / whitespace of an enclosing
      // `padded<std::atomic<T>>`-style declaration; a `*` or `&` means the
      // declared entity is a pointer/reference to an atomic, whose
      // assignment is not an atomic operation — skip those.
      bool ptr_or_ref = false;
      while (i < code.size() &&
             (code[i] == '>' || code[i] == '&' || code[i] == '*' ||
              std::isspace(static_cast<unsigned char>(code[i])) != 0)) {
        ptr_or_ref = ptr_or_ref || code[i] == '&' || code[i] == '*';
        ++i;
      }
      if (ptr_or_ref) continue;
      if (i >= code.size() || !detail::ident_char(code[i])) continue;
      std::size_t e = i;
      while (e < code.size() && detail::ident_char(code[e])) ++e;
      const std::string name(code.substr(i, e - i));
      if (name == "const" || name == "constexpr" || name == "static") {
        continue;  // qualifier between type and name: rare, skip
      }
      if (std::find(atomics.begin(), atomics.end(), name) == atomics.end()) {
        atomics.push_back(name);
      }
    }
  }
  for (const std::string& name : atomics) {
    // Pass 1: a name also declared with a NON-atomic type anywhere in the
    // file (`Node* head_`, `std::uint64_t lo = ...`) is ambiguous to a
    // lexical pass — drop it entirely rather than risk flagging the plain
    // variable.
    bool ambiguous = false;
    for (std::size_t pos = 0;
         (pos = code.find(name, pos)) != std::string_view::npos;
         pos += name.size()) {
      if (pos >= 1 && detail::ident_char(code[pos - 1])) continue;
      const std::size_t after = pos + name.size();
      if (after < code.size() && detail::ident_char(code[after])) continue;
      std::size_t b = pos;
      while (b >= 1 &&
             std::isspace(static_cast<unsigned char>(code[b - 1])) != 0) {
        --b;
      }
      const bool decl_like =
          b >= 1 && (detail::ident_char(code[b - 1]) || code[b - 1] == '*' ||
                     code[b - 1] == '&' || code[b - 1] == '>');
      if (decl_like) {
        const std::size_t from = pos > 64 ? pos - 64 : 0;
        if (code.substr(from, pos - from).find("atomic<") ==
            std::string_view::npos) {
          ambiguous = true;
          break;
        }
      }
    }
    if (ambiguous) continue;

    std::size_t pos = 0;
    while ((pos = code.find(name, pos)) != std::string_view::npos) {
      const std::size_t at = pos;
      pos += name.size();
      if (at >= 1 && detail::ident_char(code[at - 1])) continue;
      if (pos < code.size() && detail::ident_char(code[pos])) continue;
      // The declaration itself (preceded by the type) is never a use.
      std::size_t b = at;
      while (b >= 1 &&
             std::isspace(static_cast<unsigned char>(code[b - 1])) != 0) {
        --b;
      }
      if (b >= 1 && (detail::ident_char(code[b - 1]) || code[b - 1] == '*' ||
                     code[b - 1] == '&' || code[b - 1] == '>')) {
        continue;
      }
      // Prefix ++x / --x (`b` already points past any leading whitespace).
      if (b >= 2 && ((code[b - 1] == '+' && code[b - 2] == '+') ||
                     (code[b - 1] == '-' && code[b - 2] == '-'))) {
        add(at, "atomic-compound-op",
            "'" + name + "' is std::atomic: prefix ++/-- is a seq_cst RMW; "
            "spell fetch_add/fetch_sub with an order");
        continue;
      }
      // Postfix / compound / assignment.
      std::size_t a = pos;
      while (a < code.size() &&
             std::isspace(static_cast<unsigned char>(code[a])) != 0) {
        ++a;
      }
      if (a + 1 < code.size()) {
        const char c0 = code[a], c1 = code[a + 1];
        const bool inc = (c0 == '+' && c1 == '+') || (c0 == '-' && c1 == '-');
        const bool compound =
            (c0 == '+' || c0 == '-' || c0 == '|' || c0 == '&' || c0 == '^') &&
            c1 == '=';
        const bool assign = c0 == '=' && c1 != '=';
        if (inc || compound || assign) {
          add(at, "atomic-compound-op",
              "'" + name +
                  "' is std::atomic: operator" + std::string(1, c0) +
                  (c1 == '=' ? "=" : std::string(1, c1)) +
                  " is a seq_cst RMW/store; spell the operation with an "
                  "order");
        }
      }
    }
  }

  return out;
}

}  // namespace atomic_lint
