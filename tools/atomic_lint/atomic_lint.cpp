// atomic_lint — enforce the repo's atomics conventions (see lint_core.hpp
// for the rule list). Runs in CI and as a CTest over src/, bench/,
// examples/, tools/ and tests/; exits 1 when the tree has violations.
//
//   atomic_lint [--json report.json] path...
//
// Paths may be files or directories (recursed, {.hpp,.h,.cpp,.cc} only).
// The JSON report is machine-readable: an array of
// {file, line, rule, detail} objects.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "atomic_lint: --json needs a path\n");
        return 2;
      }
      json_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: atomic_lint [--json report.json] path...\n");
      return 0;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "atomic_lint: no paths given (try --help)\n");
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (auto it = fs::recursive_directory_iterator(root, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && lintable(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      std::fprintf(stderr, "atomic_lint: no such file or directory: %s\n",
                   root.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<atomic_lint::violation> all;
  for (const fs::path& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "atomic_lint: cannot read %s\n",
                   f.string().c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    for (atomic_lint::violation& v :
         atomic_lint::lint_source(f.string(), text)) {
      all.push_back(std::move(v));
    }
  }

  for (const atomic_lint::violation& v : all) {
    std::fprintf(stderr, "%s:%u: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.detail.c_str());
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "[\n";
    for (std::size_t i = 0; i < all.size(); ++i) {
      const atomic_lint::violation& v = all[i];
      out << "  {\"file\": \"" << json_escape(v.file) << "\", \"line\": "
          << v.line << ", \"rule\": \"" << json_escape(v.rule)
          << "\", \"detail\": \"" << json_escape(v.detail) << "\"}"
          << (i + 1 < all.size() ? "," : "") << "\n";
    }
    out << "]\n";
  }

  std::map<std::string, unsigned> by_rule;
  for (const atomic_lint::violation& v : all) ++by_rule[v.rule];
  std::fprintf(stderr, "atomic_lint: %zu file(s), %zu violation(s)",
               files.size(), all.size());
  for (const auto& [rule, n] : by_rule) {
    std::fprintf(stderr, " %s=%u", rule.c_str(), n);
  }
  std::fprintf(stderr, "\n");
  return all.empty() ? 0 : 1;
}
