// Figure 10b: trimming with a small slot cap (k <= 32). trim() replaces
// per-operation leave+enter, which alleviates head contention once the
// thread count exceeds the slot count.
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  using namespace hyaline::harness;
  return run_figure({.name = "fig10b-trim",
                     .kind = figure_kind::trim,
                     .insert_pct = 50,
                     .remove_pct = 50,
                     .get_pct = 0,
                     .slot_cap = 4},  // paper sweeps 1..72 with k <= 32
                    argc, argv);
}
