// Figure 10b: trimming with a small slot cap (k <= 32). trim() replaces
// per-operation leave+enter, which alleviates head contention once the
// thread count exceeds the slot count.
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  using namespace hyaline::harness;
  cli_options defaults;
  defaults.threads = {1, 2, 4, 8};  // paper sweeps 1..72 with k <= 32
  const cli_options o = parse_cli(argc, argv, defaults);
  run_trim("fig10b-trim", o, /*slot_cap=*/4);
  return 0;
}
