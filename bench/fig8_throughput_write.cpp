// Figure 8 (a-d): throughput of the four structures under the
// write-intensive workload (50% insert, 50% delete), sweeping threads.
// Reports both Mops/sec and unreclaimed objects per operation; the
// companion fig9 binary runs the same sweep emphasizing the latter.
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  using namespace hyaline::harness;
  cli_options defaults;
  defaults.threads = {1, 2, 4, 8};  // paper sweeps 1..144 on 72 cores
  const cli_options o = parse_cli(argc, argv, defaults);
  run_matrix("fig8-write-throughput", o, 50, 50, 0, /*llsc=*/false);
  return 0;
}
