// Figure 8 (a-d): throughput of the four structures under the
// write-intensive workload (50% insert, 50% delete), sweeping threads.
// Paper sweeps 1..144 on 72 cores; defaults here are CI-scale.
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  using namespace hyaline::harness;
  return run_figure({.name = "fig8-write-throughput",
                     .insert_pct = 50,
                     .remove_pct = 50,
                     .get_pct = 0},
                    argc, argv);
}
