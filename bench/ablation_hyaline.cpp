// Ablations for the design choices DESIGN.md §6 calls out:
//   - batch size (the paper fixes >= 64; §3.2 ties it to retire cost),
//   - slot count k relative to the thread count (§3.3, §5),
//   - head policy (packed single-word FAA vs true double-width CAS vs the
//     emulated LL/SC of §4.4).
// Workload: hash map, write-heavy, as in Fig. 8c/10.
#include <cstdio>

#include "ds/michael_hashmap.hpp"
#include "harness/cli.hpp"
#include "harness/workload.hpp"
#include "smr/hyaline.hpp"

namespace {

using namespace hyaline;
using namespace hyaline::harness;

template <class D>
void run_point(const char* series, const char* variant, unsigned threads,
               const cli_options& o, const config& c) {
  D dom(c);
  ds::michael_hashmap<D> map(dom);
  workload_config cfg;
  cfg.threads = threads;
  cfg.insert_pct = 50;
  cfg.remove_pct = 50;
  cfg.get_pct = 0;
  cfg.duration_ms = o.duration_ms;
  cfg.repeats = o.repeats;
  cfg.key_range = o.key_range;
  cfg.prefill = o.prefill;
  cfg.seed = o.seed;
  cfg.lat_sample = o.lat_sample;
  const auto r = run_workload(dom, map, cfg);
  print_csv_row(series, "hashmap", variant, threads, 0, 0, 0, r.mops,
                r.unreclaimed_avg, static_cast<double>(r.unreclaimed_peak),
                r.p50_ns, r.p99_ns, static_cast<double>(r.max_ns),
                r.lag_p50_ns, r.lag_p99_ns,
                static_cast<double>(r.lag_max_ns));
}

}  // namespace

int main(int argc, char** argv) {
  cli_options defaults;
  defaults.threads = {2, 4};
  const cli_options o = parse_cli(argc, argv, defaults);
  print_csv_header("ablation-hyaline", o.seed, o.lat_sample);

  for (unsigned t : o.threads) {
    for (std::size_t batch : {16, 64, 256, 1024}) {
      char label[64];
      std::snprintf(label, sizeof label, "batch=%zu", batch);
      run_point<domain>("ablation-batch", label, t, o,
                        config{.slots = 8, .batch_min = batch});
    }
    for (std::size_t k : {1, 2, 8, 32, 128}) {
      char label[64];
      std::snprintf(label, sizeof label, "k=%zu", k);
      run_point<domain>("ablation-slots", label, t, o,
                        config{.slots = k, .batch_min = 64});
    }
    run_point<domain>("ablation-head", "packed64", t, o,
                      config{.slots = 8});
    run_point<domain_dw>("ablation-head", "dwcas128", t, o,
                         config{.slots = 8});
    run_point<domain_llsc>("ablation-head", "llsc-emul", t, o,
                           config{.slots = 8});
    run_point<domain_s>("ablation-era-freq", "freq=16", t, o,
                        config{.slots = 8, .era_freq = 16});
    run_point<domain_s>("ablation-era-freq", "freq=64", t, o,
                        config{.slots = 8, .era_freq = 64});
    run_point<domain_s>("ablation-era-freq", "freq=1024", t, o,
                        config{.slots = 8, .era_freq = 1024});
  }
  return 0;
}
