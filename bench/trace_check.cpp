// CI validator for the observability artifacts:
//
//   trace_check TRACE.json TIMELINE.json [--spike-scheme Epoch]
//               [--bounded-scheme Hyaline-1S] [--ratio 2]
//               [--min-ms 25] [--min-max-ms 75] [--tail-ms 32]
//               [--min-tail 0.01]
//
// TRACE.json is a `--trace` export from fig_timeline: it must parse as
// Chrome trace-event JSON (the dialect Perfetto loads), carry a
// non-empty "traceEvents" array, and an "otherData" block with the clock
// calibration and per-thread drop accounting — the parts a human debugs
// from, so CI notices when a writer change silently drops them.
//
// TIMELINE.json is the same run's --json trajectory. The checked
// property is the paper's robustness story measured in time units, via
// three assertions chosen for stability (a gate that cries wolf gets
// deleted):
//   1. The spike scheme's lag MAX reaches --min-max-ms: some node
//      demonstrably waited out the stall, so the fault is visible in the
//      lag attribution at all (fault-free runs sit far below this).
//   2. The spike scheme's lag p99 clears --min-ms: the tail is populated,
//      so a dead lag pipeline (all-zero histograms) cannot pass.
//   3. Tail MASS contrast: the fraction of frees that lagged past
//      --tail-ms must be >= --min-tail for the spike scheme and >=
//      --ratio x the bounded scheme's fraction. Mass, not a percentile:
//      a robust scheme bounds HOW MANY nodes a stall can delay, not how
//      long the unlucky ones wait, so its p99 rides a rank cliff (the
//      bounded backlog is a run-varying ~1% of total frees) while its
//      tail fraction is smooth.
//
// Exit codes: 0 = all checks pass, 1 = a check failed, 2 = usage/load.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/json.hpp"

namespace {

namespace json = hyaline::harness::json;

[[noreturn]] void usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s TRACE.json TIMELINE.json [--spike-scheme s]\n"
               "          [--bounded-scheme s] [--ratio x] [--min-ms x]\n"
               "          [--min-max-ms x] [--tail-ms x] [--min-tail x]\n",
               prog);
  std::exit(2);
}

bool check_trace(const std::string& path) {
  json::jvalue root;
  std::string err;
  if (!json::load_file(path, root, err)) {
    std::fprintf(stderr, "trace: %s\n", err.c_str());
    return false;
  }
  const json::jvalue* events = json::get(root, "traceEvents");
  if (events == nullptr || !events->is_arr()) {
    std::fprintf(stderr, "trace: %s: no 'traceEvents' array\n",
                 path.c_str());
    return false;
  }
  if (events->arr->empty()) {
    std::fprintf(stderr,
                 "trace: %s: 'traceEvents' is empty — tracing was on but "
                 "nothing was recorded\n",
                 path.c_str());
    return false;
  }
  // Every record must at least have a phase; duration slices and instants
  // both do. A malformed writer shows up here before it shows up as a
  // Perfetto import error nobody runs in CI.
  std::size_t named = 0;
  for (const json::jvalue& e : *events->arr) {
    std::string ph;
    std::string ferr;
    if (!e.is_obj() || !json::want_str(e, "ph", ph, ferr)) {
      std::fprintf(stderr, "trace: %s: event without a 'ph' phase field\n",
                   path.c_str());
      return false;
    }
    if (json::get(e, "name") != nullptr) ++named;
  }
  const json::jvalue* other = json::get(root, "otherData");
  if (other == nullptr || !other->is_obj()) {
    std::fprintf(stderr, "trace: %s: no 'otherData' metadata block\n",
                 path.c_str());
    return false;
  }
  std::string clock;
  std::string err2;
  double tpn = 0;
  if (!json::want_str(*other, "clock", clock, err2) ||
      !json::want_num(*other, "ticks_per_ns", tpn, err2)) {
    std::fprintf(stderr, "trace: %s: otherData: %s\n", path.c_str(),
                 err2.c_str());
    return false;
  }
  const json::jvalue* threads = json::get(*other, "threads");
  if (threads == nullptr || !threads->is_arr() || threads->arr->empty()) {
    std::fprintf(stderr,
                 "trace: %s: otherData lacks the per-thread drop "
                 "accounting ('threads' array)\n",
                 path.c_str());
    return false;
  }
  std::printf("trace: %s: %zu events (%zu named), %zu threads, clock=%s\n",
              path.c_str(), events->arr->size(), named,
              threads->arr->size(), clock.c_str());
  return true;
}

struct lag_point {
  double p99 = 0;
  double max = 0;
  double count = 0;
  std::vector<double> buckets;  // log2 histogram, bucket b = [2^(b-1), 2^b)
};

/// Pull a scheme's lag figures out of a fig_timeline --json file; the
/// timeline kind emits exactly one point per scheme series.
bool lag_of(const json::jvalue& root, const char* scheme, lag_point* out) {
  const json::jvalue* series = json::get(root, "series");
  if (series == nullptr || !series->is_arr()) return false;
  for (const json::jvalue& s : *series->arr) {
    std::string name;
    std::string err;
    if (!s.is_obj() || !json::want_str(s, "scheme", name, err)) continue;
    if (name != scheme) continue;
    const json::jvalue* points = json::get(s, "points");
    if (points == nullptr || !points->is_arr() || points->arr->empty()) {
      return false;
    }
    const json::jvalue& pt = points->arr->front();
    if (!json::want_num(pt, "lag_p99_ns", out->p99, err) ||
        !json::want_num(pt, "lag_max_ns", out->max, err) ||
        !json::want_num(pt, "lag_count", out->count, err)) {
      return false;
    }
    const json::jvalue* buckets = json::get(pt, "lag_bucket");
    if (buckets == nullptr || !buckets->is_arr()) return false;
    for (const json::jvalue& b : *buckets->arr) {
      if (!b.is_num()) return false;
      out->buckets.push_back(b.num);
    }
    return true;
  }
  return false;
}

/// Fraction of all frees whose retire->free lag was at least min_ns
/// (rounded up to the next bucket boundary — bucket b's low edge is
/// 2^(b-1) ns).
double tail_frac(const lag_point& lp, double min_ns) {
  if (lp.count <= 0) return 0;
  double tail = 0;
  for (std::size_t b = 1; b < lp.buckets.size(); ++b) {
    if (std::ldexp(1.0, static_cast<int>(b) - 1) >= min_ns) {
      tail += lp.buckets[b];
    }
  }
  return tail / lp.count;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, timeline_path;
  std::string spike = "Epoch";
  std::string bounded = "Hyaline-1S";
  double ratio = 2.0;
  double min_ms = 25.0;
  double min_max_ms = 75.0;
  double tail_ms = 32.0;
  double min_tail = 0.01;
  for (int i = 1; i < argc; ++i) {
    auto need_val = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--spike-scheme") == 0) {
      spike = need_val("--spike-scheme");
    } else if (std::strcmp(argv[i], "--bounded-scheme") == 0) {
      bounded = need_val("--bounded-scheme");
    } else if (std::strcmp(argv[i], "--ratio") == 0) {
      ratio = std::strtod(need_val("--ratio"), nullptr);
    } else if (std::strcmp(argv[i], "--min-ms") == 0) {
      min_ms = std::strtod(need_val("--min-ms"), nullptr);
    } else if (std::strcmp(argv[i], "--min-max-ms") == 0) {
      min_max_ms = std::strtod(need_val("--min-max-ms"), nullptr);
    } else if (std::strcmp(argv[i], "--tail-ms") == 0) {
      tail_ms = std::strtod(need_val("--tail-ms"), nullptr);
    } else if (std::strcmp(argv[i], "--min-tail") == 0) {
      min_tail = std::strtod(need_val("--min-tail"), nullptr);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(argv[0]);
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage(argv[0]);
    } else if (trace_path.empty()) {
      trace_path = argv[i];
    } else if (timeline_path.empty()) {
      timeline_path = argv[i];
    } else {
      usage(argv[0]);
    }
  }
  if (trace_path.empty() || timeline_path.empty()) usage(argv[0]);

  bool ok = check_trace(trace_path);

  json::jvalue root;
  std::string err;
  if (!json::load_file(timeline_path, root, err)) {
    std::fprintf(stderr, "timeline: %s\n", err.c_str());
    return 2;
  }
  lag_point spike_lag, bounded_lag;
  if (!lag_of(root, spike.c_str(), &spike_lag)) {
    std::fprintf(stderr,
                 "timeline: %s: no lag point for scheme '%s'\n",
                 timeline_path.c_str(), spike.c_str());
    return 2;
  }
  if (!lag_of(root, bounded.c_str(), &bounded_lag)) {
    std::fprintf(stderr,
                 "timeline: %s: no lag point for scheme '%s'\n",
                 timeline_path.c_str(), bounded.c_str());
    return 2;
  }
  const double spike_frac = tail_frac(spike_lag, tail_ms * 1e6);
  const double bounded_frac = tail_frac(bounded_lag, tail_ms * 1e6);
  std::printf("lag: %s p99 %.2f ms max %.2f ms tail>=%.0fms %.2f%% | "
              "%s p99 %.2f ms max %.2f ms tail>=%.0fms %.2f%%\n",
              spike.c_str(), spike_lag.p99 / 1e6, spike_lag.max / 1e6,
              tail_ms, spike_frac * 100, bounded.c_str(),
              bounded_lag.p99 / 1e6, bounded_lag.max / 1e6, tail_ms,
              bounded_frac * 100);
  if (spike_lag.max < min_max_ms * 1e6) {
    std::fprintf(stderr,
                 "FAIL: %s lag max %.2f ms < %.0f ms — no node waited "
                 "out the stall, so the fault never reached the lag "
                 "attribution\n",
                 spike.c_str(), spike_lag.max / 1e6, min_max_ms);
    ok = false;
  }
  if (spike_lag.p99 < min_ms * 1e6) {
    std::fprintf(stderr,
                 "FAIL: %s lag p99 %.2f ms < %.0f ms — the lag tail is "
                 "unpopulated (dead histogram plumbing?)\n",
                 spike.c_str(), spike_lag.p99 / 1e6, min_ms);
    ok = false;
  }
  if (spike_frac < min_tail) {
    std::fprintf(stderr,
                 "FAIL: only %.3f%% of %s frees lagged past %.0f ms "
                 "(want >= %.1f%%) — the stall barely registered\n",
                 spike_frac * 100, spike.c_str(), tail_ms,
                 min_tail * 100);
    ok = false;
  }
  if (spike_frac < ratio * bounded_frac) {
    std::fprintf(stderr,
                 "FAIL: %s tail mass (%.3f%%) is not %.1fx %s's "
                 "(%.3f%%) — the robust/non-robust contrast is gone\n",
                 spike.c_str(), spike_frac * 100, ratio, bounded.c_str(),
                 bounded_frac * 100);
    ok = false;
  }
  if (ok) std::printf("trace_check: all checks passed\n");
  return ok ? 0 : 1;
}
