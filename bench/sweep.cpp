// The canonical perf-trajectory sweep: one fixed-seed run over a pinned
// lineup of (cell, structure, scheme) points, written as a BENCH_<n>.json
// trajectory file (schema: src/harness/trajectory.hpp). Successive
// sessions commit successive BENCH files; bench/bench_diff compares any
// two with noise-aware thresholds, so the repo carries its own
// performance history instead of anecdotes.
//
// The lineup is deliberately small and stable — write-heavy and
// read-heavy set cells, a list cell, both containers, and one
// fault-injected cell — because trajectory points are only useful if the
// same points exist in every file. New cells may be appended; renaming or
// dropping one orphans the historical series.
//
//   sweep [--out path] [--threads n] [--duration ms] [--repeats n]
//         [--seed n] [--fastpath on|off] [--shards n|auto]
//         [--schemes a,b,...]
//
// --fastpath off disables the per-op fast path (slab allocator, guard
// entry amortization, sharded retire) so a single binary can measure its
// own before/after on the same machine.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/topology.hpp"
#include "harness/provenance.hpp"
#include "harness/registry.hpp"
#include "lab/fault_plan.hpp"
#include "smr/core/slab_alloc.hpp"

namespace {

using namespace hyaline;
using harness::scheme_params;
using harness::scheme_registry;
using harness::structure_kind;
using harness::workload_config;
using harness::workload_result;

struct sweep_options {
  std::string out = "BENCH.json";
  unsigned threads = 2;
  unsigned duration_ms = 200;
  unsigned repeats = 1;
  std::uint64_t seed = 0x5eed;
  bool fastpath = true;
  unsigned shards = 0;
  std::vector<std::string> schemes;  // empty = full lineup
};

[[noreturn]] void usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--out path] [--threads n] [--duration ms]\n"
               "          [--repeats n] [--seed n] [--fastpath on|off]\n"
               "          [--shards n|auto] [--schemes a,b,...]\n",
               prog);
  std::exit(2);
}

sweep_options parse_args(int argc, char** argv) {
  sweep_options o;
  for (int i = 1; i < argc; ++i) {
    auto need_val = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--out") == 0) {
      o.out = need_val("--out");
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      o.threads = static_cast<unsigned>(
          std::strtoul(need_val("--threads"), nullptr, 10));
      if (o.threads == 0) usage(argv[0]);
    } else if (std::strcmp(argv[i], "--duration") == 0) {
      o.duration_ms = static_cast<unsigned>(
          std::strtoul(need_val("--duration"), nullptr, 10));
      if (o.duration_ms == 0) usage(argv[0]);
    } else if (std::strcmp(argv[i], "--repeats") == 0) {
      o.repeats = static_cast<unsigned>(
          std::strtoul(need_val("--repeats"), nullptr, 10));
      if (o.repeats == 0) usage(argv[0]);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      o.seed = std::strtoull(need_val("--seed"), nullptr, 0);
    } else if (std::strcmp(argv[i], "--fastpath") == 0) {
      const char* v = need_val("--fastpath");
      if (std::strcmp(v, "on") == 0) {
        o.fastpath = true;
      } else if (std::strcmp(v, "off") == 0) {
        o.fastpath = false;
      } else {
        std::fprintf(stderr, "--fastpath wants on|off\n");
        usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      const char* v = need_val("--shards");
      if (std::strcmp(v, "auto") == 0) {
        o.shards = default_retire_shards();
      } else {
        char* end = nullptr;
        const unsigned long n = std::strtoul(v, &end, 10);
        if (end == v || *end != '\0') usage(argv[0]);
        o.shards = static_cast<unsigned>(n);
      }
    } else if (std::strcmp(argv[i], "--schemes") == 0) {
      std::string cur;
      for (const char* p = need_val("--schemes");; ++p) {
        if (*p == ',' || *p == '\0') {
          if (!cur.empty()) o.schemes.push_back(cur);
          cur.clear();
          if (*p == '\0') break;
        } else {
          cur.push_back(*p);
        }
      }
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage(argv[0]);
    }
  }
  return o;
}

bool scheme_wanted(const sweep_options& o, const std::string& name) {
  if (o.schemes.empty()) return true;
  for (const auto& s : o.schemes) {
    if (s == name) return true;
  }
  return false;
}

/// One lineup cell: a named workload shape bound to a registry structure.
struct lineup_cell {
  const char* name;
  const char* structure;
  structure_kind kind;
  unsigned insert_pct, remove_pct, get_pct;  // set cells only
  std::uint64_t key_range;                   // set cells only
  std::size_t prefill;
  const char* faults;  // fault spec, "" = none (duration placeholder %u)
};

// The pinned lineup. Key ranges are contention-scaled for sub-second
// cells (the full paper ranges need --full durations to leave the cache
// warmup regime); what matters for trajectory tracking is that they never
// change between sessions.
constexpr lineup_cell kCells[] = {
    // Write-heavy set: the cell the per-op fast path targets first
    // (every op allocates or retires).
    {"set-write", "hashmap", structure_kind::set, 50, 50, 0, 4096, 2048, ""},
    // Read-mostly set: guard-entry cost dominates.
    {"set-read", "hashmap", structure_kind::set, 5, 5, 90, 4096, 2048, ""},
    // List under writes: long traversals, protect()-heavy.
    {"list-write", "list", structure_kind::set, 50, 50, 0, 512, 256, ""},
    // Containers: retire on every successful pop.
    {"msqueue", "msqueue", structure_kind::container, 0, 0, 0, 0, 256, ""},
    {"stack", "stack", structure_kind::container, 0, 0, 0, 0, 256, ""},
    // Fault-injected cell: one worker stalls in-guard for the first half
    // of the run; mops and unreclaimed_peak together track how the
    // scheme's robustness story evolves.
    {"set-stall", "hashmap", structure_kind::set, 50, 50, 0, 4096, 2048,
     "stall:0@0+%ums"},
};

std::string fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

struct out_point {
  std::string cell, structure, scheme;
  unsigned threads;
  double mops;
  double unreclaimed_peak;
  bool external;
};

}  // namespace

int main(int argc, char** argv) {
  const sweep_options o = parse_args(argc, argv);

  // Resolve the fast path before the first node is allocated: the slab
  // contract forbids toggling with live slab nodes, so the switch is
  // flipped exactly once, here.
  if (o.fastpath) {
    smr::core::slab::set_enabled(true);
  } else {
    smr::core::slab::set_enabled(false);
  }
  const unsigned shards = o.fastpath ? o.shards : 0;
  const std::uint32_t entry_burst = o.fastpath ? 64 : 0;

  const scheme_registry& reg = scheme_registry::instance();
  std::vector<out_point> points;
  int status = 0;

  for (const auto& scheme : reg.schemes()) {
    // The SMR lineup is the nine core schemes; external baselines (the
    // coarse-mutex cells) ride along labeled, never compared as SMR.
    if (!scheme.caps.core_lineup && !scheme.caps.external_baseline) continue;
    if (!scheme_wanted(o, scheme.name)) continue;

    for (const lineup_cell& lc : kCells) {
      // External baselines register their own structures; map the set and
      // container cells onto them so the floor shows up beside every
      // comparable workload shape.
      const char* structure = lc.structure;
      if (scheme.caps.external_baseline) {
        // The stall cell tracks SMR robustness (unreclaimed growth under a
        // stalled reader); immediate reclamation has nothing to defer.
        if (lc.faults[0] != '\0') continue;
        structure = lc.kind == structure_kind::set ? "lockedset"
                                                   : "lockedqueue";
        if (std::strcmp(lc.name, "list-write") == 0) continue;
        if (std::strcmp(lc.name, "stack") == 0) continue;  // FIFO only
      }
      harness::runner_fn run = scheme.runner_for(structure);
      if (run == nullptr) continue;  // HP/HE x bonsai-class exclusions

      workload_config cfg;
      cfg.threads = o.threads;
      cfg.duration_ms = o.duration_ms;
      cfg.repeats = o.repeats;
      cfg.seed = o.seed;
      cfg.prefill = lc.prefill;
      if (lc.kind == structure_kind::set) {
        cfg.key_range = lc.key_range;
        cfg.insert_pct = lc.insert_pct;
        cfg.remove_pct = lc.remove_pct;
        cfg.get_pct = lc.get_pct;
      }

      lab::fault_plan plan;
      if (lc.faults[0] != '\0') {
        char spec[64];
        std::snprintf(spec, sizeof spec, lc.faults, o.duration_ms / 2);
        std::string err;
        auto parsed = lab::parse_fault_plan(spec, &err);
        if (!parsed.has_value() ||
            !(plan = std::move(*parsed)).validate_tids(o.threads, &err)) {
          std::fprintf(stderr, "internal fault spec '%s': %s\n", spec,
                       err.c_str());
          return 2;
        }
        cfg.faults = &plan;
      }

      scheme_params p;
      p.max_threads = plan.lease_headroom(o.threads);
      p.retire_shards = shards;
      p.entry_burst = entry_burst;
      p.ack_threshold = 512;  // scaled to short runs, as in fig10a

      const workload_result r = run(p, cfg);
      if (r.retired != r.freed) {
        std::fprintf(stderr,
                     "%s x %s [%s]: leak — retired %llu, freed %llu; "
                     "numbers recorded but untrustworthy\n",
                     scheme.name.c_str(), structure, lc.name,
                     static_cast<unsigned long long>(r.retired),
                     static_cast<unsigned long long>(r.freed));
        status = 4;
      }
      points.push_back({lc.name, structure, scheme.name, o.threads, r.mops,
                        static_cast<double>(r.unreclaimed_peak),
                        scheme.caps.external_baseline});
      std::fprintf(stderr, "%-10s %-10s x %-14s %8s mops  peak=%llu\n",
                   lc.name, structure, scheme.name.c_str(),
                   fixed(r.mops, 3).c_str(),
                   static_cast<unsigned long long>(r.unreclaimed_peak));
    }
  }

  if (points.empty()) {
    std::fprintf(stderr, "no lineup points matched --schemes\n");
    return 2;
  }

  std::string j = "{\n";
  j += "  \"bench\": \"sweep\",\n";
  j += "  \"version\": 1,\n";
  j += "  \"seed\": " + std::to_string(o.seed) + ",\n";
  j += "  " + harness::provenance_json() + ",\n";
  j += "  \"config\": {\"fastpath\": \"" +
       std::string(o.fastpath ? "on" : "off") +
       "\", \"shards\": " + std::to_string(shards) +
       ", \"duration_ms\": " + std::to_string(o.duration_ms) +
       ", \"repeats\": " + std::to_string(o.repeats) +
       ", \"threads\": " + std::to_string(o.threads) + "},\n";
  j += "  \"cells\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const out_point& pt = points[i];
    j += "    {\"cell\": \"" + pt.cell + "\", \"structure\": \"" +
         pt.structure + "\", \"scheme\": \"" + pt.scheme +
         "\", \"threads\": " + std::to_string(pt.threads) +
         ", \"mops\": " + fixed(pt.mops, 4) +
         ", \"unreclaimed_peak\": " + fixed(pt.unreclaimed_peak, 0) +
         ", \"external\": " + (pt.external ? "true" : "false") + "}";
    j += i + 1 == points.size() ? "\n" : ",\n";
  }
  j += "  ]\n}\n";

  std::FILE* f = std::fopen(o.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", o.out.c_str());
    return 2;
  }
  std::fputs(j.c_str(), f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "write error on '%s'\n", o.out.c_str());
    return 2;
  }
  std::fprintf(stderr, "wrote %zu points to %s\n", points.size(),
               o.out.c_str());
  return status;
}
