// Figures 15/16: PowerPC (emulated LL/SC) evaluation, read-mostly mix.
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  using namespace hyaline::harness;
  return run_figure({.name = "fig15-16-llsc-read",
                     .insert_pct = 5,
                     .remove_pct = 5,
                     .get_pct = 90,
                     .llsc = true},
                    argc, argv);
}
