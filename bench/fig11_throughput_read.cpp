// Figure 11 (a-d): throughput under the read-mostly workload (90% get,
// 10% put; put split evenly into insert/remove to hold size steady).
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  using namespace hyaline::harness;
  cli_options defaults;
  defaults.threads = {1, 2, 4, 8};
  const cli_options o = parse_cli(argc, argv, defaults);
  run_matrix("fig11-read-throughput", o, 5, 5, 90, /*llsc=*/false);
  return 0;
}
