// Figure 11 (a-d): throughput under the read-mostly workload (90% get,
// 10% put; put split evenly into insert/remove to hold size steady).
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  using namespace hyaline::harness;
  return run_figure({.name = "fig11-read-throughput",
                     .insert_pct = 5,
                     .remove_pct = 5,
                     .get_pct = 90},
                    argc, argv);
}
