// Figure 9 (a-d): average retired-but-unreclaimed objects per operation,
// write-intensive workload.
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  using namespace hyaline::harness;
  return run_figure({.name = "fig9-write-unreclaimed",
                     .insert_pct = 50,
                     .remove_pct = 50,
                     .get_pct = 0},
                    argc, argv);
}
