// Figure 9 (a-d): average retired-but-unreclaimed objects per operation,
// write-intensive workload. Higher sampling density than the fig8 run.
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  using namespace hyaline::harness;
  cli_options defaults;
  defaults.threads = {1, 2, 4, 8};
  const cli_options o = parse_cli(argc, argv, defaults);
  run_matrix("fig9-write-unreclaimed", o, 50, 50, 0, /*llsc=*/false);
  return 0;
}
