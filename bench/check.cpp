// Linearizability oracle: sweep every registered scheme×structure cell
// with history recording on and check each cell's history against its
// semantics (set register per key, FIFO/LIFO token matching). Exits
// non-zero with a printed counterexample on any violation; `--faults`
// composes as in fig_timeline so stalls/churn/exit histories are checked
// too, and `--mutate drop-validate|skip-protect` self-tests the oracle by
// injecting a real reclamation bug it must catch.
//
//   ./check                                 # all cells, ~5s
//   ./check --schemes HP --structure msqueue --duration 200
//   ./check --faults stall:1@10ms+20ms --counterexample cx.txt
//   ./check --mutate skip-protect           # MUST exit non-zero
#include "check/check_driver.hpp"

int main(int argc, char** argv) {
  return hyaline::check::run_check(argc, argv);
}
