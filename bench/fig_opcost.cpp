// Per-op cost breakdown: where the nanoseconds of one SMR'd operation go.
//
// The throughput figures report whole-workload mops — useful for trends,
// useless for attribution. This bench times the four primitives the per-op
// fast path targets, per scheme, in isolation:
//
//   guard    — enter+leave pair (amortized entry shows up here)
//   protect  — one protect() under a held guard (hazard publication)
//   alloc    — node allocate+free pair through the hooked_alloc seam
//              (the slab allocator shows up here)
//   retire   — guard + allocate + retire, inclusive of the amortized
//              scan/reclaim work retire triggers (subtract the guard and
//              alloc rows to isolate retire proper)
//
// Single-threaded by design: cross-thread interference is the throughput
// figures' job; this one answers "what does the uncontended path cost".
//
//   fig_opcost [--iters n] [--fastpath on|off] [--shards n]
//              [--schemes a,b,...] [--json path]
//
// CSV (scheme,op,ns_per_op) to stdout; --json adds a machine-readable
// file with the usual provenance block.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/provenance.hpp"
#include "harness/schemes.hpp"
#include "smr/core/slab_alloc.hpp"

namespace {

using namespace hyaline;
using harness::scheme_params;
using harness::scheme_traits;

struct opcost_options {
  std::uint64_t iters = 200000;
  bool fastpath = true;
  unsigned shards = 0;
  std::vector<std::string> schemes;
  std::string json;
};

[[noreturn]] void usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--iters n] [--fastpath on|off] [--shards n]\n"
               "          [--schemes a,b,...] [--json path]\n",
               prog);
  std::exit(2);
}

opcost_options parse_args(int argc, char** argv) {
  opcost_options o;
  for (int i = 1; i < argc; ++i) {
    auto need_val = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--iters") == 0) {
      o.iters = std::strtoull(need_val("--iters"), nullptr, 10);
      if (o.iters == 0) usage(argv[0]);
    } else if (std::strcmp(argv[i], "--fastpath") == 0) {
      const char* v = need_val("--fastpath");
      if (std::strcmp(v, "on") == 0) {
        o.fastpath = true;
      } else if (std::strcmp(v, "off") == 0) {
        o.fastpath = false;
      } else {
        usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      o.shards = static_cast<unsigned>(
          std::strtoul(need_val("--shards"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--schemes") == 0) {
      std::string cur;
      for (const char* p = need_val("--schemes");; ++p) {
        if (*p == ',' || *p == '\0') {
          if (!cur.empty()) o.schemes.push_back(cur);
          cur.clear();
          if (*p == '\0') break;
        } else {
          cur.push_back(*p);
        }
      }
    } else if (std::strcmp(argv[i], "--json") == 0) {
      o.json = need_val("--json");
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage(argv[0]);
    }
  }
  return o;
}

bool scheme_wanted(const opcost_options& o, const char* name) {
  if (o.schemes.empty()) return true;
  for (const auto& s : o.schemes) {
    if (s == name) return true;
  }
  return false;
}

/// Keep `v` alive past the optimizer without a memory barrier.
inline void escape(const void* v) { asm volatile("" : : "r"(v) : ); }

struct row {
  const char* scheme;
  const char* op;
  double ns;
};

using clock_type = std::chrono::steady_clock;

double ns_per(clock_type::time_point t0, clock_type::time_point t1,
              std::uint64_t iters) {
  const double ns =
      std::chrono::duration_cast<std::chrono::duration<double, std::nano>>(
          t1 - t0)
          .count();
  return ns / static_cast<double>(iters);
}

template <class D>
void measure(const opcost_options& o, std::vector<row>& rows) {
  const char* name = scheme_traits<D>::name;
  if (!scheme_wanted(o, name)) return;

  scheme_params p;
  p.max_threads = 4;
  p.retire_shards = o.fastpath ? o.shards : 0;
  p.entry_burst = o.fastpath ? 64 : 0;
  auto dom = scheme_traits<D>::make(p);
  using guard_t = typename D::guard;
  struct pnode : D::node {
    std::uint64_t v = 0;
  };

  // guard enter+leave
  {
    const auto t0 = clock_type::now();
    for (std::uint64_t i = 0; i < o.iters; ++i) {
      guard_t g(*dom);
      escape(&g);
    }
    const auto t1 = clock_type::now();
    rows.push_back({name, "guard", ns_per(t0, t1, o.iters)});
  }

  // protect under a held guard
  {
    pnode* n = new pnode();
    dom->on_alloc(n);
    std::atomic<typename D::node*> src{n};
    {
      guard_t g(*dom);
      const auto t0 = clock_type::now();
      for (std::uint64_t i = 0; i < o.iters; ++i) {
        auto pp = g.protect(src);
        escape(pp.get());
      }
      const auto t1 = clock_type::now();
      rows.push_back({name, "protect", ns_per(t0, t1, o.iters)});
      g.retire(static_cast<pnode*>(src.load(std::memory_order_relaxed)));
    }
  }

  // node allocate+free pair (the hooked_alloc seam: debug hook -> slab ->
  // heap)
  {
    const auto t0 = clock_type::now();
    for (std::uint64_t i = 0; i < o.iters; ++i) {
      pnode* x = new pnode();
      escape(x);
      delete x;
    }
    const auto t1 = clock_type::now();
    rows.push_back({name, "alloc", ns_per(t0, t1, o.iters)});
  }

  // guard + alloc + retire, amortized reclaim included
  {
    const auto t0 = clock_type::now();
    for (std::uint64_t i = 0; i < o.iters; ++i) {
      guard_t g(*dom);
      pnode* x = new pnode();
      dom->on_alloc(x);
      g.retire(x);
    }
    const auto t1 = clock_type::now();
    rows.push_back({name, "retire", ns_per(t0, t1, o.iters)});
  }

  dom->drain();
  const auto retired = dom->counters().retired.load(std::memory_order_relaxed);
  const auto freed = dom->counters().freed.load(std::memory_order_relaxed);
  if (retired != freed) {
    std::fprintf(stderr, "%s: leak after drain — retired %llu, freed %llu\n",
                 name, static_cast<unsigned long long>(retired),
                 static_cast<unsigned long long>(freed));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const opcost_options o = parse_args(argc, argv);
  smr::core::slab::set_enabled(o.fastpath);

  std::vector<row> rows;
  measure<smr::leaky_domain>(o, rows);
  measure<smr::ebr_domain>(o, rows);
  measure<domain>(o, rows);
  measure<domain_1>(o, rows);
  measure<domain_s>(o, rows);
  measure<domain_1s>(o, rows);
  measure<smr::ibr_domain>(o, rows);
  measure<smr::he_domain>(o, rows);
  measure<smr::hp_domain>(o, rows);

  if (rows.empty()) {
    std::fprintf(stderr, "no schemes matched --schemes\n");
    return 2;
  }

  std::printf("# fig_opcost\nscheme,op,ns_per_op\n");
  for (const row& r : rows) {
    std::printf("%s,%s,%.2f\n", r.scheme, r.op, r.ns);
  }

  if (!o.json.empty()) {
    std::string j = "{\n  \"bench\": \"opcost\",\n  \"version\": 1,\n";
    j += "  " + harness::provenance_json() + ",\n";
    j += "  \"config\": {\"iters\": " + std::to_string(o.iters) +
         ", \"fastpath\": \"" + (o.fastpath ? "on" : "off") +
         "\", \"shards\": " + std::to_string(o.fastpath ? o.shards : 0) +
         "},\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "    {\"scheme\": \"%s\", \"op\": \"%s\", \"ns\": "
                    "%.2f}%s\n",
                    rows[i].scheme, rows[i].op, rows[i].ns,
                    i + 1 == rows.size() ? "" : ",");
      j += buf;
    }
    j += "  ]\n}\n";
    std::FILE* f = std::fopen(o.json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open '%s'\n", o.json.c_str());
      return 2;
    }
    std::fputs(j.c_str(), f);
    std::fclose(f);
  }
  return 0;
}
