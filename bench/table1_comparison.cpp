// Table 1: comparison of SMR schemes.
//
// The qualitative columns (robustness, transparency, reclamation cost
// class, API) are printed as a table; the quantitative claims behind
// "performance" are measured with google-benchmark micro-benchmarks:
//   - enter_leave: cost of an empty critical section,
//   - protect: cost of one pointer acquisition inside a section,
//   - retire: amortized cost of retiring a node (allocation excluded from
//     the scheme cost by pre-allocating).
// Also covers the head-policy ablation DESIGN.md §6 calls out: Hyaline's
// enter/leave under packed-64, 128-bit CAS, and emulated LL/SC heads.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "harness/schemes.hpp"

namespace {

using namespace hyaline;
using namespace hyaline::harness;

template <class D>
void bm_enter_leave(benchmark::State& state) {
  scheme_params p;
  p.max_threads = 4;
  p.slots = 8;
  auto dom = scheme_traits<D>::make(p);
  for (auto _ : state) {
    typename D::guard g(*dom);
    benchmark::DoNotOptimize(&g);
  }
}

template <class D>
void bm_protect(benchmark::State& state) {
  scheme_params p;
  p.max_threads = 4;
  p.slots = 8;
  auto dom = scheme_traits<D>::make(p);
  struct pnode : D::node {};
  pnode target;
  std::atomic<pnode*> src{&target};
  typename D::guard g(*dom);
  for (auto _ : state) {
    // Includes the slot lease/release for pointer-publication schemes —
    // that RAII round-trip is the honest per-acquisition cost of API v2.
    benchmark::DoNotOptimize(g.protect(src).get());
  }
}

template <class D>
void bm_retire(benchmark::State& state) {
  scheme_params p;
  p.max_threads = 4;
  p.slots = 8;
  auto dom = scheme_traits<D>::make(p);
  struct pnode : D::node {};
  for (auto _ : state) {
    state.PauseTiming();
    auto* n = new pnode;
    dom->on_alloc(n);
    state.ResumeTiming();
    typename D::guard g(*dom);
    g.retire(n);  // typed retire: the pnode deleter rides on the node
  }
}

#define REGISTER_SCHEME(D)                                      \
  BENCHMARK(bm_enter_leave<D>)->Name("enter_leave/" #D);        \
  BENCHMARK(bm_protect<D>)->Name("protect/" #D);                \
  BENCHMARK(bm_retire<D>)->Name("retire/" #D)

REGISTER_SCHEME(smr::leaky_domain);
REGISTER_SCHEME(smr::ebr_domain);
REGISTER_SCHEME(smr::hp_domain);
REGISTER_SCHEME(smr::he_domain);
REGISTER_SCHEME(smr::ibr_domain);
REGISTER_SCHEME(domain);
REGISTER_SCHEME(domain_dw);
REGISTER_SCHEME(domain_llsc);
REGISTER_SCHEME(domain_s);
REGISTER_SCHEME(domain_1);
REGISTER_SCHEME(domain_1s);

void print_qualitative_table() {
  std::puts(
      "# Table 1: comparison of Hyaline with existing SMR approaches\n"
      "# (qualitative columns from the paper; performance columns are the\n"
      "#  micro-benchmarks below and the fig8/fig11 harnesses)\n"
      "scheme      based-on      robust  transparent  reclam.   usage/API\n"
      "HP          -             yes     no (retire)  O(mn)     harder\n"
      "Epoch       RCU           no      no (retire)  O(n)      very simple\n"
      "HE          EBR,HP        yes     no (retire)  O(mn)     harder\n"
      "IBR         EBR,HP        yes     no (retire)  O(n)      simple (2GE)\n"
      "Hyaline     -             no      yes          ~O(1)     very simple\n"
      "Hyaline-1   -             no      almost       O(1)      very simple\n"
      "Hyaline-S   Hyaline,      yes*    yes          ~O(1)     simple\n"
      "            part. HE/IBR          (*adaptive slots, Sec. 4.3)\n"
      "Hyaline-1S  Hyaline-1,    yes     almost       O(1)      simple\n"
      "            part. HE/IBR");
}

}  // namespace

int main(int argc, char** argv) {
  print_qualitative_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
