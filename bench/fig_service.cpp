// Service scenario: a sharded cache under a simulated million-user swarm
// with SLO gating.
//
// Each scheme in the line-up gets a fresh shard_router (one SMR domain
// per shard) driven by an open-loop tenant swarm (svc/service.hpp):
// Zipfian keys, Poisson or fixed arrivals, coordinated-omission-safe
// latency, optional connection churn, and a --tenant-script of bad
// tenants (hot-key hammering, scan storms, stall-in-guard). The --slo
// assertions (svc/slo.hpp) are then evaluated over the victim latency
// histogram and the aggregate reclamation time series; any gated
// violation exits 6, a reclamation leak exits 3, usage errors exit 2.
//
//   ./fig_service --tenants 16 --svc-shards 4 --churn 200 \
//       --tenant-script 'stall:3@600ms+300ms,hot:7@700ms+300ms' \
//       --slo 'p99=50ms,unreclaimed<4x,recovery<1s' --json SERVICE.json
//
// CSV rows use the standard figure columns (structure = "cache",
// threads = tenants, stalled = tenants with a scripted stall window);
// the SLO verdicts go to stderr and into the --json report.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "harness/figures.hpp"
#include "harness/provenance.hpp"
#include "harness/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "svc/service.hpp"
#include "svc/slo.hpp"
#include "svc/tenant.hpp"

namespace {

using namespace hyaline;
using namespace hyaline::svc;

constexpr const char* kFigure = "fig-service";
/// Robust (Hyaline-S, HE, HP) alongside the epoch-style baselines whose
/// unbounded growth under a stall the report is meant to contrast.
constexpr const char* kDefaultLineup[] = {"Epoch", "Hyaline", "Hyaline-S",
                                          "HE", "HP"};
constexpr const char* kDefaultSlo = "p99=100ms,unreclaimed<8x,recovery<2s";

struct scheme_report {
  std::string scheme;
  bool robust = false;
  service_result res;
  std::vector<slo_verdict> verdicts;
};

double timeline_mean_unreclaimed(const std::vector<lab::sample_point>& pts) {
  if (pts.empty()) return 0;
  double sum = 0;
  for (const lab::sample_point& p : pts) {
    sum += static_cast<double>(p.unreclaimed);
  }
  return sum / static_cast<double>(pts.size());
}

bool write_json(const std::string& path, const harness::cli_options& o,
                const service_config& cfg, const slo_spec& slo,
                const std::vector<scheme_report>& reports) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "--json: cannot open '%s' for writing\n",
                 path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"figure\": \"%s\",\n", kFigure);
  // None of the spec grammars admit quote or backslash characters, so
  // the strings embed verbatim (same stance as the --faults echo in
  // harness/figures.cpp).
  std::fprintf(
      f,
      "  \"config\": {\"shards\": %u, \"tenants\": %u, \"rate_ops_s\": "
      "%.0f, \"arrival\": \"%s\", \"zipf_theta\": %.3f, \"key_range\": "
      "%llu, \"prefill\": %zu, \"mix\": {\"insert\": %u, \"remove\": %u, "
      "\"get\": %u}, \"duration_ms\": %u, \"sample_ms\": %u, "
      "\"churn_ms\": %u, \"tenant_script\": \"%s\", \"slo\": \"%s\", "
      "\"seed\": %llu, \"retire_shards\": %u, %s},\n",
      cfg.shards, cfg.tenants, cfg.rate_ops_s,
      cfg.arrival == arrival_kind::fixed ? "fixed" : "poisson",
      cfg.zipf_theta, static_cast<unsigned long long>(cfg.key_range),
      cfg.prefill, cfg.insert_pct, cfg.remove_pct, cfg.get_pct,
      cfg.duration_ms, cfg.sample_ms, cfg.churn_period_ms,
      cfg.script != nullptr ? cfg.script->spec.c_str() : "",
      slo.text.c_str(), static_cast<unsigned long long>(o.seed), o.shards,
      harness::provenance_json().c_str());
  std::fprintf(f, "  \"series\": [");
  bool first = true;
  for (const scheme_report& rep : reports) {
    const service_result& r = rep.res;
    std::fprintf(f,
                 "%s\n    {\"scheme\": \"%s\", \"robust\": %s, "
                 "\"mops\": %.6f, \"ops\": %llu, \"retired\": %llu, "
                 "\"freed\": %llu, \"unreclaimed_peak\": %llu,\n",
                 first ? "" : ",", rep.scheme.c_str(),
                 rep.robust ? "true" : "false", r.mops,
                 static_cast<unsigned long long>(r.ops),
                 static_cast<unsigned long long>(r.retired),
                 static_cast<unsigned long long>(r.freed),
                 static_cast<unsigned long long>(r.unreclaimed_peak));
    std::fprintf(f,
                 "     \"victim_latency\": {\"ops\": %llu, \"p50_ns\": "
                 "%.0f, \"p90_ns\": %.0f, \"p99_ns\": %.0f, \"max_ns\": "
                 "%llu},\n",
                 static_cast<unsigned long long>(r.victim_hist.total()),
                 r.victim_hist.percentile(0.50),
                 r.victim_hist.percentile(0.90),
                 r.victim_hist.percentile(0.99),
                 static_cast<unsigned long long>(r.victim_hist.max()));
    std::fprintf(f,
                 "     \"retire_free_lag\": {\"count\": %llu, \"p50_ns\": "
                 "%.0f, \"p99_ns\": %.0f, \"max_ns\": %llu},\n",
                 static_cast<unsigned long long>(r.obs.lag_count),
                 r.lag_p50_ns, r.lag_p99_ns,
                 static_cast<unsigned long long>(r.lag_max_ns));
    std::fprintf(f,
                 "     \"counters\": {\"scans\": %llu, \"steals\": %llu, "
                 "\"rearms\": %llu, \"finalizes\": %llu, "
                 "\"era_advances\": %llu, \"tid_acquires\": %llu},\n",
                 static_cast<unsigned long long>(r.obs.scans),
                 static_cast<unsigned long long>(r.obs.steals),
                 static_cast<unsigned long long>(r.obs.rearms),
                 static_cast<unsigned long long>(r.obs.finalizes),
                 static_cast<unsigned long long>(r.obs.era_advances),
                 static_cast<unsigned long long>(r.obs.tid_acquires));
    std::fprintf(f,
                 "     \"scripted_latency\": {\"ops\": %llu, \"p99_ns\": "
                 "%.0f},\n",
                 static_cast<unsigned long long>(r.scripted_hist.total()),
                 r.scripted_hist.percentile(0.99));
    std::fprintf(f, "     \"shards\": [");
    for (std::size_t i = 0; i < r.shards.size(); ++i) {
      const shard_snapshot& s = r.shards[i];
      std::fprintf(f,
                   "%s{\"gets\": %llu, \"hits\": %llu, \"puts\": %llu, "
                   "\"dels\": %llu, \"scans\": %llu, \"retired\": %llu, "
                   "\"freed\": %llu}",
                   i == 0 ? "" : ", ",
                   static_cast<unsigned long long>(s.gets),
                   static_cast<unsigned long long>(s.hits),
                   static_cast<unsigned long long>(s.puts),
                   static_cast<unsigned long long>(s.dels),
                   static_cast<unsigned long long>(s.scans),
                   static_cast<unsigned long long>(s.retired),
                   static_cast<unsigned long long>(s.freed));
    }
    std::fprintf(f, "],\n     \"slo\": [");
    for (std::size_t i = 0; i < rep.verdicts.size(); ++i) {
      const slo_verdict& v = rep.verdicts[i];
      const char* kind = "";
      switch (v.item.kind) {
        case slo_kind::p50: kind = "p50"; break;
        case slo_kind::p90: kind = "p90"; break;
        case slo_kind::p99: kind = "p99"; break;
        case slo_kind::max_latency: kind = "max"; break;
        case slo_kind::unreclaimed: kind = "unreclaimed"; break;
        case slo_kind::recovery: kind = "recovery"; break;
      }
      std::fprintf(f,
                   "%s{\"item\": \"%s\", \"gated\": %s, \"checked\": %s, "
                   "\"pass\": %s, \"measured\": %.1f, \"limit\": %.1f}",
                   i == 0 ? "" : ", ", kind, v.gated ? "true" : "false",
                   v.checked ? "true" : "false", v.pass ? "true" : "false",
                   std::isinf(v.measured) ? -1.0 : v.measured, v.limit);
    }
    std::fprintf(f, "],\n     \"timeline\": [");
    bool first_sample = true;
    for (const lab::sample_point& p : r.timeline) {
      std::fprintf(f,
                   "%s\n      {\"t_ms\": %.2f, \"mops\": %.6f, \"ops\": "
                   "%llu, \"retired\": %llu, \"freed\": %llu, "
                   "\"unreclaimed\": %llu, \"active_threads\": %u}",
                   first_sample ? "" : ",", p.t_ms, p.mops,
                   static_cast<unsigned long long>(p.ops),
                   static_cast<unsigned long long>(p.retired),
                   static_cast<unsigned long long>(p.freed),
                   static_cast<unsigned long long>(p.unreclaimed),
                   p.active_threads);
      first_sample = false;
    }
    std::fprintf(f, "\n    ]}");
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "--json: error writing '%s'\n", path.c_str());
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::figure_spec spec{.name = kFigure,
                                  .kind = harness::figure_kind::service,
                                  .insert_pct = 5,
                                  .remove_pct = 5,
                                  .get_pct = 90,
                                  .default_sample_ms = 20,
                                  .default_duration_ms = 2000};
  harness::cli_options defaults;
  defaults.duration_ms = spec.default_duration_ms;
  harness::cli_options o = harness::parse_cli(argc, argv, defaults);
  if (!harness::validate_kind_options(spec, o)) return 2;

  service_config cfg;
  cfg.shards = o.svc_shards != 0 ? o.svc_shards : 4;
  cfg.tenants = o.tenants != 0 ? o.tenants : 16;
  // Default offered load: enough per tenant that the SLO windows hold a
  // meaningful sample count, low enough that CI boxes are not saturated.
  cfg.rate_ops_s =
      o.rate_ops_s >= 0 ? o.rate_ops_s : 3000.0 * cfg.tenants;
  cfg.arrival =
      o.arrival == "fixed" ? arrival_kind::fixed : arrival_kind::poisson;
  cfg.zipf_theta = o.skew >= 0 ? o.skew : 0.99;
  cfg.key_range = o.key_range;
  cfg.prefill = o.prefill;
  if (!o.mix.empty()) {
    cfg.insert_pct = o.mix[0];
    cfg.remove_pct = o.mix[1];
    cfg.get_pct = o.mix[2];
  } else {
    cfg.insert_pct = spec.insert_pct;
    cfg.remove_pct = spec.remove_pct;
    cfg.get_pct = spec.get_pct;
  }
  cfg.duration_ms = o.duration_ms;
  cfg.sample_ms = o.sample_ms;
  cfg.seed = o.seed;
  cfg.churn_period_ms = o.churn_ms;

  tenant_plan script;
  if (!o.tenant_script.empty()) {
    std::string err;
    auto parsed = parse_tenant_plan(o.tenant_script, &err);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "--tenant-script: %s\n", err.c_str());
      return 2;
    }
    script = std::move(*parsed);
    if (!script.validate(cfg.tenants, &err)) {
      std::fprintf(stderr, "--tenant-script: %s\n", err.c_str());
      return 2;
    }
    if (script.last_end_ms() >= cfg.duration_ms) {
      std::fprintf(stderr,
                   "--tenant-script: the last window ends at %.0fms but "
                   "the run ends at %ums; extend --duration so recovery "
                   "is measurable\n",
                   script.last_end_ms(), cfg.duration_ms);
      return 2;
    }
    cfg.script = &script;
  }

  std::string slo_err;
  auto slo = parse_slo(o.slo.empty() ? kDefaultSlo : o.slo, &slo_err);
  if (!slo.has_value()) {
    std::fprintf(stderr, "--slo: %s\n", slo_err.c_str());
    return 2;
  }

  // Line-up: the contrast set by default, any service-capable scheme by
  // name. Unknown names fail loudly before any output.
  std::vector<std::string> lineup;
  if (o.schemes.empty()) {
    for (const char* s : kDefaultLineup) lineup.emplace_back(s);
  } else {
    lineup = o.schemes;
  }
  for (const std::string& name : lineup) {
    if (find_service_runner(name) != nullptr) continue;
    std::string valid;
    for (const std::string& s : service_schemes()) {
      if (!valid.empty()) valid += ", ";
      valid += s;
    }
    std::fprintf(stderr,
                 "unknown or unsupported scheme '%s' for the service "
                 "scenario; valid here: %s\n",
                 name.c_str(), valid.c_str());
    return 2;
  }

  unsigned stall_tenants = 0;
  for (unsigned t = 0; t < cfg.tenants; ++t) {
    for (const behavior_event& e : script.events) {
      if (e.tenant == t && e.kind == behavior_kind::stall_in_guard) {
        ++stall_tenants;
        break;
      }
    }
  }

  // Lag tracking is always on here: the retire->free lag columns are the
  // per-shard blast-radius story told in time units, which is what this
  // report exists to show. Tracing flips on before any shard domain
  // exists so no ring registration races a worker.
  obs::set_lag_tracking(true);
  if (!o.trace.empty()) obs::set_tracing(true);

  harness::print_csv_header(kFigure, o.seed);
  const harness::scheme_registry& reg =
      harness::scheme_registry::instance();
  std::vector<scheme_report> reports;
  std::vector<obs::metric_series> metric_rows;
  bool violated = false;
  for (const std::string& name : lineup) {
    harness::scheme_params p;
    p.retire_shards = o.shards;
    p.ack_threshold = 512;  // scaled to short runs, as in fig10a
    const harness::scheme_registry::entry* e = reg.find(name);
    scheme_report rep;
    rep.scheme = name;
    rep.robust = e != nullptr && e->caps.robust;
    rep.res = find_service_runner(name)(p, cfg);
    const service_result& r = rep.res;

    if (r.retired != r.freed) {
      std::fprintf(stderr,
                   "%s: leak — retired %llu, freed %llu after shutdown\n",
                   name.c_str(), static_cast<unsigned long long>(r.retired),
                   static_cast<unsigned long long>(r.freed));
      return 3;
    }

    slo_inputs in;
    in.latency = &r.victim_hist;
    in.timeline = &r.timeline;
    in.disturb_start_ms = script.first_start_ms();
    in.disturb_end_ms = script.last_end_ms();
    in.duration_ms = cfg.duration_ms;
    in.robust = rep.robust;
    rep.verdicts = evaluate_slo(*slo, in);

    const shard_totals totals = aggregate(r.shards);
    std::fprintf(stderr,
                 "%s: %.3f Mops/s over %u shards (imbalance %.2f), "
                 "victim p99 %.0fus over %llu ops\n",
                 name.c_str(), r.mops, cfg.shards, totals.imbalance,
                 r.victim_hist.percentile(0.99) / 1e3,
                 static_cast<unsigned long long>(r.victim_hist.total()));
    for (const slo_verdict& v : rep.verdicts) {
      std::fprintf(stderr, "%s:   %s\n", name.c_str(),
                   format_verdict(v).c_str());
    }
    if (slo_violated(rep.verdicts)) violated = true;

    harness::print_csv_row(
        kFigure, "cache", name.c_str(), cfg.tenants, stall_tenants, 0, 0,
        r.mops, timeline_mean_unreclaimed(r.timeline),
        static_cast<double>(r.unreclaimed_peak),
        r.victim_hist.percentile(0.50), r.victim_hist.percentile(0.99),
        static_cast<double>(r.victim_hist.max()), r.lag_p50_ns,
        r.lag_p99_ns, static_cast<double>(r.lag_max_ns));
    metric_rows.push_back({name, r.obs});
    reports.push_back(std::move(rep));
  }

  int status = violated ? 6 : 0;
  if (violated) {
    std::fprintf(stderr, "SLO violated (spec: %s)\n", slo->text.c_str());
  }
  // A violation still writes the JSON: the series showing WHY the gate
  // tripped is exactly what a CI debugger needs.
  if (!o.json.empty() && !write_json(o.json, o, cfg, *slo, reports)) {
    status = 2;
  }
  if (!o.metrics.empty()) {
    std::string err;
    if (!obs::write_prometheus(o.metrics, metric_rows, &err)) {
      std::fprintf(stderr, "--metrics: %s\n", err.c_str());
      status = 2;
    }
  }
  if (!o.trace.empty()) {
    std::string err;
    if (!obs::write_chrome_trace(o.trace, &err)) {
      std::fprintf(stderr, "--trace: %s\n", err.c_str());
      status = 2;
    }
  }
  return status;
}
