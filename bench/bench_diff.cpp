// Trajectory comparator: diff two BENCH_<n>.json files and fail loudly on
// regression.
//
//   bench_diff OLD.json NEW.json [--tolerance x] [--min-mops x]
//              [--require-cells]
//
// Points are joined on (cell, structure, scheme, threads). A joined point
// regresses when
//     new_mops < old_mops * (1 - tolerance)   and   old_mops >= min-mops
// The tolerance is deliberately wide by default (35%): these are
// sub-second runs on shared machines, and a perf gate that cries wolf
// gets deleted. --min-mops filters points too slow to measure reliably
// (their relative noise is unbounded). External-baseline points (the
// coarse-mutex cells) are printed for context but never gate.
// --require-cells turns a dropped point — a (cell, structure, scheme,
// threads) tuple present in OLD but missing from NEW — into a failure:
// a pinned lineup cell silently vanishing from the fresh sweep is how a
// perf gate quietly stops covering what it was built to cover.
//
// Exit codes: 0 = no regression, 1 = regression, 2 = usage/load error.
// Provenance from both files is printed first — a diff across machines,
// compilers, or configs is visibly apples-to-oranges before anyone reads
// its percentages.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/trajectory.hpp"

namespace {

using hyaline::harness::load_sweep;
using hyaline::harness::sweep_file;
using hyaline::harness::sweep_point;

[[noreturn]] void usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s OLD.json NEW.json [--tolerance x] "
               "[--min-mops x] [--require-cells]\n",
               prog);
  std::exit(2);
}

const sweep_point* find_match(const sweep_file& f, const sweep_point& p) {
  for (const sweep_point& q : f.points) {
    if (q.cell == p.cell && q.structure == p.structure &&
        q.scheme == p.scheme && q.threads == p.threads) {
      return &q;
    }
  }
  return nullptr;
}

void print_provenance(const char* label, const std::string& path,
                      const sweep_file& f) {
  std::printf("%s %s\n  rev %s | %s | %s | fastpath=%s shards=%u\n", label,
              path.c_str(), f.git_sha.empty() ? "?" : f.git_sha.c_str(),
              f.compiler.empty() ? "?" : f.compiler.c_str(),
              f.cpu_model.empty() ? "?" : f.cpu_model.c_str(),
              f.fastpath.empty() ? "?" : f.fastpath.c_str(), f.shards);
}

}  // namespace

int main(int argc, char** argv) {
  std::string old_path, new_path;
  double tolerance = 0.35;
  double min_mops = 0.05;
  bool require_cells = false;
  for (int i = 1; i < argc; ++i) {
    auto need_val = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--tolerance") == 0) {
      tolerance = std::strtod(need_val("--tolerance"), nullptr);
      if (tolerance < 0 || tolerance >= 1) {
        std::fprintf(stderr, "--tolerance wants [0, 1)\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--min-mops") == 0) {
      min_mops = std::strtod(need_val("--min-mops"), nullptr);
    } else if (std::strcmp(argv[i], "--require-cells") == 0) {
      require_cells = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(argv[0]);
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage(argv[0]);
    } else if (old_path.empty()) {
      old_path = argv[i];
    } else if (new_path.empty()) {
      new_path = argv[i];
    } else {
      usage(argv[0]);
    }
  }
  if (old_path.empty() || new_path.empty()) usage(argv[0]);

  sweep_file oldf, newf;
  std::string err;
  if (!load_sweep(old_path, oldf, err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }
  if (!load_sweep(new_path, newf, err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }

  print_provenance("old:", old_path, oldf);
  print_provenance("new:", new_path, newf);
  if (oldf.cpu_model != newf.cpu_model || oldf.compiler != newf.compiler) {
    std::printf(
        "note: machine or compiler differs between files — treat "
        "percentages as indicative, not as a gate\n");
  }
  if (oldf.seed != newf.seed) {
    std::printf("note: seeds differ (0x%llx vs 0x%llx)\n",
                static_cast<unsigned long long>(oldf.seed),
                static_cast<unsigned long long>(newf.seed));
  }
  std::printf("tolerance %.0f%%, min-mops %.3f\n\n", tolerance * 100,
              min_mops);

  std::printf("%-10s %-11s %-14s %3s %10s %10s %8s  %s\n", "cell",
              "structure", "scheme", "thr", "old-mops", "new-mops",
              "delta", "verdict");
  int regressions = 0;
  std::size_t joined = 0, only_old = 0;
  for (const sweep_point& p : oldf.points) {
    const sweep_point* q = find_match(newf, p);
    if (q == nullptr) {
      ++only_old;
      std::printf("%-10s %-11s %-14s %3u %10.4f %10s %8s  dropped\n",
                  p.cell.c_str(), p.structure.c_str(), p.scheme.c_str(),
                  p.threads, p.mops, "-", "-");
      continue;
    }
    ++joined;
    const double delta =
        p.mops > 0 ? (q->mops - p.mops) / p.mops * 100.0 : 0.0;
    const char* verdict = "ok";
    if (p.external || q->external) {
      verdict = "baseline";
    } else if (p.mops >= min_mops && q->mops < p.mops * (1.0 - tolerance)) {
      verdict = "REGRESSION";
      ++regressions;
    } else if (p.mops < min_mops) {
      verdict = "below-floor";
    }
    std::printf("%-10s %-11s %-14s %3u %10.4f %10.4f %+7.1f%%  %s\n",
                p.cell.c_str(), p.structure.c_str(), p.scheme.c_str(),
                p.threads, p.mops, q->mops, delta, verdict);
  }
  std::size_t only_new = 0;
  for (const sweep_point& q : newf.points) {
    if (find_match(oldf, q) == nullptr) {
      ++only_new;
      std::printf("%-10s %-11s %-14s %3u %10s %10.4f %8s  new\n",
                  q.cell.c_str(), q.structure.c_str(), q.scheme.c_str(),
                  q.threads, "-", q.mops, "-");
    }
  }

  std::printf("\n%zu joined, %zu dropped, %zu new: %s\n", joined, only_old,
              only_new,
              regressions == 0
                  ? "no regression"
                  : (std::to_string(regressions) + " REGRESSION(S)")
                        .c_str());
  // Machine-greppable comparability trailer: how many provenance fields
  // disagree between the two files. 0 = a clean apples-to-apples diff;
  // anything else and CI logs carry the caveat even after the human-prose
  // notes above scroll away.
  {
    int mismatches = 0;
    if (oldf.cpu_model != newf.cpu_model) ++mismatches;
    if (oldf.compiler != newf.compiler) ++mismatches;
    if (oldf.seed != newf.seed) ++mismatches;
    if (oldf.fastpath != newf.fastpath) ++mismatches;
    if (oldf.shards != newf.shards) ++mismatches;
    std::printf("# provenance: %d mismatches\n", mismatches);
  }
  if (require_cells && only_old != 0) {
    std::fprintf(stderr,
                 "--require-cells: %zu pinned cell(s) missing from the "
                 "fresh sweep (see 'dropped' rows above)\n",
                 only_old);
    return 1;
  }
  return regressions == 0 ? 0 : 1;
}
