// Figure 10a: robustness — fixed active threads on the hash map while the
// number of *stalled* threads (enter, read, never leave) grows. Non-robust
// schemes (Epoch, Hyaline, Hyaline-1) blow up immediately; capped
// Hyaline-S degrades once slots run out; adaptive Hyaline-S, Hyaline-1S,
// HP, HE and IBR stay flat. Paper: 72 active threads, cliff at 57 stalled.
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  using namespace hyaline::harness;
  cli_options defaults;
  defaults.threads = {4};                    // active threads (paper: 72)
  defaults.stalled = {0, 1, 2, 4, 8, 16};    // paper: 1..72
  const cli_options o = parse_cli(argc, argv, defaults);
  run_robustness("fig10a-robustness", o, o.threads.empty() ? 4 : o.threads[0]);
  return 0;
}
