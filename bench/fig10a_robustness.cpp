// Figure 10a: robustness — fixed active threads on the hash map while the
// number of *stalled* threads (enter, read, never leave) grows. Non-robust
// schemes (Epoch, Hyaline, Hyaline-1) blow up immediately; capped
// Hyaline-S degrades once slots run out; adaptive Hyaline-S, Hyaline-1S,
// HP, HE and IBR stay flat. Paper: 72 active threads, cliff at 57 stalled.
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  using namespace hyaline::harness;
  return run_figure({.name = "fig10a-robustness",
                     .kind = figure_kind::robustness,
                     .insert_pct = 50,
                     .remove_pct = 50,
                     .get_pct = 0,
                     .default_threads = {4},  // active threads (paper: 72)
                     .default_stalled = {0, 1, 2, 4, 8, 16}},
                    argc, argv);
}
