// Figure 12 (a-d): unreclaimed objects per operation, read-mostly mix.
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  using namespace hyaline::harness;
  cli_options defaults;
  defaults.threads = {1, 2, 4, 8};
  const cli_options o = parse_cli(argc, argv, defaults);
  run_matrix("fig12-read-unreclaimed", o, 5, 5, 90, /*llsc=*/false);
  return 0;
}
