// Figure 12 (a-d): unreclaimed objects per operation, read-mostly mix.
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  using namespace hyaline::harness;
  return run_figure({.name = "fig12-read-unreclaimed",
                     .insert_pct = 5,
                     .remove_pct = 5,
                     .get_pct = 90},
                    argc, argv);
}
