// Figures 13/14: the PowerPC (single-width LL/SC) evaluation, write-heavy
// mix. We have no PPC hardware, so the Hyaline variants run on the §4.4
// algorithm over an emulated 16-byte reservation granule (see DESIGN.md
// substitution #2); throughput and unreclaimed columns correspond to
// Fig. 13 and Fig. 14 respectively.
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  using namespace hyaline::harness;
  cli_options defaults;
  defaults.threads = {1, 2, 4, 8};  // paper: 1..128 on a 64-way PPC box
  const cli_options o = parse_cli(argc, argv, defaults);
  run_matrix("fig13-14-llsc-write", o, 50, 50, 0, /*llsc=*/true);
  return 0;
}
