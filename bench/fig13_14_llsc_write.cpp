// Figures 13/14: the PowerPC (single-width LL/SC) evaluation, write-heavy
// mix. We have no PPC hardware, so the Hyaline variants run on the §4.4
// algorithm over an emulated 16-byte reservation granule (see DESIGN.md
// substitution #2); throughput and unreclaimed columns correspond to
// Fig. 13 and Fig. 14 respectively. Paper: 1..128 threads on a 64-way box.
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  using namespace hyaline::harness;
  return run_figure({.name = "fig13-14-llsc-write",
                     .insert_pct = 50,
                     .remove_pct = 50,
                     .get_pct = 0,
                     .llsc = true},
                    argc, argv);
}
