// Container-family figure: throughput and unreclaimed memory of the
// Michael–Scott MPMC queue and the Treiber stack under every scheme in
// the paper's line-up, sweeping (producers, consumers) pairs.
//
// This is the workload class where reclamation pressure is highest —
// every successful operation allocates or retires a node — and the one
// both related container repos benchmark. Each data point is also a
// correctness check: the binary exits non-zero if the conservation
// ledger (pushed == popped + drained) or the retired == freed post-drain
// invariant fails.
//
//   ./fig_queue --producers 4 --consumers 4 --json out.json
//   ./fig_queue --producers 1,2,4 --consumers 4     # asymmetric sweep
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  using namespace hyaline::harness;
  return run_figure({.name = "fig-queue-containers",
                     .kind = figure_kind::container,
                     .default_producers = {1, 2, 4},
                     .default_consumers = {1, 2, 4}},
                    argc, argv);
}
