// Robustness lab timeline: one structure under a scripted fault schedule
// (--faults, grammar in lab/fault_plan.hpp), sampled into a time series
// every --sample-ms. Where the paper's Figure 10a shows one end-of-run
// scalar per stalled-thread count, this shows the whole trajectory — the
// spike while a transient stall pins memory, and (for robust schemes)
// the return to baseline once it clears. Recovery is a checked property:
// a robust scheme whose unreclaimed count fails to settle back to within
// 2x its pre-fault baseline exits the binary with status 4.
//
//   ./fig_timeline --faults stall:1@200ms+200ms --json out.json
//   ./fig_timeline --structure msqueue --faults churn:2@300ms,burst:5000@500ms
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  using namespace hyaline::harness;
  return run_figure({.name = "fig-timeline",
                     .kind = figure_kind::timeline,
                     .insert_pct = 50,
                     .remove_pct = 50,
                     .get_pct = 0,
                     .default_threads = {4},
                     .default_sample_ms = 10,
                     // Long enough that a few-hundred-ms transient fault
                     // leaves a measurable fault-free tail.
                     .default_duration_ms = 1000},
                    argc, argv);
}
