// Cross-cutting stress and failure-injection tests: oversubscription,
// thread churn, stalled threads against robust schemes, trim under load,
// and the workload harness itself.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "ds/michael_hashmap.hpp"
#include "ds/natarajan_tree.hpp"
#include "ds_test_common.hpp"
#include "harness/workload.hpp"

namespace hyaline {
namespace {

// --- transparency: thread churn over a fixed slot set (Hyaline only) ----

TEST(Transparency, HundredsOfThreadLifetimesOverFourSlots) {
  domain dom(config{.slots = 4, .batch_min = 8});
  ds::michael_hashmap<domain> map(dom, 512);
  for (int wave = 0; wave < 8; ++wave) {
    std::vector<std::thread> ts;
    for (int t = 0; t < 24; ++t) {
      ts.emplace_back([&, wave, t] {
        xoshiro256 rng(wave * 100 + t);
        for (int i = 0; i < 500; ++i) {
          domain::guard g(dom);
          const std::uint64_t k = rng.below(128);
          if (rng.below(2) == 0) {
            map.insert(g, k, k);
          } else {
            map.remove(g, k);
          }
        }
        dom.flush();
      });
    }
    for (auto& th : ts) th.join();
  }
  dom.drain();
  EXPECT_EQ(dom.counters().retired.load(std::memory_order_relaxed), dom.counters().freed.load(std::memory_order_relaxed));
}

// --- robustness under stalled threads, end to end ------------------------

template <class D>
std::uint64_t unreclaimed_with_stalled_thread(D& dom, bool deref_first) {
  ds::michael_hashmap<D> map(dom, 512);
  {
    typename D::guard g(dom);
    for (std::uint64_t k = 0; k < 256; ++k) map.insert(g, k, k);
  }
  std::atomic<bool> hold{true};
  std::atomic<bool> ready{false};
  std::thread stalled([&] {
    typename D::guard g(dom);
    if (deref_first) map.contains(g, 7);
    ready.store(true, std::memory_order_release);
    while (hold.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  while (!ready.load(std::memory_order_acquire)) std::this_thread::yield();

  for (int i = 0; i < 20000; ++i) {
    typename D::guard g(dom);
    const std::uint64_t k = static_cast<std::uint64_t>(i) % 256;
    map.remove(g, k);
    map.insert(g, k, k);
  }
  const std::uint64_t unreclaimed = dom.counters().unreclaimed();
  hold.store(false, std::memory_order_release);
  stalled.join();
  dom.drain();
  return unreclaimed;
}

TEST(Robustness, EpochIsBlockedByStalledThread) {
  smr::ebr_domain dom(smr::ebr_config{4, 32});
  const auto unreclaimed = unreclaimed_with_stalled_thread(dom, true);
  EXPECT_GT(unreclaimed, 10000u)
      << "EBR must accumulate garbage behind the pinned epoch";
}

TEST(Robustness, HyalineSStaysBoundedWithStalledThread) {
  domain_s dom(config{.slots = 4, .batch_min = 8, .era_freq = 16});
  const auto unreclaimed = unreclaimed_with_stalled_thread(dom, true);
  EXPECT_LT(unreclaimed, 10000u)
      << "era-based slot skipping must keep reclamation flowing";
}

TEST(Robustness, Hyaline1SStaysBoundedWithStalledThread) {
  domain_1s dom(config1{.max_threads = 4, .batch_min = 8, .era_freq = 16});
  const auto unreclaimed = unreclaimed_with_stalled_thread(dom, true);
  EXPECT_LT(unreclaimed, 10000u);
}

TEST(Robustness, IbrStaysBoundedWithStalledThread) {
  smr::ibr_domain dom(smr::ibr_config{4, 16, 16});
  const auto unreclaimed = unreclaimed_with_stalled_thread(dom, true);
  EXPECT_LT(unreclaimed, 10000u);
}

TEST(Robustness, BasicHyalineIsNotRobust) {
  // Honesty check: basic Hyaline, like EBR, is *not* robust (Table 1); a
  // stalled thread inside a slot with traffic pins every batch inserted
  // there.
  domain dom(config{.slots = 2, .batch_min = 8});
  const auto unreclaimed = unreclaimed_with_stalled_thread(dom, true);
  EXPECT_GT(unreclaimed, 10000u);
}

// --- trim under concurrent load -----------------------------------------

TEST(Trim, ConcurrentTrimmersReclaimEverything) {
  domain dom(config{.slots = 2, .batch_min = 8});
  ds::michael_hashmap<domain> map(dom, 512);
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&, t] {
      xoshiro256 rng(t + 5);
      for (int outer = 0; outer < 20; ++outer) {
        domain::guard g(dom);
        for (int i = 0; i < 200; ++i) {
          const std::uint64_t k = rng.below(128);
          if (rng.below(2) == 0) {
            map.insert(g, k, k);
          } else {
            map.remove(g, k);
          }
          g.trim();
        }
      }
      dom.flush();
    });
  }
  for (auto& th : ts) th.join();
  dom.drain();
  EXPECT_EQ(dom.counters().retired.load(std::memory_order_relaxed), dom.counters().freed.load(std::memory_order_relaxed));
}

// --- the workload harness itself -----------------------------------------

TEST(Harness, ReportsThroughputAndReclaims) {
  auto dom = harness::scheme_traits<domain>::make(test_support::small_params());
  ds::michael_hashmap<domain> map(*dom, 1024);
  harness::workload_config cfg;
  cfg.threads = 2;
  cfg.duration_ms = 100;
  cfg.prefill = 500;
  cfg.key_range = 1000;
  const auto r = harness::run_workload(*dom, map, cfg);
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_GT(r.mops, 0.0);
  dom->drain();
  EXPECT_EQ(dom->counters().retired.load(std::memory_order_relaxed), dom->counters().freed.load(std::memory_order_relaxed));
}

TEST(Harness, StalledThreadsModeRuns) {
  auto dom =
      harness::scheme_traits<domain_s>::make(test_support::small_params());
  ds::michael_hashmap<domain_s> map(*dom, 1024);
  harness::workload_config cfg;
  cfg.threads = 2;
  cfg.stalled_threads = 2;
  cfg.duration_ms = 100;
  cfg.prefill = 200;
  cfg.key_range = 512;
  const auto r = harness::run_workload(*dom, map, cfg);
  EXPECT_GT(r.total_ops, 0u);
  dom->drain();
  EXPECT_EQ(dom->counters().retired.load(std::memory_order_relaxed), dom->counters().freed.load(std::memory_order_relaxed));
}

TEST(Harness, TrimModeRuns) {
  auto dom = harness::scheme_traits<domain>::make(test_support::small_params());
  ds::michael_hashmap<domain> map(*dom, 1024);
  harness::workload_config cfg;
  cfg.threads = 2;
  cfg.duration_ms = 100;
  cfg.prefill = 200;
  cfg.key_range = 512;
  cfg.use_trim = true;
  const auto r = harness::run_workload(*dom, map, cfg);
  EXPECT_GT(r.total_ops, 0u);
  dom->drain();
  EXPECT_EQ(dom->counters().retired.load(std::memory_order_relaxed), dom->counters().freed.load(std::memory_order_relaxed));
}

TEST(Harness, ReadMostlyMixRuns) {
  auto dom = harness::scheme_traits<smr::ibr_domain>::make(
      test_support::small_params());
  ds::natarajan_tree<smr::ibr_domain> tree(*dom);
  harness::workload_config cfg;
  cfg.threads = 3;
  cfg.duration_ms = 100;
  cfg.prefill = 300;
  cfg.key_range = 1000;
  cfg.insert_pct = 5;
  cfg.remove_pct = 5;
  cfg.get_pct = 90;
  const auto r = harness::run_workload(*dom, tree, cfg);
  EXPECT_GT(r.total_ops, 0u);
  dom->drain();
  EXPECT_EQ(dom->counters().retired.load(std::memory_order_relaxed), dom->counters().freed.load(std::memory_order_relaxed));
}

// --- oversubscription ----------------------------------------------------

TEST(Oversubscription, SixteenThreadsOverFourSlots) {
  domain dom(config{.slots = 4, .batch_min = 16});
  ds::natarajan_tree<domain> tree(dom);
  test_support::run_mixed_stress(dom, tree, 16, 1500, 128);
  dom.drain();
  EXPECT_EQ(dom.counters().retired.load(std::memory_order_relaxed), dom.counters().freed.load(std::memory_order_relaxed));
}

}  // namespace
}  // namespace hyaline
