// Natarajan–Mittal external BST: semantics, helping/cleanup paths, and
// concurrency over every SMR scheme.
#include "ds/natarajan_tree.hpp"

#include "ds_test_common.hpp"

namespace hyaline {
namespace {

using test_support::AllSchemes;

template <class D>
class NmTreeTest : public test_support::ds_fixture<D, ds::natarajan_tree> {};

TYPED_TEST_SUITE(NmTreeTest, AllSchemes);

TYPED_TEST(NmTreeTest, EmptyTreeBehaviour) {
  auto g = this->guard();
  EXPECT_FALSE(this->ds_->contains(g, 1));
  EXPECT_FALSE(this->ds_->remove(g, 1));
  EXPECT_EQ(this->ds_->unsafe_size(), 0u);
}

TYPED_TEST(NmTreeTest, InsertGetRemoveRoundTrip) {
  auto g = this->guard();
  EXPECT_TRUE(this->ds_->insert(g, 10, 100));
  EXPECT_TRUE(this->ds_->contains(g, 10));
  std::uint64_t v = 0;
  EXPECT_TRUE(this->ds_->get(g, 10, v));
  EXPECT_EQ(v, 100u);
  EXPECT_TRUE(this->ds_->remove(g, 10));
  EXPECT_FALSE(this->ds_->contains(g, 10));
  EXPECT_EQ(this->ds_->unsafe_size(), 0u);
}

TYPED_TEST(NmTreeTest, DuplicateInsertFails) {
  auto g = this->guard();
  EXPECT_TRUE(this->ds_->insert(g, 10, 1));
  EXPECT_FALSE(this->ds_->insert(g, 10, 2));
}

TYPED_TEST(NmTreeTest, AscendingAndDescendingInsertions) {
  {
    auto g = this->guard();
    for (std::uint64_t k = 0; k < 100; ++k) {
      ASSERT_TRUE(this->ds_->insert(g, k, k));
    }
    for (std::uint64_t k = 300; k > 200; --k) {
      ASSERT_TRUE(this->ds_->insert(g, k, k));
    }
    for (std::uint64_t k = 0; k < 100; ++k) {
      ASSERT_TRUE(this->ds_->contains(g, k));
    }
  }
  EXPECT_EQ(this->ds_->unsafe_size(), 200u);
}

TYPED_TEST(NmTreeTest, RemoveLeafWithInternalParentChain) {
  auto g = this->guard();
  // Build a chain shape, then delete in an order that exercises cleanup
  // at different ancestor depths.
  for (std::uint64_t k : {50u, 25u, 75u, 12u, 37u, 62u, 87u}) {
    ASSERT_TRUE(this->ds_->insert(g, k, k));
  }
  for (std::uint64_t k : {12u, 37u, 25u, 87u, 62u, 75u, 50u}) {
    ASSERT_TRUE(this->ds_->remove(g, k)) << "k=" << k;
    ASSERT_FALSE(this->ds_->contains(g, k));
  }
  EXPECT_EQ(this->ds_->unsafe_size(), 0u);
}

TYPED_TEST(NmTreeTest, ReinsertAfterRemove) {
  auto g = this->guard();
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(this->ds_->insert(g, 5, round));
    ASSERT_TRUE(this->ds_->remove(g, 5));
  }
  EXPECT_FALSE(this->ds_->contains(g, 5));
}

TYPED_TEST(NmTreeTest, MaxKeyBoundary) {
  auto g = this->guard();
  using tree_t = ds::natarajan_tree<TypeParam>;
  EXPECT_TRUE(this->ds_->insert(g, tree_t::max_key, 1));
  EXPECT_TRUE(this->ds_->contains(g, tree_t::max_key));
  EXPECT_TRUE(this->ds_->remove(g, tree_t::max_key));
}

TYPED_TEST(NmTreeTest, MixedStressFourThreads) {
  test_support::run_mixed_stress(*this->dom_, *this->ds_, 4, 6000, 128);
}

TYPED_TEST(NmTreeTest, ContendedNeighborKeys) {
  // Deletions of adjacent keys share parents/ancestors, driving the
  // helping (flag/tag) paths.
  constexpr unsigned kThreads = 4;
  std::vector<std::thread> ts;
  std::atomic<long> net{0};
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      xoshiro256 rng(t + 17);
      long local = 0;
      for (int i = 0; i < 5000; ++i) {
        typename TypeParam::guard g(*this->dom_);
        const std::uint64_t k = rng.below(8);  // tiny range: max contention
        if (rng.below(2) == 0) {
          if (this->ds_->insert(g, k, t)) ++local;
        } else {
          if (this->ds_->remove(g, k)) --local;
        }
      }
      net.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(this->ds_->unsafe_size(), static_cast<std::size_t>(net.load(std::memory_order_relaxed)));
}

}  // namespace
}  // namespace hyaline
