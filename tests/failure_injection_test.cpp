// Failure-injection tests: every scheme churns debug_alloc-backed nodes
// under concurrency; the instrumented allocator converts the classic SMR
// failure modes into deterministic assertions:
//   - premature free + late header write (e.g., a traverse decrementing a
//     batch counter after free_batch ran) -> poison corruption at
//     quarantine flush;
//   - double free (two threads both claiming the "last reference")
//     -> double-free counter;
//   - lost nodes -> live counter != 0 after drain.
//
// All nodes route through the smr::core allocation hooks (installed at
// static-initialization time, before any node exists), and destruction
// rides on the v2 typed retire — no per-domain deleter to configure.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/debug_alloc.hpp"
#include "ds_test_common.hpp"
#include "harness/workload.hpp"
#include "smr/core/node_alloc.hpp"

namespace hyaline {
namespace {

const bool hooks_installed = test_support::install_debug_alloc_hooks();

// A fat node: extra payload makes poison corruption detectable even if a
// stray write lands past the header.
template <class Base>
struct fat_node : Base {
  std::uint64_t payload[8] = {};
};

template <class D>
class FailureInjectionTest : public ::testing::Test {};

using test_support::AllSchemes;
TYPED_TEST_SUITE(FailureInjectionTest, AllSchemes);

TYPED_TEST(FailureInjectionTest, ChurnHasNoUafDoubleFreeOrLeak) {
  using node_t = fat_node<typename TypeParam::node>;
  ASSERT_TRUE(hooks_installed);
  debug_alloc::reset();
  {
    auto dom =
        harness::scheme_traits<TypeParam>::make(test_support::small_params());
    constexpr unsigned kThreads = 4;
    constexpr int kOps = 5000;
    std::atomic<typename TypeParam::node*> shared{nullptr};
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < kThreads; ++t) {
      ts.emplace_back([&, t] {
        for (int i = 0; i < kOps; ++i) {
          typename TypeParam::guard g(*dom);
          g.protect(shared);
          auto* n = new node_t;  // hooked: lands in debug_alloc
          dom->on_alloc(n);
          n->payload[3] = t;  // write before retire is fine
          g.retire(n);        // typed: freed as node_t, checked by hooks
        }
        harness::detail::flush_thread(*dom);
      });
    }
    for (auto& th : ts) th.join();
    dom->drain();
    EXPECT_EQ(dom->counters().retired.load(std::memory_order_relaxed),
              dom->counters().freed.load(std::memory_order_relaxed));
  }
  EXPECT_EQ(debug_alloc::live_count(), 0u) << "leaked nodes";
  EXPECT_EQ(debug_alloc::double_frees(), 0u) << "double free detected";
  EXPECT_EQ(debug_alloc::flush_quarantine(), 0u)
      << "write-after-free detected (poison corrupted)";
}

TYPED_TEST(FailureInjectionTest, GuardChurnWithLongHolders) {
  // Interleave short-lived guards with a long-lived one that forces
  // batches to stay referenced while the churn proceeds.
  using node_t = fat_node<typename TypeParam::node>;
  ASSERT_TRUE(hooks_installed);
  debug_alloc::reset();
  {
    auto dom =
        harness::scheme_traits<TypeParam>::make(test_support::small_params());
    std::atomic<bool> stop{false};
    std::atomic<typename TypeParam::node*> shared{nullptr};
    std::thread holder([&] {
      while (!stop.load(std::memory_order_acquire)) {
        typename TypeParam::guard g(*dom);
        g.protect(shared);
        std::this_thread::yield();
      }
    });
    std::thread churner([&] {
      for (int i = 0; i < 8000; ++i) {
        typename TypeParam::guard g(*dom);
        g.protect(shared);
        auto* n = new node_t;
        dom->on_alloc(n);
        g.retire(n);
      }
      harness::detail::flush_thread(*dom);
    });
    churner.join();
    stop.store(true, std::memory_order_release);
    holder.join();
    dom->drain();
  }
  EXPECT_EQ(debug_alloc::live_count(), 0u);
  EXPECT_EQ(debug_alloc::double_frees(), 0u);
  EXPECT_EQ(debug_alloc::flush_quarantine(), 0u);
}

}  // namespace
}  // namespace hyaline
