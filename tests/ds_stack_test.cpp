// treiber_stack over every scheme: sequential LIFO semantics, the
// per-producer LIFO property (a quiescent single-consumer drain must see
// each producer's surviving items in strictly descending push order —
// elements of one producer always sit oldest-lowest in the stack), and
// MPMC conservation under concurrent push/pop. The pop path is the ABA
// textbook case; the conservation multiset plus the CI sanitizers turn a
// reclamation slip into a deterministic failure (debug_alloc-hooked runs
// live in container_stress_test and shared_domain_test).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "ds/treiber_stack.hpp"
#include "ds_test_common.hpp"
#include "harness/workload.hpp"

namespace hyaline {
namespace {

template <class D>
using StackTest = test_support::ds_fixture<D, ds::treiber_stack>;

using test_support::AllSchemes;
TYPED_TEST_SUITE(StackTest, AllSchemes);

TYPED_TEST(StackTest, SequentialLifo) {
  auto g = this->guard();
  std::uint64_t v = 0;
  EXPECT_FALSE(this->ds_->try_pop(g, v));
  for (std::uint64_t i = 0; i < 100; ++i) this->ds_->push(g, i);
  EXPECT_EQ(this->ds_->unsafe_size(), 100u);
  for (std::uint64_t i = 100; i-- > 0;) {
    ASSERT_TRUE(this->ds_->try_pop(g, v));
    EXPECT_EQ(v, i);  // exact reverse push order
  }
  EXPECT_FALSE(this->ds_->try_pop(g, v));
  EXPECT_EQ(this->ds_->unsafe_size(), 0u);
}

constexpr std::uint64_t stamp(unsigned producer, std::uint64_t seq) {
  return (std::uint64_t{producer} << 32) | seq;
}

TYPED_TEST(StackTest, PerProducerLifoOnDrain) {
  constexpr unsigned kProducers = 4;
  constexpr std::uint64_t kItems = 20000;  // per producer

  // Concurrent push phase: contends the head CAS across producers.
  std::vector<std::thread> producers;
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kItems; ++i) {
        auto g = this->guard();
        this->ds_->push(g, stamp(p, i));
      }
      harness::detail::flush_thread(*this->dom_);
    });
  }
  for (auto& th : producers) th.join();

  // Quiescent single-consumer drain: one producer's items were pushed in
  // sequence order, so they must come back strictly descending per
  // producer regardless of how the producers interleaved.
  std::uint64_t last_seq[kProducers];
  bool seen_any[kProducers] = {};
  std::uint64_t got = 0;
  for (;;) {
    auto g = this->guard();
    std::uint64_t v;
    if (!this->ds_->try_pop(g, v)) break;
    const unsigned p = static_cast<unsigned>(v >> 32);
    const std::uint64_t seq = v & 0xffffffffu;
    ASSERT_LT(p, kProducers);
    if (seen_any[p]) {
      ASSERT_LT(seq, last_seq[p]) << "producer " << p << " order violated";
    }
    last_seq[p] = seq;
    seen_any[p] = true;
    ++got;
  }
  EXPECT_EQ(got, kProducers * kItems);
  for (unsigned p = 0; p < kProducers; ++p) {
    EXPECT_TRUE(seen_any[p]);
    EXPECT_EQ(last_seq[p], 0u);  // descending all the way to the first push
  }
}

TYPED_TEST(StackTest, MpmcConservation) {
  constexpr unsigned kProducers = 3;
  constexpr unsigned kConsumers = 3;
  constexpr std::uint64_t kItems = 10000;  // per producer

  std::atomic<std::uint64_t> popped{0};
  std::atomic<bool> done_producing{false};
  std::vector<std::atomic<std::uint8_t>> seen(kProducers * kItems);

  std::vector<std::thread> ts;
  for (unsigned p = 0; p < kProducers; ++p) {
    ts.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kItems; ++i) {
        auto g = this->guard();
        this->ds_->push(g, p * kItems + i);
      }
      harness::detail::flush_thread(*this->dom_);
    });
  }
  for (unsigned c = 0; c < kConsumers; ++c) {
    ts.emplace_back([&] {
      for (;;) {
        auto g = this->guard();
        std::uint64_t v;
        if (this->ds_->try_pop(g, v)) {
          EXPECT_LT(v, kProducers * kItems);
          EXPECT_EQ(seen[v].exchange(1, std::memory_order_relaxed), 0)
              << "value " << v << " delivered twice";
          popped.fetch_add(1, std::memory_order_relaxed);
        } else if (done_producing.load(std::memory_order_acquire)) {
          if (!this->ds_->try_pop(g, v)) break;
          EXPECT_EQ(seen[v].exchange(1, std::memory_order_relaxed), 0);
          popped.fetch_add(1, std::memory_order_relaxed);
        }
      }
      harness::detail::flush_thread(*this->dom_);
    });
  }
  for (unsigned p = 0; p < kProducers; ++p) ts[p].join();
  done_producing.store(true, std::memory_order_release);
  for (unsigned c = 0; c < kConsumers; ++c) ts[kProducers + c].join();

  EXPECT_EQ(popped.load(std::memory_order_relaxed), kProducers * kItems);
  EXPECT_EQ(this->ds_->unsafe_size(), 0u);
  for (std::uint64_t v = 0; v < kProducers * kItems; ++v) {
    ASSERT_EQ(seen[v].load(std::memory_order_relaxed), 1) << "lost " << v;
  }
}

}  // namespace
}  // namespace hyaline
