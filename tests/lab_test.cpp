// Robustness-lab unit tests: the --faults spec parser (grammar,
// overlapping windows, rejection of malformed input and out-of-range
// tids), the log-bucketed latency histogram's bucket math and percentile
// interpolation, and the recovery check that fig_timeline turns into an
// exit status.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "lab/fault_plan.hpp"
#include "lab/telemetry.hpp"
#include "smr/stats.hpp"

namespace hyaline::lab {
namespace {

fault_plan parse_ok(const std::string& spec) {
  std::string err;
  auto plan = parse_fault_plan(spec, &err);
  EXPECT_TRUE(plan.has_value()) << spec << ": " << err;
  return plan.has_value() ? *plan : fault_plan{};
}

void expect_reject(const std::string& spec) {
  std::string err;
  EXPECT_FALSE(parse_fault_plan(spec, &err).has_value()) << spec;
  EXPECT_FALSE(err.empty()) << spec;
}

TEST(FaultPlanTest, ParsesStallWithUnits) {
  const fault_plan p = parse_ok("stall:2@500ms+300ms");
  ASSERT_EQ(p.events.size(), 1u);
  EXPECT_EQ(p.events[0].kind, fault_kind::stall);
  EXPECT_EQ(p.events[0].tid, 2u);
  EXPECT_DOUBLE_EQ(p.events[0].start_ms, 500);
  EXPECT_DOUBLE_EQ(p.events[0].dur_ms, 300);
  EXPECT_DOUBLE_EQ(p.first_start_ms(), 500);
  ASSERT_TRUE(p.last_end_ms().has_value());
  EXPECT_DOUBLE_EQ(*p.last_end_ms(), 800);
}

TEST(FaultPlanTest, BareNumbersAreMillisecondsAndSecondsScale) {
  const fault_plan p = parse_ok("stall:0@250+1s,churn:4@1s");
  ASSERT_EQ(p.events.size(), 2u);
  EXPECT_DOUBLE_EQ(p.events[0].start_ms, 250);
  EXPECT_DOUBLE_EQ(p.events[0].dur_ms, 1000);
  EXPECT_EQ(p.events[1].kind, fault_kind::churn);
  EXPECT_DOUBLE_EQ(p.events[1].start_ms, 1000);
}

TEST(FaultPlanTest, MicrosecondUnit) {
  const fault_plan p = parse_ok("stall:0@1500us+500us");
  EXPECT_DOUBLE_EQ(p.events[0].start_ms, 1.5);
  EXPECT_DOUBLE_EQ(p.events[0].dur_ms, 0.5);
}

TEST(FaultPlanTest, InfiniteStallIsTheDegenerateLegacyMode) {
  const fault_plan p = parse_ok("stall:1@0+inf");
  EXPECT_TRUE(std::isinf(p.events[0].dur_ms));
  // An open-ended fault leaves no fault-free tail to measure recovery in.
  EXPECT_FALSE(p.last_end_ms().has_value());
}

TEST(FaultPlanTest, SlowCarriesPerOpDelay) {
  const fault_plan p = parse_ok("slow:3/25@100ms+200ms");
  EXPECT_EQ(p.events[0].kind, fault_kind::slow);
  EXPECT_EQ(p.events[0].tid, 3u);
  EXPECT_EQ(p.events[0].delay_us, 25u);
}

TEST(FaultPlanTest, BurstAndExit) {
  const fault_plan p = parse_ok("burst:5000@1s,exit:2@700ms");
  EXPECT_EQ(p.events[0].kind, fault_kind::burst);
  EXPECT_EQ(p.events[0].count, 5000u);
  EXPECT_EQ(p.events[1].kind, fault_kind::exit_thread);
  ASSERT_TRUE(p.last_end_ms().has_value());
  EXPECT_DOUBLE_EQ(*p.last_end_ms(), 1000);  // instantaneous events
}

TEST(FaultPlanTest, OverlappingWindowsParse) {
  // Overlaps are legal — stall depths and slow delays compose — including
  // two windows on the same tid.
  const fault_plan p =
      parse_ok("stall:1@100ms+400ms,stall:1@200ms+100ms,slow:1/10@0+1s");
  EXPECT_EQ(p.events.size(), 3u);
  EXPECT_DOUBLE_EQ(p.first_start_ms(), 0);
  EXPECT_DOUBLE_EQ(*p.last_end_ms(), 1000);
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  expect_reject("");
  expect_reject("stall");
  expect_reject("stall:");
  expect_reject("stall:1");            // missing @start
  expect_reject("stall:1@");
  expect_reject("stall:1@100ms");      // stall needs a window
  expect_reject("stall:1@100ms+");
  expect_reject("stall:1@100ms+0");    // empty window
  expect_reject("stall:1@-5ms+10ms");  // negative time
  expect_reject("slow:1@0+10ms");      // missing /usec
  expect_reject("slow:1/0@0+10ms");    // zero delay
  expect_reject("slow:1/10@0+inf");    // only stalls may be infinite
  expect_reject("burst:0@10ms");       // zero count
  expect_reject("wobble:1@0");         // unknown kind
  expect_reject("stall:1@0+10ms,");    // trailing empty event
  expect_reject("stall:1@0+10msx");    // trailing garbage
}

TEST(FaultPlanTest, RejectsTidBeyondWorkerCount) {
  const fault_plan p = parse_ok("stall:4@0+10ms");
  std::string err;
  EXPECT_FALSE(p.validate_tids(4, &err));
  EXPECT_NE(err.find("tid 4"), std::string::npos);
  EXPECT_TRUE(p.validate_tids(5, &err));
  // Burst events carry a count, not a tid; any thread count is fine.
  EXPECT_TRUE(parse_ok("burst:9999@0").validate_tids(1, &err));
}

TEST(LatencyHistogramTest, BucketBoundaries) {
  // Bucket 0 = {0}; bucket b >= 1 = [2^(b-1), 2^b - 1].
  EXPECT_EQ(latency_histogram::bucket_of(0), 0u);
  EXPECT_EQ(latency_histogram::bucket_of(1), 1u);
  EXPECT_EQ(latency_histogram::bucket_of(2), 2u);
  EXPECT_EQ(latency_histogram::bucket_of(3), 2u);
  EXPECT_EQ(latency_histogram::bucket_of(4), 3u);
  EXPECT_EQ(latency_histogram::bucket_of(1023), 10u);
  EXPECT_EQ(latency_histogram::bucket_of(1024), 11u);
  EXPECT_EQ(latency_histogram::bucket_of(~0ULL), 64u);
  for (unsigned b = 1; b < latency_histogram::kBuckets; ++b) {
    EXPECT_EQ(latency_histogram::bucket_of(latency_histogram::bucket_lo(b)),
              b);
    EXPECT_EQ(latency_histogram::bucket_of(latency_histogram::bucket_hi(b)),
              b);
  }
}

TEST(LatencyHistogramTest, EmptyAndSingleValue) {
  latency_histogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0);
  h.record(100);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.max(), 100u);
  // One sample: every quantile lands in its bucket [64, 127].
  EXPECT_GE(h.percentile(0.5), 64);
  EXPECT_LE(h.percentile(0.5), 127);
}

TEST(LatencyHistogramTest, PercentilesRankCorrectly) {
  latency_histogram h;
  // 90 samples in [64,127] (bucket 7), 10 in [1024,2047] (bucket 11).
  for (int i = 0; i < 90; ++i) h.record(100);
  for (int i = 0; i < 10; ++i) h.record(1500);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_LE(h.percentile(0.50), 127);
  EXPECT_LE(h.percentile(0.89), 127);
  EXPECT_GE(h.percentile(0.95), 1024);
  EXPECT_GE(h.percentile(1.0), 1024);
  EXPECT_EQ(h.max(), 1500u);
  // Interpolation stays inside the covering bucket.
  EXPECT_LE(h.percentile(0.99), 2047);
}

TEST(LatencyHistogramTest, MergeAddsCountsAndMax) {
  latency_histogram a, b;
  a.record(10);
  b.record(10000);
  b.record(10);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.max(), 10000u);
  EXPECT_EQ(a.bucket_count(latency_histogram::bucket_of(10)), 2u);
}

std::vector<sample_point> series(
    std::initializer_list<std::pair<double, std::uint64_t>> pts) {
  std::vector<sample_point> out;
  for (const auto& [t, u] : pts) {
    sample_point p;
    p.t_ms = t;
    p.unreclaimed = u;
    out.push_back(p);
  }
  return out;
}

TEST(RecoveryCheckTest, RecoveredSeriesPasses) {
  // Fault window [200, 400] in a 1000 ms run: spike during the fault,
  // settled tail back at baseline. Tail window starts at 700.
  const auto pts = series({{100, 5000},
                           {150, 6000},
                           {300, 90000},
                           {500, 30000},
                           {750, 7000},
                           {900, 6500}});
  const recovery_verdict v = check_recovery(pts, 200, 400, 1000);
  ASSERT_TRUE(v.checked);
  EXPECT_DOUBLE_EQ(v.baseline, 6000);  // pre-fault peak
  EXPECT_DOUBLE_EQ(v.post, 6750);
  EXPECT_TRUE(v.recovered);
}

TEST(RecoveryCheckTest, StuckSeriesFails) {
  const auto pts = series(
      {{100, 5000}, {300, 90000}, {750, 80000}, {900, 85000}});
  const recovery_verdict v = check_recovery(pts, 200, 400, 1000);
  ASSERT_TRUE(v.checked);
  EXPECT_FALSE(v.recovered);
  EXPECT_DOUBLE_EQ(v.limit, 10000);
}

TEST(RecoveryCheckTest, FloorAbsorbsTinyBaselines) {
  // Near-idle pre-fault window: 2x a 10-node baseline would flag any
  // batching scheme; the floor covers it.
  const auto pts = series({{100, 10}, {300, 50000}, {800, 1500}});
  const recovery_verdict v = check_recovery(pts, 200, 400, 1000);
  ASSERT_TRUE(v.checked);
  EXPECT_DOUBLE_EQ(v.limit, 2048);
  EXPECT_TRUE(v.recovered);
}

TEST(RecoveryCheckTest, UncheckedWithoutWindowSamples) {
  // No samples before the fault.
  recovery_verdict v =
      check_recovery(series({{500, 100}, {900, 100}}), 0, 400, 1000);
  EXPECT_FALSE(v.checked);
  // No samples in the settled tail.
  v = check_recovery(series({{100, 100}, {500, 100}}), 200, 400, 1000);
  EXPECT_FALSE(v.checked);
  EXPECT_FALSE(v.recovered);
}

// Regression test for the sampler's synchronization contract: every read
// the sampler thread performs concurrently with workers goes through an
// atomic (per-tid op slots, active count, domain counters), and points()
// is only consumed after stop() joins. Hammer the worker side from
// several threads with the sampler live at its fastest cadence; under
// ThreadSanitizer (HYALINE_TSAN=ON) any unsynchronized sampler read is a
// reported race, and in all builds the final cumulative sample must equal
// the exact op/retire totals (join gives the sampler a coherent view).
TEST(TelemetrySamplerTest, ConcurrentWorkersRaceFree) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kOpsPerThread = 20000;
  smr::stats stats;
  telemetry_collector tc(kThreads, /*sample_ms=*/1, &stats);
  tc.start();
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      tc.thread_enter();
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        tc.on_op(t);
        if (i % 3 == 0) stats.on_retire();
        if (i % 6 == 0) stats.on_free();
      }
      tc.thread_exit();
    });
  }
  for (std::thread& w : workers) w.join();
  // Let a few post-join ticks land: the closing sample in stop() is
  // elided when a regular tick fired within half a cadence, so without
  // this the last sample could predate the final worker ops.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  tc.stop();
  const std::vector<sample_point>& pts = tc.points();
  ASSERT_FALSE(pts.empty());
  // Cumulative counters are monotone across the series...
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].ops, pts[i - 1].ops);
    EXPECT_GE(pts[i].retired, pts[i - 1].retired);
    EXPECT_GE(pts[i].t_ms, pts[i - 1].t_ms);
  }
  // ...and the closing sample (taken after every worker exited and the
  // join ordered their writes before it) sees the exact totals.
  const sample_point& last = pts.back();
  EXPECT_EQ(last.ops, kThreads * kOpsPerThread);
  EXPECT_EQ(last.retired, stats.retired.load(std::memory_order_relaxed));
  EXPECT_EQ(last.freed, stats.freed.load(std::memory_order_relaxed));
  EXPECT_EQ(last.active_threads, 0u);
}

}  // namespace
}  // namespace hyaline::lab
