// parse_cli unit tests, focused on the list-handling rules: duplicate
// entries in --schemes / --threads are dropped (first occurrence wins)
// with a warning instead of silently running identical series twice, and
// the container split flags parse independently of the set-only knobs.
// Only well-formed inputs are exercised here — parse_cli exits the
// process on malformed ones.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/cli.hpp"

namespace hyaline::harness {
namespace {

cli_options parse(std::vector<const char*> args,
                  cli_options defaults = {}) {
  args.insert(args.begin(), "test_prog");
  return parse_cli(static_cast<int>(args.size()),
                   const_cast<char**>(args.data()), defaults);
}

TEST(CliTest, ThreadsListDeduplicatesPreservingOrder) {
  const cli_options o = parse({"--threads", "4,4,2,8,2,4"});
  EXPECT_EQ(o.threads, (std::vector<unsigned>{4, 2, 8}));
  EXPECT_TRUE(o.threads_set);
}

TEST(CliTest, StalledListDeduplicates) {
  const cli_options o = parse({"--stalled", "0,1,0,2,1"});
  EXPECT_EQ(o.stalled, (std::vector<unsigned>{0, 1, 2}));
}

TEST(CliTest, SchemesListDeduplicatesPreservingOrder) {
  const cli_options o = parse({"--schemes", "HP,Hyaline,HP,HE,Hyaline"});
  EXPECT_EQ(o.schemes,
            (std::vector<std::string>{"HP", "Hyaline", "HE"}));
  EXPECT_TRUE(o.scheme_enabled("HE"));
  EXPECT_FALSE(o.scheme_enabled("Epoch"));
}

TEST(CliTest, DefaultListsAreNotFlaggedAsExplicit) {
  cli_options defaults;
  defaults.threads = {1, 2};
  const cli_options o = parse({"--duration", "100"}, defaults);
  EXPECT_EQ(o.threads, (std::vector<unsigned>{1, 2}));
  EXPECT_FALSE(o.threads_set);
  EXPECT_FALSE(o.range_set);
  EXPECT_EQ(o.duration_ms, 100u);
}

TEST(CliTest, ProducerConsumerListsParse) {
  const cli_options o =
      parse({"--producers", "1,2,4", "--consumers", "4"});
  EXPECT_EQ(o.producers, (std::vector<unsigned>{1, 2, 4}));
  EXPECT_EQ(o.consumers, (std::vector<unsigned>{4}));
  // Set-only flags stay untouched defaults.
  EXPECT_TRUE(o.mix.empty());
  EXPECT_FALSE(o.range_set);
}

TEST(CliTest, RangeFlagIsTracked) {
  const cli_options o = parse({"--range", "1024"});
  EXPECT_EQ(o.key_range, 1024u);
  EXPECT_TRUE(o.range_set);
}

TEST(CliTest, MixParsesWhenSummingToHundred) {
  const cli_options o = parse({"--mix", "30,20,50"});
  EXPECT_EQ(o.mix, (std::vector<unsigned>{30, 20, 50}));
}

TEST(CliTest, FullOverridesDurationAndRepeats) {
  const cli_options o = parse({"--full"});
  EXPECT_EQ(o.duration_ms, 10000u);
  EXPECT_EQ(o.repeats, 5u);
}

TEST(CliTest, SeedParsesDecimalAndHex) {
  EXPECT_EQ(parse({"--seed", "12345"}).seed, 12345u);
  // Hex round-trips from the CSV header comment (`# seed=0x...`).
  EXPECT_EQ(parse({"--seed", "0x5eed"}).seed, 0x5eedu);
  EXPECT_EQ(cli_options{}.seed, 0x5eedu);  // matches workload_config
}

TEST(CliTest, LabFlagsParse) {
  const cli_options o = parse({"--faults", "stall:2@500ms+300ms",
                               "--sample-ms", "25", "--structure",
                               "msqueue"});
  EXPECT_EQ(o.faults, "stall:2@500ms+300ms");
  EXPECT_EQ(o.sample_ms, 25u);
  EXPECT_TRUE(o.sample_ms_set);
  EXPECT_EQ(o.structure, "msqueue");
}

TEST(CliTest, LabFlagsDefaultToUnset) {
  const cli_options o = parse({"--duration", "100"});
  EXPECT_TRUE(o.faults.empty());
  EXPECT_FALSE(o.sample_ms_set);
  EXPECT_TRUE(o.structure.empty());
}

}  // namespace
}  // namespace hyaline::harness
