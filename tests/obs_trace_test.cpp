// The observability layer's contracts: ring buffers overwrite oldest and
// account every drop, the merged timeline is time-ordered across threads,
// a disabled tracer records nothing at all, and the per-domain event
// counters (smr/stats.hpp) come back nonzero through the same registry
// runners the figures use — so a scheme that silently stops reporting
// scans or finalizes fails here, not in a plot review.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "ds/michael_hashmap.hpp"
#include "harness/registry.hpp"
#include "harness/schemes.hpp"
#include "obs/trace.hpp"
#include "smr/core/retired_batch.hpp"
#include "smr/ebr.hpp"
#include "smr/stats.hpp"

namespace hyaline {
namespace {

/// Every test starts from a quiescent tracer and leaves it that way; the
/// ring capacity is restored to the shipping default so later suites in
/// this binary do not inherit a test-sized ring.
class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::reset(); }
  void TearDown() override {
    obs::reset();
    obs::set_ring_capacity(8192);
  }
};

/// The one ring this test populated: tests share a process, so earlier
/// suites may have left registered-but-empty rings behind.
const obs::thread_trace* only_nonempty(
    const std::vector<obs::thread_trace>& traces) {
  const obs::thread_trace* found = nullptr;
  for (const obs::thread_trace& t : traces) {
    if (t.emitted == 0) continue;
    if (found != nullptr) return nullptr;  // ambiguous
    found = &t;
  }
  return found;
}

TEST_F(ObsTraceTest, RingOverwritesOldestAndAccountsDrops) {
  obs::set_ring_capacity(16);
  obs::set_tracing(true);
  for (std::uint64_t i = 0; i < 100; ++i) {
    obs::emit(obs::event::retire, i);
  }
  obs::set_tracing(false);

  const auto traces = obs::snapshot();
  const obs::thread_trace* t = only_nonempty(traces);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->emitted, 100u);
  EXPECT_EQ(t->dropped, 100u - 16u);
  ASSERT_EQ(t->records.size(), 16u);
  // Oldest-first, and the survivors are exactly the newest 16 records.
  for (std::size_t i = 0; i < t->records.size(); ++i) {
    EXPECT_EQ(t->records[i].arg, 84u + i);
    EXPECT_EQ(static_cast<obs::event>(t->records[i].ev),
              obs::event::retire);
    if (i > 0) EXPECT_GE(t->records[i].ts, t->records[i - 1].ts);
  }
}

TEST_F(ObsTraceTest, DisabledTracerRecordsNothing) {
  for (std::uint64_t i = 0; i < 1000; ++i) {
    obs::emit(obs::event::free_node, i);
  }
  std::uint64_t total = 0;
  for (const obs::thread_trace& t : obs::snapshot()) total += t.emitted;
  EXPECT_EQ(total, 0u) << "emit() with tracing off must not even register "
                          "a ring for the calling thread";
}

TEST_F(ObsTraceTest, MergedTimelineIsOrderedAcrossThreads) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 256;
  obs::set_ring_capacity(1024);
  obs::set_tracing(true);
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([t] {
      char name[16];
      std::snprintf(name, sizeof name, "emitter-%u", t);
      obs::name_thread(name);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        obs::emit(obs::event::retire, (std::uint64_t{t} << 32) | i);
      }
    });
  }
  for (auto& th : ts) th.join();
  obs::set_tracing(false);

  // Thread names survive into the snapshot metadata.
  unsigned named = 0;
  for (const obs::thread_trace& t : obs::snapshot()) {
    if (t.emitted == 0) continue;
    EXPECT_EQ(t.emitted, kPerThread);
    EXPECT_EQ(t.name.rfind("emitter-", 0), 0u) << t.name;
    ++named;
  }
  EXPECT_EQ(named, kThreads);

  const std::vector<obs::record> merged = obs::merged_records();
  ASSERT_EQ(merged.size(), kThreads * kPerThread);
  std::uint64_t per_thread_next[kThreads] = {};
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(merged[i].ts, merged[i - 1].ts)
          << "merged timeline must be sorted by timestamp";
    }
    // Each thread's own subsequence keeps its emission order.
    const unsigned t = static_cast<unsigned>(merged[i].arg >> 32);
    const std::uint64_t seq = merged[i].arg & 0xffffffffu;
    ASSERT_LT(t, kThreads);
    EXPECT_EQ(seq, per_thread_next[t]++);
  }
}

// ------------------------------------------------------- event counters --

harness::workload_result run_cell(const char* scheme) {
  const auto& reg = harness::scheme_registry::instance();
  harness::runner_fn run = reg.runner(scheme, "hashmap");
  EXPECT_NE(run, nullptr);
  harness::workload_config cfg;
  cfg.threads = 2;
  cfg.repeats = 1;
  cfg.op_limit = 30000;
  cfg.duration_ms = 10000;  // upper bound; the op budget stops the run
  cfg.key_range = 256;
  cfg.prefill = 64;
  cfg.seed = 0x0b5;
  harness::scheme_params p;
  p.max_threads = 4;
  return run(p, cfg);
}

TEST_F(ObsTraceTest, HazardPointerRunReportsScansAndRearms) {
  const harness::workload_result r = run_cell("HP");
  EXPECT_GT(r.obs.scans, 0u);
  EXPECT_GT(r.obs.rearms, 0u);
  EXPECT_GT(r.obs.tid_acquires, 0u);
  EXPECT_GT(r.obs.freed, 0u);
}

TEST_F(ObsTraceTest, EpochRunReportsEraAdvances) {
  const harness::workload_result r = run_cell("Epoch");
  EXPECT_GT(r.obs.era_advances, 0u);
  EXPECT_GT(r.obs.scans, 0u);
}

TEST_F(ObsTraceTest, HyalineRunReportsBatchFinalizes) {
  const harness::workload_result r = run_cell("Hyaline");
  EXPECT_GT(r.obs.finalizes, 0u);
  EXPECT_GT(r.obs.freed, 0u);
}

TEST_F(ObsTraceTest, ShardedScanStealAttributionAndEvents) {
  struct test_node {
    test_node* next = nullptr;
  };
  smr::domain_counters ctrs;
  smr::core::sharded_retire<test_node> shards(2);
  shards.attach(&ctrs);

  std::vector<test_node> nodes(8);
  for (auto& n : nodes) shards.push(1, &n, 100);

  obs::set_ring_capacity(64);
  obs::set_tracing(true);
  // Scanning a shard that is not the caller's own is the steal path.
  std::size_t freed = 0;
  shards.scan(
      1, 100, [](const test_node*) { return true; },
      [&freed](test_node*) { ++freed; }, /*steal=*/true);
  obs::set_tracing(false);

  EXPECT_EQ(freed, nodes.size());
  EXPECT_EQ(ctrs.scans.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(ctrs.steals.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(ctrs.rearms.load(std::memory_order_relaxed), 1u);

  // The steal-scan leaves exactly one well-formed event triple behind:
  // the paired scan window with the steal marker inside it.
  const auto merged = obs::merged_records();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(static_cast<obs::event>(merged[0].ev), obs::event::scan_begin);
  EXPECT_EQ(static_cast<obs::event>(merged[1].ev), obs::event::shard_steal);
  EXPECT_EQ(static_cast<obs::event>(merged[2].ev), obs::event::scan_end);
  EXPECT_EQ(merged[0].arg, 1u);            // shard index scanned
  EXPECT_EQ(merged[1].arg, 1u);            // shard index stolen from
  EXPECT_EQ(merged[2].arg, nodes.size());  // nodes freed by the scan
}

TEST_F(ObsTraceTest, EbrShardedStealsFireUnderAPinnedEpoch) {
  // A guard held open pins the epoch: nothing can be freed, both shards
  // grow hot, and the retire path's neighbour glance must eventually take
  // the steal-scan branch. Deadline-bounded so a scheduling fluke shows
  // up as a clear failure, not a hang.
  smr::ebr_domain dom(smr::ebr_config{
      .max_threads = 6, .entry_burst = 0, .retire_shards = 2});
  ds::michael_hashmap<smr::ebr_domain> map(dom, 64);

  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread pinner([&] {
    smr::ebr_domain::guard g(dom);
    pinned.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  while (!pinned.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> churners;
  for (unsigned t = 0; t < 3; ++t) {
    churners.emplace_back([&, t] {
      std::uint64_t k = t * 1000;
      while (!stop.load(std::memory_order_relaxed)) {
        smr::ebr_domain::guard g(dom);
        map.insert(g, k, k);
        map.remove(g, k);  // each remove retires a node
        ++k;
      }
    });
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (dom.counters().events.steals.load(std::memory_order_relaxed) ==
             0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_relaxed);
  release.store(true, std::memory_order_release);
  for (auto& th : churners) th.join();
  pinner.join();

  EXPECT_GT(dom.counters().events.steals.load(std::memory_order_relaxed),
            0u)
      << "no steal-scan within the deadline despite both shards growing "
         "under a pinned epoch";
}

}  // namespace
}  // namespace hyaline
