// ms_queue (Michael–Scott MPMC) over every scheme: sequential FIFO
// semantics, the per-producer FIFO property under concurrency (a
// linearizable MPMC queue must deliver any one producer's items in push
// order to a single consumer — the observation that stays checkable when
// global order does not), and MPMC conservation. Dummy-handoff bugs
// (double retire of the old dummy, use-after-free of the successor) are
// additionally hunted with debug_alloc-hooked allocation in
// container_stress_test and shared_domain_test; here the fixture's
// retired == freed teardown check plus the CI sanitizers cover them.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "ds/ms_queue.hpp"
#include "ds_test_common.hpp"
#include "harness/workload.hpp"

namespace hyaline {
namespace {

template <class D>
using QueueTest = test_support::ds_fixture<D, ds::ms_queue>;

using test_support::AllSchemes;
TYPED_TEST_SUITE(QueueTest, AllSchemes);

TYPED_TEST(QueueTest, SequentialFifo) {
  auto g = this->guard();
  std::uint64_t v = 0;
  EXPECT_FALSE(this->ds_->try_dequeue(g, v));
  for (std::uint64_t i = 0; i < 100; ++i) this->ds_->enqueue(g, i);
  EXPECT_EQ(this->ds_->unsafe_size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(this->ds_->try_dequeue(g, v));
    EXPECT_EQ(v, i);  // exact push order
  }
  EXPECT_FALSE(this->ds_->try_dequeue(g, v));
  EXPECT_EQ(this->ds_->unsafe_size(), 0u);
}

TYPED_TEST(QueueTest, InterleavedEnqueueDequeueKeepsOrder) {
  auto g = this->guard();
  std::uint64_t next_in = 0, next_out = 0, v = 0;
  // Sawtooth fill/drain across the dummy handoff: enqueue k, dequeue k-1,
  // repeatedly, so head and tail chase each other through fresh nodes.
  for (int round = 1; round <= 40; ++round) {
    for (int i = 0; i < round; ++i) this->ds_->enqueue(g, next_in++);
    for (int i = 0; i + 1 < round; ++i) {
      ASSERT_TRUE(this->ds_->try_dequeue(g, v));
      EXPECT_EQ(v, next_out++);
    }
  }
  while (this->ds_->try_dequeue(g, v)) EXPECT_EQ(v, next_out++);
  EXPECT_EQ(next_in, next_out);
}

/// The stamped-payload encoding shared by the concurrent property tests:
/// producer id in the high bits, per-producer sequence number below.
constexpr std::uint64_t stamp(unsigned producer, std::uint64_t seq) {
  return (std::uint64_t{producer} << 32) | seq;
}

TYPED_TEST(QueueTest, PerProducerFifoUnderSingleConsumer) {
  constexpr unsigned kProducers = 4;
  constexpr std::uint64_t kItems = 20000;  // per producer

  std::vector<std::thread> producers;
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kItems; ++i) {
        auto g = this->guard();
        this->ds_->enqueue(g, stamp(p, i));
      }
      harness::detail::flush_thread(*this->dom_);
    });
  }

  // Single-consumer observer, concurrent with the producers: for each
  // producer the dequeued sequence must be exactly 0,1,2,... — FIFO per
  // producer, whatever the interleaving.
  std::uint64_t next_seq[kProducers] = {};
  std::uint64_t got = 0;
  while (got < kProducers * kItems) {
    auto g = this->guard();
    std::uint64_t v;
    if (!this->ds_->try_dequeue(g, v)) continue;
    const unsigned p = static_cast<unsigned>(v >> 32);
    const std::uint64_t seq = v & 0xffffffffu;
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(seq, next_seq[p]) << "producer " << p << " reordered";
    ++next_seq[p];
    ++got;
  }
  for (auto& th : producers) th.join();

  auto g = this->guard();
  std::uint64_t v;
  EXPECT_FALSE(this->ds_->try_dequeue(g, v));
  for (unsigned p = 0; p < kProducers; ++p) EXPECT_EQ(next_seq[p], kItems);
}

TYPED_TEST(QueueTest, MpmcConservation) {
  constexpr unsigned kProducers = 3;
  constexpr unsigned kConsumers = 3;
  constexpr std::uint64_t kItems = 10000;  // per producer

  std::atomic<std::uint64_t> popped{0};
  std::atomic<bool> done_producing{false};
  // One slot per item: a duplicate delivery trips the flag check, a lost
  // item leaves a slot unseen.
  std::vector<std::atomic<std::uint8_t>> seen(kProducers * kItems);
  for (auto& s : seen) s.store(0, std::memory_order_relaxed);

  std::vector<std::thread> ts;
  for (unsigned p = 0; p < kProducers; ++p) {
    ts.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kItems; ++i) {
        auto g = this->guard();
        this->ds_->enqueue(g, p * kItems + i);
      }
      harness::detail::flush_thread(*this->dom_);
    });
  }
  for (unsigned c = 0; c < kConsumers; ++c) {
    ts.emplace_back([&] {
      for (;;) {
        auto g = this->guard();
        std::uint64_t v;
        if (this->ds_->try_dequeue(g, v)) {
          EXPECT_LT(v, kProducers * kItems);
          EXPECT_EQ(seen[v].exchange(1, std::memory_order_relaxed), 0)
              << "value " << v << " delivered twice";
          popped.fetch_add(1, std::memory_order_relaxed);
        } else if (done_producing.load(std::memory_order_acquire)) {
          if (!this->ds_->try_dequeue(g, v)) break;
          EXPECT_EQ(seen[v].exchange(1, std::memory_order_relaxed), 0);
          popped.fetch_add(1, std::memory_order_relaxed);
        }
      }
      harness::detail::flush_thread(*this->dom_);
    });
  }
  for (unsigned p = 0; p < kProducers; ++p) ts[p].join();
  done_producing.store(true, std::memory_order_release);
  for (unsigned c = 0; c < kConsumers; ++c) ts[kProducers + c].join();

  EXPECT_EQ(popped.load(std::memory_order_relaxed), kProducers * kItems);
  EXPECT_EQ(this->ds_->unsafe_size(), 0u);
  for (std::uint64_t v = 0; v < kProducers * kItems; ++v) {
    ASSERT_EQ(seen[v].load(std::memory_order_relaxed), 1) << "lost " << v;
  }
}

}  // namespace
}  // namespace hyaline
