// Harris–Michael list: semantics and concurrency over every SMR scheme.
#include "ds/hm_list.hpp"

#include "ds_test_common.hpp"

namespace hyaline {
namespace {

using test_support::AllSchemes;

template <class D>
class ListTest : public test_support::ds_fixture<D, ds::hm_list> {};

TYPED_TEST_SUITE(ListTest, AllSchemes);

TYPED_TEST(ListTest, EmptyListBehaviour) {
  auto g = this->guard();
  EXPECT_FALSE(this->ds_->contains(g, 1));
  EXPECT_FALSE(this->ds_->remove(g, 1));
  EXPECT_EQ(this->ds_->unsafe_size(), 0u);
}

TYPED_TEST(ListTest, InsertThenContains) {
  auto g = this->guard();
  EXPECT_TRUE(this->ds_->insert(g, 5, 50));
  EXPECT_TRUE(this->ds_->contains(g, 5));
  EXPECT_FALSE(this->ds_->contains(g, 4));
  std::uint64_t v = 0;
  EXPECT_TRUE(this->ds_->get(g, 5, v));
  EXPECT_EQ(v, 50u);
}

TYPED_TEST(ListTest, DuplicateInsertFails) {
  auto g = this->guard();
  EXPECT_TRUE(this->ds_->insert(g, 5, 50));
  EXPECT_FALSE(this->ds_->insert(g, 5, 51));
  std::uint64_t v = 0;
  EXPECT_TRUE(this->ds_->get(g, 5, v));
  EXPECT_EQ(v, 50u) << "failed insert must not clobber the value";
}

TYPED_TEST(ListTest, RemoveMakesKeyAbsent) {
  auto g = this->guard();
  EXPECT_TRUE(this->ds_->insert(g, 5, 50));
  EXPECT_TRUE(this->ds_->remove(g, 5));
  EXPECT_FALSE(this->ds_->contains(g, 5));
  EXPECT_FALSE(this->ds_->remove(g, 5));
  EXPECT_TRUE(this->ds_->insert(g, 5, 52)) << "key is reusable after remove";
}

TYPED_TEST(ListTest, ManyKeysSortedTraversal) {
  {
    auto g = this->guard();
    for (std::uint64_t k = 0; k < 200; ++k) {
      ASSERT_TRUE(this->ds_->insert(g, (k * 37) % 200, k));
    }
    for (std::uint64_t k = 0; k < 200; ++k) {
      EXPECT_TRUE(this->ds_->contains(g, k));
    }
  }
  EXPECT_EQ(this->ds_->unsafe_size(), 200u);
}

TYPED_TEST(ListTest, BoundaryKeys) {
  auto g = this->guard();
  EXPECT_TRUE(this->ds_->insert(g, 0, 1));
  EXPECT_TRUE(this->ds_->insert(g, ~std::uint64_t{0} - 8, 2));
  EXPECT_TRUE(this->ds_->contains(g, 0));
  EXPECT_TRUE(this->ds_->contains(g, ~std::uint64_t{0} - 8));
  EXPECT_TRUE(this->ds_->remove(g, 0));
  EXPECT_FALSE(this->ds_->contains(g, 0));
}

TYPED_TEST(ListTest, InterleavedInsertRemoveChurnsReclamation) {
  for (int round = 0; round < 50; ++round) {
    auto g = this->guard();
    for (std::uint64_t k = 0; k < 16; ++k) {
      ASSERT_TRUE(this->ds_->insert(g, k, round));
    }
    for (std::uint64_t k = 0; k < 16; ++k) {
      ASSERT_TRUE(this->ds_->remove(g, k));
    }
  }
  EXPECT_EQ(this->ds_->unsafe_size(), 0u);
  EXPECT_GE(this->dom_->counters().retired.load(std::memory_order_relaxed), 50u * 16u);
}

TYPED_TEST(ListTest, MixedStressFourThreads) {
  test_support::run_mixed_stress(*this->dom_, *this->ds_, 4, 6000, 64);
}

TYPED_TEST(ListTest, DisjointKeyRangesParallel) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 400;
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        typename TypeParam::guard g(*this->dom_);
        ASSERT_TRUE(this->ds_->insert(g, t * kPerThread + i, i));
      }
      for (std::uint64_t i = 0; i < kPerThread; i += 2) {
        typename TypeParam::guard g(*this->dom_);
        ASSERT_TRUE(this->ds_->remove(g, t * kPerThread + i));
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(this->ds_->unsafe_size(), kThreads * kPerThread / 2);
}

TYPED_TEST(ListTest, ContendedSingleKey) {
  constexpr unsigned kThreads = 4;
  std::vector<std::thread> ts;
  std::atomic<long> net{0};
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      long local = 0;
      for (int i = 0; i < 4000; ++i) {
        typename TypeParam::guard g(*this->dom_);
        if (i % 2 == 0) {
          if (this->ds_->insert(g, 42, t)) ++local;
        } else {
          if (this->ds_->remove(g, 42)) --local;
        }
      }
      net.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(this->ds_->unsafe_size(), static_cast<std::size_t>(net.load(std::memory_order_relaxed)));
}

}  // namespace
}  // namespace hyaline
