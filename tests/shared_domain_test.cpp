// Regression test for the v1 aliasing hazard that motivated typed retire:
// two structures constructed over ONE domain. Under API v1 each structure
// ctor called set_free_fn and silently overwrote the other's deleter, so
// whichever structure registered last had its deleter applied to *both*
// node types — undefined behavior the moment their layouts differ. Under
// API v2 the deleter rides on each retired node (guard::retire<T>), so a
// michael_hashmap, a standalone hm_list, and a natarajan_tree (a genuinely
// different node type) share one domain and all reclaim correctly.
//
// Every node allocation routes through debug_alloc via the smr::core
// hooks, so a wrong-type delete, double free, leak, or write-after-free is
// a deterministic failure here — and the whole suite runs under ASan in CI
// for the address-level proof.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/debug_alloc.hpp"
#include "common/rng.hpp"
#include "ds/hm_list.hpp"
#include "ds/michael_hashmap.hpp"
#include "ds/ms_queue.hpp"
#include "ds/natarajan_tree.hpp"
#include "ds/treiber_stack.hpp"
#include "ds_test_common.hpp"
#include "harness/workload.hpp"
#include "smr/core/node_alloc.hpp"

namespace hyaline {
namespace {

const bool hooks_installed = test_support::install_debug_alloc_hooks();

template <class D>
class SharedDomainTest : public ::testing::Test {};

using test_support::AllSchemes;
TYPED_TEST_SUITE(SharedDomainTest, AllSchemes);

TYPED_TEST(SharedDomainTest, TwoNodeTypesOneDomainReclaimCorrectly) {
  ASSERT_TRUE(hooks_installed);
  debug_alloc::reset();
  {
    auto dom =
        harness::scheme_traits<TypeParam>::make(test_support::small_params());
    ds::michael_hashmap<TypeParam> map(*dom, 64);
    ds::hm_list<TypeParam> list(*dom);
    ds::natarajan_tree<TypeParam> tree(*dom);

    constexpr unsigned kThreads = 4;
    constexpr int kOps = 3000;
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < kThreads; ++t) {
      ts.emplace_back([&, t] {
        xoshiro256 rng(t * 7919 + 11);
        for (int i = 0; i < kOps; ++i) {
          typename TypeParam::guard g(*dom);
          const std::uint64_t k = rng.below(96);
          // Interleave retirements of all three structures' node types
          // through the same per-thread batches / retired lists.
          switch (rng.below(6)) {
            case 0: map.insert(g, k, k); break;
            case 1: map.remove(g, k); break;
            case 2: list.insert(g, k, k); break;
            case 3: list.remove(g, k); break;
            case 4: tree.insert(g, k, k); break;
            default: tree.remove(g, k); break;
          }
        }
        harness::detail::flush_thread(*dom);
      });
    }
    for (auto& th : ts) th.join();

    // Each structure still answers consistently for its own contents.
    {
      typename TypeParam::guard g(*dom);
      std::size_t map_hits = 0, list_hits = 0, tree_hits = 0;
      for (std::uint64_t k = 0; k < 96; ++k) {
        map_hits += map.contains(g, k) ? 1 : 0;
        list_hits += list.contains(g, k) ? 1 : 0;
        tree_hits += tree.contains(g, k) ? 1 : 0;
      }
      EXPECT_EQ(map_hits, map.unsafe_size());
      EXPECT_EQ(list_hits, list.unsafe_size());
      EXPECT_EQ(tree_hits, tree.unsafe_size());
    }
  }  // structures tear down, then the domain drains

  EXPECT_EQ(debug_alloc::live_count(), 0u) << "leaked node allocations";
  EXPECT_EQ(debug_alloc::double_frees(), 0u) << "double free detected";
  EXPECT_EQ(debug_alloc::flush_quarantine(), 0u)
      << "write-after-free detected (wrong-type delete would corrupt)";
}

TYPED_TEST(SharedDomainTest, ContainersAndSetShareOneDomain) {
  ASSERT_TRUE(hooks_installed);
  debug_alloc::reset();
  {
    auto dom =
        harness::scheme_traits<TypeParam>::make(test_support::small_params());
    // Three distinct node layouts — a set (value pairs), a queue (dummy
    // handoff), and a stack — retiring through the same per-thread
    // batches/limbo lists. A wrong-type delete or a deleter mix-up
    // corrupts the debug_alloc quarantine deterministically.
    ds::michael_hashmap<TypeParam> map(*dom, 64);
    ds::ms_queue<TypeParam> queue(*dom);
    ds::treiber_stack<TypeParam> stack(*dom);

    constexpr unsigned kThreads = 4;
    constexpr int kOps = 3000;
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < kThreads; ++t) {
      ts.emplace_back([&, t] {
        xoshiro256 rng(t * 40503 + 7);
        for (int i = 0; i < kOps; ++i) {
          typename TypeParam::guard g(*dom);
          const std::uint64_t k = rng.below(96);
          std::uint64_t v;
          switch (rng.below(6)) {
            case 0: map.insert(g, k, k); break;
            case 1: map.remove(g, k); break;
            case 2: queue.enqueue(g, k); break;
            case 3: queue.try_dequeue(g, v); break;
            case 4: stack.push(g, k); break;
            default: stack.try_pop(g, v); break;
          }
        }
        harness::detail::flush_thread(*dom);
      });
    }
    for (auto& th : ts) th.join();

    // Quiescent sanity: sizes are consistent and the containers still
    // drain cleanly through typed retire.
    {
      typename TypeParam::guard g(*dom);
      std::uint64_t v;
      std::size_t queued = 0, stacked = 0;
      while (queue.try_dequeue(g, v)) ++queued;
      while (stack.try_pop(g, v)) ++stacked;
      EXPECT_EQ(queue.unsafe_size(), 0u);
      EXPECT_EQ(stack.unsafe_size(), 0u);
      (void)queued;
      (void)stacked;
    }
    harness::detail::flush_thread(*dom);
  }  // structures tear down, then the domain drains

  EXPECT_EQ(debug_alloc::live_count(), 0u) << "leaked node allocations";
  EXPECT_EQ(debug_alloc::double_frees(), 0u) << "double free detected";
  EXPECT_EQ(debug_alloc::flush_quarantine(), 0u)
      << "write-after-free detected (wrong-type delete would corrupt)";
}

TYPED_TEST(SharedDomainTest, MixedTypeBatchesDrainExactly) {
  ASSERT_TRUE(hooks_installed);
  debug_alloc::reset();
  {
    auto dom =
        harness::scheme_traits<TypeParam>::make(test_support::small_params());
    ds::hm_list<TypeParam> list(*dom);
    ds::natarajan_tree<TypeParam> tree(*dom);
    // Single-threaded determinism: insert/remove churn guarantees every
    // batch interleaves both node types.
    for (int round = 0; round < 200; ++round) {
      typename TypeParam::guard g(*dom);
      ASSERT_TRUE(list.insert(g, 1, round));
      ASSERT_TRUE(tree.insert(g, 2, round));
      ASSERT_TRUE(list.remove(g, 1));
      ASSERT_TRUE(tree.remove(g, 2));
    }
    harness::detail::flush_thread(*dom);
    dom->drain();
    EXPECT_EQ(dom->counters().retired.load(std::memory_order_relaxed),
              dom->counters().freed.load(std::memory_order_relaxed));
    EXPECT_GE(dom->counters().retired.load(std::memory_order_relaxed), 400u);
  }
  EXPECT_EQ(debug_alloc::live_count(), 0u);
  EXPECT_EQ(debug_alloc::double_frees(), 0u);
  EXPECT_EQ(debug_alloc::flush_quarantine(), 0u);
}

}  // namespace
}  // namespace hyaline
