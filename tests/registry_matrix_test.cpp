// Registry-driven smoke matrix: every registered scheme × structure pair
// runs a brief mixed workload through the type-erased runner, with every
// node allocation routed through debug_alloc via the smr::core node
// allocation hooks. Leaks, double frees and writes-after-free anywhere in
// the matrix become deterministic failures.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/debug_alloc.hpp"
#include "ds_test_common.hpp"
#include "harness/registry.hpp"

namespace hyaline {
namespace {

const bool hooks_installed = test_support::install_debug_alloc_hooks();

harness::workload_config tiny_workload() {
  harness::workload_config cfg;
  cfg.threads = 2;
  cfg.duration_ms = 15;
  cfg.repeats = 1;
  cfg.key_range = 512;
  cfg.prefill = 128;
  cfg.insert_pct = 40;
  cfg.remove_pct = 40;
  cfg.get_pct = 20;
  return cfg;
}

TEST(RegistryMatrix, EveryCellRunsLeakFree) {
  ASSERT_TRUE(hooks_installed);
  debug_alloc::reset();

  harness::scheme_params p;
  p.max_threads = 16;
  p.slots = 4;
  p.batch_min = 8;
  const harness::workload_config cfg = tiny_workload();

  const auto& reg = harness::scheme_registry::instance();
  ASSERT_FALSE(reg.schemes().empty());
  std::size_t cells = 0;
  std::uint64_t total_ops = 0;
  for (const auto& scheme : reg.schemes()) {
    for (const auto& cell : scheme.cells) {
      SCOPED_TRACE(scheme.name + " x " + cell.structure);
      const harness::workload_result r = cell.run(p, cfg);
      ++cells;
      total_ops += r.total_ops;
      EXPECT_EQ(r.retired, r.freed)
          << "scheme leaked retired nodes after drain";
      if (cell.kind == harness::structure_kind::container) {
        // Container cells additionally close the conservation ledger
        // (threads=2 derives a 1 producer / 1 consumer split here).
        EXPECT_EQ(r.enqueued, r.dequeued + r.drained)
            << "container lost or duplicated items";
        EXPECT_GE(r.enqueued, cfg.prefill);
      }
      // Structure and domain are torn down inside the runner: every node
      // the cell ever allocated must be back in the quarantine by now.
      EXPECT_EQ(debug_alloc::live_count(), 0u) << "leaked node allocations";
    }
  }
  // 12 SMR schemes x (list, hashmap, nmtree), bonsai for the 10 non-HP/HE
  // schemes, harris for the 6 guard-lifetime epoch-style schemes,
  // 12 x the two container cells (msqueue, stack — no capability gates),
  // plus the Mutex honesty baseline's own two cells (lockedset,
  // lockedqueue). A single cell may complete zero ops on a badly
  // oversubscribed CI box; the matrix as a whole must make progress.
  EXPECT_EQ(cells, 12u * 3u + 10u + 6u + 12u * 2u + 2u);
  EXPECT_GT(total_ops, 0u);
  EXPECT_EQ(debug_alloc::double_frees(), 0u) << "double free detected";
  EXPECT_EQ(debug_alloc::flush_quarantine(), 0u)
      << "write-after-free detected (poison corrupted)";
}

TEST(RegistryMatrix, LineupAndCapabilitiesMatchThePaper) {
  const auto& reg = harness::scheme_registry::instance();

  // The paper's nine headline schemes are all selectable by name.
  const char* const nine[] = {"Leaky",     "Epoch",      "HP",
                              "HE",        "IBR",        "Hyaline",
                              "Hyaline-1", "Hyaline-S",  "Hyaline-1S"};
  for (const char* name : nine) {
    const auto* e = reg.find(name);
    ASSERT_NE(e, nullptr) << name;
    EXPECT_TRUE(e->caps.core_lineup) << name;
    EXPECT_NE(e->runner_for("hashmap"), nullptr) << name;
  }

  // The coarse-mutex honesty baseline rides along tagged
  // external_baseline, outside the core lineup, with its own two
  // structures — SMR-only sweeps key off exactly this flag.
  {
    const auto* mutex_entry = reg.find("Mutex");
    ASSERT_NE(mutex_entry, nullptr);
    EXPECT_TRUE(mutex_entry->caps.external_baseline);
    EXPECT_FALSE(mutex_entry->caps.core_lineup);
    EXPECT_NE(mutex_entry->runner_for("lockedset"), nullptr);
    EXPECT_NE(mutex_entry->runner_for("lockedqueue"), nullptr);
    EXPECT_EQ(mutex_entry->runner_for("hashmap"), nullptr);
  }

  // Bonsai excludes pointer-publication schemes; Harris's original list
  // additionally excludes every robust scheme (guard-lifetime pinning
  // only). The container family has no capability gate: every SMR scheme
  // carries both cells, tagged with the container structure-kind. The
  // external baseline registers none of the shared structures, so it is
  // skipped here.
  for (const auto& scheme : reg.schemes()) {
    if (scheme.caps.external_baseline) continue;
    const bool snapshot_safe = !scheme.caps.pointer_publication;
    const bool epoch_style = snapshot_safe && !scheme.caps.robust;
    EXPECT_EQ(scheme.runner_for("bonsai") != nullptr, snapshot_safe)
        << scheme.name;
    EXPECT_EQ(scheme.runner_for("harris") != nullptr, epoch_style)
        << scheme.name;
    for (const char* structure : {"msqueue", "stack"}) {
      const auto* cell = scheme.cell_for(structure);
      ASSERT_NE(cell, nullptr) << scheme.name << " x " << structure;
      EXPECT_EQ(cell->kind, harness::structure_kind::container);
    }
    const auto* hashmap = scheme.cell_for("hashmap");
    ASSERT_NE(hashmap, nullptr) << scheme.name;
    EXPECT_EQ(hashmap->kind, harness::structure_kind::set);
  }

  EXPECT_EQ(reg.find("no-such-scheme"), nullptr);
  EXPECT_EQ(reg.runner("Hyaline", "no-such-structure"), nullptr);
}

}  // namespace
}  // namespace hyaline
