// Property-based tests: random operation sequences checked against a
// std::map reference model, swept over seeds with TEST_P / parameterized
// gtest, for each structure and a representative scheme set.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "ds/bonsai_tree.hpp"
#include "ds/harris_list.hpp"
#include "ds/hm_list.hpp"
#include "ds/michael_hashmap.hpp"
#include "ds/natarajan_tree.hpp"
#include "ds_test_common.hpp"

namespace hyaline {
namespace {

/// Single-threaded model check: every operation's return value and the
/// final contents must match std::map exactly.
template <class D, template <class> class DS>
void model_check(std::uint64_t seed, int ops, std::uint64_t range) {
  auto dom = harness::scheme_traits<D>::make(test_support::small_params());
  DS<D> s(*dom);
  std::map<std::uint64_t, std::uint64_t> model;
  xoshiro256 rng(seed);

  for (int i = 0; i < ops; ++i) {
    typename D::guard g(*dom);
    const std::uint64_t k = rng.below(range);
    switch (rng.below(4)) {
      case 0:
      case 1: {
        const bool expect = model.emplace(k, i).second;
        ASSERT_EQ(s.insert(g, k, i), expect) << "op " << i << " key " << k;
        break;
      }
      case 2: {
        const bool expect = model.erase(k) > 0;
        ASSERT_EQ(s.remove(g, k), expect) << "op " << i << " key " << k;
        break;
      }
      default: {
        auto it = model.find(k);
        std::uint64_t v = 0;
        const bool found = s.get(g, k, v);
        ASSERT_EQ(found, it != model.end()) << "op " << i << " key " << k;
        if (found) {
          ASSERT_EQ(v, it->second) << "op " << i << " key " << k;
        }
        break;
      }
    }
  }
  ASSERT_EQ(s.unsafe_size(), model.size());
  for (const auto& [k, v] : model) {
    typename D::guard g(*dom);
    std::uint64_t got = 0;
    ASSERT_TRUE(s.get(g, k, got)) << "final key " << k;
    ASSERT_EQ(got, v);
  }
}

class ModelCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelCheck, ListUnderHyaline) {
  model_check<domain, ds::hm_list>(GetParam(), 4000, 64);
}
TEST_P(ModelCheck, ListUnderHyalineS) {
  model_check<domain_s, ds::hm_list>(GetParam(), 4000, 64);
}
TEST_P(ModelCheck, ListUnderHp) {
  model_check<smr::hp_domain, ds::hm_list>(GetParam(), 4000, 64);
}
TEST_P(ModelCheck, HashmapUnderHyaline) {
  model_check<domain, ds::michael_hashmap>(GetParam(), 6000, 512);
}
TEST_P(ModelCheck, HashmapUnderEbr) {
  model_check<smr::ebr_domain, ds::michael_hashmap>(GetParam(), 6000, 512);
}
TEST_P(ModelCheck, HashmapUnderHyaline1) {
  model_check<domain_1, ds::michael_hashmap>(GetParam(), 6000, 512);
}
TEST_P(ModelCheck, NmTreeUnderHyaline) {
  model_check<domain, ds::natarajan_tree>(GetParam(), 6000, 256);
}
TEST_P(ModelCheck, NmTreeUnderIbr) {
  model_check<smr::ibr_domain, ds::natarajan_tree>(GetParam(), 6000, 256);
}
TEST_P(ModelCheck, NmTreeUnderHe) {
  model_check<smr::he_domain, ds::natarajan_tree>(GetParam(), 6000, 256);
}
TEST_P(ModelCheck, BonsaiUnderHyaline) {
  model_check<domain, ds::bonsai_tree>(GetParam(), 5000, 256);
}
TEST_P(ModelCheck, BonsaiUnderHyaline1S) {
  model_check<domain_1s, ds::bonsai_tree>(GetParam(), 5000, 256);
}
TEST_P(ModelCheck, BonsaiUnderLeaky) {
  model_check<smr::leaky_domain, ds::bonsai_tree>(GetParam(), 5000, 256);
}
TEST_P(ModelCheck, HarrisListUnderHyaline) {
  model_check<domain, ds::harris_list>(GetParam(), 4000, 64);
}
TEST_P(ModelCheck, HarrisListUnderEbr) {
  model_check<smr::ebr_domain, ds::harris_list>(GetParam(), 4000, 64);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelCheck,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

/// Hyaline batch-size sweep: reclamation must be exact for any batch
/// size, including the k+1 minimum and sizes far above it.
class BatchSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchSizeSweep, ExactReclamationAtAnyBatchSize) {
  config c;
  c.slots = 4;
  c.batch_min = GetParam();
  domain dom(c);
  {
    domain::guard g(dom);
    for (int i = 0; i < 3000; ++i) {
      auto* n = new domain::node;
      dom.on_alloc(n);
      g.retire(n);
    }
  }
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 3000u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BatchSizeSweep,
                         ::testing::Values(1, 2, 5, 8, 16, 64, 256, 1024));

/// Slot-count sweep: the Adjs arithmetic must settle for every
/// power-of-two k.
class SlotCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SlotCountSweep, ExactReclamationAtAnySlotCount) {
  config c;
  c.slots = GetParam();
  c.batch_min = 4;
  domain dom(c);
  std::vector<std::thread> ts;
  for (int t = 0; t < 3; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        domain::guard g(dom);
        auto* n = new domain::node;
        dom.on_alloc(n);
        g.retire(n);
      }
      dom.flush();
    });
  }
  for (auto& th : ts) th.join();
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 6000u);
}

INSTANTIATE_TEST_SUITE_P(Slots, SlotCountSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128));

/// Era-frequency sweep for Hyaline-S: reclamation exactness must not
/// depend on how often the era clock ticks.
class EraFreqSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EraFreqSweep, ExactReclamationAtAnyEraFreq) {
  config c;
  c.slots = 4;
  c.batch_min = 8;
  c.era_freq = GetParam();
  domain_s dom(c);
  std::atomic<domain_s::node*> shared{nullptr};
  std::vector<std::thread> ts;
  for (int t = 0; t < 3; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        domain_s::guard g(dom);
        g.protect(shared);
        auto* n = new domain_s::node;
        dom.on_alloc(n);
        g.retire(n);
      }
      dom.flush();
    });
  }
  for (auto& th : ts) th.join();
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 6000u);
}

INSTANTIATE_TEST_SUITE_P(Freqs, EraFreqSweep,
                         ::testing::Values(1, 2, 16, 64, 1024));

}  // namespace
}  // namespace hyaline
