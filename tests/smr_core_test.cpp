// Unit tests for the shared SMR building blocks in src/smr/core/ that the
// baseline schemes are composed from.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "smr/core/era_clock.hpp"
#include "smr/core/retired_batch.hpp"
#include "smr/core/thread_registry.hpp"

namespace hyaline::smr::core {
namespace {

struct test_node {
  test_node* next = nullptr;
  std::uint64_t stamp = 0;
};

std::vector<test_node> make_nodes(std::size_t n) {
  return std::vector<test_node>(n);
}

// -------------------------------------------------------- retired_list --

TEST(RetiredList, PushSignalsAtThreshold) {
  retired_list<test_node> rl;
  auto nodes = make_nodes(8);
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(rl.push(&nodes[i], 4));
  EXPECT_TRUE(rl.push(&nodes[3], 4));
  EXPECT_EQ(rl.size(), 4u);
}

TEST(RetiredList, ScanPartitionsAndRearmIsGeometric) {
  retired_list<test_node> rl;
  auto nodes = make_nodes(8);
  for (auto& n : nodes) rl.push(&n, 100);
  // Keep even-indexed stamps, free odd ones.
  for (std::size_t i = 0; i < nodes.size(); ++i) nodes[i].stamp = i;
  std::size_t freed = 0;
  rl.scan([](const test_node* n) { return n->stamp % 2 == 1; },
          [&freed](test_node*) { ++freed; });
  EXPECT_EQ(freed, 4u);
  EXPECT_EQ(rl.size(), 4u);
  // After rearm the next scan trigger is 2*kept + threshold pushes away.
  rl.rearm(10);
  auto more = make_nodes(32);
  std::size_t pushes_until_signal = 0;
  for (auto& n : more) {
    ++pushes_until_signal;
    if (rl.push(&n, 10)) break;
  }
  EXPECT_EQ(rl.size(), 4 + pushes_until_signal);
  EXPECT_EQ(rl.size(), 2u * 4u + 10u);  // the rearmed scan point
}

TEST(RetiredList, ScanFreesEverythingWhenUnpinned) {
  retired_list<test_node> rl;
  auto nodes = make_nodes(16);
  for (auto& n : nodes) rl.push(&n, 100);
  std::size_t freed = 0;
  rl.scan([](const test_node*) { return true; },
          [&freed](test_node*) { ++freed; });
  EXPECT_EQ(freed, 16u);
  EXPECT_TRUE(rl.empty());
}

// --------------------------------------------------------- limbo_queue --

TEST(LimboQueue, ReclaimsInFifoOrderWhileReady) {
  limbo_queue<test_node> q;
  auto nodes = make_nodes(6);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i].stamp = i;  // monotone "retire epoch"
    q.push_back(&nodes[i]);
  }
  std::vector<std::uint64_t> freed;
  q.reclaim_ready([](const test_node* n) { return n->stamp < 3; },
                  [&freed](test_node* n) { freed.push_back(n->stamp); });
  EXPECT_EQ(freed, (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_FALSE(q.empty());
  q.reclaim_ready([](const test_node*) { return true; },
                  [&freed](test_node* n) { freed.push_back(n->stamp); });
  EXPECT_EQ(freed.size(), 6u);
  EXPECT_TRUE(q.empty());
  // Queue must be reusable after full reclamation (tail reset).
  q.push_back(&nodes[0]);
  EXPECT_FALSE(q.empty());
}

// -------------------------------------------------------- treiber_stack --

TEST(TreiberStack, TakeAllDetachesEverything) {
  treiber_stack<test_node> st;
  auto nodes = make_nodes(4);
  for (auto& n : nodes) st.push(&n);
  std::size_t count = 0;
  for (test_node* n = st.take_all(); n != nullptr; n = n->next) ++count;
  EXPECT_EQ(count, 4u);
  EXPECT_EQ(st.take_all(), nullptr);
}

// ------------------------------------------------------------ era_clock --

TEST(EraClock, TickAdvancesEveryFreq) {
  era_clock clock(1);
  std::uint64_t counter = 0;
  for (int i = 0; i < 10; ++i) clock.tick(counter, 4);
  EXPECT_EQ(clock.load(std::memory_order_relaxed), 1u + 10 / 4);
}

TEST(EraClock, TryAdvanceIsConditional) {
  era_clock clock(2);
  EXPECT_FALSE(clock.try_advance(1));  // stale observation
  EXPECT_EQ(clock.load(std::memory_order_relaxed), 2u);
  EXPECT_TRUE(clock.try_advance(2));
  EXPECT_EQ(clock.load(std::memory_order_relaxed), 3u);
}

TEST(EraClock, ProtectWithEraRereadsUntilStable) {
  era_clock clock(1);
  test_node a, b;
  std::atomic<test_node*> src{&a};
  std::uint64_t published = 0;  // stale reservation forces one publish
  unsigned publishes = 0;
  test_node* got = protect_with_era(src, clock, published,
                                    [&](std::uint64_t e) {
                                      ++publishes;
                                      // Swap the source mid-loop once, like
                                      // a concurrent writer would.
                                      if (publishes == 1) src.store(&b, std::memory_order_release);
                                      return e;
                                    });
  EXPECT_EQ(got, &b);
  EXPECT_EQ(publishes, 1u);
}

// ------------------------------------------------------ thread_registry --

TEST(ThreadRegistry, IndexesAndIterates) {
  struct rec {
    int value = 7;
  };
  thread_registry<rec> recs(5);
  EXPECT_EQ(recs.size(), 5u);
  for (const rec& r : recs) EXPECT_EQ(r.value, 7);
  recs[3].value = 42;
  EXPECT_EQ(recs[3].value, 42);
  EXPECT_EQ(recs.pool()->capacity(), 5u);
}

// ------------------------------------------------------------ tid leases --

TEST(TidLease, NestedLeasesGetDistinctIdsAndCacheForReuse) {
  auto pool = std::make_shared<tid_pool>(3);
  {
    tid_lease a(pool);
    EXPECT_EQ(a.tid(), 0u) << "lowest free id first";
    {
      tid_lease b(pool);
      EXPECT_EQ(b.tid(), 1u) << "nested lease checks out a second id";
    }
    tid_lease c(pool);
    EXPECT_EQ(c.tid(), 1u) << "checked-in id is cached for instant reuse";
  }
  tid_lease d(pool);
  EXPECT_EQ(d.tid(), 0u);
}

TEST(TidLease, ExhaustionThrows) {
  auto pool = std::make_shared<tid_pool>(2);
  tid_lease a(pool);
  tid_lease b(pool);
  EXPECT_THROW(tid_lease c(pool), std::runtime_error);
}

TEST(TidLease, ThreadExitReturnsCachedIdsToThePool) {
  auto pool = std::make_shared<tid_pool>(1);
  std::thread t([&] { tid_lease a(pool); });
  t.join();
  // The worker's cached lease was released at thread exit, so the sole id
  // is available again here.
  tid_lease mine(pool);
  EXPECT_EQ(mine.tid(), 0u);
}

TEST(TidLease, ChurnOfShortLivedThreadsNeverExhaustsThePool) {
  // The recycling contract under sustained churn: each short-lived thread
  // caches its lease until exit, exit returns it, and the next spawn can
  // lease again — forever. A single missed release would exhaust this
  // 4-slot pool within the first handful of the 128 rounds and throw.
  auto pool = std::make_shared<tid_pool>(4);
  for (int round = 0; round < 128; ++round) {
    std::thread t([&] {
      tid_lease l(pool);
      EXPECT_LT(l.tid(), 4u);
      tid_lease nested(pool);
      EXPECT_LT(nested.tid(), 4u);
      EXPECT_NE(nested.tid(), l.tid());
    });
    t.join();
  }
  // After all that churn the pool must be whole: its full capacity is
  // leasable at once.
  tid_lease a(pool);
  tid_lease b(pool);
  tid_lease c(pool);
  tid_lease d(pool);
  EXPECT_THROW(tid_lease e(pool), std::runtime_error);
}

TEST(TidLease, NoTidDoubleLeasedUnderConcurrentChurn) {
  // Waves of threads, each repeatedly leasing from a pool exactly as wide
  // as the wave: every live thread holds (and caches) one id, so any
  // double-lease would hand two threads the same record slot. The claim
  // bitmask turns that into a deterministic failure: a thread owning a
  // lease sets its tid's bit and must always find it clear.
  constexpr unsigned kThreads = 8;
  auto pool = std::make_shared<tid_pool>(kThreads);
  std::atomic<unsigned> claimed{0};
  std::atomic<bool> double_leased{false};
  for (int wave = 0; wave < 16; ++wave) {
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < kThreads; ++t) {
      ts.emplace_back([&] {
        for (int i = 0; i < 64; ++i) {
          tid_lease l(pool);
          const unsigned bit = 1u << l.tid();
          if (claimed.fetch_or(bit, std::memory_order_acq_rel) & bit) {
            double_leased.store(true, std::memory_order_relaxed);
          }
          claimed.fetch_and(~bit, std::memory_order_acq_rel);
        }
      });
    }
    for (std::thread& t : ts) t.join();
  }
  EXPECT_FALSE(double_leased.load(std::memory_order_relaxed)) << "two live threads shared a tid";
}

TEST(ThreadHint, DistinctPerThreadStableWithin) {
  const unsigned mine = thread_hint();
  EXPECT_EQ(thread_hint(), mine);
  unsigned theirs = mine;
  std::thread t([&] { theirs = thread_hint(); });
  t.join();
  EXPECT_NE(theirs, mine);
}

// -------------------------------------------------------------- tls_cache --

TEST(TlsCache, PerThreadInstancesVisitedByForEach) {
  struct builder {
    int value = 0;
  };
  tls_cache<builder> cache;
  cache.local().value = 1;
  EXPECT_EQ(cache.local().value, 1) << "same thread, same instance";
  std::thread t([&] { cache.local().value = 2; });
  t.join();
  int sum = 0;
  std::size_t count = 0;
  cache.for_each([&](builder& b) {
    sum += b.value;
    ++count;
  });
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(sum, 3);
}

TEST(TlsCache, OwnersAreIsolated) {
  struct builder {
    int value = 0;
  };
  tls_cache<builder> a;
  tls_cache<builder> b;
  a.local().value = 10;
  EXPECT_EQ(b.local().value, 0);
}

}  // namespace
}  // namespace hyaline::smr::core
