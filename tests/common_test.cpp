// Unit tests for the common substrate: padding, RNG, tagged pointers,
// 128-bit atomics, the LL/SC reservation-granule emulation, the adaptive
// slot directory, and the instrumented allocator.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/align.hpp"
#include "common/debug_alloc.hpp"
#include "common/dw128.hpp"
#include "common/llsc.hpp"
#include "common/rng.hpp"
#include "common/slot_directory.hpp"
#include "common/tagged_ptr.hpp"

namespace hyaline {
namespace {

TEST(Padded, OccupiesFullCacheLines) {
  EXPECT_EQ(sizeof(padded<int>), cache_line_size);
  EXPECT_EQ(alignof(padded<int>), cache_line_size);
  padded<int> arr[2];
  auto a = reinterpret_cast<std::uintptr_t>(&arr[0]);
  auto b = reinterpret_cast<std::uintptr_t>(&arr[1]);
  EXPECT_GE(b - a, cache_line_size);
}

TEST(Padded, ForwardsConstructorArguments) {
  padded<std::atomic<std::uint64_t>> v{42};
  EXPECT_EQ(v->load(std::memory_order_relaxed), 42u);
}

TEST(Rng, DeterministicPerSeed) {
  xoshiro256 a(7), b(7), c(8);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowStaysInRange) {
  xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(97), 97u);
  }
}

TEST(Rng, BelowCoversRange) {
  xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(TaggedPtr, RoundTrip) {
  alignas(8) int x = 0;  // node pointers are always >= 8-byte aligned
  int* p = &x;
  EXPECT_EQ(tag_of(p), 0u);
  int* t = with_tag(p, 3);
  EXPECT_EQ(tag_of(t), 3u);
  EXPECT_EQ(untag(t), p);
  EXPECT_TRUE(has_tag(t, 1));
  EXPECT_TRUE(has_tag(t, 2));
  EXPECT_FALSE(has_tag(p, 7));
}

TEST(Atomic128, LoadStoreCas) {
  atomic128 a;
  EXPECT_EQ(a.load(std::memory_order_relaxed), u128{0});
  a.store(pack128(1, 2), std::memory_order_relaxed);
  EXPECT_EQ(lo64(a.load(std::memory_order_relaxed)), 1u);
  EXPECT_EQ(hi64(a.load(std::memory_order_relaxed)), 2u);
  u128 expected = pack128(1, 2);
  EXPECT_TRUE(a.compare_exchange(expected, pack128(3, 4),
                                 std::memory_order_relaxed));
  EXPECT_EQ(lo64(a.load(std::memory_order_relaxed)), 3u);
  expected = pack128(9, 9);
  EXPECT_FALSE(a.compare_exchange(expected, pack128(5, 5),
                                  std::memory_order_relaxed));
  EXPECT_EQ(lo64(expected), 3u) << "failed CAS reports current value";
  EXPECT_EQ(hi64(expected), 4u);
}

TEST(Atomic128, ConcurrentCasCounts) {
  atomic128 a;
  constexpr int kThreads = 4, kIters = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        u128 cur = a.load(std::memory_order_relaxed);
        while (!a.compare_exchange(cur, pack128(lo64(cur) + 1, hi64(cur)),
                                   std::memory_order_acq_rel)) {
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(lo64(a.load(std::memory_order_relaxed)), std::uint64_t{kThreads} * kIters);
}

TEST(Llsc, ScSucceedsWhenGranuleUnchanged) {
  llsc_granule g(10, 20);
  auto r = g.ll(0);
  EXPECT_EQ(r.word(0), 10u);
  EXPECT_EQ(r.word(1), 20u);
  EXPECT_TRUE(g.sc(0, 11, r));
  EXPECT_EQ(lo64(g.unsafe_load()), 11u);
  EXPECT_EQ(hi64(g.unsafe_load()), 20u) << "sibling word untouched";
}

TEST(Llsc, ScFailsWhenSiblingWordChanged) {
  // The crux of §4.4: a write to the *other* word in the granule breaks
  // the reservation ("false sharing" inside the granule).
  llsc_granule g(1, 2);
  auto r = g.ll(0);
  auto r2 = g.ll(1);
  EXPECT_TRUE(g.sc(1, 99, r2));   // sibling word changes
  EXPECT_FALSE(g.sc(0, 5, r));    // our reservation is gone
  EXPECT_EQ(lo64(g.unsafe_load()), 1u);
}

TEST(Llsc, ScFailsWhenOwnWordChanged) {
  llsc_granule g(1, 2);
  auto r = g.ll(0);
  auto r2 = g.ll(0);
  EXPECT_TRUE(g.sc(0, 7, r2));
  EXPECT_FALSE(g.sc(0, 8, r));
}

TEST(SlotDirectory, IndexFormula) {
  slot_directory<int> d(4, 64);
  // Paper Figure 6: s = log2(floor(i/Kmin)) + 1 with log2(0) = -1.
  EXPECT_EQ(d.dir_index(0), 0u);
  EXPECT_EQ(d.dir_index(3), 0u);
  EXPECT_EQ(d.dir_index(4), 1u);
  EXPECT_EQ(d.dir_index(7), 1u);
  EXPECT_EQ(d.dir_index(8), 2u);
  EXPECT_EQ(d.dir_index(15), 2u);
  EXPECT_EQ(d.dir_index(16), 3u);
  EXPECT_EQ(d.base_of(0), 0u);
  EXPECT_EQ(d.base_of(1), 4u);
  EXPECT_EQ(d.base_of(2), 8u);
  EXPECT_EQ(d.base_of(3), 16u);
}

TEST(SlotDirectory, GrowthDoublesAndPreservesAddresses) {
  slot_directory<int> d(4, 64);
  EXPECT_EQ(d.size(), 4u);
  int* addr0 = &d.at(0);
  d.at(0) = 42;
  EXPECT_EQ(d.grow(), 8u);
  EXPECT_EQ(d.grow(), 16u);
  EXPECT_EQ(&d.at(0), addr0) << "slots must never move";
  EXPECT_EQ(d.at(0), 42);
  d.at(15) = 7;
  EXPECT_EQ(d.at(15), 7);
}

TEST(SlotDirectory, GrowthStopsAtCap) {
  slot_directory<int> d(4, 8);
  EXPECT_EQ(d.grow(), 8u);
  EXPECT_EQ(d.grow(), 8u) << "capped at kmax";
  EXPECT_EQ(d.size(), 8u);
}

TEST(SlotDirectory, ConcurrentGrowthIsSafe) {
  slot_directory<int> d(2, 1024);
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 6; ++i) d.grow();
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_GE(d.size(), 128u);
  EXPECT_LE(d.size(), 1024u);
  // Every covered slot must be addressable.
  for (std::size_t i = 0; i < d.size(); ++i) d.at(i) = static_cast<int>(i);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d.at(i), static_cast<int>(i));
  }
}

TEST(DebugAlloc, CountsLiveObjects) {
  debug_alloc::reset();
  int* a = debug_new<int>(1);
  int* b = debug_new<int>(2);
  EXPECT_EQ(debug_alloc::live_count(), 2u);
  debug_delete(a);
  EXPECT_EQ(debug_alloc::live_count(), 1u);
  debug_delete(b);
  EXPECT_EQ(debug_alloc::live_count(), 0u);
  EXPECT_EQ(debug_alloc::total_allocs(), 2u);
  EXPECT_EQ(debug_alloc::flush_quarantine(), 0u);
}

TEST(DebugAlloc, DetectsDoubleFree) {
  debug_alloc::reset();
  int* a = debug_new<int>(1);
  debug_alloc::deallocate(a);
  debug_alloc::deallocate(a);  // double free: recorded, not fatal
  EXPECT_EQ(debug_alloc::double_frees(), 1u);
  debug_alloc::flush_quarantine();
}

TEST(DebugAlloc, DetectsWriteAfterFree) {
  debug_alloc::reset();
  int* a = debug_new<int>(1);
  debug_alloc::deallocate(a);
  *a = 1234;  // write-after-free into the quarantined (poisoned) block
  EXPECT_EQ(debug_alloc::flush_quarantine(), 1u);
}

TEST(DebugAlloc, PoisonsFreedMemory) {
  debug_alloc::reset();
  auto* a = debug_new<std::uint32_t>(0xAABBCCDD);
  debug_alloc::deallocate(a);
  EXPECT_EQ(*reinterpret_cast<std::uint8_t*>(a), debug_alloc::poison_byte);
  debug_alloc::flush_quarantine();
}

}  // namespace
}  // namespace hyaline
