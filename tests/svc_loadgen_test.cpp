// Unit tests for the open-loop pacer (svc/loadgen.hpp), including the
// coordinated-omission regression: a stall in the worker must surface in
// the intended-start latency distribution (~50 queued requests inherit
// it) while completion-minus-actual-start sees only the one stalled op —
// the exact failure mode closed-loop recording hides.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "lab/telemetry.hpp"
#include "svc/loadgen.hpp"

namespace {

using namespace hyaline::svc;
using clock_t_ = pacer::clock;

TEST(Pacer, RateZeroDisablesPacing) {
  pacer p(arrival_kind::poisson, 0, 1);
  EXPECT_FALSE(p.paced());
  pacer q(arrival_kind::fixed, 100.0, 1);
  EXPECT_TRUE(q.paced());
}

TEST(Pacer, FixedGapsAreExact) {
  pacer p(arrival_kind::fixed, 10000.0, 1);  // 100us mean gap
  const auto t0 = clock_t_::time_point{} + std::chrono::seconds(1);
  p.anchor(t0);
  auto prev = p.next_intended();
  EXPECT_EQ(prev, t0);
  for (int i = 0; i < 1000; ++i) {
    const auto t = p.next_intended();
    EXPECT_EQ((t - prev), std::chrono::microseconds(100));
    prev = t;
  }
}

TEST(Pacer, PoissonGapsHaveTheRightMean) {
  // The schedule is pure arithmetic (next_intended never reads the
  // clock), so with a fixed seed this is a deterministic regression
  // check on the exponential sampler: mean of 20k draws within 5% of
  // 100us, and memorylessness's signature spread (plenty of gaps below
  // half the mean AND above twice the mean).
  pacer p(arrival_kind::poisson, 10000.0, 0x5eed);
  p.anchor(clock_t_::time_point{});
  auto prev = p.next_intended();
  double sum_ns = 0;
  int below_half = 0, above_double = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const auto t = p.next_intended();
    const double gap = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t - prev)
            .count());
    sum_ns += gap;
    if (gap < 50e3) ++below_half;
    if (gap > 200e3) ++above_double;
    prev = t;
  }
  const double mean = sum_ns / kDraws;
  EXPECT_NEAR(mean, 100e3, 5e3);
  // Exponential: P(< mean/2) ~ 39%, P(> 2*mean) ~ 13.5%.
  EXPECT_GT(below_half, kDraws / 4);
  EXPECT_GT(above_double, kDraws / 10);
}

TEST(Pacer, AwaitHonorsStop) {
  std::atomic<bool> stop{false};
  // Already-stopped: immediate false even for a far-future intended time.
  stop.store(true, std::memory_order_relaxed);
  EXPECT_FALSE(
      pacer::await(clock_t_::now() + std::chrono::hours(1), stop));

  // Stop flipped mid-wait: await must return well before the intended
  // time (it polls at millisecond granularity).
  stop.store(false, std::memory_order_relaxed);
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    stop.store(true, std::memory_order_relaxed);
  });
  const auto t0 = clock_t_::now();
  EXPECT_FALSE(
      pacer::await(t0 + std::chrono::hours(1), stop));
  const auto waited = clock_t_::now() - t0;
  stopper.join();
  EXPECT_LT(waited, std::chrono::seconds(5));
}

TEST(Pacer, IntendedLatencyClampsEarlyCompletions) {
  const auto t = clock_t_::time_point{} + std::chrono::seconds(2);
  EXPECT_EQ(intended_latency_ns(t, t - std::chrono::milliseconds(1)), 0u);
  EXPECT_EQ(intended_latency_ns(t, t + std::chrono::microseconds(3)),
            3000u);
}

// The satellite regression test for coordinated omission: a paced worker
// at 1 kHz suffers one 50 ms stall inside an operation. Open-loop
// recording (completion minus INTENDED start) must charge the stall to
// the ~50 requests whose schedule slots it consumed, pushing the
// recorded p99 into the tens of milliseconds; recording against the
// actual start (what a closed-loop harness effectively does) sees one
// slow op out of 300 — below the p99 — and a clean median proves the
// baseline schedule itself was on time.
TEST(Pacer, CoordinatedOmissionRegression) {
  std::atomic<bool> stop{false};
  pacer pace(arrival_kind::fixed, 1000.0, 42);
  hyaline::lab::latency_histogram intended_hist;
  hyaline::lab::latency_histogram naive_hist;

  pace.anchor(clock_t_::now());
  for (int i = 0; i < 300; ++i) {
    const auto intended = pace.next_intended();
    ASSERT_TRUE(pacer::await(intended, stop));
    const auto actual_start = clock_t_::now();
    if (i == 60) {
      // The op stalls (guard wait, page fault, scheduler preemption —
      // anything that blocks the connection's pipeline).
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    const auto done = clock_t_::now();
    intended_hist.record(intended_latency_ns(intended, done));
    naive_hist.record(intended_latency_ns(actual_start, done));
  }

  // ~50 ops inherit 1..50ms of backlog; the top 1% sit at ~50ms (their
  // log bucket spans [33.5ms, 67.1ms]).
  EXPECT_GE(intended_hist.percentile(0.99), 25e6);
  // The stalled op alone is 1 of 300 — above the 99.7th percentile, so
  // naive recording's p99 stays at the no-stall service time.
  EXPECT_LE(naive_hist.percentile(0.99), 10e6);
  // And the intended-start median is still the on-time service time:
  // the pacer did not smear the stall over the whole run.
  EXPECT_LE(intended_hist.percentile(0.50), 10e6);
}

}  // namespace
