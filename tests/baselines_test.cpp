// Unit tests for the baseline SMR schemes: Leaky, EBR, HP, HE, IBR —
// through the v2 facade (transparent guards, RAII protection handles,
// typed retire).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "smr/domain.hpp"
#include "smr/ebr.hpp"
#include "smr/hazard_eras.hpp"
#include "smr/hazard_pointers.hpp"
#include "smr/hyaline.hpp"
#include "smr/hyaline1.hpp"
#include "smr/ibr.hpp"
#include "smr/leaky.hpp"

namespace hyaline::smr {
namespace {

// Compile-time: every scheme satisfies the v2 facade...
static_assert(Domain<leaky_domain>);
static_assert(Domain<ebr_domain>);
static_assert(Domain<hp_domain>);
static_assert(Domain<he_domain>);
static_assert(Domain<ibr_domain>);
static_assert(Domain<hyaline::domain>);
static_assert(Domain<hyaline::domain_dw>);
static_assert(Domain<hyaline::domain_llsc>);
static_assert(Domain<hyaline::domain_s>);
static_assert(Domain<hyaline::domain_1>);
static_assert(Domain<hyaline::domain_1s>);

// ...and the capability tags match the paper's taxonomy.
static_assert(!ebr_domain::caps.robust && !ebr_domain::caps.pointer_publication);
static_assert(hp_domain::caps.robust && hp_domain::caps.pointer_publication);
static_assert(he_domain::caps.robust && he_domain::caps.pointer_publication);
static_assert(ibr_domain::caps.robust && !ibr_domain::caps.pointer_publication);
static_assert(ibr_domain::caps.needs_clean_edges);
static_assert(hyaline::domain::caps.supports_trim &&
              !hyaline::domain::caps.robust);
static_assert(hyaline::domain_s::caps.robust &&
              hyaline::domain_s::caps.needs_clean_edges);
static_assert(hyaline::domain_1s::caps.robust);

// Finite hazard budgets only where pointers are published.
static_assert(max_hazards_v<hp_domain> == hp_domain::max_hazards);
static_assert(max_hazards_v<he_domain> == he_domain::max_hazards);
static_assert(max_hazards_v<ebr_domain> == ~0u);
static_assert(max_hazards_v<hyaline::domain> == ~0u);

template <class D>
typename D::node* make_node(D& dom) {
  auto* n = new typename D::node;
  dom.on_alloc(n);
  return n;
}

// ---------------------------------------------------------------- Leaky --

TEST(Leaky, NeverFreesDuringRun) {
  leaky_domain dom;
  {
    leaky_domain::guard g(dom);
    for (int i = 0; i < 100; ++i) g.retire(make_node(dom));
  }
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 0u);
  EXPECT_EQ(dom.counters().unreclaimed(), 100u);
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 100u);
}

// ------------------------------------------------------------------ EBR --

TEST(Ebr, EpochAdvancesWhenQuiescent) {
  ebr_domain dom(ebr_config{2, /*advance_freq=*/1});
  const auto e0 = dom.debug_epoch();
  {
    ebr_domain::guard g(dom);
    for (int i = 0; i < 10; ++i) g.retire(make_node(dom));
  }
  EXPECT_GT(dom.debug_epoch(), e0);
}

TEST(Ebr, NodesFreeAfterTwoEpochs) {
  ebr_domain dom(ebr_config{2, 1});
  {
    ebr_domain::guard g(dom);
    g.retire(make_node(dom));
    // Churn more retires so the epoch advances and reclamation triggers.
    for (int i = 0; i < 8; ++i) g.retire(make_node(dom));
  }
  {
    ebr_domain::guard g(dom);
    for (int i = 0; i < 8; ++i) g.retire(make_node(dom));
  }
  EXPECT_GT(dom.counters().freed.load(std::memory_order_relaxed), 0u);
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), dom.counters().retired.load(std::memory_order_relaxed));
}

TEST(Ebr, StalledReaderPinsTheEpoch) {
  ebr_domain dom(ebr_config{2, 1});
  // Nested guards on one thread lease distinct tids, so the pinned guard
  // keeps its reservation while the churn loop enters and leaves.
  auto* pinned = new ebr_domain::guard(dom);  // enters and never leaves
  const auto e0 = dom.debug_epoch();
  {
    ebr_domain::guard g(dom);
    for (int i = 0; i < 50; ++i) g.retire(make_node(dom));
  }
  EXPECT_LE(dom.debug_epoch(), e0 + 1)
      << "the stalled reservation must block advances past its epoch";
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 0u)
      << "non-robust: nothing reclaims while a reader is stalled";
  delete pinned;
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), dom.counters().retired.load(std::memory_order_relaxed));
}

// ------------------------------------------------------------------- HP --

TEST(Hp, HazardProtectsNodeFromScan) {
  hp_domain dom(hp_config{2, /*scan_threshold=*/1});
  auto* victim = make_node(dom);
  std::atomic<hp_domain::node*> src{victim};

  hp_domain::guard reader(dom);
  auto h = reader.protect(src);
  EXPECT_EQ(h.get(), victim);
  {
    hp_domain::guard writer(dom);     // nested: its own tid and hazards
    src.store(nullptr, std::memory_order_release);
    writer.retire(victim);            // threshold 1: scan runs immediately
    for (int i = 0; i < 10; ++i) {    // more retires, more scans
      writer.retire(make_node(dom));
    }
  }
  EXPECT_LT(dom.counters().freed.load(std::memory_order_relaxed), dom.counters().retired.load(std::memory_order_relaxed))
      << "the hazarded victim must survive every scan";
  // The handle dies; the hazard slot clears and the victim is reclaimable.
  h.reset();
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), dom.counters().retired.load(std::memory_order_relaxed));
}

TEST(Hp, ProtectReloadsUntilStable) {
  hp_domain dom(hp_config{1, 100});
  auto* a = make_node(dom);
  auto* b = make_node(dom);
  std::atomic<hp_domain::node*> src{a};
  hp_domain::guard g(dom);
  EXPECT_EQ(g.protect(src).get(), a);
  src.store(b, std::memory_order_release);
  EXPECT_EQ(g.protect(src).get(), b);
  delete a;
  delete b;
}

TEST(Hp, HandlesRecycleSlots) {
  // max_hazards slots support arbitrarily many sequential protections as
  // long as at most max_hazards handles are live at once.
  hp_domain dom(hp_config{1, 100});
  auto* n = make_node(dom);
  std::atomic<hp_domain::node*> src{n};
  hp_domain::guard g(dom);
  for (int round = 0; round < 4; ++round) {
    std::vector<hp_domain::protected_ptr<hp_domain::node>> held;
    for (unsigned i = 0; i < hp_domain::max_hazards; ++i) {
      held.push_back(g.protect(src));
      EXPECT_EQ(held.back().get(), n);
    }
  }  // all slots released; next round leases them again
  delete n;
}

TEST(Hp, ScanThresholdBoundsRetiredList) {
  hp_domain dom(hp_config{1, /*scan_threshold=*/8});
  {
    hp_domain::guard g(dom);
    for (int i = 0; i < 64; ++i) g.retire(make_node(dom));
  }
  // No hazards held: every scan frees the whole list.
  EXPECT_GE(dom.counters().freed.load(std::memory_order_relaxed), 56u);
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 64u);
}

// ------------------------------------------------------------------- HE --

TEST(He, BirthAndRetireErasBracketLifetimes) {
  he_domain dom(he_config{2, /*era_freq=*/1, /*scan_threshold=*/1});
  auto* victim = make_node(dom);
  std::atomic<he_domain::node*> src{victim};
  he_domain::guard reader(dom);
  auto h = reader.protect(src);
  EXPECT_EQ(h.get(), victim);
  {
    he_domain::guard writer(dom);
    writer.retire(victim);
    for (int i = 0; i < 10; ++i) writer.retire(make_node(dom));
  }
  EXPECT_LT(dom.counters().freed.load(std::memory_order_relaxed), dom.counters().retired.load(std::memory_order_relaxed))
      << "reader's published era lies inside the victim's interval";
  h.reset();
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), dom.counters().retired.load(std::memory_order_relaxed));
}

TEST(He, OldReservationDoesNotPinNewNodes) {
  he_domain dom(he_config{2, 1, /*scan_threshold=*/4});
  auto* early = make_node(dom);
  std::atomic<he_domain::node*> src{early};
  he_domain::guard reader(dom);
  auto h = reader.protect(src);  // era reserved "early"
  std::uint64_t freed_before;
  {
    he_domain::guard writer(dom);
    // Nodes born after the reader's reservation are reclaimable.
    for (int i = 0; i < 32; ++i) writer.retire(make_node(dom));
    freed_before = dom.counters().freed.load(std::memory_order_relaxed);
  }
  EXPECT_GT(freed_before, 0u)
      << "robust: a parked era only pins its own interval";
  h.reset();
  delete early;
}

// ------------------------------------------------------------------ IBR --

TEST(Ibr, IntervalOverlapBlocksJustThatNode) {
  ibr_domain dom(ibr_config{2, /*era_freq=*/1, /*scan_threshold=*/1});
  auto* victim = make_node(dom);
  std::atomic<ibr_domain::node*> src{victim};
  ibr_domain::guard* reader = new ibr_domain::guard(dom);
  EXPECT_EQ(reader->protect(src).get(), victim);
  {
    ibr_domain::guard writer(dom);
    writer.retire(victim);
    for (int i = 0; i < 10; ++i) writer.retire(make_node(dom));
  }
  EXPECT_LT(dom.counters().freed.load(std::memory_order_relaxed), dom.counters().retired.load(std::memory_order_relaxed));
  delete reader;  // reservation interval closes
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), dom.counters().retired.load(std::memory_order_relaxed));
}

TEST(Ibr, StalledReaderPinsOnlyItsInterval) {
  ibr_domain dom(ibr_config{2, 1, 4});
  auto* parked_guard = new ibr_domain::guard(dom);  // reserves [e, e]
  {
    ibr_domain::guard writer(dom);
    for (int i = 0; i < 64; ++i) writer.retire(make_node(dom));
  }
  EXPECT_GT(dom.counters().freed.load(std::memory_order_relaxed), 0u)
      << "nodes born after the parked interval must still reclaim";
  delete parked_guard;
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), dom.counters().retired.load(std::memory_order_relaxed));
}

TEST(Ibr, ProtectExtendsUpperBound) {
  ibr_domain dom(ibr_config{1, 1, 100});
  std::atomic<ibr_domain::node*> src{nullptr};
  ibr_domain::guard g(dom);
  std::vector<ibr_domain::node*> nodes;
  for (int i = 0; i < 8; ++i) nodes.push_back(make_node(dom));  // era moves
  EXPECT_EQ(g.protect(src).get(), nullptr);  // must not loop forever
  for (auto* n : nodes) delete n;
}

// ----------------------------------------------- config validation -------

TEST(ConfigValidation, ZeroMaxThreadsIsRejected) {
  EXPECT_THROW(ebr_domain(ebr_config{0, 64}), std::invalid_argument);
  EXPECT_THROW(hp_domain(hp_config{0, 0}), std::invalid_argument);
  EXPECT_THROW(he_domain(he_config{0, 64, 0}), std::invalid_argument);
  EXPECT_THROW(ibr_domain(ibr_config{0, 64, 0}), std::invalid_argument);
}

TEST(ConfigValidation, PoolExhaustionThrowsInsteadOfCorrupting) {
  ebr_domain dom(ebr_config{2, 64});
  ebr_domain::guard g0(dom);
  ebr_domain::guard g1(dom);  // nested: second tid
  EXPECT_THROW(ebr_domain::guard g2(dom), std::runtime_error)
      << "three live guards on a 2-thread domain must fail loudly";
}

// --------------------------------------------------- cross-scheme churn --

template <class D>
class BaselineChurnTest : public ::testing::Test {};

using Baselines =
    ::testing::Types<leaky_domain, ebr_domain, hp_domain, he_domain,
                     ibr_domain>;
TYPED_TEST_SUITE(BaselineChurnTest, Baselines);

TYPED_TEST(BaselineChurnTest, ConcurrentChurnReclaimsEverything) {
  constexpr unsigned kThreads = 4;
  constexpr int kOps = 10000;
  TypeParam dom(kThreads);
  std::vector<std::thread> ts;
  std::atomic<typename TypeParam::node*> shared{nullptr};
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        typename TypeParam::guard g(dom);
        g.protect(shared);
        g.retire(make_node(dom));
      }
    });
  }
  for (auto& th : ts) th.join();
  dom.drain();
  EXPECT_EQ(dom.counters().retired.load(std::memory_order_relaxed), std::uint64_t{kThreads} * kOps);
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), std::uint64_t{kThreads} * kOps);
}

}  // namespace
}  // namespace hyaline::smr
