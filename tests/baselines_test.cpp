// Unit tests for the baseline SMR schemes: Leaky, EBR, HP, HE, IBR.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "smr/domain.hpp"
#include "smr/ebr.hpp"
#include "smr/hazard_eras.hpp"
#include "smr/hazard_pointers.hpp"
#include "smr/hyaline.hpp"
#include "smr/hyaline1.hpp"
#include "smr/ibr.hpp"
#include "smr/leaky.hpp"

namespace hyaline::smr {
namespace {

// Compile-time: every scheme satisfies the uniform facade.
static_assert(Domain<leaky_domain>);
static_assert(Domain<ebr_domain>);
static_assert(Domain<hp_domain>);
static_assert(Domain<he_domain>);
static_assert(Domain<ibr_domain>);
static_assert(Domain<hyaline::domain>);
static_assert(Domain<hyaline::domain_dw>);
static_assert(Domain<hyaline::domain_llsc>);
static_assert(Domain<hyaline::domain_s>);
static_assert(Domain<hyaline::domain_1>);
static_assert(Domain<hyaline::domain_1s>);

template <class D>
typename D::node* make_node(D& dom) {
  auto* n = new typename D::node;
  dom.on_alloc(n);
  return n;
}

// ---------------------------------------------------------------- Leaky --

TEST(Leaky, NeverFreesDuringRun) {
  leaky_domain dom;
  {
    leaky_domain::guard g(dom, 0);
    for (int i = 0; i < 100; ++i) g.retire(make_node(dom));
  }
  EXPECT_EQ(dom.counters().freed.load(), 0u);
  EXPECT_EQ(dom.counters().unreclaimed(), 100u);
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(), 100u);
}

// ------------------------------------------------------------------ EBR --

TEST(Ebr, EpochAdvancesWhenQuiescent) {
  ebr_domain dom(ebr_config{2, /*advance_freq=*/1});
  const auto e0 = dom.debug_epoch();
  {
    ebr_domain::guard g(dom, 0);
    for (int i = 0; i < 10; ++i) g.retire(make_node(dom));
  }
  EXPECT_GT(dom.debug_epoch(), e0);
}

TEST(Ebr, NodesFreeAfterTwoEpochs) {
  ebr_domain dom(ebr_config{2, 1});
  {
    ebr_domain::guard g(dom, 0);
    g.retire(make_node(dom));
    // Churn more retires so the epoch advances and reclamation triggers.
    for (int i = 0; i < 8; ++i) g.retire(make_node(dom));
  }
  {
    ebr_domain::guard g(dom, 0);
    for (int i = 0; i < 8; ++i) g.retire(make_node(dom));
  }
  EXPECT_GT(dom.counters().freed.load(), 0u);
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(), dom.counters().retired.load());
}

TEST(Ebr, StalledReaderPinsTheEpoch) {
  ebr_domain dom(ebr_config{2, 1});
  auto* pinned = new ebr_domain::guard(dom, 1);  // enters and never leaves
  const auto e0 = dom.debug_epoch();
  {
    ebr_domain::guard g(dom, 0);
    for (int i = 0; i < 50; ++i) g.retire(make_node(dom));
  }
  EXPECT_LE(dom.debug_epoch(), e0 + 1)
      << "the stalled reservation must block advances past its epoch";
  EXPECT_EQ(dom.counters().freed.load(), 0u)
      << "non-robust: nothing reclaims while a reader is stalled";
  delete pinned;
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(), dom.counters().retired.load());
}

// ------------------------------------------------------------------- HP --

TEST(Hp, HazardProtectsNodeFromScan) {
  hp_domain dom(hp_config{2, 2, /*scan_threshold=*/1});
  auto* victim = make_node(dom);
  std::atomic<hp_domain::node*> src{victim};

  hp_domain::guard reader(dom, 0);
  EXPECT_EQ(reader.protect(0, src), victim);
  {
    hp_domain::guard writer(dom, 1);
    src.store(nullptr);
    writer.retire(victim);          // threshold 1: scan runs immediately
    for (int i = 0; i < 10; ++i) {  // more retires, more scans
      writer.retire(make_node(dom));
    }
  }
  EXPECT_LT(dom.counters().freed.load(), dom.counters().retired.load())
      << "the hazarded victim must survive every scan";
  // Reader drops its hazard; now the victim is reclaimable.
  reader.~guard();
  new (&reader) hp_domain::guard(dom, 0);
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(), dom.counters().retired.load());
}

TEST(Hp, ProtectReloadsUntilStable) {
  hp_domain dom(hp_config{1, 1, 100});
  auto* a = make_node(dom);
  auto* b = make_node(dom);
  std::atomic<hp_domain::node*> src{a};
  hp_domain::guard g(dom, 0);
  EXPECT_EQ(g.protect(0, src), a);
  src.store(b);
  EXPECT_EQ(g.protect(0, src), b);
  delete a;
  delete b;
}

TEST(Hp, ScanThresholdBoundsRetiredList) {
  hp_domain dom(hp_config{1, 1, /*scan_threshold=*/8});
  {
    hp_domain::guard g(dom, 0);
    for (int i = 0; i < 64; ++i) g.retire(make_node(dom));
  }
  // No hazards held: every scan frees the whole list.
  EXPECT_GE(dom.counters().freed.load(), 56u);
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(), 64u);
}

// ------------------------------------------------------------------- HE --

TEST(He, BirthAndRetireErasBracketLifetimes) {
  he_domain dom(he_config{2, 2, /*era_freq=*/1, /*scan_threshold=*/1});
  auto* victim = make_node(dom);
  std::atomic<he_domain::node*> src{victim};
  hyaline::smr::he_domain::guard reader(dom, 0);
  EXPECT_EQ(reader.protect(0, src), victim);
  {
    he_domain::guard writer(dom, 1);
    writer.retire(victim);
    for (int i = 0; i < 10; ++i) writer.retire(make_node(dom));
  }
  EXPECT_LT(dom.counters().freed.load(), dom.counters().retired.load())
      << "reader's published era lies inside the victim's interval";
  reader.~guard();
  new (&reader) he_domain::guard(dom, 0);
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(), dom.counters().retired.load());
}

TEST(He, OldReservationDoesNotPinNewNodes) {
  he_domain dom(he_config{2, 2, 1, /*scan_threshold=*/4});
  auto* early = make_node(dom);
  std::atomic<he_domain::node*> src{early};
  he_domain::guard reader(dom, 0);
  reader.protect(0, src);  // era reserved "early"
  std::uint64_t freed_before;
  {
    he_domain::guard writer(dom, 1);
    // Nodes born after the reader's reservation are reclaimable.
    for (int i = 0; i < 32; ++i) writer.retire(make_node(dom));
    freed_before = dom.counters().freed.load();
  }
  EXPECT_GT(freed_before, 0u)
      << "robust: a parked era only pins its own interval";
  delete early;
}

// ------------------------------------------------------------------ IBR --

TEST(Ibr, IntervalOverlapBlocksJustThatNode) {
  ibr_domain dom(ibr_config{2, /*era_freq=*/1, /*scan_threshold=*/1});
  auto* victim = make_node(dom);
  std::atomic<ibr_domain::node*> src{victim};
  ibr_domain::guard reader(dom, 0);
  EXPECT_EQ(reader.protect(0, src), victim);
  {
    ibr_domain::guard writer(dom, 1);
    writer.retire(victim);
    for (int i = 0; i < 10; ++i) writer.retire(make_node(dom));
  }
  EXPECT_LT(dom.counters().freed.load(), dom.counters().retired.load());
  reader.~guard();
  new (&reader) ibr_domain::guard(dom, 0);
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(), dom.counters().retired.load());
}

TEST(Ibr, StalledReaderPinsOnlyItsInterval) {
  ibr_domain dom(ibr_config{2, 1, 4});
  auto* parked_guard = new ibr_domain::guard(dom, 0);  // reserves [e, e]
  {
    ibr_domain::guard writer(dom, 1);
    for (int i = 0; i < 64; ++i) writer.retire(make_node(dom));
  }
  EXPECT_GT(dom.counters().freed.load(), 0u)
      << "nodes born after the parked interval must still reclaim";
  delete parked_guard;
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(), dom.counters().retired.load());
}

TEST(Ibr, ProtectExtendsUpperBound) {
  ibr_domain dom(ibr_config{1, 1, 100});
  std::atomic<ibr_domain::node*> src{nullptr};
  ibr_domain::guard g(dom, 0);
  std::vector<ibr_domain::node*> nodes;
  for (int i = 0; i < 8; ++i) nodes.push_back(make_node(dom));  // era moves
  EXPECT_EQ(g.protect(0, src), nullptr);  // must not loop forever
  for (auto* n : nodes) delete n;
}

// --------------------------------------------------- cross-scheme churn --

template <class D>
class BaselineChurnTest : public ::testing::Test {};

using Baselines =
    ::testing::Types<leaky_domain, ebr_domain, hp_domain, he_domain,
                     ibr_domain>;
TYPED_TEST_SUITE(BaselineChurnTest, Baselines);

TYPED_TEST(BaselineChurnTest, ConcurrentChurnReclaimsEverything) {
  constexpr unsigned kThreads = 4;
  constexpr int kOps = 10000;
  TypeParam dom(kThreads);
  std::vector<std::thread> ts;
  std::atomic<typename TypeParam::node*> shared{nullptr};
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        typename TypeParam::guard g(dom, t);
        g.protect(0, shared);
        g.retire(make_node(dom));
      }
    });
  }
  for (auto& th : ts) th.join();
  dom.drain();
  EXPECT_EQ(dom.counters().retired.load(), std::uint64_t{kThreads} * kOps);
  EXPECT_EQ(dom.counters().freed.load(), std::uint64_t{kThreads} * kOps);
}

}  // namespace
}  // namespace hyaline::smr
