// Michael hash map: semantics and concurrency over every SMR scheme.
#include "ds/michael_hashmap.hpp"

#include "ds_test_common.hpp"

namespace hyaline {
namespace {

using test_support::AllSchemes;

template <class D>
class MapTest : public test_support::ds_fixture<D, ds::michael_hashmap> {};

TYPED_TEST_SUITE(MapTest, AllSchemes);

TYPED_TEST(MapTest, EmptyMapBehaviour) {
  auto g = this->guard();
  EXPECT_FALSE(this->ds_->contains(g, 1));
  EXPECT_FALSE(this->ds_->remove(g, 1));
  EXPECT_EQ(this->ds_->unsafe_size(), 0u);
}

TYPED_TEST(MapTest, InsertGetRemoveRoundTrip) {
  auto g = this->guard();
  EXPECT_TRUE(this->ds_->insert(g, 123456789, 42));
  std::uint64_t v = 0;
  EXPECT_TRUE(this->ds_->get(g, 123456789, v));
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(this->ds_->remove(g, 123456789));
  EXPECT_FALSE(this->ds_->get(g, 123456789, v));
}

TYPED_TEST(MapTest, DuplicateInsertFails) {
  auto g = this->guard();
  EXPECT_TRUE(this->ds_->insert(g, 9, 1));
  EXPECT_FALSE(this->ds_->insert(g, 9, 2));
}

TYPED_TEST(MapTest, KeysCollidingInBucketsCoexist) {
  // The map has a fixed bucket count; keys 1..N with N >> buckets force
  // collisions into the same HM-list buckets.
  auto g = this->guard();
  for (std::uint64_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(this->ds_->insert(g, k, k * 3));
  }
  for (std::uint64_t k = 0; k < 2000; ++k) {
    std::uint64_t v = 0;
    ASSERT_TRUE(this->ds_->get(g, k, v));
    ASSERT_EQ(v, k * 3);
  }
  EXPECT_EQ(this->ds_->unsafe_size(), 2000u);
}

TYPED_TEST(MapTest, ChurnSingleBucketReclaims) {
  for (int round = 0; round < 200; ++round) {
    auto g = this->guard();
    ASSERT_TRUE(this->ds_->insert(g, 7, round));
    ASSERT_TRUE(this->ds_->remove(g, 7));
  }
  EXPECT_GE(this->dom_->counters().retired.load(std::memory_order_relaxed), 200u);
}

TYPED_TEST(MapTest, MixedStressFourThreads) {
  test_support::run_mixed_stress(*this->dom_, *this->ds_, 4, 8000, 512);
}

TYPED_TEST(MapTest, OversubscribedThreads) {
  // More threads than any realistic core count on CI: the regime where
  // the paper's Figure 8c separates Hyaline from the field.
  test_support::run_mixed_stress(*this->dom_, *this->ds_, 8, 2000, 256);
}

}  // namespace
}  // namespace hyaline
