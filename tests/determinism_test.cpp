// The --seed contract, made a guarantee: with an operation budget
// (workload_config::op_limit) a single-threaded run is a pure function of
// its seed — every repetition performs exactly op_limit operations, and
// the recorded history (kind, key, result per op, in order) is identical
// across runs. A time-based stop cannot promise that (it cuts the op
// stream wherever the clock lands); the budget removes the clock from the
// picture, which is what lets this test compare runs byte-for-byte.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "check/history.hpp"
#include "check/linearize.hpp"
#include "harness/registry.hpp"
#include "obs/trace.hpp"

namespace hyaline {
namespace {

using op_sig = std::tuple<check::op_kind, std::uint64_t, bool>;

struct run_out {
  std::uint64_t total_ops = 0;
  std::vector<op_sig> history;
};

run_out one_run(const char* scheme, const char* structure,
                std::uint64_t seed) {
  const auto& reg = harness::scheme_registry::instance();
  harness::runner_fn run = reg.runner(scheme, structure);
  EXPECT_NE(run, nullptr);
  check::history_recorder rec;
  harness::workload_config cfg;
  cfg.threads = 1;
  cfg.repeats = 2;
  cfg.op_limit = 20000;
  // Upper bound only: the driver returns as soon as the budget is spent.
  cfg.duration_ms = 10000;
  cfg.key_range = 512;
  cfg.prefill = 128;
  cfg.seed = seed;
  cfg.history = &rec;
  harness::scheme_params p;
  p.max_threads = 4;
  const harness::workload_result r = run(p, cfg);
  run_out out;
  out.total_ops = r.total_ops;
  for (const check::op_record& o : rec.collect()) {
    out.history.emplace_back(o.kind, o.key, o.ok);
  }
  return out;
}

TEST(SeededDeterminism, SameSeedSameOpsColumnAndSameHistory) {
  const run_out a = one_run("Epoch", "hashmap", 0xfeed);
  const run_out b = one_run("Epoch", "hashmap", 0xfeed);
  // Each of the 2 repetitions retires exactly its 20000-op budget...
  EXPECT_EQ(a.total_ops, 2u * 20000u);
  // ...and the per-rep ops columns (and everything else derived from the
  // op stream) match because the streams themselves are identical.
  EXPECT_EQ(a.total_ops, b.total_ops);
  ASSERT_EQ(a.history.size(), b.history.size());
  EXPECT_TRUE(a.history == b.history)
      << "same seed, same config must replay the identical op stream";
}

TEST(SeededDeterminism, TracingDoesNotPerturbTheOpStream) {
  // The tracer observes the run; it must not participate in it. The same
  // seed replays the identical history whether the rings are recording or
  // not — which is also what licenses shipping the emit() seams
  // compiled-in on every benchmark path.
  const run_out off = one_run("Epoch", "hashmap", 0xfeed);
  obs::reset();
  obs::set_ring_capacity(4096);
  obs::set_tracing(true);
  const run_out on = one_run("Epoch", "hashmap", 0xfeed);
  std::uint64_t recorded = 0;
  for (const obs::thread_trace& t : obs::snapshot()) recorded += t.emitted;
  obs::reset();
  obs::set_ring_capacity(8192);  // restore the shipping default
  EXPECT_GT(recorded, 0u) << "tracing was on; the run must leave records";
  EXPECT_EQ(off.total_ops, on.total_ops);
  EXPECT_TRUE(off.history == on.history)
      << "enabling the tracer must not change the op stream";
}

TEST(SeededDeterminism, DifferentSeedDifferentStream) {
  const run_out a = one_run("Epoch", "hashmap", 0xfeed);
  const run_out c = one_run("Epoch", "hashmap", 0xbeef);
  EXPECT_EQ(a.total_ops, c.total_ops) << "budgets bound ops, not the seed";
  EXPECT_FALSE(a.history == c.history)
      << "different seeds must draw different streams";
}

TEST(SeededDeterminism, BudgetedHistoryIsLinearizable) {
  // The recorded stream from a budgeted run feeds the oracle like any
  // other: single-threaded histories are sequential and must pass.
  const auto& reg = harness::scheme_registry::instance();
  harness::runner_fn run = reg.runner("Hyaline-S", "list");
  ASSERT_NE(run, nullptr);
  check::history_recorder rec;
  harness::workload_config cfg;
  cfg.threads = 1;
  cfg.repeats = 1;
  cfg.op_limit = 5000;
  cfg.duration_ms = 10000;
  cfg.key_range = 64;
  cfg.prefill = 16;
  cfg.history = &rec;
  harness::scheme_params p;
  p.max_threads = 4;
  (void)run(p, cfg);
  const check::check_result res =
      check::check_history(check::semantics::set, rec.collect(), false);
  EXPECT_TRUE(res.ok) << (res.bad ? res.bad->what : "");
  EXPECT_EQ(res.undecided, 0u) << "sequential histories have no overlap";
}

}  // namespace
}  // namespace hyaline
