// Bonsai (path-copy weight-balanced) tree: semantics, balance, and
// concurrency over the snapshot-safe schemes (no HP/HE, as in the paper).
#include "ds/bonsai_tree.hpp"

#include <cmath>

#include "ds_test_common.hpp"

namespace hyaline {
namespace {

using test_support::SnapshotSafeSchemes;

template <class D>
class BonsaiTest : public test_support::ds_fixture<D, ds::bonsai_tree> {};

TYPED_TEST_SUITE(BonsaiTest, SnapshotSafeSchemes);

TYPED_TEST(BonsaiTest, EmptyTreeBehaviour) {
  auto g = this->guard();
  EXPECT_FALSE(this->ds_->contains(g, 1));
  EXPECT_FALSE(this->ds_->remove(g, 1));
  EXPECT_EQ(this->ds_->unsafe_size(), 0u);
}

TYPED_TEST(BonsaiTest, InsertGetRemoveRoundTrip) {
  auto g = this->guard();
  EXPECT_TRUE(this->ds_->insert(g, 10, 100));
  std::uint64_t v = 0;
  EXPECT_TRUE(this->ds_->get(g, 10, v));
  EXPECT_EQ(v, 100u);
  EXPECT_TRUE(this->ds_->remove(g, 10));
  EXPECT_FALSE(this->ds_->contains(g, 10));
}

TYPED_TEST(BonsaiTest, DuplicateInsertFails) {
  auto g = this->guard();
  EXPECT_TRUE(this->ds_->insert(g, 3, 1));
  EXPECT_FALSE(this->ds_->insert(g, 3, 2));
}

TYPED_TEST(BonsaiTest, RemoveInternalNodeWithTwoChildren) {
  auto g = this->guard();
  for (std::uint64_t k : {50u, 25u, 75u, 12u, 37u, 62u, 87u}) {
    ASSERT_TRUE(this->ds_->insert(g, k, k));
  }
  // 50 is the root with two subtrees: removal goes through extract_min.
  EXPECT_TRUE(this->ds_->remove(g, 50));
  EXPECT_FALSE(this->ds_->contains(g, 50));
  for (std::uint64_t k : {25u, 75u, 12u, 37u, 62u, 87u}) {
    EXPECT_TRUE(this->ds_->contains(g, k)) << "k=" << k;
  }
  EXPECT_EQ(this->ds_->unsafe_size(), 6u);
}

TYPED_TEST(BonsaiTest, SequentialInsertionStaysBalanced) {
  // Sorted insertion is the worst case for an unbalanced BST; the
  // weight-balance invariant keeps lookups logarithmic. We verify
  // indirectly: 4096 sorted inserts must complete quickly and the size
  // must be exact (a degenerate 4096-deep recursion would also blow the
  // stack in debug builds).
  constexpr std::uint64_t kN = 4096;
  {
    auto g = this->guard();
    for (std::uint64_t k = 0; k < kN; ++k) {
      ASSERT_TRUE(this->ds_->insert(g, k, k));
    }
    for (std::uint64_t k = 0; k < kN; ++k) {
      ASSERT_TRUE(this->ds_->contains(g, k));
    }
  }
  EXPECT_EQ(this->ds_->unsafe_size(), kN);
}

TYPED_TEST(BonsaiTest, UpdateChurnRetiresPathCopies) {
  {
    auto g = this->guard();
    for (std::uint64_t k = 0; k < 64; ++k) {
      ASSERT_TRUE(this->ds_->insert(g, k, k));
    }
  }
  const auto retired_before = this->dom_->counters().retired.load(std::memory_order_relaxed);
  {
    auto g = this->guard();
    ASSERT_TRUE(this->ds_->remove(g, 32));
    ASSERT_TRUE(this->ds_->insert(g, 32, 1));
  }
  // Each update copies O(log n) path nodes and retires the originals.
  EXPECT_GT(this->dom_->counters().retired.load(std::memory_order_relaxed), retired_before + 2);
}

TYPED_TEST(BonsaiTest, MixedStressFourThreads) {
  test_support::run_mixed_stress(*this->dom_, *this->ds_, 4, 4000, 256);
}

TYPED_TEST(BonsaiTest, ReadersSeeConsistentSnapshots) {
  // Writers churn two keys that are always inserted/removed as a pair;
  // readers must never observe a state where the *older* key of the pair
  // is missing while the newer is present (single root CAS = atomic
  // snapshot switch).
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread writer([&] {
    for (int i = 0; i < 4000; ++i) {
      {
        typename TypeParam::guard g(*this->dom_);
        this->ds_->insert(g, 1, i);
      }
      {
        typename TypeParam::guard g(*this->dom_);
        this->ds_->insert(g, 2, i);
      }
      {
        typename TypeParam::guard g(*this->dom_);
        this->ds_->remove(g, 2);
      }
      {
        typename TypeParam::guard g(*this->dom_);
        this->ds_->remove(g, 1);
      }
    }
    stop.store(true, std::memory_order_release);
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      typename TypeParam::guard g(*this->dom_);
      std::uint64_t v2 = 0, v1 = 0;
      const bool has2 = this->ds_->get(g, 2, v2);
      const bool has1 = this->ds_->get(g, 1, v1);
      // Round i writes 1 (value i) before 2 (value i). Key 2's value read
      // *first* therefore can never exceed key 1's value read *second*:
      // round numbers only grow with time.
      if (has2 && has1 && v1 < v2) violations.fetch_add(1, std::memory_order_relaxed);
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(violations.load(std::memory_order_relaxed), 0);
}

}  // namespace
}  // namespace hyaline
