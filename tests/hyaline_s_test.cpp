// Unit tests for Hyaline-S (Figure 5) and the §4.3 adaptive resizing: the
// era clock, per-slot access eras (touch), the stale-slot skip in retire,
// Ack accounting, stalled-slot avoidance in enter, and directory growth.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "smr/hyaline.hpp"

namespace hyaline {
namespace {

config s_cfg(std::size_t slots, std::size_t max_slots = 0,
             std::uint64_t era_freq = 4, std::int64_t ack = 8192) {
  config c;
  c.slots = slots;
  c.max_slots = max_slots;
  c.batch_min = 1;  // batch size = k+1
  c.era_freq = era_freq;
  c.ack_threshold = ack;
  return c;
}

domain_s::node* make_node(domain_s& dom) {
  auto* n = new domain_s::node;
  dom.on_alloc(n);
  return n;
}

TEST(HyalineS, EraClockAdvancesEveryFreqAllocations) {
  domain_s dom(s_cfg(2, 0, /*era_freq=*/4));
  const std::uint64_t before = dom.debug_alloc_era();
  std::vector<domain_s::node*> nodes;
  for (int i = 0; i < 8; ++i) nodes.push_back(make_node(dom));
  EXPECT_EQ(dom.debug_alloc_era(), before + 2)
      << "one bump per era_freq allocations (Fig. 5 init_node)";
  for (auto* n : nodes) delete n;
}

TEST(HyalineS, ProtectUpdatesSlotAccessEra) {
  domain_s dom(s_cfg(2));
  std::vector<domain_s::node*> nodes;
  for (int i = 0; i < 8; ++i) nodes.push_back(make_node(dom));  // era moves
  EXPECT_LT(dom.debug_access_era(0), dom.debug_alloc_era());
  {
    domain_s::guard g(dom, 0);
    std::atomic<domain_s::node*> src{nodes[0]};
    EXPECT_EQ(g.protect(src).get(), nodes[0]);
    EXPECT_EQ(dom.debug_access_era(0), dom.debug_alloc_era())
        << "deref must bring the slot era up to the clock";
    EXPECT_EQ(dom.debug_access_era(1), 0u) << "other slots untouched";
  }
  for (auto* n : nodes) delete n;
}

TEST(HyalineS, RetireSkipsSlotsWithStaleEras) {
  // The robustness mechanism: a thread that entered but never dereferenced
  // anything newer than the batch's min birth era cannot hold references,
  // so its slot is skipped and it does not delay reclamation.
  domain_s dom(s_cfg(2));
  std::atomic<bool> hold{true};
  std::atomic<bool> entered{false};
  std::thread parked([&] {
    domain_s::guard g(dom, 1);  // enters slot 1, derefs nothing
    entered.store(true, std::memory_order_release);
    while (hold.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  while (!entered.load(std::memory_order_acquire)) std::this_thread::yield();

  {
    domain_s::guard g(dom, 0);
    for (int i = 0; i < 3; ++i) g.retire(make_node(dom));
  }
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 3u)
      << "the parked thread's slot has a stale era and must be skipped";
  hold.store(false, std::memory_order_release);
  parked.join();
}

TEST(HyalineS, FreshEraSlotIsCoveredAndBlocksReclamation) {
  // Counterpart: if the parked thread *did* dereference a fresh node, its
  // slot is covered and reclamation must wait for it.
  domain_s dom(s_cfg(2));
  std::atomic<bool> hold{true};
  std::atomic<bool> ready{false};
  auto* seen = make_node(dom);
  std::atomic<domain_s::node*> src{seen};
  std::thread parked([&] {
    domain_s::guard g(dom, 1);
    g.protect(src);  // slot 1 era becomes current
    ready.store(true, std::memory_order_release);
    while (hold.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  while (!ready.load(std::memory_order_acquire)) std::this_thread::yield();

  {
    domain_s::guard g(dom, 0);
    for (int i = 0; i < 3; ++i) g.retire(make_node(dom));
  }
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 0u)
      << "slot 1 has a fresh era: the batch must wait for the thread";
  EXPECT_GT(dom.debug_ack(1), 0) << "Ack accumulated the HRef snapshot";
  hold.store(false, std::memory_order_release);
  parked.join();
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), dom.counters().retired.load(std::memory_order_relaxed));
  delete seen;
}

TEST(HyalineS, AckReflectsInsertionsAndTraversals) {
  domain_s dom(s_cfg(2));
  {
    domain_s::guard g(dom, 0);
    std::atomic<domain_s::node*> src{nullptr};
    g.protect(src);  // freshen our own slot era
    for (int i = 0; i < 3; ++i) g.retire(make_node(dom));  // batch 1
    EXPECT_EQ(dom.debug_ack(0), 1) << "+HRef (=1) on insertion";
    // Allocate batch 2 first, then deref (so our slot era covers the
    // batch's min birth era), then retire.
    domain_s::node* batch2[3];
    for (auto*& n : batch2) n = make_node(dom);
    g.protect(src);
    for (auto* n : batch2) g.retire(n);
    EXPECT_EQ(dom.debug_ack(0), 2);
  }
  // Our leave acknowledged both batches: batch 1 via traverse and the
  // head batch via the null-handle correction (see leave()), so the slot
  // does not accumulate Ack drift while it is healthy.
  EXPECT_EQ(dom.debug_ack(0), 0);
}

TEST(HyalineS, EnterHopsPastAckedOutSlot) {
  domain_s dom(s_cfg(2, 0, 4, /*ack_threshold=*/1));
  // Stall slot 0 with a guard whose era is fresh, then retire enough to
  // push Ack[0] over the threshold.
  std::atomic<bool> hold{true};
  std::atomic<bool> ready{false};
  auto* seen = new domain_s::node;
  dom.on_alloc(seen);
  std::atomic<domain_s::node*> src{seen};
  std::thread parked([&] {
    domain_s::guard g(dom, 0);
    g.protect(src);
    ready.store(true, std::memory_order_release);
    while (hold.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  while (!ready.load(std::memory_order_acquire)) std::this_thread::yield();
  {
    domain_s::guard g(dom, 1);
    for (int i = 0; i < 3; ++i) g.retire(make_node(dom));
  }
  ASSERT_GT(dom.debug_ack(0), 0);
  {
    domain_s::guard g(dom, 0);  // wants slot 0, must hop to slot 1
    EXPECT_EQ(g.slot(), 1u);
  }
  hold.store(false, std::memory_order_release);
  parked.join();
  dom.drain();
  delete seen;
}

TEST(HyalineS, AdaptiveGrowthWhenAllSlotsStalled) {
  domain_s dom(s_cfg(1, /*max_slots=*/8, 4, /*ack_threshold=*/1));
  EXPECT_EQ(dom.slot_count(), 1u);
  std::atomic<bool> hold{true};
  std::atomic<bool> ready{false};
  auto* seen = new domain_s::node;
  dom.on_alloc(seen);
  std::atomic<domain_s::node*> src{seen};
  std::thread parked([&] {
    domain_s::guard g(dom, 0);
    g.protect(src);
    ready.store(true, std::memory_order_release);
    while (hold.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  while (!ready.load(std::memory_order_acquire)) std::this_thread::yield();
  {
    domain_s::guard g(dom, 0);
    for (int i = 0; i < 2; ++i) g.retire(make_node(dom));
  }
  ASSERT_GT(dom.debug_ack(0), 0);
  {
    domain_s::guard g(dom, 0);  // all k slots stalled -> directory grows
    EXPECT_GT(dom.slot_count(), 1u);
    EXPECT_GE(g.slot(), 1u) << "the new guard lands in a fresh slot";
  }
  hold.store(false, std::memory_order_release);
  parked.join();
  dom.drain();
  delete seen;
}

TEST(HyalineS, NoGrowthWithoutMaxSlots) {
  domain_s dom(s_cfg(1, /*max_slots=*/0, 4, /*ack_threshold=*/1));
  std::atomic<bool> hold{true};
  std::atomic<bool> ready{false};
  auto* seen = new domain_s::node;
  dom.on_alloc(seen);
  std::atomic<domain_s::node*> src{seen};
  std::thread parked([&] {
    domain_s::guard g(dom, 0);
    g.protect(src);
    ready.store(true, std::memory_order_release);
    while (hold.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  while (!ready.load(std::memory_order_acquire)) std::this_thread::yield();
  {
    domain_s::guard g(dom, 0);
    for (int i = 0; i < 2; ++i) g.retire(make_node(dom));
  }
  {
    domain_s::guard g(dom, 0);
    EXPECT_EQ(dom.slot_count(), 1u) << "capped variant degrades instead";
    EXPECT_EQ(g.slot(), 0u);
  }
  hold.store(false, std::memory_order_release);
  parked.join();
  dom.drain();
  delete seen;
}

TEST(HyalineS, StalledThreadDoesNotStopActiveReclamation) {
  // End-to-end robustness: one thread stalls inside its critical section
  // (with a fresh era), another churns retire-heavy work. Unreclaimed
  // memory must stay bounded (Theorem 4) instead of growing linearly.
  domain_s dom(s_cfg(4, 0, 16));
  std::atomic<bool> hold{true};
  std::atomic<bool> ready{false};
  auto* seen = new domain_s::node;
  dom.on_alloc(seen);
  std::atomic<domain_s::node*> src{seen};
  std::thread stalled([&] {
    domain_s::guard g(dom, 1);
    g.protect(src);
    ready.store(true, std::memory_order_release);
    while (hold.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  while (!ready.load(std::memory_order_acquire)) std::this_thread::yield();

  constexpr int kOps = 20000;
  for (int i = 0; i < kOps; ++i) {
    domain_s::guard g(dom, 0);
    g.retire(make_node(dom));
  }
  dom.flush();
  const auto unreclaimed = dom.counters().unreclaimed();
  EXPECT_LT(unreclaimed, static_cast<std::uint64_t>(kOps) / 4)
      << "reclamation must keep pace despite the stalled thread";
  hold.store(false, std::memory_order_release);
  stalled.join();
  dom.drain();
  delete seen;
}

TEST(HyalineS, ConcurrentChurnWithDerefs) {
  domain_s dom(s_cfg(4, 64, 8));
  constexpr int kThreads = 4, kOps = 5000;
  std::atomic<domain_s::node*> shared{nullptr};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        domain_s::guard g(dom, t);
        g.protect(shared);
        g.retire(make_node(dom));
      }
      dom.flush();
    });
  }
  for (auto& th : ts) th.join();
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), std::uint64_t{kThreads} * kOps);
}

}  // namespace
}  // namespace hyaline
