// Unit tests for basic Hyaline (Figure 3): reference-count propagation,
// batch lifecycle, handle semantics, trimming, flushing, and the Adjs
// arithmetic — across all three head policies.
//
// Many tests exploit a property of the algorithm: one OS thread may hold
// several nested guards on the same slot (Hyaline supports any number of
// "concurrent entities" per slot), which lets us stage the interleavings
// of Figure 2a deterministically.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "smr/hyaline.hpp"

namespace hyaline {
namespace {

std::atomic<int> g_destroy_count{0};

TEST(Adjs, PaperValues) {
  // §3.2: Adjs = floor((2^64-1)/k) + 1; k = 1 -> 0 by overflow; k = 8 ->
  // 2^61; and k * Adjs == 0 mod 2^64 for any power-of-two k.
  EXPECT_EQ(detail::adjs_for(1), 0u);
  EXPECT_EQ(detail::adjs_for(2), std::uint64_t{1} << 63);
  EXPECT_EQ(detail::adjs_for(8), std::uint64_t{1} << 61);
  for (std::size_t k = 1; k <= 1024; k *= 2) {
    EXPECT_EQ(k * detail::adjs_for(k), 0u) << "k=" << k;
  }
}

template <class D>
class HyalineTest : public ::testing::Test {
 protected:
  static config small_cfg() {
    config c;
    c.slots = 2;
    c.batch_min = 1;  // batch size = k+1 = 3
    return c;
  }

  static typename D::node* make_node(D& dom) {
    auto* n = new typename D::node;
    dom.on_alloc(n);
    return n;
  }
};

using HeadVariants = ::testing::Types<domain, domain_dw, domain_llsc>;
TYPED_TEST_SUITE(HyalineTest, HeadVariants);

TYPED_TEST(HyalineTest, EnterLeaveEmpty) {
  TypeParam dom(this->small_cfg());
  {
    typename TypeParam::guard g(dom, 0);
    EXPECT_EQ(dom.debug_head(g.slot()).ref, 1u);
  }
  EXPECT_EQ(dom.debug_head(0).ref, 0u);
  EXPECT_EQ(dom.debug_head(0).ptr, nullptr);
}

TYPED_TEST(HyalineTest, SlotHintIsModK) {
  TypeParam dom(this->small_cfg());
  typename TypeParam::guard g0(dom, 0), g1(dom, 1), g2(dom, 2);
  EXPECT_EQ(g0.slot(), 0u);
  EXPECT_EQ(g1.slot(), 1u);
  EXPECT_EQ(g2.slot(), 0u);  // 2 mod k(=2)
}

TYPED_TEST(HyalineTest, BatchFreedAfterSoleRetirerLeaves) {
  TypeParam dom(this->small_cfg());
  {
    typename TypeParam::guard g(dom, 0);
    for (int i = 0; i < 3; ++i) g.retire(this->make_node(dom));  // batch full
    EXPECT_EQ(dom.counters().retired.load(std::memory_order_relaxed), 3u);
    EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 0u)
        << "we are still inside the critical section";
  }
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 3u);
}

TYPED_TEST(HyalineTest, NestedGuardHoldsReclamation) {
  // The Figure 2a scenario staged with nested guards: the outer "thread"
  // entered before the batch was retired, so it must block reclamation
  // until it leaves.
  TypeParam dom(this->small_cfg());
  typename TypeParam::guard* outer = new typename TypeParam::guard(dom, 0);
  {
    typename TypeParam::guard inner(dom, 0);
    for (int i = 0; i < 3; ++i) inner.retire(this->make_node(dom));
  }
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 0u)
      << "outer guard still references the batch";
  delete outer;  // last reference: the leaver deallocates (asynchronous
                 // tracking — no one had to "check" anything)
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 3u);
}

TYPED_TEST(HyalineTest, LateEnterDoesNotBlockOlderBatch) {
  // A thread entering *after* retirement gets a handle at the new head and
  // never references the already-covered batch... but because it is in the
  // same slot, it appears in HRef at displacement time; the algorithm
  // accounts for it via the handle-inclusive traversal. Behaviorally: the
  // batch frees as soon as the pre-existing guards leave, regardless of
  // how many new guards arrived afterwards.
  TypeParam dom(this->small_cfg());
  auto* g1 = new typename TypeParam::guard(dom, 0);
  for (int i = 0; i < 3; ++i) g1->retire(this->make_node(dom));
  auto* g2 = new typename TypeParam::guard(dom, 0);  // enters after retire
  delete g1;
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 0u)
      << "g2's handle-inclusive traversal still owes one reference";
  delete g2;
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 3u);
}

TYPED_TEST(HyalineTest, FlushPadsPartialBatchWithDummies) {
  TypeParam dom(this->small_cfg());
  {
    typename TypeParam::guard g(dom, 0);
    g.retire(this->make_node(dom));  // 1 < batch size 3
    EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 0u);
    dom.flush();  // §2.4: finalize immediately by allocating dummy nodes
  }
  EXPECT_EQ(dom.counters().retired.load(std::memory_order_relaxed), 1u) << "dummies are not counted";
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 1u);
}

TYPED_TEST(HyalineTest, DrainReclaimsForeignBuilders) {
  TypeParam dom(this->small_cfg());
  std::thread t([&] {
    typename TypeParam::guard g(dom, 1);
    g.retire(this->make_node(dom));
    // exits without flushing — fully "off the hook"
  });
  t.join();
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 0u);
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 1u);
}

TYPED_TEST(HyalineTest, TrimReclaimsOlderBatches) {
  // §3.3: trim dereferences previously retired nodes without leaving.
  TypeParam dom(this->small_cfg());
  typename TypeParam::guard g(dom, 0);
  typename TypeParam::guard g1(dom, 1);  // keep slot 1 active too
  for (int i = 0; i < 3; ++i) g.retire(this->make_node(dom));  // batch 1
  for (int i = 0; i < 3; ++i) g.retire(this->make_node(dom));  // batch 2
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 0u);
  g.trim();
  g1.trim();
  // Batch 1 was displaced by batch 2 in both slots and both active guards
  // trimmed past it: it must be reclaimed. Batch 2 is still each slot's
  // head (trim skips the first node), so it stays.
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 3u);
}

TYPED_TEST(HyalineTest, TrimThenLeaveReclaimsEverything) {
  TypeParam dom(this->small_cfg());
  {
    typename TypeParam::guard g(dom, 0);
    for (int i = 0; i < 9; ++i) g.retire(this->make_node(dom));
    g.trim();
  }
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 9u);
}

TYPED_TEST(HyalineTest, StatsCountAllocations) {
  TypeParam dom(this->small_cfg());
  typename TypeParam::guard g(dom, 0);
  for (int i = 0; i < 5; ++i) g.retire(this->make_node(dom));
  EXPECT_EQ(dom.counters().allocated.load(std::memory_order_relaxed), 5u);
  EXPECT_EQ(dom.counters().retired.load(std::memory_order_relaxed), 5u);
}

TYPED_TEST(HyalineTest, EmptySlotsAccumulateEmptyAdjustment) {
  // Retire with only our own slot active: the other slot contributes
  // Adjs via the Empty path (REF #3), and the batch still frees exactly
  // once we leave.
  config c;
  c.slots = 4;  // three of four slots always empty
  c.batch_min = 1;
  TypeParam dom(c);
  {
    typename TypeParam::guard g(dom, 2);
    for (int i = 0; i < 5; ++i) g.retire(this->make_node(dom));
  }
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 5u);
}

TYPED_TEST(HyalineTest, ManyBatchesInterleavedGuards) {
  TypeParam dom(this->small_cfg());
  std::vector<typename TypeParam::guard*> guards;
  for (int i = 0; i < 8; ++i) guards.push_back(
      new typename TypeParam::guard(dom, i));
  {
    typename TypeParam::guard g(dom, 0);
    for (int i = 0; i < 30; ++i) g.retire(this->make_node(dom));
  }
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 0u);
  for (auto* g : guards) delete g;
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 30u);
}

TYPED_TEST(HyalineTest, ConcurrentChurnReclaimsEverything) {
  config c;
  c.slots = 4;
  c.batch_min = 8;
  TypeParam dom(c);
  constexpr int kThreads = 4, kOps = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        typename TypeParam::guard g(dom, t + i);
        g.retire(this->make_node(dom));
      }
      dom.flush();
    });
  }
  for (auto& th : ts) th.join();
  dom.drain();
  EXPECT_EQ(dom.counters().retired.load(std::memory_order_relaxed),
            std::uint64_t{kThreads} * kOps);
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), std::uint64_t{kThreads} * kOps);
}

TYPED_TEST(HyalineTest, TypedRetireRunsEachTypesDestructor) {
  // API v2: retire<T> captures T's deleter per node, so one domain can
  // reclaim a mix of node types — and each gets its own destructor.
  struct counting_node : TypeParam::node {
    ~counting_node() { g_destroy_count.fetch_add(1, std::memory_order_relaxed); }
  };
  struct other_node : TypeParam::node {
    ~other_node() { g_destroy_count.fetch_add(100, std::memory_order_relaxed); }
  };
  g_destroy_count.store(0, std::memory_order_relaxed);
  TypeParam dom(this->small_cfg());
  {
    typename TypeParam::guard g(dom, 0);
    for (int i = 0; i < 3; ++i) {
      auto* n = new counting_node;
      dom.on_alloc(n);
      g.retire(n);
    }
    auto* o = new other_node;
    dom.on_alloc(o);
    g.retire(o);
    for (int i = 0; i < 2; ++i) g.retire(this->make_node(dom));  // plain
  }
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 6u);
  EXPECT_EQ(g_destroy_count.load(std::memory_order_relaxed), 103) << "3 counting + 1 other node";
}

TYPED_TEST(HyalineTest, TransparentGuardNeedsNoHint) {
  TypeParam dom(this->small_cfg());
  {
    typename TypeParam::guard g(dom);  // slot chosen from the thread hint
    EXPECT_LT(g.slot(), dom.slot_count());
    for (int i = 0; i < 3; ++i) g.retire(this->make_node(dom));
  }
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 3u);
}

TEST(HyalineConfig, RejectsNonPowerOfTwoSlots) {
  config c;
  c.slots = 3;
  EXPECT_THROW(domain{c}, std::invalid_argument);
}

TEST(HyalineConfig, RejectsMaxSlotsBelowSlots) {
  config c;
  c.slots = 8;
  c.max_slots = 4;
  EXPECT_THROW(domain_s{c}, std::invalid_argument);
  // Non-robust Hyaline ignores max_slots (no adaptive growth to cap).
  EXPECT_NO_THROW(domain{c});
}

TYPED_TEST(HyalineTest, MultipleDomainsAreIsolated) {
  TypeParam a(this->small_cfg());
  TypeParam b(this->small_cfg());
  {
    typename TypeParam::guard ga(a, 0);
    typename TypeParam::guard gb(b, 0);
    for (int i = 0; i < 3; ++i) ga.retire(this->make_node(a));
  }
  EXPECT_EQ(a.counters().freed.load(std::memory_order_relaxed), 3u);
  EXPECT_EQ(b.counters().retired.load(std::memory_order_relaxed), 0u);
}

TEST(HyalineConfig, DefaultsArePowersOfTwo) {
  domain dom;  // default config
  EXPECT_GE(dom.slot_count(), 4u);
  EXPECT_TRUE((dom.slot_count() & (dom.slot_count() - 1)) == 0);
  EXPECT_EQ(dom.batch_size(),
            std::max<std::size_t>(64, dom.slot_count() + 1));
}

TEST(HyalineConfig, BatchSizeIsAtLeastKPlusOne) {
  config c;
  c.slots = 256;
  c.batch_min = 4;
  domain dom(c);
  EXPECT_EQ(dom.batch_size(), 257u);
}

}  // namespace
}  // namespace hyaline
