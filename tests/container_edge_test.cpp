// Container edge cases with full history checking through the oracle:
// empty-pop storms (consumers far outnumbering production), single-element
// contention (every thread fighting over one value), and interleaved
// push/pop from two threads. Each scenario runs the real workload driver
// with recording on, then must produce a linearizable history AND close
// its conservation ledger — the oracle checking the same runs the
// accounting does.
#include <gtest/gtest.h>

#include <string>

#include "check/history.hpp"
#include "check/linearize.hpp"
#include "ds/ms_queue.hpp"
#include "ds/treiber_stack.hpp"
#include "harness/workload.hpp"
#include "smr/ebr.hpp"
#include "smr/hazard_pointers.hpp"

namespace hyaline {
namespace {

struct scenario {
  unsigned producers;
  unsigned consumers;
  std::size_t prefill;
  unsigned duration_ms;
};

/// Drive `Q` over `D` with recording on; return the checker's verdict
/// after asserting the ledger closed. `empty_pops` reports how many pops
/// found nothing — scenarios that exist to generate empty pops assert on
/// it.
template <class D, template <class> class Q>
check::check_result run_checked(check::semantics sem, const scenario& sc,
                                std::size_t* empty_pops = nullptr) {
  D dom(16);
  check::history_recorder rec;
  harness::workload_config cfg;
  cfg.producers = sc.producers;
  cfg.consumers = sc.consumers;
  cfg.threads = sc.producers + sc.consumers;
  cfg.prefill = sc.prefill;
  cfg.duration_ms = sc.duration_ms;
  cfg.repeats = 1;
  cfg.sample_every = 64;
  cfg.history = &rec;
  check::check_result res;
  {
    Q<D> q(dom);
    const harness::workload_result r =
        harness::run_container_workload(dom, q, cfg);
    EXPECT_EQ(r.enqueued, r.dequeued + r.drained) << "ledger must close";
    auto h = rec.collect();
    if (empty_pops != nullptr) {
      *empty_pops = 0;
      for (const check::op_record& o : h) {
        if (o.kind == check::op_kind::pop && !o.ok) ++*empty_pops;
      }
    }
    res = check::check_history(sem, std::move(h), /*complete=*/true);
  }
  dom.drain();
  return res;
}

std::string why(const check::check_result& r) {
  return r.bad ? check::format_violation(*r.bad) : "";
}

TEST(ContainerEdge, EmptyPopStormOnQueue) {
  // One producer, three consumers, nothing prefilled: most pops find the
  // queue empty, exercising the empty-linearization path under
  // contention.
  std::size_t empties = 0;
  const auto r = run_checked<smr::ebr_domain, ds::ms_queue>(
      check::semantics::fifo, {1, 3, 0, 25}, &empties);
  EXPECT_TRUE(r.ok) << why(r);
  EXPECT_GT(empties, 0u) << "the storm should actually produce empty pops";
}

TEST(ContainerEdge, EmptyPopStormOnStack) {
  std::size_t empties = 0;
  const auto r = run_checked<smr::ebr_domain, ds::treiber_stack>(
      check::semantics::lifo, {1, 3, 0, 25}, &empties);
  EXPECT_TRUE(r.ok) << why(r);
  EXPECT_GT(empties, 0u);
}

TEST(ContainerEdge, PureConsumersOnEmptyQueue) {
  // No production at all: every recorded pop is empty and the history
  // must still check (and the ledger close at 0 = 0 + 0).
  const auto r = run_checked<smr::ebr_domain, ds::ms_queue>(
      check::semantics::fifo, {0, 4, 0, 10});
  EXPECT_TRUE(r.ok) << why(r);
}

TEST(ContainerEdge, SingleElementContentionQueue) {
  // One prefilled value, two producers versus two consumers: the queue
  // keeps flickering between empty and one element, the dummy handoff
  // path ms_queue documents as its protection-critical step.
  const auto r = run_checked<smr::ebr_domain, ds::ms_queue>(
      check::semantics::fifo, {2, 2, 1, 25});
  EXPECT_TRUE(r.ok) << why(r);
}

TEST(ContainerEdge, SingleElementContentionStackUnderHP) {
  // Same shape on the stack, under hazard pointers — the scheme whose
  // protection the skip-protect mutant deletes.
  const auto r = run_checked<smr::hp_domain, ds::treiber_stack>(
      check::semantics::lifo, {2, 2, 1, 25});
  EXPECT_TRUE(r.ok) << why(r);
}

TEST(ContainerEdge, InterleavedPushPopTwoThreadsQueue) {
  const auto r = run_checked<smr::hp_domain, ds::ms_queue>(
      check::semantics::fifo, {1, 1, 4, 25});
  EXPECT_TRUE(r.ok) << why(r);
}

TEST(ContainerEdge, InterleavedPushPopTwoThreadsStack) {
  const auto r = run_checked<smr::ebr_domain, ds::treiber_stack>(
      check::semantics::lifo, {1, 1, 4, 25});
  EXPECT_TRUE(r.ok) << why(r);
}

}  // namespace
}  // namespace hyaline
