// Unit tests for Hyaline-1 / Hyaline-1S (Figure 4): single-word heads,
// wait-free enter/leave, insertion counting instead of Adjs, per-thread
// slots, and the 1S era handling.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "smr/hyaline1.hpp"

namespace hyaline {
namespace {

// Default era_freq here is effectively "never" so deterministic
// reclamation tests pin the era clock; era-specific tests pass a small
// freq explicitly. Guards lease their dedicated slot transparently
// (lowest free id first), so nested guards land in slots 0, 1, 2, ...
config1 cfg1(std::size_t threads, std::size_t batch_min = 1,
             std::uint64_t era_freq = std::uint64_t{1} << 30) {
  config1 c;
  c.max_threads = threads;
  c.batch_min = batch_min;
  c.era_freq = era_freq;
  return c;
}

template <class D>
typename D::node* make_node(D& dom) {
  auto* n = new typename D::node;
  dom.on_alloc(n);
  return n;
}

template <class D>
class Hyaline1Test : public ::testing::Test {};

using Variants = ::testing::Types<domain_1, domain_1s>;
TYPED_TEST_SUITE(Hyaline1Test, Variants);

TYPED_TEST(Hyaline1Test, EnterSetsAndLeaveClearsSlotBit) {
  TypeParam dom(cfg1(2));
  EXPECT_FALSE(dom.debug_slot_active(0));
  {
    typename TypeParam::guard g(dom);
    EXPECT_TRUE(dom.debug_slot_active(0));
    EXPECT_FALSE(dom.debug_slot_active(1));
  }
  EXPECT_FALSE(dom.debug_slot_active(0));
  EXPECT_EQ(dom.debug_slot_head(0), nullptr);
}

TYPED_TEST(Hyaline1Test, BatchSizeIsThreadsPlusOne) {
  TypeParam dom(cfg1(4));
  EXPECT_EQ(dom.batch_size(), 5u);
}

TYPED_TEST(Hyaline1Test, SoleOwnerFreesOnLeave) {
  TypeParam dom(cfg1(2));
  {
    typename TypeParam::guard g(dom);
    if constexpr (std::is_same_v<TypeParam, domain_1s>) {
      // 1S: freshen our slot era so the batch is not skipped (a skipped
      // slot frees even earlier, which is also correct but less
      // interesting here).
      std::atomic<typename TypeParam::node*> src{nullptr};
      g.protect(src);
    }
    for (int i = 0; i < 3; ++i) g.retire(make_node(dom));
    EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 0u);
  }
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 3u);
}

TYPED_TEST(Hyaline1Test, EachOwnerMustReleaseItsSlotList) {
  // One OS thread may hold guards for *different* slots; the batch is
  // inserted into every active slot and freed only when the last slot
  // owner leaves (NRef == Inserts).
  TypeParam dom(cfg1(2));
  std::atomic<typename TypeParam::node*> src{nullptr};
  auto* g0 = new typename TypeParam::guard(dom);
  auto* g1 = new typename TypeParam::guard(dom);
  if constexpr (std::is_same_v<TypeParam, domain_1s>) {
    g0->protect(src);
    g1->protect(src);
  }
  for (int i = 0; i < 3; ++i) g0->retire(make_node(dom));
  delete g0;
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 0u)
      << "slot 1's owner still references the batch";
  delete g1;
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 3u);
}

TYPED_TEST(Hyaline1Test, InactiveSlotsAreSkipped) {
  TypeParam dom(cfg1(8));  // 7 slots never activated
  {
    typename TypeParam::guard g(dom);
    if constexpr (std::is_same_v<TypeParam, domain_1s>) {
      std::atomic<typename TypeParam::node*> src{nullptr};
      g.protect(src);
    }
    for (int i = 0; i < 9; ++i) g.retire(make_node(dom));
  }
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 9u);
}

TYPED_TEST(Hyaline1Test, FlushPadsWithDummies) {
  TypeParam dom(cfg1(2));
  {
    typename TypeParam::guard g(dom);
    g.retire(make_node(dom));
    dom.flush();
  }
  EXPECT_EQ(dom.counters().retired.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 1u);
}

TYPED_TEST(Hyaline1Test, TrimReclaimsOlderBatches) {
  TypeParam dom(cfg1(2, 1));
  typename TypeParam::guard g(dom);
  if constexpr (std::is_same_v<TypeParam, domain_1s>) {
    std::atomic<typename TypeParam::node*> src{nullptr};
    g.protect(src);
  }
  for (int i = 0; i < 3; ++i) g.retire(make_node(dom));  // batch 1
  for (int i = 0; i < 3; ++i) g.retire(make_node(dom));  // batch 2 (head)
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 0u);
  g.trim();
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 3u) << "batch 1 reclaimed by trim";
  g.trim();
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 3u) << "trim is idempotent here";
}

TYPED_TEST(Hyaline1Test, ConcurrentChurnReclaimsEverything) {
  constexpr int kThreads = 4, kOps = 10000;
  TypeParam dom(cfg1(kThreads, 8));
  std::vector<std::thread> ts;
  std::atomic<typename TypeParam::node*> shared{nullptr};
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        typename TypeParam::guard g(dom);
        g.protect(shared);
        g.retire(make_node(dom));
      }
      dom.flush();
    });
  }
  for (auto& th : ts) th.join();
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), std::uint64_t{kThreads} * kOps);
}

TEST(Hyaline1S, EraAdvancesAndSlotErasTrack) {
  domain_1s dom(cfg1(2, 1, /*era_freq=*/4));
  const auto before = dom.debug_alloc_era();
  std::vector<domain_1s::node*> nodes;
  for (int i = 0; i < 8; ++i) nodes.push_back(make_node(dom));
  EXPECT_EQ(dom.debug_alloc_era(), before + 2);
  {
    domain_1s::guard g(dom);
    std::atomic<domain_1s::node*> src{nodes[0]};
    g.protect(src);
    EXPECT_EQ(dom.debug_access_era(g.slot()), dom.debug_alloc_era());
  }
  for (auto* n : nodes) delete n;
}

TEST(Hyaline1S, StalledThreadWithStaleEraIsSkipped) {
  domain_1s dom(cfg1(2, 1, 4));
  std::atomic<bool> hold{true};
  std::atomic<bool> ready{false};
  std::thread parked([&] {
    domain_1s::guard g(dom);  // active but never dereferences
    ready.store(true, std::memory_order_release);
    while (hold.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  while (!ready.load(std::memory_order_acquire)) std::this_thread::yield();
  {
    domain_1s::guard g(dom);
    for (int i = 0; i < 3; ++i) g.retire(make_node(dom));
  }
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), 3u)
      << "fully robust: the stalled slot is skipped via its stale era";
  hold.store(false, std::memory_order_release);
  parked.join();
}

TEST(Hyaline1, EnterAfterLeaveReusesSlotSafely) {
  domain_1 dom(cfg1(1, 1));
  for (int round = 0; round < 100; ++round) {
    domain_1::guard g(dom);
    g.retire(make_node(dom));
    g.retire(make_node(dom));
  }
  dom.drain();
  EXPECT_EQ(dom.counters().freed.load(std::memory_order_relaxed), dom.counters().retired.load(std::memory_order_relaxed));
}

}  // namespace
}  // namespace hyaline
