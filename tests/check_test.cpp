// The oracle tested directly: hand-built histories with known verdicts
// drive the set/FIFO/LIFO checkers through every violation class and
// every deliberately-allowed ambiguity, and the --mutate self-test
// mutants run end-to-end to prove an injected reclamation bug cannot
// slip past the checker. Timestamps here are plain small integers — the
// checker only ever compares them, so synthetic histories exercise
// exactly the code real recordings do.
#include <gtest/gtest.h>

#include <vector>

#include "check/check_driver.hpp"
#include "check/history.hpp"
#include "check/linearize.hpp"
#include "check/mutants.hpp"
#include "ds/treiber_stack.hpp"
#include "harness/workload.hpp"
#include "smr/ebr.hpp"

namespace hyaline::check {
namespace {

op_record rec(std::uint64_t inv, std::uint64_t ret, op_kind kind,
              std::uint64_t key, bool ok, std::uint32_t tid = 0) {
  return {inv, ret, key, tid, kind, ok};
}

// ------------------------------------------------------------------ set --

TEST(SetChecker, SequentialHistoryPasses) {
  std::vector<op_record> h{
      rec(0, 1, op_kind::insert, 5, true),
      rec(2, 3, op_kind::contains, 5, true),
      rec(4, 5, op_kind::remove, 5, true),
      rec(6, 7, op_kind::contains, 5, false),
      rec(8, 9, op_kind::insert, 5, true),
  };
  const check_result r = check_history(semantics::set, h, false);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.keys, 1u);
  EXPECT_EQ(r.clusters, 5u);
}

TEST(SetChecker, StaleReadCaught) {
  // The key was removed, completely, before the contains began — a true
  // answer can only come from a freed node an ABA race resurrected.
  std::vector<op_record> h{
      rec(0, 1, op_kind::insert, 7, true),
      rec(2, 3, op_kind::remove, 7, true),
      rec(4, 5, op_kind::contains, 7, true),
  };
  const check_result r = check_history(semantics::set, h, false);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.bad->what.find("key 7"), std::string::npos);
  EXPECT_FALSE(format_violation(*r.bad).empty());
}

TEST(SetChecker, LostUpdateCaught) {
  // Two successful inserts of one key with no remove between them: the
  // first insert's node was lost.
  std::vector<op_record> h{
      rec(0, 1, op_kind::insert, 3, true),
      rec(2, 3, op_kind::insert, 3, true),
  };
  EXPECT_FALSE(check_history(semantics::set, h, false).ok);
}

TEST(SetChecker, ConcurrentOutcomeAmbiguityAllowed) {
  // Overlapping insert(ok)/insert(fail) — some order explains it.
  std::vector<op_record> h{
      rec(0, 10, op_kind::insert, 1, true),
      rec(5, 15, op_kind::insert, 1, false),
  };
  const check_result r = check_history(semantics::set, h, false);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.dfs_clusters, 1u);
}

TEST(SetChecker, DoubleSuccessfulRemoveInOneClusterCaught) {
  // From one present key, only one of two overlapping removes can win.
  std::vector<op_record> h{
      rec(0, 1, op_kind::insert, 9, true),
      rec(2, 10, op_kind::remove, 9, true),
      rec(3, 8, op_kind::remove, 9, true),
  };
  EXPECT_FALSE(check_history(semantics::set, h, false).ok);
}

TEST(SetChecker, FeasibleStateSetCarriedAcrossClusters) {
  // The overlapping remove(ok)/insert(ok) pair admits only the order
  // remove-then-insert (insert cannot succeed on a present key), so the
  // key is definitely present afterwards; the later contains(false) has
  // no explanation.
  std::vector<op_record> h{
      rec(0, 1, op_kind::insert, 2, true),
      rec(10, 20, op_kind::remove, 2, true),
      rec(12, 22, op_kind::insert, 2, true),
      rec(30, 31, op_kind::contains, 2, false),
  };
  EXPECT_FALSE(check_history(semantics::set, h, false).ok);
}

TEST(SetChecker, KeysCheckIndependently) {
  // A violation on one key is found even when other keys are busy and
  // clean.
  std::vector<op_record> h{
      rec(0, 1, op_kind::insert, 1, true),
      rec(2, 3, op_kind::contains, 1, true),
      rec(0, 1, op_kind::contains, 2, true),  // key 2 never inserted
  };
  const check_result r = check_history(semantics::set, h, false);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.bad->what.find("key 2"), std::string::npos);
}

// ----------------------------------------------------------- containers --

TEST(ContainerChecker, DuplicatePopCaught) {
  std::vector<op_record> h{
      rec(0, 1, op_kind::push, 7, true),
      rec(2, 3, op_kind::pop, 7, true),
      rec(4, 5, op_kind::pop, 7, true),
  };
  const check_result r = check_history(semantics::lifo, h, false);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.bad->what.find("popped twice"), std::string::npos);
}

TEST(ContainerChecker, InventedValueCaught) {
  std::vector<op_record> h{rec(0, 1, op_kind::pop, 99, true)};
  EXPECT_FALSE(check_history(semantics::fifo, h, false).ok);
}

TEST(ContainerChecker, PopBeforePushCaught) {
  std::vector<op_record> h{
      rec(4, 5, op_kind::push, 7, true),
      rec(0, 1, op_kind::pop, 7, true),
  };
  EXPECT_FALSE(check_history(semantics::fifo, h, false).ok);
}

TEST(ContainerChecker, LostValueNeedsACompleteHistory) {
  std::vector<op_record> h{rec(0, 1, op_kind::push, 7, true)};
  EXPECT_TRUE(check_history(semantics::fifo, h, false).ok)
      << "an unpopped value is fine while the container may still hold it";
  EXPECT_FALSE(check_history(semantics::fifo, h, true).ok)
      << "but not after a drain emptied the container";
}

TEST(FifoChecker, OvertakeCaught) {
  // a pushed entirely before b, b popped entirely before a.
  std::vector<op_record> h{
      rec(0, 1, op_kind::push, 1, true),
      rec(2, 3, op_kind::push, 2, true),
      rec(4, 5, op_kind::pop, 2, true),
      rec(6, 7, op_kind::pop, 1, true),
  };
  const check_result r = check_history(semantics::fifo, h, true);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.bad->what.find("FIFO"), std::string::npos);
  EXPECT_EQ(r.bad->window.size(), 4u);
}

TEST(FifoChecker, ConcurrentPushesMayPopEitherWay) {
  // The pushes overlap, so no arrival order is fixed.
  std::vector<op_record> h{
      rec(0, 10, op_kind::push, 1, true),
      rec(2, 3, op_kind::push, 2, true),
      rec(11, 12, op_kind::pop, 2, true),
      rec(13, 14, op_kind::pop, 1, true),
  };
  EXPECT_TRUE(check_history(semantics::fifo, h, true).ok);
}

TEST(LifoChecker, StackOrderViolationCaught) {
  // push(a) ⊏ push(b) ⊏ pop(a) ⊏ pop(b): a was under b, yet left first.
  std::vector<op_record> h{
      rec(0, 1, op_kind::push, 1, true),
      rec(2, 3, op_kind::push, 2, true),
      rec(4, 5, op_kind::pop, 1, true),
      rec(6, 7, op_kind::pop, 2, true),
  };
  const check_result r = check_history(semantics::lifo, h, true);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.bad->what.find("LIFO"), std::string::npos);
}

TEST(LifoChecker, ProperStackOrderPasses) {
  std::vector<op_record> h{
      rec(0, 1, op_kind::push, 1, true),
      rec(2, 3, op_kind::push, 2, true),
      rec(4, 5, op_kind::pop, 2, true),
      rec(6, 7, op_kind::push, 3, true),
      rec(8, 9, op_kind::pop, 3, true),
      rec(10, 11, op_kind::pop, 1, true),
  };
  EXPECT_TRUE(check_history(semantics::lifo, h, true).ok);
}

TEST(LifoChecker, PopBeforeLaterPushIsFine) {
  // a popped before b was ever pushed — pop(a) linearizes before
  // push(b); nothing stacks them.
  std::vector<op_record> h{
      rec(0, 1, op_kind::push, 1, true),
      rec(2, 3, op_kind::pop, 1, true),
      rec(4, 5, op_kind::push, 2, true),
      rec(6, 7, op_kind::pop, 2, true),
  };
  EXPECT_TRUE(check_history(semantics::lifo, h, true).ok);
}

TEST(ContainerChecker, ImpossibleEmptyPopCaught) {
  // The value was pushed, completely, before the empty pop began, and
  // was not popped until after it returned: the container was provably
  // non-empty for the pop's whole interval.
  std::vector<op_record> h{
      rec(0, 1, op_kind::push, 7, true),
      rec(2, 3, op_kind::pop, 0, false),
      rec(4, 5, op_kind::pop, 7, true),
  };
  const check_result r = check_history(semantics::fifo, h, true);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.bad->what.find("empty pop"), std::string::npos);
}

TEST(ContainerChecker, EmptyPopConcurrentWithPushIsFine) {
  std::vector<op_record> h{
      rec(0, 10, op_kind::push, 7, true),
      rec(1, 2, op_kind::pop, 0, false),  // push still in flight
      rec(11, 12, op_kind::pop, 7, true),
  };
  EXPECT_TRUE(check_history(semantics::fifo, h, true).ok);
}

// ------------------------------------------------------- mutation mode --

/// Run one mutant under the real container workload driver with history
/// recording, exactly as `check --mutate` does.
template <class Mutant>
check_result run_mutant(semantics sem) {
  smr::ebr_domain dom(16);
  history_recorder recder;
  harness::workload_config cfg;
  cfg.producers = 2;
  cfg.consumers = 2;
  cfg.threads = 4;
  cfg.duration_ms = 60;
  cfg.prefill = 8;
  cfg.repeats = 1;
  cfg.history = &recder;
  Mutant m(dom);
  harness::run_container_workload(dom, m, cfg);
  return check_history(sem, recder.collect(), /*complete=*/true);
}

TEST(MutationMode, SkipProtectIsCaught) {
  const check_result r =
      run_mutant<mutant_stack<smr::ebr_domain>>(semantics::lifo);
  EXPECT_FALSE(r.ok) << "the oracle missed an unprotected Treiber pop over "
                     << r.ops << " recorded ops";
}

TEST(MutationMode, DropValidateIsCaught) {
  const check_result r =
      run_mutant<mutant_queue<smr::ebr_domain>>(semantics::fifo);
  EXPECT_FALSE(r.ok) << "the oracle missed an unvalidated MS dequeue over "
                     << r.ops << " recorded ops";
}

TEST(MutationMode, HealthyContainersPassTheSameWorkload) {
  // The control: the real structures under the identical workload shape
  // produce clean histories — the mutants' violations come from the
  // mutations, not from the harness or the checker.
  smr::ebr_domain dom(16);
  history_recorder recder;
  harness::workload_config cfg;
  cfg.producers = 2;
  cfg.consumers = 2;
  cfg.threads = 4;
  cfg.duration_ms = 30;
  cfg.prefill = 8;
  cfg.repeats = 1;
  cfg.history = &recder;
  ds::treiber_stack<smr::ebr_domain> st(dom);
  harness::run_container_workload(dom, st, cfg);
  const check_result r =
      check_history(semantics::lifo, recder.collect(), /*complete=*/true);
  EXPECT_TRUE(r.ok) << (r.bad ? r.bad->what : "");
}

}  // namespace
}  // namespace hyaline::check
