// Harris's original list (segment snipping, deferred retirement): the
// §2.4 claim that basic Hyaline handles it without modification. Runs
// under the guard-lifetime epoch-style schemes only — reservation-based
// schemes (HP/HE/IBR/Hyaline-S) cannot pin nodes reached through marked
// segments (see the header comment in ds/harris_list.hpp).
#include "ds/harris_list.hpp"

#include "ds_test_common.hpp"

namespace hyaline {
namespace {

using test_support::EpochStyleSchemes;

template <class D>
class HarrisListTest : public test_support::ds_fixture<D, ds::harris_list> {};

TYPED_TEST_SUITE(HarrisListTest, EpochStyleSchemes);

TYPED_TEST(HarrisListTest, EmptyListBehaviour) {
  auto g = this->guard();
  EXPECT_FALSE(this->ds_->contains(g, 1));
  EXPECT_FALSE(this->ds_->remove(g, 1));
  EXPECT_EQ(this->ds_->unsafe_size(), 0u);
}

TYPED_TEST(HarrisListTest, InsertGetRemoveRoundTrip) {
  auto g = this->guard();
  EXPECT_TRUE(this->ds_->insert(g, 5, 50));
  std::uint64_t v = 0;
  EXPECT_TRUE(this->ds_->get(g, 5, v));
  EXPECT_EQ(v, 50u);
  EXPECT_TRUE(this->ds_->remove(g, 5));
  EXPECT_FALSE(this->ds_->contains(g, 5));
  EXPECT_FALSE(this->ds_->remove(g, 5));
}

TYPED_TEST(HarrisListTest, DuplicateInsertFails) {
  auto g = this->guard();
  EXPECT_TRUE(this->ds_->insert(g, 5, 50));
  EXPECT_FALSE(this->ds_->insert(g, 5, 51));
}

TYPED_TEST(HarrisListTest, SortedBulkInsertAndLookup) {
  auto g = this->guard();
  for (std::uint64_t k = 0; k < 300; ++k) {
    ASSERT_TRUE(this->ds_->insert(g, (k * 61) % 300, k));
  }
  for (std::uint64_t k = 0; k < 300; ++k) {
    ASSERT_TRUE(this->ds_->contains(g, k));
  }
  EXPECT_EQ(this->ds_->unsafe_size(), 300u);
}

TYPED_TEST(HarrisListTest, SegmentSnipRetiresWholeRuns) {
  // Remove a contiguous run of keys, then force a search across the run:
  // every node of the snipped segment must eventually be retired.
  {
    auto g = this->guard();
    for (std::uint64_t k = 0; k < 64; ++k) {
      ASSERT_TRUE(this->ds_->insert(g, k, k));
    }
    for (std::uint64_t k = 8; k < 56; ++k) {
      ASSERT_TRUE(this->ds_->remove(g, k));
    }
    ASSERT_TRUE(this->ds_->contains(g, 60));  // walks across the gap
  }
  EXPECT_EQ(this->ds_->unsafe_size(), 16u);
  EXPECT_EQ(this->dom_->counters().retired.load(std::memory_order_relaxed), 48u);
}

TYPED_TEST(HarrisListTest, MixedStressFourThreads) {
  test_support::run_mixed_stress(*this->dom_, *this->ds_, 4, 6000, 64);
}

TYPED_TEST(HarrisListTest, ContendedSingleKey) {
  constexpr unsigned kThreads = 4;
  std::vector<std::thread> ts;
  std::atomic<long> net{0};
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      long local = 0;
      for (int i = 0; i < 4000; ++i) {
        typename TypeParam::guard g(*this->dom_);
        if (i % 2 == 0) {
          if (this->ds_->insert(g, 42, t)) ++local;
        } else {
          if (this->ds_->remove(g, 42)) --local;
        }
      }
      net.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(this->ds_->unsafe_size(), static_cast<std::size_t>(net.load(std::memory_order_relaxed)));
}

}  // namespace
}  // namespace hyaline
