// Unit tests for the SLO gate (svc/slo.hpp) and the tenant-script
// grammar (svc/tenant.hpp): parse acceptance/rejection, the settled-tail
// semantics of `unreclaimed<Fx`, recovery timing, robust-only gating of
// the memory items, and the lowering of tenant scripts plus connection
// churn into a lab::fault_plan.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "lab/telemetry.hpp"
#include "svc/slo.hpp"
#include "svc/tenant.hpp"

namespace {

using namespace hyaline::svc;
using hyaline::lab::latency_histogram;
using hyaline::lab::sample_point;

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------
// parse_slo

TEST(SloParse, AcceptsFullGrammar) {
  std::string err;
  const auto spec = parse_slo("p99=500us,unreclaimed<2x,recovery<1s", &err);
  ASSERT_TRUE(spec.has_value()) << err;
  ASSERT_EQ(spec->items.size(), 3u);
  EXPECT_EQ(spec->items[0].kind, slo_kind::p99);
  EXPECT_DOUBLE_EQ(spec->items[0].bound, 500e3);  // ns
  EXPECT_EQ(spec->items[1].kind, slo_kind::unreclaimed);
  EXPECT_DOUBLE_EQ(spec->items[1].bound, 2.0);  // factor
  EXPECT_EQ(spec->items[2].kind, slo_kind::recovery);
  EXPECT_DOUBLE_EQ(spec->items[2].bound, 1000.0);  // ms
  EXPECT_EQ(spec->text, "p99=500us,unreclaimed<2x,recovery<1s");
}

TEST(SloParse, AcceptsEveryLatencyKind) {
  std::string err;
  const auto spec = parse_slo("p50=1ms,p90=2ms,p99=3ms,max=4ms", &err);
  ASSERT_TRUE(spec.has_value()) << err;
  ASSERT_EQ(spec->items.size(), 4u);
  EXPECT_EQ(spec->items[0].kind, slo_kind::p50);
  EXPECT_EQ(spec->items[1].kind, slo_kind::p90);
  EXPECT_EQ(spec->items[2].kind, slo_kind::p99);
  EXPECT_EQ(spec->items[3].kind, slo_kind::max_latency);
  EXPECT_DOUBLE_EQ(spec->items[3].bound, 4e6);
}

TEST(SloParse, RejectsBadSpecs) {
  const char* bad[] = {
      "",                        // empty spec
      "p95=1ms",                 // unknown item
      "p99",                     // missing '='
      "p99=",                    // missing bound
      "p99=banana",              // unparsable time
      "p99=-1ms",                // negative bound
      "unreclaimed<2",           // missing 'x'
      "unreclaimed<x",           // missing factor
      "unreclaimed<0x",          // non-positive factor
      "recovery<1s,recovery<2s", // duplicate kind
      "p99=1ms,",                // trailing empty item
      "p99=1ms,p99=2ms",         // duplicate latency kind
      "p99=1msQ",                // trailing garbage
  };
  for (const char* spec : bad) {
    std::string err;
    EXPECT_FALSE(parse_slo(spec, &err).has_value())
        << "accepted: \"" << spec << "\"";
    EXPECT_FALSE(err.empty()) << spec;
  }
}

// ---------------------------------------------------------------------
// evaluate_slo

std::vector<sample_point> make_timeline(
    std::initializer_list<std::pair<double, std::uint64_t>> pts) {
  std::vector<sample_point> tl;
  for (const auto& [t, u] : pts) {
    sample_point s;
    s.t_ms = t;
    s.unreclaimed = u;
    tl.push_back(s);
  }
  return tl;
}

// Baseline peak 5000 before the disturbance at [400, 600); a spike to
// 50000 inside the window; settled back to 6000 in the tail. With
// factor 2 the limit is 10000: unreclaimed passes (the spike is inside
// the window, where growth is expected) and recovery passes (first
// sample back under the limit lands 100 ms after the window ends).
struct disturbed_fixture {
  std::vector<sample_point> timeline = make_timeline({{100, 3000},
                                                      {200, 5000},
                                                      {300, 4000},
                                                      {450, 20000},
                                                      {550, 50000},
                                                      {700, 30000},
                                                      {780, 12000},
                                                      {850, 6000},
                                                      {900, 5500},
                                                      {950, 6000}});
  latency_histogram hist;
  slo_inputs in;

  disturbed_fixture() {
    for (int i = 0; i < 1000; ++i) {
      hist.record(100000);  // 100us
    }
    in.latency = &hist;
    in.timeline = &timeline;
    in.disturb_start_ms = 400;
    in.disturb_end_ms = 600;
    in.duration_ms = 1000;
    in.robust = true;
  }
};

TEST(SloEvaluate, SettledTailPassesDespiteWindowSpike) {
  disturbed_fixture f;
  std::string err;
  const auto spec =
      parse_slo("p99=500us,unreclaimed<2x,recovery<1s", &err);
  ASSERT_TRUE(spec.has_value()) << err;
  const auto verdicts = evaluate_slo(*spec, f.in);
  ASSERT_EQ(verdicts.size(), 3u);
  for (const auto& v : verdicts) {
    EXPECT_TRUE(v.gated) << format_verdict(v);
    EXPECT_TRUE(v.checked) << format_verdict(v);
    EXPECT_TRUE(v.pass) << format_verdict(v);
  }
  EXPECT_FALSE(slo_violated(verdicts));
  // unreclaimed: limit = max(2 x 5000 baseline peak, floor) = 10000.
  EXPECT_DOUBLE_EQ(verdicts[1].limit, 10000.0);
  // recovery: the window ends at 600; samples settle from t >= 800
  // (settle point = 600 + (1000-600)/2); the 850 sample at 6000 is the
  // first under the limit -> 250 ms.
  EXPECT_LE(verdicts[2].measured, 1000.0);
}

TEST(SloEvaluate, TailAboveLimitFailsUnreclaimed) {
  disturbed_fixture f;
  f.timeline.back().unreclaimed = 30000;  // never settles
  std::string err;
  const auto spec = parse_slo("unreclaimed<2x", &err);
  ASSERT_TRUE(spec.has_value()) << err;
  const auto verdicts = evaluate_slo(*spec, f.in);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_TRUE(verdicts[0].gated);
  EXPECT_TRUE(verdicts[0].checked);
  EXPECT_FALSE(verdicts[0].pass);
  EXPECT_TRUE(slo_violated(verdicts));
}

TEST(SloEvaluate, MemoryItemsReportUngatedForNonRobustSchemes) {
  disturbed_fixture f;
  f.in.robust = false;
  f.timeline.back().unreclaimed = 30000;  // would fail if gated
  std::string err;
  const auto spec = parse_slo("unreclaimed<2x,recovery<10ms", &err);
  ASSERT_TRUE(spec.has_value()) << err;
  const auto verdicts = evaluate_slo(*spec, f.in);
  ASSERT_EQ(verdicts.size(), 2u);
  for (const auto& v : verdicts) {
    EXPECT_FALSE(v.gated) << format_verdict(v);
  }
  // Still measured and reported — just not counted toward exit status.
  EXPECT_TRUE(verdicts[0].checked);
  EXPECT_FALSE(verdicts[0].pass);
  EXPECT_FALSE(slo_violated(verdicts));
}

TEST(SloEvaluate, LatencyGatesEveryScheme) {
  disturbed_fixture f;
  f.in.robust = false;
  std::string err;
  const auto spec = parse_slo("p99=1ns", &err);  // impossible bound
  ASSERT_TRUE(spec.has_value()) << err;
  const auto verdicts = evaluate_slo(*spec, f.in);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_TRUE(verdicts[0].gated);
  EXPECT_TRUE(verdicts[0].checked);
  EXPECT_FALSE(verdicts[0].pass);
  EXPECT_TRUE(slo_violated(verdicts));
}

TEST(SloEvaluate, RecoveryUncheckedWithoutDisturbance) {
  disturbed_fixture f;
  f.in.disturb_start_ms = kInf;  // no script
  f.in.disturb_end_ms = 0;
  // Without a disturbance window the memory bound judges the second
  // half against the first — use a calm series (the fixture's scripted
  // spike would straddle the split).
  f.timeline = make_timeline(
      {{100, 3000}, {300, 5000}, {600, 6000}, {900, 5000}});
  std::string err;
  const auto spec = parse_slo("recovery<1s,unreclaimed<2x", &err);
  ASSERT_TRUE(spec.has_value()) << err;
  const auto verdicts = evaluate_slo(*spec, f.in);
  ASSERT_EQ(verdicts.size(), 2u);
  // recovery has nothing to recover from: unchecked, not failed.
  EXPECT_FALSE(verdicts[0].checked);
  EXPECT_FALSE(slo_violated(verdicts));
  // unreclaimed still judges second half vs first half.
  EXPECT_TRUE(verdicts[1].checked);
}

TEST(SloEvaluate, UncheckedWithoutData) {
  slo_inputs in;  // no histogram, no timeline
  in.duration_ms = 1000;
  in.robust = true;
  std::string err;
  const auto spec = parse_slo("p99=1ms,unreclaimed<2x,recovery<1s", &err);
  ASSERT_TRUE(spec.has_value()) << err;
  const auto verdicts = evaluate_slo(*spec, in);
  for (const auto& v : verdicts) {
    EXPECT_FALSE(v.checked) << format_verdict(v);
  }
  EXPECT_FALSE(slo_violated(verdicts));
}

TEST(SloEvaluate, FormatVerdictTagsOutcomes) {
  disturbed_fixture f;
  std::string err;
  const auto spec = parse_slo("p99=500us", &err);
  ASSERT_TRUE(spec.has_value()) << err;
  const auto verdicts = evaluate_slo(*spec, f.in);
  ASSERT_EQ(verdicts.size(), 1u);
  const std::string line = format_verdict(verdicts[0]);
  EXPECT_NE(line.find("p99"), std::string::npos) << line;
  EXPECT_NE(line.find("[pass]"), std::string::npos) << line;
}

// ---------------------------------------------------------------------
// parse_tenant_plan / to_fault_plan

TEST(TenantPlan, AcceptsFullGrammar) {
  std::string err;
  const auto plan = parse_tenant_plan(
      "stall:3@250ms+200ms,hot:7@300ms+200ms,scan:1@100ms+50ms", &err);
  ASSERT_TRUE(plan.has_value()) << err;
  ASSERT_EQ(plan->events.size(), 3u);
  EXPECT_EQ(plan->events[0].kind, behavior_kind::stall_in_guard);
  EXPECT_EQ(plan->events[0].tenant, 3u);
  EXPECT_DOUBLE_EQ(plan->events[0].start_ms, 250.0);
  EXPECT_DOUBLE_EQ(plan->events[0].dur_ms, 200.0);
  EXPECT_EQ(plan->events[1].kind, behavior_kind::hot_keys);
  EXPECT_EQ(plan->events[2].kind, behavior_kind::scan_storm);

  EXPECT_TRUE(plan->is_scripted(3));
  EXPECT_TRUE(plan->is_scripted(7));
  EXPECT_FALSE(plan->is_scripted(0));
  EXPECT_DOUBLE_EQ(plan->first_start_ms(), 100.0);
  EXPECT_DOUBLE_EQ(plan->last_end_ms(), 500.0);

  // active() covers hot/scan windows, never stalls.
  EXPECT_NE(plan->active(7, 400.0), nullptr);
  EXPECT_EQ(plan->active(7, 600.0), nullptr);
  EXPECT_EQ(plan->active(3, 300.0), nullptr);  // stall: director-driven

  EXPECT_TRUE(plan->validate(8, &err)) << err;
  EXPECT_FALSE(plan->validate(4, &err));  // tenant 7 out of range
  EXPECT_FALSE(err.empty());
}

TEST(TenantPlan, RejectsBadSpecs) {
  const char* bad[] = {
      "",                    // empty spec
      "nap:1@100ms+50ms",    // unknown behavior
      "hot@100ms+50ms",      // missing ':tenant'
      "hot:1+50ms",          // missing '@start'
      "hot:1@100ms",         // missing '+dur'
      "hot:1@100ms+0ms",     // non-positive window
      "hot:1@100ms+50msQ",   // trailing garbage
      "hot:x@100ms+50ms",    // unparsable tenant
      "hot:1@abc+50ms",      // unparsable start
  };
  for (const char* spec : bad) {
    std::string err;
    EXPECT_FALSE(parse_tenant_plan(spec, &err).has_value())
        << "accepted: \"" << spec << "\"";
    EXPECT_FALSE(err.empty()) << spec;
  }
}

TEST(TenantPlan, EmptyPlanHelpers) {
  tenant_plan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(std::isinf(plan.first_start_ms()));
  EXPECT_DOUBLE_EQ(plan.last_end_ms(), 0.0);
  EXPECT_FALSE(plan.is_scripted(0));
  std::string err;
  EXPECT_TRUE(plan.validate(1, &err));
}

TEST(TenantPlan, LowersStallsAndChurnToFaultPlan) {
  std::string err;
  const auto plan =
      parse_tenant_plan("stall:1@100ms+100ms,hot:3@150ms+100ms", &err);
  ASSERT_TRUE(plan.has_value()) << err;

  const hyaline::lab::fault_plan fp = to_fault_plan(*plan, 4, 150, 600.0);
  unsigned stalls = 0, churns = 0;
  for (const auto& e : fp.events) {
    if (e.kind == hyaline::lab::fault_kind::stall) {
      ++stalls;
      EXPECT_EQ(e.tid, 1u);
      EXPECT_DOUBLE_EQ(e.start_ms, 100.0);
      EXPECT_DOUBLE_EQ(e.dur_ms, 100.0);
    } else {
      ASSERT_EQ(e.kind, hyaline::lab::fault_kind::churn);
      // Churn cycles over the UNSCRIPTED tenants only (0 and 2 here).
      EXPECT_TRUE(e.tid == 0u || e.tid == 2u) << e.tid;
      EXPECT_LT(e.start_ms, 600.0);
      ++churns;
    }
  }
  EXPECT_EQ(stalls, 1u);
  // Periods at 150, 300, 450 (600 is not strictly inside the run).
  EXPECT_EQ(churns, 3u);
  EXPECT_TRUE(fp.validate_tids(4, &err)) << err;
  // Churned tenants need lease headroom beyond the base 4 threads.
  EXPECT_GT(fp.lease_headroom(4), 4u);

  // hot/scan behaviors never become fault events; churn 0 = none.
  const hyaline::lab::fault_plan quiet = to_fault_plan(*plan, 4, 0, 600.0);
  ASSERT_EQ(quiet.events.size(), 1u);
  EXPECT_EQ(quiet.events[0].kind, hyaline::lab::fault_kind::stall);
}

}  // namespace
