// The per-thread slab allocator behind the hooked_alloc seam
// (smr/core/slab_alloc.hpp): alignment and header invariants, LIFO block
// reuse, cross-thread free batching and owner-side draining, arena-cap
// heap fallback, and the routing priority contract (debug hooks beat the
// slab, so the poison/quarantine checks keep working unchanged).
//
// The slab defaults to off under AddressSanitizer; these tests opt in
// explicitly and restore the previous state, draining any slab-held state
// they created first (blocks themselves are recycled, never unmapped, so
// enabling here cannot poison later tests).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "common/debug_alloc.hpp"
#include "smr/core/node_alloc.hpp"
#include "smr/core/slab_alloc.hpp"

namespace hyaline {
namespace {

namespace slab = smr::core::slab;

/// Enable the slab for one test body, restoring the previous routing on
/// exit. Tests only toggle while they hold no live slab node, per the
/// set_enabled contract.
class slab_on : public ::testing::Test {
 protected:
  slab_on() : was_(slab::enabled()) { slab::set_enabled(true); }
  ~slab_on() override { slab::set_enabled(was_); }

 private:
  bool was_;
};

using SlabAlloc = slab_on;

TEST_F(SlabAlloc, AlignmentAndOwnership) {
  std::vector<void*> blocks;
  for (std::size_t bytes : {std::size_t{1}, std::size_t{8}, std::size_t{16},
                            std::size_t{17}, std::size_t{48}, std::size_t{64},
                            std::size_t{120}, std::size_t{512}}) {
    void* p = slab::allocate(bytes);
    ASSERT_NE(p, nullptr);
    // Payloads are carved on 16-byte boundaries behind a 16-byte header.
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % slab::kGranule, 0u)
        << bytes;
    EXPECT_TRUE(slab::owns(p)) << bytes;
    std::memset(p, 0xab, bytes);  // the block must really be ours
    blocks.push_back(p);
  }
  // Oversized allocations take the heap path but keep the same header
  // protocol, so deallocate() routes them without a lookup.
  void* big = slab::allocate(slab::kMaxPayload + 1);
  ASSERT_NE(big, nullptr);
  EXPECT_TRUE(slab::owns(big));
  std::memset(big, 0xcd, slab::kMaxPayload + 1);
  slab::deallocate(big);
  for (void* p : blocks) slab::deallocate(p);
}

TEST_F(SlabAlloc, SameThreadFreeIsReusedLifo) {
  void* a = slab::allocate(48);
  std::memset(a, 0x11, 48);
  slab::deallocate(a);
  // Same size class, same thread: the local free list is LIFO, so the
  // very next allocation must hand the block straight back.
  void* b = slab::allocate(48);
  EXPECT_EQ(a, b);
  // A different size class must not see it.
  void* c = slab::allocate(256);
  EXPECT_NE(c, a);
  slab::deallocate(b);
  slab::deallocate(c);
}

TEST_F(SlabAlloc, DebugHooksTakePriorityOverTheSlab) {
  // Install the debug_alloc hooks *while the slab is enabled*: every node
  // allocated through the hooked_alloc seam must go to the hooks, so the
  // leak/double-free/poison machinery works identically with and without
  // the slab. (Unlike the process-wide startup install, this test-local
  // install is safe because it allocates and frees its nodes entirely
  // within the hooked window.)
  struct tnode : smr::core::reclaimable {
    std::uint64_t v = 0;
  };
  debug_alloc::reset();
  auto* old_alloc = smr::core::node_alloc_hook;
  auto* old_free = smr::core::node_free_hook;
  smr::core::node_alloc_hook = [](std::size_t n) {
    return debug_alloc::allocate(n);
  };
  smr::core::node_free_hook = [](void* p) { debug_alloc::deallocate(p); };

  const std::uint64_t before = slab::stats().chunks;
  auto* n = new tnode();
  EXPECT_EQ(debug_alloc::live_count(), 1u) << "hook was bypassed";
  n->v = 42;
  delete n;
  EXPECT_EQ(debug_alloc::live_count(), 0u);
  EXPECT_EQ(debug_alloc::double_frees(), 0u);
  EXPECT_EQ(debug_alloc::flush_quarantine(), 0u)
      << "write-after-free poison corrupted";
  EXPECT_EQ(slab::stats().chunks, before)
      << "slab carved a chunk for a hooked allocation";

  smr::core::node_alloc_hook = old_alloc;
  smr::core::node_free_hook = old_free;
}

TEST_F(SlabAlloc, RemoteFreesBatchAndDrainBackToTheOwner) {
  // Owner (this thread) allocates; a foreign thread frees. The frees must
  // come back to the owner's free lists via the batched MPSC remote
  // stack, and the owner must find them once its local list runs dry.
  constexpr std::size_t kBlocks = 3 * slab::kRemoteBatch;  // forces flushes
  constexpr std::size_t kBytes = 96;
  std::vector<void*> blocks;
  std::set<void*> ours;
  for (std::size_t i = 0; i < kBlocks; ++i) {
    void* p = slab::allocate(kBytes);
    std::memset(p, 0x5a, kBytes);
    blocks.push_back(p);
    ours.insert(p);
  }
  const std::uint64_t flushes_before = slab::stats().remote_flushes;

  std::thread freer([&] {
    for (void* p : blocks) slab::deallocate(p);
    // Thread exit parks the freer's cache, which flushes any partially
    // filled remote buffer — all kBlocks are published after join.
  });
  freer.join();
  EXPECT_GT(slab::stats().remote_flushes, flushes_before)
      << "cross-thread frees never published a batched chain";

  // The owner's local list for this class is empty (everything was handed
  // out), so the next allocations must drain the remote stack and recycle
  // exactly the blocks the foreign thread returned.
  std::size_t recycled = 0;
  std::vector<void*> again;
  for (std::size_t i = 0; i < kBlocks; ++i) {
    void* p = slab::allocate(kBytes);
    if (ours.count(p) != 0) ++recycled;
    again.push_back(p);
  }
  EXPECT_EQ(recycled, kBlocks)
      << "remotely freed blocks were not drained back to the owner";
  for (void* p : again) slab::deallocate(p);
}

TEST_F(SlabAlloc, ArenaCapFallsBackToTheHeap) {
  // Shrink the arena so the next chunk refill fails, then burn through the
  // current thread's bump space: allocations must switch to the null-owner
  // heap path instead of failing, and deallocate must route them back.
  slab::set_limit_bytes(0);
  const std::uint64_t external_before = slab::stats().external;
  std::vector<void*> held;
  bool saw_external = false;
  for (int i = 0; i < 4096 && !saw_external; ++i) {
    void* p = slab::allocate(512);  // largest class drains bump fastest
    ASSERT_NE(p, nullptr);
    std::memset(p, 0x77, 512);
    EXPECT_TRUE(slab::owns(p));
    held.push_back(p);
    saw_external = slab::stats().external > external_before;
  }
  EXPECT_TRUE(saw_external)
      << "arena cap never engaged the heap fallback path";
  for (void* p : held) slab::deallocate(p);
  slab::set_limit_bytes(std::size_t{1} << 30);  // restore the default
}

TEST_F(SlabAlloc, StatsMoveForward) {
  const slab::slab_stats a = slab::stats();
  void* p = slab::allocate(32);
  slab::deallocate(p);
  const slab::slab_stats b = slab::stats();
  EXPECT_GE(b.chunks, a.chunks);
  EXPECT_GE(b.external, a.external);
  EXPECT_GE(b.remote_flushes, a.remote_flushes);
}

}  // namespace
}  // namespace hyaline
