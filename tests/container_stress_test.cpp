// Container stress + accounting: every registered scheme × {msqueue,
// stack} through the type-erased container runners, under asymmetric
// producer/consumer splits (the shapes that stress each side: producers
// outnumbering consumers grows the structure and the retired backlog;
// consumers outnumbering producers spins on empty, hammering the
// protection path). After every cell the conservation ledger must close
// (enqueued == dequeued + drained), the domain must have freed everything
// it retired, and debug_alloc must see no leaked, double-freed, or
// corrupted node — the acceptance invariant of the container family,
// executed in all three CI jobs (ASan, UBSan, Release).
#include <gtest/gtest.h>

#include "common/debug_alloc.hpp"
#include "ds_test_common.hpp"
#include "harness/registry.hpp"

namespace hyaline {
namespace {

const bool hooks_installed = test_support::install_debug_alloc_hooks();

harness::workload_config container_workload(unsigned producers,
                                            unsigned consumers) {
  harness::workload_config cfg;
  cfg.producers = producers;
  cfg.consumers = consumers;
  cfg.threads = producers + consumers;
  cfg.duration_ms = 15;
  cfg.repeats = 1;
  cfg.prefill = 256;
  cfg.sample_every = 64;
  return cfg;
}

class ContainerStressTest
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(ContainerStressTest, EveryContainerCellConserves) {
  ASSERT_TRUE(hooks_installed);
  debug_alloc::reset();

  const auto [producers, consumers] = GetParam();
  harness::scheme_params p;
  p.max_threads = 16;
  p.slots = 4;
  p.batch_min = 8;
  const harness::workload_config cfg =
      container_workload(producers, consumers);

  const auto& reg = harness::scheme_registry::instance();
  std::size_t cells = 0;
  for (const auto& scheme : reg.schemes()) {
    for (const auto& cell : scheme.cells) {
      if (cell.kind != harness::structure_kind::container) continue;
      SCOPED_TRACE(scheme.name + " x " + cell.structure);
      const harness::workload_result r = cell.run(p, cfg);
      ++cells;
      EXPECT_EQ(r.enqueued, r.dequeued + r.drained)
          << "conservation violated: pushed " << r.enqueued << ", popped "
          << r.dequeued << ", drained " << r.drained;
      EXPECT_GE(r.enqueued, cfg.prefill);
      EXPECT_EQ(r.retired, r.freed)
          << "scheme leaked retired nodes after drain";
      EXPECT_GE(r.unreclaimed_peak, static_cast<std::uint64_t>(
                                        r.unreclaimed_avg))
          << "peak below average: sampling is broken";
      EXPECT_EQ(debug_alloc::live_count(), 0u) << "leaked node allocations";
    }
  }
  // 12 SMR schemes x {msqueue, stack} + the Mutex baseline's lockedqueue.
  EXPECT_EQ(cells, 12u * 2u + 1u);
  EXPECT_EQ(debug_alloc::double_frees(), 0u) << "double free detected";
  EXPECT_EQ(debug_alloc::flush_quarantine(), 0u)
      << "write-after-free detected (poison corrupted)";
}

INSTANTIATE_TEST_SUITE_P(
    Splits, ContainerStressTest,
    ::testing::Values(std::pair<unsigned, unsigned>{3, 1},
                      std::pair<unsigned, unsigned>{1, 3},
                      std::pair<unsigned, unsigned>{2, 2}),
    [](const auto& info) {
      return std::to_string(info.param.first) + "p" +
             std::to_string(info.param.second) + "c";
    });

}  // namespace
}  // namespace hyaline
