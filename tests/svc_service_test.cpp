// Integration tests for the service scenario (svc/service.hpp and
// svc/shard_router.hpp): key routing balance, direct router semantics,
// and an end-to-end swarm — churn plus a stall and a hot-key window —
// over one epoch-style, one robust, and one HP-family scheme, each run
// ending with the retired == freed leak gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/schemes.hpp"
#include "svc/service.hpp"
#include "svc/shard_router.hpp"
#include "svc/tenant.hpp"

namespace {

using namespace hyaline::svc;

TEST(RouteShard, CoversAllShardsRoughlyEvenly) {
  const unsigned kShards = 4;
  const std::uint64_t kKeys = 100000;
  std::vector<std::uint64_t> counts(kShards, 0);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const unsigned s = route_shard(k, kShards);
    ASSERT_LT(s, kShards);
    ++counts[s];
  }
  const double expected = static_cast<double>(kKeys) / kShards;
  for (unsigned s = 0; s < kShards; ++s) {
    EXPECT_GT(counts[s], expected * 0.9) << "shard " << s;
    EXPECT_LT(counts[s], expected * 1.1) << "shard " << s;
  }
  // Single shard: everything routes to 0.
  for (std::uint64_t k = 0; k < 64; ++k) {
    EXPECT_EQ(route_shard(k, 1), 0u);
  }
  // Routing is a pure function of (key, shards).
  EXPECT_EQ(route_shard(12345, 4), route_shard(12345, 4));
}

TEST(ShardRouter, BasicOpsAndSnapshot) {
  using D = hyaline::smr::ebr_domain;
  hyaline::harness::scheme_params p;
  shard_router<D> router(
      2, [&] { return hyaline::harness::scheme_traits<D>::make(p); }, 256);
  EXPECT_EQ(router.shards(), 2u);

  EXPECT_TRUE(router.put(1, 10));
  EXPECT_FALSE(router.put(1, 11));  // already present: miss-fill only
  std::uint64_t out = 0;
  EXPECT_TRUE(router.get(1, out));
  EXPECT_EQ(out, 10u);
  EXPECT_FALSE(router.get(2, out));
  EXPECT_TRUE(router.del(1));
  EXPECT_FALSE(router.del(1));
  router.scan(0, 0, 16);
  router.thread_quiesce();

  router.shutdown();
  const auto snaps = router.snapshot();
  ASSERT_EQ(snaps.size(), 2u);
  std::uint64_t gets = 0, puts = 0, dels = 0, scans = 0;
  std::uint64_t retired = 0, freed = 0;
  for (const shard_snapshot& s : snaps) {
    gets += s.gets;
    puts += s.puts;
    dels += s.dels;
    scans += s.scans;
    retired += s.retired;
    freed += s.freed;
  }
  EXPECT_EQ(gets, 2u);
  EXPECT_EQ(puts, 2u);
  EXPECT_EQ(dels, 2u);
  EXPECT_EQ(scans, 1u);
  EXPECT_EQ(retired, freed) << "leak after shutdown";

  const shard_totals totals = aggregate(snaps);
  EXPECT_EQ(totals.ops, gets + puts + dels + scans);
  EXPECT_GT(totals.imbalance, 0.0);
}

// One short end-to-end swarm per scheme family the acceptance criteria
// name: epoch-style, robust, and hazard-pointer. 4 tenants over 2
// shards, connection churn every 100 ms, tenant 1 stalls in-guard for
// 100 ms and tenant 3 hammers the hot key — then the leak gate.
class ServiceSwarm : public ::testing::TestWithParam<const char*> {};

TEST_P(ServiceSwarm, RunsChurnAndFaultsWithoutLeaking) {
  const std::string scheme = GetParam();
  service_runner_fn run = find_service_runner(scheme);
  ASSERT_NE(run, nullptr) << scheme;

  std::string err;
  const auto script =
      parse_tenant_plan("stall:1@100ms+100ms,hot:3@150ms+100ms", &err);
  ASSERT_TRUE(script.has_value()) << err;
  ASSERT_TRUE(script->validate(4, &err)) << err;

  service_config cfg;
  cfg.shards = 2;
  cfg.tenants = 4;
  cfg.rate_ops_s = 8000;  // paced: latency is CO-safe by construction
  cfg.zipf_theta = 0.9;
  cfg.key_range = 20000;
  cfg.prefill = 5000;
  cfg.duration_ms = 400;
  cfg.sample_ms = 20;
  cfg.churn_period_ms = 100;
  cfg.buckets_per_shard = 1024;
  cfg.script = &*script;

  hyaline::harness::scheme_params p;
  p.ack_threshold = 128;
  const service_result res = run(p, cfg);

  EXPECT_GT(res.ops, 0u);
  EXPECT_GT(res.duration_s, 0.0);
  EXPECT_EQ(res.retired, res.freed) << scheme << " leaked";
  ASSERT_EQ(res.shards.size(), 2u);

  // Victims (tenants 0, 2) and bad tenants (1, 3) record separately.
  EXPECT_GT(res.victim_hist.total(), 0u);
  EXPECT_GT(res.scripted_hist.total(), 0u);

  // The telemetry timeline exists and is time-ordered.
  ASSERT_FALSE(res.timeline.empty());
  for (std::size_t i = 1; i < res.timeline.size(); ++i) {
    EXPECT_LE(res.timeline[i - 1].t_ms, res.timeline[i].t_ms);
  }
  EXPECT_GE(res.unreclaimed_peak,
            res.timeline.back().unreclaimed == 0
                ? 0u
                : res.timeline.back().unreclaimed);

  // Shard counters saw at least the tenant ops (prefill adds more).
  const shard_totals totals = aggregate(res.shards);
  EXPECT_GE(totals.ops, res.ops);
}

INSTANTIATE_TEST_SUITE_P(Schemes, ServiceSwarm,
                         ::testing::Values("Epoch", "Hyaline-S", "HP"));

TEST(ServiceMatrix, CoversRegistryMinusMutex) {
  const auto names = service_schemes();
  // The core lineup plus the CAS-flavor variants; Mutex has no
  // guard/retire protocol to shard.
  EXPECT_GE(names.size(), 9u);
  for (const char* required :
       {"Leaky", "Epoch", "Hyaline", "Hyaline-S", "IBR", "HE", "HP"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << required;
    EXPECT_NE(find_service_runner(required), nullptr) << required;
  }
  EXPECT_EQ(std::find(names.begin(), names.end(), "Mutex"), names.end());
  EXPECT_EQ(find_service_runner("Mutex"), nullptr);
  EXPECT_EQ(find_service_runner("NoSuchScheme"), nullptr);
}

TEST(Service, ClosedLoopAndUnpacedConfigs) {
  // rate 0 = closed loop; no script, no churn, no telemetry. The swarm
  // must still run, count ops, and pass the leak gate.
  service_config cfg;
  cfg.shards = 1;
  cfg.tenants = 2;
  cfg.rate_ops_s = 0;
  cfg.zipf_theta = 0.0;  // uniform
  cfg.key_range = 4096;
  cfg.prefill = 1024;
  cfg.duration_ms = 100;
  cfg.sample_ms = 0;  // no timeline
  cfg.buckets_per_shard = 512;

  service_runner_fn run = find_service_runner("Hyaline");
  ASSERT_NE(run, nullptr);
  const service_result res = run(hyaline::harness::scheme_params{}, cfg);
  EXPECT_GT(res.ops, 0u);
  EXPECT_EQ(res.retired, res.freed);
  EXPECT_TRUE(res.timeline.empty());
  EXPECT_EQ(res.scripted_hist.total(), 0u);
  EXPECT_GT(res.victim_hist.total(), 0u);
}

}  // namespace
