// Shared fixture for the data-structure test suites: constructs a domain
// of each scheme type with small batches/thresholds so reclamation
// happens within test-sized workloads.
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/debug_alloc.hpp"
#include "common/rng.hpp"
#include "harness/schemes.hpp"
#include "smr/core/node_alloc.hpp"

namespace hyaline::test_support {

/// Route every node allocation through debug_alloc so leaks, double frees
/// and writes-after-free become deterministic failures. Install at
/// static-initialization time, before any node exists, so allocate/free
/// pairs always agree (see smr/core/node_alloc.hpp):
///   const bool hooks_installed = test_support::install_debug_alloc_hooks();
inline bool install_debug_alloc_hooks() {
  smr::core::node_alloc_hook = [](std::size_t n) {
    return debug_alloc::allocate(n);
  };
  smr::core::node_free_hook = [](void* p) { debug_alloc::deallocate(p); };
  return true;
}

inline harness::scheme_params small_params() {
  harness::scheme_params p;
  p.max_threads = 16;
  p.slots = 4;
  p.batch_min = 8;
  return p;
}

template <class D, template <class> class DS>
class ds_fixture : public ::testing::Test {
 protected:
  ds_fixture()
      : dom_(harness::scheme_traits<D>::make(small_params())),
        ds_(std::make_unique<DS<D>>(*dom_)) {}

  ~ds_fixture() override {
    ds_.reset();   // structure teardown frees live nodes directly
    dom_->drain(); // retired-but-unreclaimed nodes drain here
    EXPECT_EQ(dom_->counters().retired.load(std::memory_order_relaxed),
              dom_->counters().freed.load(std::memory_order_relaxed))
        << "leak: retired nodes were never freed";
  }

  typename D::guard guard() { return typename D::guard(*dom_); }

  std::unique_ptr<D> dom_;
  std::unique_ptr<DS<D>> ds_;
};

/// Mixed-op stress: N threads randomly insert/remove/contains over a small
/// key range; afterwards the structure size must equal the net number of
/// successful inserts minus removes.
template <class D, template <class> class DS>
void run_mixed_stress(D& dom, DS<D>& s, unsigned threads, int ops,
                      std::uint64_t range) {
  std::vector<std::thread> ts;
  std::atomic<long> net{0};
  for (unsigned t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      xoshiro256 rng(t * 92821 + 3);
      long local = 0;
      for (int i = 0; i < ops; ++i) {
        typename D::guard g(dom);
        const std::uint64_t k = rng.below(range);
        switch (rng.below(4)) {
          case 0:
          case 1:
            if (s.insert(g, k, k + 1)) ++local;
            break;
          case 2:
            if (s.remove(g, k)) --local;
            break;
          default:
            s.contains(g, k);
            break;
        }
      }
      net.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& th : ts) th.join();
  ASSERT_GE(net.load(std::memory_order_relaxed), 0);
  EXPECT_EQ(s.unsafe_size(), static_cast<std::size_t>(net.load(std::memory_order_relaxed)));
}

using AllSchemes =
    ::testing::Types<smr::leaky_domain, smr::ebr_domain, smr::hp_domain,
                     smr::he_domain, smr::ibr_domain, domain, domain_dw,
                     domain_llsc, domain_s, domain_1, domain_1s>;

/// Bonsai cannot run under pointer-publication schemes (HP/HE); see the
/// header comment in ds/bonsai_tree.hpp.
using SnapshotSafeSchemes =
    ::testing::Types<smr::leaky_domain, smr::ebr_domain, smr::ibr_domain,
                     domain, domain_dw, domain_llsc, domain_s, domain_1,
                     domain_1s>;

/// Guard-lifetime epoch-style schemes: the only ones that may traverse
/// structures with deferred unlinking (Harris's original list) — a robust
/// scheme's reservation does not pin nodes reached through marked
/// segments. See ds/harris_list.hpp.
using EpochStyleSchemes =
    ::testing::Types<smr::leaky_domain, smr::ebr_domain, domain, domain_dw,
                     domain_llsc, domain_1>;

}  // namespace hyaline::test_support
