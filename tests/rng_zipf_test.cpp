// Unit tests for the Zipfian generator (common/rng.hpp, Gray et al.'s
// incremental method): the empirical distribution must match the
// analytic Zipf probabilities (chi-square), theta = 0 must degenerate to
// exactly the uniform distribution, and rank 0 must be the hottest key
// under skew — the property the service scenario's hot-key routing
// depends on.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace {

using hyaline::xoshiro256;
using hyaline::zipf_generator;

std::vector<std::uint64_t> draw_counts(const zipf_generator& zipf,
                                       std::uint64_t draws,
                                       std::uint64_t seed) {
  std::vector<std::uint64_t> counts(zipf.range(), 0);
  xoshiro256 rng(seed);
  for (std::uint64_t i = 0; i < draws; ++i) {
    const std::uint64_t rank = zipf(rng);
    EXPECT_LT(rank, zipf.range()) << "rank out of range";
    ++counts[rank % zipf.range()];
  }
  return counts;
}

double chi_square(const std::vector<std::uint64_t>& counts,
                  const zipf_generator& zipf, std::uint64_t draws) {
  double stat = 0;
  for (std::uint64_t r = 0; r < counts.size(); ++r) {
    const double expected =
        zipf.probability(r) * static_cast<double>(draws);
    EXPECT_GE(expected, 5.0)
        << "rank " << r << ": chi-square needs >= 5 expected per cell";
    const double diff = static_cast<double>(counts[r]) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

TEST(ZipfGenerator, ProbabilitiesSumToOne) {
  const zipf_generator zipf(20, 0.8);
  double sum = 0;
  for (std::uint64_t r = 0; r < zipf.range(); ++r) {
    sum += zipf.probability(r);
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfGenerator, MatchesAnalyticDistribution) {
  // n = 20, theta = 0.8, 200k draws: the 99th percentile of chi-square
  // with 19 degrees of freedom is 36.19; a deterministic seed makes the
  // test a regression check, not a coin flip, so any margin above the
  // observed statistic works. Generous bound: a broken generator (wrong
  // eta, truncated tail) lands in the hundreds.
  const zipf_generator zipf(20, 0.8);
  const std::uint64_t kDraws = 200000;
  const auto counts = draw_counts(zipf, kDraws, 0x5eed);
  EXPECT_LT(chi_square(counts, zipf, kDraws), 43.8);
}

TEST(ZipfGenerator, ThetaZeroIsExactlyUniform) {
  // theta = 0 must give probability 1/n per rank (the formula reduces
  // analytically, not approximately)...
  const zipf_generator zipf(64, 0.0);
  for (std::uint64_t r = 0; r < 64; ++r) {
    EXPECT_NEAR(zipf.probability(r), 1.0 / 64, 1e-12);
  }
  // ...and the empirical draw must agree (chi-square, 63 dof; the 99th
  // percentile is 92.0, bound kept above the deterministic observation).
  const std::uint64_t kDraws = 320000;
  const auto counts = draw_counts(zipf, kDraws, 0xfeed);
  EXPECT_LT(chi_square(counts, zipf, kDraws), 103.0);
}

TEST(ZipfGenerator, RankZeroIsHottestUnderSkew) {
  const zipf_generator zipf(1000, 0.99);
  const std::uint64_t kDraws = 100000;
  const auto counts = draw_counts(zipf, kDraws, 0xabcd);
  for (std::uint64_t r = 1; r < counts.size(); ++r) {
    EXPECT_GE(counts[0], counts[r]) << "rank " << r << " beat rank 0";
  }
  // YCSB-style skew at theta=0.99, n=1000: rank 0 carries ~13% of the
  // mass; assert it is far above the uniform share (0.1%).
  EXPECT_GT(counts[0], kDraws / 20);
}

TEST(ZipfGenerator, DegenerateRanges) {
  xoshiro256 rng(7);
  const zipf_generator one(1, 0.99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(one(rng), 0u);
  }
  EXPECT_NEAR(one.probability(0), 1.0, 1e-12);
  const zipf_generator two(2, 0.5);
  std::uint64_t hot = 0;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t r = two(rng);
    ASSERT_LT(r, 2u);
    if (r == 0) ++hot;
  }
  // P(rank 0) = 1/(1 + 0.5^0.5) ~ 0.586.
  EXPECT_GT(hot, 5400u);
  EXPECT_LT(hot, 6300u);
  // A zero range must not divide by zero (clamped to 1).
  const zipf_generator zero(0, 0.9);
  EXPECT_EQ(zero.range(), 1u);
  EXPECT_EQ(zero(rng), 0u);
}

}  // namespace
