// Typed tests over the three head-tuple policies (packed-64, 128-bit CAS,
// emulated LL/SC): the [HRef, HPtr] semantics that enter/leave/retire rely
// on, including the LL/SC-specific two-step terminal transition of §4.4.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/head_policy.hpp"

namespace hyaline {
namespace {

struct fake_node {
  int payload = 0;
};

template <class Head>
class HeadPolicyTest : public ::testing::Test {
 protected:
  Head head_;
  fake_node n1_, n2_;
};

using Policies = ::testing::Types<head_packed<fake_node>, head_dw<fake_node>,
                                  head_llsc<fake_node>>;
TYPED_TEST_SUITE(HeadPolicyTest, Policies);

TYPED_TEST(HeadPolicyTest, InitiallyEmpty) {
  auto v = this->head_.snapshot();
  EXPECT_EQ(v.ref, 0u);
  EXPECT_EQ(v.ptr, nullptr);
}

TYPED_TEST(HeadPolicyTest, FaaEnterReturnsOldAndIncrements) {
  auto old = this->head_.faa_enter();
  EXPECT_EQ(old.ref, 0u);
  EXPECT_EQ(old.ptr, nullptr);
  old = this->head_.faa_enter();
  EXPECT_EQ(old.ref, 1u);
  EXPECT_EQ(this->head_.snapshot().ref, 2u);
}

TYPED_TEST(HeadPolicyTest, CasRetireSwapsPointerKeepsRef) {
  this->head_.faa_enter();
  auto v = this->head_.snapshot();
  EXPECT_TRUE(this->head_.cas_retire(v, &this->n1_));
  auto after = this->head_.snapshot();
  EXPECT_EQ(after.ref, 1u);
  EXPECT_EQ(after.ptr, &this->n1_);
}

TYPED_TEST(HeadPolicyTest, CasRetireFailsOnStaleSnapshot) {
  this->head_.faa_enter();
  auto v = this->head_.snapshot();
  this->head_.faa_enter();  // snapshot goes stale
  EXPECT_FALSE(this->head_.cas_retire(v, &this->n1_));
}

TYPED_TEST(HeadPolicyTest, CasLeaveDecDecrements) {
  this->head_.faa_enter();
  this->head_.faa_enter();
  auto v = this->head_.snapshot();
  EXPECT_TRUE(this->head_.cas_leave_dec(v));
  EXPECT_EQ(this->head_.snapshot().ref, 1u);
}

TYPED_TEST(HeadPolicyTest, CasLeaveLastNullsPointer) {
  this->head_.faa_enter();
  auto v = this->head_.snapshot();
  ASSERT_TRUE(this->head_.cas_retire(v, &this->n1_));
  v = this->head_.snapshot();
  ASSERT_EQ(v.ref, 1u);
  EXPECT_EQ(this->head_.cas_leave_last(v), leave_last_result::nulled);
  auto after = this->head_.snapshot();
  EXPECT_EQ(after.ref, 0u);
  EXPECT_EQ(after.ptr, nullptr);
}

TYPED_TEST(HeadPolicyTest, CasLeaveLastRetriesOnStaleSnapshot) {
  this->head_.faa_enter();
  auto v = this->head_.snapshot();
  this->head_.faa_enter();
  // v.ref == 1 but the head says 2 now: the transition must not happen.
  EXPECT_EQ(this->head_.cas_leave_last(v), leave_last_result::retry);
  EXPECT_EQ(this->head_.snapshot().ref, 2u);
}

TYPED_TEST(HeadPolicyTest, ConcurrentEnterLeaveBalances) {
  constexpr int kThreads = 4, kIters = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        this->head_.faa_enter();
        for (;;) {
          auto v = this->head_.snapshot();
          if (v.ref == 1) {
            if (this->head_.cas_leave_last(v) != leave_last_result::retry)
              break;
          } else {
            if (this->head_.cas_leave_dec(v)) break;
          }
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(this->head_.snapshot().ref, 0u);
}

// LL/SC-specific: the "claimed" outcome when a concurrent enter re-claims
// the list between the HRef decrement and the HPtr nulling (§4.4).
TEST(HeadLlsc, LeaveLastClaimedByConcurrentEnter) {
  head_llsc<fake_node> head;
  fake_node n;
  head.faa_enter();
  auto v = head.snapshot();
  ASSERT_TRUE(head.cas_retire(v, &n));
  v = head.snapshot();

  // Interleave: another thread hammers enter while we try the terminal
  // transition. We should observe at least one claimed or nulled outcome,
  // and never corrupt the tuple.
  std::atomic<bool> stop{false};
  std::thread claimer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      head.faa_enter();
      // undo so the main thread can reach ref==1 again
      for (;;) {
        auto w = head.snapshot();
        if (w.ref <= 1) break;
        if (head.cas_leave_dec(w)) break;
      }
    }
  });
  int nulled = 0, claimed = 0, retry = 0;
  // Keep polling until at least one terminal transition was attempted:
  // under adverse scheduling the claimer can park with ref stuck at 2 for
  // an arbitrary number of iterations, so a small fixed poll count is
  // flaky. The rescue phase is still bounded (a few seconds of polling)
  // so a genuinely wedged head fails the assertion instead of spinning.
  for (long i = 0;
       i < 2000 || (nulled + claimed + retry == 0 && i < 200'000'000L);
       ++i) {
    auto w = head.snapshot();
    if (w.ref != 1) continue;
    switch (head.cas_leave_last(w)) {
      case leave_last_result::nulled:
        ++nulled;
        head.faa_enter();  // restore ref for the next round
        {
          auto x = head.snapshot();
          head.cas_retire(x, &n);
        }
        break;
      case leave_last_result::claimed:
        ++claimed;
        break;
      case leave_last_result::retry:
        ++retry;
        break;
    }
  }
  stop.store(true, std::memory_order_release);
  claimer.join();
  EXPECT_GT(nulled + claimed + retry, 0);
  auto fin = head.snapshot();
  EXPECT_TRUE(fin.ptr == &n || fin.ptr == nullptr);
}

TEST(HeadPacked, FitsInSingleWord) {
  EXPECT_LE(sizeof(head_packed<fake_node>), sizeof(std::uint64_t));
}

TEST(HeadDw, Is16Bytes) {
  EXPECT_EQ(sizeof(head_dw<fake_node>), 16u);
}

}  // namespace
}  // namespace hyaline
