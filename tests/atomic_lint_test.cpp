// Unit tests for tools/atomic_lint: feed the lint engine known-bad
// snippets and assert each violation class fires, plus clean-snippet
// controls proving the rules do not over-report (shadowing locals,
// declarations, comments, strings, digit separators).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "../tools/atomic_lint/lint_core.hpp"

namespace {

using atomic_lint::lint_source;
using atomic_lint::violation;

std::vector<violation> lint(const std::string& src) {
  return lint_source("snippet.cpp", src);
}

bool has_rule(const std::vector<violation>& vs, const std::string& rule) {
  return std::any_of(vs.begin(), vs.end(),
                     [&](const violation& v) { return v.rule == rule; });
}

std::size_t count_rule(const std::vector<violation>& vs,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(vs.begin(), vs.end(),
                    [&](const violation& v) { return v.rule == rule; }));
}

// ------------------------------------------------------------- implicit --

TEST(AtomicLint, ImplicitSeqCstLoadStore) {
  const std::string src = R"(
    std::atomic<int> x{0};
    int f() { x.store(1); return x.load(); }
  )";
  const auto vs = lint(src);
  EXPECT_EQ(count_rule(vs, "implicit-seq-cst"), 2u);
}

TEST(AtomicLint, ImplicitSeqCstRmw) {
  const std::string src = R"(
    std::atomic<unsigned> c{0};
    void bump() { c.fetch_add(1); }
    bool cas(unsigned& e) { return c.compare_exchange_weak(e, e + 1); }
  )";
  const auto vs = lint(src);
  EXPECT_EQ(count_rule(vs, "implicit-seq-cst"), 2u);
}

TEST(AtomicLint, ImplicitThroughPointer) {
  const std::string src = R"(
    void g(std::atomic<long>* p) { p->fetch_sub(2); }
  )";
  EXPECT_TRUE(has_rule(lint(src), "implicit-seq-cst"));
}

TEST(AtomicLint, ExplicitOrderIsClean) {
  const std::string src = R"(
    std::atomic<int> x{0};
    int f() {
      x.store(1, std::memory_order_release);
      return x.load(std::memory_order_acquire);
    }
    bool cas(int& e) {
      return x.compare_exchange_strong(e, 7, std::memory_order_acq_rel,
                                       std::memory_order_acquire);
    }
  )";
  EXPECT_FALSE(has_rule(lint(src), "implicit-seq-cst"));
}

TEST(AtomicLint, BuiltinAtomicOrderIsClean) {
  const std::string src = R"(
    bool cas16(__uint128_t* p, __uint128_t& e, __uint128_t d) {
      return __atomic_compare_exchange_n(p, &e, d, false, __ATOMIC_ACQ_REL,
                                         __ATOMIC_ACQUIRE);  // seq_cst: n/a
    }
  )";
  EXPECT_FALSE(has_rule(lint(src), "implicit-seq-cst"));
}

TEST(AtomicLint, OrderForwardingWrapperIsClean) {
  // Wrappers that forward a caller-supplied order through a parameter
  // named `order` are the sanctioned pattern (era_clock, head policies).
  const std::string src = R"(
    struct clock_word {
      std::atomic<uint64_t> era_{0};
      uint64_t load(std::memory_order order) const noexcept {
        return era_.load(order);
      }
    };
  )";
  EXPECT_FALSE(has_rule(lint(src), "implicit-seq-cst"));
}

TEST(AtomicLint, MultilineCallArgumentsAreParsed) {
  const std::string src = R"(
    std::atomic<int> x{0};
    bool f(int& e) {
      return x.compare_exchange_weak(
          e, e + 1,
          std::memory_order_acq_rel,
          std::memory_order_relaxed);
    }
  )";
  EXPECT_FALSE(has_rule(lint(src), "implicit-seq-cst"));
}

// -------------------------------------------------- unjustified seq_cst --

TEST(AtomicLint, UnjustifiedSeqCst) {
  const std::string src = R"(
    std::atomic<int> x{0};
    void f() { x.store(1, std::memory_order_seq_cst); }
  )";
  EXPECT_TRUE(has_rule(lint(src), "unjustified-seq-cst"));
}

TEST(AtomicLint, JustifiedSeqCstSameLine) {
  const std::string src =
      "std::atomic<int> x{0};\n"
      "void f() { x.store(1, std::memory_order_seq_cst); }"
      "  // seq_cst: store-load fence pairs with scanner\n";
  EXPECT_FALSE(has_rule(lint(src), "unjustified-seq-cst"));
}

TEST(AtomicLint, JustifiedSeqCstCommentAbove) {
  const std::string src = R"(
    std::atomic<int> x{0};
    // seq_cst: publication must be ordered before the validating
    // re-read on the other side (Dekker pairing with the scanner).
    void f() { x.store(1, std::memory_order_seq_cst); }
  )";
  EXPECT_FALSE(has_rule(lint(src), "unjustified-seq-cst"));
}

TEST(AtomicLint, JustificationDoesNotCarryTooFar) {
  // A `// seq_cst:` comment more than four lines above must not excuse
  // the site.
  const std::string src = R"(
    // seq_cst: only this first site is justified
    std::atomic<int> x{0};
    void f() { x.store(1, std::memory_order_seq_cst); }
    int a;
    int b;
    int c;
    int d;
    void g() { x.store(2, std::memory_order_seq_cst); }
  )";
  EXPECT_EQ(count_rule(lint(src), "unjustified-seq-cst"), 1u);
}

TEST(AtomicLint, UnjustifiedBuiltinSeqCst) {
  const std::string src = R"(
    void f(long* p) { __atomic_store_n(p, 1, __ATOMIC_SEQ_CST); }
  )";
  EXPECT_TRUE(has_rule(lint(src), "unjustified-seq-cst"));
}

// ----------------------------------------------------------- consume --

TEST(AtomicLint, ConsumeBanned) {
  const std::string src = R"(
    std::atomic<int*> p{nullptr};
    int* f() { return p.load(std::memory_order_consume); }
  )";
  const auto vs = lint(src);
  EXPECT_TRUE(has_rule(vs, "consume-banned"));
}

// ------------------------------------------------------------- fences --

TEST(AtomicLint, FenceNeedsOrder) {
  const std::string src = R"(
    void f() { std::atomic_thread_fence(); }
  )";
  EXPECT_TRUE(has_rule(lint(src), "fence-needs-order"));
}

TEST(AtomicLint, FenceWithOrderIsCleanButSeqCstNeedsJustification) {
  const std::string src = R"(
    void f() { std::atomic_thread_fence(std::memory_order_seq_cst); }
  )";
  const auto vs = lint(src);
  EXPECT_FALSE(has_rule(vs, "fence-needs-order"));
  EXPECT_TRUE(has_rule(vs, "unjustified-seq-cst"));
}

// ------------------------------------------------------ compound ops --

TEST(AtomicLint, CompoundOpOnAtomic) {
  const std::string src = R"(
    struct stats { std::atomic<uint64_t> hits{0}; };
    void f(stats& s) { s.hits += 3; }
    std::atomic<int> n{0};
    void g() { ++n; }
  )";
  const auto vs = lint(src);
  EXPECT_EQ(count_rule(vs, "atomic-compound-op"), 2u);
}

TEST(AtomicLint, ShadowingLocalIsNotFlagged) {
  // `head` is an atomic member in one class but a plain local elsewhere
  // in the same file: ambiguous names must not be flagged.
  const std::string src = R"(
    struct stack { std::atomic<node*> head{nullptr}; };
    void walk(node* h) {
      node* head = h;
      head = head->next;
      ++head;
    }
  )";
  EXPECT_FALSE(has_rule(lint(src), "atomic-compound-op"));
}

TEST(AtomicLint, PointerToAtomicAssignIsNotFlagged) {
  const std::string src = R"(
    void descend(std::atomic<node*>* child_addr, node* p) {
      child_addr = &p->left;
    }
  )";
  EXPECT_FALSE(has_rule(lint(src), "atomic-compound-op"));
}

// ------------------------------------------------------------ lexer --

TEST(AtomicLint, CommentsAndStringsAreIgnored) {
  const std::string src = R"__(
    // x.load() in a comment is fine
    /* x.store(1) in a block comment too */
    const char* s = "x.fetch_add(1)";
    const char* r = R"lit(x.exchange(2))lit";
  )__";
  EXPECT_TRUE(lint(src).empty());
}

TEST(AtomicLint, DigitSeparatorsDoNotBreakLexing) {
  // 1'000'000 must not open a char literal and swallow the rest of the
  // file (which would hide the violation that follows).
  const std::string src = R"(
    constexpr int kIters = 1'000'000;
    std::atomic<int> x{0};
    void f() { x.store(kIters); }
  )";
  EXPECT_TRUE(has_rule(lint(src), "implicit-seq-cst"));
}

TEST(AtomicLint, CleanControlSnippet) {
  const std::string src = R"(
    struct reservation {
      std::atomic<uint64_t> era{0};
      void publish(uint64_t e) {
        // seq_cst: Dekker pairing — the store must be ordered before the
        // validating re-read of the clock on this side, and the scanner's
        // read of `era` on the other.
        era.store(e, std::memory_order_seq_cst);
      }
      void clear() { era.store(0, std::memory_order_release); }
      uint64_t read() const { return era.load(std::memory_order_acquire); }
    };
  )";
  EXPECT_TRUE(lint(src).empty());
}

}  // namespace
