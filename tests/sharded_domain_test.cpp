// Sharded retire domains (scheme_params::retire_shards) and the amortized
// guard-entry burst, driven through the registry's type-erased runners:
// for every scheme that supports sharding, a shard-count sweep must keep
// the leak ledger closed (retired == freed after the quiescent drain) and
// the recorded histories linearizable — sharding moves retired nodes
// between lists, it must never change what gets freed or when it is safe.
//
// All allocations route through debug_alloc (hooks installed at static
// init, before any node exists), so a shard list that drops or
// double-frees a node fails deterministically here rather than flakily in
// a benchmark.
#include <gtest/gtest.h>

#include <string>

#include "check/history.hpp"
#include "check/linearize.hpp"
#include "common/debug_alloc.hpp"
#include "ds_test_common.hpp"
#include "harness/registry.hpp"

namespace hyaline {
namespace {

const bool hooks_installed = test_support::install_debug_alloc_hooks();

harness::workload_config contended_workload() {
  harness::workload_config cfg;
  cfg.threads = 4;
  cfg.duration_ms = 25;
  cfg.repeats = 1;
  cfg.key_range = 128;
  cfg.prefill = 32;
  cfg.insert_pct = 40;
  cfg.remove_pct = 40;
  cfg.get_pct = 20;
  return cfg;
}

/// Schemes whose retire path honors scheme_params::retire_shards.
const char* const kShardedSchemes[] = {"Leaky", "Epoch", "IBR", "HP", "HE"};

TEST(ShardedDomains, ShardSweepKeepsTheLeakLedgerClosed) {
  ASSERT_TRUE(hooks_installed);
  const auto& reg = harness::scheme_registry::instance();
  const harness::workload_config cfg = contended_workload();

  for (const char* scheme : kShardedSchemes) {
    for (unsigned shards : {1u, 2u, 4u}) {
      for (const char* structure : {"hashmap", "msqueue"}) {
        SCOPED_TRACE(std::string(scheme) + " x " + structure + " shards=" +
                     std::to_string(shards));
        debug_alloc::reset();
        harness::runner_fn run = reg.runner(scheme, structure);
        ASSERT_NE(run, nullptr);
        harness::scheme_params p;
        p.max_threads = 8;
        p.retire_shards = shards;
        const harness::workload_result r = run(p, cfg);
        EXPECT_GT(r.total_ops, 0u);
        EXPECT_EQ(r.retired, r.freed)
            << "sharded retire lists leaked after drain";
        EXPECT_EQ(debug_alloc::live_count(), 0u) << "leaked allocations";
        EXPECT_EQ(debug_alloc::double_frees(), 0u);
        EXPECT_EQ(debug_alloc::flush_quarantine(), 0u)
            << "write-after-free: a shard freed a node that was still "
               "reachable";
      }
    }
  }
}

TEST(ShardedDomains, ShardedCellHistoriesStayLinearizable) {
  ASSERT_TRUE(hooks_installed);
  const auto& reg = harness::scheme_registry::instance();

  for (const char* scheme : {"Epoch", "HP"}) {
    SCOPED_TRACE(scheme);
    debug_alloc::reset();
    check::history_recorder rec;
    harness::workload_config cfg = contended_workload();
    cfg.key_range = 24;  // small-key contention, as in the check driver
    cfg.prefill = 12;
    cfg.history = &rec;
    harness::scheme_params p;
    p.max_threads = 8;
    p.retire_shards = 2;
    harness::runner_fn run = reg.runner(scheme, "hashmap");
    ASSERT_NE(run, nullptr);
    const harness::workload_result r = run(p, cfg);
    EXPECT_EQ(r.retired, r.freed);
    const check::check_result res = check::check_history(
        check::semantics::set, rec.collect(), /*complete=*/false);
    EXPECT_TRUE(res.ok) << (res.bad ? res.bad->what : "");
    EXPECT_GT(res.ops, 0u);
    EXPECT_EQ(debug_alloc::flush_quarantine(), 0u);
  }
}

TEST(ShardedDomains, BurstEntryComposesWithShards) {
  // EBR and IBR amortize guard entry (caps.burst_entry); combine a live
  // burst window with sharded retire lists and the ledger must still
  // close — the drain clears every lingering reservation before scanning.
  ASSERT_TRUE(hooks_installed);
  const auto& reg = harness::scheme_registry::instance();
  harness::workload_config cfg = contended_workload();
  cfg.duration_ms = 40;

  for (const char* scheme : {"Epoch", "IBR"}) {
    for (std::uint32_t burst : {1u, 8u, 64u}) {
      SCOPED_TRACE(std::string(scheme) + " burst=" +
                   std::to_string(burst));
      debug_alloc::reset();
      harness::scheme_params p;
      p.max_threads = 8;
      p.retire_shards = 2;
      p.entry_burst = burst;
      harness::runner_fn run = reg.runner(scheme, "hashmap");
      ASSERT_NE(run, nullptr);
      const harness::workload_result r = run(p, cfg);
      EXPECT_GT(r.total_ops, 0u);
      EXPECT_EQ(r.retired, r.freed)
          << "a lingering burst reservation blocked reclamation forever";
      EXPECT_EQ(debug_alloc::live_count(), 0u);
      EXPECT_EQ(debug_alloc::flush_quarantine(), 0u)
          << "write-after-free: burst elision freed under a live guard";
    }
  }

  // The burst caps are advertised: schemes that amortize entry say so.
  EXPECT_TRUE(reg.find("Epoch")->caps.burst_entry);
  EXPECT_TRUE(reg.find("IBR")->caps.burst_entry);
  EXPECT_TRUE(reg.find("Hyaline")->caps.burst_entry);
  EXPECT_FALSE(reg.find("HP")->caps.burst_entry);
  EXPECT_FALSE(reg.find("HE")->caps.burst_entry);
}

}  // namespace
}  // namespace hyaline
