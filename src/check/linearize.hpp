// Correctness oracle, part 2: the linearizability checker.
//
// Three semantic models, matched to the registry's structures:
//
//   set  — keyed insert/remove/contains over a per-key presence bit. A set
//          history decomposes exactly by key (operations on distinct keys
//          commute), so the checker partitions by key and, per key, cuts
//          the history at real-time quiescent points into overlap clusters
//          (the interval-analysis fast path: while no intervals overlap,
//          checking is a deterministic replay). Each multi-op cluster runs
//          a Wing–Gong style DFS — linearize any operation whose
//          invocation precedes every pending response, apply the 2-state
//          register semantics, backtrack — memoized on (done-set, state),
//          threading the set of feasible states across clusters.
//
//   fifo/lifo — containers with unique value tokens. Token matching finds
//          duplicated, invented, lost, and time-travelling values
//          directly; order violations are found by interval-order search:
//          a FIFO witness is a pair pushed in strict real-time order but
//          popped in strict reverse order, a LIFO witness is a quadruple
//          push(a) ⊏ push(b) ⊏ pop(a) ⊏ pop(b) (⊏ = the whole interval
//          precedes), and an empty pop is a witness when some value was
//          verifiably inside for the pop's entire interval. All searches
//          are O(n log n) sweeps (the LIFO one over a Fenwick suffix-max),
//          so full benchmark-length histories stay checkable.
//
// Every reported violation is sound: it follows from interval precedence
// alone, which recording guarantees (see history.hpp), so a report is a
// real non-linearizable sub-history, never a timestamping artifact. The
// search is not complete — a devious schedule could be non-linearizable in
// a way none of these witnesses expose — but each witness class maps to
// the failure modes reclamation bugs actually produce (ABA duplication,
// lost updates, stale reads), which the mutation mode demonstrates.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/history.hpp"

namespace hyaline::check {

enum class semantics { set, fifo, lifo };

/// A counterexample: the verdict line plus the minimal window of operations
/// that cannot be linearized.
struct violation {
  std::string what;
  std::vector<op_record> window;
};

struct check_result {
  bool ok = true;
  std::optional<violation> bad;  ///< first violation found, if any
  std::size_t ops = 0;           ///< records checked
  std::size_t keys = 0;          ///< set: distinct keys; containers: tokens
  std::size_t clusters = 0;      ///< set: overlap clusters analysed
  std::size_t dfs_clusters = 0;  ///< clusters that needed the DFS fallback
  /// Clusters abandoned at the search cap (assumed linearizable — the
  /// checker stays sound but loses completeness there). Zero in practice.
  std::size_t undecided = 0;
};

/// Check one recorded history. `complete` (containers only) asserts the
/// history covers the container's whole life and it was drained empty at
/// the end, enabling the lost-value check (a pushed-but-never-popped token
/// then has nowhere to hide).
check_result check_history(semantics sem, std::vector<op_record> h,
                           bool complete);

/// Render a violation for humans: the verdict, then one line per window
/// operation with timestamps relative to the window's earliest invocation.
std::string format_violation(const violation& v);

}  // namespace hyaline::check
