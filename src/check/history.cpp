#include "check/history.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace hyaline::check {
namespace detail {

bool detect_synchronized_tsc() {
#if defined(__x86_64__)
  // The kernel demotes the TSC from its clocksource whenever it observes
  // unsynchronized or non-invariant counters, so "the kernel trusts it" is
  // exactly the property cross-core interval comparison needs. Unreadable
  // (no /sys, odd container) means no evidence either way — fall back to
  // steady_clock, which is always sound.
  std::FILE* f = std::fopen(
      "/sys/devices/system/clocksource/clocksource0/current_clocksource",
      "r");
  if (f == nullptr) return false;
  char buf[32] = {};
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  return std::strncmp(buf, "tsc", 3) == 0;
#else
  return false;
#endif
}

}  // namespace detail

// Sorted by (inv, ret) as a defined, deterministic order — the seeded-
// determinism contract compares collected histories across runs, and the
// per-thread logs alone have no canonical interleaving. The checkers
// re-sort under their own keys (per-key for sets, inv for containers)
// and deliberately do not rely on this order.
std::vector<op_record> history_recorder::collect() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<op_record> out;
  std::size_t n = 0;
  for (const thread_log& l : logs_) n += l.recs_.size();
  out.reserve(n);
  for (const thread_log& l : logs_) {
    out.insert(out.end(), l.recs_.begin(), l.recs_.end());
  }
  std::sort(out.begin(), out.end(),
            [](const op_record& a, const op_record& b) {
              return a.inv != b.inv ? a.inv < b.inv : a.ret < b.ret;
            });
  return out;
}

}  // namespace hyaline::check
