#include "check/linearize.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace hyaline::check {
namespace {

// ------------------------------------------------------------------ set --

/// Feasible-state bitmask for one key: bit 0 = absent, bit 1 = present.
constexpr unsigned kAbsent = 1u;
constexpr unsigned kPresent = 2u;
constexpr unsigned kBoth = kAbsent | kPresent;

/// Is (o.kind, o.ok) legal from `present`? Writes the post-state. The
/// register semantics: insert succeeds iff absent, remove succeeds iff
/// present, contains reports presence and changes nothing.
bool apply_op(const op_record& o, bool present, bool* next_present) {
  switch (o.kind) {
    case op_kind::insert:
      *next_present = true;
      return o.ok != present;
    case op_kind::remove:
      *next_present = false;
      return o.ok == present;
    default:  // contains
      *next_present = present;
      return o.ok == present;
  }
}

const char* state_set_name(unsigned feas) {
  switch (feas) {
    case kAbsent:
      return "absent";
    case kPresent:
      return "present";
    default:
      return "absent|present";
  }
}

struct mask_hash {
  std::size_t operator()(const std::vector<std::uint64_t>& v) const {
    std::size_t h = 1469598103934665603ull;  // FNV-1a over the words
    for (std::uint64_t w : v) {
      h ^= w;
      h *= 1099511628211ull;
    }
    return h;
  }
};

/// Wing–Gong search over one overlap cluster: from each feasible initial
/// state, try every operation whose invocation precedes all pending
/// responses, apply it, recurse. Long clusters are the norm, not the
/// exception — one preempted op's multi-millisecond interval chains
/// every contemporaneous op on its key into a single cluster — but their
/// concurrent *width* stays bounded by the thread count, so the search is
/// organized to cost width, not length: ops arrive sorted by invocation,
/// the pending set is kept ordered, and the candidate window at each node
/// is the prefix of pending ops starting no later than the earliest
/// pending response. Reachable (done-set, state) pairs grow with width
/// too, and the memo stores the exact done-set bitset (state bit riding
/// in a spare word), never a hash truncation, so pruning cannot fabricate
/// a violation.
struct wing_gong {
  const op_record* ops;
  unsigned n;
  unsigned words;  ///< bitset words; the key carries one extra state word
  std::unordered_set<std::vector<std::uint64_t>, mask_hash> seen;
  std::set<unsigned> undone;               ///< index order == inv order
  std::multiset<std::uint64_t> pending_rets;
  std::vector<std::uint64_t> mask;
  std::size_t visited = 0;
  std::size_t visit_cap;
  unsigned finals = 0;
  bool blown = false;

  static constexpr unsigned kMaxCluster = 4096;

  explicit wing_gong(const op_record* o, unsigned len)
      : ops(o),
        n(len),
        words((len + 63) / 64),
        // Bounds the memo's memory at ~32MB however wide the keys get.
        visit_cap(std::max<std::size_t>(
            4096, (std::size_t{1} << 22) / (words + 1))) {}

  void search(bool present) {
    undone.clear();
    pending_rets.clear();
    for (unsigned i = 0; i < n; ++i) {
      undone.insert(undone.end(), i);
      pending_rets.insert(ops[i].ret);
    }
    mask.assign(words + 1, 0);
    run(0, present);
  }

  void run(unsigned done, bool present) {
    if (blown || finals == kBoth) return;
    if (++visited > visit_cap) {
      blown = true;
      return;
    }
    if (done == n) {
      finals |= present ? kPresent : kAbsent;
      return;
    }
    mask[words] = present ? 1 : 0;
    if (!seen.insert(mask).second) return;
    // An op may linearize next iff no pending op's response strictly
    // precedes its invocation: the candidate window.
    const std::uint64_t min_ret = *pending_rets.begin();
    std::vector<unsigned> cands;
    for (auto it = undone.begin();
         it != undone.end() && ops[*it].inv <= min_ret; ++it) {
      cands.push_back(*it);
    }
    for (unsigned i : cands) {
      bool next = false;
      if (!apply_op(ops[i], present, &next)) continue;
      undone.erase(i);
      pending_rets.erase(pending_rets.find(ops[i].ret));
      mask[i >> 6] |= std::uint64_t{1} << (i & 63);
      run(done + 1, next);
      mask[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
      pending_rets.insert(ops[i].ret);
      undone.insert(i);
      if (blown || finals == kBoth) return;
    }
  }
};

/// One key's records (sorted by inv): segment into overlap clusters, carry
/// the feasible-state set across them, DFS inside each.
std::optional<violation> check_one_key(std::uint64_t key,
                                       const op_record* ops, std::size_t n,
                                       check_result& out) {
  unsigned feas = kAbsent;  // every key starts outside the structure
  std::size_t i = 0;
  while (i < n) {
    // Extend the cluster while the next op overlaps the union so far; a
    // strictly later invocation is a real-time cut point. Ties count as
    // overlap (merging more is always sound).
    std::uint64_t cmax = ops[i].ret;
    std::size_t j = i + 1;
    while (j < n && ops[j].inv <= cmax) {
      cmax = std::max(cmax, ops[j].ret);
      ++j;
    }
    ++out.clusters;
    const std::size_t len = j - i;
    const unsigned entered = feas;
    unsigned next_feas = 0;
    if (len == 1) {
      for (unsigned s : {kAbsent, kPresent}) {
        if (!(feas & s)) continue;
        bool next = false;
        if (apply_op(ops[i], s == kPresent, &next)) {
          next_feas |= next ? kPresent : kAbsent;
        }
      }
    } else if (len <= wing_gong::kMaxCluster) {
      ++out.dfs_clusters;
      wing_gong dfs(ops + i, static_cast<unsigned>(len));
      for (unsigned s : {kAbsent, kPresent}) {
        if (feas & s) dfs.search(s == kPresent);
      }
      if (dfs.blown) {
        ++out.undecided;
        next_feas = kBoth;
      } else {
        next_feas = dfs.finals;
      }
    } else {
      ++out.undecided;
      next_feas = kBoth;
    }
    if (next_feas == 0) {
      violation v;
      v.what = "key " + std::to_string(key) +
               ": no valid linearization of " + std::to_string(len) +
               (len == 1 ? " op" : " overlapping ops") + " from state {" +
               state_set_name(entered) + "}";
      v.window.assign(ops + i, ops + j);
      return v;
    }
    feas = next_feas;
    i = j;
  }
  return std::nullopt;
}

check_result check_set(std::vector<op_record> h) {
  check_result res;
  res.ops = h.size();
  std::sort(h.begin(), h.end(), [](const op_record& a, const op_record& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.inv != b.inv ? a.inv < b.inv : a.ret < b.ret;
  });
  std::size_t i = 0;
  while (i < h.size()) {
    std::size_t j = i + 1;
    while (j < h.size() && h[j].key == h[i].key) ++j;
    ++res.keys;
    if (auto v = check_one_key(h[i].key, h.data() + i, j - i, res)) {
      res.ok = false;
      res.bad = std::move(*v);
      return res;
    }
    i = j;
  }
  return res;
}

// ------------------------------------------------------------ container --

/// One matched value: its push, and its pop if any.
struct match {
  op_record push;
  op_record pop;
  bool popped = false;
};

violation make_violation(std::string what, std::vector<op_record> window) {
  violation v;
  v.what = std::move(what);
  v.window = std::move(window);
  return v;
}

std::string tok_str(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Fenwick tree over compressed coordinates holding a running (value,
/// witness-index) maximum; indices are stored reversed so prefix queries
/// answer suffix-max questions.
class suffix_max {
 public:
  explicit suffix_max(std::size_t n)
      : n_(n), best_(n + 1, {0, SIZE_MAX}) {}

  void update(std::size_t idx, std::uint64_t value, std::size_t witness) {
    for (std::size_t i = n_ - idx; i <= n_; i += i & (~i + 1)) {
      if (value > best_[i].first) best_[i] = {value, witness};
    }
  }

  /// Max over original coordinates >= idx.
  std::pair<std::uint64_t, std::size_t> query(std::size_t idx) const {
    std::pair<std::uint64_t, std::size_t> out{0, SIZE_MAX};
    for (std::size_t i = n_ - idx; i > 0; i -= i & (~i + 1)) {
      if (best_[i].first > out.first) out = best_[i];
    }
    return out;
  }

 private:
  std::size_t n_;
  std::vector<std::pair<std::uint64_t, std::size_t>> best_;
};

/// FIFO witness: a pushed entirely before b, but b's pop entirely before
/// a's pop. Sweep values in push-invocation order, folding in (as "a")
/// every value whose push completed strictly earlier, tracking the max
/// pop-invocation seen.
std::optional<violation> find_fifo_violation(const std::vector<match>& m) {
  std::vector<std::size_t> by_push_inv, by_push_ret;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (!m[i].popped) continue;
    by_push_inv.push_back(i);
    by_push_ret.push_back(i);
  }
  std::sort(by_push_inv.begin(), by_push_inv.end(),
            [&](std::size_t a, std::size_t b) {
              return m[a].push.inv < m[b].push.inv;
            });
  std::sort(by_push_ret.begin(), by_push_ret.end(),
            [&](std::size_t a, std::size_t b) {
              return m[a].push.ret < m[b].push.ret;
            });
  std::size_t j = 0;
  std::size_t best = SIZE_MAX;  // inserted value with max pop.inv
  for (std::size_t bi : by_push_inv) {
    while (j < by_push_ret.size() &&
           m[by_push_ret[j]].push.ret < m[bi].push.inv) {
      const std::size_t a = by_push_ret[j++];
      if (best == SIZE_MAX || m[a].pop.inv > m[best].pop.inv) best = a;
    }
    if (best != SIZE_MAX && m[best].pop.inv > m[bi].pop.ret) {
      const match& a = m[best];
      const match& b = m[bi];
      return make_violation(
          "FIFO violation: " + tok_str(b.push.key) + " overtook " +
              tok_str(a.push.key) +
              " — pushed strictly later, popped strictly earlier",
          {a.push, b.push, b.pop, a.pop});
    }
  }
  return std::nullopt;
}

/// LIFO witness: push(a) ⊏ push(b) ⊏ pop(a) ⊏ pop(b) — in a stack, a
/// below b can only be popped after b is gone, and here b verifiably
/// arrived after a and left after a's pop. Sweep a in pop-invocation
/// order, folding in every b whose push completed before a's pop begins;
/// the Fenwick answers "among those, max pop.inv over b pushed strictly
/// after a's push returned".
std::optional<violation> find_lifo_violation(const std::vector<match>& m) {
  std::vector<std::size_t> popped;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m[i].popped) popped.push_back(i);
  }
  if (popped.empty()) return std::nullopt;
  std::vector<std::uint64_t> coords;
  coords.reserve(popped.size());
  for (std::size_t i : popped) coords.push_back(m[i].push.inv);
  std::sort(coords.begin(), coords.end());
  coords.erase(std::unique(coords.begin(), coords.end()), coords.end());
  auto coord_of = [&](std::uint64_t v) {
    return static_cast<std::size_t>(
        std::lower_bound(coords.begin(), coords.end(), v) - coords.begin());
  };
  std::vector<std::size_t> by_pop_inv = popped, by_push_ret = popped;
  std::sort(by_pop_inv.begin(), by_pop_inv.end(),
            [&](std::size_t a, std::size_t b) {
              return m[a].pop.inv < m[b].pop.inv;
            });
  std::sort(by_push_ret.begin(), by_push_ret.end(),
            [&](std::size_t a, std::size_t b) {
              return m[a].push.ret < m[b].push.ret;
            });
  suffix_max fen(coords.size());
  std::size_t j = 0;
  for (std::size_t ai : by_pop_inv) {
    while (j < by_push_ret.size() &&
           m[by_push_ret[j]].push.ret < m[ai].pop.inv) {
      const std::size_t b = by_push_ret[j++];
      fen.update(coord_of(m[b].push.inv), m[b].pop.inv, b);
    }
    // b's push must begin strictly after a's push returned.
    const std::size_t lo = static_cast<std::size_t>(
        std::upper_bound(coords.begin(), coords.end(), m[ai].push.ret) -
        coords.begin());
    if (lo >= coords.size()) continue;
    const auto [pop_inv, bi] = fen.query(lo);
    if (bi != SIZE_MAX && pop_inv > m[ai].pop.ret) {
      const match& a = m[ai];
      const match& b = m[bi];
      return make_violation(
          "LIFO violation: " + tok_str(a.push.key) + " popped beneath " +
              tok_str(b.push.key) +
              " — push(a) ⊏ push(b) ⊏ pop(a) ⊏ pop(b) has no stack order",
          {a.push, b.push, a.pop, b.pop});
    }
  }
  return std::nullopt;
}

/// Empty-pop witness: a pop returned empty while some value was
/// verifiably inside for the pop's whole interval (its push completed
/// before the pop began; its pop — if any — began after the empty pop
/// returned).
std::optional<violation> find_impossible_empty(
    const std::vector<match>& m, std::vector<op_record> empties) {
  if (empties.empty()) return std::nullopt;
  std::sort(empties.begin(), empties.end(),
            [](const op_record& a, const op_record& b) {
              return a.inv < b.inv;
            });
  std::vector<std::size_t> by_push_ret(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) by_push_ret[i] = i;
  std::sort(by_push_ret.begin(), by_push_ret.end(),
            [&](std::size_t a, std::size_t b) {
              return m[a].push.ret < m[b].push.ret;
            });
  auto pop_inv_of = [&](std::size_t i) {
    return m[i].popped ? m[i].pop.inv : ~std::uint64_t{0};
  };
  std::size_t j = 0;
  std::size_t best = SIZE_MAX;
  for (const op_record& e : empties) {
    while (j < by_push_ret.size() &&
           m[by_push_ret[j]].push.ret < e.inv) {
      const std::size_t v = by_push_ret[j++];
      if (best == SIZE_MAX || pop_inv_of(v) > pop_inv_of(best)) best = v;
    }
    if (best != SIZE_MAX && pop_inv_of(best) > e.ret) {
      const match& v = m[best];
      std::vector<op_record> window{v.push, e};
      if (v.popped) window.push_back(v.pop);
      return make_violation("empty pop while value " + tok_str(v.push.key) +
                                " was verifiably inside for its whole "
                                "interval",
                            std::move(window));
    }
  }
  return std::nullopt;
}

check_result check_container(bool fifo, std::vector<op_record> h,
                             bool complete) {
  check_result res;
  res.ops = h.size();
  std::sort(h.begin(), h.end(), [](const op_record& a, const op_record& b) {
    return a.inv != b.inv ? a.inv < b.inv : a.ret < b.ret;
  });

  auto fail = [&](violation v) {
    res.ok = false;
    res.bad = std::move(v);
    return res;
  };

  // Token matching, pushes first (a pop may sort before its push when the
  // structure is broken enough — that is precisely a violation, not an
  // indexing problem).
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(h.size());
  std::vector<match> m;
  for (const op_record& r : h) {
    if (r.kind != op_kind::push) continue;
    auto [it, fresh] = index.try_emplace(r.key, m.size());
    if (!fresh) {
      return fail(make_violation(
          "value " + tok_str(r.key) + " pushed twice (tokens are unique)",
          {m[it->second].push, r}));
    }
    m.push_back({r, {}, false});
  }
  res.keys = m.size();
  std::vector<op_record> empties;
  for (const op_record& r : h) {
    if (r.kind != op_kind::pop) continue;
    if (!r.ok) {
      empties.push_back(r);
      continue;
    }
    auto it = index.find(r.key);
    if (it == index.end()) {
      return fail(make_violation(
          "value " + tok_str(r.key) + " popped but never pushed", {r}));
    }
    match& v = m[it->second];
    if (v.popped) {
      return fail(make_violation("value " + tok_str(r.key) +
                                     " popped twice (ABA-style duplication)",
                                 {v.push, v.pop, r}));
    }
    v.pop = r;
    v.popped = true;
    if (r.ret < v.push.inv) {
      return fail(make_violation("value " + tok_str(r.key) +
                                     " popped before its push was invoked",
                                 {v.push, r}));
    }
  }
  if (complete) {
    for (const match& v : m) {
      if (!v.popped) {
        return fail(make_violation(
            "value " + tok_str(v.push.key) +
                " lost: pushed, never popped, yet the final drain emptied "
                "the container",
            {v.push}));
      }
    }
  }
  if (fifo) {
    if (auto v = find_fifo_violation(m)) return fail(std::move(*v));
  } else {
    if (auto v = find_lifo_violation(m)) return fail(std::move(*v));
  }
  if (auto v = find_impossible_empty(m, std::move(empties))) {
    return fail(std::move(*v));
  }
  return res;
}

}  // namespace

check_result check_history(semantics sem, std::vector<op_record> h,
                           bool complete) {
  switch (sem) {
    case semantics::set:
      return check_set(std::move(h));
    case semantics::fifo:
      return check_container(true, std::move(h), complete);
    default:
      return check_container(false, std::move(h), complete);
  }
}

std::string format_violation(const violation& v) {
  std::vector<op_record> w = v.window;
  std::sort(w.begin(), w.end(), [](const op_record& a, const op_record& b) {
    return a.inv != b.inv ? a.inv < b.inv : a.ret < b.ret;
  });
  std::uint64_t base = ~std::uint64_t{0};
  for (const op_record& r : w) base = std::min(base, r.inv);
  std::string out = v.what + "\n";
  char line[160];
  for (const op_record& r : w) {
    char tid[16];
    if (r.tid == kMainTid) {
      std::snprintf(tid, sizeof tid, "main");
    } else {
      std::snprintf(tid, sizeof tid, "%u", r.tid);
    }
    const bool empty_pop = r.kind == op_kind::pop && !r.ok;
    std::snprintf(line, sizeof line,
                  "  t+%-12llu .. t+%-12llu  [tid %-4s]  %s(%s) -> %s\n",
                  static_cast<unsigned long long>(r.inv - base),
                  static_cast<unsigned long long>(r.ret - base), tid,
                  op_name(r.kind),
                  empty_pop ? "" : tok_str(r.key).c_str(),
                  r.kind == op_kind::push ? "ok"
                  : empty_pop             ? "empty"
                  : r.ok                  ? "true"
                                          : "false");
    out += line;
  }
  return out;
}

}  // namespace hyaline::check
