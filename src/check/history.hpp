// Correctness oracle, part 1: the history recorder.
//
// A recorded history is the raw material of a linearizability check: every
// operation the workload performs becomes one op_record — an
// invocation/response timestamp interval plus the operation's kind, key (or
// container value token) and result. Soundness rests on one property: if
// operation A's response timestamp is smaller than operation B's invocation
// timestamp, then A really did complete before B began, so any valid
// linearization must order A before B. Widening an interval only ever
// *loses* precedence constraints, so late invocation reads or early
// response reads can hide a bug but can never fabricate one — the checker
// never reports a false violation.
//
// Timestamps come from the TSC (rdtsc fenced with lfence on both sides of
// the recorded operation: the invocation read may not sink into the
// operation, the response read may not hoist above it), but only when the
// kernel itself trusts the TSC as its clocksource — that is the practical
// guarantee that the counter is invariant and synchronized across cores,
// which cross-thread interval comparison needs. Anywhere else the recorder
// falls back to steady_clock, which is ordered by definition and merely
// slower.
//
// Cost model: recording is two timestamp reads and one push_back into a
// per-thread append-only log — no sharing, no atomics. Benchmark runs leave
// workload_config::history null and pay one predicted-not-taken branch per
// operation. Logs are handed out by attach() (mutex-protected, once per
// worker), so fault-plan churn replacements that reuse a thread id still
// get their own log and never race the predecessor's.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace hyaline::check {

enum class op_kind : std::uint8_t { insert, remove, contains, push, pop };

inline const char* op_name(op_kind k) {
  switch (k) {
    case op_kind::insert:
      return "insert";
    case op_kind::remove:
      return "remove";
    case op_kind::contains:
      return "contains";
    case op_kind::push:
      return "push";
    default:
      return "pop";
  }
}

/// The tid the workload drivers record for the main thread's quiescent
/// phases (prefill, drain).
inline constexpr std::uint32_t kMainTid = 0xffffffffu;

struct op_record {
  std::uint64_t inv = 0;  ///< invocation timestamp (ticks)
  std::uint64_t ret = 0;  ///< response timestamp (ticks)
  /// Set operations: the key. Containers: the pushed/popped value token
  /// (0 for an empty pop).
  std::uint64_t key = 0;
  std::uint32_t tid = 0;  ///< recording worker (display only)
  op_kind kind = op_kind::insert;
  bool ok = false;  ///< the operation's boolean result
};

namespace detail {

/// True iff the kernel runs on the TSC clocksource (history.cpp) — the
/// signal that rdtsc is invariant and cross-core comparable here.
bool detect_synchronized_tsc();

inline bool use_tsc() {
  static const bool v = detect_synchronized_tsc();
  return v;
}

inline std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace detail

/// Invocation timestamp: read the clock, then fence, so the recorded
/// operation's loads cannot execute before the read (which would shrink
/// the interval from the left and fabricate precedence).
inline std::uint64_t inv_now() {
#if defined(__x86_64__)
  if (detail::use_tsc()) {
    const std::uint64_t t = __builtin_ia32_rdtsc();
    __builtin_ia32_lfence();
    return t;
  }
#endif
  return detail::steady_ns();
}

/// Response timestamp: fence, then read, so the read cannot execute before
/// the recorded operation's accesses have (the right-edge mirror of
/// inv_now's concern).
inline std::uint64_t ret_now() {
#if defined(__x86_64__)
  if (detail::use_tsc()) {
    __builtin_ia32_lfence();
    return __builtin_ia32_rdtsc();
  }
#endif
  return detail::steady_ns();
}

/// One worker's append-only log. Not thread-safe: exactly one thread
/// appends, and collect() runs only after the workload quiesced.
class thread_log {
 public:
  explicit thread_log(std::uint32_t tid) : tid_(tid) { recs_.reserve(4096); }

  void record(op_kind k, std::uint64_t key, bool ok, std::uint64_t inv,
              std::uint64_t ret) {
    recs_.push_back({inv, ret, key, tid_, k, ok});
  }

  std::size_t size() const { return recs_.size(); }

 private:
  friend class history_recorder;

  std::uint32_t tid_;
  std::vector<op_record> recs_;
};

/// Hands out per-worker logs and merges them after the run. A deque keeps
/// every handed-out log at a stable address while later workers attach.
class history_recorder {
 public:
  thread_log& attach(std::uint32_t tid) {
    std::lock_guard<std::mutex> lk(mu_);
    return logs_.emplace_back(tid);
  }

  /// Every record from every log, sorted by invocation timestamp. Call
  /// only after all recording threads have been joined.
  std::vector<op_record> collect() const;

  std::size_t total_ops() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t n = 0;
    for (const thread_log& l : logs_) n += l.size();
    return n;
  }

 private:
  mutable std::mutex mu_;
  std::deque<thread_log> logs_;
};

}  // namespace hyaline::check
