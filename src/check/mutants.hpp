// Correctness oracle, part 3: self-test mutants (--mutate).
//
// Each mutant is a container with exactly one protection step deliberately
// removed, paired with *immediate* node reuse through a shared freelist —
// the reuse an SMR grace period exists to prevent. Running one under the
// history recorder must make the checker report a violation; if it does
// not, the oracle itself is broken. Two mutations, each deleting the step
// its host structure's comments call load-bearing:
//
//   skip-protect   — Treiber stack whose pop reads the head raw instead of
//                    protecting it. The classic ABA: a competitor pops the
//                    head, pops its successor, and re-pushes the same node
//                    (immediately reused) before our CAS, which then
//                    resurrects the popped successor — values duplicate
//                    and vanish.
//   drop-validate  — Michael–Scott queue whose dequeue keeps both
//                    protections but drops the head_ re-validation that
//                    proves the protected successor has not already been
//                    dequeued and reused; the stale CAS teleports the head
//                    onto a reused node and the value read lands on it.
//
// The race is made *deterministic* instead of hoped-for — an ill-timed
// preemption strikes rarely, and on a single-CPU box a spinning window
// never lets the adversary run at all. Every 16th pop arms a cooperative
// trap on its stale (node, successor) pair and sleeps (surrendering the
// core); when a competitor re-links the trapped node with a *different*
// successor — the node has been popped, reused, and re-pushed, so the
// sleeper's pair is now poison — it freezes the other threads and wakes
// the sleeper, whose unvalidated CAS then lands against a quiesced head.
// The interleaving executed is exactly the one the deleted protection
// step exists to survive; the trap merely chooses the resume moment
// adversarially instead of leaving it to the scheduler.
//
// Safety engineering, since a mutated lock-free structure can corrupt its
// own links arbitrarily: every node is owned by a pool for the
// structure's lifetime (teardown frees the pool and never walks the
// possibly-cyclic list), reused value/next fields are atomics (no UB from
// the racing accesses the mutation invites), a pop budget (pops ≤ pushes)
// bounds duplicate storms so drains terminate even on a self-linked list,
// and every wait — trap, freeze, backpressure — is bounded, so quiescent
// phases cannot hang.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/align.hpp"
#include "smr/domain.hpp"

namespace hyaline::check {

namespace detail {

/// Node pool with immediate reuse: recycled nodes are handed out before
/// fresh ones, so a just-popped node reappears with a new value as fast
/// as possible (the adversarial allocator a grace period defends
/// against). Recycling alternates which end of the freelist a node lands
/// on: containers retire neighbours consecutively, and an order-keeping
/// pool would re-link a trapped (node, successor) pair in its original
/// adjacency on every cycle — silently healing the stale read the trap
/// is trying to poison. Owns every node it ever created; frees them all
/// at destruction.
template <class Node>
class reuse_pool {
 public:
  Node* take() {
    std::lock_guard<std::mutex> lk(mu_);
    if (free_.empty()) {
      owned_.push_back(std::make_unique<Node>());
      return owned_.back().get();
    }
    Node* n = free_.front();
    free_.erase(free_.begin());
    return n;
  }

  void recycle(Node* n) {
    std::lock_guard<std::mutex> lk(mu_);
    // Rotating insertion point: consecutive retirees scatter across the
    // freelist instead of keeping their retirement order.
    const std::size_t pos = (++recycled_ * 7) % (free_.size() + 1);
    free_.insert(free_.begin() + static_cast<std::ptrdiff_t>(pos), n);
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<Node>> owned_;
  std::vector<Node*> free_;
  std::uint64_t recycled_ = 0;
};

/// The cooperative trap (see the header comment). One reader at a time
/// arms it on the (node, successor) pair it read without protection; the
/// competitor that re-links the node with a different successor springs
/// it, freezing everyone else long enough for the reader's stale CAS.
template <class Node>
class stale_trap {
 public:
  /// Op-entry gate for every thread not currently mid-trap: while the
  /// world is frozen for the reader's CAS, hold off. Bounded (~20ms) so
  /// an abandoned freeze cannot deadlock teardown.
  void obey() {
    for (int i = 0;
         i < 4000 && frozen_.load(std::memory_order_acquire) != 0; ++i) {
      std::this_thread::sleep_for(std::chrono::microseconds(5));
    }
  }

  /// Reader: try to arm on the pair just read. False if another reader
  /// holds the trap (proceed without stalling).
  bool arm(const Node* node, const Node* succ) {
    const Node* expected = nullptr;
    if (!node_.compare_exchange_strong(expected, node,
                                       std::memory_order_acq_rel)) {
      return false;
    }
    succ_.store(succ, std::memory_order_release);
    return true;
  }

  /// Reader: sleep until sprung (the world is then frozen under us) or
  /// the ~5ms bound expires (the CAS is benign then, and re-arming soon
  /// beats waiting long — the trapped node cycles back to the hot end in
  /// a couple of milliseconds).
  void await() {
    for (int spin = 0;
         spin < 100 && frozen_.load(std::memory_order_acquire) == 0;
         ++spin) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  /// Reader: release the trap and thaw the world. Always pairs with a
  /// successful arm(), after the CAS.
  void disarm() {
    node_.store(nullptr, std::memory_order_release);
    succ_.store(nullptr, std::memory_order_release);
    frozen_.store(0, std::memory_order_release);
  }

  /// Competitor: `node` was just re-linked with successor `succ`. If it
  /// is the trapped node and its successor changed to a *different live
  /// node*, the sleeping reader's pair is poison — spring. A null
  /// successor is not poison yet: the FIFO pool recycles neighbours in
  /// order, so the old successor itself is often the very next node
  /// linked behind `node`, silently healing the pair before the reader
  /// wakes; a non-null different successor can never heal (a set next
  /// edge is immutable in both containers until the node recycles).
  void maybe_spring(const Node* node, const Node* succ) {
    if (succ == nullptr) return;
    if (node != node_.load(std::memory_order_acquire)) return;
    if (succ == succ_.load(std::memory_order_acquire)) return;
    frozen_.store(1, std::memory_order_release);
  }

 private:
  std::atomic<const Node*> node_{nullptr};
  std::atomic<const Node*> succ_{nullptr};
  std::atomic<int> frozen_{0};
};

/// True on every 4th call per thread: the pops that try to arm the trap
/// (the trap is exclusive, so dense attempts cost nothing when it is
/// taken and keep it re-armed the moment it frees).
inline bool nth_pop() {
  thread_local std::uint64_t n = 0;
  return ++n % 4 == 0;
}

/// Backpressure: wait (bounded, so a run whose consumers already stopped
/// cannot deadlock shutdown) while more than ~32 values are in flight,
/// keeping reused nodes cycling through the structure's hot end. Signed
/// difference: concurrent pops can momentarily drive pops past pushes.
inline void wait_for_room(const std::atomic<std::uint64_t>& pushes,
                          const std::atomic<std::uint64_t>& pops) {
  for (int i = 0;
       i < 2000 && static_cast<std::int64_t>(
                       pushes.load(std::memory_order_relaxed) -
                       pops.load(std::memory_order_relaxed)) > 32;
       ++i) {
    std::this_thread::yield();
  }
}

}  // namespace detail

/// Treiber stack with the skip-protect mutation (see the header comment).
template <class D>
class mutant_stack {
 public:
  static_assert(smr::Domain<D>);
  using guard = typename D::guard;

  explicit mutant_stack(D&) {}

  void push(guard&, std::uint64_t value) {
    trap_.obey();
    detail::wait_for_room(pushes_, pops_);
    snode* fresh = pool_.take();
    fresh->value.store(value, std::memory_order_relaxed);
    snode* head = head_.load(std::memory_order_acquire);
    for (;;) {
      fresh->next.store(head, std::memory_order_relaxed);
      // seq_cst: mutant mirrors treiber_stack's push linearization CAS.
      if (head_.compare_exchange_weak(head, fresh,
                                      std::memory_order_seq_cst)) {
        pushes_.fetch_add(1, std::memory_order_relaxed);
        // The node just went live on top with successor `head`; if a
        // sleeping reader trapped it with a different successor, spring.
        trap_.maybe_spring(fresh, head);
        return;
      }
    }
  }

  bool try_pop(guard&, std::uint64_t& out) {
    trap_.obey();
    for (int attempts = 0; attempts < 4096; ++attempts) {
      // Pop budget: more pops than pushes is definitionally a duplicate
      // storm already on record; stop feeding it so drains terminate.
      if (pops_.load(std::memory_order_relaxed) >=
          pushes_.load(std::memory_order_relaxed)) {
        return false;
      }
      // MUTATION skip-protect: the head is read raw — no hazard
      // published, no validation — so the competitor may pop, reuse, and
      // re-push it (or its successor) between these loads and the CAS.
      snode* top = head_.load(std::memory_order_acquire);
      if (top == nullptr) return false;
      snode* next = top->next.load(std::memory_order_acquire);
      const bool trapped =
          detail::nth_pop() && trap_.arm(top, next);
      if (trapped) trap_.await();
      snode* expected = top;
      // seq_cst: mutant mirrors treiber_stack's pop linearization CAS.
      const bool won = head_.compare_exchange_strong(
          expected, next, std::memory_order_seq_cst);
      if (trapped) trap_.disarm();
      if (won) {
        out = top->value.load(std::memory_order_relaxed);
        pops_.fetch_add(1, std::memory_order_relaxed);
        pool_.recycle(top);  // immediate reuse: no grace period
        return true;
      }
    }
    return false;
  }

 private:
  struct snode {
    std::atomic<std::uint64_t> value{0};
    std::atomic<snode*> next{nullptr};
  };

  detail::reuse_pool<snode> pool_;
  detail::stale_trap<snode> trap_;
  alignas(cache_line_size) std::atomic<snode*> head_{nullptr};
  std::atomic<std::uint64_t> pushes_{0};
  std::atomic<std::uint64_t> pops_{0};
};

/// Michael–Scott queue with the drop-validate mutation (see the header
/// comment). Protection is still taken through the real guard; only the
/// re-validation is gone.
template <class D>
class mutant_queue {
 public:
  static_assert(smr::Domain<D>);
  static_assert(smr::max_hazards_v<D> >= 2);
  using guard = typename D::guard;

  explicit mutant_queue(D& dom) : dom_(dom) {
    qnode* dummy = alloc(0);
    head_.store(dummy, std::memory_order_relaxed);
    tail_.store(dummy, std::memory_order_relaxed);
  }

  void push(guard& g, std::uint64_t value) {
    trap_.obey();
    detail::wait_for_room(pushes_, pops_);
    qnode* fresh = alloc(value);
    for (int attempts = 0; attempts < 4096; ++attempts) {
      handle t = g.protect(tail_);
      qnode* tail = t.get();
      qnode* next = tail->next.load(std::memory_order_acquire);
      // seq_cst: mutant mirrors ms_queue's validating tail re-read.
      if (tail != tail_.load(std::memory_order_seq_cst)) continue;
      if (next != nullptr) {
        if (next == tail) break;  // mutation-made self-link; bail out
        // seq_cst: mutant mirrors ms_queue's helping tail swing.
        tail_.compare_exchange_strong(tail, next,
                                      std::memory_order_seq_cst);
        continue;
      }
      qnode* expected = nullptr;
      // seq_cst: mutant mirrors ms_queue's enqueue linearization CAS.
      if (tail->next.compare_exchange_strong(expected, fresh,
                                             std::memory_order_seq_cst)) {
        // seq_cst: mutant mirrors ms_queue's post-link tail swing.
        tail_.compare_exchange_strong(tail, fresh,
                                      std::memory_order_seq_cst);
        pushes_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    // The tail is corrupted beyond linking. Count the push anyway: the
    // value is on record as pushed and will be reported lost, and the pop
    // budget stays conservative.
    pushes_.fetch_add(1, std::memory_order_relaxed);
  }

  bool try_pop(guard& g, std::uint64_t& out) {
    trap_.obey();
    // Depth gate: hold pops (bounded, so the quiescent drain keeps
    // moving) until ≥8 values are in flight. On a drained ring a node
    // re-becomes the dummy with its next edge still null — nothing for
    // the trap to poison — and the successor that eventually arrives is
    // too often the recycled original, healing the pair (maybe_spring).
    for (int i = 0;
         i < 16 && static_cast<std::int64_t>(
                       pushes_.load(std::memory_order_relaxed) -
                       pops_.load(std::memory_order_relaxed)) < 8;
         ++i) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    for (int attempts = 0; attempts < 4096; ++attempts) {
      if (pops_.load(std::memory_order_relaxed) >=
          pushes_.load(std::memory_order_relaxed)) {
        return false;
      }
      handle h = g.protect(head_);
      qnode* head = h.get();
      qnode* tail = tail_.load(std::memory_order_acquire);
      handle nh = g.protect(head->next);
      qnode* next = nh.get();
      // MUTATION drop-validate: the `head == head_` re-check — the step
      // ms_queue's comments call load-bearing, the only proof that
      // `next` has not already been dequeued, retired, and reused — is
      // gone; the trap sleeps here until the dummy has been retired,
      // reused, and walked back to the head with a different successor.
      const bool trapped =
          detail::nth_pop() && next != nullptr && trap_.arm(head, next);
      if (trapped) trap_.await();
      if (next == nullptr) {
        if (trapped) trap_.disarm();
        return false;
      }
      if (head == tail) {
        if (trapped) trap_.disarm();
        if (next == tail) return false;  // self-link; report empty
        // seq_cst: mutant mirrors ms_queue's helping tail swing.
        tail_.compare_exchange_strong(tail, next,
                                      std::memory_order_seq_cst);
        continue;
      }
      out = next->value.load(std::memory_order_relaxed);
      qnode* expected = head;
      // seq_cst: mutant mirrors ms_queue's dequeue linearization CAS.
      const bool won = head_.compare_exchange_strong(
          expected, next, std::memory_order_seq_cst);
      if (trapped) trap_.disarm();
      if (won) {
        pops_.fetch_add(1, std::memory_order_relaxed);
        // The winner's successor just became the dummy: if a sleeping
        // reader trapped this node with a different successor (the node
        // has been recycled through the tail since), spring.
        trap_.maybe_spring(next,
                           next->next.load(std::memory_order_acquire));
        pool_.recycle(head);  // immediate reuse: no grace period
        return true;
      }
    }
    return false;
  }

 private:
  struct qnode : D::node {
    std::atomic<std::uint64_t> value{0};
    std::atomic<qnode*> next{nullptr};
  };

  using handle = typename D::template protected_ptr<qnode>;

  qnode* alloc(std::uint64_t value) {
    qnode* n = pool_.take();
    n->value.store(value, std::memory_order_relaxed);
    n->next.store(nullptr, std::memory_order_relaxed);
    dom_.on_alloc(n);
    return n;
  }

  D& dom_;
  detail::reuse_pool<qnode> pool_;
  detail::stale_trap<qnode> trap_;
  alignas(cache_line_size) std::atomic<qnode*> head_{nullptr};
  alignas(cache_line_size) std::atomic<qnode*> tail_{nullptr};
  std::atomic<std::uint64_t> pushes_{0};
  std::atomic<std::uint64_t> pops_{0};
};

}  // namespace hyaline::check
