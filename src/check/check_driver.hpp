// Correctness oracle, part 4: the `check` binary's driver.
//
// One command sweeps every registered scheme×structure cell under
// small-key contention with the history recorder on, runs the matching
// linearizability checker per cell (set semantics for the keyed
// structures, FIFO/LIFO token matching for the containers — the mode
// comes from the registry's container_order tag, not from name matching),
// and exits non-zero with a printed counterexample on the first
// violation. `--faults` composes exactly as in fig_timeline, so histories
// under stalls, slowdowns, bursts, exits, and churn are checked too;
// `--mutate drop-validate|skip-protect` runs the corresponding
// self-test mutant instead and is *expected* to exit non-zero — an exit
// of 0 there means the oracle failed to catch an injected bug.
#pragma once

namespace hyaline::check {

/// Parse argv and run. Exit statuses: 0 = every cell linearizable (or, in
/// --mutate mode, the oracle MISSED the injected bug); 2 = CLI error;
/// 3 = a leak/conservation gate failed; 5 = a linearizability violation
/// was found (the expected outcome under --mutate).
int run_check(int argc, char** argv);

}  // namespace hyaline::check
