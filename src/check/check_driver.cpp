#include "check/check_driver.hpp"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "check/history.hpp"
#include "check/linearize.hpp"
#include "check/mutants.hpp"
#include "harness/cli.hpp"
#include "harness/registry.hpp"
#include "harness/workload.hpp"
#include "lab/fault_plan.hpp"
#include "smr/ebr.hpp"

namespace hyaline::check {
namespace {

using harness::cli_options;
using harness::workload_config;

constexpr int kExitCli = 2;
constexpr int kExitGate = 3;
constexpr int kExitViolation = 5;

/// Mirrors a violation report to stderr and (optionally) the
/// --counterexample file, accumulating across cells so the artifact holds
/// every counterexample of the run.
class counterexample_sink {
 public:
  explicit counterexample_sink(std::string path) : path_(std::move(path)) {}

  void report(const std::string& where, const violation& v) {
    const std::string body =
        where + ": " + format_violation(v);
    std::fprintf(stderr, "VIOLATION %s", body.c_str());
    text_ += body;
  }

  /// Write the accumulated counterexamples; true on success (or nothing
  /// to do).
  bool flush() const {
    if (path_.empty() || text_.empty()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "--counterexample: cannot open '%s'\n",
                   path_.c_str());
      return false;
    }
    std::fputs(text_.c_str(), f);
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
  }

 private:
  std::string path_;
  std::string text_;
};

/// A container cell without an order tag is a registry bug, not a
/// checkable cell — refuse loudly instead of guessing its semantics.
bool has_checkable_semantics(const harness::scheme_registry::cell& cell) {
  return cell.kind == harness::structure_kind::set ||
         cell.order != harness::container_order::none;
}

semantics semantics_of(const harness::scheme_registry::cell& cell) {
  if (cell.kind == harness::structure_kind::set) return semantics::set;
  return cell.order == harness::container_order::fifo ? semantics::fifo
                                                      : semantics::lifo;
}

/// The matrix sweep: every registered cell under small-key contention,
/// history on, checked per cell. Integrity gates (leaks, conservation)
/// ride along so a check run is strictly stronger than a benchmark run.
int run_matrix(const cli_options& o, const lab::fault_plan& plan,
               unsigned threads) {
  const auto& reg = harness::scheme_registry::instance();
  counterexample_sink sink(o.counterexample);
  int status = 0;
  std::size_t cells = 0;
  std::size_t total_ops = 0;
  for (const auto& scheme : reg.schemes()) {
    if (!o.scheme_enabled(scheme.name)) continue;
    for (const auto& cell : scheme.cells) {
      if (!o.structure.empty() && cell.structure != o.structure) continue;
      const std::string where = scheme.name + " x " + cell.structure;
      if (!has_checkable_semantics(cell)) {
        std::fprintf(stderr,
                     "%s: container cell registered without a "
                     "container_order tag; declare fifo/lifo in "
                     "registry.cpp\n",
                     where.c_str());
        return kExitCli;
      }
      history_recorder rec;
      workload_config cfg;
      cfg.threads = threads;
      cfg.duration_ms = o.duration_ms;
      cfg.repeats = 1;
      cfg.seed = o.seed;
      cfg.history = &rec;
      cfg.faults = plan.empty() ? nullptr : &plan;
      const bool container =
          cell.kind == harness::structure_kind::container;
      if (container) {
        // Derived split; a small prefill keeps empty pops in play.
        cfg.prefill = std::min<std::size_t>(o.prefill, 64);
      } else {
        cfg.key_range = o.key_range;
        // Prefill must fit the key space with room for inserts to land.
        cfg.prefill =
            std::min<std::size_t>(o.prefill, cfg.key_range / 2);
        if (!o.mix.empty()) {
          cfg.insert_pct = o.mix[0];
          cfg.remove_pct = o.mix[1];
          cfg.get_pct = o.mix[2];
        } else {
          // Contention default: enough gets that stale reads are
          // observable, enough mutation that states keep flipping.
          cfg.insert_pct = 40;
          cfg.remove_pct = 40;
          cfg.get_pct = 20;
        }
      }
      harness::scheme_params p;
      p.max_threads = plan.lease_headroom(threads);
      p.ack_threshold = 512;  // scaled to short runs, as in fig10a
      p.retire_shards = o.shards;
      const auto t0 = std::chrono::steady_clock::now();
      const harness::workload_result r = cell.run(p, cfg);
      auto history = rec.collect();
      total_ops += history.size();
      const check_result res =
          check_history(semantics_of(cell), std::move(history), container);
      const double ms =
          std::chrono::duration_cast<std::chrono::duration<double>>(
              std::chrono::steady_clock::now() - t0)
              .count() *
          1e3;
      ++cells;

      bool gate_bad = false;
      if (container && r.enqueued != r.dequeued + r.drained) {
        std::fprintf(stderr,
                     "%s: conservation violated — pushed %llu != popped "
                     "%llu + drained %llu\n",
                     where.c_str(),
                     static_cast<unsigned long long>(r.enqueued),
                     static_cast<unsigned long long>(r.dequeued),
                     static_cast<unsigned long long>(r.drained));
        gate_bad = true;
      }
      if (r.retired != r.freed) {
        std::fprintf(stderr, "%s: leak — retired %llu, freed %llu\n",
                     where.c_str(),
                     static_cast<unsigned long long>(r.retired),
                     static_cast<unsigned long long>(r.freed));
        gate_bad = true;
      }
      if (gate_bad && status == 0) status = kExitGate;
      if (!res.ok) {
        sink.report(where, *res.bad);
        status = kExitViolation;
      }
      std::printf(
          "%-4s %-14s x %-8s ops=%-8zu keys=%-6zu clusters=%-8zu "
          "dfs=%-6zu undecided=%zu (%.0f ms)\n",
          res.ok && !gate_bad ? "ok" : "FAIL", scheme.name.c_str(),
          cell.structure.c_str(), res.ops, res.keys, res.clusters,
          res.dfs_clusters, res.undecided, ms);
      std::fflush(stdout);
    }
  }
  if (cells == 0) {
    std::fprintf(stderr, "no cells matched the --schemes/--structure "
                         "filter\n");
    return kExitCli;
  }
  std::printf("checked %zu cells, %zu recorded ops: %s\n", cells,
              total_ops, status == 0 ? "all linearizable" : "FAILURES");
  if (!sink.flush() && status == 0) status = kExitCli;
  return status;
}

/// The oracle's self-test: run a container with one protection step
/// deliberately broken and assert the checker notices. Non-zero exit =
/// caught (the healthy outcome); 0 = the oracle missed an injected bug.
int run_mutation(const cli_options& o) {
  const bool skip_protect = o.mutate == "skip-protect";
  if (!skip_protect && o.mutate != "drop-validate") {
    std::fprintf(stderr,
                 "--mutate wants drop-validate or skip-protect, got "
                 "'%s'\n",
                 o.mutate.c_str());
    return kExitCli;
  }
  smr::ebr_domain dom(16);
  history_recorder rec;
  workload_config cfg;
  cfg.producers = 2;
  cfg.consumers = 2;
  cfg.threads = 4;
  cfg.duration_ms = o.duration_ms;
  cfg.prefill = 8;  // tiny: reused nodes cycle back to the hot end fast
  cfg.repeats = 1;
  cfg.seed = o.seed;
  cfg.history = &rec;
  // complete=true is sound here even though a mutant's drain can be cut
  // by its pop budget: the budget only binds after a duplicate storm, and
  // duplicates are reported before the lost-value check is ever reached —
  // so a "lost" verdict always reflects a genuinely emptied container
  // that never produced the value (e.g. the head teleporting past a
  // queue segment, which loses values without duplicating any).
  check_result res;
  if (skip_protect) {
    mutant_stack<smr::ebr_domain> st(dom);
    harness::run_container_workload(dom, st, cfg);
    res = check_history(semantics::lifo, rec.collect(),
                        /*complete=*/true);
  } else {
    mutant_queue<smr::ebr_domain> q(dom);
    harness::run_container_workload(dom, q, cfg);
    res = check_history(semantics::fifo, rec.collect(),
                        /*complete=*/true);
  }
  if (res.ok) {
    std::printf(
        "mutation '%s' NOT caught over %zu recorded ops — the oracle "
        "missed an injected bug\n",
        o.mutate.c_str(), res.ops);
    return 0;
  }
  counterexample_sink sink(o.counterexample);
  sink.report("mutant(" + o.mutate + ")", *res.bad);
  sink.flush();
  std::printf("mutation '%s' caught by the checker (%zu recorded ops)\n",
              o.mutate.c_str(), res.ops);
  return kExitViolation;
}

}  // namespace

int run_check(int argc, char** argv) {
  cli_options defaults;
  defaults.threads = {4};
  defaults.duration_ms = 60;
  defaults.key_range = 24;  // small-key contention: overlap on every key
  defaults.prefill = 12;
  cli_options o = harness::parse_cli(argc, argv, defaults);

  if (!o.producers.empty() || !o.consumers.empty() || !o.stalled.empty()) {
    std::fprintf(stderr,
                 "check derives container splits and expresses stalls as "
                 "--faults; --producers/--consumers/--stalled do not "
                 "apply\n");
    return kExitCli;
  }
  if (o.full || o.repeats != 1 || !o.json.empty() || o.sample_ms_set) {
    std::fprintf(stderr,
                 "check runs one repetition per cell and has no JSON/"
                 "telemetry output; --full/--repeats/--json/--sample-ms "
                 "do not apply\n");
    return kExitCli;
  }
  if (o.threads.size() > 1) {
    std::fprintf(stderr, "check takes a single --threads value\n");
    return kExitCli;
  }
  const unsigned threads = o.threads.empty() ? 4 : o.threads[0];
  if (threads == 0) {
    std::fprintf(stderr, "check needs at least 1 thread\n");
    return kExitCli;
  }

  if (!o.mutate.empty()) {
    if (!o.faults.empty() || !o.structure.empty() || !o.schemes.empty() ||
        o.threads_set || o.range_set || !o.mix.empty()) {
      std::fprintf(stderr,
                   "--mutate is a fixed self-test (2p/2c over one mutant "
                   "container); --faults/--structure/--schemes/--threads/"
                   "--range/--mix do not compose with it\n");
      return kExitCli;
    }
    return run_mutation(o);
  }

  // A --structure filter naming a container makes the set-only knobs
  // dead; reject them rather than silently ignoring (the figure
  // binaries' convention for exactly this flag class).
  if (!o.structure.empty() &&
      harness::scheme_registry::instance().kind_of(o.structure) ==
          harness::structure_kind::container &&
      (o.range_set || !o.mix.empty())) {
    std::fprintf(stderr,
                 "--mix/--range are set-structure options; '%s' is a "
                 "container\n",
                 o.structure.c_str());
    return kExitCli;
  }

  lab::fault_plan plan;
  if (!o.faults.empty()) {
    std::string err;
    auto parsed = lab::parse_fault_plan(o.faults, &err);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "--faults: %s\n", err.c_str());
      return kExitCli;
    }
    plan = std::move(*parsed);
    if (!plan.validate_tids(threads, &err)) {
      std::fprintf(stderr, "--faults: %s\n", err.c_str());
      return kExitCli;
    }
    const auto last_end = plan.last_end_ms();
    if (last_end.has_value() && *last_end >= o.duration_ms) {
      std::fprintf(stderr,
                   "--faults: the last fault clears at %.0fms but each "
                   "cell runs %ums; extend --duration\n",
                   *last_end, o.duration_ms);
      return kExitCli;
    }
  }
  return run_matrix(o, plan, threads);
}

}  // namespace hyaline::check
