// Runtime scheme registry: the type-erased scheme×structure run matrix.
//
// The figure benchmarks used to unroll the full template cross-product at
// every call site; instead, every (scheme, structure) pair is instantiated
// exactly once — in registry.cpp — behind a plain function pointer, and
// benchmarks look schemes up *by name at runtime*. `--schemes Hyaline-S`
// therefore needs no recompilation, and a new scheme or structure lands in
// the whole benchmark suite by adding one registry entry.
//
// Registered scheme names (the paper's nine headline schemes are marked
// `core_lineup`): Leaky, Epoch, HP, HE, IBR, Hyaline, Hyaline-1, Hyaline-S,
// Hyaline-1S, plus the head-policy variants Hyaline(dwcas), Hyaline(llsc),
// Hyaline-S(llsc). Structures come in two kinds, which the cells carry so
// drivers can validate options per cell (key_range/op-mix are set-only;
// the producer/consumer split is container-only):
//   - sets: list (Harris–Michael list), harris (Harris list with deferred
//     unlink), hashmap, nmtree, bonsai — driven by run_workload;
//   - containers: msqueue (Michael–Scott MPMC queue), stack (Treiber
//     stack) — driven by run_container_workload. Containers have no
//     marked-edge traversal, so every scheme gets both container cells,
//     including the robust ones harris excludes.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "harness/schemes.hpp"
#include "harness/workload.hpp"

namespace hyaline::harness {

/// Capability flags a scheme advertises to the benchmark drivers.
struct scheme_caps {
  /// HP/HE: protect() publishes pointer addresses; incompatible with
  /// snapshot-traversal structures (bonsai), as in the paper.
  bool pointer_publication = false;
  /// A stalled thread pins a bounded number of nodes.
  bool robust = false;
  /// Hyaline over the emulated LL/SC head (§4.4; Figures 13-16).
  bool llsc_head = false;
  /// guard::trim() is meaningful (Hyaline family, §3.3).
  bool supports_trim = false;
  /// One of the nine schemes the paper's figures plot.
  bool core_lineup = false;
  /// Guard entry amortization applies (smr::caps::burst_entry).
  bool burst_entry = false;
  /// Externally synchronized honesty baseline (the coarse-mutex cells):
  /// not an SMR scheme at all. SMR-only sweeps and comparisons skip these
  /// entries; drivers may still run them by name to report the floor.
  bool external_baseline = false;
};

/// One type-erased benchmark run: construct the scheme from `params`, build
/// the structure over it, drive the kind's workload loop, tear down, and
/// report the result (including the final retired/freed counters for leak
/// checks).
using runner_fn = workload_result (*)(const scheme_params& params,
                                      const workload_config& cfg);

/// What a registered structure is, and therefore which workload driver and
/// which workload_config options apply to its cell.
enum class structure_kind {
  set,        ///< keyed insert/remove/get over run_workload
  container,  ///< push/pop over run_container_workload
};

/// How a container orders its values. The linearizability oracle
/// (src/check) selects its token-matching mode from this tag, so a new
/// container declares its checkable semantics where it is registered
/// instead of being name-matched by the checker. `none` for sets.
enum class container_order {
  none,
  fifo,  ///< queue: strict arrival order (ms_queue)
  lifo,  ///< stack: strict reverse arrival order (treiber_stack)
};

class scheme_registry {
 public:
  struct cell {
    std::string structure;
    structure_kind kind = structure_kind::set;
    runner_fn run;
    container_order order = container_order::none;
  };

  struct entry {
    std::string name;
    scheme_caps caps;
    /// Name of this scheme's emulated-LL/SC twin, if one is registered
    /// (the Figures 13-16 head substitution); empty otherwise.
    std::string llsc_variant;
    std::vector<cell> cells;

    /// Runner for one structure, or nullptr if the pair is not registered
    /// (e.g. HP/HE × bonsai).
    runner_fn runner_for(std::string_view structure) const;

    /// The full cell (kind included), or nullptr if not registered.
    const cell* cell_for(std::string_view structure) const;
  };

  /// The process-wide registry, built on first use. Entries are in the
  /// paper's plotting order (`schemes()` drives the figure line-ups).
  static const scheme_registry& instance();

  const entry* find(std::string_view scheme) const;
  runner_fn runner(std::string_view scheme, std::string_view structure) const;

  const std::vector<entry>& schemes() const { return schemes_; }

  /// Every registered structure name with its kind, first-appearance
  /// order, deduplicated across schemes — the timeline driver resolves
  /// and validates `--structure` against this.
  struct structure_info {
    std::string name;
    structure_kind kind;
  };
  std::vector<structure_info> structures() const;

  /// The kind of a registered structure, or nullopt if no scheme
  /// registers it.
  std::optional<structure_kind> kind_of(std::string_view structure) const;

 private:
  scheme_registry();

  std::vector<entry> schemes_;
};

}  // namespace hyaline::harness
