// Scheme registry: construction parameters, display names, and the
// scheme×structure run matrix used by the figure benchmarks.
//
// Every benchmark binary iterates the same nine schemes the paper plots:
// Leaky, Epoch (EBR), HP, HE, IBR, Hyaline, Hyaline-1, Hyaline-S,
// Hyaline-1S. HP and HE are skipped for the Bonsai tree, as in the paper
// (snapshot traversal cannot be pointer-protected).
#pragma once

#include <bit>
#include <memory>
#include <string>

#include "smr/ebr.hpp"
#include "smr/hazard_eras.hpp"
#include "smr/hazard_pointers.hpp"
#include "smr/hyaline.hpp"
#include "smr/hyaline1.hpp"
#include "smr/ibr.hpp"
#include "smr/immediate.hpp"
#include "smr/leaky.hpp"

namespace hyaline::harness {

/// Knobs shared by all scheme factories for one benchmark data point.
struct scheme_params {
  unsigned max_threads = 8;   ///< active + stalled threads (the registry
                              ///< runners add headroom for the prefilling
                              ///< thread's transparent tid lease)
  std::size_t slots = 0;      ///< Hyaline k (0 = 2*next_pow2(threads), capped
                              ///< at 128 like the paper's evaluation)
  std::size_t max_slots = 0;  ///< Hyaline-S adaptive growth cap (0 = off)
  std::size_t batch_min = 64;
  std::int64_t ack_threshold = 8192;  ///< Hyaline-S stalled-slot detection
  /// Retired-node shard count for schemes that support it (EBR, IBR, HP,
  /// HE, Leaky). 0 = classic per-thread (or global, for Leaky) lists.
  unsigned retire_shards = 0;
  /// Amortized guard entry burst for caps.burst_entry schemes (EBR, IBR,
  /// Hyaline slot caching). Harness default is on — the workload runners
  /// quiesce idle/exiting threads, which the burst exit relies on. Direct
  /// users of the raw configs get 0 (classic) unless they opt in.
  std::uint32_t entry_burst = 64;
};

inline std::size_t default_slots(const scheme_params& p) {
  if (p.slots != 0) return p.slots;
  std::size_t k = std::bit_ceil(std::size_t{p.max_threads});
  if (k > 128) k = 128;  // paper §6: k capped at 128
  return k;
}

template <class D>
struct scheme_traits;

template <>
struct scheme_traits<smr::leaky_domain> {
  static constexpr const char* name = "Leaky";
  static std::unique_ptr<smr::leaky_domain> make(const scheme_params& p) {
    return std::make_unique<smr::leaky_domain>(p.max_threads,
                                               p.retire_shards);
  }
};

template <>
struct scheme_traits<smr::immediate_domain> {
  static constexpr const char* name = "Mutex";
  static std::unique_ptr<smr::immediate_domain> make(const scheme_params& p) {
    return std::make_unique<smr::immediate_domain>(p.max_threads);
  }
};

template <>
struct scheme_traits<smr::ebr_domain> {
  static constexpr const char* name = "Epoch";
  static std::unique_ptr<smr::ebr_domain> make(const scheme_params& p) {
    return std::make_unique<smr::ebr_domain>(
        smr::ebr_config{.max_threads = p.max_threads,
                        .entry_burst = p.entry_burst,
                        .retire_shards = p.retire_shards});
  }
};

template <>
struct scheme_traits<smr::hp_domain> {
  static constexpr const char* name = "HP";
  static std::unique_ptr<smr::hp_domain> make(const scheme_params& p) {
    return std::make_unique<smr::hp_domain>(smr::hp_config{
        .max_threads = p.max_threads, .retire_shards = p.retire_shards});
  }
};

template <>
struct scheme_traits<smr::he_domain> {
  static constexpr const char* name = "HE";
  static std::unique_ptr<smr::he_domain> make(const scheme_params& p) {
    return std::make_unique<smr::he_domain>(smr::he_config{
        .max_threads = p.max_threads, .retire_shards = p.retire_shards});
  }
};

template <>
struct scheme_traits<smr::ibr_domain> {
  static constexpr const char* name = "IBR";
  static std::unique_ptr<smr::ibr_domain> make(const scheme_params& p) {
    return std::make_unique<smr::ibr_domain>(
        smr::ibr_config{.max_threads = p.max_threads,
                        .entry_burst = p.entry_burst,
                        .retire_shards = p.retire_shards});
  }
};

template <>
struct scheme_traits<domain> {
  static constexpr const char* name = "Hyaline";
  static std::unique_ptr<domain> make(const scheme_params& p) {
    return std::make_unique<domain>(config{.slots = default_slots(p),
                                           .batch_min = p.batch_min,
                                           .entry_burst = p.entry_burst});
  }
};

template <>
struct scheme_traits<domain_dw> {
  static constexpr const char* name = "Hyaline(dwcas)";
  static std::unique_ptr<domain_dw> make(const scheme_params& p) {
    return std::make_unique<domain_dw>(config{.slots = default_slots(p),
                                              .batch_min = p.batch_min,
                                              .entry_burst = p.entry_burst});
  }
};

template <>
struct scheme_traits<domain_llsc> {
  static constexpr const char* name = "Hyaline(llsc)";
  static std::unique_ptr<domain_llsc> make(const scheme_params& p) {
    return std::make_unique<domain_llsc>(
        config{.slots = default_slots(p),
               .batch_min = p.batch_min,
               .entry_burst = p.entry_burst});
  }
};

template <>
struct scheme_traits<domain_s> {
  static constexpr const char* name = "Hyaline-S";
  static std::unique_ptr<domain_s> make(const scheme_params& p) {
    return std::make_unique<domain_s>(config{.slots = default_slots(p),
                                             .max_slots = p.max_slots,
                                             .batch_min = p.batch_min,
                                             .ack_threshold = p.ack_threshold,
                                             .entry_burst = p.entry_burst});
  }
};

template <>
struct scheme_traits<domain_s_llsc> {
  static constexpr const char* name = "Hyaline-S(llsc)";
  static std::unique_ptr<domain_s_llsc> make(const scheme_params& p) {
    return std::make_unique<domain_s_llsc>(
        config{.slots = default_slots(p),
               .max_slots = p.max_slots,
               .batch_min = p.batch_min,
               .ack_threshold = p.ack_threshold,
               .entry_burst = p.entry_burst});
  }
};

template <>
struct scheme_traits<domain_1> {
  static constexpr const char* name = "Hyaline-1";
  static std::unique_ptr<domain_1> make(const scheme_params& p) {
    return std::make_unique<domain_1>(
        config1{.max_threads = p.max_threads, .batch_min = p.batch_min});
  }
};

template <>
struct scheme_traits<domain_1s> {
  static constexpr const char* name = "Hyaline-1S";
  static std::unique_ptr<domain_1s> make(const scheme_params& p) {
    return std::make_unique<domain_1s>(
        config1{.max_threads = p.max_threads, .batch_min = p.batch_min});
  }
};

}  // namespace hyaline::harness
