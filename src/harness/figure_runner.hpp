// Shared driver for the figure benchmarks: runs one data structure across
// the paper's scheme line-up and thread sweep, emitting CSV rows.
#pragma once

#include "harness/cli.hpp"
#include "harness/schemes.hpp"
#include "harness/workload.hpp"

namespace hyaline::harness {

/// Run one (scheme, structure) pair over the thread sweep.
template <class D, template <class> class DS>
void run_scheme(const char* figure, const char* structure,
                const cli_options& o, const workload_config& base) {
  if (!o.scheme_enabled(scheme_traits<D>::name)) return;
  for (unsigned t : o.threads) {
    scheme_params p;
    p.max_threads = t + base.stalled_threads;
    auto dom = scheme_traits<D>::make(p);
    DS<D> s(*dom);
    workload_config cfg = base;
    cfg.threads = t;
    cfg.duration_ms = o.duration_ms;
    cfg.repeats = o.repeats;
    cfg.key_range = o.key_range;
    cfg.prefill = o.prefill;
    const workload_result r = run_workload(*dom, s, cfg);
    print_csv_row(figure, structure, scheme_traits<D>::name, t,
                  base.stalled_threads, r.mops, r.unreclaimed_avg);
  }
}

/// The paper's full scheme line-up for one structure. Pointer-publication
/// schemes (HP, HE) are skipped when `include_pointer_schemes` is false
/// (Bonsai tree, as in the paper).
template <template <class> class DS>
void run_all_schemes(const char* figure, const char* structure,
                     const cli_options& o, const workload_config& base,
                     bool include_pointer_schemes) {
  run_scheme<smr::leaky_domain, DS>(figure, structure, o, base);
  run_scheme<smr::ebr_domain, DS>(figure, structure, o, base);
  run_scheme<domain, DS>(figure, structure, o, base);
  run_scheme<domain_1, DS>(figure, structure, o, base);
  run_scheme<domain_s, DS>(figure, structure, o, base);
  run_scheme<domain_1s, DS>(figure, structure, o, base);
  run_scheme<smr::ibr_domain, DS>(figure, structure, o, base);
  if (include_pointer_schemes) {
    run_scheme<smr::he_domain, DS>(figure, structure, o, base);
    run_scheme<smr::hp_domain, DS>(figure, structure, o, base);
  }
}

/// LL/SC head-policy line-up (PowerPC substitution, Figures 13-16): the
/// Hyaline variants run on the emulated-LL/SC head, baselines unchanged.
template <template <class> class DS>
void run_llsc_schemes(const char* figure, const char* structure,
                      const cli_options& o, const workload_config& base,
                      bool include_pointer_schemes) {
  run_scheme<smr::leaky_domain, DS>(figure, structure, o, base);
  run_scheme<smr::ebr_domain, DS>(figure, structure, o, base);
  run_scheme<domain_llsc, DS>(figure, structure, o, base);
  run_scheme<domain_1, DS>(figure, structure, o, base);
  run_scheme<domain_s_llsc, DS>(figure, structure, o, base);
  run_scheme<domain_1s, DS>(figure, structure, o, base);
  run_scheme<smr::ibr_domain, DS>(figure, structure, o, base);
  if (include_pointer_schemes) {
    run_scheme<smr::he_domain, DS>(figure, structure, o, base);
    run_scheme<smr::hp_domain, DS>(figure, structure, o, base);
  }
}

}  // namespace hyaline::harness
