// Workload driver: a reimplementation of the measurement loop of the test
// framework the paper uses (Wen et al. [35]).
//
// Per data point (paper §6): prefill the structure with `prefill` elements,
// run `threads` worker threads for `duration_ms`, each performing randomly
// drawn operations on keys uniform in [0, key_range); report throughput in
// Mops/sec and the mean number of retired-but-unreclaimed objects sampled
// once every `sample_every` operations (Figures 9/12/14/16). Repeat
// `repeats` times and average.
//
// Extras used by specific figures:
//   - stalled_threads: extra threads that enter, touch one node, and then
//     block until the run ends (the Figure 10a robustness experiment).
//     Internally this is the degenerate case `stall:tid@0+inf` of the
//     robustness lab's fault plans (lab/fault_plan.hpp);
//   - faults / sample_ms: the robustness lab (fig_timeline) — a scripted
//     schedule of transient faults executed by a lab clock thread that
//     the loops below poll at operation boundaries, and a telemetry
//     sampler producing the time series in workload_result::timeline;
//   - use_trim: hold one guard per thread and trim() after every operation
//     instead of leave+enter (the Figure 10b trimming experiment).
//
// Container workloads (fig_queue) run through run_container_workload
// instead: an asymmetric producer/consumer split over a FIFO queue or
// stack, where every successful operation allocates or retires a node.
// Accounting is exact — pushed items (prefill included), popped items, and
// the residual drained at the end must balance (the conservation
// invariant checked by the registry runners and tests).
//
// Every loop also samples per-op latency (one in kLatencyEvery operations
// is timed around its guard + operation) into a shared log-bucketed
// histogram; the p50/p90/p99/max land in every workload_result.
//
// Correctness oracle (src/check): when workload_config::history is set,
// every operation both loops perform — prefill and the container drain
// included — is recorded as a timestamped invocation/response interval
// with its result, feeding the linearizability checker. Benchmark runs
// leave it null and pay one predicted-not-taken branch per operation.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "check/history.hpp"
#include "common/rng.hpp"
#include "lab/fault_plan.hpp"
#include "lab/telemetry.hpp"
#include "obs/trace.hpp"
#include "smr/stats.hpp"

namespace hyaline::harness {

namespace detail {
/// Default latency-sampling period: one in this many operations is timed.
/// Sampling keeps the two clock reads off the common path so the histogram
/// does not perturb the throughput it is measured alongside. Overridable
/// per run via workload_config::lat_sample (the --lat-sample flag).
inline constexpr std::uint64_t kLatencyEvery = 32;
}  // namespace detail

struct workload_config {
  unsigned threads = 4;
  unsigned stalled_threads = 0;
  unsigned duration_ms = 500;
  unsigned repeats = 1;
  std::uint64_t key_range = 100000;
  std::size_t prefill = 50000;
  /// Percentages; must sum to 100. Paper: write = {50,50,0}, read = {5,5,90}
  /// ("90% get, 10% put", put split evenly between insert and remove to
  /// keep the size in equilibrium).
  unsigned insert_pct = 50;
  unsigned remove_pct = 50;
  unsigned get_pct = 0;
  bool use_trim = false;
  unsigned sample_every = 128;
  /// Latency-sampling period: one in `lat_sample` operations is timed
  /// around its guard + operation. Must be a power of two (the CLI
  /// validates); 1 times every op (max detail, max perturbation).
  std::uint64_t lat_sample = detail::kLatencyEvery;
  std::uint64_t seed = 0x5eed;
  /// Container workloads only: the producer/consumer thread split. Both
  /// zero means "derive from `threads`" (see container_split). Set drivers
  /// ignore these, exactly as container drivers ignore key_range and the
  /// op mix — the registry's structure-kind dimension keeps the two option
  /// families apart.
  unsigned producers = 0;
  unsigned consumers = 0;
  /// Robustness lab: scripted transient faults executed against every
  /// repetition (nullptr = none). stalled_threads is folded into the same
  /// machinery as stall@0+inf workers either way. The plan must outlive
  /// the run and have been validated against the worker-thread count.
  const lab::fault_plan* faults = nullptr;
  /// Telemetry cadence in ms; nonzero fills workload_result::timeline.
  /// Meant for single-repetition runs (fig_timeline): with repeats > 1
  /// only the last repetition's series is kept.
  unsigned sample_ms = 0;
  /// Correctness oracle: non-null turns history recording on — every
  /// operation lands in a per-thread append-only log of timestamped
  /// invocation/response intervals (check/history.hpp). The recorder must
  /// outlive the run; collect() only after the driver returned.
  check::history_recorder* history = nullptr;
  /// Per-thread operation budget (0 = none), checked at op boundaries:
  /// each worker leaves its loop after this many operations even if the
  /// duration has not elapsed, and the run ends as soon as every worker
  /// has retired its budget. This is what makes the --seed contract a
  /// determinism *guarantee* for single-threaded runs: a time-based stop
  /// cuts the op stream at a timing-dependent point, a budget does not.
  std::uint64_t op_limit = 0;
};

struct workload_result {
  double mops = 0;              ///< throughput, million operations / second
  double unreclaimed_avg = 0;   ///< mean retired-not-yet-freed per sample
  /// Worst retired-not-yet-freed value over all samples of all repeats —
  /// the number the paper's robustness bound (§5) actually caps, which an
  /// average can launder (a brief spike amortized over a long run looks
  /// harmless).
  std::uint64_t unreclaimed_peak = 0;
  std::uint64_t total_ops = 0;  ///< operations completed across all threads
  /// Per-op latency percentiles (ns) over the sampled operations (one in
  /// detail::kLatencyEvery ops is timed around guard + operation), and
  /// the exact maximum among them.
  double p50_ns = 0;
  double p90_ns = 0;
  double p99_ns = 0;
  std::uint64_t max_ns = 0;
  /// Final domain counters, captured after structure teardown and a
  /// quiescent drain (filled in by the registry runners; retired != freed
  /// means the scheme leaked).
  std::uint64_t retired = 0;
  std::uint64_t freed = 0;
  /// Container workloads: the conservation ledger. Items pushed (prefill
  /// included), items popped during the run, and items drained from the
  /// residual at the end; enqueued == dequeued + drained or the container
  /// lost or duplicated values. Zero for set workloads.
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t drained = 0;
  /// Time series from the telemetry sampler (empty unless
  /// workload_config::sample_ms was set).
  std::vector<lab::sample_point> timeline;
  /// Full domain counter snapshot (scans/steals/finalizes/lag histogram),
  /// captured by the registry runners after the quiescent drain. The lag
  /// buckets are all-zero unless obs::lag_tracking() was on for the run.
  smr::stats_snapshot obs;
  /// Retire->free lag percentiles (ns) rehydrated from obs.lag_bucket;
  /// zero when lag tracking was off.
  double lag_p50_ns = 0;
  double lag_p99_ns = 0;
  std::uint64_t lag_max_ns = 0;
};

/// True iff the op-mix percentages cover exactly the whole dice range.
/// A mix that does not sum to 100 silently skews the distribution (the
/// remainder falls through to get), so drivers reject it up front. Summed
/// in 64 bits so overflowing values cannot wrap back to 100.
constexpr bool valid_mix(const workload_config& cfg) {
  return std::uint64_t{cfg.insert_pct} + cfg.remove_pct + cfg.get_pct ==
         100;
}

namespace detail {

/// THE definition of how a history interval wraps an operation, shared by
/// every recording site (prefill, workers, bursts, drain): invocation
/// read, run `op` (which returns {ok, key/token}), response read, one
/// record. Keeping a single copy is what the checker's soundness argument
/// assumes — all op classes must be fenced and timed identically. Returns
/// the operation's `ok`.
template <class F>
bool record_op(check::thread_log* log, check::op_kind kind, F&& op) {
  if (log == nullptr) return op().first;
  const std::uint64_t t_inv = check::inv_now();
  const auto [ok, key] = op();
  log->record(kind, key, ok, t_inv, check::ret_now());
  return ok;
}

template <class D>
concept has_flush = requires(D d) { d.flush(); };

/// Finalize the calling thread's partial retirement batch, for schemes
/// that batch (the Hyaline family). No-op elsewhere.
template <class D>
void flush_thread(D& dom) {
  if constexpr (has_flush<D>) {
    dom.flush();
  } else {
    (void)dom;
  }
}

template <class D>
concept has_quiesce = requires(D d) { d.quiesce(); };

/// Clear the calling thread's lingering burst-entry reservation, for
/// schemes with amortized guard exit (EBR/IBR with entry_burst). Called
/// wherever a thread stops taking guards — worker exit, after prefill, and
/// after the final drain loop — so an idle reservation cannot stall epoch
/// or era advancement for the threads still running. No-op elsewhere.
template <class D>
void quiesce_thread(D& dom) {
  if constexpr (has_quiesce<D>) {
    dom.quiesce();
  } else {
    (void)dom;
  }
}

template <class G>
concept has_trim = requires(G g) { g.trim(); };

/// Relaxed monotone max — the peak counter is a statistic, not
/// synchronization (same stance as smr::stats).
inline void atomic_max(std::atomic<std::uint64_t>& m, std::uint64_t v) {
  std::uint64_t cur = m.load(std::memory_order_relaxed);
  while (cur < v &&
         !m.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Per-repetition shared counters every worker thread updates.
struct rep_counters {
  std::atomic<std::uint64_t> ops{0};
  std::atomic<std::uint64_t> sample_sum{0};
  std::atomic<std::uint64_t> sample_cnt{0};

  /// Record one unreclaimed-counter observation (worker-side); the
  /// worker's running peak stays thread-local until merged at exit.
  void sample(std::uint64_t unreclaimed, std::uint64_t& local_peak) {
    if (unreclaimed > local_peak) local_peak = unreclaimed;
    sample_sum.fetch_add(unreclaimed, std::memory_order_relaxed);
    sample_cnt.fetch_add(1, std::memory_order_relaxed);
  }
};

/// Cross-repetition accumulator shared by both workload drivers, so the
/// mops / unreclaimed_avg / unreclaimed_peak columns keep exactly one
/// meaning however the figure was produced.
struct run_stats {
  double mops_sum = 0;
  double unrecl_sum = 0;
  std::uint64_t ops_total = 0;
  std::atomic<std::uint64_t> peak{0};

  /// Fold one repetition in. `end_unreclaimed` backs the too-short-run
  /// fallback: a repetition that never reached a sampling point
  /// contributes one end-of-run observation to both statistics.
  void finish_rep(rep_counters& c, double secs,
                  std::uint64_t end_unreclaimed) {
    const std::uint64_t n = c.ops.load(std::memory_order_relaxed);
    ops_total += n;
    mops_sum += static_cast<double>(n) / secs / 1e6;
    const std::uint64_t cnt = c.sample_cnt.load(std::memory_order_relaxed);
    if (cnt == 0) {
      atomic_max(peak, end_unreclaimed);
      unrecl_sum += static_cast<double>(end_unreclaimed);
    } else {
      unrecl_sum += static_cast<double>(
                        c.sample_sum.load(std::memory_order_relaxed)) /
                    static_cast<double>(cnt);
    }
  }

  void fill(workload_result& r, unsigned repeats) const {
    r.mops = mops_sum / repeats;
    r.unreclaimed_avg = unrecl_sum / repeats;
    r.unreclaimed_peak = peak.load(std::memory_order_relaxed);
    r.total_ops = ops_total;
  }
};

/// Sleep out one repetition: the full duration, or — on op-budget runs —
/// until every worker has published its budgeted count (workers publish
/// at exit), whichever comes first. Budgeted tests then cost their op
/// count, not their worst-case wall clock.
inline void wait_rep_end(std::chrono::steady_clock::time_point t0,
                         const workload_config& cfg,
                         unsigned total_threads,
                         const rep_counters& counters) {
  const auto deadline = t0 + std::chrono::milliseconds(cfg.duration_ms);
  if (cfg.op_limit == 0) {
    std::this_thread::sleep_until(deadline);
    return;
  }
  const std::uint64_t target = std::uint64_t{total_threads} * cfg.op_limit;
  while (std::chrono::steady_clock::now() < deadline &&
         counters.ops.load(std::memory_order_relaxed) < target) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

inline std::uint64_t ns_since(std::chrono::steady_clock::time_point t) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t)
          .count());
}

/// Shared run-level lab state for one workload invocation: the merged
/// latency histogram plus the (per-repetition) fault director and
/// telemetry collector, so both workload drivers wire the hooks the same
/// way.
struct lab_state {
  lab::latency_histogram hist;
  std::mutex hist_mu;
  lab::fault_director* dir = nullptr;
  lab::telemetry_collector* tele = nullptr;

  void merge_hist(const lab::latency_histogram& local) {
    std::lock_guard<std::mutex> lk(hist_mu);
    hist.merge(local);
  }

  void fill(workload_result& r) const {
    r.p50_ns = hist.percentile(0.50);
    r.p90_ns = hist.percentile(0.90);
    r.p99_ns = hist.percentile(0.99);
    r.max_ns = hist.max();
  }
};

/// The user's fault plan plus the legacy permanently-stalled extras,
/// expressed as what they are: workers that stall at t=0 forever.
inline lab::fault_plan effective_plan(const workload_config& cfg) {
  lab::fault_plan plan;
  if (cfg.faults != nullptr) plan = *cfg.faults;
  for (unsigned i = 0; i < cfg.stalled_threads; ++i) {
    lab::fault_event e;
    e.kind = lab::fault_kind::stall;
    e.tid = cfg.threads + i;
    e.start_ms = 0;
    e.dur_ms = std::numeric_limits<double>::infinity();
    plan.events.push_back(e);
  }
  return plan;
}

}  // namespace detail

/// Resolved producer/consumer split for a container workload: explicit
/// counts win; otherwise `threads` is split evenly, producers taking the
/// odd one out (threads == 1 means a lone producer — pure enqueue is a
/// valid, maximally allocation-heavy workload; the drain still balances
/// the ledger).
struct thread_split {
  unsigned producers = 0;
  unsigned consumers = 0;
  unsigned total() const { return producers + consumers; }
};

constexpr thread_split container_split(const workload_config& cfg) {
  if (cfg.producers != 0 || cfg.consumers != 0) {
    return {cfg.producers, cfg.consumers};
  }
  const unsigned consumers = cfg.threads / 2;
  return {cfg.threads - consumers, consumers};
}

/// Run one configuration against structure `s` over domain `dom`.
/// DS must provide insert/remove/contains(guard&, key[, value]).
template <class DS, class D>
workload_result run_workload(D& dom, DS& s, const workload_config& cfg) {
  using guard_t = typename D::guard;
  assert(valid_mix(cfg) && "op-mix percentages must sum to 100");

  // --- prefill (quiescent) ---------------------------------------------
  {
    check::thread_log* plog =
        cfg.history != nullptr ? &cfg.history->attach(check::kMainTid)
                               : nullptr;
    xoshiro256 rng(cfg.seed ^ 0x9e3779b97f4a7c15ULL);
    std::size_t live = 0;
    while (live < cfg.prefill) {
      guard_t g(dom);
      const std::uint64_t key = rng.below(cfg.key_range);
      if (detail::record_op(plog, check::op_kind::insert, [&] {
            return std::pair{s.insert(g, key, 1), key};
          })) {
        ++live;
      }
    }
    // The prefilling (main) thread takes no further guards: release any
    // burst-entry reservation so it cannot pin the epoch for the workers.
    detail::quiesce_thread(dom);
  }

  detail::run_stats stats;
  detail::lab_state lab;
  const lab::fault_plan plan = detail::effective_plan(cfg);
  const unsigned total_threads = cfg.threads + cfg.stalled_threads;
  std::vector<lab::sample_point> timeline;

  for (unsigned rep = 0; rep < cfg.repeats; ++rep) {
    std::atomic<bool> start{false};
    std::atomic<bool> stop{false};
    detail::rep_counters counters;

    auto worker = [&](unsigned tid, std::uint32_t gen) {
      xoshiro256 rng(cfg.seed + tid * 1000003 + rep * 7919);
      check::thread_log* hlog =
          cfg.history != nullptr ? &cfg.history->attach(tid) : nullptr;
      lab::latency_histogram lhist;
      std::uint64_t local_ops = 0;
      std::uint64_t local_peak = 0;
      auto kind_of = [&](std::uint64_t dice) {
        return dice < cfg.insert_pct ? check::op_kind::insert
               : dice < cfg.insert_pct + cfg.remove_pct
                   ? check::op_kind::remove
                   : check::op_kind::contains;
      };
      auto dispatch = [&](guard_t& g, std::uint64_t key,
                          check::op_kind kind) -> bool {
        switch (kind) {
          case check::op_kind::insert:
            return s.insert(g, key, key);
          case check::op_kind::remove:
            return s.remove(g, key);
          default:
            return s.contains(g, key);
        }
      };
      // dispatch plus (when the oracle is on) one history record around
      // it: the interval is taken tightly around the call, inside the
      // guard, so it contains the linearization point and nothing else.
      auto apply = [&](guard_t& g, check::op_kind kind,
                       std::uint64_t key) -> bool {
        return detail::record_op(hlog, kind, [&] {
          return std::pair{dispatch(g, key, kind), key};
        });
      };
      auto after_op = [&] {
        ++local_ops;
        if (lab.tele != nullptr) lab.tele->on_op(tid);
        if (local_ops % cfg.sample_every == 0) {
          counters.sample(dom.counters().unreclaimed(), local_peak);
        }
      };
      /// Op-budget check, at the same boundaries as the stop flag.
      auto within_limit = [&] {
        return cfg.op_limit == 0 || local_ops < cfg.op_limit;
      };
      // One claimed burst unit: remove a random key (a successful remove
      // retires its node) and reinsert to hold the size at equilibrium.
      auto burst_pair = [&](guard_t& g) {
        const std::uint64_t key = rng.below(cfg.key_range);
        if (apply(g, check::op_kind::remove, key)) {
          apply(g, check::op_kind::insert, key);
        }
      };
      if (lab.tele != nullptr) lab.tele->thread_enter();
      while (!start.load(std::memory_order_acquire)) {
      }
      // Each worker completes at least one op before honoring `stop`:
      // under heavy instrumentation (TSan) on a loaded machine the
      // duration deadline can expire before a worker is first
      // scheduled, and a zero-op rep is indistinguishable from a hang
      // to the validators downstream. Only for fault-free runs: a
      // worker stalled by the director at t=0 never counts an op, so
      // the guarantee would turn its release into a spin.
      auto keep_going = [&] {
        return ((local_ops == 0 && lab.dir == nullptr) ||
                !stop.load(std::memory_order_relaxed)) &&
               within_limit();
      };
      if (!cfg.use_trim) {
        while (keep_going()) {
          if (lab.dir != nullptr) {
            if (lab.dir->exited(tid, gen)) break;
            if (lab.dir->stalled(tid)) {
              // The paper's stalled-thread protocol: enter, touch one
              // node, block holding the guard for the stall window.
              guard_t g(dom);
              apply(g, check::op_kind::contains, rng.below(cfg.key_range));
              obs::emit(obs::event::stall_begin, tid);
              lab.dir->wait_stall_end(tid);
              obs::emit(obs::event::stall_end, tid);
              continue;
            }
            if (const std::uint32_t us = lab.dir->slow_delay_us(tid)) {
              std::this_thread::sleep_for(std::chrono::microseconds(us));
            }
            for (std::uint64_t n = lab.dir->claim_burst(128);
                 n != 0 && !stop.load(std::memory_order_relaxed) &&
                 within_limit();
                 --n) {
              guard_t g(dom);
              burst_pair(g);
              after_op();
            }
          }
          const std::uint64_t key = rng.below(cfg.key_range);
          const auto kind = kind_of(rng.below(100));
          const bool timed = local_ops % cfg.lat_sample == 0;
          const auto t_op = timed ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
          {
            guard_t g(dom);
            apply(g, kind, key);
          }
          if (timed) lhist.record(detail::ns_since(t_op));
          after_op();
        }
      } else {
        // Trimming mode (§3.3): one guard spans many operations; trim()
        // after each op reclaims without touching Head. Re-enter
        // periodically to bound the retirement sublists. Fault polls
        // happen under the held guard (a stall here pins exactly what
        // the long-lived guard pins).
        constexpr std::uint64_t regrip_every = 1024;
        while (keep_going()) {
          if (lab.dir != nullptr && lab.dir->exited(tid, gen)) break;
          guard_t g(dom);
          for (std::uint64_t i = 0; i < regrip_every && keep_going(); ++i) {
            if (lab.dir != nullptr) {
              if (lab.dir->exited(tid, gen)) break;
              if (lab.dir->stalled(tid)) {
                apply(g, check::op_kind::contains,
                      rng.below(cfg.key_range));
                obs::emit(obs::event::stall_begin, tid);
                lab.dir->wait_stall_end(tid);
                obs::emit(obs::event::stall_end, tid);
              }
              if (const std::uint32_t us = lab.dir->slow_delay_us(tid)) {
                std::this_thread::sleep_for(std::chrono::microseconds(us));
              }
              for (std::uint64_t n = lab.dir->claim_burst(128);
                   n != 0 && !stop.load(std::memory_order_relaxed) &&
                   within_limit();
                   --n) {
                burst_pair(g);
                if constexpr (detail::has_trim<guard_t>) g.trim();
                after_op();
              }
            }
            const std::uint64_t key = rng.below(cfg.key_range);
            const auto kind = kind_of(rng.below(100));
            const bool timed = local_ops % cfg.lat_sample == 0;
            const auto t_op =
                timed ? std::chrono::steady_clock::now()
                      : std::chrono::steady_clock::time_point{};
            apply(g, kind, key);
            if constexpr (detail::has_trim<guard_t>) g.trim();
            if (timed) lhist.record(detail::ns_since(t_op));
            after_op();
          }
        }
      }
      counters.ops.fetch_add(local_ops, std::memory_order_relaxed);
      detail::atomic_max(stats.peak, local_peak);
      detail::flush_thread(dom);
      detail::quiesce_thread(dom);
      lab.merge_hist(lhist);
      if (lab.tele != nullptr) lab.tele->thread_exit();
    };

    // Churn replacements spawned by the lab clock thread mid-run; joined
    // after the primary workers (the director is stopped first, so the
    // clock thread no longer appends by then).
    std::vector<std::thread> replacements;
    std::mutex spawn_mu;
    std::unique_ptr<lab::fault_director> dir_holder;
    if (!plan.empty()) {
      dir_holder = std::make_unique<lab::fault_director>(
          plan, total_threads, [&](unsigned tid) {
            const std::uint32_t gen = lab.dir->generation(tid);
            std::lock_guard<std::mutex> lk(spawn_mu);
            replacements.emplace_back([&worker, tid, gen] {
              char name[16];
              std::snprintf(name, sizeof name, "churn-%u", tid);
              obs::name_thread(name);
              worker(tid, gen);
            });
          });
    }
    lab.dir = dir_holder.get();
    std::unique_ptr<lab::telemetry_collector> tele_holder;
    if (cfg.sample_ms != 0) {
      tele_holder = std::make_unique<lab::telemetry_collector>(
          total_threads, cfg.sample_ms, &dom.counters());
    }
    lab.tele = tele_holder.get();

    std::vector<std::thread> ts;
    ts.reserve(total_threads);
    for (unsigned t = 0; t < total_threads; ++t) {
      ts.emplace_back(worker, t, 0);
    }

    const auto t0 = std::chrono::steady_clock::now();
    start.store(true, std::memory_order_release);
    if (lab.dir != nullptr) lab.dir->start();
    if (lab.tele != nullptr) lab.tele->start();
    detail::wait_rep_end(t0, cfg, total_threads, counters);
    stop.store(true, std::memory_order_release);
    // Stop the director before joining: it releases in-guard stall waits
    // (a stalled worker cannot observe `stop` until released) and joins
    // the clock thread, after which `replacements` is quiescent.
    if (lab.dir != nullptr) lab.dir->stop();
    // Telemetry stops BEFORE the joins: teardown samples would record
    // the unreclaimed count after per-thread flushes — a drop the
    // recovery check must not credit to the scheme (threads exiting is
    // not recovery).
    if (lab.tele != nullptr) {
      lab.tele->stop();
      timeline = lab.tele->take_points();
    }
    for (auto& th : ts) th.join();
    for (auto& th : replacements) th.join();
    const auto t1 = std::chrono::steady_clock::now();

    const double secs =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
            .count();
    stats.finish_rep(counters, secs, dom.counters().unreclaimed());
    lab.dir = nullptr;
    lab.tele = nullptr;
  }

  workload_result r;
  stats.fill(r, cfg.repeats);
  lab.fill(r);
  r.timeline = std::move(timeline);
  return r;
}

/// Run one producer/consumer configuration against container `q` over
/// domain `dom`. Q must provide push(guard&, value) and
/// try_pop(guard&, value&) (ms_queue, treiber_stack). Producers push
/// monotonically stamped values as fast as they can; consumers pop (an
/// empty pop still counts as an operation — spinning on an empty queue is
/// real work the throughput number must not hide). After the timed
/// repeats, the residual content is drained quiescently so the
/// conservation ledger (enqueued == dequeued + drained) can be checked by
/// the caller. Fault plans and telemetry apply exactly as in
/// run_workload; burst events run push+pop pairs (each successful pop
/// retires a node) with both sides entered into the ledger.
template <class Q, class D>
workload_result run_container_workload(D& dom, Q& q,
                                       const workload_config& cfg) {
  using guard_t = typename D::guard;
  const thread_split split = container_split(cfg);
  assert(split.total() > 0 && "container workload needs at least 1 thread");

  std::atomic<std::uint64_t> enqueued{0};
  std::atomic<std::uint64_t> dequeued{0};
  /// Token source for pushed values: every worker invocation (churn
  /// replacements included) draws a distinct high-bit base, and the
  /// prefill owns base 0, so every value ever pushed is unique — the
  /// linearizability oracle's token matching depends on it, and nothing
  /// else reads the payloads (the FIFO/LIFO property tests stamp their
  /// own).
  std::atomic<std::uint64_t> stamp_src{1};

  // --- prefill (quiescent) ---------------------------------------------
  {
    check::thread_log* plog =
        cfg.history != nullptr ? &cfg.history->attach(check::kMainTid)
                               : nullptr;
    for (std::size_t i = 0; i < cfg.prefill; ++i) {
      guard_t g(dom);
      detail::record_op(plog, check::op_kind::push, [&] {
        q.push(g, i);
        return std::pair{true, std::uint64_t{i}};
      });
    }
    detail::quiesce_thread(dom);  // main thread idles while workers run
  }
  enqueued.fetch_add(cfg.prefill, std::memory_order_relaxed);

  detail::run_stats stats;
  detail::lab_state lab;
  workload_config plan_cfg = cfg;
  plan_cfg.threads = split.total();  // stalled extras ride above the split
  const lab::fault_plan plan = detail::effective_plan(plan_cfg);
  const unsigned total_threads = split.total() + cfg.stalled_threads;
  std::vector<lab::sample_point> timeline;

  for (unsigned rep = 0; rep < cfg.repeats; ++rep) {
    std::atomic<bool> start{false};
    std::atomic<bool> stop{false};
    detail::rep_counters counters;

    auto body = [&](unsigned tid, std::uint32_t gen) {
      const bool producing = tid < split.producers;
      check::thread_log* hlog =
          cfg.history != nullptr ? &cfg.history->attach(tid) : nullptr;
      std::uint64_t local_ops = 0;
      std::uint64_t local_enq = 0;
      std::uint64_t local_deq = 0;
      std::uint64_t local_peak = 0;
      lab::latency_histogram lhist;
      std::uint64_t stamp =
          stamp_src.fetch_add(1, std::memory_order_relaxed) << 40;
      auto do_push = [&](guard_t& g) {
        const std::uint64_t v = stamp++;
        detail::record_op(hlog, check::op_kind::push, [&] {
          q.push(g, v);
          return std::pair{true, v};
        });
        ++local_enq;
      };
      auto do_pop = [&](guard_t& g) {
        if (detail::record_op(hlog, check::op_kind::pop, [&] {
              std::uint64_t v = 0;
              const bool ok = q.try_pop(g, v);
              return std::pair{ok, ok ? v : 0};
            })) {
          ++local_deq;
        }
      };
      auto after_op = [&] {
        ++local_ops;
        if (lab.tele != nullptr) lab.tele->on_op(tid);
        if (local_ops % cfg.sample_every == 0) {
          counters.sample(dom.counters().unreclaimed(), local_peak);
        }
      };
      auto within_limit = [&] {
        return cfg.op_limit == 0 || local_ops < cfg.op_limit;
      };
      // As in the set workload: guarantee one op per worker even when
      // the deadline beats the scheduler (e.g. TSan on a loaded box),
      // but only in fault-free runs — stalled workers never count ops.
      auto keep_going = [&] {
        return ((local_ops == 0 && lab.dir == nullptr) ||
                !stop.load(std::memory_order_relaxed)) &&
               within_limit();
      };
      if (lab.tele != nullptr) lab.tele->thread_enter();
      while (!start.load(std::memory_order_acquire)) {
      }
      while (keep_going()) {
        if (lab.dir != nullptr) {
          if (lab.dir->exited(tid, gen)) break;
          if (lab.dir->stalled(tid)) {
            // Containers have no read-only touch; holding the guard
            // alone pins whatever the scheme's reservation pins.
            guard_t g(dom);
            obs::emit(obs::event::stall_begin, tid);
            lab.dir->wait_stall_end(tid);
            obs::emit(obs::event::stall_end, tid);
            continue;
          }
          if (const std::uint32_t us = lab.dir->slow_delay_us(tid)) {
            std::this_thread::sleep_for(std::chrono::microseconds(us));
          }
          for (std::uint64_t n = lab.dir->claim_burst(128);
               n != 0 && !stop.load(std::memory_order_relaxed) &&
               within_limit();
               --n) {
            // Retire-generating pair with an exact ledger: the push is
            // counted, and the pop (usually of the just-pushed value)
            // retires one node.
            guard_t g(dom);
            do_push(g);
            do_pop(g);
            after_op();
          }
        }
        const bool timed = local_ops % cfg.lat_sample == 0;
        const auto t_op = timed ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{};
        {
          guard_t g(dom);
          if (producing) {
            do_push(g);
          } else {
            do_pop(g);
          }
        }
        if (timed) lhist.record(detail::ns_since(t_op));
        after_op();
      }
      counters.ops.fetch_add(local_ops, std::memory_order_relaxed);
      enqueued.fetch_add(local_enq, std::memory_order_relaxed);
      dequeued.fetch_add(local_deq, std::memory_order_relaxed);
      detail::atomic_max(stats.peak, local_peak);
      detail::flush_thread(dom);
      detail::quiesce_thread(dom);
      lab.merge_hist(lhist);
      if (lab.tele != nullptr) lab.tele->thread_exit();
    };

    std::vector<std::thread> replacements;
    std::mutex spawn_mu;
    std::unique_ptr<lab::fault_director> dir_holder;
    if (!plan.empty()) {
      dir_holder = std::make_unique<lab::fault_director>(
          plan, total_threads, [&](unsigned tid) {
            const std::uint32_t gen = lab.dir->generation(tid);
            std::lock_guard<std::mutex> lk(spawn_mu);
            replacements.emplace_back([&body, tid, gen] {
              char name[16];
              std::snprintf(name, sizeof name, "churn-%u", tid);
              obs::name_thread(name);
              body(tid, gen);
            });
          });
    }
    lab.dir = dir_holder.get();
    std::unique_ptr<lab::telemetry_collector> tele_holder;
    if (cfg.sample_ms != 0) {
      tele_holder = std::make_unique<lab::telemetry_collector>(
          total_threads, cfg.sample_ms, &dom.counters());
    }
    lab.tele = tele_holder.get();

    std::vector<std::thread> ts;
    ts.reserve(total_threads);
    for (unsigned t = 0; t < total_threads; ++t) {
      ts.emplace_back(body, t, 0);
    }

    const auto t0 = std::chrono::steady_clock::now();
    start.store(true, std::memory_order_release);
    if (lab.dir != nullptr) lab.dir->start();
    if (lab.tele != nullptr) lab.tele->start();
    detail::wait_rep_end(t0, cfg, total_threads, counters);
    stop.store(true, std::memory_order_release);
    if (lab.dir != nullptr) lab.dir->stop();
    // Telemetry stops BEFORE the joins: teardown samples would record
    // the unreclaimed count after per-thread flushes — a drop the
    // recovery check must not credit to the scheme (threads exiting is
    // not recovery).
    if (lab.tele != nullptr) {
      lab.tele->stop();
      timeline = lab.tele->take_points();
    }
    for (auto& th : ts) th.join();
    for (auto& th : replacements) th.join();
    const auto t1 = std::chrono::steady_clock::now();

    const double secs =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
            .count();
    stats.finish_rep(counters, secs, dom.counters().unreclaimed());
    lab.dir = nullptr;
    lab.tele = nullptr;
  }

  // --- drain (quiescent) -----------------------------------------------
  // Pop the residual so the ledger closes and every node the structure
  // still owns besides the ms_queue dummy flows through retire. Recorded
  // like any other ops (the trailing empty pop too): the drain is part of
  // the container's checkable life, and it is what lets the oracle call
  // the history complete.
  std::uint64_t drained = 0;
  {
    check::thread_log* dlog =
        cfg.history != nullptr ? &cfg.history->attach(check::kMainTid)
                               : nullptr;
    for (;;) {
      guard_t g(dom);
      if (!detail::record_op(dlog, check::op_kind::pop, [&] {
            std::uint64_t v = 0;
            const bool ok = q.try_pop(g, v);
            return std::pair{ok, ok ? v : 0};
          })) {
        break;
      }
      ++drained;
    }
  }
  detail::flush_thread(dom);
  detail::quiesce_thread(dom);  // the drain loop above took guards

  workload_result r;
  stats.fill(r, cfg.repeats);
  lab.fill(r);
  r.enqueued = enqueued.load(std::memory_order_relaxed);
  r.dequeued = dequeued.load(std::memory_order_relaxed);
  r.drained = drained;
  r.timeline = std::move(timeline);
  return r;
}

}  // namespace hyaline::harness
