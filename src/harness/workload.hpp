// Workload driver: a reimplementation of the measurement loop of the test
// framework the paper uses (Wen et al. [35]).
//
// Per data point (paper §6): prefill the structure with `prefill` elements,
// run `threads` worker threads for `duration_ms`, each performing randomly
// drawn operations on keys uniform in [0, key_range); report throughput in
// Mops/sec and the mean number of retired-but-unreclaimed objects sampled
// once every `sample_every` operations (Figures 9/12/14/16). Repeat
// `repeats` times and average.
//
// Extras used by specific figures:
//   - stalled_threads: extra threads that enter, touch one node, and then
//     block until the run ends (the Figure 10a robustness experiment);
//   - use_trim: hold one guard per thread and trim() after every operation
//     instead of leave+enter (the Figure 10b trimming experiment).
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "smr/stats.hpp"

namespace hyaline::harness {

struct workload_config {
  unsigned threads = 4;
  unsigned stalled_threads = 0;
  unsigned duration_ms = 500;
  unsigned repeats = 1;
  std::uint64_t key_range = 100000;
  std::size_t prefill = 50000;
  /// Percentages; must sum to 100. Paper: write = {50,50,0}, read = {5,5,90}
  /// ("90% get, 10% put", put split evenly between insert and remove to
  /// keep the size in equilibrium).
  unsigned insert_pct = 50;
  unsigned remove_pct = 50;
  unsigned get_pct = 0;
  bool use_trim = false;
  unsigned sample_every = 128;
  std::uint64_t seed = 0x5eed;
};

struct workload_result {
  double mops = 0;              ///< throughput, million operations / second
  double unreclaimed_avg = 0;   ///< mean retired-not-yet-freed per sample
  std::uint64_t total_ops = 0;  ///< operations completed across all threads
  /// Final domain counters, captured after structure teardown and a
  /// quiescent drain (filled in by the registry runners; retired != freed
  /// means the scheme leaked).
  std::uint64_t retired = 0;
  std::uint64_t freed = 0;
};

/// True iff the op-mix percentages cover exactly the whole dice range.
/// A mix that does not sum to 100 silently skews the distribution (the
/// remainder falls through to get), so drivers reject it up front. Summed
/// in 64 bits so overflowing values cannot wrap back to 100.
constexpr bool valid_mix(const workload_config& cfg) {
  return std::uint64_t{cfg.insert_pct} + cfg.remove_pct + cfg.get_pct ==
         100;
}

namespace detail {

template <class D>
concept has_flush = requires(D d) { d.flush(); };

/// Finalize the calling thread's partial retirement batch, for schemes
/// that batch (the Hyaline family). No-op elsewhere.
template <class D>
void flush_thread(D& dom) {
  if constexpr (has_flush<D>) {
    dom.flush();
  } else {
    (void)dom;
  }
}

template <class G>
concept has_trim = requires(G g) { g.trim(); };

}  // namespace detail

/// Run one configuration against structure `s` over domain `dom`.
/// DS must provide insert/remove/contains(guard&, key[, value]).
template <class DS, class D>
workload_result run_workload(D& dom, DS& s, const workload_config& cfg) {
  using guard_t = typename D::guard;
  assert(valid_mix(cfg) && "op-mix percentages must sum to 100");

  // --- prefill (quiescent) ---------------------------------------------
  {
    xoshiro256 rng(cfg.seed ^ 0x9e3779b97f4a7c15ULL);
    std::size_t live = 0;
    while (live < cfg.prefill) {
      guard_t g(dom);
      if (s.insert(g, rng.below(cfg.key_range), 1)) ++live;
    }
  }

  double mops_sum = 0;
  double unrecl_sum = 0;
  std::uint64_t ops_total = 0;

  for (unsigned rep = 0; rep < cfg.repeats; ++rep) {
    std::atomic<bool> start{false};
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> ops{0};
    std::atomic<std::uint64_t> sample_sum{0};
    std::atomic<std::uint64_t> sample_cnt{0};

    auto worker = [&](unsigned tid) {
      xoshiro256 rng(cfg.seed + tid * 1000003 + rep * 7919);
      std::uint64_t local_ops = 0;
      while (!start.load(std::memory_order_acquire)) {
      }
      if (!cfg.use_trim) {
        while (!stop.load(std::memory_order_relaxed)) {
          const std::uint64_t key = rng.below(cfg.key_range);
          const std::uint64_t dice = rng.below(100);
          {
            guard_t g(dom);
            if (dice < cfg.insert_pct) {
              s.insert(g, key, key);
            } else if (dice < cfg.insert_pct + cfg.remove_pct) {
              s.remove(g, key);
            } else {
              s.contains(g, key);
            }
          }
          ++local_ops;
          if (local_ops % cfg.sample_every == 0) {
            sample_sum.fetch_add(dom.counters().unreclaimed(),
                                 std::memory_order_relaxed);
            sample_cnt.fetch_add(1, std::memory_order_relaxed);
          }
        }
      } else {
        // Trimming mode (§3.3): one guard spans many operations; trim()
        // after each op reclaims without touching Head. Re-enter
        // periodically to bound the retirement sublists.
        constexpr std::uint64_t regrip_every = 1024;
        while (!stop.load(std::memory_order_relaxed)) {
          guard_t g(dom);
          for (std::uint64_t i = 0;
               i < regrip_every && !stop.load(std::memory_order_relaxed);
               ++i) {
            const std::uint64_t key = rng.below(cfg.key_range);
            const std::uint64_t dice = rng.below(100);
            if (dice < cfg.insert_pct) {
              s.insert(g, key, key);
            } else if (dice < cfg.insert_pct + cfg.remove_pct) {
              s.remove(g, key);
            } else {
              s.contains(g, key);
            }
            if constexpr (detail::has_trim<guard_t>) g.trim();
            ++local_ops;
            if (local_ops % cfg.sample_every == 0) {
              sample_sum.fetch_add(dom.counters().unreclaimed(),
                                   std::memory_order_relaxed);
              sample_cnt.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      }
      ops.fetch_add(local_ops, std::memory_order_relaxed);
      detail::flush_thread(dom);
    };

    // A stalled thread enters, dereferences one node, then blocks until
    // the run ends — pinning whatever its scheme's reservation pins.
    auto stalled = [&](unsigned tid) {
      xoshiro256 rng(cfg.seed + tid * 31337);
      while (!start.load(std::memory_order_acquire)) {
      }
      {
        guard_t g(dom);
        s.contains(g, rng.below(cfg.key_range));
        while (!stop.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      detail::flush_thread(dom);
    };

    std::vector<std::thread> ts;
    ts.reserve(cfg.threads + cfg.stalled_threads);
    for (unsigned t = 0; t < cfg.threads; ++t) ts.emplace_back(worker, t);
    for (unsigned t = 0; t < cfg.stalled_threads; ++t) {
      ts.emplace_back(stalled, cfg.threads + t);
    }

    const auto t0 = std::chrono::steady_clock::now();
    start.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(cfg.duration_ms));
    stop.store(true, std::memory_order_release);
    for (auto& th : ts) th.join();
    const auto t1 = std::chrono::steady_clock::now();

    const double secs =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
            .count();
    const std::uint64_t n = ops.load(std::memory_order_relaxed);
    ops_total += n;
    mops_sum += static_cast<double>(n) / secs / 1e6;
    const std::uint64_t cnt = sample_cnt.load(std::memory_order_relaxed);
    unrecl_sum += cnt == 0
                      ? static_cast<double>(dom.counters().unreclaimed())
                      : static_cast<double>(
                            sample_sum.load(std::memory_order_relaxed)) /
                            static_cast<double>(cnt);
  }

  workload_result r;
  r.mops = mops_sum / cfg.repeats;
  r.unreclaimed_avg = unrecl_sum / cfg.repeats;
  r.total_ops = ops_total;
  return r;
}

}  // namespace hyaline::harness
