// Workload driver: a reimplementation of the measurement loop of the test
// framework the paper uses (Wen et al. [35]).
//
// Per data point (paper §6): prefill the structure with `prefill` elements,
// run `threads` worker threads for `duration_ms`, each performing randomly
// drawn operations on keys uniform in [0, key_range); report throughput in
// Mops/sec and the mean number of retired-but-unreclaimed objects sampled
// once every `sample_every` operations (Figures 9/12/14/16). Repeat
// `repeats` times and average.
//
// Extras used by specific figures:
//   - stalled_threads: extra threads that enter, touch one node, and then
//     block until the run ends (the Figure 10a robustness experiment);
//   - use_trim: hold one guard per thread and trim() after every operation
//     instead of leave+enter (the Figure 10b trimming experiment).
//
// Container workloads (fig_queue) run through run_container_workload
// instead: an asymmetric producer/consumer split over a FIFO queue or
// stack, where every successful operation allocates or retires a node.
// Accounting is exact — pushed items (prefill included), popped items, and
// the residual drained at the end must balance (the conservation
// invariant checked by the registry runners and tests).
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "smr/stats.hpp"

namespace hyaline::harness {

struct workload_config {
  unsigned threads = 4;
  unsigned stalled_threads = 0;
  unsigned duration_ms = 500;
  unsigned repeats = 1;
  std::uint64_t key_range = 100000;
  std::size_t prefill = 50000;
  /// Percentages; must sum to 100. Paper: write = {50,50,0}, read = {5,5,90}
  /// ("90% get, 10% put", put split evenly between insert and remove to
  /// keep the size in equilibrium).
  unsigned insert_pct = 50;
  unsigned remove_pct = 50;
  unsigned get_pct = 0;
  bool use_trim = false;
  unsigned sample_every = 128;
  std::uint64_t seed = 0x5eed;
  /// Container workloads only: the producer/consumer thread split. Both
  /// zero means "derive from `threads`" (see container_split). Set drivers
  /// ignore these, exactly as container drivers ignore key_range and the
  /// op mix — the registry's structure-kind dimension keeps the two option
  /// families apart.
  unsigned producers = 0;
  unsigned consumers = 0;
};

struct workload_result {
  double mops = 0;              ///< throughput, million operations / second
  double unreclaimed_avg = 0;   ///< mean retired-not-yet-freed per sample
  /// Worst retired-not-yet-freed value over all samples of all repeats —
  /// the number the paper's robustness bound (§5) actually caps, which an
  /// average can launder (a brief spike amortized over a long run looks
  /// harmless).
  std::uint64_t unreclaimed_peak = 0;
  std::uint64_t total_ops = 0;  ///< operations completed across all threads
  /// Final domain counters, captured after structure teardown and a
  /// quiescent drain (filled in by the registry runners; retired != freed
  /// means the scheme leaked).
  std::uint64_t retired = 0;
  std::uint64_t freed = 0;
  /// Container workloads: the conservation ledger. Items pushed (prefill
  /// included), items popped during the run, and items drained from the
  /// residual at the end; enqueued == dequeued + drained or the container
  /// lost or duplicated values. Zero for set workloads.
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t drained = 0;
};

/// True iff the op-mix percentages cover exactly the whole dice range.
/// A mix that does not sum to 100 silently skews the distribution (the
/// remainder falls through to get), so drivers reject it up front. Summed
/// in 64 bits so overflowing values cannot wrap back to 100.
constexpr bool valid_mix(const workload_config& cfg) {
  return std::uint64_t{cfg.insert_pct} + cfg.remove_pct + cfg.get_pct ==
         100;
}

namespace detail {

template <class D>
concept has_flush = requires(D d) { d.flush(); };

/// Finalize the calling thread's partial retirement batch, for schemes
/// that batch (the Hyaline family). No-op elsewhere.
template <class D>
void flush_thread(D& dom) {
  if constexpr (has_flush<D>) {
    dom.flush();
  } else {
    (void)dom;
  }
}

template <class G>
concept has_trim = requires(G g) { g.trim(); };

/// Relaxed monotone max — the peak counter is a statistic, not
/// synchronization (same stance as smr::stats).
inline void atomic_max(std::atomic<std::uint64_t>& m, std::uint64_t v) {
  std::uint64_t cur = m.load(std::memory_order_relaxed);
  while (cur < v &&
         !m.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Per-repetition shared counters every worker thread updates.
struct rep_counters {
  std::atomic<std::uint64_t> ops{0};
  std::atomic<std::uint64_t> sample_sum{0};
  std::atomic<std::uint64_t> sample_cnt{0};

  /// Record one unreclaimed-counter observation (worker-side); the
  /// worker's running peak stays thread-local until merged at exit.
  void sample(std::uint64_t unreclaimed, std::uint64_t& local_peak) {
    if (unreclaimed > local_peak) local_peak = unreclaimed;
    sample_sum.fetch_add(unreclaimed, std::memory_order_relaxed);
    sample_cnt.fetch_add(1, std::memory_order_relaxed);
  }
};

/// Cross-repetition accumulator shared by both workload drivers, so the
/// mops / unreclaimed_avg / unreclaimed_peak columns keep exactly one
/// meaning however the figure was produced.
struct run_stats {
  double mops_sum = 0;
  double unrecl_sum = 0;
  std::uint64_t ops_total = 0;
  std::atomic<std::uint64_t> peak{0};

  /// Fold one repetition in. `end_unreclaimed` backs the too-short-run
  /// fallback: a repetition that never reached a sampling point
  /// contributes one end-of-run observation to both statistics.
  void finish_rep(rep_counters& c, double secs,
                  std::uint64_t end_unreclaimed) {
    const std::uint64_t n = c.ops.load(std::memory_order_relaxed);
    ops_total += n;
    mops_sum += static_cast<double>(n) / secs / 1e6;
    const std::uint64_t cnt = c.sample_cnt.load(std::memory_order_relaxed);
    if (cnt == 0) {
      atomic_max(peak, end_unreclaimed);
      unrecl_sum += static_cast<double>(end_unreclaimed);
    } else {
      unrecl_sum += static_cast<double>(
                        c.sample_sum.load(std::memory_order_relaxed)) /
                    static_cast<double>(cnt);
    }
  }

  void fill(workload_result& r, unsigned repeats) const {
    r.mops = mops_sum / repeats;
    r.unreclaimed_avg = unrecl_sum / repeats;
    r.unreclaimed_peak = peak.load(std::memory_order_relaxed);
    r.total_ops = ops_total;
  }
};

}  // namespace detail

/// Resolved producer/consumer split for a container workload: explicit
/// counts win; otherwise `threads` is split evenly, producers taking the
/// odd one out (threads == 1 means a lone producer — pure enqueue is a
/// valid, maximally allocation-heavy workload; the drain still balances
/// the ledger).
struct thread_split {
  unsigned producers = 0;
  unsigned consumers = 0;
  unsigned total() const { return producers + consumers; }
};

constexpr thread_split container_split(const workload_config& cfg) {
  if (cfg.producers != 0 || cfg.consumers != 0) {
    return {cfg.producers, cfg.consumers};
  }
  const unsigned consumers = cfg.threads / 2;
  return {cfg.threads - consumers, consumers};
}

/// Run one configuration against structure `s` over domain `dom`.
/// DS must provide insert/remove/contains(guard&, key[, value]).
template <class DS, class D>
workload_result run_workload(D& dom, DS& s, const workload_config& cfg) {
  using guard_t = typename D::guard;
  assert(valid_mix(cfg) && "op-mix percentages must sum to 100");

  // --- prefill (quiescent) ---------------------------------------------
  {
    xoshiro256 rng(cfg.seed ^ 0x9e3779b97f4a7c15ULL);
    std::size_t live = 0;
    while (live < cfg.prefill) {
      guard_t g(dom);
      if (s.insert(g, rng.below(cfg.key_range), 1)) ++live;
    }
  }

  detail::run_stats stats;

  for (unsigned rep = 0; rep < cfg.repeats; ++rep) {
    std::atomic<bool> start{false};
    std::atomic<bool> stop{false};
    detail::rep_counters counters;

    auto worker = [&](unsigned tid) {
      xoshiro256 rng(cfg.seed + tid * 1000003 + rep * 7919);
      std::uint64_t local_ops = 0;
      std::uint64_t local_peak = 0;
      while (!start.load(std::memory_order_acquire)) {
      }
      if (!cfg.use_trim) {
        while (!stop.load(std::memory_order_relaxed)) {
          const std::uint64_t key = rng.below(cfg.key_range);
          const std::uint64_t dice = rng.below(100);
          {
            guard_t g(dom);
            if (dice < cfg.insert_pct) {
              s.insert(g, key, key);
            } else if (dice < cfg.insert_pct + cfg.remove_pct) {
              s.remove(g, key);
            } else {
              s.contains(g, key);
            }
          }
          ++local_ops;
          if (local_ops % cfg.sample_every == 0) {
            counters.sample(dom.counters().unreclaimed(), local_peak);
          }
        }
      } else {
        // Trimming mode (§3.3): one guard spans many operations; trim()
        // after each op reclaims without touching Head. Re-enter
        // periodically to bound the retirement sublists.
        constexpr std::uint64_t regrip_every = 1024;
        while (!stop.load(std::memory_order_relaxed)) {
          guard_t g(dom);
          for (std::uint64_t i = 0;
               i < regrip_every && !stop.load(std::memory_order_relaxed);
               ++i) {
            const std::uint64_t key = rng.below(cfg.key_range);
            const std::uint64_t dice = rng.below(100);
            if (dice < cfg.insert_pct) {
              s.insert(g, key, key);
            } else if (dice < cfg.insert_pct + cfg.remove_pct) {
              s.remove(g, key);
            } else {
              s.contains(g, key);
            }
            if constexpr (detail::has_trim<guard_t>) g.trim();
            ++local_ops;
            if (local_ops % cfg.sample_every == 0) {
              counters.sample(dom.counters().unreclaimed(), local_peak);
            }
          }
        }
      }
      counters.ops.fetch_add(local_ops, std::memory_order_relaxed);
      detail::atomic_max(stats.peak, local_peak);
      detail::flush_thread(dom);
    };

    // A stalled thread enters, dereferences one node, then blocks until
    // the run ends — pinning whatever its scheme's reservation pins.
    auto stalled = [&](unsigned tid) {
      xoshiro256 rng(cfg.seed + tid * 31337);
      while (!start.load(std::memory_order_acquire)) {
      }
      {
        guard_t g(dom);
        s.contains(g, rng.below(cfg.key_range));
        while (!stop.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      detail::flush_thread(dom);
    };

    std::vector<std::thread> ts;
    ts.reserve(cfg.threads + cfg.stalled_threads);
    for (unsigned t = 0; t < cfg.threads; ++t) ts.emplace_back(worker, t);
    for (unsigned t = 0; t < cfg.stalled_threads; ++t) {
      ts.emplace_back(stalled, cfg.threads + t);
    }

    const auto t0 = std::chrono::steady_clock::now();
    start.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(cfg.duration_ms));
    stop.store(true, std::memory_order_release);
    for (auto& th : ts) th.join();
    const auto t1 = std::chrono::steady_clock::now();

    const double secs =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
            .count();
    stats.finish_rep(counters, secs, dom.counters().unreclaimed());
  }

  workload_result r;
  stats.fill(r, cfg.repeats);
  return r;
}

/// Run one producer/consumer configuration against container `q` over
/// domain `dom`. Q must provide push(guard&, value) and
/// try_pop(guard&, value&) (ms_queue, treiber_stack). Producers push
/// monotonically stamped values as fast as they can; consumers pop (an
/// empty pop still counts as an operation — spinning on an empty queue is
/// real work the throughput number must not hide). After the timed
/// repeats, the residual content is drained quiescently so the
/// conservation ledger (enqueued == dequeued + drained) can be checked by
/// the caller.
template <class Q, class D>
workload_result run_container_workload(D& dom, Q& q,
                                       const workload_config& cfg) {
  using guard_t = typename D::guard;
  const thread_split split = container_split(cfg);
  assert(split.total() > 0 && "container workload needs at least 1 thread");

  std::atomic<std::uint64_t> enqueued{0};
  std::atomic<std::uint64_t> dequeued{0};

  // --- prefill (quiescent) ---------------------------------------------
  for (std::size_t i = 0; i < cfg.prefill; ++i) {
    guard_t g(dom);
    q.push(g, i);
  }
  enqueued.fetch_add(cfg.prefill, std::memory_order_relaxed);

  detail::run_stats stats;

  for (unsigned rep = 0; rep < cfg.repeats; ++rep) {
    std::atomic<bool> start{false};
    std::atomic<bool> stop{false};
    detail::rep_counters counters;

    auto body = [&](unsigned tid, bool producing) {
      std::uint64_t local_ops = 0;
      std::uint64_t local_done = 0;  // successful pushes or pops
      std::uint64_t local_peak = 0;
      // Write-only diagnostic payload (per-thread monotone counter);
      // nothing downstream decodes it — the FIFO/LIFO property tests
      // stamp their own payloads.
      std::uint64_t stamp = std::uint64_t{tid} << 40;
      while (!start.load(std::memory_order_acquire)) {
      }
      while (!stop.load(std::memory_order_relaxed)) {
        {
          guard_t g(dom);
          if (producing) {
            q.push(g, stamp++);
            ++local_done;
          } else {
            std::uint64_t v;
            if (q.try_pop(g, v)) ++local_done;
          }
        }
        ++local_ops;
        if (local_ops % cfg.sample_every == 0) {
          counters.sample(dom.counters().unreclaimed(), local_peak);
        }
      }
      counters.ops.fetch_add(local_ops, std::memory_order_relaxed);
      (producing ? enqueued : dequeued)
          .fetch_add(local_done, std::memory_order_relaxed);
      detail::atomic_max(stats.peak, local_peak);
      detail::flush_thread(dom);
    };

    std::vector<std::thread> ts;
    ts.reserve(split.total());
    for (unsigned t = 0; t < split.producers; ++t) {
      ts.emplace_back(body, t, true);
    }
    for (unsigned t = 0; t < split.consumers; ++t) {
      ts.emplace_back(body, split.producers + t, false);
    }

    const auto t0 = std::chrono::steady_clock::now();
    start.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(cfg.duration_ms));
    stop.store(true, std::memory_order_release);
    for (auto& th : ts) th.join();
    const auto t1 = std::chrono::steady_clock::now();

    const double secs =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
            .count();
    stats.finish_rep(counters, secs, dom.counters().unreclaimed());
  }

  // --- drain (quiescent) -----------------------------------------------
  // Pop the residual so the ledger closes and every node the structure
  // still owns besides the ms_queue dummy flows through retire.
  std::uint64_t drained = 0;
  for (;;) {
    guard_t g(dom);
    std::uint64_t v;
    if (!q.try_pop(g, v)) break;
    ++drained;
  }
  detail::flush_thread(dom);

  workload_result r;
  stats.fill(r, cfg.repeats);
  r.enqueued = enqueued.load(std::memory_order_relaxed);
  r.dequeued = dequeued.load(std::memory_order_relaxed);
  r.drained = drained;
  return r;
}

}  // namespace hyaline::harness
