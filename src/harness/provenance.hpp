// Build/machine provenance stamped into every machine-readable output.
//
// A trajectory file is only comparable to another if both record where
// they came from: the exact source revision, the compiler that built the
// binary, and the machine it ran on. The comparator (bench/bench_diff)
// prints these side by side so a cross-machine or cross-compiler diff is
// visibly apples-to-oranges before anyone trusts its percentages.
#pragma once

#include <string>

namespace hyaline::harness {

/// The provenance fields, resolved once per process.
struct provenance {
  std::string git_sha;     ///< HYALINE_GIT_SHA compile definition ("unknown"
                           ///< when built outside a git checkout)
  std::string compiler;    ///< compiler id + __VERSION__
  std::string cpu_model;   ///< /proc/cpuinfo "model name" ("unknown" off-Linux)
  unsigned hw_threads = 0; ///< std::thread::hardware_concurrency (min 1)
};

/// Resolve the current build/machine provenance.
const provenance& build_provenance();

/// The provenance as inner JSON-object text:
///   "provenance": {"git_sha": ..., "compiler": ..., "cpu_model": ...,
///                  "hw_threads": N}
/// (key included, no trailing comma) — ready to splice into a config
/// block. String values are escaped.
std::string provenance_json();

}  // namespace hyaline::harness
