// A minimal JSON value + recursive-descent reader, shared by every
// binary that consumes this repo's own JSON output (the trajectory gate
// in bench_diff, the trace validator in trace_check). Covers exactly
// what our writers emit: objects, arrays, strings (with the escapes our
// writers produce), numbers, booleans, null. Duplicate keys keep the
// last value, as in every mainstream parser. Header-only so the tools
// stay single-translation-unit.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hyaline::harness::json {

struct jvalue;
using jobject = std::map<std::string, jvalue>;
using jarray = std::vector<jvalue>;

struct jvalue {
  enum class kind { null, boolean, number, string, array, object };
  kind k = kind::null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::shared_ptr<jarray> arr;
  std::shared_ptr<jobject> obj;

  bool is_num() const { return k == kind::number; }
  bool is_str() const { return k == kind::string; }
  bool is_obj() const { return k == kind::object; }
  bool is_arr() const { return k == kind::array; }
};

class parser {
 public:
  parser(const char* s, std::size_t n) : p_(s), end_(s + n) {}

  bool parse(jvalue& out, std::string& err) {
    skip_ws();
    if (!value(out, err)) return false;
    skip_ws();
    if (p_ != end_) {
      err = "trailing content after the top-level value";
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                          *p_ == '\r')) {
      ++p_;
    }
  }

  bool fail(std::string& err, const std::string& what) {
    err = what + " at offset " + std::to_string(off());
    return false;
  }

  std::size_t off() const { return static_cast<std::size_t>(p_ - start_); }

  bool value(jvalue& out, std::string& err) {
    if (p_ == end_) return fail(err, "unexpected end of input");
    switch (*p_) {
      case '{': return object(out, err);
      case '[': return array(out, err);
      case '"': out.k = jvalue::kind::string; return string(out.str, err);
      case 't':
        if (!literal("true", err)) return false;
        out.k = jvalue::kind::boolean;
        out.b = true;
        return true;
      case 'f':
        if (!literal("false", err)) return false;
        out.k = jvalue::kind::boolean;
        out.b = false;
        return true;
      case 'n':
        if (!literal("null", err)) return false;
        out.k = jvalue::kind::null;
        return true;
      default: return number(out, err);
    }
  }

  bool literal(const char* lit, std::string& err) {
    for (const char* l = lit; *l != '\0'; ++l, ++p_) {
      if (p_ == end_ || *p_ != *l) return fail(err, "bad literal");
    }
    return true;
  }

  bool number(jvalue& out, std::string& err) {
    char* numend = nullptr;
    const double v = std::strtod(p_, &numend);
    if (numend == p_) return fail(err, "expected a value");
    // strtod reads past end_ only if the buffer lacks a terminator; the
    // loader always passes a NUL-terminated string.
    p_ = numend;
    out.k = jvalue::kind::number;
    out.num = v;
    return true;
  }

  bool string(std::string& out, std::string& err) {
    ++p_;  // opening quote
    out.clear();
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (p_ == end_) return fail(err, "dangling escape");
      switch (*p_++) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          // Our writers never emit \u escapes; decode the BMP-ASCII
          // subset and reject the rest rather than corrupt silently.
          if (end_ - p_ < 4) return fail(err, "bad \\u escape");
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p_++;
            v <<= 4;
            if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
            else return fail(err, "bad \\u escape");
          }
          if (v > 0x7f) return fail(err, "non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(v));
          break;
        }
        default: return fail(err, "unknown escape");
      }
    }
    if (p_ == end_) return fail(err, "unterminated string");
    ++p_;  // closing quote
    return true;
  }

  bool array(jvalue& out, std::string& err) {
    ++p_;  // '['
    out.k = jvalue::kind::array;
    out.arr = std::make_shared<jarray>();
    skip_ws();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    while (true) {
      jvalue v;
      skip_ws();
      if (!value(v, err)) return false;
      out.arr->push_back(std::move(v));
      skip_ws();
      if (p_ == end_) return fail(err, "unterminated array");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return true;
      }
      return fail(err, "expected ',' or ']'");
    }
  }

  bool object(jvalue& out, std::string& err) {
    ++p_;  // '{'
    out.k = jvalue::kind::object;
    out.obj = std::make_shared<jobject>();
    skip_ws();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    while (true) {
      skip_ws();
      if (p_ == end_ || *p_ != '"') return fail(err, "expected a key");
      std::string key;
      if (!string(key, err)) return false;
      skip_ws();
      if (p_ == end_ || *p_ != ':') return fail(err, "expected ':'");
      ++p_;
      skip_ws();
      jvalue v;
      if (!value(v, err)) return false;
      (*out.obj)[std::move(key)] = std::move(v);
      skip_ws();
      if (p_ == end_) return fail(err, "unterminated object");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return true;
      }
      return fail(err, "expected ',' or '}'");
    }
  }

  const char* p_;
  const char* end_;
  const char* start_ = p_;
};

inline const jvalue* get(const jvalue& obj, const char* key) {
  if (!obj.is_obj()) return nullptr;
  auto it = obj.obj->find(key);
  return it == obj.obj->end() ? nullptr : &it->second;
}

inline bool want_num(const jvalue& obj, const char* key, double& out,
                     std::string& err) {
  const jvalue* v = get(obj, key);
  if (v == nullptr || !v->is_num()) {
    err = std::string("missing or non-numeric field '") + key + "'";
    return false;
  }
  out = v->num;
  return true;
}

inline bool want_str(const jvalue& obj, const char* key, std::string& out,
                     std::string& err) {
  const jvalue* v = get(obj, key);
  if (v == nullptr || !v->is_str()) {
    err = std::string("missing or non-string field '") + key + "'";
    return false;
  }
  out = v->str;
  return true;
}

/// Slurp `path` and parse it. False with *err* set on I/O or parse error
/// (parse errors are prefixed with the path).
inline bool load_file(const std::string& path, jvalue& root,
                      std::string& err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    err = "cannot open '" + path + "'";
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    err = "read error on '" + path + "'";
    return false;
  }
  parser ps(text.c_str(), text.size());
  if (!ps.parse(root, err)) {
    err = path + ": " + err;
    return false;
  }
  return true;
}

}  // namespace hyaline::harness::json
