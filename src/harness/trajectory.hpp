// Trajectory files: the canonical perf-tracking interchange format.
//
// bench/sweep writes one JSON document per run (schema below); the
// comparator (bench/bench_diff) loads two of them and diffs matched
// points. This header carries the in-memory form and a loader built on a
// deliberately small recursive-descent JSON reader — enough for the
// files this repo writes, with strict-enough errors that a truncated or
// hand-mangled file is rejected instead of half-parsed.
//
// Schema (version 1):
//   {
//     "bench": "sweep", "version": 1, "seed": <n>,
//     "provenance": {"git_sha": "...", "compiler": "...",
//                    "cpu_model": "...", "hw_threads": <n>},
//     "config": {"fastpath": "on"|"off", "shards": <n>,
//                "duration_ms": <n>, "repeats": <n>, "threads": <n>},
//     "cells": [
//       {"cell": "<lineup cell name>", "structure": "<registry name>",
//        "scheme": "<registry name>", "threads": <n>, "mops": <x>,
//        "unreclaimed_peak": <x>, "external": <bool>}, ...
//     ]
//   }
// `external` marks honesty-baseline rows (the coarse-mutex cells): they
// are reported but never participate in SMR regression comparisons.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hyaline::harness {

/// One measured point of a sweep run.
struct sweep_point {
  std::string cell;       ///< lineup cell name (e.g. "set-write")
  std::string structure;  ///< registry structure the cell drove
  std::string scheme;     ///< registry scheme name
  unsigned threads = 0;
  double mops = 0.0;
  double unreclaimed_peak = 0.0;
  bool external = false;  ///< honesty baseline, excluded from comparisons
};

/// A parsed trajectory file.
struct sweep_file {
  std::uint64_t seed = 0;
  int version = 0;
  std::string git_sha;
  std::string compiler;
  std::string cpu_model;
  std::string fastpath;  ///< "on" / "off" (empty if absent)
  unsigned shards = 0;
  std::vector<sweep_point> points;
};

/// Load `path`. On failure returns false and sets `err` to a one-line
/// diagnosis (file missing, JSON malformed, schema field missing/typed
/// wrong). Unknown extra fields are ignored, so the schema can grow.
bool load_sweep(const std::string& path, sweep_file& out, std::string& err);

}  // namespace hyaline::harness
