// Minimal command-line parsing shared by the benchmark binaries.
//
// Supported flags (all optional; each bench supplies paper-shaped
// defaults scaled to finish quickly on a laptop/CI box):
//   --threads 1,2,4,8    thread counts to sweep
//   --duration <ms>      per-data-point run time
//   --repeats <n>        runs averaged per point (paper uses 5)
//   --prefill <n>        initial element count (paper: 50000)
//   --range <n>          key range (paper: 100000)
//   --stalled 0,1,...    stalled-thread counts (fig10a)
//   --schemes a,b        restrict to named schemes (validated against the
//                        runtime scheme registry by the figure drivers)
//   --mix i,r,g          op-mix percentages (insert,remove,get); rejected
//                        unless they sum to exactly 100
//   --json <path>        also write the run as machine-readable JSON
//                        (per-scheme throughput + unreclaimed series)
//   --full               paper-scale settings (duration 10s, repeats 5)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hyaline::harness {

struct cli_options {
  std::vector<unsigned> threads;
  std::vector<unsigned> stalled;
  unsigned duration_ms = 300;
  unsigned repeats = 1;
  std::uint64_t key_range = 100000;
  std::size_t prefill = 50000;
  std::vector<std::string> schemes;  // empty = all
  /// Op-mix override {insert,remove,get}; empty = the figure's default.
  /// parse_cli guarantees: empty, or exactly 3 values summing to 100.
  std::vector<unsigned> mix;
  /// Path for the machine-readable JSON trajectory file (empty = none).
  std::string json;
  bool full = false;

  /// True if `name` should run under the --schemes filter.
  bool scheme_enabled(const std::string& name) const;
};

/// Parse argv; exits with a usage message on malformed input. `defaults`
/// seeds the sweep lists benches want when flags are absent.
cli_options parse_cli(int argc, char** argv, cli_options defaults);

/// Print the standard CSV header used by all figure benches.
void print_csv_header(const char* figure);

/// Emit one CSV data row.
void print_csv_row(const char* figure, const char* structure,
                   const char* scheme, unsigned threads, unsigned stalled,
                   double mops, double unreclaimed);

}  // namespace hyaline::harness
