// Minimal command-line parsing shared by the benchmark binaries.
//
// Supported flags (all optional; each bench supplies paper-shaped
// defaults scaled to finish quickly on a laptop/CI box):
//   --threads 1,2,4,8    thread counts to sweep
//   --duration <ms>      per-data-point run time
//   --repeats <n>        runs averaged per point (paper uses 5)
//   --prefill <n>        initial element count (paper: 50000)
//   --range <n>          key range (paper: 100000)
//   --stalled 0,1,...    stalled-thread counts (fig10a)
//   --schemes a,b        restrict to named schemes (validated against the
//                        runtime scheme registry by the figure drivers)
//   --mix i,r,g          op-mix percentages (insert,remove,get); rejected
//                        unless they sum to exactly 100 (set figures only)
//   --producers a,b,...  producer-thread counts  (container figures only;
//   --consumers a,b,...  consumer-thread counts   zipped pairwise into
//                        (producers, consumers) sweep points)
//   --shards <n|auto>    retired-node shard count for schemes that support
//                        sharded retire domains (EBR, IBR, HP, HE, Leaky);
//                        0 = classic per-thread lists, `auto` picks a
//                        count from the machine topology
//   --seed <n>           base PRNG seed threaded through every workload
//                        generator (prefill, workers, stall draws); echoed
//                        in the CSV header comment and the --json config
//                        block so any run can be reproduced exactly
//   --faults <spec>      timeline figures only: fault-injection schedule
//                        (grammar in lab/fault_plan.hpp)
//   --sample-ms <n>      timeline figures only: telemetry cadence
//   --structure <name>   timeline figures only: structure to drive
//   --lat-sample <n>     latency-sampling period: one in n operations is
//                        timed (default 32; must be a power of two so the
//                        modulo stays a mask); echoed in the CSV header
//                        comment and the --json config block
//   --trace <path>       record SMR-internals events (guard enter/exit,
//                        retire, scan, steal, finalize, free, era advance,
//                        stall windows) into per-thread ring buffers and
//                        export them as Chrome trace-event JSON on exit
//                        (load in Perfetto / chrome://tracing). Bounded
//                        memory: oldest records are overwritten, drops are
//                        counted in the trace metadata
//   --metrics <path>     service scenario only: write a Prometheus-style
//                        text snapshot of the domain counters and the
//                        retire->free lag histogram at end of run
//   --json <path>        also write the run as machine-readable JSON
//                        (per-scheme throughput + unreclaimed + latency
//                        series plus the resolved workload config as
//                        metadata; timeline figures add the time series)
//   --mutate <mode>      check binary only: run an injected-bug self-test
//                        (drop-validate | skip-protect) instead of the
//                        matrix; the checker is expected to catch it
//   --counterexample <p> check binary only: on a violation, also write
//                        the counterexample history to this file (CI
//                        uploads it as a workflow artifact)
//   --svc-shards <n>     service scenario only: cache shard count (each
//                        shard owns its own SMR domain)
//   --tenants <n>        service scenario only: swarm size
//   --rate <ops/s>       service scenario only: total offered load,
//                        split over the tenants (0 = closed loop)
//   --skew <theta>       service scenario only: Zipfian skew in [0, 1)
//   --arrival <kind>     service scenario only: fixed | poisson
//   --tenant-script <s>  service scenario only: bad-tenant schedule
//                        (grammar in svc/tenant.hpp)
//   --slo <spec>         service scenario only: SLO assertions
//                        (grammar in svc/slo.hpp); any gated violation
//                        exits 6
//   --churn <ms>         service scenario only: connection-churn period
//   --full               paper-scale settings (duration 10s, repeats 5)
//
// Duplicate entries in the --schemes, --threads, and --stalled lists are
// deduplicated with a warning: each would silently re-run (and re-plot)
// an identical series, which skews averaged CSV post-processing. The
// container figure driver applies the same rule to its zipped
// (producers, consumers) sweep points.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hyaline::harness {

/// The CSV column list — the one source both the header line and the row
/// printer derive from (print_csv_row statically asserts its value count
/// against this), so adding a column cannot leave the two out of sync.
inline constexpr const char* kCsvColumns[] = {
    "figure",        "structure",          "scheme",
    "threads",       "stalled",            "producers",
    "consumers",     "mops",               "unreclaimed_per_op",
    "unreclaimed_peak", "p50_ns",          "p99_ns",
    "max_ns",        "lag_p50_ns",         "lag_p99_ns",
    "lag_max_ns",
};

struct cli_options {
  std::vector<unsigned> threads;
  std::vector<unsigned> stalled;
  unsigned duration_ms = 300;
  unsigned repeats = 1;
  std::uint64_t key_range = 100000;
  std::size_t prefill = 50000;
  std::vector<std::string> schemes;  // empty = all
  /// Op-mix override {insert,remove,get}; empty = the figure's default.
  /// parse_cli guarantees: empty, or exactly 3 values summing to 100.
  std::vector<unsigned> mix;
  /// Producer/consumer sweep lists (container figures). Empty = the
  /// figure's defaults; the figure driver zips them pairwise.
  std::vector<unsigned> producers;
  std::vector<unsigned> consumers;
  /// True iff --range / --threads were given explicitly (the value alone
  /// cannot tell — defaults are figure-supplied). Container figures
  /// reject these set-only flags, which would otherwise be silently
  /// ignored.
  bool range_set = false;
  bool threads_set = false;
  /// Base PRNG seed for every workload generator (default matches
  /// workload_config's).
  std::uint64_t seed = 0x5eed;
  /// Retired-node shard count plumbed into scheme_params::retire_shards
  /// (0 = classic lists; `--shards auto` resolves via
  /// hyaline::default_retire_shards()).
  unsigned shards = 0;
  /// Robustness-lab knobs (timeline figures only; other kinds reject
  /// them). `faults` is the raw spec text — parsed and validated by the
  /// timeline driver, which knows the thread count.
  std::string faults;
  unsigned sample_ms = 0;
  bool sample_ms_set = false;
  std::string structure;
  /// Latency-sampling period: one in `lat_sample` operations is timed.
  /// parse_cli guarantees a power of two >= 1. `lat_sample_set` marks an
  /// explicit flag (the service scenario records every op CO-safely and
  /// rejects the flag rather than silently ignoring it).
  std::uint64_t lat_sample = 32;
  bool lat_sample_set = false;
  /// Path for the Chrome trace-event JSON export of the SMR-internals
  /// event rings (empty = tracing stays off).
  std::string trace;
  /// Path for the Prometheus-style counter snapshot (fig_service only;
  /// empty = none).
  std::string metrics;
  /// Path for the machine-readable JSON trajectory file (empty = none).
  std::string json;
  /// Correctness-oracle knobs (the check binary only; figure binaries
  /// reject them): `mutate` selects an injected-bug self-test
  /// (drop-validate | skip-protect), `counterexample` is where a
  /// violation's counterexample history is mirrored.
  std::string mutate;
  std::string counterexample;
  /// Service-scenario knobs (fig_service only; other figures reject
  /// them). Sentinels mark "unset" so the driver can apply its own
  /// defaults: 0 for the counts/periods, negative for the rates, empty
  /// for the specs.
  unsigned svc_shards = 0;    ///< cache shards (each owns a domain)
  unsigned tenants = 0;       ///< swarm size (worker threads)
  double rate_ops_s = -1;     ///< total offered load; 0 = closed loop
  double skew = -1;           ///< Zipfian theta in [0, 1); 0 = uniform
  std::string arrival;        ///< fixed | poisson
  std::string tenant_script;  ///< bad-tenant spec (svc/tenant.hpp)
  std::string slo;            ///< SLO spec (svc/slo.hpp)
  unsigned churn_ms = 0;      ///< connection-churn period; 0 = none
  bool full = false;

  /// True if any service-scenario flag was given (used by the figure
  /// kinds that must reject them).
  bool service_flag_set() const;

  /// True if `name` should run under the --schemes filter.
  bool scheme_enabled(const std::string& name) const;
};

/// Parse argv; exits with a usage message on malformed input. `defaults`
/// seeds the sweep lists benches want when flags are absent.
cli_options parse_cli(int argc, char** argv, cli_options defaults);

/// Print the standard CSV header used by all figure benches: a comment
/// line naming the figure, one echoing the seed, one echoing the
/// latency-sampling period (omitted when `lat_sample` is 0), then the
/// kCsvColumns line.
void print_csv_header(const char* figure, std::uint64_t seed,
                      std::uint64_t lat_sample = 0);

/// Emit one CSV data row (column meanings per kCsvColumns; producers and
/// consumers are 0 on set-structure rows, latency columns are the sampled
/// per-op percentiles in ns, lag columns the retire->free percentiles —
/// zero unless the run had lag tracking on).
void print_csv_row(const char* figure, const char* structure,
                   const char* scheme, unsigned threads, unsigned stalled,
                   unsigned producers, unsigned consumers, double mops,
                   double unreclaimed, double unreclaimed_peak,
                   double p50_ns, double p99_ns, double max_ns,
                   double lag_p50_ns, double lag_p99_ns, double lag_max_ns);

}  // namespace hyaline::harness
