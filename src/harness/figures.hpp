// High-level entry points for the paper-figure benchmarks. Each bench
// binary is a thin main() over one of these; the (large) template matrix
// of structures × schemes is instantiated once, in figures.cpp.
#pragma once

#include "harness/cli.hpp"

namespace hyaline::harness {

/// Figures 8/9 (write-heavy) and 11/12 (read-mostly), and their LL/SC
/// twins 13-16: run all four structures over the full scheme line-up.
/// `insert/remove/get` are the op-mix percentages; `llsc` switches the
/// Hyaline variants to the emulated LL/SC head policy.
void run_matrix(const char* figure, const cli_options& o, unsigned insert_pct,
                unsigned remove_pct, unsigned get_pct, bool llsc);

/// Figure 10a: hash map, fixed active threads, sweeping stalled threads;
/// the interesting column is unreclaimed objects per operation.
void run_robustness(const char* figure, const cli_options& o,
                    unsigned active_threads);

/// Figure 10b: hash map with a small slot cap (k <= 32), Hyaline and
/// Hyaline-S with and without trim.
void run_trim(const char* figure, const cli_options& o, std::size_t slot_cap);

}  // namespace hyaline::harness
