// Data-driven entry points for the paper-figure benchmarks.
//
// Each bench binary declares a `figure_spec` — a plain data table naming
// the workload shape — and calls run_figure(). All scheme and structure
// resolution happens at runtime through harness/registry.hpp, so the
// binaries contain no template unrolls and `--schemes` selects any
// registered scheme by name without recompilation.
#pragma once

#include <cstddef>
#include <vector>

#include "harness/cli.hpp"

namespace hyaline::harness {

enum class figure_kind {
  /// Four structures × the paper's nine-scheme line-up × thread sweep
  /// (Figures 8/9, 11/12, and their LL/SC twins 13-16).
  matrix,
  /// Hash map, fixed active threads, sweeping stalled threads (Figure 10a).
  robustness,
  /// Hash map with a small slot cap, trim() on/off (Figure 10b).
  trim,
  /// Container family (msqueue + stack) × scheme line-up, sweeping
  /// (producers, consumers) pairs (fig_queue). Containers take the
  /// producer/consumer split instead of the set-only key_range/op-mix/
  /// thread knobs; run_figure validates the two option families per kind.
  container,
  /// Robustness lab (fig_timeline): one structure (--structure, set or
  /// container), single thread count, single repetition, scheme line-up,
  /// with a scripted fault schedule (--faults) and time-series telemetry
  /// (--sample-ms). Each robust scheme's series is recovery-checked —
  /// unreclaimed must return to its pre-fault baseline after the last
  /// fault clears, or the binary exits non-zero.
  timeline,
  /// Service scenario (fig_service): a sharded cache under an open-loop
  /// tenant swarm with SLO gating. Takes the --tenants/--svc-shards/
  /// --rate/--skew/--arrival/--tenant-script/--slo/--churn family (plus
  /// --mix/--range/--sample-ms); sized by tenants, not --threads. Runs
  /// through its own driver (bench/fig_service.cpp), not run_figure —
  /// the kind exists so option validation covers both directions.
  service,
};

struct figure_spec {
  const char* name;  ///< CSV header tag, e.g. "fig8-write-throughput"
  figure_kind kind = figure_kind::matrix;
  /// Op-mix percentages (overridable with --mix). Paper: write = {50,50,0},
  /// read-mostly = {5,5,90}.
  unsigned insert_pct = 50;
  unsigned remove_pct = 50;
  unsigned get_pct = 0;
  /// Matrix figures: run the Hyaline variants over the emulated LL/SC head
  /// (§4.4; Figures 13-16).
  bool llsc = false;
  /// Trim figures: slot cap k (paper: k <= 32).
  std::size_t slot_cap = 4;
  std::vector<unsigned> default_threads = {1, 2, 4, 8};
  std::vector<unsigned> default_stalled = {};
  /// Container figures: the (producers, consumers) sweep, zipped pairwise
  /// (overridable with --producers/--consumers; a singleton list
  /// broadcasts against the other).
  std::vector<unsigned> default_producers = {1, 2, 4};
  std::vector<unsigned> default_consumers = {1, 2, 4};
  /// Timeline figures: telemetry cadence and the run length (0 = keep the
  /// CLI default; fig_timeline needs a longer default so a transient
  /// fault leaves a measurable fault-free tail).
  unsigned default_sample_ms = 10;
  unsigned default_duration_ms = 0;
};

/// Parse argv over the spec's defaults and run the figure. Returns the
/// process exit status (non-zero on CLI errors such as an unknown scheme).
int run_figure(const figure_spec& spec, int argc, char** argv);

/// Per-kind option validation (the registry's structure-kind dimension
/// applied to the CLI): knobs from another figure family are rejected
/// loudly, never silently ignored. Mutates `o` to resolve kind defaults
/// (container sweep pairs, timeline/service sample cadence). Exported for
/// drivers that run outside run_figure (bench/fig_service.cpp).
bool validate_kind_options(const figure_spec& spec, cli_options& o);

}  // namespace hyaline::harness
