#include "harness/cli.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>

#include "common/topology.hpp"

namespace hyaline::harness {
namespace {

std::vector<unsigned> parse_list(const char* s) {
  std::vector<unsigned> out;
  const char* p = s;
  while (*p != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p) break;
    // Saturate instead of truncating: a silently wrapped value could slip
    // past downstream range checks (e.g. the --mix sum-to-100 rule).
    out.push_back(v > ~0u ? ~0u : static_cast<unsigned>(v));
    p = *end == ',' ? end + 1 : end;
  }
  return out;
}

std::vector<std::string> parse_names(const char* s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = s;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
      if (*p == '\0') break;
    } else {
      cur.push_back(*p);
    }
  }
  return out;
}

[[noreturn]] void usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--threads a,b,...] [--stalled a,b,...]\n"
               "          [--duration ms] [--repeats n] [--prefill n]\n"
               "          [--range n] [--schemes name,...]\n"
               "          [--mix insert,remove,get]\n"
               "          [--producers a,b,...] [--consumers a,b,...]\n"
               "          [--shards n|auto]\n"
               "          [--seed n] [--faults spec] [--sample-ms n]\n"
               "          [--structure name] [--lat-sample n]\n"
               "          [--trace path] [--metrics path]\n"
               "          [--json path] [--full]\n"
               "          [--mutate mode] [--counterexample path]\n"
               "          [--svc-shards n] [--tenants n] [--rate ops/s]\n"
               "          [--skew theta] [--arrival fixed|poisson]\n"
               "          [--tenant-script spec] [--slo spec] [--churn ms]\n",
               prog);
  std::exit(2);
}

void warn_duplicate(const char* flag, unsigned v) {
  std::fprintf(stderr, "%s: ignoring duplicate entry '%u'\n", flag, v);
}

void warn_duplicate(const char* flag, const std::string& v) {
  std::fprintf(stderr, "%s: ignoring duplicate entry '%s'\n", flag,
               v.c_str());
}

/// Drop repeated entries, keeping first occurrences in order. A duplicate
/// in --schemes or --threads would silently run (and emit) an identical
/// series twice, skewing any averaging done over the CSV — warn instead
/// of multiplying work.
template <class T>
void dedupe_list(std::vector<T>& v, const char* flag) {
  std::vector<T> out;
  out.reserve(v.size());
  for (T& x : v) {
    if (std::find(out.begin(), out.end(), x) != out.end()) {
      warn_duplicate(flag, x);
    } else {
      out.push_back(std::move(x));
    }
  }
  v = std::move(out);
}

}  // namespace

bool cli_options::service_flag_set() const {
  return svc_shards != 0 || tenants != 0 || rate_ops_s >= 0 || skew >= 0 ||
         !arrival.empty() || !tenant_script.empty() || !slo.empty() ||
         churn_ms != 0;
}

bool cli_options::scheme_enabled(const std::string& name) const {
  if (schemes.empty()) return true;
  for (const auto& s : schemes) {
    if (s == name) return true;
  }
  return false;
}

cli_options parse_cli(int argc, char** argv, cli_options defaults) {
  cli_options o = defaults;
  for (int i = 1; i < argc; ++i) {
    auto need_val = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--threads") == 0) {
      o.threads = parse_list(need_val("--threads"));
      o.threads_set = true;
    } else if (std::strcmp(argv[i], "--stalled") == 0) {
      o.stalled = parse_list(need_val("--stalled"));
    } else if (std::strcmp(argv[i], "--duration") == 0) {
      o.duration_ms =
          static_cast<unsigned>(std::strtoul(need_val("--duration"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--repeats") == 0) {
      o.repeats =
          static_cast<unsigned>(std::strtoul(need_val("--repeats"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--prefill") == 0) {
      o.prefill = std::strtoull(need_val("--prefill"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--range") == 0) {
      o.key_range = std::strtoull(need_val("--range"), nullptr, 10);
      o.range_set = true;
    } else if (std::strcmp(argv[i], "--producers") == 0) {
      o.producers = parse_list(need_val("--producers"));
    } else if (std::strcmp(argv[i], "--consumers") == 0) {
      o.consumers = parse_list(need_val("--consumers"));
    } else if (std::strcmp(argv[i], "--schemes") == 0) {
      o.schemes = parse_names(need_val("--schemes"));
    } else if (std::strcmp(argv[i], "--mix") == 0) {
      o.mix = parse_list(need_val("--mix"));
      // Reject malformed mixes up front: a mix that does not sum to 100
      // would silently skew the op distribution (the dice remainder falls
      // through to get). Sum in 64 bits so huge values cannot wrap back
      // to 100.
      unsigned long long sum = 0;
      for (unsigned v : o.mix) sum += v;
      if (o.mix.size() != 3 || sum != 100) {
        std::fprintf(stderr,
                     "--mix wants three percentages insert,remove,get "
                     "summing to 100 (got %zu values, sum %llu)\n",
                     o.mix.size(), sum);
        usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      const char* v = need_val("--shards");
      if (std::strcmp(v, "auto") == 0) {
        o.shards = default_retire_shards();
      } else {
        char* end = nullptr;
        const unsigned long n = std::strtoul(v, &end, 10);
        if (end == v || *end != '\0') {
          std::fprintf(stderr, "--shards wants a count or 'auto'\n");
          usage(argv[0]);
        }
        o.shards = n > ~0u ? ~0u : static_cast<unsigned>(n);
      }
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      // Base 0: hex seeds (0x5eed) round-trip from the header comment.
      o.seed = std::strtoull(need_val("--seed"), nullptr, 0);
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      o.faults = need_val("--faults");
    } else if (std::strcmp(argv[i], "--sample-ms") == 0) {
      o.sample_ms = static_cast<unsigned>(
          std::strtoul(need_val("--sample-ms"), nullptr, 10));
      o.sample_ms_set = true;
      if (o.sample_ms == 0) {
        std::fprintf(stderr, "--sample-ms must be >= 1\n");
        usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--structure") == 0) {
      o.structure = need_val("--structure");
    } else if (std::strcmp(argv[i], "--lat-sample") == 0) {
      const char* v = need_val("--lat-sample");
      char* end = nullptr;
      const unsigned long long n = std::strtoull(v, &end, 10);
      // Power of two keeps the per-op modulo a mask and makes the
      // sampled-op spacing exact; 0 would divide by zero.
      if (end == v || *end != '\0' || !std::has_single_bit(n)) {
        std::fprintf(stderr,
                     "--lat-sample wants a power of two >= 1 (got '%s')\n",
                     v);
        usage(argv[0]);
      }
      o.lat_sample = n;
      o.lat_sample_set = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      o.trace = need_val("--trace");
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      o.metrics = need_val("--metrics");
    } else if (std::strcmp(argv[i], "--json") == 0) {
      o.json = need_val("--json");
    } else if (std::strcmp(argv[i], "--mutate") == 0) {
      o.mutate = need_val("--mutate");
    } else if (std::strcmp(argv[i], "--counterexample") == 0) {
      o.counterexample = need_val("--counterexample");
    } else if (std::strcmp(argv[i], "--svc-shards") == 0) {
      o.svc_shards = static_cast<unsigned>(
          std::strtoul(need_val("--svc-shards"), nullptr, 10));
      if (o.svc_shards == 0) {
        std::fprintf(stderr, "--svc-shards must be >= 1\n");
        usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--tenants") == 0) {
      o.tenants = static_cast<unsigned>(
          std::strtoul(need_val("--tenants"), nullptr, 10));
      if (o.tenants == 0) {
        std::fprintf(stderr, "--tenants must be >= 1\n");
        usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--rate") == 0) {
      const char* v = need_val("--rate");
      char* end = nullptr;
      o.rate_ops_s = std::strtod(v, &end);
      if (end == v || *end != '\0' || o.rate_ops_s < 0) {
        std::fprintf(stderr,
                     "--rate wants a non-negative ops/s (0 = closed loop)\n");
        usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--skew") == 0) {
      const char* v = need_val("--skew");
      char* end = nullptr;
      o.skew = std::strtod(v, &end);
      // theta = 1 makes the Zipf normalization's alpha = 1/(1-theta)
      // diverge; the YCSB-style generator is defined on [0, 1).
      if (end == v || *end != '\0' || o.skew < 0 || o.skew >= 1) {
        std::fprintf(stderr, "--skew wants a theta in [0, 1)\n");
        usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--arrival") == 0) {
      o.arrival = need_val("--arrival");
      if (o.arrival != "fixed" && o.arrival != "poisson") {
        std::fprintf(stderr, "--arrival wants 'fixed' or 'poisson'\n");
        usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--tenant-script") == 0) {
      o.tenant_script = need_val("--tenant-script");
    } else if (std::strcmp(argv[i], "--slo") == 0) {
      o.slo = need_val("--slo");
    } else if (std::strcmp(argv[i], "--churn") == 0) {
      o.churn_ms = static_cast<unsigned>(
          std::strtoul(need_val("--churn"), nullptr, 10));
      if (o.churn_ms == 0) {
        std::fprintf(stderr, "--churn must be >= 1 (omit for no churn)\n");
        usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--full") == 0) {
      o.full = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage(argv[0]);
    }
  }
  if (o.full) {
    o.duration_ms = 10000;  // paper §6: 10-second runs,
    o.repeats = 5;          // averaged over 5 repetitions
  }
  dedupe_list(o.threads, "--threads");
  dedupe_list(o.stalled, "--stalled");
  dedupe_list(o.schemes, "--schemes");
  return o;
}

void print_csv_header(const char* figure, std::uint64_t seed,
                      std::uint64_t lat_sample) {
  std::printf("# %s\n# seed=0x%llx\n", figure,
              static_cast<unsigned long long>(seed));
  if (lat_sample != 0) {
    std::printf("# lat_sample=%llu\n",
                static_cast<unsigned long long>(lat_sample));
  }
  for (std::size_t i = 0; i < std::size(kCsvColumns); ++i) {
    std::printf("%s%s", i == 0 ? "" : ",", kCsvColumns[i]);
  }
  std::printf("\n");
  std::fflush(stdout);
}

namespace {

std::string fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace

void print_csv_row(const char* figure, const char* structure,
                   const char* scheme, unsigned threads, unsigned stalled,
                   unsigned producers, unsigned consumers, double mops,
                   double unreclaimed, double unreclaimed_peak,
                   double p50_ns, double p99_ns, double max_ns,
                   double lag_p50_ns, double lag_p99_ns, double lag_max_ns) {
  const std::string vals[] = {
      figure,
      structure,
      scheme,
      std::to_string(threads),
      std::to_string(stalled),
      std::to_string(producers),
      std::to_string(consumers),
      fixed(mops, 4),
      fixed(unreclaimed, 2),
      fixed(unreclaimed_peak, 0),
      fixed(p50_ns, 0),
      fixed(p99_ns, 0),
      fixed(max_ns, 0),
      fixed(lag_p50_ns, 0),
      fixed(lag_p99_ns, 0),
      fixed(lag_max_ns, 0),
  };
  static_assert(std::size(vals) == std::size(kCsvColumns),
                "row values and kCsvColumns must stay in lockstep");
  for (std::size_t i = 0; i < std::size(vals); ++i) {
    std::printf("%s%s", i == 0 ? "" : ",", vals[i].c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace hyaline::harness
