// The one translation unit that instantiates the scheme×structure template
// matrix. Everything downstream (figures, tests, future tools) reaches the
// pairs through type-erased runner_fn pointers looked up by name.
#include "harness/registry.hpp"

#include <algorithm>

#include "ds/bonsai_tree.hpp"
#include "lab/telemetry.hpp"
#include "ds/harris_list.hpp"
#include "ds/hm_list.hpp"
#include "ds/locked_queue.hpp"
#include "ds/locked_set.hpp"
#include "ds/michael_hashmap.hpp"
#include "ds/ms_queue.hpp"
#include "ds/natarajan_tree.hpp"
#include "ds/treiber_stack.hpp"
#include "smr/domain.hpp"
#include "smr/immediate.hpp"

namespace hyaline::harness {

// Every registered scheme satisfies the v2 facade — enforced here, at the
// single point all of them are instantiated, rather than documented.
static_assert(smr::Domain<smr::leaky_domain>);
static_assert(smr::Domain<smr::ebr_domain>);
static_assert(smr::Domain<smr::hp_domain>);
static_assert(smr::Domain<smr::he_domain>);
static_assert(smr::Domain<smr::ibr_domain>);
static_assert(smr::Domain<domain>);
static_assert(smr::Domain<domain_dw>);
static_assert(smr::Domain<domain_llsc>);
static_assert(smr::Domain<domain_s>);
static_assert(smr::Domain<domain_s_dw>);
static_assert(smr::Domain<domain_s_llsc>);
static_assert(smr::Domain<domain_1>);
static_assert(smr::Domain<domain_1s>);
static_assert(smr::Domain<smr::immediate_domain>);

namespace {

/// Carry the domain's full counter state (ledgers, mechanism events, lag
/// histogram) out of the cell after the quiescent drain, and rehydrate the
/// lag buckets into percentile columns via the shared histogram math. The
/// lag fields stay zero unless the caller enabled obs::set_lag_tracking.
void capture_counters(workload_result& r, const smr::stats& st) {
  r.obs = st.snapshot();
  r.retired = r.obs.retired;
  r.freed = r.obs.freed;
  const auto lagh =
      lab::latency_histogram::from_counts(r.obs.lag_bucket, r.obs.lag_max_ns);
  r.lag_p50_ns = lagh.percentile(0.50);
  r.lag_p99_ns = lagh.percentile(0.99);
  r.lag_max_ns = r.obs.lag_max_ns;
}

/// One benchmark run over a concrete (scheme, structure) pair. Teardown
/// order matters for the trailing leak counters: the structure frees its
/// live nodes directly, then the quiescent drain flushes every
/// retired-but-unreclaimed node through the scheme, after which
/// retired == freed must hold.
template <class D, template <class> class DS>
workload_result run_cell(const scheme_params& params,
                         const workload_config& cfg) {
  // Transparent thread identity (API v2) leases tids first-come: the
  // calling thread prefills, so the pool must cover it alongside the
  // workers and stalled threads.
  scheme_params p = params;
  p.max_threads = std::max(p.max_threads,
                           cfg.threads + cfg.stalled_threads + 1);
  auto dom = scheme_traits<D>::make(p);
  workload_result r;
  {
    DS<D> s(*dom);
    r = run_workload(*dom, s, cfg);
  }
  dom->drain();
  capture_counters(r, dom->counters());
  return r;
}

/// Container twin of run_cell, driving the producer/consumer loop. Same
/// teardown discipline; additionally the conservation ledger
/// (enqueued == dequeued + drained) rides out in the result for callers
/// to check.
template <class D, template <class> class Q>
workload_result run_container_cell(const scheme_params& params,
                                   const workload_config& cfg) {
  const thread_split split = container_split(cfg);
  scheme_params p = params;
  p.max_threads = std::max(p.max_threads, split.total() + 1);
  auto dom = scheme_traits<D>::make(p);
  workload_result r;
  {
    Q<D> q(*dom);
    r = run_container_workload(*dom, q, cfg);
  }
  dom->drain();
  capture_counters(r, dom->counters());
  return r;
}

/// Presentation-level knobs the registry adds on top of D::caps.
struct entry_opts {
  bool core_lineup = false;   ///< one of the paper's nine plotted schemes
  bool llsc_head = false;     ///< emulated-LL/SC head variant (§4.4)
  const char* llsc_variant = "";  ///< this scheme's LL/SC twin, if any
  bool external_baseline = false;  ///< coarse-mutex honesty baseline
};

/// Build one registry entry for scheme D. The structure cells follow the
/// compile-time capability tags (smr/caps.hpp): Bonsai lookups walk an
/// immutable snapshot that cannot be pointer-protected (paper: HP/HE
/// excluded), and Harris's original list is stricter still — traversal
/// crosses marked (logically deleted) segments, which only guard-lifetime
/// epoch-style schemes pin safely (§2.4's "basic Hyaline works with [20];
/// its robust version requires timely retirement"). The same tags gate the
/// structures' own static_asserts, so an entry the registry would refuse
/// cannot even be compiled by hand.
template <class D>
scheme_registry::entry make_entry(const char* name, entry_opts opts = {}) {
  scheme_caps caps;
  caps.pointer_publication = D::caps.pointer_publication;
  caps.robust = D::caps.robust;
  caps.llsc_head = opts.llsc_head;
  caps.supports_trim = D::caps.supports_trim;
  caps.core_lineup = opts.core_lineup;
  caps.burst_entry = D::caps.burst_entry;
  caps.external_baseline = opts.external_baseline;

  constexpr structure_kind set = structure_kind::set;
  constexpr structure_kind container = structure_kind::container;
  scheme_registry::entry e{name, caps, opts.llsc_variant, {}};
  e.cells.push_back({"list", set, &run_cell<D, ds::hm_list>});
  e.cells.push_back({"hashmap", set, &run_cell<D, ds::michael_hashmap>});
  e.cells.push_back({"nmtree", set, &run_cell<D, ds::natarajan_tree>});
  if constexpr (!D::caps.pointer_publication) {
    e.cells.push_back({"bonsai", set, &run_cell<D, ds::bonsai_tree>});
    if constexpr (!D::caps.robust) {
      e.cells.push_back({"harris", set, &run_cell<D, ds::harris_list>});
    }
  }
  // The container family: no snapshot traversal, no marked-edge crossing —
  // every scheme qualifies (the dummy-handoff and head-only protection
  // patterns are exactly what HP/HE's bounded hazard budget covers, peak 2
  // and 1 respectively). The order tag declares each container's
  // checkable semantics to the linearizability oracle.
  e.cells.push_back({"msqueue", container,
                     &run_container_cell<D, ds::ms_queue>,
                     container_order::fifo});
  e.cells.push_back({"stack", container,
                     &run_container_cell<D, ds::treiber_stack>,
                     container_order::lifo});
  return e;
}

}  // namespace

runner_fn scheme_registry::entry::runner_for(
    std::string_view structure) const {
  const cell* c = cell_for(structure);
  return c != nullptr ? c->run : nullptr;
}

const scheme_registry::cell* scheme_registry::entry::cell_for(
    std::string_view structure) const {
  for (const cell& c : cells) {
    if (c.structure == structure) return &c;
  }
  return nullptr;
}

scheme_registry::scheme_registry() {
  using smr::ebr_domain;
  using smr::he_domain;
  using smr::hp_domain;
  using smr::ibr_domain;
  using smr::leaky_domain;

  // The paper's nine headline schemes, in plotting order. The multi-list
  // Hyaline variants name their emulated-LL/SC twin for the Figures 13-16
  // head substitution; the baselines and per-thread-slot variants are
  // head-agnostic.
  schemes_.push_back(make_entry<leaky_domain>("Leaky", {.core_lineup = true}));
  schemes_.push_back(make_entry<ebr_domain>("Epoch", {.core_lineup = true}));
  schemes_.push_back(make_entry<domain>(
      "Hyaline", {.core_lineup = true, .llsc_variant = "Hyaline(llsc)"}));
  schemes_.push_back(
      make_entry<domain_1>("Hyaline-1", {.core_lineup = true}));
  schemes_.push_back(make_entry<domain_s>(
      "Hyaline-S", {.core_lineup = true, .llsc_variant = "Hyaline-S(llsc)"}));
  schemes_.push_back(
      make_entry<domain_1s>("Hyaline-1S", {.core_lineup = true}));
  schemes_.push_back(make_entry<ibr_domain>("IBR", {.core_lineup = true}));
  schemes_.push_back(make_entry<he_domain>("HE", {.core_lineup = true}));
  schemes_.push_back(make_entry<hp_domain>("HP", {.core_lineup = true}));

  // ...plus the head-policy variants used by the LL/SC figures and the
  // ablations.
  schemes_.push_back(make_entry<domain_dw>("Hyaline(dwcas)"));
  schemes_.push_back(
      make_entry<domain_llsc>("Hyaline(llsc)", {.llsc_head = true}));
  schemes_.push_back(
      make_entry<domain_s_llsc>("Hyaline-S(llsc)", {.llsc_head = true}));

  // Honesty baseline: coarse-mutex structures over the immediate-free
  // pseudo-domain. Not part of the core lineup and tagged
  // external_baseline so SMR-only sweeps skip it; run it by name
  // (`--schemes Mutex`) to report the floor speedups are measured against.
  {
    scheme_registry::entry mutex_entry{
        "Mutex", scheme_caps{.external_baseline = true}, "", {}};
    mutex_entry.cells.push_back(
        {"lockedset", structure_kind::set,
         &run_cell<smr::immediate_domain, ds::locked_set>});
    mutex_entry.cells.push_back(
        {"lockedqueue", structure_kind::container,
         &run_container_cell<smr::immediate_domain, ds::locked_queue>,
         container_order::fifo});
    schemes_.push_back(std::move(mutex_entry));
  }
}

const scheme_registry& scheme_registry::instance() {
  static scheme_registry r;
  return r;
}

const scheme_registry::entry* scheme_registry::find(
    std::string_view scheme) const {
  for (const entry& e : schemes_) {
    if (e.name == scheme) return &e;
  }
  return nullptr;
}

runner_fn scheme_registry::runner(std::string_view scheme,
                                  std::string_view structure) const {
  const entry* e = find(scheme);
  return e != nullptr ? e->runner_for(structure) : nullptr;
}

std::vector<scheme_registry::structure_info> scheme_registry::structures()
    const {
  std::vector<structure_info> out;
  for (const entry& e : schemes_) {
    for (const cell& c : e.cells) {
      const bool seen =
          std::any_of(out.begin(), out.end(), [&](const structure_info& s) {
            return s.name == c.structure;
          });
      if (!seen) out.push_back({c.structure, c.kind});
    }
  }
  return out;
}

std::optional<structure_kind> scheme_registry::kind_of(
    std::string_view structure) const {
  for (const entry& e : schemes_) {
    if (const cell* c = e.cell_for(structure)) return c->kind;
  }
  return std::nullopt;
}

}  // namespace hyaline::harness
