#include "harness/trajectory.hpp"

#include <cstdio>
#include <utility>

#include "harness/json.hpp"

namespace hyaline::harness {

// The JSON value type + reader formerly defined here moved to
// harness/json.hpp so the trace validator (bench/trace_check) parses the
// same dialect the trajectory gate does.
using json::get;
using json::jvalue;
using json::want_num;
using json::want_str;

bool load_sweep(const std::string& path, sweep_file& out, std::string& err) {
  jvalue root;
  if (!json::load_file(path, root, err)) return false;
  if (!root.is_obj()) {
    err = path + ": top level is not an object";
    return false;
  }
  double d = 0;
  if (!want_num(root, "version", d, err)) {
    err = path + ": " + err;
    return false;
  }
  out.version = static_cast<int>(d);
  if (out.version != 1) {
    err = path + ": unsupported trajectory version " +
          std::to_string(out.version);
    return false;
  }
  if (!want_num(root, "seed", d, err)) {
    err = path + ": " + err;
    return false;
  }
  out.seed = static_cast<std::uint64_t>(d);

  if (const jvalue* prov = get(root, "provenance");
      prov != nullptr && prov->is_obj()) {
    want_str(*prov, "git_sha", out.git_sha, err);
    want_str(*prov, "compiler", out.compiler, err);
    want_str(*prov, "cpu_model", out.cpu_model, err);
    err.clear();  // provenance strings are advisory, not load-fatal
  }
  if (const jvalue* cfg = get(root, "config");
      cfg != nullptr && cfg->is_obj()) {
    want_str(*cfg, "fastpath", out.fastpath, err);
    err.clear();
    if (double sh = 0; want_num(*cfg, "shards", sh, err)) {
      out.shards = static_cast<unsigned>(sh);
    }
    err.clear();
  }

  const jvalue* cells = get(root, "cells");
  if (cells == nullptr || !cells->is_arr()) {
    err = path + ": missing 'cells' array";
    return false;
  }
  out.points.clear();
  out.points.reserve(cells->arr->size());
  for (std::size_t i = 0; i < cells->arr->size(); ++i) {
    const jvalue& c = (*cells->arr)[i];
    sweep_point pt;
    std::string ferr;
    double threads = 0;
    if (!c.is_obj() || !want_str(c, "cell", pt.cell, ferr) ||
        !want_str(c, "structure", pt.structure, ferr) ||
        !want_str(c, "scheme", pt.scheme, ferr) ||
        !want_num(c, "threads", threads, ferr) ||
        !want_num(c, "mops", pt.mops, ferr)) {
      err = path + ": cells[" + std::to_string(i) + "]: " +
            (ferr.empty() ? "not an object" : ferr);
      return false;
    }
    pt.threads = static_cast<unsigned>(threads);
    if (double peak = 0; want_num(c, "unreclaimed_peak", peak, ferr)) {
      pt.unreclaimed_peak = peak;
    }
    if (const jvalue* ext = get(c, "external");
        ext != nullptr && ext->k == jvalue::kind::boolean) {
      pt.external = ext->b;
    }
    out.points.push_back(std::move(pt));
  }
  err.clear();
  return true;
}

}  // namespace hyaline::harness
