#include "harness/figures.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <string>
#include <string_view>

#include "harness/registry.hpp"

namespace hyaline::harness {
namespace {

/// The paper's scheme line-up, straight from the registry (entries are in
/// plotting order). Under the LL/SC figures, schemes with a registered
/// emulated-LL/SC twin swap to it.
std::vector<std::string> matrix_lineup(const scheme_registry& reg,
                                       bool llsc) {
  std::vector<std::string> out;
  for (const scheme_registry::entry& e : reg.schemes()) {
    if (!e.caps.core_lineup) continue;
    out.push_back(llsc && !e.llsc_variant.empty() ? e.llsc_variant : e.name);
  }
  return out;
}

// The list benchmark uses a smaller key range / prefill than the map and
// trees: a 100k-key sorted list makes every operation a ~25k-node walk,
// which is why the paper's list throughput is three orders of magnitude
// below the map's. We keep the range proportional but bounded so the
// default (CI-scale) run finishes; --full restores paper scale via the
// regular flags.
void scale_for_list(cli_options& o) {
  if (o.full) return;
  if (o.key_range > 2048) o.key_range = 2048;
  if (o.prefill > 1024) o.prefill = 1024;
}

/// Workload shaped by the spec's mix (or the --mix override) and the
/// shared CLI knobs.
workload_config base_cfg(const figure_spec& spec, const cli_options& o) {
  workload_config cfg;
  if (!o.mix.empty()) {
    cfg.insert_pct = o.mix[0];
    cfg.remove_pct = o.mix[1];
    cfg.get_pct = o.mix[2];
  } else {
    cfg.insert_pct = spec.insert_pct;
    cfg.remove_pct = spec.remove_pct;
    cfg.get_pct = spec.get_pct;
  }
  cfg.duration_ms = o.duration_ms;
  cfg.repeats = o.repeats;
  cfg.key_range = o.key_range;
  cfg.prefill = o.prefill;
  return cfg;
}

/// Every label this figure can plot must cover every name the user asked
/// for — a typo in --schemes should fail loudly, not produce empty output.
bool validate_scheme_filter(const cli_options& o,
                            const std::vector<std::string>& labels) {
  for (const std::string& want : o.schemes) {
    bool known = false;
    for (const std::string& l : labels) {
      if (l == want) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::string valid;
      for (const std::string& l : labels) {
        if (!valid.empty()) valid += ", ";
        valid += l;
      }
      std::fprintf(stderr,
                   "unknown scheme '%s' for this figure; valid here: %s\n",
                   want.c_str(), valid.c_str());
      return false;
    }
  }
  return true;
}

int run_matrix(const figure_spec& spec, const cli_options& o) {
  const scheme_registry& reg = scheme_registry::instance();

  std::vector<std::string> labels = matrix_lineup(reg, spec.llsc);
  // The line-up is only the default plot order: any other registered scheme
  // (e.g. the Hyaline(dwcas) head-policy variant) runs on demand when named
  // in --schemes. Exception: on LL/SC figures a scheme whose emulated-LL/SC
  // twin replaced it in the line-up is NOT appendable under its base name —
  // silently measuring the packed-CAS head under the LL/SC figure tag would
  // corrupt the series; validation rejects it and lists the valid labels.
  for (const std::string& want : o.schemes) {
    if (std::find(labels.begin(), labels.end(), want) != labels.end()) {
      continue;
    }
    const scheme_registry::entry* e = reg.find(want);
    if (e == nullptr) continue;  // rejected by validation below
    if (spec.llsc && !e->llsc_variant.empty()) continue;
    labels.push_back(want);
  }
  if (!validate_scheme_filter(o, labels)) return 2;

  print_csv_header(spec.name);
  const workload_config base = base_cfg(spec, o);

  struct srow {
    const char* structure;
    bool list_scale;
  };
  static constexpr srow kStructures[] = {{"list", true},
                                         {"bonsai", false},
                                         {"hashmap", false},
                                         {"nmtree", false}};

  for (const srow& st : kStructures) {
    cli_options so = o;
    if (st.list_scale) scale_for_list(so);
    for (const std::string& scheme : labels) {
      if (!o.scheme_enabled(scheme)) continue;
      runner_fn run = reg.runner(scheme, st.structure);
      if (run == nullptr) continue;  // HP/HE × bonsai, as in the paper
      for (unsigned t : so.threads) {
        scheme_params p;
        p.max_threads = t + base.stalled_threads;
        workload_config cfg = base;
        cfg.threads = t;
        cfg.key_range = so.key_range;
        cfg.prefill = so.prefill;
        const workload_result r = run(p, cfg);
        print_csv_row(spec.name, st.structure, scheme.c_str(), t,
                      cfg.stalled_threads, r.mops, r.unreclaimed_avg);
      }
    }
  }
  return 0;
}

int run_robustness(const figure_spec& spec, const cli_options& o) {
  const scheme_registry& reg = scheme_registry::instance();
  const unsigned active = o.threads.empty() ? 4 : o.threads[0];

  /// One row per plotted series. The sweep needs a slot count that does
  /// NOT scale with the stalled-thread count, so the "ran out of slots"
  /// cliff of Figure 10a is reproducible; the adaptive series re-runs
  /// Hyaline-S with §4.3 slot-directory growth enabled.
  struct rrow {
    const char* scheme;
    const char* label;
    std::size_t max_slots;
  };
  static constexpr rrow kRows[] = {
      {"Epoch", "Epoch", 0},
      {"Hyaline", "Hyaline", 0},
      {"Hyaline-1", "Hyaline-1", 0},
      {"Hyaline-S", "Hyaline-S", 0},
      {"Hyaline-S", "Hyaline-S(adaptive)", 4096},
      {"Hyaline-1S", "Hyaline-1S", 0},
      {"IBR", "IBR", 0},
      {"HE", "HE", 0},
      {"HP", "HP", 0},
  };

  std::vector<std::string> labels;
  for (const rrow& r : kRows) labels.push_back(r.label);
  if (!validate_scheme_filter(o, labels)) return 2;

  print_csv_header(spec.name);
  const std::size_t fixed_slots = std::bit_ceil(std::size_t{active}) * 2;
  for (unsigned stalled : o.stalled) {
    for (const rrow& row : kRows) {
      if (!o.scheme_enabled(row.label)) continue;
      workload_config cfg = base_cfg(spec, o);
      cfg.threads = active;
      cfg.stalled_threads = stalled;
      scheme_params p;
      p.max_threads = active + stalled;
      p.slots = fixed_slots;
      p.max_slots = row.max_slots;   // 0 = capped; §4.3 growth otherwise
      p.ack_threshold = 512;  // scaled to short runs (paper: 8192 over 10 s)
      runner_fn run = reg.runner(row.scheme, "hashmap");
      if (run == nullptr) {  // stale row table vs registry rename
        std::fprintf(stderr, "skipping %s: no hashmap runner registered\n",
                     row.label);
        continue;
      }
      const workload_result r = run(p, cfg);
      print_csv_row(spec.name, "hashmap", row.label, active, stalled, r.mops,
                    r.unreclaimed_avg);
    }
  }
  return 0;
}

int run_trim(const figure_spec& spec, const cli_options& o) {
  const scheme_registry& reg = scheme_registry::instance();

  struct trow {
    const char* scheme;
    bool use_trim;
    const char* label;
  };
  static constexpr trow kRows[] = {
      {"Hyaline", true, "Hyaline(trim)"},
      {"Hyaline-S", true, "Hyaline-S(trim)"},
      {"Hyaline", false, "Hyaline"},
      {"Hyaline-S", false, "Hyaline-S"},
  };

  std::vector<std::string> labels;
  for (const trow& r : kRows) labels.push_back(r.label);
  if (!validate_scheme_filter(o, labels)) return 2;

  print_csv_header(spec.name);
  for (const trow& row : kRows) {
    // Accept the exact label or the bare scheme name in --schemes.
    if (!o.scheme_enabled(row.label) && !o.scheme_enabled(row.scheme)) {
      continue;
    }
    for (unsigned t : o.threads) {
      workload_config cfg = base_cfg(spec, o);
      cfg.threads = t;
      cfg.use_trim = row.use_trim;
      scheme_params p;
      p.max_threads = t;
      p.slots = spec.slot_cap;
      runner_fn run = reg.runner(row.scheme, "hashmap");
      if (run == nullptr) {  // stale row table vs registry rename
        std::fprintf(stderr, "skipping %s: no hashmap runner registered\n",
                     row.label);
        continue;
      }
      const workload_result r = run(p, cfg);
      print_csv_row(spec.name, "hashmap", row.label, t, 0, r.mops,
                    r.unreclaimed_avg);
    }
  }
  return 0;
}

}  // namespace

int run_figure(const figure_spec& spec, int argc, char** argv) {
  cli_options defaults;
  defaults.threads = spec.default_threads;
  defaults.stalled = spec.default_stalled;
  const cli_options o = parse_cli(argc, argv, defaults);
  switch (spec.kind) {
    case figure_kind::matrix:
      return run_matrix(spec, o);
    case figure_kind::robustness:
      return run_robustness(spec, o);
    case figure_kind::trim:
      return run_trim(spec, o);
  }
  return 2;
}

}  // namespace hyaline::harness
