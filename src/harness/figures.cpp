#include "harness/figures.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "harness/provenance.hpp"
#include "harness/registry.hpp"
#include "lab/fault_plan.hpp"
#include "lab/telemetry.hpp"
#include "obs/trace.hpp"

namespace hyaline::harness {
namespace {

/// Collects every data point of a figure run and mirrors it to the CSV
/// stream, so the same run can be written out as a machine-readable JSON
/// trajectory file (--json): per-(structure, scheme) series of throughput
/// and unreclaimed-node counts.
class figure_sink {
 public:
  figure_sink(const char* figure, std::uint64_t seed,
              std::uint64_t lat_sample)
      : figure_(figure), seed_(seed), lat_sample_(lat_sample) {}

  /// Emit the CSV header. Called by the figure runners only after the
  /// --schemes filter validated, so a rejected filter produces no stdout
  /// (scripts may capture stdout straight into a .csv).
  void header() { print_csv_header(figure_, seed_, lat_sample_); }

  void row(const char* structure, const char* scheme, unsigned threads,
           unsigned stalled, unsigned producers, unsigned consumers,
           const workload_result& r) {
    print_csv_row(figure_, structure, scheme, threads, stalled, producers,
                  consumers, r.mops, r.unreclaimed_avg,
                  static_cast<double>(r.unreclaimed_peak), r.p50_ns,
                  r.p99_ns, static_cast<double>(r.max_ns), r.lag_p50_ns,
                  r.lag_p99_ns, static_cast<double>(r.lag_max_ns));
    rows_.push_back({structure, scheme, threads, stalled, producers,
                     consumers, r.mops, r.unreclaimed_avg,
                     r.unreclaimed_peak, r.p50_ns, r.p90_ns, r.p99_ns,
                     r.max_ns, r.lag_p50_ns, r.lag_p99_ns, r.lag_max_ns,
                     r.obs});
  }

  /// Attach a telemetry time series to the (structure, scheme) series —
  /// written into the JSON series object as "timeline".
  void add_timeline(const char* structure, const char* scheme,
                    std::vector<lab::sample_point> points) {
    timelines_.push_back({structure, scheme, std::move(points)});
  }

  /// Attach the resolved run configuration, emitted as the JSON
  /// "config" metadata block (`body` is the object's inner text).
  void set_config(std::string body) { config_ = std::move(body); }

  /// Group the rows into per-(structure, scheme) series and write them as
  /// JSON. Returns false (with a message on stderr) if the file cannot be
  /// written.
  bool write_json(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "--json: cannot open '%s' for writing\n",
                   path.c_str());
      return false;
    }
    // Series keys in first-appearance order; rows from interleaved sweeps
    // (the robustness figure iterates stalled counts outermost) regroup
    // cleanly.
    std::vector<std::pair<std::string, std::string>> keys;
    for (const row_t& r : rows_) {
      std::pair<std::string, std::string> k{r.structure, r.scheme};
      if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
        keys.push_back(k);
      }
    }
    std::fprintf(f, "{\n  \"figure\": \"%s\",\n", figure_);
    if (!config_.empty()) {
      std::fprintf(f, "  \"config\": {%s},\n", config_.c_str());
    }
    std::fprintf(f, "  \"series\": [");
    bool first_series = true;
    for (const auto& [structure, scheme] : keys) {
      std::fprintf(f, "%s\n    {\"structure\": \"%s\", \"scheme\": \"%s\",",
                   first_series ? "" : ",", structure.c_str(),
                   scheme.c_str());
      first_series = false;
      std::fprintf(f, " \"points\": [");
      bool first_point = true;
      for (const row_t& r : rows_) {
        if (r.structure != structure || r.scheme != scheme) continue;
        std::fprintf(f,
                     "%s\n      {\"threads\": %u, \"stalled\": %u, "
                     "\"producers\": %u, \"consumers\": %u, "
                     "\"mops\": %.6f, \"unreclaimed\": %.3f, "
                     "\"unreclaimed_peak\": %llu, "
                     "\"p50_ns\": %.0f, \"p90_ns\": %.0f, "
                     "\"p99_ns\": %.0f, \"max_ns\": %llu, "
                     "\"lag_p50_ns\": %.0f, \"lag_p99_ns\": %.0f, "
                     "\"lag_max_ns\": %llu, "
                     "\"lag_count\": %llu, \"lag_bucket\": [",
                     first_point ? "" : ",", r.threads, r.stalled,
                     r.producers, r.consumers, r.mops, r.unreclaimed,
                     static_cast<unsigned long long>(r.unreclaimed_peak),
                     r.p50_ns, r.p90_ns, r.p99_ns,
                     static_cast<unsigned long long>(r.max_ns),
                     r.lag_p50_ns, r.lag_p99_ns,
                     static_cast<unsigned long long>(r.lag_max_ns),
                     static_cast<unsigned long long>(r.obs.lag_count));
        // Full log2-bucket histogram (bucket b covers [2^(b-1), 2^b-1]
        // ns; bucket 0 is exact zero): percentiles hide the tail *mass*,
        // which is the quantity the robustness gate compares.
        for (std::size_t b = 0; b < std::size(r.obs.lag_bucket); ++b) {
          std::fprintf(f, "%s%llu", b == 0 ? "" : ",",
                       static_cast<unsigned long long>(r.obs.lag_bucket[b]));
        }
        std::fprintf(f, "]}");
        first_point = false;
      }
      std::fprintf(f, "\n    ]");
      for (const timeline_t& tl : timelines_) {
        if (tl.structure != structure || tl.scheme != scheme) continue;
        std::fprintf(f, ",\n    \"timeline\": [");
        bool first_sample = true;
        for (const lab::sample_point& p : tl.points) {
          std::fprintf(f,
                       "%s\n      {\"t_ms\": %.2f, \"mops\": %.6f, "
                       "\"ops\": %llu, \"retired\": %llu, "
                       "\"freed\": %llu, \"unreclaimed\": %llu, "
                       "\"active_threads\": %u}",
                       first_sample ? "" : ",", p.t_ms, p.mops,
                       static_cast<unsigned long long>(p.ops),
                       static_cast<unsigned long long>(p.retired),
                       static_cast<unsigned long long>(p.freed),
                       static_cast<unsigned long long>(p.unreclaimed),
                       p.active_threads);
          first_sample = false;
        }
        std::fprintf(f, "\n    ]");
        break;
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    if (!ok) {
      std::fprintf(stderr, "--json: error writing '%s'\n", path.c_str());
    }
    return ok;
  }

 private:
  struct row_t {
    std::string structure;
    std::string scheme;
    unsigned threads;
    unsigned stalled;
    unsigned producers;
    unsigned consumers;
    double mops;
    double unreclaimed;
    std::uint64_t unreclaimed_peak;
    double p50_ns;
    double p90_ns;
    double p99_ns;
    std::uint64_t max_ns;
    double lag_p50_ns;
    double lag_p99_ns;
    std::uint64_t lag_max_ns;
    smr::stats_snapshot obs;
  };

  struct timeline_t {
    std::string structure;
    std::string scheme;
    std::vector<lab::sample_point> points;
  };

  const char* figure_;
  std::uint64_t seed_;
  std::uint64_t lat_sample_;
  std::string config_;
  std::vector<row_t> rows_;
  std::vector<timeline_t> timelines_;
};

/// The paper's scheme line-up, straight from the registry (entries are in
/// plotting order). Under the LL/SC figures, schemes with a registered
/// emulated-LL/SC twin swap to it.
std::vector<std::string> matrix_lineup(const scheme_registry& reg,
                                       bool llsc) {
  std::vector<std::string> out;
  for (const scheme_registry::entry& e : reg.schemes()) {
    if (!e.caps.core_lineup) continue;
    out.push_back(llsc && !e.llsc_variant.empty() ? e.llsc_variant : e.name);
  }
  return out;
}

// The list benchmark uses a smaller key range / prefill than the map and
// trees: a 100k-key sorted list makes every operation a ~25k-node walk,
// which is why the paper's list throughput is three orders of magnitude
// below the map's. We keep the range proportional but bounded so the
// default (CI-scale) run finishes; --full restores paper scale via the
// regular flags.
void scale_for_list(cli_options& o) {
  if (o.full) return;
  if (o.key_range > 2048) o.key_range = 2048;
  if (o.prefill > 1024) o.prefill = 1024;
}

/// Workload shaped by the spec's mix (or the --mix override) and the
/// shared CLI knobs.
workload_config base_cfg(const figure_spec& spec, const cli_options& o) {
  workload_config cfg;
  if (!o.mix.empty()) {
    cfg.insert_pct = o.mix[0];
    cfg.remove_pct = o.mix[1];
    cfg.get_pct = o.mix[2];
  } else {
    cfg.insert_pct = spec.insert_pct;
    cfg.remove_pct = spec.remove_pct;
    cfg.get_pct = spec.get_pct;
  }
  cfg.duration_ms = o.duration_ms;
  cfg.repeats = o.repeats;
  cfg.key_range = o.key_range;
  cfg.prefill = o.prefill;
  cfg.seed = o.seed;
  cfg.lat_sample = o.lat_sample;
  return cfg;
}

/// Every label this figure can plot must cover every name the user asked
/// for — a typo in --schemes should fail loudly, not produce empty output.
bool validate_scheme_filter(const cli_options& o,
                            const std::vector<std::string>& labels) {
  for (const std::string& want : o.schemes) {
    bool known = false;
    for (const std::string& l : labels) {
      if (l == want) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::string valid;
      for (const std::string& l : labels) {
        if (!valid.empty()) valid += ", ";
        valid += l;
      }
      std::fprintf(stderr,
                   "unknown scheme '%s' for this figure; valid here: %s\n",
                   want.c_str(), valid.c_str());
      return false;
    }
  }
  return true;
}

int run_matrix(const figure_spec& spec, const cli_options& o,
               figure_sink& sink) {
  const scheme_registry& reg = scheme_registry::instance();

  std::vector<std::string> labels = matrix_lineup(reg, spec.llsc);
  // The line-up is only the default plot order: any other registered scheme
  // (e.g. the Hyaline(dwcas) head-policy variant) runs on demand when named
  // in --schemes. Exception: on LL/SC figures a scheme whose emulated-LL/SC
  // twin replaced it in the line-up is NOT appendable under its base name —
  // silently measuring the packed-CAS head under the LL/SC figure tag would
  // corrupt the series; validation rejects it and lists the valid labels.
  for (const std::string& want : o.schemes) {
    if (std::find(labels.begin(), labels.end(), want) != labels.end()) {
      continue;
    }
    const scheme_registry::entry* e = reg.find(want);
    if (e == nullptr) continue;  // rejected by validation below
    if (spec.llsc && !e->llsc_variant.empty()) continue;
    labels.push_back(want);
  }
  if (!validate_scheme_filter(o, labels)) return 2;
  sink.header();

  const workload_config base = base_cfg(spec, o);

  struct srow {
    const char* structure;
    bool list_scale;
  };
  static constexpr srow kStructures[] = {{"list", true},
                                         {"bonsai", false},
                                         {"hashmap", false},
                                         {"nmtree", false}};

  for (const srow& st : kStructures) {
    cli_options so = o;
    if (st.list_scale) scale_for_list(so);
    for (const std::string& scheme : labels) {
      if (!o.scheme_enabled(scheme)) continue;
      runner_fn run = reg.runner(scheme, st.structure);
      if (run == nullptr) continue;  // HP/HE × bonsai, as in the paper
      for (unsigned t : so.threads) {
        scheme_params p;
        p.max_threads = t + base.stalled_threads;
        p.retire_shards = o.shards;
        workload_config cfg = base;
        cfg.threads = t;
        cfg.key_range = so.key_range;
        cfg.prefill = so.prefill;
        const workload_result r = run(p, cfg);
        sink.row(st.structure, scheme.c_str(), t, cfg.stalled_threads, 0, 0,
                 r);
      }
    }
  }
  return 0;
}

int run_robustness(const figure_spec& spec, const cli_options& o,
                   figure_sink& sink) {
  const scheme_registry& reg = scheme_registry::instance();
  const unsigned active = o.threads.empty() ? 4 : o.threads[0];

  /// One row per plotted series. The sweep needs a slot count that does
  /// NOT scale with the stalled-thread count, so the "ran out of slots"
  /// cliff of Figure 10a is reproducible; the adaptive series re-runs
  /// Hyaline-S with §4.3 slot-directory growth enabled.
  struct rrow {
    const char* scheme;
    const char* label;
    std::size_t max_slots;
  };
  static constexpr rrow kRows[] = {
      {"Epoch", "Epoch", 0},
      {"Hyaline", "Hyaline", 0},
      {"Hyaline-1", "Hyaline-1", 0},
      {"Hyaline-S", "Hyaline-S", 0},
      {"Hyaline-S", "Hyaline-S(adaptive)", 4096},
      {"Hyaline-1S", "Hyaline-1S", 0},
      {"IBR", "IBR", 0},
      {"HE", "HE", 0},
      {"HP", "HP", 0},
  };

  std::vector<std::string> labels;
  for (const rrow& r : kRows) labels.push_back(r.label);
  if (!validate_scheme_filter(o, labels)) return 2;
  sink.header();

  const std::size_t fixed_slots = std::bit_ceil(std::size_t{active}) * 2;
  for (unsigned stalled : o.stalled) {
    for (const rrow& row : kRows) {
      if (!o.scheme_enabled(row.label)) continue;
      workload_config cfg = base_cfg(spec, o);
      cfg.threads = active;
      cfg.stalled_threads = stalled;
      scheme_params p;
      p.max_threads = active + stalled;
      p.retire_shards = o.shards;
      p.slots = fixed_slots;
      p.max_slots = row.max_slots;   // 0 = capped; §4.3 growth otherwise
      p.ack_threshold = 512;  // scaled to short runs (paper: 8192 over 10 s)
      runner_fn run = reg.runner(row.scheme, "hashmap");
      if (run == nullptr) {  // stale row table vs registry rename
        std::fprintf(stderr, "skipping %s: no hashmap runner registered\n",
                     row.label);
        continue;
      }
      const workload_result r = run(p, cfg);
      sink.row("hashmap", row.label, active, stalled, 0, 0, r);
    }
  }
  return 0;
}

int run_trim(const figure_spec& spec, const cli_options& o,
             figure_sink& sink) {
  const scheme_registry& reg = scheme_registry::instance();

  struct trow {
    const char* scheme;
    bool use_trim;
    const char* label;
  };
  static constexpr trow kRows[] = {
      {"Hyaline", true, "Hyaline(trim)"},
      {"Hyaline-S", true, "Hyaline-S(trim)"},
      {"Hyaline", false, "Hyaline"},
      {"Hyaline-S", false, "Hyaline-S"},
  };

  std::vector<std::string> labels;
  for (const trow& r : kRows) labels.push_back(r.label);
  if (!validate_scheme_filter(o, labels)) return 2;
  sink.header();

  for (const trow& row : kRows) {
    // Accept the exact label or the bare scheme name in --schemes.
    if (!o.scheme_enabled(row.label) && !o.scheme_enabled(row.scheme)) {
      continue;
    }
    for (unsigned t : o.threads) {
      workload_config cfg = base_cfg(spec, o);
      cfg.threads = t;
      cfg.use_trim = row.use_trim;
      scheme_params p;
      p.max_threads = t;
      p.retire_shards = o.shards;
      p.slots = spec.slot_cap;
      runner_fn run = reg.runner(row.scheme, "hashmap");
      if (run == nullptr) {  // stale row table vs registry rename
        std::fprintf(stderr, "skipping %s: no hashmap runner registered\n",
                     row.label);
        continue;
      }
      const workload_result r = run(p, cfg);
      sink.row("hashmap", row.label, t, 0, 0, 0, r);
    }
  }
  return 0;
}

/// Container sweep: both containers × the scheme line-up × the
/// (producers, consumers) pairs. Every data point doubles as a
/// correctness check — a broken container or scheme pairing fails the
/// conservation ledger or leaks, and the binary exits non-zero instead of
/// emitting a plausible-looking row.
int run_container(const figure_spec& spec, const cli_options& o,
                  figure_sink& sink) {
  const scheme_registry& reg = scheme_registry::instance();

  // Default line-up: the paper's nine. Containers run under every
  // registered scheme, so any other name (the head-policy variants) is
  // appendable through --schemes.
  std::vector<std::string> labels = matrix_lineup(reg, /*llsc=*/false);
  for (const std::string& want : o.schemes) {
    if (std::find(labels.begin(), labels.end(), want) != labels.end()) {
      continue;
    }
    if (reg.find(want) != nullptr) labels.push_back(want);
  }
  if (!validate_scheme_filter(o, labels)) return 2;
  sink.header();

  const workload_config base = base_cfg(spec, o);

  static constexpr const char* kStructures[] = {"msqueue", "stack"};
  for (const char* structure : kStructures) {
    for (const std::string& scheme : labels) {
      if (!o.scheme_enabled(scheme)) continue;
      runner_fn run = reg.runner(scheme, structure);
      if (run == nullptr) continue;  // unreachable: all schemes qualify
      for (std::size_t i = 0; i < o.producers.size(); ++i) {
        workload_config cfg = base;
        cfg.producers = o.producers[i];
        cfg.consumers = o.consumers[i];
        cfg.threads = cfg.producers + cfg.consumers;
        scheme_params p;
        p.max_threads = cfg.threads;
        p.retire_shards = o.shards;
        const workload_result r = run(p, cfg);
        if (r.enqueued != r.dequeued + r.drained) {
          std::fprintf(stderr,
                       "%s x %s (%up/%uc): conservation violated — "
                       "pushed %llu != popped %llu + drained %llu\n",
                       scheme.c_str(), structure, cfg.producers,
                       cfg.consumers,
                       static_cast<unsigned long long>(r.enqueued),
                       static_cast<unsigned long long>(r.dequeued),
                       static_cast<unsigned long long>(r.drained));
          return 3;
        }
        if (r.retired != r.freed) {
          std::fprintf(stderr,
                       "%s x %s (%up/%uc): leak — retired %llu, freed "
                       "%llu after drain\n",
                       scheme.c_str(), structure, cfg.producers,
                       cfg.consumers,
                       static_cast<unsigned long long>(r.retired),
                       static_cast<unsigned long long>(r.freed));
          return 3;
        }
        sink.row(structure, scheme.c_str(), cfg.threads, 0, cfg.producers,
                 cfg.consumers, r);
      }
    }
  }
  return 0;
}

/// Robustness lab: one structure, single thread count, scheme line-up,
/// scripted faults, time-series telemetry. Every robust scheme's series
/// is recovery-checked — after the last fault clears, unreclaimed must
/// return to within 2x its pre-fault baseline (lab::check_recovery) —
/// and container runs keep the conservation/leak gates of run_container,
/// so a timeline run is a correctness check, not just a plot.
int run_timeline(const figure_spec& spec, const cli_options& o,
                 figure_sink& sink) {
  const scheme_registry& reg = scheme_registry::instance();

  // Timeline runs report the retire->free lag columns (the stall-window
  // story is exactly what lag attribution exists to show); sweeps and
  // matrix figures leave the bit off so the perf gate measures the
  // untracked path.
  obs::set_lag_tracking(true);

  const std::string structure =
      o.structure.empty() ? "hashmap" : o.structure;
  const auto kind = reg.kind_of(structure);
  if (!kind.has_value()) {
    std::string valid;
    for (const auto& s : reg.structures()) {
      if (!valid.empty()) valid += ", ";
      valid += s.name;
    }
    std::fprintf(stderr, "unknown structure '%s'; registered: %s\n",
                 structure.c_str(), valid.c_str());
    return 2;
  }
  const bool container = *kind == structure_kind::container;
  if (container && (!o.mix.empty() || o.range_set)) {
    std::fprintf(stderr,
                 "--mix/--range are set-structure options; '%s' is a "
                 "container\n",
                 structure.c_str());
    return 2;
  }

  const unsigned threads = o.threads.empty() ? 4 : o.threads[0];
  if (threads == 0) {
    std::fprintf(stderr, "timeline figures need at least 1 thread\n");
    return 2;
  }

  lab::fault_plan plan;
  if (!o.faults.empty()) {
    std::string err;
    auto parsed = lab::parse_fault_plan(o.faults, &err);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "--faults: %s\n", err.c_str());
      return 2;
    }
    plan = std::move(*parsed);
    if (!plan.validate_tids(threads, &err)) {
      std::fprintf(stderr, "--faults: %s\n", err.c_str());
      return 2;
    }
    const auto last_end = plan.last_end_ms();
    if (last_end.has_value() && *last_end >= o.duration_ms) {
      std::fprintf(stderr,
                   "--faults: the last fault clears at %.0fms but the run "
                   "ends at %ums; extend --duration so recovery is "
                   "measurable\n",
                   *last_end, o.duration_ms);
      return 2;
    }
  }

  // Line-up schemes that can drive this structure, plus any other
  // registered scheme named in --schemes (as in run_container).
  std::vector<std::string> labels;
  for (const std::string& name : matrix_lineup(reg, /*llsc=*/false)) {
    if (reg.runner(name, structure) != nullptr) labels.push_back(name);
  }
  for (const std::string& want : o.schemes) {
    if (std::find(labels.begin(), labels.end(), want) != labels.end()) {
      continue;
    }
    if (reg.runner(want, structure) != nullptr) labels.push_back(want);
  }
  if (!validate_scheme_filter(o, labels)) return 2;
  sink.header();

  int status = 0;
  for (const std::string& scheme : labels) {
    if (!o.scheme_enabled(scheme)) continue;
    workload_config cfg = base_cfg(spec, o);
    cfg.threads = threads;
    cfg.sample_ms = o.sample_ms;
    cfg.faults = plan.empty() ? nullptr : &plan;
    scheme_params p;
    p.max_threads = plan.lease_headroom(threads);
    p.retire_shards = o.shards;
    p.ack_threshold = 512;  // scaled to short runs, as in fig10a
    const workload_result r =
        reg.runner(scheme, structure)(p, cfg);
    const thread_split split =
        container ? container_split(cfg) : thread_split{};
    if (container) {
      if (r.enqueued != r.dequeued + r.drained) {
        std::fprintf(stderr,
                     "%s x %s: conservation violated — pushed %llu != "
                     "popped %llu + drained %llu\n",
                     scheme.c_str(), structure.c_str(),
                     static_cast<unsigned long long>(r.enqueued),
                     static_cast<unsigned long long>(r.dequeued),
                     static_cast<unsigned long long>(r.drained));
        return 3;
      }
      if (r.retired != r.freed) {
        std::fprintf(stderr,
                     "%s x %s: leak — retired %llu, freed %llu after "
                     "drain\n",
                     scheme.c_str(), structure.c_str(),
                     static_cast<unsigned long long>(r.retired),
                     static_cast<unsigned long long>(r.freed));
        return 3;
      }
    }
    sink.row(structure.c_str(), scheme.c_str(), threads, 0,
             split.producers, split.consumers, r);
    sink.add_timeline(structure.c_str(), scheme.c_str(), r.timeline);

    const scheme_registry::entry* e = reg.find(scheme);
    const auto last_end = plan.last_end_ms();
    if (e != nullptr && e->caps.robust && !plan.empty() &&
        last_end.has_value()) {
      const lab::recovery_verdict v = lab::check_recovery(
          r.timeline, plan.first_start_ms(), *last_end, o.duration_ms);
      if (!v.checked) {
        std::fprintf(stderr, "%s x %s: recovery unchecked: %s\n",
                     scheme.c_str(), structure.c_str(), v.why_unchecked);
      } else if (!v.recovered) {
        std::fprintf(stderr,
                     "%s x %s: FAILED to recover — unreclaimed settled at "
                     "%.1f after the faults vs pre-fault baseline %.1f "
                     "(limit %.1f)\n",
                     scheme.c_str(), structure.c_str(), v.post, v.baseline,
                     v.limit);
        status = 4;
      }
    }
  }
  return status;
}

}  // namespace

/// Declared in figures.hpp; set-only knobs on a container figure — or the
/// container split on a set figure — are rejected loudly, never silently
/// ignored. Container runs also resolve the (producers, consumers) pair
/// list here: explicit lists are zipped, a singleton broadcasts, the
/// figure's defaults fill the gaps.
bool validate_kind_options(const figure_spec& spec, cli_options& o) {
  if (!o.mutate.empty() || !o.counterexample.empty()) {
    std::fprintf(stderr,
                 "--mutate/--counterexample only apply to the "
                 "linearizability oracle binary (check)\n");
    return false;
  }
  if (spec.kind != figure_kind::service && o.service_flag_set()) {
    std::fprintf(stderr,
                 "--svc-shards/--tenants/--rate/--skew/--arrival/"
                 "--tenant-script/--slo/--churn only apply to the service "
                 "scenario (fig_service)\n");
    return false;
  }
  if (spec.kind != figure_kind::timeline &&
      (!o.faults.empty() || !o.structure.empty())) {
    std::fprintf(stderr,
                 "--faults/--structure only apply to timeline figures "
                 "(fig_timeline); service runs script disturbances with "
                 "--tenant-script\n");
    return false;
  }
  if (spec.kind != figure_kind::timeline &&
      spec.kind != figure_kind::service && o.sample_ms_set) {
    std::fprintf(stderr,
                 "--sample-ms only applies to timeline and service "
                 "figures\n");
    return false;
  }
  if (spec.kind != figure_kind::service && !o.metrics.empty()) {
    std::fprintf(stderr,
                 "--metrics only applies to the service scenario "
                 "(fig_service); figure runs export counters through "
                 "--json and --trace\n");
    return false;
  }
  if (spec.kind == figure_kind::service) {
    if (o.lat_sample_set) {
      std::fprintf(stderr,
                   "--lat-sample applies to the sampled workload loops; "
                   "the service scenario times every paced op "
                   "(coordinated-omission-safe) and takes no sampling "
                   "period\n");
      return false;
    }
    if (o.threads_set || !o.stalled.empty() || !o.producers.empty() ||
        !o.consumers.empty()) {
      std::fprintf(stderr,
                   "service figures size the swarm with --tenants; stalls "
                   "and misbehavior come from --tenant-script\n");
      return false;
    }
    if (o.full || o.repeats != 1) {
      std::fprintf(stderr,
                   "service figures run one timed swarm per scheme (the "
                   "time series cannot average across repeats); scale with "
                   "--duration/--rate/--tenants instead of "
                   "--repeats/--full\n");
      return false;
    }
    if (!o.sample_ms_set) o.sample_ms = spec.default_sample_ms;
    return true;
  }
  if (spec.kind == figure_kind::timeline) {
    if (!o.producers.empty() || !o.consumers.empty() || !o.stalled.empty()) {
      std::fprintf(stderr,
                   "timeline figures take --threads (the split is derived "
                   "for containers) and --faults; use "
                   "'--faults stall:TID@0+inf' instead of --stalled\n");
      return false;
    }
    if (o.full || o.repeats != 1) {
      std::fprintf(stderr,
                   "timeline figures run a single repetition (the time "
                   "series cannot average across repeats); set --duration "
                   "instead of --repeats/--full\n");
      return false;
    }
    if (o.threads.size() > 1) {
      std::fprintf(stderr,
                   "timeline figures take a single --threads value\n");
      return false;
    }
    if (!o.sample_ms_set) o.sample_ms = spec.default_sample_ms;
    return true;
  }
  if (spec.kind != figure_kind::container) {
    if (!o.producers.empty() || !o.consumers.empty()) {
      std::fprintf(stderr,
                   "--producers/--consumers only apply to container "
                   "figures (fig_queue)\n");
      return false;
    }
    return true;
  }
  if (!o.mix.empty() || o.range_set || o.threads_set || !o.stalled.empty()) {
    std::fprintf(stderr,
                 "--mix/--range/--threads/--stalled are set-structure "
                 "options; container figures take --producers/--consumers "
                 "(plus --prefill/--duration/--repeats)\n");
    return false;
  }
  if (o.producers.empty() && o.consumers.empty()) {
    o.producers = spec.default_producers;
    o.consumers = spec.default_consumers;
  }
  if (o.producers.empty()) o.producers = o.consumers;
  if (o.consumers.empty()) o.consumers = o.producers;
  if (o.producers.size() != o.consumers.size()) {
    if (o.producers.size() == 1) {
      o.producers.assign(o.consumers.size(), o.producers[0]);
    } else if (o.consumers.size() == 1) {
      o.consumers.assign(o.producers.size(), o.consumers[0]);
    } else {
      std::fprintf(stderr,
                   "--producers and --consumers must be the same length "
                   "(or one a singleton to broadcast); got %zu vs %zu\n",
                   o.producers.size(), o.consumers.size());
      return false;
    }
  }
  for (std::size_t i = 0; i < o.producers.size(); ++i) {
    if (o.producers[i] == 0 && o.consumers[i] == 0) {
      std::fprintf(stderr,
                   "sweep point %zu has 0 producers and 0 consumers\n", i);
      return false;
    }
  }
  // Dedupe repeated (producers, consumers) pairs, same rationale as the
  // --threads/--schemes dedupe in parse_cli: a duplicate sweep point
  // would silently emit an identical series point twice.
  std::vector<std::pair<unsigned, unsigned>> unique;
  for (std::size_t i = 0; i < o.producers.size(); ++i) {
    const std::pair<unsigned, unsigned> pc{o.producers[i], o.consumers[i]};
    if (std::find(unique.begin(), unique.end(), pc) != unique.end()) {
      std::fprintf(stderr,
                   "--producers/--consumers: ignoring duplicate sweep "
                   "point %u,%u\n",
                   pc.first, pc.second);
    } else {
      unique.push_back(pc);
    }
  }
  o.producers.clear();
  o.consumers.clear();
  for (const auto& [p, c] : unique) {
    o.producers.push_back(p);
    o.consumers.push_back(c);
  }
  return true;
}

namespace {

void append_list(std::string& s, const char* key,
                 const std::vector<unsigned>& v) {
  s += "\"";
  s += key;
  s += "\": [";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) s += ", ";
    s += std::to_string(v[i]);
  }
  s += "], ";
}

/// The resolved run configuration as the inner text of a JSON object —
/// the --json metadata block that makes a trajectory file self-describing
/// (without it, reproducing a series means reverse-engineering which CLI
/// flags produced it).
std::string config_json(const figure_spec& spec, const cli_options& o) {
  const workload_config base = base_cfg(spec, o);
  // Whether this run's workload is container-shaped (no key_range/mix):
  // the container figure kind, or a timeline over a container structure.
  const std::string tl_structure =
      o.structure.empty() ? "hashmap" : o.structure;
  const bool timeline = spec.kind == figure_kind::timeline;
  const bool container =
      spec.kind == figure_kind::container ||
      (timeline && scheme_registry::instance().kind_of(tl_structure) ==
                       structure_kind::container);
  std::string s;
  if (timeline) {
    // Timeline runs name their one structure, thread count, fault
    // schedule and cadence. The spec grammar has no quote/backslash
    // characters, so the string embeds verbatim.
    s += "\"structure\": \"" + tl_structure + "\", ";
    s += "\"threads\": " +
         std::to_string(o.threads.empty() ? 4 : o.threads[0]) + ", ";
    s += "\"faults\": \"" + o.faults + "\", ";
    s += "\"sample_ms\": " + std::to_string(o.sample_ms) + ", ";
  } else if (container) {
    s += "\"structure_kind\": \"container\", ";
    append_list(s, "producers", o.producers);
    append_list(s, "consumers", o.consumers);
  } else {
    s += "\"structure_kind\": \"set\", ";
    append_list(s, "threads", o.threads);
    append_list(s, "stalled", o.stalled);
  }
  if (!container) {
    s += "\"mix\": {\"insert\": " + std::to_string(base.insert_pct) +
         ", \"remove\": " + std::to_string(base.remove_pct) +
         ", \"get\": " + std::to_string(base.get_pct) + "}, ";
    s += "\"key_range\": " + std::to_string(base.key_range) + ", ";
    // Matrix figures cap the list series' range/prefill (scale_for_list);
    // record the override or the metadata would misdescribe that series.
    cli_options scaled = o;
    scale_for_list(scaled);
    if (spec.kind == figure_kind::matrix &&
        (scaled.key_range != o.key_range || scaled.prefill != o.prefill)) {
      s += "\"list_scale\": {\"key_range\": " +
           std::to_string(scaled.key_range) +
           ", \"prefill\": " + std::to_string(scaled.prefill) + "}, ";
    }
  }
  s += "\"prefill\": " + std::to_string(base.prefill) + ", ";
  s += "\"duration_ms\": " + std::to_string(base.duration_ms) + ", ";
  s += "\"repeats\": " + std::to_string(base.repeats) + ", ";
  s += "\"sample_every\": " + std::to_string(base.sample_every) + ", ";
  s += "\"lat_sample\": " + std::to_string(base.lat_sample) + ", ";
  s += "\"seed\": " + std::to_string(base.seed) + ", ";
  s += "\"retire_shards\": " + std::to_string(o.shards) + ", ";
  // Build/machine stamp: revision, compiler, CPU — the fields that decide
  // whether two trajectory files are comparable at all.
  s += provenance_json();
  return s;
}

}  // namespace

int run_figure(const figure_spec& spec, int argc, char** argv) {
  cli_options defaults;
  defaults.threads = spec.default_threads;
  defaults.stalled = spec.default_stalled;
  if (spec.default_duration_ms != 0) {
    defaults.duration_ms = spec.default_duration_ms;
  }
  cli_options o = parse_cli(argc, argv, defaults);
  if (!validate_kind_options(spec, o)) return 2;
  figure_sink sink(spec.name, o.seed, o.lat_sample);
  sink.set_config(config_json(spec, o));
  // Tracing flips on before any domain exists and exports after the last
  // worker joined — the rings are only ever read quiescent.
  if (!o.trace.empty()) obs::set_tracing(true);
  int status = 2;
  switch (spec.kind) {
    case figure_kind::matrix:
      status = run_matrix(spec, o, sink);
      break;
    case figure_kind::robustness:
      status = run_robustness(spec, o, sink);
      break;
    case figure_kind::trim:
      status = run_trim(spec, o, sink);
      break;
    case figure_kind::container:
      status = run_container(spec, o, sink);
      break;
    case figure_kind::timeline:
      status = run_timeline(spec, o, sink);
      break;
    case figure_kind::service:
      // The service scenario's scheme matrix is template-instantiated in
      // svc/matrix.cpp with its own CSV shape and SLO gate; it cannot run
      // through the registry-driven sink here.
      std::fprintf(stderr,
                   "service figures run through bench/fig_service, not "
                   "run_figure\n");
      break;
  }
  // A failed recovery check (status 4) still writes the JSON: the series
  // showing WHY the check failed is exactly what a CI debugger needs.
  if ((status == 0 || status == 4) && !o.json.empty() &&
      !sink.write_json(o.json)) {
    status = 2;
  }
  // Same rule for the event trace — a failed run's trace is the debugging
  // artifact, so only a write error downgrades the status.
  if ((status == 0 || status == 4) && !o.trace.empty()) {
    std::string err;
    if (!obs::write_chrome_trace(o.trace, &err)) {
      std::fprintf(stderr, "--trace: %s\n", err.c_str());
      status = 2;
    }
  }
  return status;
}

}  // namespace hyaline::harness
