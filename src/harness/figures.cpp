#include "harness/figures.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "harness/registry.hpp"

namespace hyaline::harness {
namespace {

/// Collects every data point of a figure run and mirrors it to the CSV
/// stream, so the same run can be written out as a machine-readable JSON
/// trajectory file (--json): per-(structure, scheme) series of throughput
/// and unreclaimed-node counts.
class figure_sink {
 public:
  explicit figure_sink(const char* figure) : figure_(figure) {}

  /// Emit the CSV header. Called by the figure runners only after the
  /// --schemes filter validated, so a rejected filter produces no stdout
  /// (scripts may capture stdout straight into a .csv).
  void header() { print_csv_header(figure_); }

  void row(const char* structure, const char* scheme, unsigned threads,
           unsigned stalled, const workload_result& r) {
    print_csv_row(figure_, structure, scheme, threads, stalled, r.mops,
                  r.unreclaimed_avg);
    rows_.push_back(
        {structure, scheme, threads, stalled, r.mops, r.unreclaimed_avg});
  }

  /// Group the rows into per-(structure, scheme) series and write them as
  /// JSON. Returns false (with a message on stderr) if the file cannot be
  /// written.
  bool write_json(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "--json: cannot open '%s' for writing\n",
                   path.c_str());
      return false;
    }
    // Series keys in first-appearance order; rows from interleaved sweeps
    // (the robustness figure iterates stalled counts outermost) regroup
    // cleanly.
    std::vector<std::pair<std::string, std::string>> keys;
    for (const row_t& r : rows_) {
      std::pair<std::string, std::string> k{r.structure, r.scheme};
      if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
        keys.push_back(k);
      }
    }
    std::fprintf(f, "{\n  \"figure\": \"%s\",\n  \"series\": [", figure_);
    bool first_series = true;
    for (const auto& [structure, scheme] : keys) {
      std::fprintf(f, "%s\n    {\"structure\": \"%s\", \"scheme\": \"%s\",",
                   first_series ? "" : ",", structure.c_str(),
                   scheme.c_str());
      first_series = false;
      std::fprintf(f, " \"points\": [");
      bool first_point = true;
      for (const row_t& r : rows_) {
        if (r.structure != structure || r.scheme != scheme) continue;
        std::fprintf(f,
                     "%s\n      {\"threads\": %u, \"stalled\": %u, "
                     "\"mops\": %.6f, \"unreclaimed\": %.3f}",
                     first_point ? "" : ",", r.threads, r.stalled, r.mops,
                     r.unreclaimed);
        first_point = false;
      }
      std::fprintf(f, "\n    ]}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    if (!ok) {
      std::fprintf(stderr, "--json: error writing '%s'\n", path.c_str());
    }
    return ok;
  }

 private:
  struct row_t {
    std::string structure;
    std::string scheme;
    unsigned threads;
    unsigned stalled;
    double mops;
    double unreclaimed;
  };

  const char* figure_;
  std::vector<row_t> rows_;
};

/// The paper's scheme line-up, straight from the registry (entries are in
/// plotting order). Under the LL/SC figures, schemes with a registered
/// emulated-LL/SC twin swap to it.
std::vector<std::string> matrix_lineup(const scheme_registry& reg,
                                       bool llsc) {
  std::vector<std::string> out;
  for (const scheme_registry::entry& e : reg.schemes()) {
    if (!e.caps.core_lineup) continue;
    out.push_back(llsc && !e.llsc_variant.empty() ? e.llsc_variant : e.name);
  }
  return out;
}

// The list benchmark uses a smaller key range / prefill than the map and
// trees: a 100k-key sorted list makes every operation a ~25k-node walk,
// which is why the paper's list throughput is three orders of magnitude
// below the map's. We keep the range proportional but bounded so the
// default (CI-scale) run finishes; --full restores paper scale via the
// regular flags.
void scale_for_list(cli_options& o) {
  if (o.full) return;
  if (o.key_range > 2048) o.key_range = 2048;
  if (o.prefill > 1024) o.prefill = 1024;
}

/// Workload shaped by the spec's mix (or the --mix override) and the
/// shared CLI knobs.
workload_config base_cfg(const figure_spec& spec, const cli_options& o) {
  workload_config cfg;
  if (!o.mix.empty()) {
    cfg.insert_pct = o.mix[0];
    cfg.remove_pct = o.mix[1];
    cfg.get_pct = o.mix[2];
  } else {
    cfg.insert_pct = spec.insert_pct;
    cfg.remove_pct = spec.remove_pct;
    cfg.get_pct = spec.get_pct;
  }
  cfg.duration_ms = o.duration_ms;
  cfg.repeats = o.repeats;
  cfg.key_range = o.key_range;
  cfg.prefill = o.prefill;
  return cfg;
}

/// Every label this figure can plot must cover every name the user asked
/// for — a typo in --schemes should fail loudly, not produce empty output.
bool validate_scheme_filter(const cli_options& o,
                            const std::vector<std::string>& labels) {
  for (const std::string& want : o.schemes) {
    bool known = false;
    for (const std::string& l : labels) {
      if (l == want) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::string valid;
      for (const std::string& l : labels) {
        if (!valid.empty()) valid += ", ";
        valid += l;
      }
      std::fprintf(stderr,
                   "unknown scheme '%s' for this figure; valid here: %s\n",
                   want.c_str(), valid.c_str());
      return false;
    }
  }
  return true;
}

int run_matrix(const figure_spec& spec, const cli_options& o,
               figure_sink& sink) {
  const scheme_registry& reg = scheme_registry::instance();

  std::vector<std::string> labels = matrix_lineup(reg, spec.llsc);
  // The line-up is only the default plot order: any other registered scheme
  // (e.g. the Hyaline(dwcas) head-policy variant) runs on demand when named
  // in --schemes. Exception: on LL/SC figures a scheme whose emulated-LL/SC
  // twin replaced it in the line-up is NOT appendable under its base name —
  // silently measuring the packed-CAS head under the LL/SC figure tag would
  // corrupt the series; validation rejects it and lists the valid labels.
  for (const std::string& want : o.schemes) {
    if (std::find(labels.begin(), labels.end(), want) != labels.end()) {
      continue;
    }
    const scheme_registry::entry* e = reg.find(want);
    if (e == nullptr) continue;  // rejected by validation below
    if (spec.llsc && !e->llsc_variant.empty()) continue;
    labels.push_back(want);
  }
  if (!validate_scheme_filter(o, labels)) return 2;
  sink.header();

  const workload_config base = base_cfg(spec, o);

  struct srow {
    const char* structure;
    bool list_scale;
  };
  static constexpr srow kStructures[] = {{"list", true},
                                         {"bonsai", false},
                                         {"hashmap", false},
                                         {"nmtree", false}};

  for (const srow& st : kStructures) {
    cli_options so = o;
    if (st.list_scale) scale_for_list(so);
    for (const std::string& scheme : labels) {
      if (!o.scheme_enabled(scheme)) continue;
      runner_fn run = reg.runner(scheme, st.structure);
      if (run == nullptr) continue;  // HP/HE × bonsai, as in the paper
      for (unsigned t : so.threads) {
        scheme_params p;
        p.max_threads = t + base.stalled_threads;
        workload_config cfg = base;
        cfg.threads = t;
        cfg.key_range = so.key_range;
        cfg.prefill = so.prefill;
        const workload_result r = run(p, cfg);
        sink.row(st.structure, scheme.c_str(), t, cfg.stalled_threads, r);
      }
    }
  }
  return 0;
}

int run_robustness(const figure_spec& spec, const cli_options& o,
                   figure_sink& sink) {
  const scheme_registry& reg = scheme_registry::instance();
  const unsigned active = o.threads.empty() ? 4 : o.threads[0];

  /// One row per plotted series. The sweep needs a slot count that does
  /// NOT scale with the stalled-thread count, so the "ran out of slots"
  /// cliff of Figure 10a is reproducible; the adaptive series re-runs
  /// Hyaline-S with §4.3 slot-directory growth enabled.
  struct rrow {
    const char* scheme;
    const char* label;
    std::size_t max_slots;
  };
  static constexpr rrow kRows[] = {
      {"Epoch", "Epoch", 0},
      {"Hyaline", "Hyaline", 0},
      {"Hyaline-1", "Hyaline-1", 0},
      {"Hyaline-S", "Hyaline-S", 0},
      {"Hyaline-S", "Hyaline-S(adaptive)", 4096},
      {"Hyaline-1S", "Hyaline-1S", 0},
      {"IBR", "IBR", 0},
      {"HE", "HE", 0},
      {"HP", "HP", 0},
  };

  std::vector<std::string> labels;
  for (const rrow& r : kRows) labels.push_back(r.label);
  if (!validate_scheme_filter(o, labels)) return 2;
  sink.header();

  const std::size_t fixed_slots = std::bit_ceil(std::size_t{active}) * 2;
  for (unsigned stalled : o.stalled) {
    for (const rrow& row : kRows) {
      if (!o.scheme_enabled(row.label)) continue;
      workload_config cfg = base_cfg(spec, o);
      cfg.threads = active;
      cfg.stalled_threads = stalled;
      scheme_params p;
      p.max_threads = active + stalled;
      p.slots = fixed_slots;
      p.max_slots = row.max_slots;   // 0 = capped; §4.3 growth otherwise
      p.ack_threshold = 512;  // scaled to short runs (paper: 8192 over 10 s)
      runner_fn run = reg.runner(row.scheme, "hashmap");
      if (run == nullptr) {  // stale row table vs registry rename
        std::fprintf(stderr, "skipping %s: no hashmap runner registered\n",
                     row.label);
        continue;
      }
      const workload_result r = run(p, cfg);
      sink.row("hashmap", row.label, active, stalled, r);
    }
  }
  return 0;
}

int run_trim(const figure_spec& spec, const cli_options& o,
             figure_sink& sink) {
  const scheme_registry& reg = scheme_registry::instance();

  struct trow {
    const char* scheme;
    bool use_trim;
    const char* label;
  };
  static constexpr trow kRows[] = {
      {"Hyaline", true, "Hyaline(trim)"},
      {"Hyaline-S", true, "Hyaline-S(trim)"},
      {"Hyaline", false, "Hyaline"},
      {"Hyaline-S", false, "Hyaline-S"},
  };

  std::vector<std::string> labels;
  for (const trow& r : kRows) labels.push_back(r.label);
  if (!validate_scheme_filter(o, labels)) return 2;
  sink.header();

  for (const trow& row : kRows) {
    // Accept the exact label or the bare scheme name in --schemes.
    if (!o.scheme_enabled(row.label) && !o.scheme_enabled(row.scheme)) {
      continue;
    }
    for (unsigned t : o.threads) {
      workload_config cfg = base_cfg(spec, o);
      cfg.threads = t;
      cfg.use_trim = row.use_trim;
      scheme_params p;
      p.max_threads = t;
      p.slots = spec.slot_cap;
      runner_fn run = reg.runner(row.scheme, "hashmap");
      if (run == nullptr) {  // stale row table vs registry rename
        std::fprintf(stderr, "skipping %s: no hashmap runner registered\n",
                     row.label);
        continue;
      }
      const workload_result r = run(p, cfg);
      sink.row("hashmap", row.label, t, 0, r);
    }
  }
  return 0;
}

}  // namespace

int run_figure(const figure_spec& spec, int argc, char** argv) {
  cli_options defaults;
  defaults.threads = spec.default_threads;
  defaults.stalled = spec.default_stalled;
  const cli_options o = parse_cli(argc, argv, defaults);
  figure_sink sink(spec.name);
  int status = 2;
  switch (spec.kind) {
    case figure_kind::matrix:
      status = run_matrix(spec, o, sink);
      break;
    case figure_kind::robustness:
      status = run_robustness(spec, o, sink);
      break;
    case figure_kind::trim:
      status = run_trim(spec, o, sink);
      break;
  }
  if (status == 0 && !o.json.empty() && !sink.write_json(o.json)) {
    status = 2;
  }
  return status;
}

}  // namespace hyaline::harness
