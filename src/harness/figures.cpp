#include "harness/figures.hpp"

#include "ds/bonsai_tree.hpp"
#include "ds/hm_list.hpp"
#include "ds/michael_hashmap.hpp"
#include "ds/natarajan_tree.hpp"
#include "harness/figure_runner.hpp"

namespace hyaline::harness {
namespace {

workload_config base_mix(unsigned insert_pct, unsigned remove_pct,
                         unsigned get_pct) {
  workload_config cfg;
  cfg.insert_pct = insert_pct;
  cfg.remove_pct = remove_pct;
  cfg.get_pct = get_pct;
  return cfg;
}

// The list benchmark uses a smaller key range / prefill than the map and
// trees: a 100k-key sorted list makes every operation a ~25k-node walk,
// which is why the paper's list throughput is three orders of magnitude
// below the map's. We keep the range proportional but bounded so the
// default (CI-scale) run finishes; --full restores paper scale via the
// regular flags.
void scale_for_list(cli_options& o) {
  if (o.full) return;
  if (o.key_range > 2048) o.key_range = 2048;
  if (o.prefill > 1024) o.prefill = 1024;
}

}  // namespace

void run_matrix(const char* figure, const cli_options& o, unsigned insert_pct,
                unsigned remove_pct, unsigned get_pct, bool llsc) {
  print_csv_header(figure);
  const workload_config base = base_mix(insert_pct, remove_pct, get_pct);

  cli_options list_o = o;
  scale_for_list(list_o);
  if (llsc) {
    run_llsc_schemes<ds::hm_list>(figure, "list", list_o, base, true);
    run_llsc_schemes<ds::bonsai_tree>(figure, "bonsai", o, base, false);
    run_llsc_schemes<ds::michael_hashmap>(figure, "hashmap", o, base, true);
    run_llsc_schemes<ds::natarajan_tree>(figure, "nmtree", o, base, true);
  } else {
    run_all_schemes<ds::hm_list>(figure, "list", list_o, base, true);
    run_all_schemes<ds::bonsai_tree>(figure, "bonsai", o, base, false);
    run_all_schemes<ds::michael_hashmap>(figure, "hashmap", o, base, true);
    run_all_schemes<ds::natarajan_tree>(figure, "nmtree", o, base, true);
  }
}

namespace {

/// One robustness data point with explicit scheme parameters (the sweep
/// needs a slot count that does NOT scale with the stalled-thread count,
/// so the "ran out of slots" cliff of Figure 10a is reproducible).
template <class D>
void run_robustness_point(const char* figure, const char* label,
                          const cli_options& o, const scheme_params& p,
                          const workload_config& base) {
  if (!o.scheme_enabled(label)) return;
  auto dom = scheme_traits<D>::make(p);
  ds::michael_hashmap<D> s(*dom);
  workload_config cfg = base;
  cfg.duration_ms = o.duration_ms;
  cfg.repeats = o.repeats;
  cfg.key_range = o.key_range;
  cfg.prefill = o.prefill;
  const workload_result r = run_workload(*dom, s, cfg);
  print_csv_row(figure, "hashmap", label, cfg.threads, cfg.stalled_threads,
                r.mops, r.unreclaimed_avg);
}

}  // namespace

void run_robustness(const char* figure, const cli_options& o,
                    unsigned active_threads) {
  print_csv_header(figure);
  const std::size_t fixed_slots =
      std::bit_ceil(std::size_t{active_threads}) * 2;
  for (unsigned stalled : o.stalled) {
    workload_config base = base_mix(50, 50, 0);
    base.threads = active_threads;
    base.stalled_threads = stalled;
    scheme_params p;
    p.max_threads = active_threads + stalled;
    p.slots = fixed_slots;
    p.ack_threshold = 512;  // scaled to short runs (paper: 8192 over 10 s)

    run_robustness_point<smr::ebr_domain>(figure, "Epoch", o, p, base);
    run_robustness_point<domain>(figure, "Hyaline", o, p, base);
    run_robustness_point<domain_1>(figure, "Hyaline-1", o, p, base);
    run_robustness_point<domain_s>(figure, "Hyaline-S", o, p, base);
    scheme_params ap = p;
    ap.max_slots = 4096;  // §4.3 adaptive growth enabled
    run_robustness_point<domain_s>(figure, "Hyaline-S(adaptive)", o, ap,
                                   base);
    run_robustness_point<domain_1s>(figure, "Hyaline-1S", o, p, base);
    run_robustness_point<smr::ibr_domain>(figure, "IBR", o, p, base);
    run_robustness_point<smr::he_domain>(figure, "HE", o, p, base);
    run_robustness_point<smr::hp_domain>(figure, "HP", o, p, base);
  }
}

namespace {

template <class D>
void run_trim_scheme(const char* figure, const cli_options& o,
                     std::size_t slot_cap, bool use_trim) {
  const std::string label =
      std::string(scheme_traits<D>::name) + (use_trim ? "(trim)" : "");
  if (!o.scheme_enabled(label) && !o.scheme_enabled(scheme_traits<D>::name))
    return;
  for (unsigned t : o.threads) {
    scheme_params p;
    p.max_threads = t;
    p.slots = slot_cap;
    auto dom = scheme_traits<D>::make(p);
    ds::michael_hashmap<D> s(*dom);
    workload_config cfg;
    cfg.insert_pct = 50;
    cfg.remove_pct = 50;
    cfg.get_pct = 0;
    cfg.threads = t;
    cfg.use_trim = use_trim;
    cfg.duration_ms = o.duration_ms;
    cfg.repeats = o.repeats;
    cfg.key_range = o.key_range;
    cfg.prefill = o.prefill;
    const workload_result r = run_workload(*dom, s, cfg);
    print_csv_row(figure, "hashmap", label.c_str(), t, 0, r.mops,
                  r.unreclaimed_avg);
  }
}

}  // namespace

void run_trim(const char* figure, const cli_options& o,
              std::size_t slot_cap) {
  print_csv_header(figure);
  run_trim_scheme<domain>(figure, o, slot_cap, /*use_trim=*/true);
  run_trim_scheme<domain_s>(figure, o, slot_cap, /*use_trim=*/true);
  run_trim_scheme<domain>(figure, o, slot_cap, /*use_trim=*/false);
  run_trim_scheme<domain_s>(figure, o, slot_cap, /*use_trim=*/false);
}

}  // namespace hyaline::harness
