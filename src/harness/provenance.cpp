#include "harness/provenance.hpp"

#include <cstdio>
#include <cstring>
#include <thread>

#ifndef HYALINE_GIT_SHA
#define HYALINE_GIT_SHA "unknown"
#endif

namespace hyaline::harness {
namespace {

std::string compiler_id() {
  std::string s;
#if defined(__clang__)
  s = "clang ";
#elif defined(__GNUC__)
  s = "gcc ";
#else
  s = "cc ";
#endif
#ifdef __VERSION__
  s += __VERSION__;
#else
  s += "unknown";
#endif
  return s;
}

std::string cpu_model_name() {
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f == nullptr) return "unknown";
  char line[512];
  std::string model = "unknown";
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "model name", 10) != 0) continue;
    const char* colon = std::strchr(line, ':');
    if (colon == nullptr) break;
    ++colon;
    while (*colon == ' ' || *colon == '\t') ++colon;
    model = colon;
    while (!model.empty() &&
           (model.back() == '\n' || model.back() == '\r')) {
      model.pop_back();
    }
    break;
  }
  std::fclose(f);
  return model;
}

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        // Other control characters never appear in compiler/CPU strings;
        // drop them rather than emit invalid JSON if one ever does.
        if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
  }
  return out;
}

}  // namespace

const provenance& build_provenance() {
  static const provenance p = [] {
    provenance v;
    v.git_sha = HYALINE_GIT_SHA;
    v.compiler = compiler_id();
    v.cpu_model = cpu_model_name();
    const unsigned hw = std::thread::hardware_concurrency();
    v.hw_threads = hw == 0 ? 1 : hw;
    return v;
  }();
  return p;
}

std::string provenance_json() {
  const provenance& p = build_provenance();
  std::string s = "\"provenance\": {";
  s += "\"git_sha\": \"" + json_escape(p.git_sha) + "\", ";
  s += "\"compiler\": \"" + json_escape(p.compiler) + "\", ";
  s += "\"cpu_model\": \"" + json_escape(p.cpu_model) + "\", ";
  s += "\"hw_threads\": " + std::to_string(p.hw_threads);
  s += "}";
  return s;
}

}  // namespace hyaline::harness
