#include "obs/metrics.hpp"

#include <cinttypes>
#include <cstdio>

#include "lab/telemetry.hpp"

namespace hyaline::obs {
namespace {

/// The plain counters, one exposition block each: a pointer-to-member
/// table keeps the HELP/TYPE text and the per-series sample lines in one
/// place instead of nine copy-pasted loops.
struct counter_field {
  const char* name;
  const char* help;
  std::uint64_t smr::stats_snapshot::* field;
};

constexpr counter_field kCounters[] = {
    {"smr_allocated_total", "Nodes allocated through the domain.",
     &smr::stats_snapshot::allocated},
    {"smr_retired_total", "Nodes passed to retire().",
     &smr::stats_snapshot::retired},
    {"smr_freed_total", "Nodes reclaimed (destructor run).",
     &smr::stats_snapshot::freed},
    {"smr_scans_total", "Reclamation passes over a retired set.",
     &smr::stats_snapshot::scans},
    {"smr_steals_total", "Scans of a neighbour's retired shard.",
     &smr::stats_snapshot::steals},
    {"smr_rearms_total", "Adaptive rescan-point resets.",
     &smr::stats_snapshot::rearms},
    {"smr_batch_finalizes_total", "Hyaline batch finalizations.",
     &smr::stats_snapshot::finalizes},
    {"smr_era_advances_total", "Global era/epoch advances.",
     &smr::stats_snapshot::era_advances},
    {"smr_tid_acquires_total", "Slow-path thread-id pool checkouts.",
     &smr::stats_snapshot::tid_acquires},
};

}  // namespace

bool write_prometheus(const std::string& path,
                      const std::vector<metric_series>& series,
                      std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (err != nullptr) *err = "cannot open '" + path + "' for writing";
    return false;
  }

  for (const counter_field& c : kCounters) {
    std::fprintf(f, "# HELP %s %s\n# TYPE %s counter\n", c.name, c.help,
                 c.name);
    for (const metric_series& s : series) {
      std::fprintf(f, "%s{scheme=\"%s\"} %" PRIu64 "\n", c.name,
                   s.scheme.c_str(), s.snap.*(c.field));
    }
  }

  // Retire->free lag as a cumulative-le histogram. The bucket bounds are
  // the inclusive upper edges of the log2 buckets shared with
  // lab::latency_histogram; trailing all-zero buckets are elided (the
  // +Inf line carries the total). _sum is approximated from bucket
  // midpoints — the recorder keeps counts, not a running sum — which is
  // within the 2x bucket resolution any le-histogram consumer already
  // accepts.
  std::fprintf(f,
               "# HELP smr_retire_free_lag_ns Retire->free lag per "
               "reclaimed node (zero unless the run enabled lag "
               "tracking); _sum approximated from bucket midpoints.\n"
               "# TYPE smr_retire_free_lag_ns histogram\n");
  for (const metric_series& s : series) {
    unsigned top = 0;
    for (unsigned b = 0; b < smr::lag_counters::kBuckets; ++b) {
      if (s.snap.lag_bucket[b] != 0) top = b;
    }
    std::uint64_t cum = 0;
    double sum = 0;
    for (unsigned b = 0; b <= top; ++b) {
      cum += s.snap.lag_bucket[b];
      const double lo =
          static_cast<double>(lab::latency_histogram::bucket_lo(b));
      const double hi =
          static_cast<double>(lab::latency_histogram::bucket_hi(b));
      sum += static_cast<double>(s.snap.lag_bucket[b]) * (lo + hi) / 2.0;
      if (s.snap.lag_bucket[b] == 0 && b != top) continue;
      std::fprintf(f,
                   "smr_retire_free_lag_ns_bucket{scheme=\"%s\",le=\"%" PRIu64
                   "\"} %" PRIu64 "\n",
                   s.scheme.c_str(), lab::latency_histogram::bucket_hi(b),
                   cum);
    }
    std::fprintf(f,
                 "smr_retire_free_lag_ns_bucket{scheme=\"%s\",le=\"+Inf\"} "
                 "%" PRIu64 "\n",
                 s.scheme.c_str(), s.snap.lag_count);
    std::fprintf(f, "smr_retire_free_lag_ns_sum{scheme=\"%s\"} %.0f\n",
                 s.scheme.c_str(), sum);
    std::fprintf(f, "smr_retire_free_lag_ns_count{scheme=\"%s\"} %" PRIu64 "\n",
                 s.scheme.c_str(), s.snap.lag_count);
  }

  std::fprintf(f,
               "# HELP smr_retire_free_lag_max_ns Exact maximum "
               "retire->free lag observed.\n"
               "# TYPE smr_retire_free_lag_max_ns gauge\n");
  for (const metric_series& s : series) {
    std::fprintf(f, "smr_retire_free_lag_max_ns{scheme=\"%s\"} %" PRIu64 "\n",
                 s.scheme.c_str(), s.snap.lag_max_ns);
  }

  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok && err != nullptr) *err = "error writing '" + path + "'";
  return ok;
}

}  // namespace hyaline::obs
