#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>

#include "check/history.hpp"

#if defined(__linux__) || defined(__APPLE__)
#include <pthread.h>
#define HYALINE_HAS_PTHREAD_NAMES 1
#endif

namespace hyaline::obs {

namespace {

constexpr std::size_t kDefaultCapacity = 8192;  // 192 KiB per thread

/// One thread's ring. Owned by the collector (stable address, survives
/// thread exit); written only by its owner thread, read by snapshot /
/// export after the owner quiesces or joins.
struct ring {
  std::vector<record> buf;  // size = capacity (power of two)
  std::uint64_t head = 0;   // total records ever emitted
  unsigned tid = 0;
  char name[32] = {};
};

struct collector {
  std::mutex mu;
  std::vector<std::unique_ptr<ring>> rings;
  std::size_t capacity = kDefaultCapacity;
};

collector& the_collector() {
  static collector c;
  return c;
}

thread_local ring* tls_ring = nullptr;
thread_local char tls_name[32] = {};

/// Calibrated once per process, on the first enable. With the
/// steady_clock fallback ticks already are nanoseconds (ratio 1.0).
double& tick_ratio_storage() {
  static double r = 1.0;
  return r;
}

void calibrate_clock() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (!check::detail::use_tsc()) return;  // ratio stays 1.0
    // Two-point measurement against steady_clock over a short sleep; a
    // few ms is enough for three significant digits, which is plenty for
    // microsecond-resolution trace export.
    const std::uint64_t t0 = __builtin_ia32_rdtsc();
    const std::uint64_t n0 = check::detail::steady_ns();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const std::uint64_t t1 = __builtin_ia32_rdtsc();
    const std::uint64_t n1 = check::detail::steady_ns();
    if (t1 > t0 && n1 > n0) {
      tick_ratio_storage() =
          static_cast<double>(t1 - t0) / static_cast<double>(n1 - n0);
    }
  });
}

ring* register_ring() {
  collector& c = the_collector();
  auto r = std::make_unique<ring>();
  {
    std::lock_guard<std::mutex> lk(c.mu);
    r->buf.resize(c.capacity);
    r->tid = static_cast<unsigned>(c.rings.size());
    if (tls_name[0] != '\0') {
      std::snprintf(r->name, sizeof(r->name), "%s", tls_name);
    } else {
#ifdef HYALINE_HAS_PTHREAD_NAMES
      pthread_getname_np(pthread_self(), r->name, sizeof(r->name));
#endif
    }
    c.rings.push_back(std::move(r));
    tls_ring = c.rings.back().get();
  }
  return tls_ring;
}

void set_flag(std::uint32_t bit, bool on) {
  if (on) {
    calibrate_clock();
    detail::g_flags.fetch_or(bit, std::memory_order_relaxed);
  } else {
    detail::g_flags.fetch_and(~bit, std::memory_order_relaxed);
  }
}

/// JSON string escaping for thread names (conservative ASCII subset).
void write_escaped(std::FILE* f, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char ch = static_cast<unsigned char>(*s);
    if (ch == '"' || ch == '\\') {
      std::fputc('\\', f);
      std::fputc(ch, f);
    } else if (ch < 0x20 || ch > 0x7e) {
      std::fprintf(f, "\\u%04x", ch);
    } else {
      std::fputc(ch, f);
    }
  }
}

}  // namespace

namespace detail {

void emit_slow(event ev, std::uint64_t arg) noexcept {
  ring* r = tls_ring;
  if (r == nullptr) r = register_ring();
  record& slot = r->buf[r->head & (r->buf.size() - 1)];
  slot.ts = now_ticks();
  slot.arg = arg;
  slot.ev = static_cast<std::uint32_t>(ev);
  ++r->head;
}

}  // namespace detail

std::uint64_t now_ticks() noexcept {
  if (check::detail::use_tsc()) return __builtin_ia32_rdtsc();
  return check::detail::steady_ns();
}

std::uint64_t ticks_to_ns(std::uint64_t ticks) noexcept {
  const double r = tick_ratio_storage();
  if (r == 1.0) return ticks;
  return static_cast<std::uint64_t>(static_cast<double>(ticks) / r);
}

void set_tracing(bool on) { set_flag(detail::kTraceBit, on); }

void set_lag_tracking(bool on) { set_flag(detail::kLagBit, on); }

void set_ring_capacity(std::size_t records) {
  collector& c = the_collector();
  std::lock_guard<std::mutex> lk(c.mu);
  std::size_t cap = 1;
  while (cap < records) cap <<= 1;
  c.capacity = cap;
}

void reset() {
  detail::g_flags.store(0, std::memory_order_relaxed);
  collector& c = the_collector();
  std::lock_guard<std::mutex> lk(c.mu);
  // Rings must not be destroyed — exited threads' TLS pointers are gone,
  // but a *live* thread still caches its ring pointer. Clearing in place
  // keeps every cached pointer valid.
  for (auto& r : c.rings) r->head = 0;
  tls_ring = nullptr;  // calling thread re-registers on next emit
}

void name_thread(const char* name) {
  std::snprintf(tls_name, sizeof(tls_name), "%s", name);
#ifdef HYALINE_HAS_PTHREAD_NAMES
  char short_name[16];  // pthread_setname_np caps names at 15 chars + NUL
  std::snprintf(short_name, sizeof(short_name), "%s", name);
#if defined(__APPLE__)
  pthread_setname_np(short_name);
#else
  pthread_setname_np(pthread_self(), short_name);
#endif
#endif
  if (tls_ring != nullptr) {
    std::snprintf(tls_ring->name, sizeof(tls_ring->name), "%s", name);
  }
}

std::vector<thread_trace> snapshot() {
  collector& c = the_collector();
  std::lock_guard<std::mutex> lk(c.mu);
  std::vector<thread_trace> out;
  out.reserve(c.rings.size());
  for (const auto& r : c.rings) {
    thread_trace t;
    t.tid = r->tid;
    t.name = r->name;
    t.emitted = r->head;
    const std::uint64_t cap = r->buf.size();
    t.dropped = r->head > cap ? r->head - cap : 0;
    const std::uint64_t n = r->head < cap ? r->head : cap;
    t.records.reserve(n);
    // Oldest-first: the ring index of the oldest surviving record is
    // head - n (mod capacity).
    for (std::uint64_t i = r->head - n; i < r->head; ++i) {
      t.records.push_back(r->buf[i & (cap - 1)]);
    }
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<record> merged_records() {
  std::vector<record> all;
  for (const thread_trace& t : snapshot()) {
    all.insert(all.end(), t.records.begin(), t.records.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const record& a, const record& b) { return a.ts < b.ts; });
  return all;
}

clock_info clock() {
  calibrate_clock();
  return {check::detail::use_tsc(), tick_ratio_storage()};
}

const char* event_name(event ev) {
  switch (ev) {
    case event::guard_enter: return "guard";
    case event::guard_exit: return "guard";
    case event::retire: return "retire";
    case event::scan_begin: return "scan";
    case event::scan_end: return "scan";
    case event::shard_steal: return "shard_steal";
    case event::batch_finalize: return "batch_finalize";
    case event::free_node: return "free";
    case event::era_advance: return "era_advance";
    case event::slab_remote_drain: return "slab_remote_drain";
    case event::stall_begin: return "stall";
    case event::stall_end: return "stall";
    case event::count_: break;
  }
  return "unknown";
}

bool write_chrome_trace(const std::string& path, std::string* err) {
  const std::vector<thread_trace> rings = snapshot();
  const clock_info ci = clock();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (err != nullptr) *err = "cannot open " + path + " for writing";
    return false;
  }

  // Global time origin: the earliest surviving timestamp.
  std::uint64_t t0 = ~std::uint64_t{0};
  for (const thread_trace& t : rings) {
    for (const record& r : t.records) t0 = std::min(t0, r.ts);
  }
  if (t0 == ~std::uint64_t{0}) t0 = 0;
  const auto to_us = [&](std::uint64_t ts) {
    return static_cast<double>(ticks_to_ns(ts - t0)) / 1000.0;
  };

  std::fputs("{\"traceEvents\":[\n", f);
  bool first = true;
  const auto comma = [&] {
    if (!first) std::fputs(",\n", f);
    first = false;
  };

  // Metadata: process name plus one thread_name record per ring.
  comma();
  std::fputs(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"hyaline\"}}",
      f);
  for (const thread_trace& t : rings) {
    comma();
    std::fprintf(f,
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                 "\"tid\":%u,\"args\":{\"name\":\"",
                 t.tid);
    write_escaped(f, t.name.empty() ? "worker" : t.name.c_str());
    std::fputs("\"}}", f);
  }

  for (const thread_trace& t : rings) {
    // Pairing depth per duration kind, so an end whose begin was
    // overwritten degrades to an instant instead of corrupting nesting.
    int depth_guard = 0;
    int depth_scan = 0;
    int depth_stall = 0;
    const auto depth_of = [&](event e) -> int* {
      switch (e) {
        case event::guard_enter:
        case event::guard_exit: return &depth_guard;
        case event::scan_begin:
        case event::scan_end: return &depth_scan;
        case event::stall_begin:
        case event::stall_end: return &depth_stall;
        default: return nullptr;
      }
    };
    for (const record& r : t.records) {
      const event e = static_cast<event>(r.ev);
      const char* name = event_name(e);
      const bool is_begin = e == event::guard_enter ||
                            e == event::scan_begin || e == event::stall_begin;
      const bool is_end = e == event::guard_exit || e == event::scan_end ||
                          e == event::stall_end;
      comma();
      if (is_begin) {
        ++*depth_of(e);
        std::fprintf(f,
                     "{\"name\":\"%s\",\"ph\":\"B\",\"ts\":%.3f,\"pid\":1,"
                     "\"tid\":%u,\"args\":{\"arg\":%llu}}",
                     name, to_us(r.ts), t.tid,
                     static_cast<unsigned long long>(r.arg));
      } else if (is_end) {
        int* depth = depth_of(e);
        if (*depth > 0) {
          --*depth;
          std::fprintf(f,
                       "{\"name\":\"%s\",\"ph\":\"E\",\"ts\":%.3f,\"pid\":1,"
                       "\"tid\":%u,\"args\":{\"arg\":%llu}}",
                       name, to_us(r.ts), t.tid,
                       static_cast<unsigned long long>(r.arg));
        } else {
          // Orphan end (its begin was overwritten): degrade to instant.
          std::fprintf(f,
                       "{\"name\":\"%s_end\",\"ph\":\"i\",\"s\":\"t\","
                       "\"ts\":%.3f,\"pid\":1,\"tid\":%u}",
                       name, to_us(r.ts), t.tid);
        }
      } else {
        std::fprintf(f,
                     "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,"
                     "\"pid\":1,\"tid\":%u,\"args\":{\"arg\":%llu}}",
                     name, to_us(r.ts), t.tid,
                     static_cast<unsigned long long>(r.arg));
      }
    }
    // Close slices left open at snapshot time so Perfetto renders them.
    std::uint64_t last_ts = t.records.empty() ? t0 : t.records.back().ts;
    for (int* depth : {&depth_guard, &depth_scan, &depth_stall}) {
      while (*depth > 0) {
        --*depth;
        comma();
        std::fprintf(f, "{\"ph\":\"E\",\"ts\":%.3f,\"pid\":1,\"tid\":%u}",
                     to_us(last_ts), t.tid);
      }
    }
  }

  std::fputs("\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{", f);
  std::fprintf(f, "\"clock\":\"%s\",\"ticks_per_ns\":%.6f,\"threads\":[",
               ci.tsc ? "tsc" : "steady", ci.ticks_per_ns);
  for (std::size_t i = 0; i < rings.size(); ++i) {
    const thread_trace& t = rings[i];
    std::fprintf(f, "%s{\"tid\":%u,\"name\":\"", i == 0 ? "" : ",", t.tid);
    write_escaped(f, t.name.c_str());
    std::fprintf(f, "\",\"emitted\":%llu,\"dropped\":%llu}",
                 static_cast<unsigned long long>(t.emitted),
                 static_cast<unsigned long long>(t.dropped));
  }
  std::fputs("]}}\n", f);

  const bool ok = std::fflush(f) == 0 && std::ferror(f) == 0;
  std::fclose(f);
  if (!ok && err != nullptr) *err = "write failed for " + path;
  return ok;
}

}  // namespace hyaline::obs
