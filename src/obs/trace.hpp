// SMR-internals event tracer: compile-always, zero-overhead-when-off.
//
// Every scheme and core primitive calls `obs::emit(event, arg)` at its
// interesting moments (guard enter/exit, retire, scan begin/end, shard
// steal, batch finalize, free, era advance, slab remote-drain, fault-lab
// stall windows). The off path — the only path benchmarks ever take — is
// one relaxed load of a global flag word plus a predicted-not-taken
// branch; `bench_diff` against the committed trajectory proves the cost
// is below noise (see README "Observability").
//
// When tracing is on, records land in per-thread ring buffers of
// fixed-width 24-byte records stamped with the same TSC clock the
// linearizability histories use (check/history.hpp; steady_clock fallback
// on machines without a synchronized TSC). Memory is bounded: each ring
// overwrites its oldest record once full, and the per-thread drop count
// (emitted - capacity) is reported in the exported trace metadata.
// Export is Chrome trace-event JSON (load in Perfetto or
// chrome://tracing): paired events (guard/scan/stall) become duration
// slices, everything else instants.
//
// The same flag word carries a second, independent bit: retire->free lag
// tracking. When on, retire paths stamp `reclaimable::obs_retire_ticks`
// and free paths feed the tick delta into the domain's lag histogram
// (smr/stats.hpp). Figure drivers that report lag columns enable it;
// `bench/sweep` never does, so the trajectory gate also proves this seam
// free when off.
//
// Layering: this header is a leaf — it includes only the standard
// library, so smr/core headers can include it without cycles. The clock
// plumbing (TSC detection via check/history.hpp) lives in trace.cpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hyaline::obs {

/// Event taxonomy. Values are stable within one trace file (the exported
/// JSON spells names, not numbers), so reordering is safe across PRs.
enum class event : std::uint32_t {
  guard_enter = 0,    // pair-begin: critical section entered
  guard_exit,         // pair-end
  retire,             // arg = node address
  scan_begin,         // pair-begin: reclamation scan over a retired set
  scan_end,           // pair-end:   arg = nodes freed by the scan
  shard_steal,        // arg = shard index stolen from
  batch_finalize,     // arg = batch size (Hyaline family)
  free_node,          // arg = node address
  era_advance,        // arg = new era value
  slab_remote_drain,  // arg = blocks drained from the remote MPSC stack
  stall_begin,        // pair-begin: fault-lab stall window, arg = tid
  stall_end,          // pair-end:   arg = tid
  count_              // sentinel
};

/// One ring-buffer record: fixed width, no pointers chased at emit time.
struct record {
  std::uint64_t ts;   // ticks (TSC or steady ns; see clock())
  std::uint64_t arg;  // event-specific payload
  std::uint32_t ev;   // event enum value
  std::uint32_t pad_ = 0;
};
static_assert(sizeof(record) == 24, "records are fixed-width by contract");

namespace detail {

inline constexpr std::uint32_t kTraceBit = 1u;
inline constexpr std::uint32_t kLagBit = 2u;

/// The one word the off path reads. Relaxed everywhere: enable/disable
/// happens on quiescent boundaries (figure drivers flip it before threads
/// start and export after they join), not as synchronization.
inline std::atomic<std::uint32_t> g_flags{0};

void emit_slow(event ev, std::uint64_t arg) noexcept;

}  // namespace detail

inline bool tracing() noexcept {
  return (detail::g_flags.load(std::memory_order_relaxed) &
          detail::kTraceBit) != 0;
}

inline bool lag_tracking() noexcept {
  return (detail::g_flags.load(std::memory_order_relaxed) &
          detail::kLagBit) != 0;
}

/// The hot-path seam. Off: one relaxed load + predicted branch, no call.
inline void emit(event ev, std::uint64_t arg = 0) noexcept {
  if (tracing()) [[unlikely]] detail::emit_slow(ev, arg);
}

/// Current timestamp in clock ticks (TSC when the kernel reports a
/// synchronized TSC, steady_clock ns otherwise). Only meaningful to call
/// on an enabled path — the off path never reads the clock.
std::uint64_t now_ticks() noexcept;

/// Convert a tick delta to nanoseconds using the calibrated frequency
/// (ratio 1.0 under the steady_clock fallback).
std::uint64_t ticks_to_ns(std::uint64_t ticks) noexcept;

void set_tracing(bool on);
void set_lag_tracking(bool on);

/// Ring capacity in records per thread (rounded up to a power of two).
/// Takes effect for rings registered after the call; set before enabling.
void set_ring_capacity(std::size_t records);

/// Test hook: disable everything and discard all rings.
void reset();

/// Name the calling thread: forwarded to pthread_setname_np (15-char
/// limit applies there) and recorded as the thread's label in trace
/// metadata. Safe to call with tracing off.
void name_thread(const char* name);

/// Snapshot of one thread's ring, oldest record first.
struct thread_trace {
  unsigned tid = 0;          // trace-local sequential id
  std::string name;          // pthread name at registration (may be empty)
  std::uint64_t emitted = 0;  // total records emitted by this thread
  std::uint64_t dropped = 0;  // emitted - capacity when the ring wrapped
  std::vector<record> records;
};

/// Copy out every registered ring. Caller must ensure emitting threads
/// are quiescent (the drivers snapshot after joining workers).
std::vector<thread_trace> snapshot();

/// All rings merged into one timeline ordered by timestamp.
std::vector<record> merged_records();

struct clock_info {
  bool tsc = false;          // TSC ticks vs steady_clock ns
  double ticks_per_ns = 1.0;  // calibrated frequency (1.0 for steady)
};
clock_info clock();

const char* event_name(event ev);

/// Export every ring as Chrome trace-event JSON (Perfetto-loadable).
/// Metadata carries thread names, per-thread drop counters, and the
/// clock calibration. Returns false with *err set on I/O failure.
bool write_chrome_trace(const std::string& path, std::string* err);

}  // namespace hyaline::obs
