// Prometheus-style text export of the SMR domain counters.
//
// The service scenario (`fig_service --metrics <path>`) writes one
// snapshot at end of run: the alloc/retire/free ledgers and mechanism
// event counters as `counter` samples labelled by scheme, plus the
// retire->free lag histogram in the cumulative-`le` bucket encoding
// (bucket bounds are the log2 upper edges of smr::lag_counters, so a
// scrape of two runs diffs cleanly). This is a point-in-time file, not a
// live exporter — the goal is that the numbers a dashboard would want
// already exist in the standard exposition format.
#pragma once

#include <string>
#include <vector>

#include "smr/stats.hpp"

namespace hyaline::obs {

/// One labelled snapshot (a scheme's accumulated counters).
struct metric_series {
  std::string scheme;
  smr::stats_snapshot snap;
};

/// Write every series to `path` in Prometheus text exposition format.
/// Returns false with *err set on I/O failure.
bool write_prometheus(const std::string& path,
                      const std::vector<metric_series>& series,
                      std::string* err);

}  // namespace hyaline::obs
