// Capability tags every reclamation scheme advertises at compile time.
//
// API v1 spread these restrictions across informal channels: a
// `needs_clean_edges` boolean some schemes defined and others did not,
// hand-maintained scheme lists in the harness registry, and comments in
// the data-structure headers ("HP/HE cannot run Bonsai"). API v2 promotes
// them to one `smr::caps` value per scheme — `D::caps` — that the runtime
// registry, the `Domain` concept, the data structures' static_asserts, and
// the tests all consume, so an illegal (scheme, structure) pairing fails
// at compile time instead of corrupting memory at run time.
#pragma once

namespace hyaline::smr {

/// What a scheme can (and cannot) do. The paper's taxonomy (§2, Table 1):
struct caps {
  /// protect() publishes pointer addresses into leased hazard slots (HP,
  /// HE). Incompatible with snapshot traversal (Bonsai): an unbounded
  /// snapshot cannot be pointer-protected, exactly as the paper's figures
  /// omit HP/HE from the Bonsai plots.
  bool pointer_publication = false;

  /// A stalled thread pins only a bounded number of retired nodes (HP, HE,
  /// IBR, Hyaline-S, Hyaline-1S).
  bool robust = false;

  /// Per-access reservations prove nothing about nodes reached through
  /// frozen (flagged/tagged/marked) edges, so traversals must help pending
  /// deletions and restart instead of crossing them (see
  /// ds/natarajan_tree.hpp). Implied by every robust scheme here; false
  /// for guard-lifetime schemes (Leaky, EBR, basic Hyaline, Hyaline-1),
  /// which pin everything retired while the guard is live. Structures with
  /// deferred unlinking (Harris's original list) additionally require this
  /// to be false (§2.4).
  bool needs_clean_edges = false;

  /// guard::trim() reclaims without leaving (Hyaline family, §3.3).
  bool supports_trim = false;

  /// Guard entry/exit may be amortized over short op bursts: the scheme's
  /// semantics allow a reservation (epoch, interval, or slot choice) to
  /// linger across consecutive guards on one thread without violating its
  /// safety argument — a lingering reservation is indistinguishable from
  /// one long-lived guard (EBR, IBR) or is a pure placement hint (Hyaline
  /// slot choice). Pointer-publication schemes (HP, HE) publish per-access
  /// state instead and gain nothing from entry amortization.
  bool burst_entry = false;
};

/// Upper bound on simultaneously live protection handles per guard.
/// Pointer-publication schemes lease from a finite per-thread slot array
/// and expose `D::max_hazards`; every other scheme protects through the
/// guard (or an era reservation) itself and reports "unlimited". Data
/// structures static_assert their peak handle count against this at
/// instantiation — the replacement for v1's scattered `hazards_needed`
/// constants and hand-numbered protect(idx, ...) calls.
template <class D>
inline constexpr unsigned max_hazards_v = [] {
  if constexpr (requires { D::max_hazards; }) {
    return unsigned{D::max_hazards};
  } else {
    return ~0u;
  }
}();

}  // namespace hyaline::smr
