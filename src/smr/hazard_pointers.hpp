// Hazard Pointers (HP) baseline — Michael [26].
//
// Per-thread array of hazard slots; `protect` publishes the (untagged)
// pointer and validates by re-reading the source. Retired nodes collect in
// a per-thread list; once the list exceeds the scan threshold, the thread
// snapshots all hazards and frees every retired node not present in the
// snapshot. Robust (a stalled thread pins at most its own K hazards) but
// pays a store+fence per pointer acquisition — the slowness the paper's
// figures show.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/align.hpp"
#include "common/tagged_ptr.hpp"
#include "smr/core/node_alloc.hpp"
#include "smr/core/retired_batch.hpp"
#include "smr/core/thread_registry.hpp"
#include "smr/stats.hpp"

namespace hyaline::smr {

/// Tuning knobs for the HP domain.
struct hp_config {
  unsigned max_threads = 144;
  unsigned hazards_per_thread = 8;
  /// Scan when a thread's retired list reaches this size (0 = auto:
  /// 2 * max_threads * hazards_per_thread, the classic H·R rule).
  std::size_t scan_threshold = 0;
};

class hp_domain {
 public:
  /// protect() publishes per-access reservations: data structures must only
  /// traverse edges whose re-read value is clean (untagged) — a frozen
  /// (flagged/tagged) edge validates forever and proves nothing about the
  /// target's retirement (see ds/natarajan_tree.hpp).
  static constexpr bool needs_clean_edges = true;

  struct node : core::hooked_alloc {
    node* next = nullptr;
  };

  using free_fn_t = void (*)(node*);

  explicit hp_domain(hp_config cfg = {})
      : cfg_(cfg), recs_(cfg.max_threads) {
    if (cfg_.scan_threshold == 0) {
      cfg_.scan_threshold =
          2 * std::size_t{cfg_.max_threads} * cfg_.hazards_per_thread;
    }
    for (rec& r : recs_) {
      r.hazards.reset(new std::atomic<void*>[cfg_.hazards_per_thread]{});
    }
  }

  explicit hp_domain(unsigned max_threads)
      : hp_domain(hp_config{max_threads, 8, 0}) {}

  ~hp_domain() { drain(); }

  hp_domain(const hp_domain&) = delete;
  hp_domain& operator=(const hp_domain&) = delete;

  void set_free_fn(free_fn_t fn) { free_fn_ = fn; }
  void on_alloc(node*) { stats_->on_alloc(); }
  stats& counters() { return *stats_; }
  const stats& counters() const { return *stats_; }

  class guard {
   public:
    guard(hp_domain& dom, unsigned tid) : dom_(dom), tid_(tid) {
      assert(tid < dom.recs_.size());
    }

    ~guard() {
      // Clear this thread's hazards (leave).
      rec& r = dom_.recs_[tid_];
      for (unsigned i = 0; i < dom_.cfg_.hazards_per_thread; ++i) {
        r.hazards[i].store(nullptr, std::memory_order_release);
      }
    }

    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;

    /// Publish-and-validate loop. The published value is stripped of tag
    /// bits so it compares equal to the pointer later passed to retire().
    template <class T>
    T* protect(unsigned idx, const std::atomic<T*>& src) {
      assert(idx < dom_.cfg_.hazards_per_thread);
      std::atomic<void*>& hp = dom_.recs_[tid_].hazards[idx];
      T* p = src.load(std::memory_order_acquire);
      for (;;) {
        hp.store(untag(p), std::memory_order_seq_cst);
        T* q = src.load(std::memory_order_seq_cst);
        if (q == p) return p;
        p = q;
      }
    }

    void retire(node* n) { dom_.retire(tid_, n); }

   private:
    hp_domain& dom_;
    unsigned tid_;
  };

  /// Quiescent-state cleanup: with all hazards clear, one scan per thread
  /// frees everything.
  void drain() {
    for (unsigned t = 0; t < recs_.size(); ++t) scan(t);
  }

 private:
  struct alignas(cache_line_size) rec {
    std::unique_ptr<std::atomic<void*>[]> hazards;
    core::retired_list<node> retired;  // owner-thread private
  };

  void retire(unsigned tid, node* n) {
    stats_->on_retire();
    rec& r = recs_[tid];
    if (r.retired.push(n, cfg_.scan_threshold)) {
      scan(tid);
      r.retired.rearm(cfg_.scan_threshold);
    }
  }

  void scan(unsigned tid) {
    std::vector<void*> snapshot;
    snapshot.reserve(std::size_t{recs_.size()} * cfg_.hazards_per_thread);
    for (const rec& r : recs_) {
      for (unsigned i = 0; i < cfg_.hazards_per_thread; ++i) {
        void* h = r.hazards[i].load(std::memory_order_seq_cst);
        if (h != nullptr) snapshot.push_back(h);
      }
    }
    std::sort(snapshot.begin(), snapshot.end());

    recs_[tid].retired.scan(
        [&snapshot](const node* n) {
          return !std::binary_search(snapshot.begin(), snapshot.end(),
                                     static_cast<const void*>(n));
        },
        [this](node* n) {
          free_fn_(n);
          stats_->on_free();
        });
  }

  static void default_free(node* n) { delete n; }

  hp_config cfg_;
  core::thread_registry<rec> recs_;
  free_fn_t free_fn_ = &default_free;
  padded_stats stats_;
};

}  // namespace hyaline::smr
