// Hazard Pointers (HP) baseline — Michael [26].
//
// Per-thread array of hazard slots; `protect` leases a slot from the
// guard, publishes the (untagged) pointer, validates by re-reading the
// source, and returns an RAII handle that clears the slot when it dies.
// Retired nodes collect in a per-thread list; once the list exceeds the
// scan threshold, the thread snapshots all hazards and frees every retired
// node not present in the snapshot. Robust (a stalled thread pins at most
// its own K hazards) but pays a store+fence per pointer acquisition — the
// slowness the paper's figures show.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/align.hpp"
#include "common/tagged_ptr.hpp"
#include "obs/trace.hpp"
#include "smr/caps.hpp"
#include "smr/core/node_alloc.hpp"
#include "smr/core/retired_batch.hpp"
#include "smr/core/thread_registry.hpp"
#include "smr/protected_ptr.hpp"
#include "smr/stats.hpp"

namespace hyaline::smr {

/// Tuning knobs for the HP domain.
struct hp_config {
  unsigned max_threads = 144;
  /// Scan when a thread's retired list reaches this size (0 = auto:
  /// 2 * max_threads * max_hazards, the classic H·R rule).
  std::size_t scan_threshold = 0;
  /// Retired-node sharding (see ebr_config::retire_shards). 0 = classic
  /// per-thread lists. Hazard publication stays per-thread either way —
  /// only the retired-node lists (and hence who reclaims them) shard.
  unsigned retire_shards = 0;
};

class hp_domain {
 public:
  /// protect() publishes per-access reservations: data structures must only
  /// traverse edges whose re-read value is clean (untagged) — a frozen
  /// (flagged/tagged) edge validates forever and proves nothing about the
  /// target's retirement (see ds/natarajan_tree.hpp).
  static constexpr smr::caps caps{.pointer_publication = true,
                                  .robust = true,
                                  .needs_clean_edges = true};

  /// Hazard slots per guard; the most protection handles that may be live
  /// at once. Structures static_assert their peak against this.
  static constexpr unsigned max_hazards = 8;

  struct node : core::reclaimable {
    node* next = nullptr;
  };

  class guard;

  template <class T>
  using protected_ptr = slot_handle<guard, T>;

  explicit hp_domain(hp_config cfg = {})
      : cfg_(validated(cfg)), recs_(cfg_.max_threads) {
    if (cfg_.scan_threshold == 0) {
      cfg_.scan_threshold = 2 * std::size_t{cfg_.max_threads} * max_hazards;
    }
    if (cfg_.retire_shards != 0) {
      sharded_ =
          std::make_unique<core::sharded_retire<node>>(cfg_.retire_shards);
      sharded_->attach(&stats_->events);
    }
    recs_.pool()->attach(&stats_->events);
    for (rec& r : recs_) r.retired.attach(&stats_->events);
  }

  explicit hp_domain(unsigned max_threads)
      : hp_domain(hp_config{max_threads, 0}) {}

  ~hp_domain() { drain(); }

  hp_domain(const hp_domain&) = delete;
  hp_domain& operator=(const hp_domain&) = delete;

  void on_alloc(node*) { stats_->on_alloc(); }
  stats& counters() { return *stats_; }
  const stats& counters() const { return *stats_; }

  class guard {
   public:
    explicit guard(hp_domain& dom) : dom_(dom), lease_(dom.recs_.pool()) {
      obs::emit(obs::event::guard_enter, lease_.tid());
    }

    ~guard() {
      obs::emit(obs::event::guard_exit, lease_.tid());
      // Clear still-leased hazards (leave). Handles self-clear their slot
      // on release, so the leased mask — and this loop — is normally
      // empty: the common guard exit writes nothing to the hazard array.
      unsigned mask = slots_.leased_mask();
      if (mask == 0) return;
      rec& r = dom_.recs_[lease_.tid()];
      do {
        const unsigned i = static_cast<unsigned>(std::countr_zero(mask));
        r.hazards[i].store(nullptr, std::memory_order_release);
        mask &= mask - 1;
      } while (mask != 0);
    }

    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;

    /// Publish-and-validate loop in a freshly leased slot. The published
    /// value is stripped of tag bits so it compares equal to the pointer
    /// later passed to retire().
    template <class T>
    slot_handle<guard, T> protect(const std::atomic<T*>& src) {
      const unsigned idx = slots_.lease("hp_domain");
      std::atomic<void*>& hp = dom_.recs_[lease_.tid()].hazards[idx];
      T* p = src.load(std::memory_order_acquire);
      for (;;) {
        // seq_cst: the classic HP store-load pairing — the hazard
        // publication must precede the validating re-read of `src` in the
        // single total order, and pair with hazard_snapshot's scan;
        // release/acquire would let the re-read float above the store.
        hp.store(untag(p), std::memory_order_seq_cst);
        // seq_cst: the validating re-read half of the pairing above.
        T* q = src.load(std::memory_order_seq_cst);
        if (q == p) return {this, idx, p};
        p = q;
      }
    }

    template <class T>
    void retire(T* n) {
      n->smr_dtor = core::dtor_thunk<T>();
      dom_.retire(lease_.tid(), static_cast<node*>(n));
    }

    /// Internal: slot_handle check-in (clear the hazard, return the slot).
    void release_protection_slot(unsigned idx) {
      dom_.recs_[lease_.tid()].hazards[idx].store(
          nullptr, std::memory_order_release);
      slots_.unlease(idx);
    }

   private:
    hp_domain& dom_;
    core::tid_lease lease_;
    slot_allocator<max_hazards> slots_;
  };

  /// Quiescent-state cleanup: with all hazards clear, one scan per thread
  /// frees everything.
  void drain() {
    if (sharded_ != nullptr) {
      for (unsigned s = 0; s < sharded_->shards(); ++s) scan_shard(s);
    }
    for (unsigned t = 0; t < recs_.size(); ++t) scan(t);
  }

 private:
  static hp_config validated(hp_config cfg) {
    if (cfg.max_threads == 0) {
      throw std::invalid_argument("hp_config: max_threads must be nonzero");
    }
    return cfg;
  }

  struct alignas(cache_line_size) rec {
    std::atomic<void*> hazards[max_hazards] = {};
    core::retired_list<node> retired;  // owner-thread private
  };

  void retire(unsigned tid, node* n) {
    stats_->stamp_retire(n);
    obs::emit(obs::event::retire, reinterpret_cast<std::uintptr_t>(n));
    if (sharded_ != nullptr) {
      const unsigned s = sharded_->shard_of(tid);
      if (sharded_->push(s, n, cfg_.scan_threshold)) {
        scan_shard(s);
        const unsigned nb = (s + 1) % sharded_->shards();
        if (nb != s && sharded_->hot(nb, cfg_.scan_threshold)) {
          scan_shard(nb, /*steal=*/true);
        }
      }
      return;
    }
    rec& r = recs_[tid];
    if (r.retired.push(n, cfg_.scan_threshold)) {
      scan(tid);
      r.retired.rearm(cfg_.scan_threshold);
    }
  }

  std::vector<void*> hazard_snapshot() const {
    std::vector<void*> snapshot;
    snapshot.reserve(std::size_t{recs_.size()} * max_hazards);
    for (const rec& r : recs_) {
      for (unsigned i = 0; i < max_hazards; ++i) {
        // seq_cst: Dekker pairing with protect()'s hazard publication — a
        // weaker scan load could be ordered before a concurrent publish
        // and free a node its reader has just validated.
        void* h = r.hazards[i].load(std::memory_order_seq_cst);
        if (h != nullptr) snapshot.push_back(h);
      }
    }
    std::sort(snapshot.begin(), snapshot.end());
    return snapshot;
  }

  void scan(unsigned tid) {
    std::vector<void*> snapshot = hazard_snapshot();
    recs_[tid].retired.scan(
        [&snapshot](const node* n) {
          return !std::binary_search(snapshot.begin(), snapshot.end(),
                                     static_cast<const void*>(n));
        },
        [this](node* n) { stats_->free_node(n); });
  }

  void scan_shard(unsigned s, bool steal = false) {
    std::vector<void*> snapshot = hazard_snapshot();
    sharded_->scan(
        s, cfg_.scan_threshold,
        [&snapshot](const node* n) {
          return !std::binary_search(snapshot.begin(), snapshot.end(),
                                     static_cast<const void*>(n));
        },
        [this](node* n) { stats_->free_node(n); }, steal);
  }

  hp_config cfg_;
  core::thread_registry<rec> recs_;
  std::unique_ptr<core::sharded_retire<node>> sharded_;  // null = classic
  padded_stats stats_;
};

}  // namespace hyaline::smr
