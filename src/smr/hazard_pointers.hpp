// Hazard Pointers (HP) baseline — Michael [26].
//
// Per-thread array of hazard slots; `protect` publishes the (untagged)
// pointer and validates by re-reading the source. Retired nodes collect in
// a per-thread list; once the list exceeds the scan threshold, the thread
// snapshots all hazards and frees every retired node not present in the
// snapshot. Robust (a stalled thread pins at most its own K hazards) but
// pays a store+fence per pointer acquisition — the slowness the paper's
// figures show.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/align.hpp"
#include "common/tagged_ptr.hpp"
#include "smr/stats.hpp"

namespace hyaline::smr {

/// Tuning knobs for the HP domain.
struct hp_config {
  unsigned max_threads = 144;
  unsigned hazards_per_thread = 8;
  /// Scan when a thread's retired list reaches this size (0 = auto:
  /// 2 * max_threads * hazards_per_thread, the classic H·R rule).
  std::size_t scan_threshold = 0;
};

class hp_domain {
 public:
  struct node {
    node* next = nullptr;
  };

  using free_fn_t = void (*)(node*);

  explicit hp_domain(hp_config cfg = {}) : cfg_(cfg) {
    if (cfg_.scan_threshold == 0) {
      cfg_.scan_threshold =
          2 * std::size_t{cfg_.max_threads} * cfg_.hazards_per_thread;
    }
    recs_ = new rec[cfg_.max_threads];
    for (unsigned t = 0; t < cfg_.max_threads; ++t) {
      recs_[t].hazards = new std::atomic<void*>[cfg_.hazards_per_thread] {};
    }
  }

  explicit hp_domain(unsigned max_threads)
      : hp_domain(hp_config{max_threads, 8, 0}) {}

  ~hp_domain() {
    drain();
    for (unsigned t = 0; t < cfg_.max_threads; ++t) {
      delete[] recs_[t].hazards;
    }
    delete[] recs_;
  }

  hp_domain(const hp_domain&) = delete;
  hp_domain& operator=(const hp_domain&) = delete;

  void set_free_fn(free_fn_t fn) { free_fn_ = fn; }
  void on_alloc(node*) { stats_->on_alloc(); }
  stats& counters() { return *stats_; }
  const stats& counters() const { return *stats_; }

  class guard {
   public:
    guard(hp_domain& dom, unsigned tid) : dom_(dom), tid_(tid) {
      assert(tid < dom.cfg_.max_threads);
    }

    ~guard() {
      // Clear this thread's hazards (leave).
      rec& r = dom_.recs_[tid_];
      for (unsigned i = 0; i < dom_.cfg_.hazards_per_thread; ++i) {
        r.hazards[i].store(nullptr, std::memory_order_release);
      }
    }

    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;

    /// Publish-and-validate loop. The published value is stripped of tag
    /// bits so it compares equal to the pointer later passed to retire().
    template <class T>
    T* protect(unsigned idx, const std::atomic<T*>& src) {
      assert(idx < dom_.cfg_.hazards_per_thread);
      std::atomic<void*>& hp = dom_.recs_[tid_].hazards[idx];
      T* p = src.load(std::memory_order_acquire);
      for (;;) {
        hp.store(untag(p), std::memory_order_seq_cst);
        T* q = src.load(std::memory_order_seq_cst);
        if (q == p) return p;
        p = q;
      }
    }

    void retire(node* n) { dom_.retire(tid_, n); }

   private:
    hp_domain& dom_;
    unsigned tid_;
  };

  /// Quiescent-state cleanup: with all hazards clear, one scan per thread
  /// frees everything.
  void drain() {
    for (unsigned t = 0; t < cfg_.max_threads; ++t) scan(t);
  }

 private:
  struct alignas(cache_line_size) rec {
    std::atomic<void*>* hazards = nullptr;
    node* retired_head = nullptr;  // owner-thread private
    std::size_t retired_count = 0;
    std::size_t scan_at = 0;  // adaptive: kept + threshold after each scan
  };

  void retire(unsigned tid, node* n) {
    stats_->on_retire();
    rec& r = recs_[tid];
    n->next = r.retired_head;
    r.retired_head = n;
    if (r.scan_at == 0) r.scan_at = cfg_.scan_threshold;
    // Adaptive rescan point: nodes pinned by long-lived reservations stay
    // on the list; rescanning them on a fixed period would make retire
    // O(list length). Rescan only once the list grew by a full threshold
    // beyond what the previous scan could not free.
    if (++r.retired_count >= r.scan_at) {
      scan(tid);
      // Geometric growth keeps retire amortized O(threads) even when most
      // of the list is pinned: the next scan happens only after the list
      // doubles (plus a floor of scan_threshold).
      r.scan_at = 2 * r.retired_count + cfg_.scan_threshold;
    }
  }

  void scan(unsigned tid) {
    rec& r = recs_[tid];
    std::vector<void*> snapshot;
    snapshot.reserve(std::size_t{cfg_.max_threads} *
                     cfg_.hazards_per_thread);
    for (unsigned t = 0; t < cfg_.max_threads; ++t) {
      for (unsigned i = 0; i < cfg_.hazards_per_thread; ++i) {
        void* h = recs_[t].hazards[i].load(std::memory_order_seq_cst);
        if (h != nullptr) snapshot.push_back(h);
      }
    }
    std::sort(snapshot.begin(), snapshot.end());

    node* keep = nullptr;
    std::size_t kept = 0;
    node* n = r.retired_head;
    while (n != nullptr) {
      node* nx = n->next;
      if (std::binary_search(snapshot.begin(), snapshot.end(),
                             static_cast<void*>(n))) {
        n->next = keep;
        keep = n;
        ++kept;
      } else {
        free_fn_(n);
        stats_->on_free();
      }
      n = nx;
    }
    r.retired_head = keep;
    r.retired_count = kept;
  }

  static void default_free(node* n) { delete n; }

  hp_config cfg_;
  rec* recs_ = nullptr;
  free_fn_t free_fn_ = &default_free;
  padded_stats stats_;
};

}  // namespace hyaline::smr
