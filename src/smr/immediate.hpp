// Immediate-free pseudo-domain for externally synchronized baselines.
//
// The honesty baselines (ds/locked_set.hpp, ds/locked_queue.hpp) serialize
// every operation under one std::mutex, so a removed node can never be
// referenced by a concurrent reader — retire() may free it on the spot and
// no epochs, hazards, or limbo lists are needed. This domain supplies just
// enough of the `smr::Domain` surface for those structures to plug into the
// shared harness runners (guards are empty, protect is a plain load,
// retire destroys immediately), keeping the retired/freed ledgers exact so
// the leak gates still apply.
//
// It is NOT safe for lock-free structures: nothing defers reclamation.
#pragma once

#include <atomic>

#include "obs/trace.hpp"
#include "smr/caps.hpp"
#include "smr/core/node_alloc.hpp"
#include "smr/protected_ptr.hpp"
#include "smr/stats.hpp"

namespace hyaline::smr {

class immediate_domain {
 public:
  static constexpr smr::caps caps{};

  struct node : core::reclaimable {
    node* next = nullptr;
  };

  template <class T>
  using protected_ptr = raw_handle<T>;

  explicit immediate_domain(unsigned /*max_threads*/ = 0) {}

  immediate_domain(const immediate_domain&) = delete;
  immediate_domain& operator=(const immediate_domain&) = delete;

  void on_alloc(node*) { stats_->on_alloc(); }
  stats& counters() { return *stats_; }
  const stats& counters() const { return *stats_; }

  class guard {
   public:
    explicit guard(immediate_domain& dom) : dom_(dom) {
      obs::emit(obs::event::guard_enter, 0);
    }
    ~guard() { obs::emit(obs::event::guard_exit, 0); }
    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;

    template <class T>
    raw_handle<T> protect(const std::atomic<T*>& src) {
      return raw_handle<T>(src.load(std::memory_order_acquire));
    }

    /// Caller must hold the structure's lock (no concurrent reader can
    /// still see `n`): free right now.
    template <class T>
    void retire(T* n) {
      n->smr_dtor = core::dtor_thunk<T>();
      dom_.stats_->stamp_retire(static_cast<node*>(n));
      obs::emit(obs::event::retire, reinterpret_cast<std::uintptr_t>(n));
      dom_.stats_->free_node(static_cast<node*>(n));
    }

   private:
    immediate_domain& dom_;
  };

  void drain() {}

 private:
  padded_stats stats_;
};

}  // namespace hyaline::smr
