// Hazard Eras (HE) baseline — Ramalhete & Correia [31].
//
// Reconciles EBR's speed with HP's robustness: instead of publishing
// pointer *addresses*, a thread publishes the current *era* into a hazard
// index. Every node records its birth era at allocation and its retire era
// at retirement; a retired node is freed only when no published era falls
// inside [birth, retire]. Robust: a stalled thread pins only nodes whose
// lifetime overlaps its published eras.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "common/align.hpp"
#include "smr/stats.hpp"

namespace hyaline::smr {

/// Tuning knobs for the HE domain.
struct he_config {
  unsigned max_threads = 144;
  unsigned eras_per_thread = 8;
  /// Bump the global era clock every `era_freq` allocations.
  std::uint64_t era_freq = 64;
  /// Scan this thread's retired list at this size (0 = auto).
  std::size_t scan_threshold = 0;
};

class he_domain {
 public:
  struct node {
    node* next = nullptr;
    std::uint64_t birth_era = 0;
    std::uint64_t retire_era = 0;
  };

  using free_fn_t = void (*)(node*);

  explicit he_domain(he_config cfg = {}) : cfg_(cfg) {
    if (cfg_.scan_threshold == 0) {
      cfg_.scan_threshold =
          2 * std::size_t{cfg_.max_threads} * cfg_.eras_per_thread;
    }
    recs_ = new rec[cfg_.max_threads];
    for (unsigned t = 0; t < cfg_.max_threads; ++t) {
      recs_[t].eras = new std::atomic<std::uint64_t>[cfg_.eras_per_thread] {};
    }
  }

  explicit he_domain(unsigned max_threads)
      : he_domain(he_config{max_threads, 8, 64, 0}) {}

  ~he_domain() {
    drain();
    for (unsigned t = 0; t < cfg_.max_threads; ++t) delete[] recs_[t].eras;
    delete[] recs_;
  }

  he_domain(const he_domain&) = delete;
  he_domain& operator=(const he_domain&) = delete;

  void set_free_fn(free_fn_t fn) { free_fn_ = fn; }

  void on_alloc(node* n) {
    stats_->on_alloc();
    thread_local std::uint64_t alloc_counter = 0;
    if (++alloc_counter % cfg_.era_freq == 0) {
      era_->fetch_add(1, std::memory_order_seq_cst);
    }
    n->birth_era = era_->load(std::memory_order_seq_cst);
  }

  stats& counters() { return *stats_; }
  const stats& counters() const { return *stats_; }

  class guard {
   public:
    guard(he_domain& dom, unsigned tid) : dom_(dom), tid_(tid) {
      assert(tid < dom.cfg_.max_threads);
    }

    ~guard() {
      rec& r = dom_.recs_[tid_];
      for (unsigned i = 0; i < dom_.cfg_.eras_per_thread; ++i) {
        r.eras[i].store(0, std::memory_order_release);
      }
    }

    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;

    /// HE get_protected: publish the current era in index `idx` and
    /// re-read until the era is stable across the load.
    template <class T>
    T* protect(unsigned idx, const std::atomic<T*>& src) {
      assert(idx < dom_.cfg_.eras_per_thread);
      std::atomic<std::uint64_t>& he = dom_.recs_[tid_].eras[idx];
      std::uint64_t prev = he.load(std::memory_order_relaxed);
      for (;;) {
        T* p = src.load(std::memory_order_acquire);
        const std::uint64_t e = dom_.era_->load(std::memory_order_seq_cst);
        if (e == prev) return p;
        he.store(e, std::memory_order_seq_cst);
        prev = e;
      }
    }

    void retire(node* n) { dom_.retire(tid_, n); }

   private:
    he_domain& dom_;
    unsigned tid_;
  };

  void drain() {
    for (unsigned t = 0; t < cfg_.max_threads; ++t) scan(t);
  }

  std::uint64_t debug_era() const {
    return era_->load(std::memory_order_relaxed);
  }

 private:
  struct alignas(cache_line_size) rec {
    std::atomic<std::uint64_t>* eras = nullptr;
    node* retired_head = nullptr;  // owner-thread private
    std::size_t retired_count = 0;
    std::size_t scan_at = 0;  // adaptive: kept + threshold after each scan
  };

  void retire(unsigned tid, node* n) {
    stats_->on_retire();
    n->retire_era = era_->load(std::memory_order_seq_cst);
    rec& r = recs_[tid];
    n->next = r.retired_head;
    r.retired_head = n;
    if (r.scan_at == 0) r.scan_at = cfg_.scan_threshold;
    // Adaptive rescan point: nodes pinned by long-lived reservations stay
    // on the list; rescanning them on a fixed period would make retire
    // O(list length). Rescan only once the list grew by a full threshold
    // beyond what the previous scan could not free.
    if (++r.retired_count >= r.scan_at) {
      scan(tid);
      // Geometric growth keeps retire amortized O(threads) even when most
      // of the list is pinned: the next scan happens only after the list
      // doubles (plus a floor of scan_threshold).
      r.scan_at = 2 * r.retired_count + cfg_.scan_threshold;
    }
  }

  bool can_free(const node* n) const {
    for (unsigned t = 0; t < cfg_.max_threads; ++t) {
      for (unsigned i = 0; i < cfg_.eras_per_thread; ++i) {
        const std::uint64_t e =
            recs_[t].eras[i].load(std::memory_order_seq_cst);
        if (e != 0 && n->birth_era <= e && e <= n->retire_era) return false;
      }
    }
    return true;
  }

  void scan(unsigned tid) {
    rec& r = recs_[tid];
    node* keep = nullptr;
    std::size_t kept = 0;
    node* n = r.retired_head;
    while (n != nullptr) {
      node* nx = n->next;
      if (can_free(n)) {
        free_fn_(n);
        stats_->on_free();
      } else {
        n->next = keep;
        keep = n;
        ++kept;
      }
      n = nx;
    }
    r.retired_head = keep;
    r.retired_count = kept;
  }

  static void default_free(node* n) { delete n; }

  he_config cfg_;
  rec* recs_ = nullptr;
  padded<std::atomic<std::uint64_t>> era_{1};
  free_fn_t free_fn_ = &default_free;
  padded_stats stats_;
};

}  // namespace hyaline::smr
