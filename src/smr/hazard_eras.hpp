// Hazard Eras (HE) baseline — Ramalhete & Correia [31].
//
// Reconciles EBR's speed with HP's robustness: instead of publishing
// pointer *addresses*, a thread publishes the current *era* into a hazard
// index. Every node records its birth era at allocation and its retire era
// at retirement; a retired node is freed only when no published era falls
// inside [birth, retire]. Robust: a stalled thread pins only nodes whose
// lifetime overlaps its published eras.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

#include "common/align.hpp"
#include "smr/core/era_clock.hpp"
#include "smr/core/node_alloc.hpp"
#include "smr/core/retired_batch.hpp"
#include "smr/core/thread_registry.hpp"
#include "smr/stats.hpp"

namespace hyaline::smr {

/// Tuning knobs for the HE domain.
struct he_config {
  unsigned max_threads = 144;
  unsigned eras_per_thread = 8;
  /// Bump the global era clock every `era_freq` allocations.
  std::uint64_t era_freq = 64;
  /// Scan this thread's retired list at this size (0 = auto).
  std::size_t scan_threshold = 0;
};

class he_domain {
 public:
  /// Same per-access reservation discipline as HP: a published era only
  /// protects nodes not yet retired at publication time, so traversals must
  /// not cross frozen (flagged/tagged) edges (see ds/natarajan_tree.hpp).
  static constexpr bool needs_clean_edges = true;

  struct node : core::hooked_alloc {
    node* next = nullptr;
    std::uint64_t birth_era = 0;
    std::uint64_t retire_era = 0;
  };

  using free_fn_t = void (*)(node*);

  explicit he_domain(he_config cfg = {})
      : cfg_(cfg), recs_(cfg.max_threads) {
    if (cfg_.scan_threshold == 0) {
      cfg_.scan_threshold =
          2 * std::size_t{cfg_.max_threads} * cfg_.eras_per_thread;
    }
    for (rec& r : recs_) {
      r.eras.reset(new std::atomic<std::uint64_t>[cfg_.eras_per_thread]{});
    }
  }

  explicit he_domain(unsigned max_threads)
      : he_domain(he_config{max_threads, 8, 64, 0}) {}

  ~he_domain() { drain(); }

  he_domain(const he_domain&) = delete;
  he_domain& operator=(const he_domain&) = delete;

  void set_free_fn(free_fn_t fn) { free_fn_ = fn; }

  void on_alloc(node* n) {
    stats_->on_alloc();
    thread_local std::uint64_t alloc_counter = 0;
    era_.tick(alloc_counter, cfg_.era_freq);
    n->birth_era = era_.load();
  }

  stats& counters() { return *stats_; }
  const stats& counters() const { return *stats_; }

  class guard {
   public:
    guard(he_domain& dom, unsigned tid) : dom_(dom), tid_(tid) {
      assert(tid < dom.recs_.size());
    }

    ~guard() {
      rec& r = dom_.recs_[tid_];
      for (unsigned i = 0; i < dom_.cfg_.eras_per_thread; ++i) {
        r.eras[i].store(0, std::memory_order_release);
      }
    }

    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;

    /// HE get_protected: publish the current era in index `idx` and
    /// re-read until the era is stable across the load.
    template <class T>
    T* protect(unsigned idx, const std::atomic<T*>& src) {
      assert(idx < dom_.cfg_.eras_per_thread);
      std::atomic<std::uint64_t>& he = dom_.recs_[tid_].eras[idx];
      return core::protect_with_era(
          src, dom_.era_, he.load(std::memory_order_relaxed),
          [&he](std::uint64_t e) {
            he.store(e, std::memory_order_seq_cst);
            return e;
          });
    }

    void retire(node* n) { dom_.retire(tid_, n); }

   private:
    he_domain& dom_;
    unsigned tid_;
  };

  void drain() {
    for (unsigned t = 0; t < recs_.size(); ++t) scan(t);
  }

  std::uint64_t debug_era() const {
    return era_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(cache_line_size) rec {
    std::unique_ptr<std::atomic<std::uint64_t>[]> eras;
    core::retired_list<node> retired;  // owner-thread private
  };

  void retire(unsigned tid, node* n) {
    stats_->on_retire();
    n->retire_era = era_.load();
    rec& r = recs_[tid];
    if (r.retired.push(n, cfg_.scan_threshold)) {
      scan(tid);
      r.retired.rearm(cfg_.scan_threshold);
    }
  }

  bool can_free(const node* n) const {
    for (const rec& r : recs_) {
      for (unsigned i = 0; i < cfg_.eras_per_thread; ++i) {
        const std::uint64_t e = r.eras[i].load(std::memory_order_seq_cst);
        if (e != 0 && n->birth_era <= e && e <= n->retire_era) return false;
      }
    }
    return true;
  }

  void scan(unsigned tid) {
    recs_[tid].retired.scan(
        [this](const node* n) { return can_free(n); },
        [this](node* n) {
          free_fn_(n);
          stats_->on_free();
        });
  }

  static void default_free(node* n) { delete n; }

  he_config cfg_;
  core::thread_registry<rec> recs_;
  core::era_clock era_{1};
  free_fn_t free_fn_ = &default_free;
  padded_stats stats_;
};

}  // namespace hyaline::smr
