// Hazard Eras (HE) baseline — Ramalhete & Correia [31].
//
// Reconciles EBR's speed with HP's robustness: instead of publishing
// pointer *addresses*, a thread publishes the current *era* into a leased
// hazard slot. Every node records its birth era at allocation and its
// retire era at retirement; a retired node is freed only when no published
// era falls inside [birth, retire]. Robust: a stalled thread pins only
// nodes whose lifetime overlaps its published eras.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "common/align.hpp"
#include "obs/trace.hpp"
#include "smr/caps.hpp"
#include "smr/core/era_clock.hpp"
#include "smr/core/node_alloc.hpp"
#include "smr/core/retired_batch.hpp"
#include "smr/core/thread_registry.hpp"
#include "smr/protected_ptr.hpp"
#include "smr/stats.hpp"

namespace hyaline::smr {

/// Tuning knobs for the HE domain.
struct he_config {
  unsigned max_threads = 144;
  /// Bump the global era clock every `era_freq` allocations.
  std::uint64_t era_freq = 64;
  /// Scan this thread's retired list at this size (0 = auto).
  std::size_t scan_threshold = 0;
  /// Retired-node sharding (see ebr_config::retire_shards). 0 = classic
  /// per-thread lists. Era publication stays per-thread either way.
  unsigned retire_shards = 0;
};

class he_domain {
 public:
  /// Same per-access reservation discipline as HP: a published era only
  /// protects nodes not yet retired at publication time, so traversals must
  /// not cross frozen (flagged/tagged) edges (see ds/natarajan_tree.hpp).
  static constexpr smr::caps caps{.pointer_publication = true,
                                  .robust = true,
                                  .needs_clean_edges = true};

  /// Era slots per guard; the most protection handles live at once.
  static constexpr unsigned max_hazards = 8;

  struct node : core::reclaimable {
    node* next = nullptr;
    std::uint64_t birth_era = 0;
    std::uint64_t retire_era = 0;
  };

  class guard;

  template <class T>
  using protected_ptr = slot_handle<guard, T>;

  explicit he_domain(he_config cfg = {})
      : cfg_(validated(cfg)), recs_(cfg_.max_threads) {
    if (cfg_.scan_threshold == 0) {
      cfg_.scan_threshold = 2 * std::size_t{cfg_.max_threads} * max_hazards;
    }
    if (cfg_.retire_shards != 0) {
      sharded_ =
          std::make_unique<core::sharded_retire<node>>(cfg_.retire_shards);
      sharded_->attach(&stats_->events);
    }
    era_.attach(&stats_->events);
    recs_.pool()->attach(&stats_->events);
    for (rec& r : recs_) r.retired.attach(&stats_->events);
  }

  explicit he_domain(unsigned max_threads)
      : he_domain(he_config{max_threads, 64, 0}) {}

  ~he_domain() { drain(); }

  he_domain(const he_domain&) = delete;
  he_domain& operator=(const he_domain&) = delete;

  void on_alloc(node* n) {
    stats_->on_alloc();
    thread_local std::uint64_t alloc_counter = 0;
    era_.tick(alloc_counter, cfg_.era_freq);
    // Audit(he-birth-load): acquire, not seq_cst. A stale-low birth era
    // only widens [birth, retire], so the node matches more published
    // eras and is freed later — strictly conservative.
    n->birth_era = era_.load(std::memory_order_acquire);
  }

  stats& counters() { return *stats_; }
  const stats& counters() const { return *stats_; }

  class guard {
   public:
    explicit guard(he_domain& dom) : dom_(dom), lease_(dom.recs_.pool()) {
      obs::emit(obs::event::guard_enter, lease_.tid());
    }

    ~guard() {
      obs::emit(obs::event::guard_exit, lease_.tid());
      // Clear still-leased era slots only; handles self-clear on release,
      // so the common guard exit writes nothing (see hp_domain::~guard).
      unsigned mask = slots_.leased_mask();
      if (mask == 0) return;
      rec& r = dom_.recs_[lease_.tid()];
      do {
        const unsigned i = static_cast<unsigned>(std::countr_zero(mask));
        r.eras[i].store(0, std::memory_order_release);
        mask &= mask - 1;
      } while (mask != 0);
    }

    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;

    /// HE get_protected: publish the current era in a leased slot and
    /// re-read until the era is stable across the load.
    template <class T>
    slot_handle<guard, T> protect(const std::atomic<T*>& src) {
      const unsigned idx = slots_.lease("he_domain");
      std::atomic<std::uint64_t>& he = dom_.recs_[lease_.tid()].eras[idx];
      T* p = core::protect_with_era(
          src, dom_.era_, he.load(std::memory_order_relaxed),
          [&he](std::uint64_t e) {
            // seq_cst: era publication must be ordered before the
            // validating clock re-read in protect_with_era (store-load
            // pairing with can_free's scan).
            he.store(e, std::memory_order_seq_cst);
            return e;
          });
      return {this, idx, p};
    }

    template <class T>
    void retire(T* n) {
      n->smr_dtor = core::dtor_thunk<T>();
      dom_.retire(lease_.tid(), static_cast<node*>(n));
    }

    /// Internal: slot_handle check-in (clear the era, return the slot).
    void release_protection_slot(unsigned idx) {
      dom_.recs_[lease_.tid()].eras[idx].store(0,
                                               std::memory_order_release);
      slots_.unlease(idx);
    }

   private:
    he_domain& dom_;
    core::tid_lease lease_;
    slot_allocator<max_hazards> slots_;
  };

  void drain() {
    if (sharded_ != nullptr) {
      for (unsigned s = 0; s < sharded_->shards(); ++s) scan_shard(s);
    }
    for (unsigned t = 0; t < recs_.size(); ++t) scan(t);
  }

  std::uint64_t debug_era() const {
    return era_.load(std::memory_order_relaxed);
  }

 private:
  static he_config validated(he_config cfg) {
    if (cfg.max_threads == 0) {
      throw std::invalid_argument("he_config: max_threads must be nonzero");
    }
    if (cfg.era_freq == 0) {
      throw std::invalid_argument("he_config: era_freq must be nonzero");
    }
    return cfg;
  }

  struct alignas(cache_line_size) rec {
    std::atomic<std::uint64_t> eras[max_hazards] = {};
    core::retired_list<node> retired;  // owner-thread private
  };

  void retire(unsigned tid, node* n) {
    stats_->stamp_retire(n);
    obs::emit(obs::event::retire, reinterpret_cast<std::uintptr_t>(n));
    // seq_cst: a stale-low retire stamp shrinks [birth, retire] and lets
    // can_free miss a published era that still covers the node — early
    // free, so this read stays in the total order.
    n->retire_era = era_.load(std::memory_order_seq_cst);
    if (sharded_ != nullptr) {
      const unsigned s = sharded_->shard_of(tid);
      if (sharded_->push(s, n, cfg_.scan_threshold)) {
        scan_shard(s);
        const unsigned nb = (s + 1) % sharded_->shards();
        if (nb != s && sharded_->hot(nb, cfg_.scan_threshold)) {
          scan_shard(nb, /*steal=*/true);
        }
      }
      return;
    }
    rec& r = recs_[tid];
    if (r.retired.push(n, cfg_.scan_threshold)) {
      scan(tid);
      r.retired.rearm(cfg_.scan_threshold);
    }
  }

  bool can_free(const node* n) const {
    for (const rec& r : recs_) {
      for (unsigned i = 0; i < max_hazards; ++i) {
        // seq_cst: Dekker pairing with the protect() era publication — a
        // weaker load could be ordered before a concurrent publish and
        // free a node the reader has just validated.
        const std::uint64_t e = r.eras[i].load(std::memory_order_seq_cst);
        if (e != 0 && n->birth_era <= e && e <= n->retire_era) return false;
      }
    }
    return true;
  }

  void scan(unsigned tid) {
    recs_[tid].retired.scan(
        [this](const node* n) { return can_free(n); },
        [this](node* n) { stats_->free_node(n); });
  }

  void scan_shard(unsigned s, bool steal = false) {
    sharded_->scan(
        s, cfg_.scan_threshold,
        [this](const node* n) { return can_free(n); },
        [this](node* n) { stats_->free_node(n); }, steal);
  }

  he_config cfg_;
  core::thread_registry<rec> recs_;
  core::era_clock era_{1};
  std::unique_ptr<core::sharded_retire<node>> sharded_;  // null = classic
  padded_stats stats_;
};

}  // namespace hyaline::smr
