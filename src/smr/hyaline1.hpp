// Hyaline-1 and Hyaline-1S: the specialized single-width-CAS variants
// (paper §3.2 "Hyaline-1 for Single-width CAS", Figure 4, and the 1S rows
// of Figure 5).
//
// Every thread owns a dedicated slot, which lets HRef shrink to a single
// bit merged into HPtr (bit 0 of the head word):
//   - enter is a plain store of {HRef=1, HPtr=Null}  (wait-free),
//   - leave is a SWAP with {0, Null}; the leaver exclusively owns the
//     whole detached list and dereferences every node in it,
//   - retire counts the number of slots a batch was inserted into
//     (`Inserts`) instead of adjusting predecessors; the batch's NRef is
//     adjusted by that count at the end (so no Adjs constant and no
//     power-of-two slot-count requirement).
//
// Hyaline-1S adds birth eras exactly like Hyaline-S, but since the
// thread-to-slot mapping is 1:1, `touch` degenerates to an ordinary store
// and no Ack machinery is needed (a stalled thread only ever poisons its
// own slot, which no one else uses) — this is why Figure 10a shows
// Hyaline-1S tracking HP/HE/IBR exactly.
//
// Node header layout is identical to basic Hyaline (see smr/hyaline.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "common/align.hpp"
#include "obs/trace.hpp"
#include "smr/caps.hpp"
#include "smr/core/era_clock.hpp"
#include "smr/core/node_alloc.hpp"
#include "smr/core/thread_registry.hpp"
#include "smr/protected_ptr.hpp"
#include "smr/stats.hpp"

namespace hyaline {

/// Tuning knobs for a Hyaline-1(S) domain.
struct config1 {
  /// Maximum number of threads (== number of slots; 1:1 mapping).
  std::size_t max_threads = 128;

  /// Minimum batch size; effective size is max(batch_min, max_threads+1).
  std::size_t batch_min = 64;

  /// Hyaline-1S: era clock increment frequency.
  std::uint64_t era_freq = 64;
};

/// A Hyaline-1 / Hyaline-1S reclamation domain.
template <bool Robust>
class basic_domain1 {
 public:
  /// Same birth-era skip as Hyaline-S (see basic_domain): robust variants
  /// need the clean-edge traversal discipline.
  static constexpr smr::caps caps{.robust = Robust,
                                  .needs_clean_edges = Robust,
                                  .supports_trim = true};

  struct node : smr::core::reclaimable {
    std::atomic<std::uintptr_t> w0{0};
    node* w1 = nullptr;
    std::uintptr_t w2 = 0;
  };

  template <class T>
  using protected_ptr = smr::raw_handle<T>;

  explicit basic_domain1(config1 cfg = {})
      : cfg_(validated(cfg)),
        slots_(static_cast<unsigned>(cfg_.max_threads)) {
    alloc_era_.attach(&stats_->events);
    slots_.pool()->attach(&stats_->events);
  }

  ~basic_domain1() { drain(); }

  basic_domain1(const basic_domain1&) = delete;
  basic_domain1& operator=(const basic_domain1&) = delete;

  void on_alloc(node* n) {
    stats_->on_alloc();
    if constexpr (Robust) {
      auto& b = builders_.local();
      alloc_era_.tick(b.alloc_counter, cfg_.era_freq);
      // Audit(hyaline-birth-load): acquire, not seq_cst — see
      // hyaline.hpp's on_alloc; stale-low birth eras only retain longer.
      n->w0.store(alloc_era_.load(std::memory_order_acquire),
                  std::memory_order_relaxed);
    }
  }

  smr::stats& counters() { return *stats_; }
  const smr::stats& counters() const { return *stats_; }

  std::size_t slot_count() const { return cfg_.max_threads; }
  std::size_t batch_size() const {
    return cfg_.batch_min > cfg_.max_threads + 1 ? cfg_.batch_min
                                                 : cfg_.max_threads + 1;
  }

  class guard {
   public:
    /// Transparent enter: the guard leases its dedicated slot (the 1:1
    /// thread-to-slot mapping of Fig. 4) from the domain's pool; nested
    /// guards on one thread lease distinct slots.
    explicit guard(basic_domain1& dom)
        : dom_(dom), lease_(dom.slots_.pool()), slot_(lease_.tid()) {
      obs::emit(obs::event::guard_enter, slot_);
      dom_.enter(slot_);
      handle_ = nullptr;  // Fig. 4: enter returns Null
      builder_ = &dom_.builders_.local();
    }

    ~guard() {
      obs::emit(obs::event::guard_exit, slot_);
      dom_.leave(slot_, handle_);
    }

    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;

    template <class T>
    smr::raw_handle<T> protect(const std::atomic<T*>& src) {
      if constexpr (!Robust) {
        return smr::raw_handle<T>(src.load(std::memory_order_acquire));
      } else {
        // 1:1 thread-to-slot mapping: touch is an ordinary store
        // (Fig. 5 line 21 comment).
        slot_rec& sl = dom_.slots_[slot_];
        return smr::raw_handle<T>(smr::core::protect_with_era(
            src, dom_.alloc_era_,
            // seq_cst: this thread's own reservation word, but scanners read
            // it seq_cst — keep the read in the same total order.
            sl.access_era.load(std::memory_order_seq_cst),
            [&sl](std::uint64_t e) {
              // seq_cst: era publication must be ordered before the validating
              // clock re-read in protect_with_era (store-load pairing with the
              // retire-side access_era scan).
              sl.access_era.store(e, std::memory_order_seq_cst);
              return e;
            }));
      }
    }

    template <class T>
    void retire(T* n) {
      n->smr_dtor = smr::core::dtor_thunk<T>();
      dom_.retire_into(*builder_, static_cast<node*>(n));
    }

    /// §3.3 trimming (handles in Hyaline-1 exist only for this).
    void trim() { handle_ = dom_.trim(slot_, handle_); }

    unsigned slot() const { return static_cast<unsigned>(slot_); }

   private:
    basic_domain1& dom_;
    smr::core::tid_lease lease_;
    std::size_t slot_;
    node* handle_;
    typename basic_domain1::batch_builder* builder_;
  };

  /// Finalize the calling thread's partial batch (pads with dummy nodes).
  /// Call before a thread is destroyed/recycled.
  void flush() { flush_builder(builders_.local()); }

  /// Quiescent-state cleanup (no live guards anywhere).
  void drain() {
    builders_.for_each([this](batch_builder& b) { flush_builder(b); });
  }

  /// Introspection for tests.
  bool debug_slot_active(std::size_t slot) const {
    return slots_[slot].word.load(std::memory_order_relaxed) & 1;
  }
  node* debug_slot_head(std::size_t slot) const {
    return decode_ptr(slots_[slot].word.load(std::memory_order_relaxed));
  }
  std::uint64_t debug_access_era(std::size_t slot) const {
    return slots_[slot].access_era.load(std::memory_order_relaxed);
  }
  std::uint64_t debug_alloc_era() const {
    return alloc_era_.load(std::memory_order_relaxed);
  }

 private:
  // Head word: [HPtr | HRef:1] — bit 0 is the single-bit reference flag.
  struct alignas(cache_line_size) slot_rec {
    std::atomic<std::uintptr_t> word{0};
    std::atomic<std::uint64_t> access_era{0};  // Hyaline-1S only
  };

  // Cache-line aligned: heap-allocated per thread by the TLS cache and
  // written on every retire (see basic_domain::batch_builder).
  struct alignas(cache_line_size) batch_builder {
    node* refs = nullptr;
    std::size_t count = 0;
    std::uint64_t min_birth = ~std::uint64_t{0};
    std::uint64_t alloc_counter = 0;
  };

  static config1 validated(config1 cfg) {
    if (cfg.max_threads == 0) {
      throw std::invalid_argument(
          "hyaline::config1: max_threads must be nonzero (it is the slot "
          "count of the 1:1 thread-to-slot mapping)");
    }
    if (Robust && cfg.era_freq == 0) {
      throw std::invalid_argument(
          "hyaline::config1: era_freq must be nonzero");
    }
    return cfg;
  }

  static node* decode_ptr(std::uintptr_t w) {
    return reinterpret_cast<node*>(w & ~std::uintptr_t{1});
  }

  static node* next_of(const node* n) {
    return reinterpret_cast<node*>(n->w0.load(std::memory_order_acquire));
  }
  static void set_next(node* n, node* nx) {
    n->w0.store(reinterpret_cast<std::uintptr_t>(nx),
                std::memory_order_release);
  }
  static std::uint64_t birth_of(const node* n) {
    return n->w0.load(std::memory_order_relaxed);
  }
  static node* refs_of(const node* carrier) {
    return reinterpret_cast<node*>(carrier->w2 & ~std::uintptr_t{1});
  }
  static bool is_dummy(const node* carrier) { return carrier->w2 & 1; }

  void enter(std::size_t slot) {
    // Fig. 4: Heads[slot] = {HRef=1, HPtr=Null}. Wait-free.
    // seq_cst: enter publication — pairs store-load with retire()'s
    // slot scan; a release store could be missed by a concurrent scan
    // that then skips refcounting this thread.
    slots_[slot].word.store(1, std::memory_order_seq_cst);
  }

  void leave(std::size_t slot, node* handle) {
    // Fig. 4: SWAP out the whole list; the leaver owns every node in it.
    const std::uintptr_t old =
        // seq_cst: leave's SWAP is a linearization point — it atomically
        // takes ownership of the slot list against concurrent retires.
        slots_[slot].word.exchange(0, std::memory_order_seq_cst);
    node* head = decode_ptr(old);
    if (head != nullptr) {
      node* defer = nullptr;
      traverse(head, handle, defer);
      free_deferred(defer);
    }
  }

  node* trim(std::size_t slot, node* handle) {
    node* curr =
        // seq_cst: trim snapshots the slot word in the same total order as
        // the retire CASes that extend the list.
        decode_ptr(slots_[slot].word.load(std::memory_order_seq_cst));
    if (curr != nullptr && curr != handle) {
      node* defer = nullptr;
      traverse(next_of(curr), handle, defer);
      free_deferred(defer);
    }
    return curr;
  }

  void retire_into(batch_builder& b, node* n) {
    stats_->stamp_retire(n);
    obs::emit(obs::event::retire, reinterpret_cast<std::uintptr_t>(n));
    if constexpr (Robust) {
      const std::uint64_t era = birth_of(n);
      if (era < b.min_birth) b.min_birth = era;
    }
    if (b.refs == nullptr) {
      n->w1 = nullptr;
      b.refs = n;
    } else {
      n->w1 = b.refs->w1;
      b.refs->w1 = n;
    }
    ++b.count;
    if (b.count >= batch_size()) finalize_batch(b);
  }

  void flush_builder(batch_builder& b) {
    if (b.refs == nullptr) return;
    finalize_batch(b);
  }

  void finalize_batch(batch_builder& b) {
    const std::size_t n_slots = cfg_.max_threads;
    while (b.count < n_slots + 1) {
      node* dummy = new node;
      dummy->w2 = 1;
      dummy->w1 = b.refs->w1;
      b.refs->w1 = dummy;
      ++b.count;
    }

    node* refs = b.refs;
    const std::uint64_t min_birth = b.min_birth;
    obs::emit(obs::event::batch_finalize, b.count);
    stats_->events.on_finalize();
    b.refs = nullptr;
    b.count = 0;
    b.min_birth = ~std::uint64_t{0};

    refs->w2 = 0;
    refs->w0.store(0, std::memory_order_relaxed);
    for (node* c = refs->w1; c != nullptr; c = c->w1) {
      c->w2 = reinterpret_cast<std::uintptr_t>(refs) | (c->w2 & 1);
    }

    node* carrier = refs->w1;
    std::uint64_t inserts = 0;
    node* defer = nullptr;

    for (std::size_t i = 0; i < n_slots; ++i) {
      slot_rec& sl = slots_[i];
      for (;;) {
        // seq_cst: Dekker pairing with enter()'s publication — a weaker
        // read could miss a freshly entered thread and skip its refcount.
        const std::uintptr_t w = sl.word.load(std::memory_order_seq_cst);
        bool skip = (w & 1) == 0;
        if constexpr (Robust) {
          // seq_cst: Dekker pairing with protect()'s era publication (see
          // hyaline.hpp's retire-side scan).
          skip = skip || sl.access_era.load(std::memory_order_seq_cst) <
                             min_birth;
        }
        if (skip) break;
        assert(carrier != nullptr);
        // Read the batch-internal next before publishing the carrier —
        // same discipline as hyaline.hpp's finalize_batch. Here the batch
        // provably survives until the final adjust below (its counter
        // only ever decrements until +Inserts lands), but the hoist
        // keeps the invariant uniform and TSan-checkable.
        node* const next_carrier = carrier->w1;
        set_next(carrier, decode_ptr(w));
        const std::uintptr_t neww =
            reinterpret_cast<std::uintptr_t>(carrier) | 1;
        std::uintptr_t expected = w;
        // seq_cst: retire's list-extension CAS is a linearization point
        // ordered against enter/leave on the slot word.
        if (!sl.word.compare_exchange_strong(expected, neww,
                                             std::memory_order_seq_cst)) {
          continue;
        }
        ++inserts;  // Fig. 4: REF #2 replaced with Inserts++
        carrier = next_carrier;
        break;
      }
    }
    // Fig. 4: REF #3 replaced with adjust(FirstNode, Inserts).
    adjust(refs, inserts, defer);
    free_deferred(defer);
  }

  void adjust(node* refs, std::uint64_t val, node*& defer) {
    const std::uint64_t old =
        refs->w0.fetch_add(val, std::memory_order_acq_rel);
    if (old + val == 0) push_deferred(defer, refs);
  }

  void traverse(node* start, node* handle, node*& defer) {
    node* curr = start;
    while (curr != nullptr) {
      node* nx = next_of(curr);
      node* refs = refs_of(curr);
      const std::uint64_t old =
          refs->w0.fetch_add(~std::uint64_t{0}, std::memory_order_acq_rel);
      if (old == 1) push_deferred(defer, refs);
      if (curr == handle) break;
      curr = nx;
    }
  }

  static void push_deferred(node*& defer, node* refs) {
    refs->w0.store(reinterpret_cast<std::uintptr_t>(defer),
                   std::memory_order_relaxed);
    defer = refs;
  }

  void free_deferred(node* defer) {
    while (defer != nullptr) {
      node* next = reinterpret_cast<node*>(
          defer->w0.load(std::memory_order_relaxed));
      free_batch(defer);
      defer = next;
    }
  }

  void free_batch(node* refs) {
    node* c = refs->w1;
    stats_->free_node(refs);
    while (c != nullptr) {
      node* nx = c->w1;
      if (is_dummy(c)) {
        delete c;  // padding dummy: a plain node, never user-retired
      } else {
        stats_->free_node(c);
      }
      c = nx;
    }
  }

  const config1 cfg_;
  /// Per-slot records plus the lease pool guards check their slot out of
  /// (the 1:1 mapping shares the baselines' registry machinery).
  smr::core::thread_registry<slot_rec> slots_;
  smr::core::era_clock alloc_era_{1};  // global era clock (Hyaline-1S)
  smr::padded_stats stats_;

  /// Per-(thread, domain) batch builders (core/thread_registry.hpp).
  smr::core::tls_cache<batch_builder> builders_;
};

/// Hyaline-1: single-width CAS, wait-free enter/leave, per-thread slots.
using domain_1 = basic_domain1<false>;
/// Hyaline-1S: robust variant (birth eras; fully robust, no slot cap).
using domain_1s = basic_domain1<true>;

}  // namespace hyaline
