// RAII protection handles returned by guard::protect() (API v2).
//
// v1 exposed the pointer-publication machinery at every call site: data
// structures hand-numbered hazard indices (`protect(idx, src)`) and had to
// know each scheme's slot budget. v2 hands back a handle that *owns* its
// protection: schemes that publish pointers (HP, HE) lease a hazard slot
// from the guard and release it when the handle dies or is reassigned;
// every other scheme returns the zero-cost `raw_handle` wrapper, so the
// abstraction costs nothing where protection is guard-lifetime or
// era-based.
//
// Both handle types are move-only with identical surface (get / operator*
// / operator-> / operator bool / reset), so generic data-structure code is
// written once against `typename D::template protected_ptr<T>`.
//
// Tag bits: `get()` returns the raw loaded value, which may carry low tag
// bits (mark/flag/tag) — exactly what traversal code needs to inspect.
// Slot-leasing schemes publish the *untagged* address; retire() is always
// called on untagged pointers, so publication and scan compare cleanly.
#pragma once

#include <stdexcept>
#include <string>

namespace hyaline::smr {

/// Fixed-size free-list of hazard slot indices, shared by the
/// pointer-publication guards (HP, HE). Leases the lowest-numbered free
/// slot; throws — instead of corrupting a neighbouring slot — when more
/// than `N` protection handles are live at once. Tracks the set of leased
/// slots as a bitmask so a guard's destructor clears only slots that are
/// actually still published (handles self-clear on release, so the mask is
/// normally zero and guard exit touches no hazard array at all).
template <unsigned N>
class slot_allocator {
  static_assert(N <= 32, "leased-slot bitmask holds at most 32 slots");

 public:
  slot_allocator() {
    for (unsigned i = 0; i < N; ++i) free_[i] = N - 1 - i;  // lease 0, 1, …
    nfree_ = N;
  }

  unsigned lease(const char* scheme) {
    if (nfree_ == 0) {
      throw std::runtime_error(
          std::string(scheme) + ": live protections exceed max_hazards (" +
          std::to_string(N) +
          "); release protected_ptr handles before acquiring more");
    }
    const unsigned idx = free_[--nfree_];
    leased_ |= 1u << idx;
    return idx;
  }

  void unlease(unsigned idx) {
    leased_ &= ~(1u << idx);
    free_[nfree_++] = idx;
  }

  /// Bit i set ⇔ slot i is currently leased (still published).
  unsigned leased_mask() const { return leased_; }

 private:
  unsigned free_[N];
  unsigned nfree_;
  unsigned leased_ = 0;
};

/// Zero-cost handle for schemes whose protection does not need per-pointer
/// release (guard-lifetime pinning or era reservations). Move-only so its
/// semantics match slot_handle exactly.
template <class T>
class raw_handle {
 public:
  raw_handle() = default;
  explicit raw_handle(T* p) : p_(p) {}

  raw_handle(raw_handle&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }
  raw_handle& operator=(raw_handle&& o) noexcept {
    if (this != &o) {
      p_ = o.p_;
      o.p_ = nullptr;
    }
    return *this;
  }

  raw_handle(const raw_handle&) = delete;
  raw_handle& operator=(const raw_handle&) = delete;

  T* get() const { return p_; }
  T& operator*() const { return *p_; }
  T* operator->() const { return p_; }
  explicit operator bool() const { return p_ != nullptr; }

  void reset() { p_ = nullptr; }

 private:
  T* p_ = nullptr;
};

/// Handle owning one leased hazard slot of `Guard` (HP/HE). Destruction or
/// reassignment clears the published value and returns the slot to the
/// guard's free list. Must not outlive its guard.
template <class Guard, class T>
class slot_handle {
 public:
  slot_handle() = default;
  slot_handle(Guard* g, unsigned slot, T* p) : g_(g), slot_(slot), p_(p) {}

  slot_handle(slot_handle&& o) noexcept
      : g_(o.g_), slot_(o.slot_), p_(o.p_) {
    o.g_ = nullptr;
    o.p_ = nullptr;
  }

  slot_handle& operator=(slot_handle&& o) noexcept {
    if (this != &o) {
      release();
      g_ = o.g_;
      slot_ = o.slot_;
      p_ = o.p_;
      o.g_ = nullptr;
      o.p_ = nullptr;
    }
    return *this;
  }

  slot_handle(const slot_handle&) = delete;
  slot_handle& operator=(const slot_handle&) = delete;

  ~slot_handle() { release(); }

  T* get() const { return p_; }
  T& operator*() const { return *p_; }
  T* operator->() const { return p_; }
  explicit operator bool() const { return p_ != nullptr; }

  void reset() {
    release();
    p_ = nullptr;
  }

 private:
  void release() {
    if (g_ != nullptr) {
      g_->release_protection_slot(slot_);
      g_ = nullptr;
    }
  }

  Guard* g_ = nullptr;
  unsigned slot_ = 0;
  T* p_ = nullptr;
};

}  // namespace hyaline::smr
