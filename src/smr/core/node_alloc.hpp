// Overridable allocation + typed destruction for SMR node headers.
//
// Every scheme's intrusive `node` type derives from `reclaimable`, which
// provides two services:
//
//   1. Hooked allocation (`hooked_alloc`): class-level operator new/delete
//      route through a process-wide hook pair. With the hooks unset (the
//      default, and the only mode benchmarks use) allocation is exactly
//      `::operator new` / `::operator delete`. The test suite installs
//      `debug_alloc`-backed hooks before spawning threads, which makes every
//      node the data structures allocate — including Hyaline's padding
//      dummies — leak-, double-free- and write-after-free-checked without
//      the structures knowing (see tests/registry_matrix_test.cpp).
//
//   2. Typed destruction (`smr_dtor`): a type-erased destroy thunk that
//      `guard::retire<T>()` installs at retirement time. Deallocation may
//      run much later, on another thread, long after the retiring call
//      frame is gone — the thunk carries the concrete node type across
//      that gap, so one domain can reclaim any mix of node types (API v2's
//      shared-domain guarantee; the v1 per-domain `set_free_fn` supported
//      exactly one type and was silently overwritten by a second).
//
// The hooks are read on every node allocation; install them once, at
// startup, before any node exists, so allocate/free pairs always agree.
// When no hook is installed the per-thread slab allocator serves the
// request if enabled (see core/slab_alloc.hpp) — routing priority is
// debug hook > slab > global heap, and the slab's enabled flag follows the
// same install-before-any-node-exists contract as the hooks.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>

#include "obs/trace.hpp"
#include "smr/core/slab_alloc.hpp"

namespace hyaline::smr::core {

using node_alloc_fn = void* (*)(std::size_t);
using node_free_fn = void (*)(void*);

inline node_alloc_fn node_alloc_hook = nullptr;  // null = ::operator new
inline node_free_fn node_free_hook = nullptr;    // null = ::operator delete

/// Empty base class providing the hooked class-level new/delete. Derived
/// node types keep their layout (empty-base optimization).
struct hooked_alloc {
  static void* operator new(std::size_t n) {
    if (node_alloc_hook != nullptr) return node_alloc_hook(n);
    if (slab::enabled()) return slab::allocate(n);
    return ::operator new(n);
  }
  static void operator delete(void* p) {
    if (node_free_hook != nullptr) {
      node_free_hook(p);
    } else if (slab::enabled()) {
      assert(slab::owns(p) &&
             "slab enabled after nodes were already heap-allocated "
             "(set_enabled must precede the first node allocation)");
      slab::deallocate(p);
    } else {
      ::operator delete(p);
    }
  }
  static void operator delete(void* p, std::size_t) {
    hooked_alloc::operator delete(p);
  }
};

/// Base of every scheme's node header: hooked allocation plus the typed
/// destroy thunk. One extra word per node buys N node types per domain.
/// `obs_retire_ticks` is the retire->free lag stamp (smr/stats.hpp):
/// written at retire and read at free only while obs::lag_tracking() is
/// on; zero means "never stamped" and is skipped by the lag histogram.
struct reclaimable : hooked_alloc {
  void (*smr_dtor)(reclaimable*) = nullptr;
  std::uint64_t obs_retire_ticks = 0;
};

/// The type-erased destroy thunk for a concrete node type `T` (any type
/// derived from a scheme's node header). Installed by guard::retire<T>().
template <class T>
inline void (*dtor_thunk())(reclaimable*) {
  static_assert(std::is_base_of_v<reclaimable, T>,
                "retired objects must derive from the scheme's node type");
  return +[](reclaimable* base) { delete static_cast<T*>(base); };
}

/// Destroy a retired node through its thunk. Every retire path installs
/// one (guard::retire<T>), so a null thunk here means a node reached
/// reclamation without going through retire — fail loudly rather than
/// silently running the wrong destructor.
template <class Node>
inline void destroy(Node* n) {
  assert(n->smr_dtor != nullptr &&
         "retired node missing its typed destroy thunk");
  obs::emit(obs::event::free_node, reinterpret_cast<std::uintptr_t>(n));
  n->smr_dtor(n);
}

}  // namespace hyaline::smr::core
