// Overridable allocation for SMR node headers.
//
// Every scheme's intrusive `node` type derives from `hooked_alloc`, whose
// class-level operator new/delete route through a process-wide hook pair.
// With the hooks unset (the default, and the only mode benchmarks use)
// allocation is exactly `::operator new` / `::operator delete`. The test
// suite installs `debug_alloc`-backed hooks before spawning threads, which
// makes every node the data structures allocate — including Hyaline's
// padding dummies — leak-, double-free- and write-after-free-checked
// without the structures knowing (see tests/registry_matrix_test.cpp).
//
// The hooks are read on every node allocation; install them once, at
// startup, before any node exists, so allocate/free pairs always agree.
#pragma once

#include <cstddef>
#include <new>

namespace hyaline::smr::core {

using node_alloc_fn = void* (*)(std::size_t);
using node_free_fn = void (*)(void*);

inline node_alloc_fn node_alloc_hook = nullptr;  // null = ::operator new
inline node_free_fn node_free_hook = nullptr;    // null = ::operator delete

/// Empty base class providing the hooked class-level new/delete. Derived
/// node types keep their layout (empty-base optimization).
struct hooked_alloc {
  static void* operator new(std::size_t n) {
    return node_alloc_hook != nullptr ? node_alloc_hook(n)
                                      : ::operator new(n);
  }
  static void operator delete(void* p) {
    if (node_free_hook != nullptr) {
      node_free_hook(p);
    } else {
      ::operator delete(p);
    }
  }
  static void operator delete(void* p, std::size_t) {
    hooked_alloc::operator delete(p);
  }
};

}  // namespace hyaline::smr::core
