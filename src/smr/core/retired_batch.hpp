// Retired-node containers shared by the SMR schemes.
//
// Three shapes cover every baseline:
//   - retired_list:  owner-private LIFO with the adaptive rescan point used
//     by HP, HE and IBR (scan only after the list grows a full threshold
//     beyond what the previous scan could not free, keeping retire
//     amortized O(threads) even when most of the list is pinned);
//   - limbo_queue:   owner-private FIFO ordered by retire epoch (EBR);
//   - treiber_stack: concurrent global stack (Leaky parks nodes here until
//     drain).
//
// All three are intrusive over the scheme's node type, which must expose a
// `Node* next` member.
#pragma once

#include <atomic>
#include <cstddef>

namespace hyaline::smr::core {

/// Owner-thread-private retired list with an adaptive scan threshold.
template <class Node>
class retired_list {
 public:
  /// Push a node; returns true when the adaptive threshold is reached and
  /// the caller should scan (then `rearm`).
  bool push(Node* n, std::size_t threshold) {
    n->next = head_;
    head_ = n;
    if (scan_at_ == 0) scan_at_ = threshold;
    return ++count_ >= scan_at_;
  }

  /// Partition pass: frees every node satisfying `can_free` via `do_free`,
  /// keeps the rest (list order is reversed, which is irrelevant — kept
  /// nodes are re-examined wholesale on the next scan).
  template <class CanFree, class DoFree>
  void scan(CanFree&& can_free, DoFree&& do_free) {
    Node* keep = nullptr;
    std::size_t kept = 0;
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = n->next;
      if (can_free(n)) {
        do_free(n);
      } else {
        n->next = keep;
        keep = n;
        ++kept;
      }
      n = nx;
    }
    head_ = keep;
    count_ = kept;
  }

  /// Geometric growth of the rescan point: the next scan happens only after
  /// the list doubles (plus a floor of `threshold`), so nodes pinned by
  /// long-lived reservations are not rescanned on a fixed period.
  void rearm(std::size_t threshold) { scan_at_ = 2 * count_ + threshold; }

  std::size_t size() const { return count_; }
  bool empty() const { return head_ == nullptr; }

 private:
  Node* head_ = nullptr;
  std::size_t count_ = 0;
  std::size_t scan_at_ = 0;  // adaptive: kept + threshold after each scan
};

/// Owner-thread-private FIFO limbo list (EBR: FIFO by retire epoch, so
/// reclamation pops from the head while the head is old enough).
template <class Node>
class limbo_queue {
 public:
  void push_back(Node* n) {
    n->next = nullptr;
    if (tail_ == nullptr) {
      head_ = tail_ = n;
    } else {
      tail_->next = n;
      tail_ = n;
    }
  }

  /// Pop-and-free from the head while `ready(head)` holds.
  template <class Ready, class DoFree>
  void reclaim_ready(Ready&& ready, DoFree&& do_free) {
    while (head_ != nullptr && ready(head_)) {
      Node* n = head_;
      head_ = n->next;
      if (head_ == nullptr) tail_ = nullptr;
      do_free(n);
    }
  }

  bool empty() const { return head_ == nullptr; }

 private:
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
};

/// Concurrent LIFO (Treiber) stack of retired nodes.
template <class Node>
class treiber_stack {
 public:
  void push(Node* n) {
    Node* head = head_.load(std::memory_order_relaxed);
    do {
      n->next = head;
    } while (!head_.compare_exchange_weak(head, n, std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  /// Detach the whole stack (quiescent drain).
  Node* take_all() { return head_.exchange(nullptr, std::memory_order_acquire); }

 private:
  std::atomic<Node*> head_{nullptr};
};

}  // namespace hyaline::smr::core
