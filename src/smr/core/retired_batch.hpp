// Retired-node containers shared by the SMR schemes.
//
// Four shapes cover every baseline:
//   - retired_list:  owner-private LIFO with the adaptive rescan point used
//     by HP, HE and IBR (scan only after the list grows a full threshold
//     beyond what the previous scan could not free, keeping retire
//     amortized O(threads) even when most of the list is pinned);
//   - limbo_queue:   owner-private FIFO ordered by retire epoch (EBR);
//   - treiber_stack: concurrent LIFO (Leaky parks nodes here until drain);
//   - sharded_retire: N concurrent lists indexed by thread group, the
//     middle ground between per-thread lists (no sharing, but an exited or
//     idle thread's nodes sit unscanned until drain) and one global list
//     (every retire contends on one cache line). Threads push to their
//     group's shard and steal-scan a neighbour when it runs hot, so
//     reclamation keeps up even when the retiring thread count is skewed.
//     Shards carry the same adaptive rescan point as retired_list: a scan
//     that keeps k pinned nodes rearms the shard to 2k + threshold, so a
//     reservation pinning the whole shard costs O(log) rescans, not one
//     full-shard scan per retire.
//
// All are intrusive over the scheme's node type, which must expose a
// `Node* next` member.
//
// Observability: every container can be attached to a domain's
// `smr::domain_counters` (attach()); scans, rearms and shard steals are
// then counted here, in the primitive, so every scheme built on these
// containers reports them uniformly. Scan passes also emit
// scan_begin/scan_end trace events (obs/trace.hpp) — both seams cost one
// relaxed load + predicted branch when observability is off.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>

#include "common/align.hpp"
#include "obs/trace.hpp"
#include "smr/stats.hpp"

namespace hyaline::smr::core {

/// Owner-thread-private retired list with an adaptive scan threshold.
template <class Node>
class retired_list {
 public:
  /// Push a node; returns true when the adaptive threshold is reached and
  /// the caller should scan (then `rearm`).
  bool push(Node* n, std::size_t threshold) {
    n->next = head_;
    head_ = n;
    if (scan_at_ == 0) scan_at_ = threshold;
    return ++count_ >= scan_at_;
  }

  /// Partition pass: frees every node satisfying `can_free` via `do_free`,
  /// keeps the rest (list order is reversed, which is irrelevant — kept
  /// nodes are re-examined wholesale on the next scan).
  template <class CanFree, class DoFree>
  void scan(CanFree&& can_free, DoFree&& do_free) {
    obs::emit(obs::event::scan_begin, count_);
    if (ctrs_ != nullptr) ctrs_->on_scan();
    Node* keep = nullptr;
    std::size_t kept = 0;
    std::size_t freed = 0;
    Node* n = head_;
    while (n != nullptr) {
      Node* nx = n->next;
      if (can_free(n)) {
        do_free(n);
        ++freed;
      } else {
        n->next = keep;
        keep = n;
        ++kept;
      }
      n = nx;
    }
    head_ = keep;
    count_ = kept;
    obs::emit(obs::event::scan_end, freed);
  }

  /// Geometric growth of the rescan point: the next scan happens only after
  /// the list doubles (plus a floor of `threshold`), so nodes pinned by
  /// long-lived reservations are not rescanned on a fixed period.
  void rearm(std::size_t threshold) {
    scan_at_ = 2 * count_ + threshold;
    if (ctrs_ != nullptr) ctrs_->on_rearm();
  }

  /// Attach the owning domain's event counters (see smr/stats.hpp).
  void attach(domain_counters* c) { ctrs_ = c; }

  std::size_t size() const { return count_; }
  bool empty() const { return head_ == nullptr; }

 private:
  Node* head_ = nullptr;
  std::size_t count_ = 0;
  std::size_t scan_at_ = 0;  // adaptive: kept + threshold after each scan
  domain_counters* ctrs_ = nullptr;
};

/// Owner-thread-private FIFO limbo list (EBR: FIFO by retire epoch, so
/// reclamation pops from the head while the head is old enough).
template <class Node>
class limbo_queue {
 public:
  void push_back(Node* n) {
    n->next = nullptr;
    if (tail_ == nullptr) {
      head_ = tail_ = n;
    } else {
      tail_->next = n;
      tail_ = n;
    }
  }

  /// Pop-and-free from the head while `ready(head)` holds. A pass that
  /// frees at least one node counts as a scan (EBR's limbo reclamation is
  /// this loop; an empty-handed probe is not a reclamation pass).
  template <class Ready, class DoFree>
  void reclaim_ready(Ready&& ready, DoFree&& do_free) {
    if (head_ == nullptr || !ready(head_)) return;
    obs::emit(obs::event::scan_begin, 0);
    if (ctrs_ != nullptr) ctrs_->on_scan();
    std::size_t freed = 0;
    while (head_ != nullptr && ready(head_)) {
      Node* n = head_;
      head_ = n->next;
      if (head_ == nullptr) tail_ = nullptr;
      do_free(n);
      ++freed;
    }
    obs::emit(obs::event::scan_end, freed);
  }

  /// Attach the owning domain's event counters (see smr/stats.hpp).
  void attach(domain_counters* c) { ctrs_ = c; }

  bool empty() const { return head_ == nullptr; }

 private:
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  domain_counters* ctrs_ = nullptr;
};

/// N concurrent retired lists indexed by thread group (`tid % shards`).
/// Push is one CAS on the shard's head; scan detaches the whole shard
/// wholesale, frees what it can, and re-splices the survivors, so any
/// thread (owner or stealer) can reclaim any shard concurrently. Counts
/// are advisory (they race with detach) — they only gate *when* to scan.
template <class Node>
class sharded_retire {
 public:
  explicit sharded_retire(unsigned shards)
      : n_(shards == 0 ? 1 : shards), shards_(new shard[n_]) {}

  unsigned shards() const { return n_; }
  unsigned shard_of(unsigned hint) const { return hint % n_; }

  /// Concurrent push; returns true when shard `s` reached its adaptive
  /// rescan point (never below `threshold`) and the caller should scan it
  /// (and glance at a neighbour).
  bool push(unsigned s, Node* n, std::size_t threshold) {
    shard& sh = shards_[s];
    Node* head = sh.head.load(std::memory_order_relaxed);
    do {
      n->next = head;
    } while (!sh.head.compare_exchange_weak(head, n, std::memory_order_release,
                                            std::memory_order_relaxed));
    const std::size_t at =
        std::max(sh.scan_at.load(std::memory_order_relaxed), threshold);
    return sh.count.fetch_add(1, std::memory_order_relaxed) + 1 >= at;
  }

  std::size_t size(unsigned s) const {
    return shards_[s].count.load(std::memory_order_relaxed);
  }

  /// Steal-scan gate: shard `s` is past its adaptive rescan point. Raw
  /// size() is the wrong test here — a neighbour pinned by a long-lived
  /// reservation would be re-stolen on every retire.
  bool hot(unsigned s, std::size_t threshold) const {
    const shard& sh = shards_[s];
    const std::size_t at =
        std::max(sh.scan_at.load(std::memory_order_relaxed), threshold);
    return sh.count.load(std::memory_order_relaxed) >= at;
  }

  /// Attach the owning domain's event counters (see smr/stats.hpp).
  void attach(domain_counters* c) { ctrs_ = c; }

  /// Detach shard `s`, free every node satisfying `can_free` via `do_free`,
  /// splice the survivors back. Safe to run concurrently with pushes and
  /// with other scans of the same shard (the exchange hands each node to
  /// exactly one scanner). Rearms the shard's rescan point to
  /// 2 * kept + threshold: survivors are pinned by some reservation, so
  /// re-examining them before the shard grows past them again is wasted
  /// work (and turns a drain loop quadratic). `steal` marks a scan of a
  /// shard that is not the caller's own (the steal-on-scan path) for the
  /// observability counters.
  template <class CanFree, class DoFree>
  void scan(unsigned s, std::size_t threshold, CanFree&& can_free,
            DoFree&& do_free, bool steal = false) {
    shard& sh = shards_[s];
    Node* n = sh.head.exchange(nullptr, std::memory_order_acquire);
    if (n == nullptr) return;
    obs::emit(obs::event::scan_begin, s);
    if (steal) obs::emit(obs::event::shard_steal, s);
    if (ctrs_ != nullptr) {
      ctrs_->on_scan();
      if (steal) ctrs_->on_steal();
    }
    Node* keep = nullptr;
    Node* keep_tail = nullptr;
    std::size_t freed = 0;
    std::size_t kept = 0;
    while (n != nullptr) {
      Node* nx = n->next;
      if (can_free(n)) {
        do_free(n);
        ++freed;
      } else {
        n->next = keep;
        if (keep == nullptr) keep_tail = n;
        keep = n;
        ++kept;
      }
      n = nx;
    }
    if (keep != nullptr) {
      Node* head = sh.head.load(std::memory_order_relaxed);
      do {
        keep_tail->next = head;
      } while (!sh.head.compare_exchange_weak(head, keep,
                                              std::memory_order_release,
                                              std::memory_order_relaxed));
    }
    if (freed != 0) sh.count.fetch_sub(freed, std::memory_order_relaxed);
    sh.scan_at.store(2 * kept + threshold, std::memory_order_relaxed);
    if (ctrs_ != nullptr) ctrs_->on_rearm();
    obs::emit(obs::event::scan_end, freed);
  }

 private:
  struct alignas(cache_line_size) shard {
    std::atomic<Node*> head{nullptr};
    std::atomic<std::size_t> count{0};
    std::atomic<std::size_t> scan_at{0};  // adaptive rescan point
  };

  unsigned n_;
  std::unique_ptr<shard[]> shards_;
  domain_counters* ctrs_ = nullptr;
};

/// Concurrent LIFO (Treiber) stack of retired nodes.
template <class Node>
class treiber_stack {
 public:
  void push(Node* n) {
    Node* head = head_.load(std::memory_order_relaxed);
    do {
      n->next = head;
    } while (!head_.compare_exchange_weak(head, n, std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  /// Detach the whole stack (quiescent drain).
  Node* take_all() { return head_.exchange(nullptr, std::memory_order_acquire); }

 private:
  std::atomic<Node*> head_{nullptr};
};

}  // namespace hyaline::smr::core
