// Per-thread slab allocator for SMR nodes.
//
// Sits behind the `hooked_alloc` seam in node_alloc.hpp: when enabled, every
// node allocation that is not intercepted by a debug hook is served from a
// thread-local size-class cache instead of the global heap. The design is a
// small tcmalloc-style front end specialized for the allocation profile of
// lock-free structures (many small fixed-size nodes, freed by *other*
// threads after a reclamation scan):
//
//   - 32 size classes at 16-byte granularity cover payloads up to 512 bytes;
//     anything larger (or any allocation made after the global arena cap is
//     hit) falls back to `::operator new` with the same 16-byte header so
//     deallocation needs no out-of-band lookup.
//   - Each thread owns a `tcache` of per-class LIFO free lists fed from
//     cache-aligned 64 KiB chunks carved by bump pointer. The free-list next
//     pointer lives in the payload's first word, so a free block costs no
//     extra memory.
//   - A free from a foreign thread is *batched*: the freeing thread buffers
//     blocks per destination cache and CAS-pushes a whole chain onto the
//     owner's MPSC `remote` stack once the buffer fills. The owner drains
//     that stack into its local lists only when a local list runs dry, so
//     the cross-thread traffic amortizes to one CAS per `kRemoteBatch`
//     frees and the hot local path touches no shared cache line.
//   - Caches of exited threads are parked on an orphan list and adopted by
//     the next new thread; caches and chunks are never freed while the
//     process lives, so a stale `owner` pointer in a block header can never
//     dangle.
//
// Contract: `set_enabled` must not be flipped while any slab-allocated node
// is live — the deallocation path must see the same routing decision the
// allocation path made. The harness enables it once at startup (tests drain
// every domain before toggling). Under AddressSanitizer the slab defaults to
// *off* (block recycling would mask use-after-free, the very bug class the
// debug hooks exist to catch); the slab's own tests opt back in explicitly.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <vector>

#include "common/align.hpp"
#include "obs/trace.hpp"

namespace hyaline::smr::core::slab {

inline constexpr std::size_t kGranule = 16;
inline constexpr std::size_t kMaxPayload = 512;
inline constexpr std::size_t kNumClasses = kMaxPayload / kGranule;  // 32
inline constexpr std::size_t kChunkBytes = 64 * 1024;
inline constexpr std::size_t kHeaderBytes = 16;
inline constexpr std::uint32_t kMagic = 0x51ab51ab;
/// Foreign frees buffered per destination before one CAS publishes a chain.
inline constexpr std::size_t kRemoteBatch = 32;
/// Destination caches a single thread buffers remote frees for at once.
inline constexpr std::size_t kRemoteBuffers = 4;

struct tcache;

/// Every block (slab or fallback) is preceded by 16 bytes of header. For
/// slab blocks `owner` names the cache whose chunk the block was carved
/// from; for heap-fallback blocks `owner` is null and `cls` is unused.
struct block_header {
  tcache* owner;
  std::uint32_t cls;
  std::uint32_t magic;
};
static_assert(sizeof(block_header) == kHeaderBytes);

namespace detail {

struct remote_buffer {
  tcache* dest = nullptr;
  void* head = nullptr;   // chain linked through payload first words
  void* tail = nullptr;
  std::size_t count = 0;
};

inline void*& next_of(void* block) { return *static_cast<void**>(block); }

}  // namespace detail

/// Per-thread allocation cache. Constructed on a thread's first slab
/// allocation (or adopted from the orphan list), parked at thread exit.
struct alignas(cache_line_size) tcache {
  void* free_list[kNumClasses] = {};
  std::size_t free_count[kNumClasses] = {};
  /// MPSC stack of blocks freed by other threads (heads of batched chains).
  std::atomic<void*> remote{nullptr};
  /// Sender-side batching of frees destined for *other* caches.
  detail::remote_buffer rbuf[kRemoteBuffers];
  std::byte* bump = nullptr;
  std::byte* bump_end = nullptr;
  tcache* next_orphan = nullptr;
};

struct slab_stats {
  std::uint64_t chunks;          // 64 KiB chunks carved from the heap
  std::uint64_t external;        // allocations served by ::operator new
  std::uint64_t adopted;         // orphan caches re-attached to new threads
  std::uint64_t parked;          // caches parked by exiting threads
  std::uint64_t remote_flushes;  // batched cross-thread chain publishes
};

namespace detail {

struct arena {
  std::mutex mu;
  std::vector<void*> chunks;          // owned; freed at process exit only
  tcache* orphans = nullptr;          // parked caches awaiting adoption
  std::vector<tcache*> all_caches;    // owned
  std::size_t limit_bytes = std::size_t{1} << 30;
  std::atomic<std::size_t> used_bytes{0};
  std::atomic<std::uint64_t> n_chunks{0};
  std::atomic<std::uint64_t> n_external{0};
  std::atomic<std::uint64_t> n_adopted{0};
  std::atomic<std::uint64_t> n_parked{0};
  std::atomic<std::uint64_t> n_remote_flushes{0};

  ~arena() {
    for (tcache* c : all_caches) delete c;
    for (void* p : chunks) ::operator delete(p, std::align_val_t{cache_line_size});
  }
};

inline arena& the_arena() {
  static arena a;  // leaked-on-exit semantics live in ~arena ordering: TLS
                   // destructors of worker threads run before main exits, so
                   // parked caches are already chained when this dies.
  return a;
}

#if defined(__SANITIZE_ADDRESS__)
inline constexpr bool kAsanDefault = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
inline constexpr bool kAsanDefault = true;
#else
inline constexpr bool kAsanDefault = false;
#endif
#else
inline constexpr bool kAsanDefault = false;
#endif

inline std::atomic<bool> enabled{!kAsanDefault};

inline std::size_t class_of(std::size_t bytes) {
  return (bytes + kGranule - 1) / kGranule - 1;
}

inline std::size_t class_bytes(std::size_t cls) { return (cls + 1) * kGranule; }

void park_cache(tcache* c);

/// TLS anchor: parks the cache when its thread exits. The cache itself is
/// owned by the arena and survives, so foreign blocks whose headers point at
/// it stay valid forever.
struct tls_slot {
  tcache* cache = nullptr;
  ~tls_slot() {
    if (cache != nullptr) park_cache(cache);
  }
};

inline thread_local tls_slot tls;

inline void park_cache_locked(arena& a, tcache* c) {
  c->next_orphan = a.orphans;
  a.orphans = c;
  a.n_parked.fetch_add(1, std::memory_order_relaxed);
}

inline void park_cache(tcache* c) {
  // Flush any buffered foreign frees before parking: a parked cache's
  // buffers are not visible to their destinations until adoption otherwise.
  arena& a = the_arena();
  for (remote_buffer& b : c->rbuf) {
    if (b.dest == nullptr || b.count == 0) continue;
    void* head = b.dest->remote.load(std::memory_order_relaxed);
    do {
      next_of(b.tail) = head;
    } while (!b.dest->remote.compare_exchange_weak(
        head, b.head, std::memory_order_release, std::memory_order_relaxed));
    a.n_remote_flushes.fetch_add(1, std::memory_order_relaxed);
    b = remote_buffer{};
  }
  std::lock_guard<std::mutex> lk(a.mu);
  park_cache_locked(a, c);
}

inline tcache* my_cache() {
  tcache* c = tls.cache;
  if (c != nullptr) return c;
  arena& a = the_arena();
  {
    std::lock_guard<std::mutex> lk(a.mu);
    if (a.orphans != nullptr) {
      c = a.orphans;
      a.orphans = c->next_orphan;
      c->next_orphan = nullptr;
      a.n_adopted.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (c == nullptr) {
    c = new tcache();
    std::lock_guard<std::mutex> lk(a.mu);
    a.all_caches.push_back(c);
  }
  tls.cache = c;
  return c;
}

/// Carve a fresh chunk; returns false when the arena cap is reached (the
/// caller then falls back to the heap).
inline bool refill_bump(tcache* c) {
  arena& a = the_arena();
  std::size_t used = a.used_bytes.load(std::memory_order_relaxed);
  do {
    if (used + kChunkBytes > a.limit_bytes) return false;
  } while (!a.used_bytes.compare_exchange_weak(used, used + kChunkBytes,
                                               std::memory_order_relaxed));
  void* chunk = ::operator new(kChunkBytes, std::align_val_t{cache_line_size});
  {
    std::lock_guard<std::mutex> lk(a.mu);
    a.chunks.push_back(chunk);
  }
  a.n_chunks.fetch_add(1, std::memory_order_relaxed);
  c->bump = static_cast<std::byte*>(chunk);
  c->bump_end = c->bump + kChunkBytes;
  return true;
}

/// Move every remotely-freed block into the owner's local lists. Only the
/// owner calls this (MPSC pop side).
inline void drain_remote(tcache* c) {
  void* n = c->remote.exchange(nullptr, std::memory_order_acquire);
  std::size_t drained = 0;
  while (n != nullptr) {
    void* nx = next_of(n);
    auto* h = reinterpret_cast<block_header*>(static_cast<std::byte*>(n) -
                                              kHeaderBytes);
    next_of(n) = c->free_list[h->cls];
    c->free_list[h->cls] = n;
    ++c->free_count[h->cls];
    ++drained;
    n = nx;
  }
  if (drained != 0) obs::emit(obs::event::slab_remote_drain, drained);
}

inline void* slow_alloc(tcache* c, std::size_t cls) {
  drain_remote(c);
  if (c->free_list[cls] != nullptr) {
    void* p = c->free_list[cls];
    c->free_list[cls] = next_of(p);
    --c->free_count[cls];
    return p;
  }
  const std::size_t need = kHeaderBytes + class_bytes(cls);
  if (static_cast<std::size_t>(c->bump_end - c->bump) < need) {
    if (!refill_bump(c)) return nullptr;  // arena cap: caller uses the heap
  }
  auto* h = reinterpret_cast<block_header*>(c->bump);
  h->owner = c;
  h->cls = static_cast<std::uint32_t>(cls);
  h->magic = kMagic;
  void* payload = c->bump + kHeaderBytes;
  c->bump += need;
  return payload;
}

/// Queue a block for its foreign owner, publishing a whole chain when the
/// per-destination buffer fills.
inline void remote_free(tcache* me, tcache* dest, void* payload) {
  arena& a = the_arena();
  remote_buffer* slot = nullptr;
  for (remote_buffer& b : me->rbuf) {
    if (b.dest == dest) {
      slot = &b;
      break;
    }
    if (slot == nullptr && b.dest == nullptr) slot = &b;
  }
  if (slot == nullptr) {
    // All buffers busy with other destinations: evict the fullest one.
    slot = &me->rbuf[0];
    for (remote_buffer& b : me->rbuf) {
      if (b.count > slot->count) slot = &b;
    }
  }
  if (slot->dest != dest && slot->dest != nullptr) {
    void* head = slot->dest->remote.load(std::memory_order_relaxed);
    do {
      next_of(slot->tail) = head;
    } while (!slot->dest->remote.compare_exchange_weak(
        head, slot->head, std::memory_order_release,
        std::memory_order_relaxed));
    a.n_remote_flushes.fetch_add(1, std::memory_order_relaxed);
    *slot = remote_buffer{};
  }
  if (slot->dest == nullptr) slot->dest = dest;
  next_of(payload) = slot->head;
  slot->head = payload;
  if (slot->tail == nullptr) slot->tail = payload;
  if (++slot->count >= kRemoteBatch) {
    void* head = dest->remote.load(std::memory_order_relaxed);
    do {
      next_of(slot->tail) = head;
    } while (!dest->remote.compare_exchange_weak(head, slot->head,
                                                 std::memory_order_release,
                                                 std::memory_order_relaxed));
    a.n_remote_flushes.fetch_add(1, std::memory_order_relaxed);
    *slot = remote_buffer{};
  }
}

}  // namespace detail

/// Runtime switch. Must only change while no slab-allocated node is live.
inline void set_enabled(bool on) {
  detail::enabled.store(on, std::memory_order_relaxed);
}

inline bool enabled() {
  return detail::enabled.load(std::memory_order_relaxed);
}

/// Arena cap in bytes (default 1 GiB). Test hook for the exhaustion path.
inline void set_limit_bytes(std::size_t bytes) {
  detail::the_arena().limit_bytes = bytes;
}

inline slab_stats stats() {
  detail::arena& a = detail::the_arena();
  return {a.n_chunks.load(std::memory_order_relaxed),
          a.n_external.load(std::memory_order_relaxed),
          a.n_adopted.load(std::memory_order_relaxed),
          a.n_parked.load(std::memory_order_relaxed),
          a.n_remote_flushes.load(std::memory_order_relaxed)};
}

/// Allocate `bytes` for a node. Never returns null (heap fallback throws on
/// OOM like plain `new`).
inline void* allocate(std::size_t bytes) {
  if (bytes <= kMaxPayload) {
    tcache* c = detail::my_cache();
    const std::size_t cls = detail::class_of(bytes);
    void* p = c->free_list[cls];
    if (p != nullptr) {  // hot path: pop the local free list
      c->free_list[cls] = detail::next_of(p);
      --c->free_count[cls];
      return p;
    }
    p = detail::slow_alloc(c, cls);
    if (p != nullptr) return p;
  }
  // Oversized or arena-capped: heap block with a null-owner header so
  // deallocate() can route it without any table lookup.
  detail::the_arena().n_external.fetch_add(1, std::memory_order_relaxed);
  auto* raw = static_cast<std::byte*>(::operator new(kHeaderBytes + bytes));
  auto* h = reinterpret_cast<block_header*>(raw);
  h->owner = nullptr;
  h->cls = 0;
  h->magic = kMagic;
  return raw + kHeaderBytes;
}

inline void deallocate(void* payload) {
  auto* h = reinterpret_cast<block_header*>(static_cast<std::byte*>(payload) -
                                            kHeaderBytes);
  if (h->owner == nullptr) {
    ::operator delete(static_cast<void*>(h));
    return;
  }
  tcache* me = detail::my_cache();
  if (h->owner == me) {
    detail::next_of(payload) = me->free_list[h->cls];
    me->free_list[h->cls] = payload;
    ++me->free_count[h->cls];
    return;
  }
  detail::remote_free(me, h->owner, payload);
}

/// True when `payload` was produced by `allocate` (slab or fallback): the
/// header magic survives in both paths. Used by node_alloc.hpp to route
/// frees of nodes allocated before the slab was enabled (there are none
/// under the documented contract, but the check keeps the debug build loud
/// instead of corrupting the heap).
inline bool owns(void* payload) {
  auto* h = reinterpret_cast<block_header*>(static_cast<std::byte*>(payload) -
                                            kHeaderBytes);
  return h->magic == kMagic;
}

}  // namespace hyaline::smr::core::slab
