// Fixed-capacity per-thread slot registry shared by the baseline SMR
// schemes (EBR, IBR, HP, HE).
//
// Every baseline keeps one record per thread id — a reservation word (or
// hazard array) that other threads scan, plus owner-private retired-node
// state. The record type is supplied by the scheme and must be
// default-constructible and cache-line aligned (`alignas(cache_line_size)`
// on the record, as in the seed implementations) so adjacent threads never
// false-share.
#pragma once

#include <memory>

namespace hyaline::smr::core {

/// Owns `n` default-constructed records indexed by thread id.
template <class Rec>
class thread_registry {
 public:
  explicit thread_registry(unsigned n) : n_(n), recs_(new Rec[n]) {}

  thread_registry(const thread_registry&) = delete;
  thread_registry& operator=(const thread_registry&) = delete;

  unsigned size() const { return n_; }

  Rec& operator[](unsigned tid) { return recs_[tid]; }
  const Rec& operator[](unsigned tid) const { return recs_[tid]; }

  Rec* begin() { return recs_.get(); }
  Rec* end() { return recs_.get() + n_; }
  const Rec* begin() const { return recs_.get(); }
  const Rec* end() const { return recs_.get() + n_; }

 private:
  unsigned n_;
  std::unique_ptr<Rec[]> recs_;
};

}  // namespace hyaline::smr::core
