// Transparent thread identity for the SMR schemes.
//
// API v1 required every call site to hand-thread a `tid` into each guard.
// API v2 makes thread identity an implementation detail: a guard leases a
// thread id (or slot) from its domain's `tid_pool` through a thread-local
// cache, so the first guard a thread takes against a domain pays one
// mutex-protected pool acquire and every later guard is a small TLS scan.
// A lease is checked in when its guard dies but stays *cached* by the
// owning thread for instant reuse; the pool gets it back only when the
// thread exits. Nested guards on one thread check out distinct tids, which
// preserves the "one reservation per record" invariant of the baseline
// schemes (EBR/IBR/HP/HE) and the 1:1 slot mapping of Hyaline-1.
//
// Also here:
//   - thread_registry<Rec>: the per-thread record array those schemes scan
//     (one reservation word / hazard array per tid), now owning the pool
//     its guards lease from;
//   - tls_cache<V>: per-(thread, domain) value cache used by the Hyaline
//     variants for their thread-local batch builders;
//   - thread_hint(): a small dense per-thread integer for slot placement
//     where no capacity-bounded lease is needed (multi-list Hyaline
//     supports any number of threads per slot).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "smr/stats.hpp"

namespace hyaline::smr::core {

/// Process-unique id source shared by pools, domains, and TLS caches.
inline std::uint64_t next_unique_id() {
  static std::atomic<std::uint64_t> ids{1};
  return ids.fetch_add(1, std::memory_order_relaxed);
}

/// Small dense per-thread integer: the slot-placement hint for schemes that
/// need no bounded registration (§3.2: "a thread chooses randomly or based
/// on its ID").
inline unsigned thread_hint() {
  static std::atomic<unsigned> source{0};
  thread_local const unsigned hint =
      source.fetch_add(1, std::memory_order_relaxed);
  return hint;
}

/// Fixed-capacity pool of thread ids. Hands out the lowest free id so unit
/// tests see deterministic assignment. Throws (instead of corrupting a
/// neighbour's record) when the capacity is exhausted.
class tid_pool {
 public:
  explicit tid_pool(unsigned capacity)
      : id_(next_unique_id()), used_(capacity, false) {}

  tid_pool(const tid_pool&) = delete;
  tid_pool& operator=(const tid_pool&) = delete;

  std::uint64_t id() const { return id_; }
  unsigned capacity() const { return static_cast<unsigned>(used_.size()); }

  /// Attach the owning domain's event counters: every slow-path checkout
  /// (pool acquire, as opposed to a TLS cache hit) is counted.
  void attach(domain_counters* c) { ctrs_ = c; }

  unsigned acquire() {
    std::lock_guard<std::mutex> lk(mu_);
    for (unsigned i = 0; i < used_.size(); ++i) {
      if (!used_[i]) {
        used_[i] = true;
        if (ctrs_ != nullptr) ctrs_->on_tid_acquire();
        return i;
      }
    }
    throw std::runtime_error(
        "smr: thread id pool exhausted (capacity " +
        std::to_string(used_.size()) +
        "): ids are leased per (live thread, domain) — each live thread "
        "that ever held a guard keeps its id cached until it exits, and "
        "nested guards lease one id each — so max_threads must cover "
        "every such thread, not just the concurrently active ones");
  }

  void release(unsigned tid) noexcept {
    std::lock_guard<std::mutex> lk(mu_);
    used_[tid] = false;
  }

  /// The owning domain is going away: lets the per-thread lease caches
  /// prune their entries for this pool instead of holding them (and this
  /// object, via shared_ptr) until thread exit.
  void close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  const std::uint64_t id_;
  std::mutex mu_;
  std::vector<bool> used_;
  std::atomic<bool> closed_{false};
  domain_counters* ctrs_ = nullptr;
};

namespace detail {

struct cached_lease {
  std::uint64_t pool_id;
  unsigned tid;
  bool in_use;
  std::shared_ptr<tid_pool> pool;  // keeps the pool alive past its domain
};

/// Per-thread lease table; the destructor returns every cached tid to its
/// pool when the thread exits, so short-lived threads recycle ids.
struct lease_table {
  std::vector<cached_lease> leases;

  ~lease_table() {
    for (const cached_lease& l : leases) l.pool->release(l.tid);
  }
};

inline thread_local lease_table tls_leases;

}  // namespace detail

/// Visit every tid the *calling thread* has cached against `pool`,
/// including ids currently checked out by live guards. Used by the schemes'
/// quiesce() paths to clear lingering burst-entry reservations: iterating
/// the cache (instead of leasing a fresh id) touches only ids this thread
/// actually used and can never exhaust the pool.
template <class F>
inline void for_each_cached_tid(const std::shared_ptr<tid_pool>& pool,
                                F&& f) {
  const std::uint64_t pool_id = pool->id();
  for (const detail::cached_lease& l : detail::tls_leases.leases) {
    if (l.pool_id == pool_id) f(l.tid);
  }
}

/// RAII checkout of the calling thread's tid for one pool. Guards hold one
/// of these for their lifetime; nesting (two live guards, one thread, one
/// domain) checks out a second tid.
class tid_lease {
 public:
  explicit tid_lease(const std::shared_ptr<tid_pool>& pool)
      : pool_id_(pool->id()) {
    for (detail::cached_lease& l : detail::tls_leases.leases) {
      if (l.pool_id == pool_id_ && !l.in_use) {
        l.in_use = true;
        tid_ = l.tid;
        return;
      }
    }
    // Miss (first guard against this domain, or a nested guard): before
    // acquiring a fresh id, prune entries whose domain died — a thread
    // touching many short-lived domains must not retain their pools (or
    // scan their entries) forever. Off the cached-hit hot path.
    std::erase_if(detail::tls_leases.leases,
                  [](const detail::cached_lease& l) {
                    return !l.in_use && l.pool->closed();
                  });
    tid_ = pool->acquire();
    detail::tls_leases.leases.push_back({pool_id_, tid_, true, pool});
  }

  ~tid_lease() {
    for (detail::cached_lease& l : detail::tls_leases.leases) {
      if (l.pool_id == pool_id_ && l.tid == tid_) {
        l.in_use = false;
        return;
      }
    }
  }

  tid_lease(const tid_lease&) = delete;
  tid_lease& operator=(const tid_lease&) = delete;

  unsigned tid() const { return tid_; }

 private:
  std::uint64_t pool_id_;
  unsigned tid_;
};

/// Owns `n` default-constructed records indexed by thread id, plus the pool
/// guards lease those ids from. The record type is supplied by the scheme
/// and must be default-constructible and cache-line aligned
/// (`alignas(cache_line_size)` on the record) so adjacent threads never
/// false-share.
template <class Rec>
class thread_registry {
 public:
  explicit thread_registry(unsigned n)
      : n_(n), recs_(new Rec[n]), pool_(std::make_shared<tid_pool>(n)) {}

  ~thread_registry() { pool_->close(); }

  thread_registry(const thread_registry&) = delete;
  thread_registry& operator=(const thread_registry&) = delete;

  unsigned size() const { return n_; }

  /// The lease pool guards check their tid out of.
  const std::shared_ptr<tid_pool>& pool() const { return pool_; }

  Rec& operator[](unsigned tid) { return recs_[tid]; }
  const Rec& operator[](unsigned tid) const { return recs_[tid]; }

  Rec* begin() { return recs_.get(); }
  Rec* end() { return recs_.get() + n_; }
  const Rec* begin() const { return recs_.get(); }
  const Rec* end() const { return recs_.get() + n_; }

 private:
  unsigned n_;
  std::unique_ptr<Rec[]> recs_;
  std::shared_ptr<tid_pool> pool_;
};

/// Per-(thread, owner) value cache: `local()` returns the calling thread's
/// `V`, creating (and registering) it on first use. The owner can visit
/// every instance with `for_each` (quiescent drains) and deletes them all
/// at destruction. Lookup is a linear scan of a small thread-local vector —
/// a thread rarely touches more than a couple of domains.
template <class V>
class tls_cache {
 public:
  tls_cache()
      : id_(next_unique_id()),
        alive_(std::make_shared<std::atomic<bool>>(true)) {}

  ~tls_cache() {
    alive_->store(false, std::memory_order_release);
    std::lock_guard<std::mutex> lk(mu_);
    for (V* v : all_) delete v;
  }

  tls_cache(const tls_cache&) = delete;
  tls_cache& operator=(const tls_cache&) = delete;

  V& local() {
    std::vector<entry>& entries = tls_entries();
    for (const entry& e : entries) {
      if (e.owner == id_) return *static_cast<V*>(e.value);
    }
    // Miss (this thread's first use of this owner): prune entries of
    // destroyed owners before registering. Their values are already
    // freed, and the ids are process-unique so a stale entry can never be
    // matched — but letting them pile up would make the lookup scan, and
    // the memory a long-lived thread retains, grow with every domain ever
    // touched. Pruning here keeps the per-call hit path a bare scan.
    std::erase_if(entries, [](const entry& e) {
      return !e.owner_alive->load(std::memory_order_acquire);
    });
    V* v = new V;
    {
      std::lock_guard<std::mutex> lk(mu_);
      all_.push_back(v);
    }
    entries.push_back({id_, v, alive_});
    return *v;
  }

  template <class F>
  void for_each(F&& f) {
    std::lock_guard<std::mutex> lk(mu_);
    for (V* v : all_) f(*v);
  }

 private:
  struct entry {
    std::uint64_t owner;
    void* value;
    std::shared_ptr<const std::atomic<bool>> owner_alive;
  };

  static std::vector<entry>& tls_entries() {
    static thread_local std::vector<entry> entries;
    return entries;
  }

  const std::uint64_t id_;
  const std::shared_ptr<std::atomic<bool>> alive_;
  std::mutex mu_;
  std::vector<V*> all_;
};

}  // namespace hyaline::smr::core
