// Global era/epoch clock shared by the era-based schemes.
//
// EBR's epoch, IBR/HE's era, and Hyaline-S's allocation era are all the
// same object: a padded global 64-bit counter that threads read with
// seq_cst and advance either unconditionally (FAA, one bump every
// `era_freq` allocations) or conditionally (CAS, EBR's all-threads-caught-up
// rule). The era-validated read loop those schemes share lives here too.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/align.hpp"
#include "obs/trace.hpp"
#include "smr/stats.hpp"

namespace hyaline::smr::core {

class era_clock {
 public:
  explicit era_clock(std::uint64_t start) : era_(start) {}

  era_clock(const era_clock&) = delete;
  era_clock& operator=(const era_clock&) = delete;

  /// Attach the owning domain's event counters: every successful advance
  /// is counted (and traced) here, uniformly for all era-based schemes.
  void attach(domain_counters* c) { ctrs_ = c; }

  /// No default order: every call site spells how strong a read it needs
  /// (the relaxed-ordering audit in the README leans on this being
  /// visible at the call site).
  std::uint64_t load(std::memory_order order) const {
    return era_->load(order);
  }

  /// Unconditional advance (IBR/HE/Hyaline-S allocation clock).
  void advance() {
    // seq_cst: the bump is the boundary that separates "allocated in era
    // e" from "retired in era >= e"; scanners compare stamps taken on
    // both sides of it, so it must take part in the single total order
    // with the reservation publications.
    const std::uint64_t e = era_->fetch_add(1, std::memory_order_seq_cst);
    if (ctrs_ != nullptr) ctrs_->on_era_advance();
    obs::emit(obs::event::era_advance, e + 1);
  }

  /// Conditional advance from a known value (EBR: only the thread that
  /// verified every reservation caught up moves the epoch).
  bool try_advance(std::uint64_t expected) {
    // seq_cst: must not be reordered before the per-thread reservation
    // scan that justified the advance (store-load pairing with guard
    // entry publication).
    if (!era_->compare_exchange_strong(expected, expected + 1,
                                       std::memory_order_seq_cst)) {
      return false;
    }
    if (ctrs_ != nullptr) ctrs_->on_era_advance();
    obs::emit(obs::event::era_advance, expected + 1);
    return true;
  }

  /// Per-thread allocation tick: advance once every `freq` calls. The
  /// caller supplies its own (thread-local or per-builder) counter.
  void tick(std::uint64_t& counter, std::uint64_t freq) {
    if (++counter % freq == 0) advance();
  }

 private:
  padded<std::atomic<std::uint64_t>> era_;
  domain_counters* ctrs_ = nullptr;
};

/// Era-validated pointer acquisition (IBR's 2GE read, HE's get_protected,
/// Hyaline-S's deref): re-read the source until the published reservation
/// covers the current era. `publish(e)` must make era `e` visible to
/// scanners and return the reservation now in effect (>= e for CAS-max
/// publishers).
template <class T, class Publish>
T* protect_with_era(const std::atomic<T*>& src, const era_clock& clock,
                    std::uint64_t reserved, Publish&& publish) {
  for (;;) {
    T* p = src.load(std::memory_order_acquire);
    // seq_cst: the validating re-read must be ordered after the seq_cst
    // publication inside `publish` (store-load); an acquire load could
    // float above the published store and accept a stale era.
    const std::uint64_t e = clock.load(std::memory_order_seq_cst);
    if (e == reserved) return p;
    reserved = publish(e);
  }
}

}  // namespace hyaline::smr::core
