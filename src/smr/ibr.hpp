// Interval-Based Reclamation, 2GE variant (IBR) — Wen et al. [35].
//
// The scheme whose API the paper calls "reminiscent of EBR": each thread
// reserves a single era *interval* [lo, hi]; enter sets lo = hi = era, and
// every pointer acquisition extends hi to the current era (no per-pointer
// "unreserve", unlike HP/HE). Nodes carry birth and retire eras; a retired
// node is freed when its lifetime interval [birth, retire] intersects no
// thread's reservation interval. Robust, O(n) reclamation.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "common/align.hpp"
#include "smr/stats.hpp"

namespace hyaline::smr {

/// Tuning knobs for the IBR domain.
struct ibr_config {
  unsigned max_threads = 144;
  /// Bump the global era clock every `era_freq` allocations.
  std::uint64_t era_freq = 64;
  /// Scan this thread's retired list at this size (0 = auto).
  std::size_t scan_threshold = 0;
};

class ibr_domain {
 public:
  struct node {
    node* next = nullptr;
    std::uint64_t birth_era = 0;
    std::uint64_t retire_era = 0;
  };

  using free_fn_t = void (*)(node*);

  explicit ibr_domain(ibr_config cfg = {}) : cfg_(cfg) {
    if (cfg_.scan_threshold == 0) {
      cfg_.scan_threshold = 2 * std::size_t{cfg_.max_threads};
    }
    recs_ = new rec[cfg_.max_threads];
  }

  explicit ibr_domain(unsigned max_threads)
      : ibr_domain(ibr_config{max_threads, 64, 0}) {}

  ~ibr_domain() {
    drain();
    delete[] recs_;
  }

  ibr_domain(const ibr_domain&) = delete;
  ibr_domain& operator=(const ibr_domain&) = delete;

  void set_free_fn(free_fn_t fn) { free_fn_ = fn; }

  void on_alloc(node* n) {
    stats_->on_alloc();
    thread_local std::uint64_t alloc_counter = 0;
    if (++alloc_counter % cfg_.era_freq == 0) {
      era_->fetch_add(1, std::memory_order_seq_cst);
    }
    n->birth_era = era_->load(std::memory_order_seq_cst);
  }

  stats& counters() { return *stats_; }
  const stats& counters() const { return *stats_; }

  class guard {
   public:
    guard(ibr_domain& dom, unsigned tid) : dom_(dom), tid_(tid) {
      assert(tid < dom.cfg_.max_threads);
      const std::uint64_t e = dom_.era_->load(std::memory_order_seq_cst);
      rec& r = dom_.recs_[tid];
      r.lo.store(e, std::memory_order_seq_cst);
      r.hi.store(e, std::memory_order_seq_cst);
    }

    ~guard() {
      rec& r = dom_.recs_[tid_];
      r.lo.store(inactive, std::memory_order_release);
      r.hi.store(0, std::memory_order_release);
    }

    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;

    /// 2GE-IBR read: extend the reservation's upper bound to the current
    /// era, re-reading the pointer until the era is stable.
    template <class T>
    T* protect(unsigned /*idx*/, const std::atomic<T*>& src) {
      rec& r = dom_.recs_[tid_];
      std::uint64_t cur = r.hi.load(std::memory_order_relaxed);
      for (;;) {
        T* p = src.load(std::memory_order_acquire);
        const std::uint64_t e = dom_.era_->load(std::memory_order_seq_cst);
        if (e == cur) return p;
        r.hi.store(e, std::memory_order_seq_cst);
        cur = e;
      }
    }

    void retire(node* n) { dom_.retire(tid_, n); }

   private:
    ibr_domain& dom_;
    unsigned tid_;
  };

  void drain() {
    for (unsigned t = 0; t < cfg_.max_threads; ++t) scan(t);
  }

  std::uint64_t debug_era() const {
    return era_->load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t inactive = ~std::uint64_t{0};

  struct alignas(cache_line_size) rec {
    std::atomic<std::uint64_t> lo{inactive};
    std::atomic<std::uint64_t> hi{0};
    node* retired_head = nullptr;  // owner-thread private
    std::size_t retired_count = 0;
    std::size_t scan_at = 0;  // adaptive: kept + threshold after each scan
  };

  void retire(unsigned tid, node* n) {
    stats_->on_retire();
    n->retire_era = era_->load(std::memory_order_seq_cst);
    rec& r = recs_[tid];
    n->next = r.retired_head;
    r.retired_head = n;
    if (r.scan_at == 0) r.scan_at = cfg_.scan_threshold;
    // Adaptive rescan point: nodes pinned by long-lived reservations stay
    // on the list; rescanning them on a fixed period would make retire
    // O(list length). Rescan only once the list grew by a full threshold
    // beyond what the previous scan could not free.
    if (++r.retired_count >= r.scan_at) {
      scan(tid);
      // Geometric growth keeps retire amortized O(threads) even when most
      // of the list is pinned: the next scan happens only after the list
      // doubles (plus a floor of scan_threshold).
      r.scan_at = 2 * r.retired_count + cfg_.scan_threshold;
    }
  }

  bool can_free(const node* n) const {
    for (unsigned t = 0; t < cfg_.max_threads; ++t) {
      const std::uint64_t lo = recs_[t].lo.load(std::memory_order_seq_cst);
      if (lo == inactive) continue;
      const std::uint64_t hi = recs_[t].hi.load(std::memory_order_seq_cst);
      // Intervals intersect iff birth <= hi && retire >= lo.
      if (n->birth_era <= hi && n->retire_era >= lo) return false;
    }
    return true;
  }

  void scan(unsigned tid) {
    rec& r = recs_[tid];
    node* keep = nullptr;
    std::size_t kept = 0;
    node* n = r.retired_head;
    while (n != nullptr) {
      node* nx = n->next;
      if (can_free(n)) {
        free_fn_(n);
        stats_->on_free();
      } else {
        n->next = keep;
        keep = n;
        ++kept;
      }
      n = nx;
    }
    r.retired_head = keep;
    r.retired_count = kept;
  }

  static void default_free(node* n) { delete n; }

  ibr_config cfg_;
  rec* recs_ = nullptr;
  padded<std::atomic<std::uint64_t>> era_{1};
  free_fn_t free_fn_ = &default_free;
  padded_stats stats_;
};

}  // namespace hyaline::smr
