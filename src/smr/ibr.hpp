// Interval-Based Reclamation, 2GE variant (IBR) — Wen et al. [35].
//
// The scheme whose API the paper calls "reminiscent of EBR": each thread
// reserves a single era *interval* [lo, hi]; enter sets lo = hi = era, and
// every pointer acquisition extends hi to the current era (no per-pointer
// "unreserve", unlike HP/HE). Nodes carry birth and retire eras; a retired
// node is freed when its lifetime interval [birth, retire] intersects no
// thread's reservation interval. Robust, O(n) reclamation.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "common/align.hpp"
#include "obs/trace.hpp"
#include "smr/caps.hpp"
#include "smr/core/era_clock.hpp"
#include "smr/core/node_alloc.hpp"
#include "smr/core/retired_batch.hpp"
#include "smr/core/thread_registry.hpp"
#include "smr/protected_ptr.hpp"
#include "smr/stats.hpp"

namespace hyaline::smr {

/// Tuning knobs for the IBR domain.
struct ibr_config {
  unsigned max_threads = 144;
  /// Bump the global era clock every `era_freq` allocations.
  std::uint64_t era_freq = 64;
  /// Scan this thread's retired list at this size (0 = auto).
  std::size_t scan_threshold = 0;
  /// Amortized guard entry: keep the [lo, hi] reservation published for up
  /// to this many consecutive guards on one thread. A lingering interval
  /// pins exactly what one long-lived guard spanning the burst would pin
  /// (protect() still extends hi per acquisition), so robustness degrades
  /// only by the bounded burst length. 0 (default) = classic enter/leave.
  std::uint32_t entry_burst = 0;
  /// Retired-node sharding (see ebr_config::retire_shards). 0 = classic
  /// per-thread lists.
  unsigned retire_shards = 0;
};

class ibr_domain {
 public:
  /// needs_clean_edges: a scanner may read this thread's `hi` just before a
  /// concurrent protect() extends it, and free a freshly-born node the
  /// reader is about to return through a frozen (already-unlinked) edge —
  /// so traversals must only cross clean edges (ds/natarajan_tree.hpp).
  static constexpr smr::caps caps{
      .robust = true, .needs_clean_edges = true, .burst_entry = true};

  struct node : core::reclaimable {
    node* next = nullptr;
    std::uint64_t birth_era = 0;
    std::uint64_t retire_era = 0;
  };

  template <class T>
  using protected_ptr = raw_handle<T>;

  explicit ibr_domain(ibr_config cfg = {})
      : cfg_(validated(cfg)), recs_(cfg_.max_threads) {
    if (cfg_.scan_threshold == 0) {
      cfg_.scan_threshold = 2 * std::size_t{cfg_.max_threads};
    }
    if (cfg_.retire_shards != 0) {
      sharded_ =
          std::make_unique<core::sharded_retire<node>>(cfg_.retire_shards);
      sharded_->attach(&stats_->events);
    }
    era_.attach(&stats_->events);
    recs_.pool()->attach(&stats_->events);
    for (rec& r : recs_) r.retired.attach(&stats_->events);
  }

  explicit ibr_domain(unsigned max_threads)
      : ibr_domain(ibr_config{max_threads, 64, 0}) {}

  ~ibr_domain() { drain(); }

  ibr_domain(const ibr_domain&) = delete;
  ibr_domain& operator=(const ibr_domain&) = delete;

  void on_alloc(node* n) {
    stats_->on_alloc();
    thread_local std::uint64_t alloc_counter = 0;
    era_.tick(alloc_counter, cfg_.era_freq);
    // Audit(ibr-birth-load): acquire, not seq_cst. A stale-low birth era
    // makes the node look older, so its lifetime interval intersects more
    // reservations and it is freed later — strictly conservative.
    n->birth_era = era_.load(std::memory_order_acquire);
  }

  stats& counters() { return *stats_; }
  const stats& counters() const { return *stats_; }

  class guard {
   public:
    explicit guard(ibr_domain& dom) : dom_(dom), lease_(dom.recs_.pool()) {
      obs::emit(obs::event::guard_enter, lease_.tid());
      rec& r = dom_.recs_[lease_.tid()];
      if (dom_.cfg_.entry_burst != 0 &&
          r.lo.load(std::memory_order_relaxed) != inactive) {
        // Burst fast path: the previous guard's [lo, hi] is still
        // published, which covers this guard exactly as one long guard
        // would — protect() extends hi per acquisition regardless. No era
        // load, no stores.
        return;
      }
      // Audit(ibr-entry-load): acquire, not seq_cst. A stale-low era only
      // widens what this reservation pins: lo lower than current pins
      // strictly more retired nodes, and hi lower is harmless because the
      // constructor grants no pointers — protect() extends hi through its
      // seq_cst validation loop before any acquisition.
      const std::uint64_t e = dom_.era_.load(std::memory_order_acquire);
      // hi before lo: `lo` is the activity flag scanners test first, so it
      // must become visible last. The reverse order lets can_free observe
      // {lo = e, hi = 0-from-last-leave} — an empty interval — and free
      // nodes retired during this (live) reservation.
      // seq_cst: both stores pair store-load with can_free's scan; the
      // publication must precede this thread's structure reads in the
      // single total order or a scanner could miss a live interval.
      r.hi.store(e, std::memory_order_seq_cst);
      r.lo.store(e, std::memory_order_seq_cst);
      r.burst_left = dom_.cfg_.entry_burst;
    }

    ~guard() {
      obs::emit(obs::event::guard_exit, lease_.tid());
      rec& r = dom_.recs_[lease_.tid()];
      if (r.burst_left > 1) {
        // Burst fast path: keep the interval published for the next guard
        // (bounded by entry_burst; harness threads quiesce on idle/exit).
        --r.burst_left;
        return;
      }
      r.burst_left = 0;
      // release: the scanner's seq_cst read of the cleared words
      // synchronizes with these stores, ordering this guard's reads
      // before any free they unblock (hazard-clear pattern; no
      // store-load pairing is needed on the way out).
      r.lo.store(inactive, std::memory_order_release);
      r.hi.store(0, std::memory_order_release);
    }

    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;

    /// 2GE-IBR read: extend the reservation's upper bound to the current
    /// era, re-reading the pointer until the era is stable.
    template <class T>
    raw_handle<T> protect(const std::atomic<T*>& src) {
      rec& r = dom_.recs_[lease_.tid()];
      return raw_handle<T>(core::protect_with_era(
          src, dom_.era_, r.hi.load(std::memory_order_relaxed),
          [&r](std::uint64_t e) {
            // seq_cst: the hi extension must be ordered before the
            // validating era re-read in protect_with_era (store-load) so
            // a scanner cannot free the node between publish and check.
            r.hi.store(e, std::memory_order_seq_cst);
            return e;
          }));
    }

    template <class T>
    void retire(T* n) {
      n->smr_dtor = core::dtor_thunk<T>();
      dom_.retire(lease_.tid(), static_cast<node*>(n));
    }

   private:
    ibr_domain& dom_;
    core::tid_lease lease_;
  };

  /// Clear the calling thread's lingering burst reservation (see
  /// ebr_domain::quiesce). Must be called with no live guard on this
  /// thread; no-op when burst entry is off.
  void quiesce() {
    if (cfg_.entry_burst == 0) return;
    core::for_each_cached_tid(recs_.pool(), [this](unsigned tid) {
      rec& r = recs_[tid];
      r.burst_left = 0;
      // Audit(ibr-quiesce-clear): release, same hazard-clear argument as
      // the guard destructor above.
      r.lo.store(inactive, std::memory_order_release);
      r.hi.store(0, std::memory_order_release);
    });
  }

  void drain() {
    if (cfg_.entry_burst != 0) {
      // Quiescent by contract: any published interval is a burst leftover.
      for (rec& r : recs_) {
        r.burst_left = 0;
        // Audit(ibr-quiesce-clear): release, same argument as quiesce().
        r.lo.store(inactive, std::memory_order_release);
        r.hi.store(0, std::memory_order_release);
      }
    }
    if (sharded_ != nullptr) {
      for (unsigned s = 0; s < sharded_->shards(); ++s) scan_shard(s);
    }
    for (unsigned t = 0; t < recs_.size(); ++t) scan(t);
  }

  std::uint64_t debug_era() const {
    return era_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t inactive = ~std::uint64_t{0};

  static ibr_config validated(ibr_config cfg) {
    if (cfg.max_threads == 0) {
      throw std::invalid_argument("ibr_config: max_threads must be nonzero");
    }
    if (cfg.era_freq == 0) {
      throw std::invalid_argument("ibr_config: era_freq must be nonzero");
    }
    return cfg;
  }

  struct alignas(cache_line_size) rec {
    std::atomic<std::uint64_t> lo{inactive};
    std::atomic<std::uint64_t> hi{0};
    core::retired_list<node> retired;  // owner-thread private
    /// Guards left in the current entry burst (owner-thread only).
    std::uint32_t burst_left = 0;
  };

  void retire(unsigned tid, node* n) {
    stats_->stamp_retire(n);
    obs::emit(obs::event::retire, reinterpret_cast<std::uintptr_t>(n));
    // seq_cst: a stale-low retire stamp shrinks the node's lifetime
    // interval, so can_free misses reservations that still cover it and
    // frees early — this read must stay in the total order.
    n->retire_era = era_.load(std::memory_order_seq_cst);
    if (sharded_ != nullptr) {
      const unsigned s = sharded_->shard_of(tid);
      if (sharded_->push(s, n, cfg_.scan_threshold)) {
        scan_shard(s);
        const unsigned nb = (s + 1) % sharded_->shards();
        if (nb != s && sharded_->hot(nb, cfg_.scan_threshold)) {
          scan_shard(nb, /*steal=*/true);
        }
      }
      return;
    }
    rec& r = recs_[tid];
    if (r.retired.push(n, cfg_.scan_threshold)) {
      scan(tid);
      r.retired.rearm(cfg_.scan_threshold);
    }
  }

  bool can_free(const node* n) const {
    for (const rec& r : recs_) {
      // seq_cst: Dekker pairing with the guard's interval publication —
      // weaker loads could be ordered before a concurrent entry/extension
      // store and free a node the reader is about to use.
      const std::uint64_t lo = r.lo.load(std::memory_order_seq_cst);
      if (lo == inactive) continue;
      // seq_cst: same Dekker pairing as the lo read above.
      const std::uint64_t hi = r.hi.load(std::memory_order_seq_cst);
      // Intervals intersect iff birth <= hi && retire >= lo.
      if (n->birth_era <= hi && n->retire_era >= lo) return false;
    }
    return true;
  }

  void scan(unsigned tid) {
    recs_[tid].retired.scan(
        [this](const node* n) { return can_free(n); },
        [this](node* n) { stats_->free_node(n); });
  }

  void scan_shard(unsigned s, bool steal = false) {
    sharded_->scan(
        s, cfg_.scan_threshold,
        [this](const node* n) { return can_free(n); },
        [this](node* n) { stats_->free_node(n); }, steal);
  }

  ibr_config cfg_;
  core::thread_registry<rec> recs_;
  core::era_clock era_{1};
  std::unique_ptr<core::sharded_retire<node>> sharded_;  // null = classic
  padded_stats stats_;
};

}  // namespace hyaline::smr
