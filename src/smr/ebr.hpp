// Epoch-based reclamation (EBR) baseline.
//
// The three-epoch variant used by the paper's test framework (Fraser [18,
// 19], Hart et al. [21], as packaged by Wen et al. [35]): a global epoch
// clock, per-thread epoch reservations made at enter and cleared at leave,
// and per-thread limbo lists. A node retired in epoch e is freed once the
// global epoch reaches e+2 (by then every thread active at unlink time has
// left). Fast, but a single stalled thread pins the epoch and blocks
// reclamation globally — the non-robustness that Figure 10a demonstrates.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "common/align.hpp"
#include "smr/stats.hpp"

namespace hyaline::smr {

/// Tuning knobs for the EBR domain.
struct ebr_config {
  unsigned max_threads = 144;
  /// Attempt a global-epoch advance every `advance_freq` retires.
  std::uint64_t advance_freq = 64;
};

class ebr_domain {
 public:
  struct node {
    node* next = nullptr;
    std::uint64_t retire_epoch = 0;
  };

  using free_fn_t = void (*)(node*);

  explicit ebr_domain(ebr_config cfg = {})
      : cfg_(cfg), recs_(new rec[cfg.max_threads]) {}

  explicit ebr_domain(unsigned max_threads)
      : ebr_domain(ebr_config{max_threads, 64}) {}

  ~ebr_domain() {
    drain();
    delete[] recs_;
  }

  ebr_domain(const ebr_domain&) = delete;
  ebr_domain& operator=(const ebr_domain&) = delete;

  void set_free_fn(free_fn_t fn) { free_fn_ = fn; }
  void on_alloc(node*) { stats_->on_alloc(); }
  stats& counters() { return *stats_; }
  const stats& counters() const { return *stats_; }

  class guard {
   public:
    guard(ebr_domain& dom, unsigned tid) : dom_(dom), tid_(tid) {
      assert(tid < dom.cfg_.max_threads);
      dom_.recs_[tid].reservation.store(
          dom_.epoch_->load(std::memory_order_seq_cst),
          std::memory_order_seq_cst);
    }

    ~guard() {
      dom_.recs_[tid_].reservation.store(inactive,
                                         std::memory_order_seq_cst);
    }

    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;

    template <class T>
    T* protect(unsigned /*idx*/, const std::atomic<T*>& src) {
      return src.load(std::memory_order_acquire);
    }

    void retire(node* n) { dom_.retire(tid_, n); }

   private:
    ebr_domain& dom_;
    unsigned tid_;
  };

  /// Quiescent-state cleanup: with every reservation inactive, advancing
  /// the epoch twice makes every limbo node reclaimable.
  void drain() {
    for (int i = 0; i < 3; ++i) try_advance();
    for (unsigned t = 0; t < cfg_.max_threads; ++t) reclaim(t);
  }

  std::uint64_t debug_epoch() const {
    return epoch_->load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t inactive = ~std::uint64_t{0};

  struct alignas(cache_line_size) rec {
    std::atomic<std::uint64_t> reservation{inactive};
    node* limbo_head = nullptr;  // owner-thread private
    node* limbo_tail = nullptr;
    std::uint64_t retire_count = 0;
  };

  void retire(unsigned tid, node* n) {
    stats_->on_retire();
    rec& r = recs_[tid];
    n->retire_epoch = epoch_->load(std::memory_order_seq_cst);
    n->next = nullptr;
    if (r.limbo_tail == nullptr) {
      r.limbo_head = r.limbo_tail = n;
    } else {
      r.limbo_tail->next = n;
      r.limbo_tail = n;
    }
    if (++r.retire_count % cfg_.advance_freq == 0) {
      try_advance();
    }
    reclaim(tid);
  }

  /// Advance the global epoch if every active thread has observed it.
  void try_advance() {
    const std::uint64_t e = epoch_->load(std::memory_order_seq_cst);
    for (unsigned t = 0; t < cfg_.max_threads; ++t) {
      const std::uint64_t res =
          recs_[t].reservation.load(std::memory_order_seq_cst);
      if (res != inactive && res < e) return;  // straggler (or stalled)
    }
    std::uint64_t expected = e;
    epoch_->compare_exchange_strong(expected, e + 1,
                                   std::memory_order_seq_cst);
  }

  /// Free this thread's limbo nodes at least two epochs old. The limbo
  /// list is FIFO by retire epoch, so we pop from the head.
  void reclaim(unsigned tid) {
    rec& r = recs_[tid];
    const std::uint64_t e = epoch_->load(std::memory_order_seq_cst);
    while (r.limbo_head != nullptr &&
           r.limbo_head->retire_epoch + 2 <= e) {
      node* n = r.limbo_head;
      r.limbo_head = n->next;
      if (r.limbo_head == nullptr) r.limbo_tail = nullptr;
      free_fn_(n);
      stats_->on_free();
    }
  }

  static void default_free(node* n) { delete n; }

  const ebr_config cfg_;
  rec* recs_;
  padded<std::atomic<std::uint64_t>> epoch_{2};
  free_fn_t free_fn_ = &default_free;
  padded_stats stats_;
};

}  // namespace hyaline::smr
