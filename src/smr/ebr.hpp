// Epoch-based reclamation (EBR) baseline.
//
// The three-epoch variant used by the paper's test framework (Fraser [18,
// 19], Hart et al. [21], as packaged by Wen et al. [35]): a global epoch
// clock, per-thread epoch reservations made at enter and cleared at leave,
// and per-thread limbo lists. A node retired in epoch e is freed once the
// global epoch reaches e+2 (by then every thread active at unlink time has
// left). Fast, but a single stalled thread pins the epoch and blocks
// reclamation globally — the non-robustness that Figure 10a demonstrates.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "common/align.hpp"
#include "obs/trace.hpp"
#include "smr/caps.hpp"
#include "smr/core/era_clock.hpp"
#include "smr/core/node_alloc.hpp"
#include "smr/core/retired_batch.hpp"
#include "smr/core/thread_registry.hpp"
#include "smr/protected_ptr.hpp"
#include "smr/stats.hpp"

namespace hyaline::smr {

/// Tuning knobs for the EBR domain.
struct ebr_config {
  unsigned max_threads = 144;
  /// Attempt a global-epoch advance every `advance_freq` retires.
  std::uint64_t advance_freq = 64;
  /// Amortized guard entry: leave the epoch reservation published for up to
  /// this many consecutive guards on one thread. A lingering reservation is
  /// indistinguishable from one long-lived guard spanning the burst, so the
  /// three-epoch safety argument is untouched; the cost is that an *idle*
  /// thread can pin the epoch for one un-exited burst, which is why the
  /// harness quiesces threads that stop taking guards (see workload.hpp).
  /// 0 (the default) reproduces classic enter/leave exactly.
  std::uint32_t entry_burst = 0;
  /// Retired-node sharding: 0 keeps the classic per-thread limbo lists;
  /// N > 0 routes retires into N concurrent shards (tid % N) scanned on a
  /// size threshold with neighbour stealing, so reclamation no longer
  /// depends on the retiring thread coming back.
  unsigned retire_shards = 0;
};

class ebr_domain {
 public:
  static constexpr smr::caps caps{.burst_entry = true};

  struct node : core::reclaimable {
    node* next = nullptr;
    std::uint64_t retire_epoch = 0;
  };

  template <class T>
  using protected_ptr = raw_handle<T>;

  explicit ebr_domain(ebr_config cfg = {})
      : cfg_(validated(cfg)), recs_(cfg_.max_threads) {
    if (cfg_.retire_shards != 0) {
      sharded_ =
          std::make_unique<core::sharded_retire<node>>(cfg_.retire_shards);
      shard_threshold_ = std::max<std::size_t>(64, 2 * cfg_.max_threads);
      sharded_->attach(&stats_->events);
    }
    epoch_.attach(&stats_->events);
    recs_.pool()->attach(&stats_->events);
    for (rec& r : recs_) r.limbo.attach(&stats_->events);
  }

  explicit ebr_domain(unsigned max_threads)
      : ebr_domain(ebr_config{max_threads, 64}) {}

  ~ebr_domain() { drain(); }

  ebr_domain(const ebr_domain&) = delete;
  ebr_domain& operator=(const ebr_domain&) = delete;

  void on_alloc(node*) { stats_->on_alloc(); }
  stats& counters() { return *stats_; }
  const stats& counters() const { return *stats_; }

  class guard {
   public:
    explicit guard(ebr_domain& dom) : dom_(dom), lease_(dom.recs_.pool()) {
      obs::emit(obs::event::guard_enter, lease_.tid());
      rec& r = dom_.recs_[lease_.tid()];
      // Audit(ebr-entry-load): acquire, not seq_cst. Reading a stale-low
      // epoch publishes an older reservation, which only pins the epoch
      // longer (conservative); the three-epoch grace period tolerates one
      // epoch of entry staleness by design, and the seq_cst reservation
      // store below is what actually orders the guard against scanners.
      const std::uint64_t e = dom_.epoch_.load(std::memory_order_acquire);
      if (dom_.cfg_.entry_burst != 0 &&
          r.reservation.load(std::memory_order_relaxed) == e) {
        // Burst fast path: our reservation (published by a previous guard
        // on this thread and never cleared) already equals the current
        // epoch, so this guard is covered as if the previous one never
        // left. No store, no fence.
        return;
      }
      // seq_cst: Dekker store-load pairing with try_advance — the
      // publication must be ordered before this thread's structure reads,
      // and before any scanner load that could miss it and advance.
      r.reservation.store(e, std::memory_order_seq_cst);
      r.burst_left = dom_.cfg_.entry_burst;
    }

    ~guard() {
      obs::emit(obs::event::guard_exit, lease_.tid());
      rec& r = dom_.recs_[lease_.tid()];
      if (r.burst_left > 1) {
        // Burst fast path: leave the reservation published for the next
        // guard. Bounded by entry_burst, after which we genuinely leave so
        // a thread that stops using the structure releases the epoch.
        --r.burst_left;
        return;
      }
      r.burst_left = 0;
      // Audit(ebr-exit-clear): release, not seq_cst (IBR's dtor already
      // did this). A scanner's seq_cst load that observes `inactive`
      // synchronizes with this store, so every critical-section read
      // happens-before any free it enables; nothing pairs with the
      // store-load direction at guard exit. Saves an XCHG per guard.
      r.reservation.store(inactive, std::memory_order_release);
    }

    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;

    template <class T>
    raw_handle<T> protect(const std::atomic<T*>& src) {
      return raw_handle<T>(src.load(std::memory_order_acquire));
    }

    template <class T>
    void retire(T* n) {
      n->smr_dtor = core::dtor_thunk<T>();
      dom_.retire(lease_.tid(), static_cast<node*>(n));
    }

   private:
    ebr_domain& dom_;
    core::tid_lease lease_;
  };

  /// Burst-entry cleanup for the *calling thread*: clear any reservation
  /// left lingering by the amortized guard exit so an idle thread cannot
  /// block epoch advancement. Must be called with no live guard on this
  /// thread; no-op when burst entry is off.
  void quiesce() {
    if (cfg_.entry_burst == 0) return;
    core::for_each_cached_tid(recs_.pool(), [this](unsigned tid) {
      rec& r = recs_[tid];
      r.burst_left = 0;
      // Audit(ebr-exit-clear): release, same argument as the guard dtor.
      r.reservation.store(inactive, std::memory_order_release);
    });
  }

  /// Quiescent-state cleanup: with every reservation inactive, advancing
  /// the epoch twice makes every limbo node reclaimable.
  void drain() {
    if (cfg_.entry_burst != 0) {
      // Quiescent by contract: no guard is live anywhere, so any published
      // reservation is a burst leftover of an idle or exited thread.
      for (rec& r : recs_) {
        r.burst_left = 0;
        // Audit(ebr-exit-clear): release, same argument as the guard dtor.
        r.reservation.store(inactive, std::memory_order_release);
      }
    }
    for (int i = 0; i < 3; ++i) try_advance();
    if (sharded_ != nullptr) {
      for (unsigned s = 0; s < sharded_->shards(); ++s) scan_shard(s);
    }
    for (unsigned t = 0; t < recs_.size(); ++t) reclaim(t);
  }

  std::uint64_t debug_epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t inactive = ~std::uint64_t{0};

  static ebr_config validated(ebr_config cfg) {
    if (cfg.max_threads == 0) {
      throw std::invalid_argument("ebr_config: max_threads must be nonzero");
    }
    if (cfg.advance_freq == 0) {
      throw std::invalid_argument("ebr_config: advance_freq must be nonzero");
    }
    return cfg;
  }

  struct alignas(cache_line_size) rec {
    std::atomic<std::uint64_t> reservation{inactive};
    core::limbo_queue<node> limbo;  // owner-thread private
    std::uint64_t retire_count = 0;
    /// Guards left in the current entry burst (owner-thread only).
    std::uint32_t burst_left = 0;
  };

  void retire(unsigned tid, node* n) {
    stats_->stamp_retire(n);
    obs::emit(obs::event::retire, reinterpret_cast<std::uintptr_t>(n));
    rec& r = recs_[tid];
    // seq_cst: the retire stamp must not read stale-low. A stamp one
    // behind the true epoch frees at stamp+2 while a reader reserved at
    // the true epoch can still be live (the advance that frees does not
    // wait for it) — a real use-after-free, so this stays strong.
    n->retire_epoch = epoch_.load(std::memory_order_seq_cst);
    if (sharded_ != nullptr) {
      const unsigned s = sharded_->shard_of(tid);
      const bool hot = sharded_->push(s, n, shard_threshold_);
      if (++r.retire_count % cfg_.advance_freq == 0) try_advance();
      if (hot) {
        scan_shard(s);
        const unsigned nb = (s + 1) % sharded_->shards();
        if (nb != s && sharded_->hot(nb, shard_threshold_)) {
          // steal-on-scan: the neighbour's group is idle
          scan_shard(nb, /*steal=*/true);
        }
      }
      return;
    }
    r.limbo.push_back(n);
    if (++r.retire_count % cfg_.advance_freq == 0) {
      try_advance();
    }
    reclaim(tid);
  }

  /// Advance the global epoch if every active thread has observed it.
  void try_advance() {
    // Audit(ebr-advance-load): acquire, not seq_cst. A stale-low `e`
    // either flags fewer stragglers and then fails the seq_cst CAS in
    // try_advance(e) (which validates `e` against the real clock), or
    // returns early — both conservative.
    const std::uint64_t e = epoch_.load(std::memory_order_acquire);
    for (const rec& r : recs_) {
      // seq_cst: Dekker pairing with guard-entry publication. An acquire
      // load here could be ordered before a concurrent entry store and
      // miss a reservation that the advance must wait for.
      const std::uint64_t res =
          r.reservation.load(std::memory_order_seq_cst);
      if (res != inactive && res < e) return;  // straggler (or stalled)
    }
    epoch_.try_advance(e);
  }

  /// Free this thread's limbo nodes at least two epochs old. The limbo
  /// list is FIFO by retire epoch, so we pop from the head.
  void reclaim(unsigned tid) {
    // Audit(ebr-reclaim-load): acquire, not seq_cst. Any epoch value read
    // was genuinely reached, and reading it acquire completes the chain
    // leaver-release-clear -> advance CAS -> this load, so the departed
    // readers' accesses happen-before the frees below. Stale-low only
    // delays frees.
    const std::uint64_t e = epoch_.load(std::memory_order_acquire);
    recs_[tid].limbo.reclaim_ready(
        [e](const node* n) { return n->retire_epoch + 2 <= e; },
        [this](node* n) { stats_->free_node(n); });
  }

  void scan_shard(unsigned s, bool steal = false) {
    // Audit(ebr-reclaim-load): acquire, same argument as reclaim().
    const std::uint64_t e = epoch_.load(std::memory_order_acquire);
    sharded_->scan(
        s, shard_threshold_,
        [e](const node* n) { return n->retire_epoch + 2 <= e; },
        [this](node* n) { stats_->free_node(n); }, steal);
  }

  const ebr_config cfg_;
  core::thread_registry<rec> recs_;
  core::era_clock epoch_{2};
  std::unique_ptr<core::sharded_retire<node>> sharded_;  // null = classic
  std::size_t shard_threshold_ = 0;
  padded_stats stats_;
};

}  // namespace hyaline::smr
