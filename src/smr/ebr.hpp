// Epoch-based reclamation (EBR) baseline.
//
// The three-epoch variant used by the paper's test framework (Fraser [18,
// 19], Hart et al. [21], as packaged by Wen et al. [35]): a global epoch
// clock, per-thread epoch reservations made at enter and cleared at leave,
// and per-thread limbo lists. A node retired in epoch e is freed once the
// global epoch reaches e+2 (by then every thread active at unlink time has
// left). Fast, but a single stalled thread pins the epoch and blocks
// reclamation globally — the non-robustness that Figure 10a demonstrates.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>

#include "common/align.hpp"
#include "smr/caps.hpp"
#include "smr/core/era_clock.hpp"
#include "smr/core/node_alloc.hpp"
#include "smr/core/retired_batch.hpp"
#include "smr/core/thread_registry.hpp"
#include "smr/protected_ptr.hpp"
#include "smr/stats.hpp"

namespace hyaline::smr {

/// Tuning knobs for the EBR domain.
struct ebr_config {
  unsigned max_threads = 144;
  /// Attempt a global-epoch advance every `advance_freq` retires.
  std::uint64_t advance_freq = 64;
};

class ebr_domain {
 public:
  static constexpr smr::caps caps{};

  struct node : core::reclaimable {
    node* next = nullptr;
    std::uint64_t retire_epoch = 0;
  };

  template <class T>
  using protected_ptr = raw_handle<T>;

  explicit ebr_domain(ebr_config cfg = {})
      : cfg_(validated(cfg)), recs_(cfg_.max_threads) {}

  explicit ebr_domain(unsigned max_threads)
      : ebr_domain(ebr_config{max_threads, 64}) {}

  ~ebr_domain() { drain(); }

  ebr_domain(const ebr_domain&) = delete;
  ebr_domain& operator=(const ebr_domain&) = delete;

  void on_alloc(node*) { stats_->on_alloc(); }
  stats& counters() { return *stats_; }
  const stats& counters() const { return *stats_; }

  class guard {
   public:
    explicit guard(ebr_domain& dom) : dom_(dom), lease_(dom.recs_.pool()) {
      dom_.recs_[lease_.tid()].reservation.store(dom_.epoch_.load(),
                                                 std::memory_order_seq_cst);
    }

    ~guard() {
      dom_.recs_[lease_.tid()].reservation.store(inactive,
                                                 std::memory_order_seq_cst);
    }

    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;

    template <class T>
    raw_handle<T> protect(const std::atomic<T*>& src) {
      return raw_handle<T>(src.load(std::memory_order_acquire));
    }

    template <class T>
    void retire(T* n) {
      n->smr_dtor = core::dtor_thunk<T>();
      dom_.retire(lease_.tid(), static_cast<node*>(n));
    }

   private:
    ebr_domain& dom_;
    core::tid_lease lease_;
  };

  /// Quiescent-state cleanup: with every reservation inactive, advancing
  /// the epoch twice makes every limbo node reclaimable.
  void drain() {
    for (int i = 0; i < 3; ++i) try_advance();
    for (unsigned t = 0; t < recs_.size(); ++t) reclaim(t);
  }

  std::uint64_t debug_epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t inactive = ~std::uint64_t{0};

  static ebr_config validated(ebr_config cfg) {
    if (cfg.max_threads == 0) {
      throw std::invalid_argument("ebr_config: max_threads must be nonzero");
    }
    if (cfg.advance_freq == 0) {
      throw std::invalid_argument("ebr_config: advance_freq must be nonzero");
    }
    return cfg;
  }

  struct alignas(cache_line_size) rec {
    std::atomic<std::uint64_t> reservation{inactive};
    core::limbo_queue<node> limbo;  // owner-thread private
    std::uint64_t retire_count = 0;
  };

  void retire(unsigned tid, node* n) {
    stats_->on_retire();
    rec& r = recs_[tid];
    n->retire_epoch = epoch_.load();
    r.limbo.push_back(n);
    if (++r.retire_count % cfg_.advance_freq == 0) {
      try_advance();
    }
    reclaim(tid);
  }

  /// Advance the global epoch if every active thread has observed it.
  void try_advance() {
    const std::uint64_t e = epoch_.load();
    for (const rec& r : recs_) {
      const std::uint64_t res =
          r.reservation.load(std::memory_order_seq_cst);
      if (res != inactive && res < e) return;  // straggler (or stalled)
    }
    epoch_.try_advance(e);
  }

  /// Free this thread's limbo nodes at least two epochs old. The limbo
  /// list is FIFO by retire epoch, so we pop from the head.
  void reclaim(unsigned tid) {
    const std::uint64_t e = epoch_.load();
    recs_[tid].limbo.reclaim_ready(
        [e](const node* n) { return n->retire_epoch + 2 <= e; },
        [this](node* n) {
          core::destroy(n);
          stats_->on_free();
        });
  }

  const ebr_config cfg_;
  core::thread_registry<rec> recs_;
  core::era_clock epoch_{2};
  padded_stats stats_;
};

}  // namespace hyaline::smr
