// The uniform SMR domain facade.
//
// Every reclamation scheme in this library (the four Hyaline variants and
// the five baselines) implements the same compile-time interface so the
// lock-free data structures in src/ds can be instantiated over any of them,
// exactly like the benchmark framework the paper builds on:
//
//   class D {
//     struct node;                       // intrusive header base class
//     class guard {                      // RAII enter/leave
//       guard(D& dom, unsigned tid);     // tid: thread id (baselines) or
//                                        //      slot hint (Hyaline)
//       ~guard();                        // leave
//       template <class T>
//       T* protect(unsigned idx, const std::atomic<T*>& src);
//       void retire(node* n);            // two-step reclamation, step 1
//     };
//     void set_free_fn(void (*)(node*)); // step 2: how to destroy a node
//     void on_alloc(node* n);            // birth-era initialization hook
//     smr::stats& counters();
//     void drain();                      // quiescent-state cleanup (tests /
//                                        // shutdown only)
//   };
//
// `protect` is the single pointer-acquisition primitive:
//   - epoch-style schemes (Leaky, EBR, Hyaline, Hyaline-1) implement it as
//     a plain acquire load;
//   - interval/era schemes (IBR, Hyaline-S, Hyaline-1S) bump their era
//     reservation and re-read until stable;
//   - pointer-publication schemes (HP, HE) publish into hazard index `idx`
//     and validate.
// Data structures must pass a distinct `idx` for every pointer that has to
// stay simultaneously protected (max_hazards() of them).
//
// Tag bits: `protect` may be handed atomics whose stored pointers carry low
// tag bits (mark/flag/tag); schemes that publish pointers strip the low
// three bits before publication and retire() is always called on untagged
// pointers, so publication and scan compare cleanly.
#pragma once

#include <atomic>
#include <concepts>

namespace hyaline::smr {

/// Compile-time check that a scheme implements the facade. Used in
/// static_asserts in tests; data structures rely on duck typing to keep
/// error messages local.
template <class D>
concept Domain = requires(D d, typename D::node* n, unsigned u,
                          const std::atomic<typename D::node*>& src) {
  typename D::node;
  typename D::guard;
  { d.counters() };
  { d.set_free_fn(static_cast<void (*)(typename D::node*)>(nullptr)) };
  { d.on_alloc(n) };
  { d.drain() };
  requires requires(typename D::guard g) {
    { g.template protect<typename D::node>(u, src) };
    { g.retire(n) };
  };
};

}  // namespace hyaline::smr
