// The uniform SMR domain facade — API v2.
//
// Every reclamation scheme in this library (the four Hyaline variants and
// the five baselines) implements the same compile-time interface so the
// lock-free data structures in src/ds can be instantiated over any of
// them. v2 makes the facade typed, composable, and self-describing:
//
//   class D {
//     static constexpr smr::caps caps{...};  // capability tags (caps.hpp)
//     struct node : smr::core::reclaimable;  // intrusive header base
//     template <class T> using protected_ptr = ...;  // protect() handle
//     class guard {                          // RAII enter/leave
//       explicit guard(D& dom);              // transparent thread identity:
//                                            //   the guard leases its
//                                            //   tid/slot internally
//       ~guard();                            // leave
//       template <class T>
//       protected_ptr<T> protect(const std::atomic<T*>& src);
//       template <class T> void retire(T* n);  // typed two-step
//                                              // reclamation, step 1; the
//                                              // per-type deleter is
//                                              // captured here
//     };
//     void on_alloc(node* n);                // birth-era initialization
//     smr::stats& counters();
//     void drain();                          // quiescent-state cleanup
//   };
//
// What changed from v1 and why:
//   - retire is typed: `g.retire(p)` records a type-erased destroy thunk
//     per node, so N structures with different node types can share one
//     domain. v1's `set_free_fn` (one global deleter per domain) is gone —
//     two structures over one domain used to silently overwrite each
//     other's deleter.
//   - protect returns an RAII `protected_ptr<T>` that leases a hazard slot
//     from the guard where the scheme publishes pointers (HP/HE) and is a
//     zero-cost wrapper everywhere else. v1's hand-numbered
//     `protect(idx, src)` is gone; the per-scheme slot budget is the
//     compile-time `max_hazards` query (smr::caps.hpp), static_asserted by
//     each structure at instantiation.
//   - guards take no tid: thread identity is leased from a thread-local
//     cache (core/thread_registry.hpp). The paper's transparency property
//     — threads use reclamation without registration ceremony — now holds
//     for every scheme's public API, not just Hyaline's.
//   - informal restrictions (HP/HE can't run Bonsai, robust schemes can't
//     run Harris's original list, clean-edge traversal) are `D::caps`
//     fields consumed by the registry, the structures, and this concept.
#pragma once

#include <atomic>
#include <concepts>

#include "smr/caps.hpp"
#include "smr/core/node_alloc.hpp"

namespace hyaline::smr {

/// Compile-time check that a scheme implements the v2 facade. Enforced (by
/// static_assert) for every registered scheme in harness/registry.cpp and
/// for the domain parameter of every data structure in src/ds — the single
/// source of truth for the public API, not documentation.
template <class D>
concept Domain = requires(D d, typename D::node* n,
                          const std::atomic<typename D::node*>& src) {
  typename D::node;
  typename D::guard;
  requires std::derived_from<typename D::node, core::reclaimable>;
  requires std::same_as<std::remove_cv_t<decltype(D::caps)>, caps>;
  requires std::constructible_from<typename D::guard, D&>;
  { d.counters() };
  { d.on_alloc(n) };
  { d.drain() };
  requires requires(typename D::guard g) {
    { g.protect(src).get() } -> std::same_as<typename D::node*>;
    { g.retire(n) };
  };
  requires max_hazards_v<D> >= 1;
};

}  // namespace hyaline::smr
