// Reclamation statistics shared by every SMR domain.
//
// The paper's Figures 9/12/14/16 plot the average number of retired but not
// yet reclaimed objects per operation; these counters are what the harness
// samples to regenerate them. Counters are relaxed (they are monotone
// statistics, not synchronization).
//
// Three surfaces live here:
//   - the original alloc/retire/free ledgers,
//   - `domain_counters`: mechanism-level event counts (scans, steals,
//     rearms, batch finalizes, era advances, tid acquires) bumped by the
//     core primitives every scheme is built from, so all 12 schemes report
//     them uniformly without per-scheme bookkeeping,
//   - `lag_counters`: a log-bucketed retire->free lag histogram (same
//     bucket geometry as lab::latency_histogram) fed at free time from the
//     retire timestamp stamped on the node. Lag tracking is gated by
//     obs::lag_tracking() — off, retire/free pay one relaxed load each.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>

#include "common/align.hpp"
#include "obs/trace.hpp"
#include "smr/core/node_alloc.hpp"

namespace hyaline::smr {

/// Mechanism-level event counters, bumped (relaxed) by the core retired-set
/// primitives and the schemes' steal/finalize call sites. Monotone
/// statistics only — never synchronization.
struct domain_counters {
  std::atomic<std::uint64_t> scans{0};      // reclamation passes over a retired set
  std::atomic<std::uint64_t> steals{0};     // scans of a neighbour's shard
  std::atomic<std::uint64_t> rearms{0};     // adaptive rescan-point resets
  std::atomic<std::uint64_t> finalizes{0};  // Hyaline batch finalizations
  std::atomic<std::uint64_t> era_advances{0};
  std::atomic<std::uint64_t> tid_acquires{0};  // slow-path tid pool checkouts

  void on_scan() { scans.fetch_add(1, std::memory_order_relaxed); }
  void on_steal() { steals.fetch_add(1, std::memory_order_relaxed); }
  void on_rearm() { rearms.fetch_add(1, std::memory_order_relaxed); }
  void on_finalize() { finalizes.fetch_add(1, std::memory_order_relaxed); }
  void on_era_advance() {
    era_advances.fetch_add(1, std::memory_order_relaxed);
  }
  void on_tid_acquire() {
    tid_acquires.fetch_add(1, std::memory_order_relaxed);
  }
};

/// Atomic log2-bucketed histogram of retire->free lag in nanoseconds.
/// Bucket geometry matches lab::latency_histogram exactly (bucket 0 holds
/// {0}, bucket b holds [2^(b-1), 2^b - 1]) so the harness can rehydrate a
/// latency_histogram from a snapshot and reuse its percentile math.
struct lag_counters {
  static constexpr unsigned kBuckets = 65;

  std::atomic<std::uint64_t> bucket[kBuckets] = {};
  std::atomic<std::uint64_t> max_ns{0};

  void record(std::uint64_t ns) {
    bucket[std::bit_width(ns)].fetch_add(1, std::memory_order_relaxed);
    std::uint64_t m = max_ns.load(std::memory_order_relaxed);
    while (ns > m &&
           !max_ns.compare_exchange_weak(m, ns, std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
  }
};

/// Plain-integer copy of everything a domain counts, for carrying results
/// across domain teardown (workload_result, service_result).
struct stats_snapshot {
  std::uint64_t allocated = 0;
  std::uint64_t retired = 0;
  std::uint64_t freed = 0;
  std::uint64_t scans = 0;
  std::uint64_t steals = 0;
  std::uint64_t rearms = 0;
  std::uint64_t finalizes = 0;
  std::uint64_t era_advances = 0;
  std::uint64_t tid_acquires = 0;
  std::uint64_t lag_bucket[lag_counters::kBuckets] = {};
  std::uint64_t lag_count = 0;
  std::uint64_t lag_max_ns = 0;

  /// Element-wise sum (sharded service domains report one total).
  void accumulate(const stats_snapshot& o) {
    allocated += o.allocated;
    retired += o.retired;
    freed += o.freed;
    scans += o.scans;
    steals += o.steals;
    rearms += o.rearms;
    finalizes += o.finalizes;
    era_advances += o.era_advances;
    tid_acquires += o.tid_acquires;
    for (unsigned b = 0; b < lag_counters::kBuckets; ++b) {
      lag_bucket[b] += o.lag_bucket[b];
    }
    lag_count += o.lag_count;
    if (o.lag_max_ns > lag_max_ns) lag_max_ns = o.lag_max_ns;
  }
};

struct stats {
  std::atomic<std::uint64_t> allocated{0};
  std::atomic<std::uint64_t> retired{0};
  std::atomic<std::uint64_t> freed{0};
  domain_counters events;
  lag_counters lag;

  void on_alloc(std::uint64_t n = 1) {
    allocated.fetch_add(n, std::memory_order_relaxed);
  }
  void on_retire(std::uint64_t n = 1) {
    retired.fetch_add(n, std::memory_order_relaxed);
  }
  void on_free(std::uint64_t n = 1) {
    freed.fetch_add(n, std::memory_order_relaxed);
  }

  /// Retire-path half of lag tracking: stamp the node with the current
  /// tick count. One relaxed load + predicted branch when tracking is off.
  void stamp_retire(core::reclaimable* n) {
    on_retire();
    if (obs::lag_tracking()) [[unlikely]] {
      n->obs_retire_ticks = obs::now_ticks();
    }
  }

  /// Free-path counterpart: feed the lag histogram from the retire stamp,
  /// destroy the node through its typed thunk, bump the freed ledger.
  /// Every scheme's reclamation loop funnels user-retired nodes here.
  template <class Node>
  void free_node(Node* n) {
    if (obs::lag_tracking()) [[unlikely]] {
      if (n->obs_retire_ticks != 0) {
        lag.record(
            obs::ticks_to_ns(obs::now_ticks() - n->obs_retire_ticks));
      }
    }
    core::destroy(n);
    on_free();
  }

  /// Retired-but-not-yet-reclaimed snapshot. Relaxed reads: the value is a
  /// statistical sample, momentary inconsistencies are fine.
  std::uint64_t unreclaimed() const {
    const auto r = retired.load(std::memory_order_relaxed);
    const auto f = freed.load(std::memory_order_relaxed);
    return r >= f ? r - f : 0;
  }

  /// Relaxed copy-out of every counter (see stats_snapshot).
  stats_snapshot snapshot() const {
    stats_snapshot s;
    s.allocated = allocated.load(std::memory_order_relaxed);
    s.retired = retired.load(std::memory_order_relaxed);
    s.freed = freed.load(std::memory_order_relaxed);
    s.scans = events.scans.load(std::memory_order_relaxed);
    s.steals = events.steals.load(std::memory_order_relaxed);
    s.rearms = events.rearms.load(std::memory_order_relaxed);
    s.finalizes = events.finalizes.load(std::memory_order_relaxed);
    s.era_advances = events.era_advances.load(std::memory_order_relaxed);
    s.tid_acquires = events.tid_acquires.load(std::memory_order_relaxed);
    for (unsigned b = 0; b < lag_counters::kBuckets; ++b) {
      s.lag_bucket[b] = lag.bucket[b].load(std::memory_order_relaxed);
      s.lag_count += s.lag_bucket[b];
    }
    s.lag_max_ns = lag.max_ns.load(std::memory_order_relaxed);
    return s;
  }
};

using padded_stats = hyaline::padded<stats>;

}  // namespace hyaline::smr
