// Reclamation statistics shared by every SMR domain.
//
// The paper's Figures 9/12/14/16 plot the average number of retired but not
// yet reclaimed objects per operation; these counters are what the harness
// samples to regenerate them. Counters are relaxed (they are monotone
// statistics, not synchronization).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/align.hpp"

namespace hyaline::smr {

struct stats {
  std::atomic<std::uint64_t> allocated{0};
  std::atomic<std::uint64_t> retired{0};
  std::atomic<std::uint64_t> freed{0};

  void on_alloc(std::uint64_t n = 1) {
    allocated.fetch_add(n, std::memory_order_relaxed);
  }
  void on_retire(std::uint64_t n = 1) {
    retired.fetch_add(n, std::memory_order_relaxed);
  }
  void on_free(std::uint64_t n = 1) {
    freed.fetch_add(n, std::memory_order_relaxed);
  }

  /// Retired-but-not-yet-reclaimed snapshot. Relaxed reads: the value is a
  /// statistical sample, momentary inconsistencies are fine.
  std::uint64_t unreclaimed() const {
    const auto r = retired.load(std::memory_order_relaxed);
    const auto f = freed.load(std::memory_order_relaxed);
    return r >= f ? r - f : 0;
  }
};

using padded_stats = hyaline::padded<stats>;

}  // namespace hyaline::smr
