// Hyaline and Hyaline-S: the paper's primary contribution.
//
// This header implements the scalable multiple-list algorithm of §3.2 /
// Figure 3 (enter, leave, retire, trim, adjust, traverse), the robust
// Hyaline-S extension of §4.2 / Figure 5 (birth eras, per-slot access eras,
// the `touch` CAS-max, Ack-based stalled-slot avoidance), and the adaptive
// slot resizing of §4.3 / Figure 6, in one template:
//
//   basic_domain<Head, Robust>
//     Head   - head-tuple policy (head_packed / head_dw / head_llsc),
//              see common/head_policy.hpp
//     Robust - false: basic Hyaline; true: Hyaline-S
//
// Exported aliases (bottom of file): hyaline::domain, domain_dw,
// domain_llsc, domain_s, domain_s_dw, domain_s_llsc.
//
// Node header layout (paper §3.2: "each node keeps three variables
// irrespective of batch sizes and total number of slots"):
//
//   w0  carriers: Next pointer of the slot retirement list this node was
//       inserted into; REFS node: the per-batch NRef counter. Before the
//       batch is finalized, w0 of every node holds its birth era
//       (Hyaline-S; "shares space with Next", Fig. 5 line 19).
//   w1  batch chain link. The REFS node is the chain head, so free_batch
//       can walk the whole batch starting from it.
//   w2  carriers: pointer to the REFS node (bit 0 tags padding dummies);
//       REFS node: the batch's Adjs value (needed per-batch once the slot
//       count can change adaptively, §4.3; storing it unconditionally also
//       keeps the non-adaptive code path identical).
//
// Reference-count arithmetic is wrapping uint64: Adjs = floor((2^64-1)/k)+1
// so k*Adjs == 0 (mod 2^64), which is what lets a batch's counter reach
// zero only after all k per-slot adjustments *and* all referencing threads'
// decrements have landed (§3.2).
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <thread>

#include "common/align.hpp"
#include "common/head_policy.hpp"
#include "common/slot_directory.hpp"
#include "obs/trace.hpp"
#include "smr/caps.hpp"
#include "smr/core/era_clock.hpp"
#include "smr/core/node_alloc.hpp"
#include "smr/core/thread_registry.hpp"
#include "smr/protected_ptr.hpp"
#include "smr/stats.hpp"

namespace hyaline {

/// Tuning knobs for a Hyaline(-S) domain.
struct config {
  /// Number of slots k (power of two). 0 = next_pow2(hardware threads),
  /// at least 4. The paper caps k at the next power of two of the core
  /// count (128 on the 72-core testbed).
  std::size_t slots = 0;

  /// Hyaline-S only: allow the adaptive §4.3 slot-directory growth up to
  /// this many slots. 0 = no growth (the capped variant whose robustness
  /// cliff Figure 10a shows at 57 stalled threads).
  std::size_t max_slots = 0;

  /// Minimum batch size. The effective batch size is max(batch_min, k+1):
  /// a batch needs one carrier node per slot plus the REFS node (§3.2).
  /// The paper's evaluation uses 64.
  std::size_t batch_min = 64;

  /// Hyaline-S: global era clock increment frequency (one bump per
  /// `era_freq` allocations, Fig. 5 line 18).
  std::uint64_t era_freq = 64;

  /// Hyaline-S: Ack threshold above which a slot is presumed occupied by
  /// stalled threads and avoided by enter (§4.2 suggests e.g. 8192).
  std::int64_t ack_threshold = 8192;

  /// Amortized slot choice for the transparent guard: reuse the previously
  /// chosen slot for up to this many consecutive guards on one thread
  /// before re-running choose_slot(). The slot choice is a pure placement
  /// hint (any thread may use any slot, §3.2), so caching it never affects
  /// safety; for Hyaline-S it delays the ack-threshold stall-avoidance
  /// probe by at most one burst. Enter/leave (the FAA/CAS on the slot
  /// head) still run per guard — they are what make retirement safe.
  /// 0 (default) = choose on every guard. Guards constructed with an
  /// explicit slot hint never cache.
  std::uint32_t entry_burst = 0;
};

namespace detail {

inline std::size_t default_slot_count() {
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw < 4) hw = 4;
  return std::bit_ceil(hw);
}

/// Adjs for k slots (k a power of two): floor((2^64-1)/k) + 1, so that
/// k * Adjs wraps to exactly 0.
inline constexpr std::uint64_t adjs_for(std::size_t k) {
  return ~std::uint64_t{0} / k + 1;  // k == 1 -> wraps to 0 (simple version)
}

}  // namespace detail

/// A Hyaline / Hyaline-S reclamation domain.
template <template <class> class Head, bool Robust>
class basic_domain {
 public:
  /// Hyaline-S (needs_clean_edges): batch insertion skips slots whose
  /// access era predates every node in the batch, so a reader holding
  /// frozen (already spliced-out) garbage can reach a young node whose
  /// batch it was never refcounted into. Robust variants therefore require
  /// the clean-edge traversal discipline (see ds/natarajan_tree.hpp);
  /// basic Hyaline pins every batch retired during the guard's lifetime
  /// and does not.
  static constexpr smr::caps caps{.robust = Robust,
                                  .needs_clean_edges = Robust,
                                  .supports_trim = true,
                                  .burst_entry = true};

  /// Intrusive header every reclaimable object must derive from (three
  /// algorithm words — see file comment for the layout — plus the typed
  /// destroy thunk of the shared `reclaimable` base).
  struct node : smr::core::reclaimable {
    std::atomic<std::uintptr_t> w0{0};
    node* w1 = nullptr;
    std::uintptr_t w2 = 0;
  };

  using head_policy = Head<node>;
  using head_val = typename head_policy::val;

  template <class T>
  using protected_ptr = smr::raw_handle<T>;

  explicit basic_domain(config cfg = {})
      : cfg_(validated(cfg)),
        slots_(normalize_k(cfg_.slots),
               Robust && cfg_.max_slots > normalize_k(cfg_.slots)
                   ? std::bit_ceil(cfg_.max_slots)
                   : normalize_k(cfg_.slots)) {
    alloc_era_.attach(&stats_->events);
  }

  ~basic_domain() { drain(); }

  basic_domain(const basic_domain&) = delete;
  basic_domain& operator=(const basic_domain&) = delete;

  /// Birth-era hook (Fig. 5 init_node). Call right after allocating any
  /// object that will be retired through this domain. No-op for basic
  /// Hyaline (kept so data structures are scheme-agnostic).
  void on_alloc(node* n) {
    stats_->on_alloc();
    if constexpr (Robust) {
      auto& b = builders_.local();
      alloc_era_.tick(b.alloc_counter, cfg_.era_freq);
      // Audit(hyaline-birth-load): acquire, not seq_cst. A stale-low
      // birth era makes the node look older, so era-checking skips fewer
      // handoffs and the node is retained longer — conservative (same
      // argument as IBR/HE birth stamps).
      n->w0.store(alloc_era_.load(std::memory_order_acquire),
                  std::memory_order_relaxed);
    }
  }

  smr::stats& counters() { return *stats_; }
  const smr::stats& counters() const { return *stats_; }

  /// Current number of slots (grows only in adaptive Hyaline-S).
  std::size_t slot_count() const { return slots_.size(); }

  /// Effective batch size right now.
  std::size_t batch_size() const {
    const std::size_t k = slots_.size();
    return cfg_.batch_min > k + 1 ? cfg_.batch_min : k + 1;
  }

  /// RAII critical section: enter on construction, leave on destruction.
  class guard {
   public:
    /// Transparent enter: the slot is picked from a per-thread hint
    /// (threads never register — the paper's transparency property).
    /// With entry_burst set, the previous guard's slot choice is reused
    /// for a burst, skipping choose_slot's modulo (and, for Hyaline-S,
    /// its ack probe) on the hot path.
    explicit guard(basic_domain& dom) : dom_(dom) {
      builder_ = &dom_.builders_.local();
      if (dom_.cfg_.entry_burst != 0 && builder_->slot_probe_left != 0) {
        --builder_->slot_probe_left;
        slot_ = builder_->slot_cache;
      } else {
        slot_ = dom_.choose_slot(smr::core::thread_hint());
        builder_->slot_cache = slot_;
        builder_->slot_probe_left = dom_.cfg_.entry_burst;
      }
      obs::emit(obs::event::guard_enter, slot_);
      handle_ = dom_.enter(slot_);
    }

    /// Explicit placement: `slot_hint` picks the slot (mod k); Hyaline
    /// supports any number of threads per slot, so a thread id, a random
    /// number, or anything else works (§3.2: "a thread chooses randomly or
    /// based on its ID"). White-box tests use this to stage interleavings
    /// deterministically.
    guard(basic_domain& dom, unsigned slot_hint) : dom_(dom) {
      slot_ = dom_.choose_slot(slot_hint);
      obs::emit(obs::event::guard_enter, slot_);
      handle_ = dom_.enter(slot_);
      builder_ = &dom_.builders_.local();
    }

    ~guard() {
      obs::emit(obs::event::guard_exit, slot_);
      if (active_) dom_.leave(slot_, handle_);
    }

    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;

    /// Acquire a pointer for safe traversal. Basic Hyaline: plain acquire
    /// load (no per-access cost — the paper's transparency/performance
    /// claim). Hyaline-S: the Fig. 5 deref loop, keeping this slot's
    /// access era in sync with the global era clock. The handle is the
    /// zero-cost wrapper: protection is guard-lifetime / era based.
    template <class T>
    smr::raw_handle<T> protect(const std::atomic<T*>& src) {
      if constexpr (!Robust) {
        return smr::raw_handle<T>(src.load(std::memory_order_acquire));
      } else {
        slot_rec& sl = dom_.slots_.at(slot_);
        return smr::raw_handle<T>(smr::core::protect_with_era(
            src, dom_.alloc_era_,
            // seq_cst: shared slot reservation (CAS-maxed by every thread on
            // the slot); reads stay in touch()'s total order so the validate
            // loop never accepts a stale reservation.
            sl.access_era.load(std::memory_order_seq_cst),
            [this, &sl](std::uint64_t e) { return dom_.touch(sl, e); }));
      }
    }

    /// Retire a node unlinked from the data structure, capturing T's
    /// deleter. O(1): appends to the thread-local batch; every
    /// batch_size() retires the batch is inserted into the k slot lists
    /// (amortized O(1) per retire, Theorem 3).
    template <class T>
    void retire(T* n) {
      n->smr_dtor = smr::core::dtor_thunk<T>();
      dom_.retire_into(*builder_, static_cast<node*>(n));
    }

    /// §3.3 trimming: logically leave-then-enter without touching Head.
    /// Reclaims everything retired since this guard (or its last trim)
    /// started, while keeping the thread inside its critical section.
    void trim() {
      handle_ = dom_.trim(slot_, handle_);
    }

    unsigned slot() const { return static_cast<unsigned>(slot_); }

   private:
    basic_domain& dom_;
    std::size_t slot_;
    node* handle_;
    typename basic_domain::batch_builder* builder_;
    bool active_ = true;
  };

  /// Finalize the calling thread's partially filled batch by padding it
  /// with dummy nodes (§2.4's finalization trick) and retiring it. After
  /// this, the thread is fully "off the hook" — it may exit immediately.
  void flush() { flush_builder(builders_.local()); }

  /// Quiescent-state cleanup: flush every thread's builder. Callable only
  /// when no guards are live anywhere (tests, shutdown). With HRef == 0 in
  /// every slot, each flushed batch is freed immediately (all k per-slot
  /// contributions arrive as Empty adjustments).
  void drain() {
    builders_.for_each([this](batch_builder& b) { flush_builder(b); });
  }

  /// Introspection for tests: head tuple of a slot.
  head_val debug_head(std::size_t slot) { return slots_.at(slot).head.snapshot(); }
  /// Introspection for tests: access era / ack of a slot (Hyaline-S).
  std::uint64_t debug_access_era(std::size_t slot) {
    return slots_.at(slot).access_era.load(std::memory_order_relaxed);
  }
  std::int64_t debug_ack(std::size_t slot) {
    return slots_.at(slot).ack.load(std::memory_order_relaxed);
  }
  std::uint64_t debug_alloc_era() const {
    return alloc_era_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(cache_line_size) slot_rec {
    head_policy head{};
    std::atomic<std::uint64_t> access_era{0};  // Hyaline-S only
    std::atomic<std::int64_t> ack{0};          // Hyaline-S only
  };

  // Cache-line aligned: builders are heap-allocated per thread by the TLS
  // cache and written on every retire; two threads' builders must not
  // share a line.
  struct alignas(cache_line_size) batch_builder {
    node* refs = nullptr;  // chain head == REFS node of the batch in progress
    std::size_t count = 0;
    std::uint64_t min_birth = ~std::uint64_t{0};
    std::uint64_t alloc_counter = 0;
    /// Amortized slot choice (config::entry_burst): the transparent
    /// guard's last chosen slot and how many more guards may reuse it.
    std::size_t slot_cache = 0;
    std::uint32_t slot_probe_left = 0;
  };

  /// Constructor-time validation (API v2): malformed configs fail loudly
  /// here instead of corrupting the Adjs arithmetic downstream.
  static config validated(config cfg) {
    if (cfg.slots != 0 && !std::has_single_bit(cfg.slots)) {
      throw std::invalid_argument(
          "hyaline::config: slots must be a power of two (the Adjs "
          "reference-count arithmetic requires k * Adjs == 0 mod 2^64)");
    }
    if (Robust && cfg.max_slots != 0 &&
        cfg.max_slots < normalize_k(cfg.slots)) {
      throw std::invalid_argument(
          "hyaline::config: max_slots must be >= slots (it caps the "
          "adaptive slot-directory growth of §4.3)");
    }
    if (Robust && cfg.era_freq == 0) {
      throw std::invalid_argument(
          "hyaline::config: era_freq must be nonzero");
    }
    return cfg;
  }

  static std::size_t normalize_k(std::size_t requested) {
    std::size_t k = requested ? requested : detail::default_slot_count();
    return std::bit_ceil(k);
  }

  // --- node header accessors -----------------------------------------

  static node* next_of(const node* n) {
    return reinterpret_cast<node*>(n->w0.load(std::memory_order_acquire));
  }
  static void set_next(node* n, node* nx) {
    n->w0.store(reinterpret_cast<std::uintptr_t>(nx),
                std::memory_order_release);
  }
  static std::uint64_t birth_of(const node* n) {
    return n->w0.load(std::memory_order_relaxed);
  }
  static node* refs_of(const node* carrier) {
    return reinterpret_cast<node*>(carrier->w2 & ~std::uintptr_t{1});
  }
  static bool is_dummy(const node* carrier) { return carrier->w2 & 1; }
  static std::uint64_t adjs_of(const node* refs) { return refs->w2; }

  // --- core algorithm (Figure 3) --------------------------------------

  std::size_t choose_slot(unsigned hint) {
    std::size_t k = slots_.size();
    std::size_t s = hint % k;
    if constexpr (Robust) {
      // Fig. 5 enter: hop past slots acked-out by stalled threads.
      for (std::size_t tries = 0; tries < k; ++tries) {
        if (slots_.at(s).ack.load(std::memory_order_relaxed) <
            cfg_.ack_threshold) {
          return s;
        }
        s = (s + 1) % k;
      }
      // Every slot looks stalled: grow the directory (§4.3) if allowed.
      const std::size_t grown = slots_.grow();
      if (grown > k) return k + hint % (grown - k);
      // Not adaptive: degrade gracefully (the pre-§4.3 capped behavior).
    }
    return s;
  }

  node* enter(std::size_t slot) {
    return slots_.at(slot).head.faa_enter().ptr;
  }

  void leave(std::size_t slot, node* handle) {
    slot_rec& sl = slots_.at(slot);
    node* defer = nullptr;
    node* curr;
    node* next = nullptr;
    for (;;) {
      const head_val h = sl.head.snapshot();
      curr = h.ptr;
      if (curr != handle) {
        assert(curr != nullptr);
        next = next_of(curr);
      }
      if (h.ref == 1) {
        const auto res = sl.head.cas_leave_last(h);
        if (res == leave_last_result::retry) continue;
        if (res == leave_last_result::nulled && curr != nullptr) {
          // We cut the list: treat Curr as if it were a predecessor that
          // will never be displaced (Fig. 3 lines 16-17).
          node* refs = refs_of(curr);
          adjust(refs, adjs_of(refs), defer);
        }
        // claimed (LL/SC only): the claiming enter inherits the list and
        // the final Adjs responsibility.
        break;
      }
      if (sl.head.cas_leave_dec(h)) break;
    }
    if (curr != handle) {
      traverse(sl, next, handle, defer);
      if constexpr (Robust) {
        // Ack balance: a thread owes one acknowledgment per batch inserted
        // during its presence (that is what retire's FAA counted it for).
        // traverse covers (head, handle], whose size equals that count when
        // handle != Null (the handle node substitutes for the skipped
        // head). With a Null handle there is no substitute and traverse
        // acknowledges one batch too few — without this correction Acks on
        // *active* slots drift upward, enter() eventually misclassifies
        // them as stalled and hops threads into genuinely stalled slots,
        // un-staling their eras and unbounding memory.
        if (handle == nullptr) {
          // seq_cst: Ack accounting is read by enter()'s stall heuristic and
          // must stay ordered with the head CASes it mirrors.
          sl.ack.fetch_sub(1, std::memory_order_seq_cst);
        }
      }
    }
    free_deferred(defer);
  }

  node* trim(std::size_t slot, node* handle) {
    slot_rec& sl = slots_.at(slot);
    const head_val h = sl.head.snapshot();  // do not alter Head
    node* curr = h.ptr;
    if (curr != handle) {
      node* defer = nullptr;
      traverse(sl, next_of(curr), handle, defer);
      free_deferred(defer);
    }
    return curr;
  }

  void retire_into(batch_builder& b, node* n) {
    stats_->stamp_retire(n);
    obs::emit(obs::event::retire, reinterpret_cast<std::uintptr_t>(n));
    if constexpr (Robust) {
      const std::uint64_t era = birth_of(n);
      if (era < b.min_birth) b.min_birth = era;
    }
    if (b.refs == nullptr) {
      n->w1 = nullptr;  // becomes the REFS node / chain head
      b.refs = n;
    } else {
      n->w1 = b.refs->w1;
      b.refs->w1 = n;
    }
    ++b.count;
    if (b.count >= batch_size()) finalize_batch(b);
  }

  void flush_builder(batch_builder& b) {
    if (b.refs == nullptr) return;
    finalize_batch(b);
  }

  /// Insert the finished batch into every slot with active threads
  /// (Fig. 3 retire, plus the Fig. 5 era/Ack extensions).
  void finalize_batch(batch_builder& b) {
    const std::size_t k = slots_.size();
    const std::uint64_t adjs = detail::adjs_for(k);
    // Pad with dummy carriers if the batch is short of k+1 nodes (explicit
    // flush, or the slot count grew since the last size check).
    while (b.count < k + 1) {
      node* dummy = new node;
      dummy->w2 = 1;  // dummy tag; REFS pointer OR-ed in below
      dummy->w1 = b.refs->w1;
      b.refs->w1 = dummy;
      ++b.count;
    }

    node* refs = b.refs;
    const std::uint64_t min_birth = b.min_birth;
    obs::emit(obs::event::batch_finalize, b.count);
    stats_->events.on_finalize();
    b.refs = nullptr;
    b.count = 0;
    b.min_birth = ~std::uint64_t{0};

    refs->w2 = adjs;                                 // per-batch Adjs (§4.3)
    refs->w0.store(0, std::memory_order_relaxed);    // NRef = 0
    for (node* c = refs->w1; c != nullptr; c = c->w1) {
      c->w2 = reinterpret_cast<std::uintptr_t>(refs) | (c->w2 & 1);
    }

    node* carrier = refs->w1;
    std::uint64_t empty = 0;
    bool do_adj = false;
    node* defer = nullptr;

    for (std::size_t i = 0; i < k; ++i) {
      slot_rec& sl = slots_.at(i);
      for (;;) {
        const head_val h = sl.head.snapshot();
        bool skip = h.ref == 0;
        if constexpr (Robust) {
          // Fig. 5 retire: also skip slots whose access era predates every
          // node in the batch — threads there can hold no references.
          // seq_cst: Dekker pairing with touch()'s era publication — a weaker
          // read could miss a reservation made just before this scan and skip
          // a slot whose thread still needs the batch.
          skip = skip || sl.access_era.load(std::memory_order_seq_cst) <
                             min_birth;
        }
        if (skip) {
          empty += adjs;
          do_adj = true;
          break;
        }
        assert(carrier != nullptr && "batch must hold >= k carriers");
        // Read the batch-internal next BEFORE publishing this carrier:
        // the moment cas_retire lands, concurrent leavers plus a later
        // retirer's REF #2 can drive the batch to zero and free it, so
        // carrier->w1 afterwards is a use-after-free read (same
        // read-before-releasing discipline as traverse()).
        node* const next_carrier = carrier->w1;
        set_next(carrier, h.ptr);
        if (!sl.head.cas_retire(h, carrier)) continue;
        if constexpr (Robust) {
          // seq_cst: Ack credit for the HRef snapshot just displaced; ordered
          // with the winning cas_retire so credits and debits balance.
          sl.ack.fetch_add(static_cast<std::int64_t>(h.ref),
                           std::memory_order_seq_cst);
        }
        if (h.ptr != nullptr) {
          // REF #2: adjust the displaced predecessor by its own batch's
          // Adjs plus the HRef snapshot.
          node* pred = refs_of(h.ptr);
          adjust(pred, adjs_of(pred) + h.ref, defer);
        }
        carrier = next_carrier;
        break;
      }
    }
    if (do_adj) adjust(refs, empty, defer);  // REF #3
    free_deferred(defer);
  }

  /// Fig. 3 adjust: wrapping add to the batch counter; the contributor
  /// that brings it to exactly zero owns deallocation.
  void adjust(node* refs, std::uint64_t val, node*& defer) {
    const std::uint64_t old =
        refs->w0.fetch_add(val, std::memory_order_acq_rel);
    if (old + val == 0) push_deferred(defer, refs);
  }

  /// Fig. 3 traverse: walk the retirement sublist acquired between enter
  /// and leave, dropping one reference per batch.
  void traverse(slot_rec& sl, node* start, node* handle, node*& defer) {
    std::int64_t batches = 0;
    node* curr = start;
    while (curr != nullptr) {
      node* nx = next_of(curr);  // read before releasing our reference
      node* refs = refs_of(curr);
      ++batches;
      const std::uint64_t old =
          refs->w0.fetch_add(~std::uint64_t{0}, std::memory_order_acq_rel);
      if (old == 1) push_deferred(defer, refs);
      if (curr == handle) break;
      curr = nx;
    }
    if constexpr (Robust) {
      if (batches != 0) {
        // seq_cst: Ack debit for the batches this traversal consumed; same
        // total-order argument as the credit in retire().
        sl.ack.fetch_sub(batches, std::memory_order_seq_cst);
      }
    } else {
      (void)sl;
    }
  }

  /// Deferred deallocation (§4.1): reaped batches are freed only after the
  /// traversal completes, recycling w0 of the REFS node as the list link.
  static void push_deferred(node*& defer, node* refs) {
    refs->w0.store(reinterpret_cast<std::uintptr_t>(defer),
                   std::memory_order_relaxed);
    defer = refs;
  }

  void free_deferred(node* defer) {
    while (defer != nullptr) {
      node* next = reinterpret_cast<node*>(
          defer->w0.load(std::memory_order_relaxed));
      free_batch(defer);
      defer = next;
    }
  }

  void free_batch(node* refs) {
    node* c = refs->w1;
    stats_->free_node(refs);
    while (c != nullptr) {
      node* nx = c->w1;
      if (is_dummy(c)) {
        delete c;  // padding dummy: a plain node, never user-retired
      } else {
        stats_->free_node(c);
      }
      c = nx;
    }
  }

  /// Fig. 5 touch: CAS-max of the slot's shared access era.
  std::uint64_t touch(slot_rec& sl, std::uint64_t era) {
    // seq_cst: CAS-max read of the shared reservation; must observe the
    // latest published era or the max could regress transiently.
    std::uint64_t access = sl.access_era.load(std::memory_order_seq_cst);
    while (access < era) {
      // seq_cst: era publication — pairs store-load with the retire-side
      // access_era scan, like every reservation publication in the repo.
      if (sl.access_era.compare_exchange_weak(access, era,
                                              std::memory_order_seq_cst)) {
        return era;
      }
    }
    return access;
  }

  const config cfg_;
  slot_directory<slot_rec> slots_;
  smr::core::era_clock alloc_era_{1};  // global era clock (Hyaline-S)
  smr::padded_stats stats_;

  /// Per-(thread, domain) batch builders (core/thread_registry.hpp).
  smr::core::tls_cache<batch_builder> builders_;
};

/// Basic Hyaline with the packed single-word head (fastest on x86-64).
using domain = basic_domain<head_packed, false>;
/// Basic Hyaline with a true double-width (cmpxchg16b) head.
using domain_dw = basic_domain<head_dw, false>;
/// Basic Hyaline over the emulated LL/SC granule (§4.4 / Figure 7).
using domain_llsc = basic_domain<head_llsc, false>;

/// Robust Hyaline-S (birth eras + Acks; adaptive if cfg.max_slots > slots).
using domain_s = basic_domain<head_packed, true>;
using domain_s_dw = basic_domain<head_dw, true>;
using domain_s_llsc = basic_domain<head_llsc, true>;

}  // namespace hyaline
