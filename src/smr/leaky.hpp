// "Leaky" pseudo-scheme: no reclamation during the run.
//
// The paper's evaluation (§6) uses Leaky as the baseline that shows the raw
// data-structure throughput without any SMR cost. Retired nodes are parked
// on a Treiber stack (shardable by thread group, since the single global
// stack head is otherwise the one contended line this no-op scheme has) and
// released only at drain()/destruction so the test suite can still verify
// leak-freedom.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/align.hpp"
#include "obs/trace.hpp"
#include "smr/caps.hpp"
#include "smr/core/node_alloc.hpp"
#include "smr/core/retired_batch.hpp"
#include "smr/core/thread_registry.hpp"
#include "smr/protected_ptr.hpp"
#include "smr/stats.hpp"

namespace hyaline::smr {

class leaky_domain {
 public:
  static constexpr smr::caps caps{};

  struct node : core::reclaimable {
    node* next = nullptr;
  };

  template <class T>
  using protected_ptr = raw_handle<T>;

  explicit leaky_domain(unsigned /*max_threads*/ = 0,
                        unsigned retire_shards = 0)
      : retired_(retire_shards == 0 ? 1 : retire_shards) {}

  ~leaky_domain() { drain(); }

  leaky_domain(const leaky_domain&) = delete;
  leaky_domain& operator=(const leaky_domain&) = delete;

  void on_alloc(node*) { stats_->on_alloc(); }
  stats& counters() { return *stats_; }
  const stats& counters() const { return *stats_; }

  class guard {
   public:
    explicit guard(leaky_domain& dom) : dom_(dom) {
      obs::emit(obs::event::guard_enter, 0);
    }
    ~guard() { obs::emit(obs::event::guard_exit, 0); }
    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;

    template <class T>
    raw_handle<T> protect(const std::atomic<T*>& src) {
      return raw_handle<T>(src.load(std::memory_order_acquire));
    }

    template <class T>
    void retire(T* n) {
      n->smr_dtor = core::dtor_thunk<T>();
      dom_.stats_->stamp_retire(static_cast<node*>(n));
      obs::emit(obs::event::retire, reinterpret_cast<std::uintptr_t>(n));
      auto& shards = dom_.retired_;
      shards[core::thread_hint() % shards.size()].value.push(
          static_cast<node*>(n));
    }

   private:
    leaky_domain& dom_;
  };

  /// Releases every parked node. Quiescent use only.
  void drain() {
    for (auto& shard : retired_) {
      node* n = shard.value.take_all();
      while (n != nullptr) {
        node* nx = n->next;
        stats_->free_node(n);
        n = nx;
      }
    }
  }

 private:
  std::vector<padded<core::treiber_stack<node>>> retired_;
  padded_stats stats_;
};

}  // namespace hyaline::smr
