// "Leaky" pseudo-scheme: no reclamation during the run.
//
// The paper's evaluation (§6) uses Leaky as the baseline that shows the raw
// data-structure throughput without any SMR cost. Retired nodes are parked
// on a global Treiber stack and released only at drain()/destruction so the
// test suite can still verify leak-freedom.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/align.hpp"
#include "smr/core/node_alloc.hpp"
#include "smr/core/retired_batch.hpp"
#include "smr/stats.hpp"

namespace hyaline::smr {

class leaky_domain {
 public:
  struct node : core::hooked_alloc {
    node* next = nullptr;
  };

  using free_fn_t = void (*)(node*);

  explicit leaky_domain(unsigned /*max_threads*/ = 0) {}

  ~leaky_domain() { drain(); }

  leaky_domain(const leaky_domain&) = delete;
  leaky_domain& operator=(const leaky_domain&) = delete;

  void set_free_fn(free_fn_t fn) { free_fn_ = fn; }
  void on_alloc(node*) { stats_->on_alloc(); }
  stats& counters() { return *stats_; }
  const stats& counters() const { return *stats_; }

  class guard {
   public:
    guard(leaky_domain& dom, unsigned /*tid*/) : dom_(dom) {}
    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;

    template <class T>
    T* protect(unsigned /*idx*/, const std::atomic<T*>& src) {
      return src.load(std::memory_order_acquire);
    }

    void retire(node* n) {
      dom_.stats_->on_retire();
      dom_.retired_.push(n);
    }

   private:
    leaky_domain& dom_;
  };

  /// Releases every parked node. Quiescent use only.
  void drain() {
    node* n = retired_.take_all();
    while (n != nullptr) {
      node* nx = n->next;
      free_fn_(n);
      stats_->on_free();
      n = nx;
    }
  }

 private:
  static void default_free(node* n) { delete n; }

  core::treiber_stack<node> retired_;
  free_fn_t free_fn_ = &default_free;
  padded_stats stats_;
};

}  // namespace hyaline::smr
