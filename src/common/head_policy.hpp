// Head-tuple policies for Hyaline's per-slot retirement lists.
//
// Each slot owns a Head = [HRef, HPtr] tuple that must support:
//   - an atomic snapshot load,
//   - FAA of HRef with an atomic HPtr snapshot (enter),
//   - CAS replacing HPtr while HRef is unchanged (retire),
//   - CAS decrementing HRef while HPtr is unchanged (leave, HRef > 1),
//   - the terminal transition {1, p} -> {0, Null} (leave, last thread).
//
// Three interchangeable implementations are provided, matching the paper's
// portability discussion (§2.4, §4.4):
//   head_packed  - HRef and HPtr squeezed into one 64-bit word (16-bit
//                  counter, 48-bit pointer). Single-width CAS/FAA only; this
//                  is the "SPARC squeeze" variant and the fastest on x86-64
//                  because enter becomes a genuine fetch_add.
//   head_dw      - true double-width (128-bit) tuple via cmpxchg16b.
//   head_llsc    - Figure 7's single-width LL/SC algorithm over an emulated
//                  reservation granule (stands in for PowerPC/MIPS).
//
// The terminal transition differs across policies: packed/dw perform it with
// one CAS, while LL/SC needs the paper's two-step protocol (decrement HRef
// keeping HPtr intact, then null HPtr only if no concurrent enter claimed
// the list). `cas_leave_last` exposes the three possible outcomes so the
// core algorithm can route the final Adjs adjustment correctly.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "common/dw128.hpp"
#include "common/llsc.hpp"

namespace hyaline {

/// Outcome of the terminal {1, p} -> {0, Null} head transition.
enum class leave_last_result {
  retry,    ///< the head changed underneath us; re-run the leave loop
  nulled,   ///< we cut the list; the leaver owns the final Adjs adjustment
  claimed,  ///< HRef was re-claimed by a concurrent enter after our
            ///< decrement (LL/SC only); the claimer's side owns the Adjs
};

/// Decoded head value shared by all policies.
template <class Node>
struct head_val {
  std::uint64_t ref = 0;
  Node* ptr = nullptr;

  friend bool operator==(const head_val&, const head_val&) = default;
};

// ---------------------------------------------------------------------------
// Packed single-word policy: [HRef:16 | HPtr:48].
// ---------------------------------------------------------------------------

/// Single-word head. Limits: at most 2^16-1 threads concurrently inside one
/// slot, and node addresses must fit in 48 bits (true for user-space Linux
/// on x86-64/AArch64).
template <class Node>
class head_packed {
 public:
  using val = head_val<Node>;

  val snapshot() const {
    // seq_cst: head snapshots feed CAS loops whose successes are
    // linearization points; the paper's §5 argument assumes a total order
    // over head reads and updates.
    return decode(word_.load(std::memory_order_seq_cst));
  }

  /// enter: HRef += 1 with a wait-free fetch_add; returns the old tuple.
  val faa_enter() {
    // seq_cst: enter's FAA is a linearization point and must be totally
    // ordered against concurrent retire/leave head updates.
    return decode(word_.fetch_add(ref_one, std::memory_order_seq_cst));
  }

  /// retire: HPtr := new_ptr, HRef unchanged.
  bool cas_retire(const val& expected, Node* new_ptr) {
    std::uint64_t e = encode(expected);
    // seq_cst: head-update linearization point (see class comment).
    return word_.compare_exchange_strong(
        e, encode({expected.ref, new_ptr}), std::memory_order_seq_cst);
  }

  /// leave (HRef > 1): HRef -= 1, HPtr unchanged.
  bool cas_leave_dec(const val& expected) {
    std::uint64_t e = encode(expected);
    // seq_cst: head-update linearization point (see class comment).
    return word_.compare_exchange_strong(e, e - ref_one,
                                         std::memory_order_seq_cst);
  }

  /// leave (HRef == 1): {1, p} -> {0, Null} in one CAS.
  leave_last_result cas_leave_last(const val& expected) {
    assert(expected.ref == 1);
    std::uint64_t e = encode(expected);
    // seq_cst: terminal head transition; the leaver that wins owns the
    // final Adjs adjustment, so it must be totally ordered with enters.
    return word_.compare_exchange_strong(e, 0, std::memory_order_seq_cst)
               ? leave_last_result::nulled
               : leave_last_result::retry;
  }

 private:
  static constexpr std::uint64_t ptr_bits = 48;
  static constexpr std::uint64_t ptr_mask = (std::uint64_t{1} << ptr_bits) - 1;
  static constexpr std::uint64_t ref_one = std::uint64_t{1} << ptr_bits;

  static std::uint64_t encode(const val& v) {
    auto raw = reinterpret_cast<std::uintptr_t>(v.ptr);
    assert((raw & ~ptr_mask) == 0 && "node address exceeds 48 bits");
    assert(v.ref < (std::uint64_t{1} << 16) && "HRef overflows 16 bits");
    return (v.ref << ptr_bits) | raw;
  }

  static val decode(std::uint64_t w) {
    return val{w >> ptr_bits, reinterpret_cast<Node*>(w & ptr_mask)};
  }

  std::atomic<std::uint64_t> word_{0};
};

// ---------------------------------------------------------------------------
// True double-width policy (cmpxchg16b / ldaxp-stlxp class hardware).
// ---------------------------------------------------------------------------

/// 128-bit head: lo word = HRef, hi word = HPtr. No limits on thread count
/// or address width; enter is a CAS loop (x86-64 has no 128-bit FAA).
template <class Node>
class head_dw {
 public:
  using val = head_val<Node>;

  val snapshot() const {
    // seq_cst: head snapshots feed CAS loops whose successes are
    // linearization points (paper §5 total-order argument).
    return decode(cell_.load(std::memory_order_seq_cst));
  }

  val faa_enter() {
    // seq_cst: enter emulated as a CAS loop; the winning CAS is a
    // linearization point totally ordered with retire/leave.
    u128 cur = cell_.load(std::memory_order_seq_cst);
    for (;;) {
      const u128 next = pack128(lo64(cur) + 1, hi64(cur));
      // seq_cst: head-update linearization point (see class comment).
      if (cell_.compare_exchange(cur, next, std::memory_order_seq_cst)) {
        return decode(cur);
      }
      // cur reloaded by compare_exchange on failure.
    }
  }

  bool cas_retire(const val& expected, Node* new_ptr) {
    u128 e = encode(expected);
    // seq_cst: head-update linearization point (see class comment).
    return cell_.compare_exchange(
        e, pack128(expected.ref,
                   reinterpret_cast<std::uint64_t>(new_ptr)),
        std::memory_order_seq_cst);
  }

  bool cas_leave_dec(const val& expected) {
    u128 e = encode(expected);
    // seq_cst: head-update linearization point (see class comment).
    return cell_.compare_exchange(
        e, pack128(expected.ref - 1,
                   reinterpret_cast<std::uint64_t>(expected.ptr)),
        std::memory_order_seq_cst);
  }

  leave_last_result cas_leave_last(const val& expected) {
    assert(expected.ref == 1);
    u128 e = encode(expected);
    // seq_cst: terminal head transition {1,p} -> {0,Null}; must be totally
    // ordered with concurrent enters that could re-claim the list.
    return cell_.compare_exchange(e, 0, std::memory_order_seq_cst)
               ? leave_last_result::nulled
               : leave_last_result::retry;
  }

 private:
  static u128 encode(const val& v) {
    return pack128(v.ref, reinterpret_cast<std::uint64_t>(v.ptr));
  }
  static val decode(u128 v) {
    return val{lo64(v), reinterpret_cast<Node*>(hi64(v))};
  }

  atomic128 cell_;
};

// ---------------------------------------------------------------------------
// Single-width LL/SC policy (Figure 7), over the emulated granule.
// ---------------------------------------------------------------------------

/// Head as two words in one reservation granule: word 0 = HRef, word 1 =
/// HPtr. Implements dwFAA, dwCAS_Ref and dwCAS_Ptr exactly as in Figure 7,
/// plus the two-step terminal transition described in §4.4.
template <class Node>
class head_llsc {
 public:
  using val = head_val<Node>;

  val snapshot() const {
    // A plain double-word read; on real hardware this would be an LL of one
    // word plus a dependent load of the other, which is what ll() models.
    auto r = granule_.ll(0);
    return val{r.word(0), reinterpret_cast<Node*>(r.word(1))};
  }

  /// Figure 7 dwFAA: increment HRef, HPtr remains intact.
  val faa_enter() {
    for (;;) {
      auto r = granule_.ll(0);
      const std::uint64_t old_ref = r.word(0);
      if (granule_.sc(0, old_ref + 1, r)) {
        return val{old_ref, reinterpret_cast<Node*>(r.word(1))};
      }
    }
  }

  /// Figure 7 dwCAS_Ptr: used by retire (HRef must be unchanged).
  bool cas_retire(const val& expected, Node* new_ptr) {
    auto r = granule_.ll(1);
    if (r.word(0) != expected.ref ||
        reinterpret_cast<Node*>(r.word(1)) != expected.ptr) {
      return false;
    }
    return granule_.sc(1, reinterpret_cast<std::uint64_t>(new_ptr), r);
  }

  /// Figure 7 dwCAS_Ref: used by leave while HRef > 1.
  bool cas_leave_dec(const val& expected) {
    auto r = granule_.ll(0);
    if (r.word(0) != expected.ref ||
        reinterpret_cast<Node*>(r.word(1)) != expected.ptr) {
      return false;
    }
    return granule_.sc(0, expected.ref - 1, r);
  }

  /// §4.4 two-step terminal transition: first dwCAS_Ref {1,p} -> {0,p};
  /// then a strong loop of dwCAS_Ptr {0,p} -> {0,Null}. The second step can
  /// legitimately fail forever only if a concurrent enter re-claimed the
  /// list (HRef != 0 again), in which case the claimer inherits the list.
  leave_last_result cas_leave_last(const val& expected) {
    assert(expected.ref == 1);
    if (!cas_leave_dec(expected)) return leave_last_result::retry;
    for (;;) {
      auto r = granule_.ll(1);
      // dwCAS_Ptr validates BOTH words against {0, expected.ptr} (exactly
      // like cas_retire above). HRef != 0 means a concurrent enter claimed
      // the list; a changed HPtr means it was claimed, mutated, and
      // released again. Either way the claimer's side inherited the list
      // and the final Adjs — nulling the head here would cut a list this
      // leaver no longer owns and adjust a stale batch.
      if (r.word(0) != 0 ||
          reinterpret_cast<Node*>(r.word(1)) != expected.ptr) {
        return leave_last_result::claimed;
      }
      if (granule_.sc(1, 0, r)) return leave_last_result::nulled;
    }
  }

 private:
  llsc_granule granule_{0, 0};
};

}  // namespace hyaline
