// Low-bit pointer tagging used by the lock-free data structures.
//
// Harris–Michael lists mark the low bit of a node's next pointer to signal
// logical deletion; the Natarajan–Mittal tree uses two low bits (flag +
// tag). All nodes are at least 8-byte aligned, so the low three bits of any
// node pointer are available.
#pragma once

#include <cstdint>

namespace hyaline {

/// Returns the pointer with all tag bits cleared.
template <class T>
inline T* untag(T* p) {
  return reinterpret_cast<T*>(reinterpret_cast<std::uintptr_t>(p) & ~std::uintptr_t{7});
}

/// Returns the tag bits (0..7) of a pointer.
template <class T>
inline unsigned tag_of(T* p) {
  return static_cast<unsigned>(reinterpret_cast<std::uintptr_t>(p) & 7);
}

/// Returns the pointer with the given tag bits OR-ed in.
template <class T>
inline T* with_tag(T* p, unsigned bits) {
  return reinterpret_cast<T*>(reinterpret_cast<std::uintptr_t>(p) | bits);
}

/// True if any of `bits` is set on the pointer.
template <class T>
inline bool has_tag(T* p, unsigned bits) {
  return (reinterpret_cast<std::uintptr_t>(p) & bits) != 0;
}

}  // namespace hyaline
