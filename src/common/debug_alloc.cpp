#include "common/debug_alloc.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace hyaline {
namespace {

struct block_header {
  std::uint64_t magic;
  std::size_t size;
};

constexpr std::uint64_t live_magic = 0xA110C47EDB10C4ULL;
constexpr std::uint64_t dead_magic = 0xDEADB10CDEADB10CULL;

struct registry {
  std::mutex mu;
  std::unordered_map<void*, std::size_t> live;  // user ptr -> size
  std::vector<void*> quarantine;                // user ptrs, poisoned
  std::atomic<std::size_t> total{0};
  std::atomic<std::size_t> doubles{0};
};

registry& reg() {
  static registry r;
  return r;
}

block_header* header_of(void* user) {
  return static_cast<block_header*>(user) - 1;
}

}  // namespace

void* debug_alloc::allocate(std::size_t size) {
  auto* h = static_cast<block_header*>(
      std::malloc(sizeof(block_header) + size));
  h->magic = live_magic;
  h->size = size;
  void* user = h + 1;
  auto& r = reg();
  r.total.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(r.mu);
  r.live.emplace(user, size);
  return user;
}

void debug_alloc::deallocate(void* p) {
  auto& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  auto it = r.live.find(p);
  if (it == r.live.end()) {
    r.doubles.fetch_add(1, std::memory_order_relaxed);
    return;  // double (or foreign) free: record, do not crash the test
  }
  const std::size_t size = it->second;
  r.live.erase(it);
  block_header* h = header_of(p);
  h->magic = dead_magic;
  std::memset(p, poison_byte, size);
  r.quarantine.push_back(p);
}

std::size_t debug_alloc::flush_quarantine() {
  auto& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  std::size_t corrupted = 0;
  for (void* p : r.quarantine) {
    block_header* h = header_of(p);
    bool bad = h->magic != dead_magic;
    if (!bad) {
      auto* bytes = static_cast<const std::uint8_t*>(p);
      for (std::size_t i = 0; i < h->size; ++i) {
        if (bytes[i] != poison_byte) {
          bad = true;
          break;
        }
      }
    }
    corrupted += bad ? 1 : 0;
    std::free(h);
  }
  r.quarantine.clear();
  return corrupted;
}

std::size_t debug_alloc::live_count() {
  auto& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  return r.live.size();
}

std::size_t debug_alloc::total_allocs() {
  return reg().total.load(std::memory_order_relaxed);
}

std::size_t debug_alloc::double_frees() {
  return reg().doubles.load(std::memory_order_relaxed);
}

void debug_alloc::reset() {
  auto& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  for (void* p : r.quarantine) std::free(header_of(p));
  r.quarantine.clear();
  // Deliberately leak anything still live: freeing would mask leak bugs and
  // could race with in-flight reclamation from a previous (failed) test.
  r.live.clear();
  r.total.store(0, std::memory_order_relaxed);
  r.doubles.store(0, std::memory_order_relaxed);
}

}  // namespace hyaline
