// 16-byte (double-width) atomic operations.
//
// Hyaline's Head tuple [HRef, HPtr] must be updated atomically (paper §3.1).
// On x86-64 this maps to cmpxchg16b; GCC exposes it through the __atomic
// builtins on unsigned __int128 (with -mcx16, possibly routed through
// libatomic, which still uses the instruction). This header wraps those
// builtins behind a tiny typed interface so the head policies stay readable.
#pragma once

#include <atomic>
#include <cstdint>

namespace hyaline {

using u128 = unsigned __int128;

/// Packs two 64-bit words into a 128-bit value: `lo` occupies bits 0..63.
inline constexpr u128 pack128(std::uint64_t lo, std::uint64_t hi) {
  return (static_cast<u128>(hi) << 64) | lo;
}

inline constexpr std::uint64_t lo64(u128 v) { return static_cast<std::uint64_t>(v); }
inline constexpr std::uint64_t hi64(u128 v) { return static_cast<std::uint64_t>(v >> 64); }

/// A 16-byte-aligned atomically accessed 128-bit cell.
///
/// Call sites supply the memory order explicitly (no defaults), mirroring
/// the repo's atomics convention. Hyaline head updates are the
/// linearization points of enter/leave/retire and the paper's correctness
/// argument (§5) assumes a total order on them, so the head policies pass
/// seq_cst with per-site justifications.
class alignas(16) atomic128 {
 public:
  atomic128() : v_(0) {}
  explicit atomic128(u128 v) : v_(v) {}

  u128 load(std::memory_order order) const {
    return __atomic_load_n(&v_, to_builtin(order));
  }

  void store(u128 v, std::memory_order order) {
    __atomic_store_n(&v_, v, to_builtin(order));
  }

  /// Single-call CAS; on failure `expected` is updated with the current
  /// value. The failure order is derived from `order` (release components
  /// are dropped, as the standard requires).
  bool compare_exchange(u128& expected, u128 desired,
                        std::memory_order order) {
    return __atomic_compare_exchange_n(&v_, &expected, desired,
                                       /*weak=*/false, to_builtin(order),
                                       fail_order(order));
  }

  u128 exchange(u128 desired, std::memory_order order) {
    return __atomic_exchange_n(&v_, desired, to_builtin(order));
  }

 private:
  // GCC defines std::memory_order enumerator values to coincide with the
  // __ATOMIC_* constants, so the conversion is a cast.
  static constexpr int to_builtin(std::memory_order order) {
    return static_cast<int>(order);
  }
  static constexpr int fail_order(std::memory_order order) {
    switch (order) {
      case std::memory_order_acq_rel: return __ATOMIC_ACQUIRE;
      case std::memory_order_release: return __ATOMIC_RELAXED;
      default: return static_cast<int>(order);
    }
  }

  u128 v_;
};

static_assert(sizeof(atomic128) == 16);
static_assert(alignof(atomic128) == 16);

}  // namespace hyaline
