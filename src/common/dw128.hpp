// 16-byte (double-width) atomic operations.
//
// Hyaline's Head tuple [HRef, HPtr] must be updated atomically (paper §3.1).
// On x86-64 this maps to cmpxchg16b; GCC exposes it through the __atomic
// builtins on unsigned __int128 (with -mcx16, possibly routed through
// libatomic, which still uses the instruction). This header wraps those
// builtins behind a tiny typed interface so the head policies stay readable.
#pragma once

#include <cstdint>

namespace hyaline {

using u128 = unsigned __int128;

/// Packs two 64-bit words into a 128-bit value: `lo` occupies bits 0..63.
inline constexpr u128 pack128(std::uint64_t lo, std::uint64_t hi) {
  return (static_cast<u128>(hi) << 64) | lo;
}

inline constexpr std::uint64_t lo64(u128 v) { return static_cast<std::uint64_t>(v); }
inline constexpr std::uint64_t hi64(u128 v) { return static_cast<std::uint64_t>(v >> 64); }

/// A 16-byte-aligned atomically accessed 128-bit cell.
///
/// All operations are sequentially consistent: head updates are the
/// linearization points of enter/leave/retire and the paper's correctness
/// argument (§5) assumes a total order on them.
class alignas(16) atomic128 {
 public:
  atomic128() : v_(0) {}
  explicit atomic128(u128 v) : v_(v) {}

  u128 load() const {
    return __atomic_load_n(&v_, __ATOMIC_SEQ_CST);
  }

  void store(u128 v) {
    __atomic_store_n(&v_, v, __ATOMIC_SEQ_CST);
  }

  /// Single-call CAS; on failure `expected` is updated with the current value.
  bool compare_exchange(u128& expected, u128 desired) {
    return __atomic_compare_exchange_n(&v_, &expected, desired,
                                       /*weak=*/false, __ATOMIC_SEQ_CST,
                                       __ATOMIC_SEQ_CST);
  }

  u128 exchange(u128 desired) {
    return __atomic_exchange_n(&v_, desired, __ATOMIC_SEQ_CST);
  }

 private:
  u128 v_;
};

static_assert(sizeof(atomic128) == 16);
static_assert(alignof(atomic128) == 16);

}  // namespace hyaline
