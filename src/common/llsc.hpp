// Emulated single-width LL/SC with a 16-byte reservation granule.
//
// Paper §4.4 implements Hyaline on PowerPC/MIPS, which provide only
// single-width LL/SC, by exploiting the fact that the LL *reservation
// granule* is larger than one word (typically a cache line): two adjacent
// 64-bit variables placed in the same granule cause SC on either of them to
// fail if the *other* changed too.
//
// We do not have PPC/MIPS hardware in this environment, so this header
// provides the closest synthetic equivalent (see DESIGN.md §4, substitution
// #2): a 16-byte granule whose LL returns a snapshot of both words and
// whose SC atomically replaces one word *only if the whole granule is
// unchanged* (implemented with one 128-bit CAS). This gives exactly the
// semantics Figure 7 relies on:
//   - an ordinary `load` of the sibling word between LL and SC observes the
//     snapshot (the "artificial data dependency" barrier in the paper);
//   - SC fails whenever any concurrent write touched the granule;
//   - double-width load atomicity is guaranteed only when SC succeeds,
//     which is all the Hyaline algorithm tolerates.
//
// The emulation is *stronger* than real LL/SC in one way (no spurious SC
// failures from cache evictions); the algorithm tolerates weak SC anyway,
// so correctness-relevant behavior is preserved while every code path of
// the Figure 7 algorithm is exercised.
#pragma once

#include <cstdint>

#include "common/dw128.hpp"

namespace hyaline {

/// A two-word LL/SC reservation granule. Word 0 and word 1 live in the same
/// 16-byte granule, mirroring the paper's layout of [HRef, HPtr] aligned on
/// a double-word boundary.
class llsc_granule {
 public:
  llsc_granule() = default;
  llsc_granule(std::uint64_t w0, std::uint64_t w1) : cell_(pack128(w0, w1)) {}

  /// The snapshot captured by LL; also serves as the "reservation".
  struct reservation {
    u128 snapshot;

    std::uint64_t word(int idx) const {
      return idx == 0 ? lo64(snapshot) : hi64(snapshot);
    }
  };

  /// Load-linked on word `idx`. Returns a reservation whose snapshot holds
  /// both words; `word(idx)` is the LL result and `word(1-idx)` is what the
  /// dependent ordinary load between LL and SC would observe.
  reservation ll(int /*idx*/) const {
    // seq_cst: LL snapshots take part in the total order of head updates
    // (the paper's Figure 7 correctness argument orders LL/SC pairs
    // against concurrent enter/leave/retire linearization points).
    return reservation{cell_.load(std::memory_order_seq_cst)};
  }

  /// Store-conditional of `value` into word `idx`. Succeeds only if the
  /// entire granule still matches the reservation snapshot.
  bool sc(int idx, std::uint64_t value, const reservation& r) {
    u128 expected = r.snapshot;
    const u128 desired = idx == 0 ? pack128(value, hi64(expected))
                                  : pack128(lo64(expected), value);
    // seq_cst: a successful SC is a head-update linearization point; the
    // paper's §5 argument assumes a single total order over them.
    return cell_.compare_exchange(expected, desired,
                                  std::memory_order_seq_cst);
  }

  /// Plain (non-reserving) double-word read, for debugging/tests only; real
  /// hardware would not provide this atomically.
  u128 unsafe_load() const {
    // seq_cst: debug/test-only snapshot; keep it ordered with SCs so test
    // assertions never observe a torn or stale interleaving.
    return cell_.load(std::memory_order_seq_cst);
  }

 private:
  atomic128 cell_{};
};

}  // namespace hyaline
