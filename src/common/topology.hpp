// Portable machine-topology probe for shard-count defaults.
//
// The retire-shard count (see core/retired_batch.hpp sharded_retire) wants
// to track the number of thread *groups* that actually contend: too few
// shards recreates the single-list hotspot, too many wastes cache lines and
// slows drain. Standard C++ exposes only the logical processor count, so
// the probe is: one shard per two hardware threads (SMT siblings share an
// L1/L2 and gain nothing from separate shards), clamped to [1, 8]. The CLI
// exposes this as `--shards auto`; an explicit N always wins.
#pragma once

#include <thread>

namespace hyaline {

/// Logical processors, never zero (hardware_concurrency may return 0 when
/// the value is not computable).
inline unsigned hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

/// Default retire-shard count for `--shards auto`.
inline unsigned default_retire_shards() {
  const unsigned hw = hardware_threads();
  unsigned s = hw <= 2 ? hw : hw / 2;
  if (s > 8) s = 8;
  return s == 0 ? 1 : s;
}

}  // namespace hyaline
