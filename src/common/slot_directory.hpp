// Adaptive slot directory (paper §4.3, Figure 6).
//
// Hyaline-S caps the number of slots; when every slot is occupied by stalled
// threads, the number of slots must grow so active threads can make
// progress. Slots cannot move (heads are CAS targets), so instead of
// resizing an array we keep a small fixed *directory* of arrays:
//
//   directory[0]          covers slots [0, Kmin)
//   directory[s], s >= 1  covers slots [2^(s-1)*Kmin, 2^s*Kmin)
//
// To access slot i:  s = log2(floor(i / Kmin)) + 1, with log2(0) = -1,
// implemented with the leading-zero count (std::bit_width). The directory
// has at most 64 - log2(Kmin) entries on a 64-bit machine.
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>

namespace hyaline {

/// Growable, stable-address array of `Slot`s. `Slot` must be
/// default-constructible; constructed state is the valid empty state.
template <class Slot>
class slot_directory {
 public:
  /// `kmin` must be a power of two (the Adjs arithmetic requires the total
  /// slot count to stay a power of two; growth always doubles).
  explicit slot_directory(std::size_t kmin, std::size_t kmax = max_slots_cap)
      : kmin_(kmin), kmax_(kmax) {
    assert(kmin >= 1 && std::has_single_bit(kmin));
    assert(kmax >= kmin && std::has_single_bit(kmax));
    dir_[0].store(new Slot[kmin], std::memory_order_release);
    k_.store(kmin, std::memory_order_release);
  }

  ~slot_directory() {
    for (auto& e : dir_) delete[] e.load(std::memory_order_acquire);
  }

  slot_directory(const slot_directory&) = delete;
  slot_directory& operator=(const slot_directory&) = delete;

  /// Current number of usable slots (always a power of two).
  std::size_t size() const { return k_.load(std::memory_order_acquire); }

  std::size_t kmin() const { return kmin_; }
  std::size_t kmax() const { return kmax_; }

  /// Access slot `i` (must be < size() at some point in the past; slots
  /// never disappear).
  Slot& at(std::size_t i) {
    const std::size_t s = dir_index(i);
    Slot* arr = dir_[s].load(std::memory_order_acquire);
    assert(arr != nullptr);
    return arr[i - base_of(s)];
  }

  const Slot& at(std::size_t i) const {
    return const_cast<slot_directory*>(this)->at(i);
  }

  /// Doubles the slot count (up to kmax). Lock-free: losers of the
  /// directory CAS discard their buffer. Returns the new size (which can be
  /// larger than requested if other threads grew concurrently).
  std::size_t grow() {
    std::size_t cur = size();
    if (cur >= kmax_) return cur;
    const std::size_t s = dir_index(cur);  // first uncovered slot == cur
    Slot* fresh = new Slot[cur];           // entry s holds `cur` more slots
    Slot* expected = nullptr;
    if (!dir_[s].compare_exchange_strong(expected, fresh,
                                         std::memory_order_acq_rel)) {
      delete[] fresh;  // concurrent grower won
    }
    // Publish the doubled k (monotonic max).
    std::size_t k = k_.load(std::memory_order_acquire);
    while (k < cur * 2 &&
           !k_.compare_exchange_weak(k, cur * 2, std::memory_order_acq_rel)) {
    }
    return size();
  }

  /// Directory index for slot i (the paper's log2 formula).
  std::size_t dir_index(std::size_t i) const {
    const std::size_t q = i / kmin_;
    return q == 0 ? 0 : static_cast<std::size_t>(std::bit_width(q));
  }

  /// First slot covered by directory entry s.
  std::size_t base_of(std::size_t s) const {
    return s == 0 ? 0 : (std::size_t{1} << (s - 1)) * kmin_;
  }

  static constexpr std::size_t max_slots_cap = std::size_t{1} << 20;

 private:
  static constexpr std::size_t dir_entries = 64;

  std::size_t kmin_;
  std::size_t kmax_;
  std::atomic<std::size_t> k_{0};
  std::atomic<Slot*> dir_[dir_entries] = {};
};

}  // namespace hyaline
