// Instrumented allocator used by the test suite.
//
// Converts the failure modes of a broken reclamation scheme into
// deterministic test failures:
//   - leaks            -> live-object counter != 0 at teardown
//   - double free      -> freed-block registry hit
//   - write-after-free -> poison/canary verification when the quarantine is
//                         flushed (freed blocks are quarantined, filled with
//                         a poison byte, and checked before release)
//
// This is a testing substrate (DESIGN.md system #18); the benchmarks use
// the plain allocator.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace hyaline {

class debug_alloc {
 public:
  /// Allocate `size` bytes tracked by the registry.
  static void* allocate(std::size_t size);

  /// Free a tracked block: verifies it is live (double-free check), poisons
  /// it, and moves it to the quarantine.
  static void deallocate(void* p);

  /// Verify poison integrity of all quarantined blocks and release them.
  /// Returns the number of corrupted (written-after-free) blocks found.
  static std::size_t flush_quarantine();

  /// Number of currently live (allocated, not freed) blocks.
  static std::size_t live_count();

  /// Total allocations since reset.
  static std::size_t total_allocs();

  /// Double frees detected since reset.
  static std::size_t double_frees();

  /// Reset all counters and drop the quarantine (releases blocks without
  /// checking). Call at the start of a test.
  static void reset();

  static constexpr std::uint8_t poison_byte = 0xDB;
};

/// Convenience RAII: constructs T in a tracked block.
template <class T, class... Args>
T* debug_new(Args&&... args) {
  void* p = debug_alloc::allocate(sizeof(T));
  return ::new (p) T(static_cast<Args&&>(args)...);
}

template <class T>
void debug_delete(T* p) {
  if (!p) return;
  p->~T();
  debug_alloc::deallocate(p);
}

}  // namespace hyaline
