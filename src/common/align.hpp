// Cache-line alignment helpers shared by all reclamation schemes.
//
// Every mutable, per-slot / per-thread variable in this library is padded to
// a cache line: false sharing between slots would otherwise dominate the
// cost of the (intentionally uncontended) CAS/FAA operations on them, which
// is exactly the effect the paper's §3.3 ("Trimming") discussion relies on
// being absent.
#pragma once

#include <cstddef>
#include <new>

namespace hyaline {

// Fixed at 64: stable across compiler versions/tuning (GCC warns that
// std::hardware_destructive_interference_size may vary, which would make
// this part of the ABI unstable).
inline constexpr std::size_t cache_line_size = 64;

/// Wraps a value in a full cache line so that adjacent array elements never
/// share a line. Used for slot heads, per-thread reservation records, etc.
template <class T>
struct alignas(cache_line_size) padded {
  T value{};

  padded() = default;
  template <class... Args>
  explicit padded(Args&&... args) : value(static_cast<Args&&>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

}  // namespace hyaline
