// Small, fast PRNGs for workload generation.
//
// The benchmark harness needs a per-thread generator that is (a) cheap
// enough not to perturb the measured data-structure operation, and (b)
// statistically good enough for uniform key draws. xoshiro256** fits both;
// splitmix64 seeds it.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace hyaline {

/// splitmix64 — used to expand a single 64-bit seed into generator state.
class splitmix64 {
 public:
  explicit splitmix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — per-thread workload generator.
class xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit xoshiro256(std::uint64_t seed) {
    splitmix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform draw in [0, bound) without modulo bias worth caring about for
  /// benchmark purposes (Lemire's multiply-shift reduction).
  std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// Zipfian rank distribution over [0, n): P(rank) ∝ 1/(rank+1)^theta,
/// rank 0 hottest. Exact inverse-CDF sampling: the constructor builds
/// the cumulative table in one O(n) pass (the same pass the zeta-sum
/// normalization needs anyway), each draw is one uniform double and a
/// binary search — ~log2(n) probes over a contiguous array, cheap
/// enough to sit inside a paced service loop without perturbing the
/// measured op. Unlike the Gray et al. two-rank approximation this
/// matches the analytic distribution at every rank (the chi-square unit
/// test's property), at the cost of 8n bytes of table; with service key
/// ranges in the 1e5 class and ONE shared const instance serving every
/// worker thread (draws are stateless), that is noise. theta = 0
/// degenerates to the exact uniform distribution (the svc load
/// generator's --skew 0), theta -> 1 approaches classic Zipf.
class zipf_generator {
 public:
  zipf_generator(std::uint64_t n, double theta)
      : n_(n == 0 ? 1 : n), theta_(theta), cdf_(n_) {
    double zetan = 0;
    for (std::uint64_t i = 1; i <= n_; ++i) {
      zetan += 1.0 / std::pow(static_cast<double>(i), theta_);
      cdf_[i - 1] = zetan;  // unnormalized; divided through below
    }
    zetan_ = zetan;
    for (double& c : cdf_) c /= zetan_;
    // u < 1 strictly, so an exact 1.0 sentinel keeps the search in
    // range even when rounding left cdf_.back() a hair under 1.
    cdf_.back() = 1.0;
  }

  /// Draw one rank in [0, range()). Works with any generator exposing
  /// next() -> uint64 (xoshiro256, splitmix64).
  template <class Rng>
  std::uint64_t operator()(Rng& rng) const {
    // 53 uniform mantissa bits -> u in [0, 1).
    const double u = static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
    return static_cast<std::uint64_t>(
        std::upper_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

  /// Analytic P(rank) — what the chi-square unit test checks draws
  /// against.
  double probability(std::uint64_t rank) const {
    return 1.0 / std::pow(static_cast<double>(rank + 1), theta_) / zetan_;
  }

  std::uint64_t range() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double zetan_ = 0;
  std::vector<double> cdf_;
};

}  // namespace hyaline
