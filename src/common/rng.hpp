// Small, fast PRNGs for workload generation.
//
// The benchmark harness needs a per-thread generator that is (a) cheap
// enough not to perturb the measured data-structure operation, and (b)
// statistically good enough for uniform key draws. xoshiro256** fits both;
// splitmix64 seeds it.
#pragma once

#include <cstdint>

namespace hyaline {

/// splitmix64 — used to expand a single 64-bit seed into generator state.
class splitmix64 {
 public:
  explicit splitmix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — per-thread workload generator.
class xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit xoshiro256(std::uint64_t seed) {
    splitmix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform draw in [0, bound) without modulo bias worth caring about for
  /// benchmark purposes (Lemire's multiply-shift reduction).
  std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace hyaline
