// Michael's lock-free hash map [26]: a fixed array of Harris–Michael list
// buckets.
//
// The highest-throughput structure in the paper's suite (operations touch
// a handful of nodes), which is what makes it the chosen stressor for the
// oversubscription (Fig. 8c), robustness (Fig. 10a) and trimming
// (Fig. 10b) experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ds/hm_list.hpp"

namespace hyaline::ds {

template <class D>
class michael_hashmap {
 public:
  using domain_type = D;
  using guard = typename D::guard;

  /// `buckets` should be sized for the expected element count; the paper's
  /// workload holds ~50k live keys.
  explicit michael_hashmap(D& dom, std::size_t buckets = 16384) {
    buckets_.reserve(buckets);
    for (std::size_t i = 0; i < buckets; ++i) {
      buckets_.push_back(std::make_unique<hm_list<D>>(dom));
    }
  }

  michael_hashmap(const michael_hashmap&) = delete;
  michael_hashmap& operator=(const michael_hashmap&) = delete;

  bool insert(guard& g, std::uint64_t key, std::uint64_t value) {
    return bucket(key).insert(g, key, value);
  }

  bool remove(guard& g, std::uint64_t key) {
    return bucket(key).remove(g, key);
  }

  bool contains(guard& g, std::uint64_t key) {
    return bucket(key).contains(g, key);
  }

  bool get(guard& g, std::uint64_t key, std::uint64_t& out) {
    return bucket(key).get(g, key, out);
  }

  std::size_t unsafe_size() const {
    std::size_t n = 0;
    for (const auto& b : buckets_) n += b->unsafe_size();
    return n;
  }

 private:
  hm_list<D>& bucket(std::uint64_t key) {
    // Fibonacci hashing spreads dense benchmark key ranges.
    const std::uint64_t h = key * 0x9e3779b97f4a7c15ULL;
    return *buckets_[h % buckets_.size()];
  }

  std::vector<std::unique_ptr<hm_list<D>>> buckets_;
};

}  // namespace hyaline::ds
