// Natarajan & Mittal's lock-free external binary search tree [29].
//
// Leaf-oriented: internal nodes route, leaves store the keys. Deletion is
// two-phase: *injection* FLAGs the edge parent->leaf, then *cleanup* TAGs
// the sibling edge (freezing it) and splices the sibling into the deepest
// ancestor edge that is still untagged. Both bits live in the low bits of
// child pointers (common/tagged_ptr.hpp).
//
// Reclamation discipline: edges inside an unlinked fragment always carry a
// FLAG or TAG *before* the splice happens, and tagged/flagged edges are
// immutable. Hence the fragment a successful splice removes is frozen: the
// winner of the ancestor CAS walks it and retires every internal node and
// flagged leaf exactly once. This also gives reservation-based schemes
// (D::caps.needs_clean_edges: HP/HE/IBR/Hyaline-S/-1S) their validation rule: a
// re-read *clean* edge proves the target was not yet spliced when the
// reservation was published. A frozen edge, by contrast, validates forever
// — its target may already be retired and reclaimed — so under those
// schemes, seek never crosses a flagged/tagged edge: it helps the pending
// deletion complete (cleanup) and restarts from the root. Guard-lifetime
// schemes (Leaky/EBR/basic Hyaline/Hyaline-1) pin everything retired while
// the guard is live and traverse frozen fragments safely.
//
// Sentinels: keys inf0 < inf1 < inf2 occupy the top of the key space; user
// keys must be < inf0. R(inf2) and S(inf1) and the three sentinel leaves
// are never removed.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/tagged_ptr.hpp"
#include "smr/domain.hpp"

namespace hyaline::ds {

template <class D>
class natarajan_tree {
 public:
  static_assert(smr::Domain<D>,
                "natarajan_tree requires an smr::Domain scheme");
  static_assert(smr::max_hazards_v<D> >= 5,
                "natarajan_tree holds up to 5 simultaneous protections "
                "(ancestor, successor, parent, leaf, and the child being "
                "acquired)");

  using domain_type = D;
  using guard = typename D::guard;

  /// Largest key a user may insert.
  static constexpr std::uint64_t max_key = ~std::uint64_t{0} - 3;

  explicit natarajan_tree(D& dom) : dom_(dom) {
    root_ = new tnode{inf2, 0};
    s_ = new tnode{inf1, 0};
    root_->left.store(s_, std::memory_order_relaxed);
    root_->right.store(new tnode{inf2, 0}, std::memory_order_relaxed);
    s_->left.store(new tnode{inf0, 0}, std::memory_order_relaxed);
    s_->right.store(new tnode{inf1, 0}, std::memory_order_relaxed);
  }

  ~natarajan_tree() { free_rec(root_); }

  natarajan_tree(const natarajan_tree&) = delete;
  natarajan_tree& operator=(const natarajan_tree&) = delete;

  bool insert(guard& g, std::uint64_t key, std::uint64_t value) {
    tnode* new_leaf = nullptr;
    tnode* new_internal = nullptr;
    for (;;) {
      seek_record r;
      seek(g, key, r);
      if (r.leaf->key == key) {
        delete new_leaf;  // never published
        delete new_internal;
        return false;
      }
      tnode* parent = r.parent;
      std::atomic<tnode*>* child_addr =
          key < parent->key ? &parent->left : &parent->right;
      if (new_leaf == nullptr) {
        new_leaf = new tnode{key, value};
        dom_.on_alloc(new_leaf);
        new_internal = new tnode{0, 0};
        dom_.on_alloc(new_internal);
      }
      tnode* old_leaf = r.leaf;
      // Internal routing key = the larger leaf key; smaller key goes left.
      new_internal->key = key > old_leaf->key ? key : old_leaf->key;
      if (key < old_leaf->key) {
        new_internal->left.store(new_leaf, std::memory_order_relaxed);
        new_internal->right.store(old_leaf, std::memory_order_relaxed);
      } else {
        new_internal->left.store(old_leaf, std::memory_order_relaxed);
        new_internal->right.store(new_leaf, std::memory_order_relaxed);
      }
      tnode* expected = old_leaf;  // clean edge required
      // seq_cst: insert linearization point (clean-edge swap); the oracle
      // assumes a total order over edge updates.
      if (child_addr->compare_exchange_strong(expected, new_internal,
                                              std::memory_order_seq_cst)) {
        return true;
      }
      // Help if the failure was an in-progress deletion of old_leaf.
      // seq_cst: re-read of the contended edge decides whether to help a
      // concurrent deletion; must be ordered after the failed CAS.
      tnode* raw = child_addr->load(std::memory_order_seq_cst);
      if (untag(raw) == old_leaf && tag_of(raw) != 0) cleanup(g, key, r);
    }
  }

  bool remove(guard& g, std::uint64_t key) {
    bool injected = false;
    tnode* leaf = nullptr;
    for (;;) {
      seek_record r;
      seek(g, key, r);
      if (!injected) {
        leaf = r.leaf;
        if (leaf->key != key) return false;
        tnode* parent = r.parent;
        std::atomic<tnode*>* child_addr =
            key < parent->key ? &parent->left : &parent->right;
        tnode* expected = leaf;  // clean edge required
        // seq_cst: FLAG injection is the remove linearization point.
        if (child_addr->compare_exchange_strong(
                expected, with_tag(leaf, flag_bit),
                std::memory_order_seq_cst)) {
          injected = true;
          if (cleanup(g, key, r)) return true;
        } else {
          // seq_cst: re-read of the contended edge decides whether to help;
          // must be ordered after the failed injection CAS.
          tnode* raw = child_addr->load(std::memory_order_seq_cst);
          if (untag(raw) == leaf && tag_of(raw) != 0) cleanup(g, key, r);
        }
      } else {
        if (r.leaf != leaf) return true;  // a helper finished the splice
        if (cleanup(g, key, r)) return true;
      }
    }
  }

  bool contains(guard& g, std::uint64_t key) {
    seek_record r;
    seek(g, key, r);
    return r.leaf->key == key;
  }

  bool get(guard& g, std::uint64_t key, std::uint64_t& out) {
    seek_record r;
    seek(g, key, r);
    if (r.leaf->key != key) return false;
    out = r.leaf->value;
    return true;
  }

  /// Number of user leaves; quiescent use only.
  std::size_t unsafe_size() const { return count_rec(root_); }

 private:
  static constexpr unsigned flag_bit = 1;  // leaf edge: delete in progress
  static constexpr unsigned tag_bit = 2;   // sibling edge: frozen for splice
  static constexpr std::uint64_t inf0 = ~std::uint64_t{0} - 2;
  static constexpr std::uint64_t inf1 = ~std::uint64_t{0} - 1;
  static constexpr std::uint64_t inf2 = ~std::uint64_t{0};

  struct tnode : D::node {
    std::uint64_t key;
    std::uint64_t value;
    std::atomic<tnode*> left{nullptr};
    std::atomic<tnode*> right{nullptr};

    tnode(std::uint64_t k, std::uint64_t v) : key(k), value(v) {}
  };

  using handle = typename D::template protected_ptr<tnode>;

  struct seek_record {
    tnode* ancestor = nullptr;   // deepest node with an untagged path edge
    tnode* successor = nullptr;  // ancestor's child on the path
    tnode* parent = nullptr;     // leaf's parent
    tnode* leaf = nullptr;       // terminal leaf
    // Protections for the window roles. parent_h may be empty while the
    // parent aliases the successor (the role handoff below); the sentinel
    // nodes R and S are permanent and carry no handle.
    handle ancestor_h;
    handle successor_h;
    handle parent_h;
    handle leaf_h;

    void release() {
      ancestor_h.reset();
      successor_h.reset();
      parent_h.reset();
      leaf_h.reset();
    }
  };

  /// D::caps.needs_clean_edges: D cannot guarantee that a node reached
  /// through a frozen (already spliced-out) edge is still allocated —
  /// HP/HE pin only the published pointer/era, and the era-robust schemes
  /// (IBR, Hyaline-S, Hyaline-1S) may skip young batches a stale-edge
  /// holder was never refcounted into. Such schemes must not cross frozen
  /// edges; see the header comment. Guard-lifetime schemes (Leaky/EBR/
  /// basic Hyaline/Hyaline-1) pin everything retired while the guard is
  /// live and may.
  static constexpr bool needs_clean_edges() {
    return D::caps.needs_clean_edges;
  }

  /// Descend to the leaf for `key`, maintaining the four-node window. The
  /// window roles carry RAII protection handles that move as the roles
  /// advance; R and S are permanent and need no protection. Peak: four
  /// role handles plus the child being acquired.
  void seek(guard& g, std::uint64_t key, seek_record& r) {
  retry:
    r.release();
    r.ancestor = root_;
    r.successor = s_;
    r.parent = s_;
    r.leaf_h = g.protect(s_->left);
    tnode* parent_field = r.leaf_h.get();
    if constexpr (needs_clean_edges()) {
      if (tag_of(parent_field) != 0) {
        // Defensive: the sentinel structure keeps S's left edge clean (the
        // rightmost leaf of the left subtree is the undeletable inf0), so
        // this cannot happen in a correct execution; never descend through
        // a dirty edge regardless.
        goto retry;
      }
    }
    r.leaf = untag(parent_field);

    for (;;) {
      std::atomic<tnode*>& edge =
          key < r.leaf->key ? r.leaf->left : r.leaf->right;
      handle cur_h = g.protect(edge);
      tnode* cur_raw = cur_h.get();
      tnode* cur = untag(cur_raw);
      if (cur == nullptr) {
        return;
      }
      const bool path_edge_clean = !has_tag(parent_field, tag_bit);
      if (path_edge_clean) {
        // Role handoff: the old parent becomes the ancestor and the old
        // leaf becomes the successor. When the parent aliased the
        // successor (parent_h empty), the successor's handle is the one
        // protecting the node that is now the ancestor.
        r.ancestor = r.parent;
        r.ancestor_h = r.parent_h ? std::move(r.parent_h)
                                  : std::move(r.successor_h);
        r.successor = r.leaf;
        r.successor_h = std::move(r.leaf_h);
      }
      if constexpr (needs_clean_edges()) {
        if (tag_of(cur_raw) != 0) {
          // Frozen edge: cur may sit in an already-spliced fragment. Help
          // the deletion pending at r.leaf — the (ancestor, successor)
          // window just updated above is exactly its cleanup window — then
          // restart from the root. Progress: each restart either completes
          // that deletion or observes another thread's completed splice.
          seek_record h;
          h.ancestor = r.ancestor;
          h.successor = r.successor;
          h.parent = r.leaf;
          h.leaf = cur;
          cleanup(g, key, h);
          goto retry;
        }
      }
      r.parent = r.leaf;
      if (path_edge_clean) {
        // parent aliases successor: protection lives in successor_h.
        r.parent_h.reset();
      } else {
        r.parent_h = std::move(r.leaf_h);
      }
      r.leaf = cur;
      r.leaf_h = std::move(cur_h);
      parent_field = cur_raw;
    }
  }

  /// Set the TAG bit on an edge (idempotent; pointer becomes immutable).
  static void set_tag(std::atomic<tnode*>& edge) {
    // seq_cst: TAG protocol read/CAS participate in the same total
    // order as the splice CASes that interpret the tag bits.
    tnode* v = edge.load(std::memory_order_seq_cst);
    while (!has_tag(v, tag_bit)) {
      // seq_cst: see set_tag's comment above — tag and splice CASes
      // must agree on one total order.
      if (edge.compare_exchange_weak(v, with_tag(v, tag_bit),
                                     std::memory_order_seq_cst)) {
        return;
      }
    }
  }

  /// Splice the fragment [successor .. parent] + flagged leaf out of the
  /// tree, replacing ancestor's path edge with the surviving sibling.
  /// Returns true iff this call won the splice (and retired the fragment).
  bool cleanup(guard& g, std::uint64_t key, seek_record& r) {
    tnode* ancestor = r.ancestor;
    tnode* successor = r.successor;
    tnode* parent = r.parent;

    std::atomic<tnode*>* succ_addr =
        key < ancestor->key ? &ancestor->left : &ancestor->right;
    std::atomic<tnode*>* child_addr;
    std::atomic<tnode*>* sibling_addr;
    if (key < parent->key) {
      child_addr = &parent->left;
      sibling_addr = &parent->right;
    } else {
      child_addr = &parent->right;
      sibling_addr = &parent->left;
    }
    // seq_cst: reads which child carries the in-progress FLAG; must be
    // ordered with the injection CAS that set it.
    if (!has_tag(child_addr->load(std::memory_order_seq_cst), flag_bit)) {
      // The deletion in progress is of the *other* child; it survives on
      // the path side and the flagged one goes.
      sibling_addr = child_addr;
    }
    set_tag(*sibling_addr);
    // seq_cst: read of the now-TAGged (immutable) sibling edge, ordered
    // after set_tag's CAS above.
    tnode* sib = sibling_addr->load(std::memory_order_seq_cst);
    // Keep the sibling's FLAG (its own deletion continues from ancestor),
    // clear the TAG.
    tnode* desired = with_tag(untag(sib), tag_of(sib) & flag_bit);
    tnode* expected = successor;  // clean edge
    // seq_cst: the splice CAS that wins the fragment; totally ordered
    // with the FLAG/TAG protocol so exactly one caller retires it.
    if (!succ_addr->compare_exchange_strong(expected, desired,
                                            std::memory_order_seq_cst)) {
      return false;
    }
    // We won: the fragment is frozen (every edge inside carries FLAG/TAG
    // and can no longer change). Retire it exactly once.
    std::atomic<tnode*>* removed_addr =
        sibling_addr == &parent->left ? &parent->right : &parent->left;
    tnode* n = successor;
    while (n != parent) {
      const bool left_path = key < n->key;
      // seq_cst: frozen-fragment edges (all FLAG/TAGged) — immutable by
      // protocol, read in the splice's total order before retiring.
      tnode* on = untag((left_path ? n->left : n->right)
                            .load(std::memory_order_seq_cst));
      // seq_cst: same frozen-fragment read as above.
      tnode* off = untag((left_path ? n->right : n->left)
                             .load(std::memory_order_seq_cst));
      g.retire(off);  // an intermediate's flagged leaf
      g.retire(n);
      n = on;
    }
    g.retire(parent);
    // seq_cst: frozen-fragment read (see the loop above).
    g.retire(untag(removed_addr->load(std::memory_order_seq_cst)));
    return true;
  }

  void free_rec(tnode* n) {
    if (n == nullptr) return;
    free_rec(untag(n->left.load(std::memory_order_relaxed)));
    free_rec(untag(n->right.load(std::memory_order_relaxed)));
    delete n;
  }

  std::size_t count_rec(const tnode* n) const {
    if (n == nullptr) return 0;
    const tnode* l = untag(n->left.load(std::memory_order_relaxed));
    const tnode* rr = untag(n->right.load(std::memory_order_relaxed));
    if (l == nullptr && rr == nullptr) return n->key < inf0 ? 1 : 0;
    return count_rec(l) + count_rec(rr);
  }

  D& dom_;
  tnode* root_;  // R (key inf2); left child S (key inf1); both permanent
  tnode* s_;
};

}  // namespace hyaline::ds
