// Coarse-grained mutex-guarded hash set: the honesty baseline.
//
// Every operation takes one global std::mutex — the implementation anyone
// would write first, with zero reclamation machinery. Registered as the
// "Mutex" scheme so figure and sweep output can report lock-free + SMR
// numbers against this floor instead of only against each other. Nodes
// still derive from the domain's node header and are retired through the
// guard (the immediate_domain frees them on the spot), so the allocation
// path and the leak ledgers match the real cells exactly.
//
// Template over the domain only to fit the registry's cell machinery; it
// is only registered (and only correct) with smr::immediate_domain, since
// nothing here defers reclamation past the critical section.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "smr/domain.hpp"

namespace hyaline::ds {

template <class D>
class locked_set {
 public:
  static_assert(smr::Domain<D>, "locked_set requires an smr::Domain scheme");

  using domain_type = D;
  using guard = typename D::guard;

  explicit locked_set(D& dom) : dom_(dom), buckets_(kBuckets, nullptr) {}

  ~locked_set() {
    for (hnode*& b : buckets_) {
      hnode* n = b;
      while (n != nullptr) {
        hnode* nx = n->nxt;
        delete n;
        n = nx;
      }
      b = nullptr;
    }
  }

  locked_set(const locked_set&) = delete;
  locked_set& operator=(const locked_set&) = delete;

  bool insert(guard& g, std::uint64_t key, std::uint64_t value) {
    (void)g;
    std::lock_guard<std::mutex> lk(mu_);
    hnode** slot = &buckets_[bucket_of(key)];
    for (hnode* n = *slot; n != nullptr; n = n->nxt) {
      if (n->key == key) return false;
    }
    hnode* fresh = new hnode(key, value);
    dom_.on_alloc(fresh);
    fresh->nxt = *slot;
    *slot = fresh;
    return true;
  }

  bool remove(guard& g, std::uint64_t key) {
    std::lock_guard<std::mutex> lk(mu_);
    hnode** link = &buckets_[bucket_of(key)];
    while (*link != nullptr) {
      hnode* n = *link;
      if (n->key == key) {
        *link = n->nxt;
        g.retire(n);  // immediate_domain: freed before the lock drops
        return true;
      }
      link = &n->nxt;
    }
    return false;
  }

  bool contains(guard& g, std::uint64_t key) {
    (void)g;
    std::lock_guard<std::mutex> lk(mu_);
    for (hnode* n = buckets_[bucket_of(key)]; n != nullptr; n = n->nxt) {
      if (n->key == key) return true;
    }
    return false;
  }

 private:
  static constexpr std::size_t kBuckets = 1024;

  struct hnode : D::node {
    std::uint64_t key;
    std::uint64_t value;
    hnode* nxt = nullptr;

    hnode(std::uint64_t k, std::uint64_t v) : key(k), value(v) {}
  };

  static std::size_t bucket_of(std::uint64_t key) {
    // Fibonacci hash: the workload's keys are near-sequential.
    return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) >> 54) %
           kBuckets;
  }

  D& dom_;
  std::mutex mu_;
  std::vector<hnode*> buckets_;
};

}  // namespace hyaline::ds
