// Harris's ORIGINAL lock-free linked list [20] — as distinct from the
// Michael variant in ds/hm_list.hpp.
//
// The difference matters to the paper (§2.4): here a logically deleted
// (marked) node may linger in the list until a later search snips a whole
// marked *segment* with one CAS; nodes are retired only at snip time.
// Consequently:
//   - basic Hyaline / EBR / IBR-style schemes handle it fine (traversal
//     happens inside a critical section; snipped segments are retired as
//     a unit) — "Basic Hyaline can work with the original lock-free
//     linked list [20]";
//   - pointer-publication schemes (HP/HE) cannot traverse it safely (a
//     hazard on a marked node does not protect the rest of the segment),
//     and robust schemes lose their *bounded garbage* guarantee because
//     marked-but-unsnipped nodes are invisible to the reclamation scheme —
//     "its robust version requires a modification [26] that timely
//     retires deleted list nodes". Instantiate it with the epoch-style
//     schemes only.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/tagged_ptr.hpp"
#include "smr/domain.hpp"

namespace hyaline::ds {

template <class D>
class harris_list {
 public:
  static_assert(smr::Domain<D>,
                "harris_list requires an smr::Domain scheme");
  static_assert(!D::caps.pointer_publication && !D::caps.robust,
                "Harris's original list defers unlinking past logical "
                "deletion, so only guard-lifetime epoch-style schemes "
                "(Leaky, EBR, basic Hyaline, Hyaline-1) may traverse it; "
                "robust and pointer-publication schemes need Michael's "
                "timely-retirement variant (ds/hm_list.hpp, paper §2.4)");

  using domain_type = D;
  using guard = typename D::guard;

  explicit harris_list(D& dom) : dom_(dom) {
    // Sentinels simplify Harris's search invariants (head is never marked,
    // tail is never removed).
    head_ = new lnode{0, 0};
    tail_ = new lnode{~std::uint64_t{0}, 0};
    head_->next.store(tail_, std::memory_order_relaxed);
  }

  ~harris_list() {
    lnode* n = head_;
    while (n != nullptr) {
      lnode* nx = untag(n->next.load(std::memory_order_relaxed));
      delete n;
      n = nx;
    }
  }

  harris_list(const harris_list&) = delete;
  harris_list& operator=(const harris_list&) = delete;

  /// Insert key -> value; keys must be in (0, ~0) exclusive (sentinels).
  bool insert(guard& g, std::uint64_t key, std::uint64_t value) {
    lnode* fresh = nullptr;
    for (;;) {
      lnode* left;
      lnode* right = search(g, key, left);
      if (right != tail_ && right->key == key) {
        delete fresh;
        return false;
      }
      if (fresh == nullptr) {
        fresh = new lnode{key, value};
        dom_.on_alloc(fresh);
      }
      fresh->next.store(right, std::memory_order_relaxed);
      lnode* expected = right;
      // seq_cst: insert linearization point; the oracle assumes a total
      // order over link updates.
      if (left->next.compare_exchange_strong(expected, fresh,
                                             std::memory_order_seq_cst)) {
        return true;
      }
    }
  }

  /// Remove a key. The node is only *marked* here; physical unlinking (and
  /// retirement) happens in a later search's segment snip.
  bool remove(guard& g, std::uint64_t key) {
    for (;;) {
      lnode* left;
      lnode* right = search(g, key, left);
      if (right == tail_ || right->key != key) return false;
      lnode* right_next = right->next.load(std::memory_order_acquire);
      if (has_tag(right_next, 1)) continue;  // someone else is removing it
      lnode* expected = right_next;
      // seq_cst: logical-delete mark is the remove linearization point.
      if (right->next.compare_exchange_strong(expected,
                                              with_tag(right_next, 1),
                                              std::memory_order_seq_cst)) {
        // Best effort immediate snip of just this node; otherwise a later
        // search retires it as part of a segment.
        expected = right;
        // seq_cst: immediate snip; ordered before the retire so scanners
        // see the node unreachable once retired.
        if (left->next.compare_exchange_strong(expected, right_next,
                                               std::memory_order_seq_cst)) {
          g.retire(right);
        } else {
          lnode* l2;
          search(g, key, l2);
        }
        return true;
      }
    }
  }

  bool contains(guard& g, std::uint64_t key) {
    lnode* left;
    lnode* right = search(g, key, left);
    return right != tail_ && right->key == key;
  }

  bool get(guard& g, std::uint64_t key, std::uint64_t& out) {
    lnode* left;
    lnode* right = search(g, key, left);
    if (right == tail_ || right->key != key) return false;
    out = right->value;
    return true;
  }

  std::size_t unsafe_size() const {
    std::size_t n = 0;
    lnode* c = untag(head_->next.load(std::memory_order_relaxed));
    while (c != tail_) {
      if (!has_tag(c->next.load(std::memory_order_relaxed), 1)) ++n;
      c = untag(c->next.load(std::memory_order_relaxed));
    }
    return n;
  }

 private:
  struct lnode : D::node {
    std::uint64_t key;
    std::uint64_t value;
    std::atomic<lnode*> next{nullptr};

    lnode(std::uint64_t k, std::uint64_t v) : key(k), value(v) {}
  };

  /// Harris search: find adjacent (left, right) with left unmarked,
  /// left->key < key <= right->key, snipping any marked segment between
  /// them and retiring the snipped nodes as a unit.
  lnode* search(guard& g, std::uint64_t key, lnode*& left) {
  retry:
    for (;;) {
      lnode* t = head_;
      // Guard-lifetime schemes only (see static_assert): protect() is the
      // zero-cost wrapper, so handles are unwrapped immediately.
      lnode* t_next = g.protect(head_->next).get();
      lnode* left_next = t_next;
      left = head_;
      // Phase 1: advance until right = first unmarked node with key >= key.
      for (;;) {
        if (!has_tag(t_next, 1)) {
          left = t;
          left_next = t_next;
        }
        t = untag(t_next);
        if (t == tail_) break;
        t_next = g.protect(t->next).get();
        if (has_tag(t_next, 1) || t->key < key) continue;
        break;
      }
      lnode* right = t;
      // Phase 2: no marked segment in between?
      if (left_next == right) {
        if (right != tail_ &&
            has_tag(right->next.load(std::memory_order_acquire), 1)) {
          goto retry;  // right got marked under us
        }
        return right;
      }
      // Phase 3: snip the whole marked segment [left_next, right) and
      // retire it — the retirement pattern the paper contrasts with
      // Michael's per-node timely retire.
      lnode* expected = left_next;
      // seq_cst: segment snip unlinking [left_next, right); ordered
      // before the segment's retires below.
      if (left->next.compare_exchange_strong(expected, right,
                                             std::memory_order_seq_cst)) {
        lnode* n = left_next;
        while (n != right) {
          lnode* nx = untag(n->next.load(std::memory_order_acquire));
          g.retire(n);
          n = nx;
        }
        if (right != tail_ &&
            has_tag(right->next.load(std::memory_order_acquire), 1)) {
          goto retry;
        }
        return right;
      }
    }
  }

  D& dom_;
  lnode* head_;
  lnode* tail_;
};

}  // namespace hyaline::ds
