// Harris–Michael sorted lock-free linked list ([20], with Michael's [26]
// hazard-compatible find).
//
// The slowest structure in the paper's benchmark suite (long traversals) —
// Figure 8a/9a/11a/12a. The low bit of a node's `next` pointer marks the
// node as logically deleted; find() physically unlinks marked nodes it
// passes and retires them through the SMR domain, which is the "timely
// retirement" discipline the robust schemes require (§2.4).
//
// Template parameter D is any smr::Domain. Protection is expressed through
// RAII handles (API v2): the search window carries a handle for curr and
// one for the node owning prev, and advancing the window moves them —
// pointer-publication schemes (HP, HE) lease one extra slot while the new
// curr is protected before the old handle is released, so the peak is
// three simultaneous protections.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/tagged_ptr.hpp"
#include "smr/domain.hpp"

namespace hyaline::ds {

template <class D>
class hm_list {
 public:
  static_assert(smr::Domain<D>, "hm_list requires an smr::Domain scheme");
  static_assert(smr::max_hazards_v<D> >= 3,
                "hm_list holds up to 3 simultaneous protections "
                "(prev-node, curr, and the transient re-protect)");

  using domain_type = D;
  using guard = typename D::guard;

  explicit hm_list(D& dom) : dom_(dom) {}

  ~hm_list() {
    // Quiescent teardown: free every remaining node directly.
    lnode* n = untag(head_.load(std::memory_order_relaxed));
    while (n != nullptr) {
      lnode* nx = untag(n->next.load(std::memory_order_relaxed));
      delete n;
      n = nx;
    }
  }

  hm_list(const hm_list&) = delete;
  hm_list& operator=(const hm_list&) = delete;

  /// Insert key -> value; fails if the key is present.
  bool insert(guard& g, std::uint64_t key, std::uint64_t value) {
    lnode* fresh = nullptr;
    for (;;) {
      window w;
      if (find(g, key, w)) {
        delete fresh;  // never published
        return false;
      }
      if (fresh == nullptr) {
        fresh = new lnode{key, value};
        dom_.on_alloc(fresh);
      }
      fresh->next.store(w.curr, std::memory_order_relaxed);
      lnode* expected = w.curr;
      // seq_cst: insert linearization point; the oracle assumes a total
      // order over the list's link updates.
      if (w.prev->compare_exchange_strong(expected, fresh,
                                          std::memory_order_seq_cst)) {
        return true;
      }
    }
  }

  /// Remove a key; fails if absent.
  bool remove(guard& g, std::uint64_t key) {
    for (;;) {
      window w;
      if (!find(g, key, w)) return false;
      // Logically delete: mark curr's next.
      lnode* next = w.next;
      lnode* expected = next;
      // seq_cst: logical-delete mark is the remove linearization point.
      if (!w.curr->next.compare_exchange_strong(
              expected, with_tag(next, 1), std::memory_order_seq_cst)) {
        continue;  // next changed or already marked; re-find
      }
      // Physically unlink; on failure, a find() will clean up later.
      expected = w.curr;
      // seq_cst: physical unlink; must be ordered before the retire so
      // scanners see the node unreachable once it is in a retired list.
      if (w.prev->compare_exchange_strong(expected, next,
                                          std::memory_order_seq_cst)) {
        g.retire(w.curr);
      } else {
        w.release();  // drop our protections before the helping find
        window dummy;
        find(g, key, dummy);  // help unlink
      }
      return true;
    }
  }

  /// Membership test.
  bool contains(guard& g, std::uint64_t key) {
    window w;
    return find(g, key, w);
  }

  /// Lookup returning the value through `out`.
  bool get(guard& g, std::uint64_t key, std::uint64_t& out) {
    window w;
    if (!find(g, key, w)) return false;
    out = w.curr->value;
    return true;
  }

  /// Number of (unmarked) nodes; quiescent use only (tests).
  std::size_t unsafe_size() const {
    std::size_t n = 0;
    lnode* c = untag(head_.load(std::memory_order_relaxed));
    while (c != nullptr) {
      lnode* raw = c->next.load(std::memory_order_relaxed);
      if (!has_tag(raw, 1)) ++n;
      c = untag(raw);
    }
    return n;
  }

 private:
  struct lnode : D::node {
    std::uint64_t key;
    std::uint64_t value;
    std::atomic<lnode*> next{nullptr};

    lnode(std::uint64_t k, std::uint64_t v) : key(k), value(v) {}
  };

  using handle = typename D::template protected_ptr<lnode>;

  struct window {
    std::atomic<lnode*>* prev = nullptr;
    lnode* curr = nullptr;  // first node with key >= search key (or null)
    lnode* next = nullptr;  // curr's successor at inspection time
    handle curr_h;          // protection for curr
    handle prev_h;          // protection for the node owning prev

    void release() {
      curr_h.reset();
      prev_h.reset();
    }
  };

  /// Michael's find: positions the window at the first node with
  /// key >= `key`, unlinking marked nodes along the way. On return, the
  /// window's handles keep `curr` (if non-null) and the node owning `prev`
  /// protected until the window dies.
  bool find(guard& g, std::uint64_t key, window& w) {
  retry:
    w.release();
    std::atomic<lnode*>* prev = &head_;
    w.curr_h = g.protect(*prev);
    lnode* curr = w.curr_h.get();
    for (;;) {
      if (curr == nullptr) {
        w.prev = prev;
        w.curr = nullptr;
        w.next = nullptr;
        return false;
      }
      lnode* next_raw = curr->next.load(std::memory_order_acquire);
      if (has_tag(next_raw, 1)) {
        // curr is logically deleted: unlink it from prev.
        lnode* next = untag(next_raw);
        lnode* expected = curr;
        // seq_cst: helping unlink of a marked node; participates in the
        // same total order as remove()'s unlink.
        if (!prev->compare_exchange_strong(expected, next,
                                           std::memory_order_seq_cst)) {
          goto retry;
        }
        g.retire(curr);
        w.curr_h = g.protect(*prev);  // transient third protection
        curr = w.curr_h.get();
        continue;
      }
      // seq_cst: validating re-read after the hazard publication in
      // protect(); it must not be ordered before that publication.
      if (prev->load(std::memory_order_seq_cst) != curr) goto retry;
      if (curr->key >= key) {
        w.prev = prev;
        w.curr = curr;
        w.next = next_raw;
        return curr->key == key;
      }
      prev = &curr->next;
      w.prev_h = std::move(w.curr_h);  // keep the new prev-node protected
      w.curr_h = g.protect(*prev);
      curr = w.curr_h.get();
      // A marked prev-node makes *prev's raw value tagged; protect returns
      // it tagged and the validation above (or the tag check) restarts us.
      if (has_tag(curr, 1)) goto retry;
    }
  }

  D& dom_;
  std::atomic<lnode*> head_{nullptr};
};

}  // namespace hyaline::ds
