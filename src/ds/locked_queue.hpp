// Coarse-grained mutex-guarded FIFO queue: the honesty baseline twin of
// locked_set (see that header for the rationale). One global std::mutex,
// an intrusive singly-linked list, immediate reclamation through the
// guard. Only registered with smr::immediate_domain.
#pragma once

#include <cstdint>
#include <mutex>

#include "smr/domain.hpp"

namespace hyaline::ds {

template <class D>
class locked_queue {
 public:
  static_assert(smr::Domain<D>,
                "locked_queue requires an smr::Domain scheme");

  using domain_type = D;
  using guard = typename D::guard;

  explicit locked_queue(D& dom) : dom_(dom) {}

  ~locked_queue() {
    qnode* n = head_;
    while (n != nullptr) {
      qnode* nx = n->nxt;
      delete n;
      n = nx;
    }
  }

  locked_queue(const locked_queue&) = delete;
  locked_queue& operator=(const locked_queue&) = delete;

  void push(guard& g, std::uint64_t value) {
    (void)g;
    qnode* fresh = new qnode(value);
    dom_.on_alloc(fresh);
    std::lock_guard<std::mutex> lk(mu_);
    if (tail_ == nullptr) {
      head_ = tail_ = fresh;
    } else {
      tail_->nxt = fresh;
      tail_ = fresh;
    }
  }

  bool try_pop(guard& g, std::uint64_t& out) {
    std::lock_guard<std::mutex> lk(mu_);
    qnode* n = head_;
    if (n == nullptr) return false;
    head_ = n->nxt;
    if (head_ == nullptr) tail_ = nullptr;
    out = n->value;
    g.retire(n);  // immediate_domain: freed before the lock drops
    return true;
  }

  /// Number of queued values; quiescent use only.
  std::size_t unsafe_size() const {
    std::size_t n = 0;
    for (qnode* c = head_; c != nullptr; c = c->nxt) ++n;
    return n;
  }

 private:
  struct qnode : D::node {
    std::uint64_t value;
    qnode* nxt = nullptr;

    explicit qnode(std::uint64_t v) : value(v) {}
  };

  D& dom_;
  std::mutex mu_;
  qnode* head_ = nullptr;
  qnode* tail_ = nullptr;
};

}  // namespace hyaline::ds
