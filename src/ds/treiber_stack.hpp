// Treiber lock-free LIFO stack over any smr::Domain.
//
// The head-only-contention extreme of the container family: every
// operation is a single CAS on one cache line, so the structure itself is
// nearly free and the benchmark measures the reclamation scheme's per-op
// overhead (guard entry, protection, retirement) almost in isolation.
//
// SMR is what makes the naive pop loop ABA-safe here: the classic Treiber
// failure — head A is popped, freed, reallocated, and re-pushed between a
// competitor's read of A and its CAS — cannot happen, because pop protects
// the head before reading its successor, a protected node is never freed,
// and retired nodes are never re-pushed. Peak 1 protection; push
// dereferences nothing shared and needs none.
//
// Containers have no marked/frozen edges, so every registered scheme
// qualifies, including the robust ones harris_list excludes.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/align.hpp"
#include "smr/domain.hpp"

namespace hyaline::ds {

template <class D>
class treiber_stack {
 public:
  static_assert(smr::Domain<D>,
                "treiber_stack requires an smr::Domain scheme");
  static_assert(smr::max_hazards_v<D> >= 1,
                "treiber_stack protects the head node during pop");

  using domain_type = D;
  using guard = typename D::guard;

  explicit treiber_stack(D& dom) : dom_(dom) {}

  ~treiber_stack() {
    // Quiescent teardown: free every residual node directly.
    snode* n = head_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      snode* nx = n->next.load(std::memory_order_relaxed);
      delete n;
      n = nx;
    }
  }

  treiber_stack(const treiber_stack&) = delete;
  treiber_stack& operator=(const treiber_stack&) = delete;

  /// Push a value. Always succeeds (the stack is unbounded). The guard is
  /// unused (push never dereferences a shared node) but taken for a
  /// uniform container interface.
  void push(guard& g, std::uint64_t value) {
    (void)g;
    snode* fresh = new snode(value);
    dom_.on_alloc(fresh);
    snode* head = head_.load(std::memory_order_acquire);
    for (;;) {
      fresh->next.store(head, std::memory_order_relaxed);
      // seq_cst: push linearization point; the oracle assumes a single
      // total order over the stack's head updates.
      if (head_.compare_exchange_weak(head, fresh,
                                      std::memory_order_seq_cst)) {
        return;
      }
    }
  }

  /// Pop the newest value into `out`; fails iff the stack is empty.
  bool try_pop(guard& g, std::uint64_t& out) {
    for (;;) {
      handle h = g.protect(head_);
      snode* top = h.get();
      if (top == nullptr) return false;
      // `next` is immutable after publication and `top` is protected, so
      // this read is safe even if a competitor pops `top` first.
      snode* next = top->next.load(std::memory_order_acquire);
      snode* expected = top;
      // seq_cst: pop linearization point, totally ordered with pushes;
      // also orders the retire after the unlink for the SMR scanners.
      if (head_.compare_exchange_strong(expected, next,
                                        std::memory_order_seq_cst)) {
        out = top->value;  // we won the pop; top stays protected by h
        g.retire(top);
        return true;
      }
    }
  }

  /// Number of stacked values; quiescent use only.
  std::size_t unsafe_size() const {
    std::size_t n = 0;
    snode* c = head_.load(std::memory_order_relaxed);
    while (c != nullptr) {
      ++n;
      c = c->next.load(std::memory_order_relaxed);
    }
    return n;
  }

 private:
  struct snode : D::node {
    std::uint64_t value;
    std::atomic<snode*> next{nullptr};

    explicit snode(std::uint64_t v) : value(v) {}
  };

  using handle = typename D::template protected_ptr<snode>;

  D& dom_;
  alignas(cache_line_size) std::atomic<snode*> head_{nullptr};
};

}  // namespace hyaline::ds
