// Bonsai tree variant (Clements et al. [13], as adapted for SMR
// benchmarking by the paper's framework): a weight-balanced BST updated by
// path copying with a single root CAS.
//
// Writers build a fresh copy of the root-to-target path (plus any rotation
// copies), then CAS the root; on failure the never-published copies are
// deleted directly and the operation retries. On success every *replaced*
// original node is retired through the SMR domain. Readers take one
// protected root load and then traverse an immutable snapshot.
//
// Consequences mirror the paper exactly:
//   - reads are wait-free and touch no shared state beyond the root;
//   - updates are lock-free but allocate/retire O(log n) nodes each, which
//     is what makes this benchmark a reclamation stress test (Fig. 8b/9b);
//   - pointer-publication schemes (HP, HE) cannot protect an unbounded
//     snapshot, so they are not instantiable here — the same reason the
//     paper omits them from the Bonsai figures. Epoch/interval schemes
//     (EBR, IBR, all Hyaline variants) need only the root protection: every
//     snapshot node was born before the protected root load and is retired
//     after it, so its lifetime interval covers the reader's reservation.
#pragma once

#include <cstdint>
#include <vector>

#include <atomic>

#include "smr/domain.hpp"

namespace hyaline::ds {

template <class D>
class bonsai_tree {
 public:
  static_assert(smr::Domain<D>,
                "bonsai_tree requires an smr::Domain scheme");
  static_assert(!D::caps.pointer_publication,
                "bonsai_tree readers traverse an unbounded immutable "
                "snapshot, which pointer-publication schemes (HP, HE) "
                "cannot protect — the paper omits them from the Bonsai "
                "figures for the same reason");

  using domain_type = D;
  using guard = typename D::guard;

  explicit bonsai_tree(D& dom) : dom_(dom) {}

  ~bonsai_tree() { free_rec(root_.load(std::memory_order_relaxed)); }

  bonsai_tree(const bonsai_tree&) = delete;
  bonsai_tree& operator=(const bonsai_tree&) = delete;

  bool insert(guard& g, std::uint64_t key, std::uint64_t value) {
    op_ctx ctx;
    for (;;) {
      bnode* old_root = g.protect(root_).get();
      if (lookup(old_root, key) != nullptr) return false;
      ctx.reset();
      bnode* new_root = insert_rec(ctx, old_root, key, value);
      ctx.seal();  // clear fresh flags before publication
      bnode* expected = old_root;
      // seq_cst: root swap is the insert linearization point (the whole
      // path is copied; the swap publishes it atomically).
      if (root_.compare_exchange_strong(expected, new_root,
                                        std::memory_order_seq_cst)) {
        ctx.commit(g);
        return true;
      }
      ctx.discard_fresh();
    }
  }

  bool remove(guard& g, std::uint64_t key) {
    op_ctx ctx;
    for (;;) {
      bnode* old_root = g.protect(root_).get();
      if (lookup(old_root, key) == nullptr) return false;
      ctx.reset();
      bnode* new_root = remove_rec(ctx, old_root, key);
      ctx.seal();  // clear fresh flags before publication
      bnode* expected = old_root;
      // seq_cst: root swap is the remove linearization point.
      if (root_.compare_exchange_strong(expected, new_root,
                                        std::memory_order_seq_cst)) {
        ctx.commit(g);
        return true;
      }
      ctx.discard_fresh();
    }
  }

  bool contains(guard& g, std::uint64_t key) {
    return lookup(g.protect(root_).get(), key) != nullptr;
  }

  bool get(guard& g, std::uint64_t key, std::uint64_t& out) {
    const bnode* n = lookup(g.protect(root_).get(), key);
    if (n == nullptr) return false;
    out = n->value;
    return true;
  }

  std::size_t unsafe_size() const {
    const bnode* r = root_.load(std::memory_order_relaxed);
    return r == nullptr ? 0 : r->size;
  }

 private:
  struct bnode : D::node {
    std::uint64_t key;
    std::uint64_t value;
    bnode* left;
    bnode* right;
    std::uint64_t size;   // subtree node count (weight = size + 1)
    bool fresh;           // true only while unpublished (builder-private)

    bnode(std::uint64_t k, std::uint64_t v, bnode* l, bnode* r,
          std::uint64_t s)
        : key(k), value(v), left(l), right(r), size(s), fresh(true) {}
  };

  /// Per-operation builder bookkeeping.
  struct op_ctx {
    std::vector<bnode*> fresh;     // allocated this attempt (unpublished)
    std::vector<bnode*> replaced;  // originals to retire on success
    std::vector<bnode*> orphaned;  // fresh nodes rotated away by join():
                                   // unreachable from the new root, so they
                                   // are deleted directly on success

    void reset() {
      fresh.clear();
      replaced.clear();
      orphaned.clear();
    }

    /// Clear builder-private flags; must precede the publishing CAS so
    /// that a later operation's consume() sees these nodes as originals.
    void seal() {
      for (bnode* n : fresh) n->fresh = false;
    }

    void discard_fresh() {
      for (bnode* n : fresh) delete n;  // orphaned is a subset of fresh
      fresh.clear();
      replaced.clear();
      orphaned.clear();
    }

    /// Success path: retire originals through `g`, delete orphans.
    template <class G>
    void commit(G& g) {
      for (bnode* n : replaced) g.retire(n);
      for (bnode* n : orphaned) delete n;
    }
  };

  static std::uint64_t size_of(const bnode* n) { return n ? n->size : 0; }
  static std::uint64_t weight_of(const bnode* n) { return size_of(n) + 1; }

  // Weight-balanced (BB[alpha]) parameters, Adams' variant: rebalance when
  // one side is more than delta times heavier; choose single vs double
  // rotation with gamma.
  static constexpr std::uint64_t delta = 3;
  static constexpr std::uint64_t gamma2 = 2;

  bnode* make(op_ctx& ctx, std::uint64_t k, std::uint64_t v, bnode* l,
              bnode* r) {
    auto* n = new bnode{k, v, l, r, 1 + size_of(l) + size_of(r)};
    dom_.on_alloc(n);
    ctx.fresh.push_back(n);
    return n;
  }

  /// Record that node `n` is superseded by a copy: originals are retired
  /// on success; fresh nodes become orphans (never published, deleted
  /// directly).
  static void consume(op_ctx& ctx, bnode* n) {
    if (n->fresh) {
      ctx.orphaned.push_back(n);
    } else {
      ctx.replaced.push_back(n);
    }
  }

  /// Build a balanced node (k,v) over subtrees l and r, rotating copies as
  /// needed. l/r heights differ from a balanced join by at most one
  /// insertion/removal, which Adams' conditions handle.
  bnode* join(op_ctx& ctx, std::uint64_t k, std::uint64_t v, bnode* l,
              bnode* r) {
    const std::uint64_t wl = weight_of(l);
    const std::uint64_t wr = weight_of(r);
    if (wl + wr <= 2) return make(ctx, k, v, l, r);
    if (wr > delta * wl) {
      // Right-heavy: rotate left (r is decomposed, hence replaced).
      consume(ctx, r);
      bnode* rl = r->left;
      bnode* rr = r->right;
      if (weight_of(rl) < gamma2 * weight_of(rr)) {
        return make(ctx, r->key, r->value, make(ctx, k, v, l, rl), rr);
      }
      consume(ctx, rl);
      return make(ctx, rl->key, rl->value, make(ctx, k, v, l, rl->left),
                  make(ctx, r->key, r->value, rl->right, rr));
    }
    if (wl > delta * wr) {
      consume(ctx, l);
      bnode* ll = l->left;
      bnode* lr = l->right;
      if (weight_of(lr) < gamma2 * weight_of(ll)) {
        return make(ctx, l->key, l->value, ll, make(ctx, k, v, lr, r));
      }
      consume(ctx, lr);
      return make(ctx, lr->key, lr->value,
                  make(ctx, l->key, l->value, ll, lr->left),
                  make(ctx, k, v, lr->right, r));
    }
    return make(ctx, k, v, l, r);
  }

  bnode* insert_rec(op_ctx& ctx, bnode* n, std::uint64_t key,
                    std::uint64_t value) {
    if (n == nullptr) return make(ctx, key, value, nullptr, nullptr);
    consume(ctx, n);
    if (key < n->key) {
      return join(ctx, n->key, n->value,
                  insert_rec(ctx, n->left, key, value), n->right);
    }
    return join(ctx, n->key, n->value, n->left,
                insert_rec(ctx, n->right, key, value));
  }

  bnode* remove_rec(op_ctx& ctx, bnode* n, std::uint64_t key) {
    consume(ctx, n);
    if (key < n->key) {
      return join(ctx, n->key, n->value, remove_rec(ctx, n->left, key),
                  n->right);
    }
    if (key > n->key) {
      return join(ctx, n->key, n->value, n->left,
                  remove_rec(ctx, n->right, key));
    }
    // Found: splice. Subtrees are shared, not copied.
    if (n->left == nullptr) return n->right;
    if (n->right == nullptr) return n->left;
    std::uint64_t mk = 0, mv = 0;
    bnode* rest = extract_min(ctx, n->right, mk, mv);
    return join(ctx, mk, mv, n->left, rest);
  }

  bnode* extract_min(op_ctx& ctx, bnode* n, std::uint64_t& mk,
                     std::uint64_t& mv) {
    consume(ctx, n);
    if (n->left == nullptr) {
      mk = n->key;
      mv = n->value;
      return n->right;
    }
    bnode* rest = extract_min(ctx, n->left, mk, mv);
    return join(ctx, n->key, n->value, rest, n->right);
  }

  static const bnode* lookup(const bnode* n, std::uint64_t key) {
    while (n != nullptr) {
      if (key == n->key) return n;
      n = key < n->key ? n->left : n->right;
    }
    return nullptr;
  }

  static void free_rec(bnode* n) {
    if (n == nullptr) return;
    free_rec(n->left);
    free_rec(n->right);
    delete n;
  }

  D& dom_;
  std::atomic<bnode*> root_{nullptr};
};

}  // namespace hyaline::ds
