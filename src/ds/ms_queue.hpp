// Michael–Scott MPMC FIFO queue ([27]) over any smr::Domain.
//
// The first *container* structure in the suite: unlike the key-range sets,
// every successful operation allocates (enqueue) or retires (dequeue) a
// node, so reclamation pressure scales with throughput instead of with the
// remove fraction — the workload class where unreclaimed-memory bounds
// matter most. The queue keeps one dummy node: head always points at the
// most recently dequeued (or initial) node, and a dequeue hands the dummy
// role to its successor and retires the old dummy.
//
// Protection discipline (API v2): dequeue holds the current dummy and its
// successor simultaneously — a peak of 2 protections — because the value
// is read out of the successor *before* the head CAS, while a concurrent
// dequeuer may already have retired it. Enqueue holds only the tail.
// Re-validating `head_` after protecting the successor is load-bearing:
// a dummy's `next` edge is immutable once set, so protect()'s own
// publish-and-validate loop over `head->next` would validate forever even
// after the successor was retired; `head_` still pointing at the dummy is
// what proves the successor live.
//
// Containers have no marked/frozen edges, so — unlike harris_list — every
// registered scheme qualifies, including the robust ones.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/align.hpp"
#include "smr/domain.hpp"

namespace hyaline::ds {

template <class D>
class ms_queue {
 public:
  static_assert(smr::Domain<D>, "ms_queue requires an smr::Domain scheme");
  static_assert(smr::max_hazards_v<D> >= 2,
                "ms_queue holds up to 2 simultaneous protections "
                "(the dummy and its successor during dequeue)");

  using domain_type = D;
  using guard = typename D::guard;

  explicit ms_queue(D& dom) : dom_(dom) {
    qnode* dummy = new qnode(0);
    dom_.on_alloc(dummy);
    head_.store(dummy, std::memory_order_relaxed);
    tail_.store(dummy, std::memory_order_relaxed);
  }

  ~ms_queue() {
    // Quiescent teardown: free the dummy and every residual node directly.
    qnode* n = head_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      qnode* nx = n->next.load(std::memory_order_relaxed);
      delete n;
      n = nx;
    }
  }

  ms_queue(const ms_queue&) = delete;
  ms_queue& operator=(const ms_queue&) = delete;

  /// Append a value. Always succeeds (the queue is unbounded).
  void enqueue(guard& g, std::uint64_t value) {
    qnode* fresh = new qnode(value);
    dom_.on_alloc(fresh);
    for (;;) {
      handle t = g.protect(tail_);
      qnode* tail = t.get();
      qnode* next = tail->next.load(std::memory_order_acquire);
      // seq_cst: validating re-read after the hazard publication in
      // protect(); it must not be ordered before that publication.
      if (tail != tail_.load(std::memory_order_seq_cst)) continue;
      if (next != nullptr) {
        // Tail is lagging: help swing it, then retry.
        // seq_cst: helping CAS participates in the total order of tail
        // swings the MS-queue invariants are argued over.
        tail_.compare_exchange_strong(tail, next,
                                      std::memory_order_seq_cst);
        continue;
      }
      qnode* expected = nullptr;
      // seq_cst: enqueue linearization point (link at the tail).
      if (tail->next.compare_exchange_strong(expected, fresh,
                                             std::memory_order_seq_cst)) {
        // seq_cst: tail swing after a successful link, totally ordered
        // with other tail updates and the validating re-reads above.
        tail_.compare_exchange_strong(tail, fresh,
                                      std::memory_order_seq_cst);
        return;
      }
    }
  }

  /// Pop the oldest value into `out`; fails iff the queue is empty. The
  /// winner's old dummy is retired through the guard.
  bool try_dequeue(guard& g, std::uint64_t& out) {
    for (;;) {
      handle h = g.protect(head_);
      qnode* head = h.get();
      qnode* tail = tail_.load(std::memory_order_acquire);
      handle nh = g.protect(head->next);
      qnode* next = nh.get();
      // See the header comment: head->next never changes once set, so only
      // head_ itself proves `next` has not been dequeued and retired.
      // seq_cst: validating re-read after the hazard publications in
      // protect(); it must not be ordered before them.
      if (head != head_.load(std::memory_order_seq_cst)) continue;
      if (next == nullptr) return false;  // empty (just the dummy)
      if (head == tail) {
        // Tail lags behind an in-flight enqueue: help it past the dummy.
        // seq_cst: helping CAS; same total-order argument as in enqueue.
        tail_.compare_exchange_strong(tail, next,
                                      std::memory_order_seq_cst);
        continue;
      }
      out = next->value;  // next is protected; read before the CAS races
      qnode* expected = head;
      // seq_cst: dequeue linearization point (head swing), totally
      // ordered with enqueues for the oracle's FIFO check.
      if (head_.compare_exchange_strong(expected, next,
                                        std::memory_order_seq_cst)) {
        g.retire(head);  // old dummy; `next` is the new dummy
        return true;
      }
    }
  }

  /// Uniform container interface for the producer/consumer workload driver
  /// (treiber_stack shares it).
  void push(guard& g, std::uint64_t value) { enqueue(g, value); }
  bool try_pop(guard& g, std::uint64_t& out) { return try_dequeue(g, out); }

  /// Number of queued values (excludes the dummy); quiescent use only.
  std::size_t unsafe_size() const {
    std::size_t n = 0;
    qnode* c = head_.load(std::memory_order_relaxed);
    c = c->next.load(std::memory_order_relaxed);  // skip the dummy
    while (c != nullptr) {
      ++n;
      c = c->next.load(std::memory_order_relaxed);
    }
    return n;
  }

 private:
  struct qnode : D::node {
    std::uint64_t value;
    std::atomic<qnode*> next{nullptr};

    explicit qnode(std::uint64_t v) : value(v) {}
  };

  using handle = typename D::template protected_ptr<qnode>;

  D& dom_;
  alignas(cache_line_size) std::atomic<qnode*> head_{nullptr};
  alignas(cache_line_size) std::atomic<qnode*> tail_{nullptr};
};

}  // namespace hyaline::ds
