// Service scenario, part 1: the open-loop load generator.
//
// A closed-loop benchmark (issue, wait, issue) silently *stops offering
// load* whenever the system stalls, so its latency histogram omits
// exactly the requests a stall would have delayed — coordinated
// omission. The pacer here is open-loop: each tenant draws an arrival
// schedule (fixed-rate or Poisson) that advances independently of the
// system, every operation carries its *intended* start time, and the
// recorded latency is completion minus intended start. A request issued
// late because its predecessor stalled therefore records the stall it
// inherited, which is what a user behind that connection would see.
//
// The schedule is pure arithmetic over an anchor time point; the pacer
// never consults the clock to decide *what* the next intended start is,
// only to wait for it. Falling behind never re-anchors the schedule —
// except explicitly via reanchor(), which the service loop uses only for
// scripted bad tenants leaving a misbehavior window (their backlog is
// self-inflicted, not service latency).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/rng.hpp"

namespace hyaline::svc {

enum class arrival_kind {
  fixed,    ///< constant inter-arrival gap (1/rate)
  poisson,  ///< exponential gaps, memoryless arrivals (mean 1/rate)
};

/// Per-tenant open-loop pacer. Not thread-safe: one instance per worker.
class pacer {
 public:
  using clock = std::chrono::steady_clock;

  /// `rate_ops_s` is this tenant's offered load; 0 disables pacing
  /// (paced() is false and the caller runs closed-loop).
  pacer(arrival_kind kind, double rate_ops_s, std::uint64_t seed)
      : kind_(kind),
        mean_gap_ns_(rate_ops_s > 0 ? 1e9 / rate_ops_s : 0),
        rng_(seed) {}

  bool paced() const { return mean_gap_ns_ > 0; }

  /// Set the schedule's first intended start. Call once before the loop.
  void anchor(clock::time_point at) { next_ = at; }

  /// The next intended start per the arrival schedule, advancing it.
  /// Pure schedule arithmetic — never reads the clock, so a late caller
  /// gets an intended time in the past and await() returns immediately
  /// (the lateness lands in the recorded latency, by design).
  clock::time_point next_intended() {
    const clock::time_point t = next_;
    next_ += std::chrono::nanoseconds(static_cast<std::int64_t>(gap_ns()));
    return t;
  }

  /// Restart the schedule at now. ONLY for scripted tenants leaving a
  /// misbehavior window: re-anchoring a victim tenant would reintroduce
  /// coordinated omission.
  void reanchor() { next_ = clock::now(); }

  /// Wait until `intended`, polling `stop`; returns false once stop is
  /// observed, true when the intended time has arrived. Never waits when
  /// already behind schedule.
  static bool await(clock::time_point intended,
                    const std::atomic<bool>& stop);

 private:
  double gap_ns() {
    if (kind_ == arrival_kind::fixed) return mean_gap_ns_;
    // Exponential inter-arrival: -mean * ln(1 - u), u in [0, 1).
    const double u = static_cast<double>(rng_.next() >> 11) * 0x1.0p-53;
    return -mean_gap_ns_ * std::log(1.0 - u);
  }

  arrival_kind kind_;
  double mean_gap_ns_;
  clock::time_point next_{};
  xoshiro256 rng_;
};

/// CO-safe latency of one operation: completion minus *intended* start,
/// clamped at zero (an op that ran early — only possible through clock
/// granularity — is instantaneous, not negative).
inline std::uint64_t intended_latency_ns(pacer::clock::time_point intended,
                                         pacer::clock::time_point done) {
  const auto d =
      std::chrono::duration_cast<std::chrono::nanoseconds>(done - intended)
          .count();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

}  // namespace hyaline::svc
