#include "svc/shard_router.hpp"

namespace hyaline::svc {

shard_totals aggregate(const std::vector<shard_snapshot>& shards) {
  shard_totals t;
  std::uint64_t hottest = 0;
  for (const shard_snapshot& s : shards) {
    t.gets += s.gets;
    t.hits += s.hits;
    t.puts += s.puts;
    t.dels += s.dels;
    t.scans += s.scans;
    t.retired += s.retired;
    t.freed += s.freed;
    const std::uint64_t ops = s.ops();
    t.ops += ops;
    if (ops > hottest) hottest = ops;
  }
  if (t.ops > 0 && !shards.empty()) {
    const double mean =
        static_cast<double>(t.ops) / static_cast<double>(shards.size());
    t.imbalance = static_cast<double>(hottest) / mean;
  }
  return t;
}

}  // namespace hyaline::svc
