// The service scenario's scheme matrix: run_service<D> instantiated for
// every registry scheme with a guard/retire protocol (the Mutex external
// baseline has neither a domain to shard nor counters to gate, so it is
// excluded), dispatched by registry name.
#include "svc/service.hpp"

namespace hyaline::svc {
namespace {

template <class D>
service_result run_one(const harness::scheme_params& p,
                       const service_config& cfg) {
  return run_service<D>(p, cfg);
}

struct entry {
  const char* name;
  service_runner_fn fn;
};

/// Registry order (src/harness/registry.cpp), minus Mutex.
constexpr entry kEntries[] = {
    {"Leaky", &run_one<smr::leaky_domain>},
    {"Epoch", &run_one<smr::ebr_domain>},
    {"Hyaline", &run_one<domain>},
    {"Hyaline-1", &run_one<domain_1>},
    {"Hyaline-S", &run_one<domain_s>},
    {"Hyaline-1S", &run_one<domain_1s>},
    {"IBR", &run_one<smr::ibr_domain>},
    {"HE", &run_one<smr::he_domain>},
    {"HP", &run_one<smr::hp_domain>},
    {"Hyaline(dwcas)", &run_one<domain_dw>},
    {"Hyaline(llsc)", &run_one<domain_llsc>},
    {"Hyaline-S(llsc)", &run_one<domain_s_llsc>},
};

}  // namespace

service_runner_fn find_service_runner(const std::string& scheme) {
  for (const entry& e : kEntries) {
    if (scheme == e.name) return e.fn;
  }
  return nullptr;
}

std::vector<std::string> service_schemes() {
  std::vector<std::string> out;
  out.reserve(std::size(kEntries));
  for (const entry& e : kEntries) out.emplace_back(e.name);
  return out;
}

}  // namespace hyaline::svc
