#include "svc/slo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "lab/fault_plan.hpp"

namespace hyaline::svc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Absolute floor for the memory limit, matching check_recovery(): below
/// this many nodes the count is batching slack (Hyaline batch minimums,
/// HP scan thresholds), not a robustness signal.
constexpr double kFloor = 2048.0;

bool fail(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
  return false;
}

bool parse_item(std::string_view tok, slo_item* item, std::string* err) {
  const std::string s(tok);  // NUL-terminated view for strto*
  const char* p = s.c_str();

  const auto starts = [&](const char* kw) {
    const std::size_t n = std::char_traits<char>::length(kw);
    if (s.compare(0, n, kw) != 0) return false;
    p += n;
    return true;
  };

  const auto latency = [&](slo_kind kind) {
    item->kind = kind;
    double ms = 0;
    if (!lab::parse_time_ms(p, &ms) || ms <= 0 || std::isinf(ms) ||
        *p != '\0') {
      return fail(err, "bad latency bound in '" + s +
                           "' (want e.g. p99=500us)");
    }
    item->bound = ms * 1e6;  // ns
    return true;
  };

  if (starts("p50=")) return latency(slo_kind::p50);
  if (starts("p90=")) return latency(slo_kind::p90);
  if (starts("p99=")) return latency(slo_kind::p99);
  if (starts("max=")) return latency(slo_kind::max_latency);
  if (starts("unreclaimed<")) {
    item->kind = slo_kind::unreclaimed;
    char* end = nullptr;
    const double f = std::strtod(p, &end);
    if (end == p || !(f > 0) || std::isinf(f)) {
      return fail(err, "bad factor in '" + s + "' (want e.g. unreclaimed<2x)");
    }
    p = end;
    if (*p != 'x' || *(p + 1) != '\0') {
      return fail(err, "missing 'x' after factor in '" + s + "'");
    }
    item->bound = f;
    return true;
  }
  if (starts("recovery<")) {
    item->kind = slo_kind::recovery;
    double ms = 0;
    if (!lab::parse_time_ms(p, &ms) || ms <= 0 || std::isinf(ms) ||
        *p != '\0') {
      return fail(err, "bad recovery bound in '" + s +
                           "' (want e.g. recovery<1s)");
    }
    item->bound = ms;
    return true;
  }
  return fail(err, "unknown SLO item '" + s +
                       "' (want p50= | p90= | p99= | max= | "
                       "unreclaimed< | recovery<)");
}

const char* kind_name(slo_kind k) {
  switch (k) {
    case slo_kind::p50: return "p50";
    case slo_kind::p90: return "p90";
    case slo_kind::p99: return "p99";
    case slo_kind::max_latency: return "max";
    case slo_kind::unreclaimed: return "unreclaimed";
    case slo_kind::recovery: return "recovery";
  }
  return "?";
}

std::string fmt_time_ns(double ns) {
  char buf[32];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3gs", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.4gms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.4gus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fns", ns);
  }
  return buf;
}

/// Memory-limit geometry shared by the unreclaimed and recovery items.
/// With a scripted disturbance the baseline is the pre-disturbance peak
/// and the settle point mirrors check_recovery (second half of the
/// post-disturbance tail); with none, the run's first half is the
/// baseline and its second half the tail.
struct memory_windows {
  double baseline_until_ms = 0;
  double settle_from_ms = 0;
  bool disturbed = false;
};

memory_windows make_windows(const slo_inputs& in) {
  memory_windows w;
  w.disturbed = in.disturb_start_ms < in.duration_ms &&
                !std::isinf(in.disturb_start_ms);
  if (w.disturbed) {
    w.baseline_until_ms = in.disturb_start_ms;
    const double end = std::min(in.disturb_end_ms, in.duration_ms);
    w.settle_from_ms = end + (in.duration_ms - end) / 2;
  } else {
    w.baseline_until_ms = in.duration_ms / 2;
    w.settle_from_ms = in.duration_ms / 2;
  }
  return w;
}

double peak_before(const std::vector<lab::sample_point>& pts, double t_ms,
                   bool* any) {
  double peak = 0;
  *any = false;
  for (const lab::sample_point& p : pts) {
    if (p.t_ms >= t_ms) break;
    peak = std::max(peak, static_cast<double>(p.unreclaimed));
    *any = true;
  }
  return peak;
}

double peak_from(const std::vector<lab::sample_point>& pts, double t_ms,
                 bool* any) {
  double peak = 0;
  *any = false;
  for (const lab::sample_point& p : pts) {
    if (p.t_ms < t_ms) continue;
    peak = std::max(peak, static_cast<double>(p.unreclaimed));
    *any = true;
  }
  return peak;
}

}  // namespace

std::optional<slo_spec> parse_slo(std::string_view spec, std::string* err) {
  slo_spec out;
  out.text = std::string(spec);
  bool seen[6] = {};
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view tok = spec.substr(pos, comma - pos);
    if (tok.empty()) {
      if (err != nullptr) *err = "empty item in SLO spec";
      return std::nullopt;
    }
    slo_item item;
    if (!parse_item(tok, &item, err)) return std::nullopt;
    const int k = static_cast<int>(item.kind);
    if (seen[k]) {
      if (err != nullptr) {
        *err = std::string("duplicate SLO item '") + kind_name(item.kind) +
               "'";
      }
      return std::nullopt;
    }
    seen[k] = true;
    out.items.push_back(item);
    if (comma == spec.size()) break;
    pos = comma + 1;
  }
  if (out.items.empty()) {
    if (err != nullptr) *err = "empty SLO spec";
    return std::nullopt;
  }
  return out;
}

std::vector<slo_verdict> evaluate_slo(const slo_spec& spec,
                                      const slo_inputs& in) {
  // The recovery item judges against the unreclaimed item's limit when
  // the spec carries one; otherwise check_recovery's 2x default.
  double mem_factor = 2.0;
  for (const slo_item& item : spec.items) {
    if (item.kind == slo_kind::unreclaimed) mem_factor = item.bound;
  }

  const memory_windows w = make_windows(in);
  double baseline = 0;
  bool have_baseline = false;
  double limit = kFloor;
  if (in.timeline != nullptr) {
    baseline = peak_before(*in.timeline, w.baseline_until_ms, &have_baseline);
    limit = std::max(mem_factor * baseline, kFloor);
  }

  std::vector<slo_verdict> out;
  out.reserve(spec.items.size());
  for (const slo_item& item : spec.items) {
    slo_verdict v;
    v.item = item;
    switch (item.kind) {
      case slo_kind::p50:
      case slo_kind::p90:
      case slo_kind::p99:
      case slo_kind::max_latency: {
        v.gated = true;
        v.limit = item.bound;
        if (in.latency == nullptr || in.latency->total() == 0) {
          v.note = "no victim latency samples";
          break;
        }
        v.checked = true;
        switch (item.kind) {
          case slo_kind::p50: v.measured = in.latency->percentile(0.50); break;
          case slo_kind::p90: v.measured = in.latency->percentile(0.90); break;
          case slo_kind::p99: v.measured = in.latency->percentile(0.99); break;
          default: v.measured = static_cast<double>(in.latency->max()); break;
        }
        v.pass = v.measured <= v.limit;
        break;
      }
      case slo_kind::unreclaimed: {
        v.gated = in.robust;
        if (!v.gated) v.note = "non-robust scheme, reported only";
        v.limit = limit;
        if (in.timeline == nullptr || !have_baseline) {
          v.note = "no baseline samples";
          break;
        }
        bool any_tail = false;
        double peak = peak_from(*in.timeline, w.settle_from_ms, &any_tail);
        if (w.disturbed) {
          // Pre-disturbance growth also violates a steady-state bound.
          bool any_pre = false;
          peak = std::max(
              peak, peak_before(*in.timeline, w.baseline_until_ms, &any_pre));
        }
        if (!any_tail) {
          v.note = "no settled-tail samples";
          break;
        }
        v.checked = true;
        v.measured = peak;
        v.pass = v.measured <= v.limit;
        break;
      }
      case slo_kind::recovery: {
        v.gated = in.robust;
        if (!v.gated) v.note = "non-robust scheme, reported only";
        v.limit = limit;
        if (!w.disturbed) {
          v.note = "no scripted disturbance";
          break;
        }
        if (in.timeline == nullptr || !have_baseline) {
          v.note = "no baseline samples";
          break;
        }
        const double end = std::min(in.disturb_end_ms, in.duration_ms);
        bool any_post = false;
        double recovered_at = kInf;
        for (const lab::sample_point& p : *in.timeline) {
          if (p.t_ms < end) continue;
          any_post = true;
          if (static_cast<double>(p.unreclaimed) <= limit) {
            recovered_at = p.t_ms;
            break;
          }
        }
        if (!any_post) {
          v.note = "no post-disturbance samples";
          break;
        }
        v.checked = true;
        v.measured = recovered_at - end;  // ms; +inf if never back under
        v.pass = v.measured <= item.bound;
        break;
      }
    }
    out.push_back(v);
  }
  return out;
}

bool slo_violated(const std::vector<slo_verdict>& verdicts) {
  for (const slo_verdict& v : verdicts) {
    if (v.gated && v.checked && !v.pass) return true;
  }
  return false;
}

std::string format_verdict(const slo_verdict& v) {
  std::string out = kind_name(v.item.kind);
  out += ": ";
  char buf[96];
  switch (v.item.kind) {
    case slo_kind::p50:
    case slo_kind::p90:
    case slo_kind::p99:
    case slo_kind::max_latency:
      out += fmt_time_ns(v.measured) + " <= " + fmt_time_ns(v.limit);
      break;
    case slo_kind::unreclaimed:
      std::snprintf(buf, sizeof buf, "peak %.0f <= limit %.0f (%gx)",
                    v.measured, v.limit, v.item.bound);
      out += buf;
      break;
    case slo_kind::recovery:
      if (std::isinf(v.measured)) {
        std::snprintf(buf, sizeof buf,
                      "never back under %.0f (bound %gms)", v.limit,
                      v.item.bound);
      } else {
        std::snprintf(buf, sizeof buf, "%.1fms <= %gms (limit %.0f)",
                      v.measured, v.item.bound, v.limit);
      }
      out += buf;
      break;
  }
  if (!v.checked) {
    out += std::string(" [unchecked: ") + v.note + "]";
  } else if (v.pass) {
    out += " [pass]";
  } else if (v.gated) {
    out += " [FAIL]";
  } else {
    out += std::string(" [fail, ungated: ") + v.note + "]";
  }
  return out;
}

}  // namespace hyaline::svc
