#include "svc/tenant.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hyaline::svc {
namespace {

bool fail(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
  return false;
}

bool parse_uint(const char*& p, unsigned* out) {
  if (*p < '0' || *p > '9') return false;
  char* end = nullptr;
  const unsigned long v = std::strtoul(p, &end, 10);
  if (end == p || v > ~0u) return false;
  p = end;
  *out = static_cast<unsigned>(v);
  return true;
}

bool parse_item(std::string_view tok, behavior_event* ev,
                std::string* err) {
  const std::string item(tok);  // NUL-terminated view for strto*
  const char* p = item.c_str();

  const auto starts = [&](const char* kw) {
    const std::size_t n = std::char_traits<char>::length(kw);
    if (item.compare(0, n, kw) != 0) return false;
    p += n;
    return true;
  };
  if (starts("hot")) {
    ev->kind = behavior_kind::hot_keys;
  } else if (starts("scan")) {
    ev->kind = behavior_kind::scan_storm;
  } else if (starts("stall")) {
    ev->kind = behavior_kind::stall_in_guard;
  } else {
    return fail(err, "unknown behavior in '" + item +
                         "' (want hot | scan | stall)");
  }

  if (*p != ':') return fail(err, "missing ':tenant' in '" + item + "'");
  ++p;
  if (!parse_uint(p, &ev->tenant)) {
    return fail(err, "bad tenant id in '" + item + "'");
  }
  if (*p != '@') return fail(err, "missing '@start' in '" + item + "'");
  ++p;
  if (!lab::parse_time_ms(p, &ev->start_ms)) {
    return fail(err, "bad start time in '" + item + "'");
  }
  if (*p != '+') return fail(err, "missing '+duration' in '" + item + "'");
  ++p;
  if (!lab::parse_time_ms(p, &ev->dur_ms) || ev->dur_ms <= 0 ||
      std::isinf(ev->dur_ms)) {
    return fail(err, "bad duration in '" + item +
                         "' (want a positive, finite window)");
  }
  if (*p != '\0') {
    return fail(err, "trailing garbage in '" + item + "'");
  }
  return true;
}

}  // namespace

bool tenant_plan::validate(unsigned tenants, std::string* err) const {
  for (const behavior_event& e : events) {
    if (e.tenant >= tenants) {
      if (err != nullptr) {
        *err = "script targets tenant " + std::to_string(e.tenant) +
               " but the swarm has only " + std::to_string(tenants) +
               " tenants (ids 0.." + std::to_string(tenants - 1) + ")";
      }
      return false;
    }
  }
  return true;
}

bool tenant_plan::is_scripted(unsigned tenant) const {
  for (const behavior_event& e : events) {
    if (e.tenant == tenant) return true;
  }
  return false;
}

const behavior_event* tenant_plan::active(unsigned tenant,
                                          double t_ms) const {
  for (const behavior_event& e : events) {
    if (e.kind == behavior_kind::stall_in_guard) continue;
    if (e.tenant == tenant && t_ms >= e.start_ms && t_ms < e.end_ms()) {
      return &e;
    }
  }
  return nullptr;
}

double tenant_plan::first_start_ms() const {
  double t = std::numeric_limits<double>::infinity();
  for (const behavior_event& e : events) t = std::min(t, e.start_ms);
  return t;
}

double tenant_plan::last_end_ms() const {
  double t = 0;
  for (const behavior_event& e : events) t = std::max(t, e.end_ms());
  return t;
}

std::optional<tenant_plan> parse_tenant_plan(std::string_view spec,
                                             std::string* err) {
  tenant_plan plan;
  plan.spec = std::string(spec);
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view tok = spec.substr(pos, comma - pos);
    if (tok.empty()) {
      if (err != nullptr) *err = "empty item in tenant script";
      return std::nullopt;
    }
    behavior_event ev;
    if (!parse_item(tok, &ev, err)) return std::nullopt;
    plan.events.push_back(ev);
    if (comma == spec.size()) break;
    pos = comma + 1;
  }
  if (plan.events.empty()) {
    if (err != nullptr) *err = "empty tenant script";
    return std::nullopt;
  }
  return plan;
}

lab::fault_plan to_fault_plan(const tenant_plan& plan, unsigned tenants,
                              unsigned churn_period_ms,
                              double duration_ms) {
  lab::fault_plan fp;
  for (const behavior_event& e : plan.events) {
    if (e.kind != behavior_kind::stall_in_guard) continue;
    lab::fault_event fe;
    fe.kind = lab::fault_kind::stall;
    fe.tid = e.tenant;
    fe.start_ms = e.start_ms;
    fe.dur_ms = e.dur_ms;
    fp.events.push_back(fe);
  }
  if (churn_period_ms > 0 && tenants > 0) {
    std::vector<unsigned> victims;
    for (unsigned t = 0; t < tenants; ++t) {
      if (!plan.is_scripted(t)) victims.push_back(t);
    }
    if (victims.empty()) {  // everyone is scripted: churn them anyway
      for (unsigned t = 0; t < tenants; ++t) victims.push_back(t);
    }
    std::size_t next = 0;
    for (double t = churn_period_ms; t < duration_ms;
         t += churn_period_ms) {
      lab::fault_event fe;
      fe.kind = lab::fault_kind::churn;
      fe.tid = victims[next++ % victims.size()];
      fe.start_ms = t;
      fp.events.push_back(fe);
    }
  }
  std::sort(fp.events.begin(), fp.events.end(),
            [](const lab::fault_event& a, const lab::fault_event& b) {
              return a.start_ms < b.start_ms;
            });
  return fp;
}

}  // namespace hyaline::svc
