// Service scenario, part 2: the sharded KV front end.
//
// N shards, each owning its *own* SMR domain (riding scheme_params'
// retire_shards inside each one) plus a michael_hashmap over it. Sharding
// the domain — not just the table — is the point: a stalled tenant pins
// reservations in exactly one shard's domain, so the blast radius of a
// stall-in-guard fault is one shard while the others keep reclaiming.
// Key→shard routing mixes the key first so the Zipfian head ranks
// (0, 1, 2, ...) do not land on consecutive shards with the tail's load
// still skewed.
//
// Per-shard op/hit counters (padded, relaxed — statistics, not
// synchronization) let the SLO report show routing balance and where a
// hot-key hammer actually landed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/align.hpp"
#include "ds/michael_hashmap.hpp"
#include "smr/stats.hpp"

namespace hyaline::svc {

/// Key→shard routing: a splitmix64 finalizer over the key, reduced with
/// the multiply-shift trick (no modulo bias, no division).
inline unsigned route_shard(std::uint64_t key, unsigned shards) {
  std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<unsigned>(
      (static_cast<unsigned __int128>(z) * shards) >> 64);
}

/// One shard's cumulative counters at a point in time (ops from the
/// router, reclamation from the shard's domain).
struct shard_snapshot {
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t puts = 0;
  std::uint64_t dels = 0;
  std::uint64_t scans = 0;  ///< scan storms (each walks many keys)
  std::uint64_t retired = 0;
  std::uint64_t freed = 0;
  std::uint64_t unreclaimed = 0;

  std::uint64_t ops() const { return gets + puts + dels + scans; }
};

/// Cross-shard totals plus the routing-balance figure of merit.
struct shard_totals {
  std::uint64_t ops = 0;
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t puts = 0;
  std::uint64_t dels = 0;
  std::uint64_t scans = 0;
  std::uint64_t retired = 0;
  std::uint64_t freed = 0;
  /// Hottest shard's op share over the mean (1.0 = perfectly even; 0
  /// when no ops ran).
  double imbalance = 0;
};

shard_totals aggregate(const std::vector<shard_snapshot>& shards);

namespace detail {
template <class D>
concept has_flush = requires(D d) { d.flush(); };
template <class D>
concept has_quiesce = requires(D d) { d.quiesce(); };
}  // namespace detail

template <class D>
class shard_router {
 public:
  using domain_type = D;
  using guard = typename D::guard;

  /// `make_domain` builds one domain per shard (scheme factory bound to
  /// scheme_params by the caller); `buckets_per_shard` sizes each shard's
  /// hashmap for its slice of the key space.
  template <class Factory>
  shard_router(unsigned shards, Factory&& make_domain,
               std::size_t buckets_per_shard)
      : counters_(shards == 0 ? 1 : shards) {
    const unsigned n = shards == 0 ? 1 : shards;
    doms_.reserve(n);
    maps_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
      doms_.push_back(make_domain());
      maps_.push_back(std::make_unique<ds::michael_hashmap<D>>(
          *doms_.back(), buckets_per_shard));
    }
  }

  shard_router(const shard_router&) = delete;
  shard_router& operator=(const shard_router&) = delete;

  unsigned shards() const { return static_cast<unsigned>(doms_.size()); }
  unsigned shard_of(std::uint64_t key) const {
    return route_shard(key, shards());
  }
  D& domain(unsigned shard) { return *doms_[shard]; }

  bool get(std::uint64_t key, std::uint64_t& out) {
    const unsigned s = shard_of(key);
    counters_[s]->gets.fetch_add(1, std::memory_order_relaxed);
    guard g(*doms_[s]);
    const bool ok = maps_[s]->get(g, key, out);
    if (ok) counters_[s]->hits.fetch_add(1, std::memory_order_relaxed);
    return ok;
  }

  /// Miss-fill: inserts `key` if absent (false when already cached).
  bool put(std::uint64_t key, std::uint64_t value) {
    const unsigned s = shard_of(key);
    counters_[s]->puts.fetch_add(1, std::memory_order_relaxed);
    guard g(*doms_[s]);
    return maps_[s]->insert(g, key, value);
  }

  bool del(std::uint64_t key) {
    const unsigned s = shard_of(key);
    counters_[s]->dels.fetch_add(1, std::memory_order_relaxed);
    guard g(*doms_[s]);
    return maps_[s]->remove(g, key);
  }

  /// Scan-storm primitive: `len` sequential contains probes against ONE
  /// shard's map under a single guard — long guard residency plus a
  /// bucket walk per probe, the bad-tenant behavior that pressures
  /// guard-lifetime reclamation. Counts as one scan op.
  void scan(unsigned shard, std::uint64_t start_key, std::uint64_t len) {
    counters_[shard]->scans.fetch_add(1, std::memory_order_relaxed);
    guard g(*doms_[shard]);
    for (std::uint64_t i = 0; i < len; ++i) {
      (void)maps_[shard]->contains(g, start_key + i);
    }
  }

  /// One probe under a caller-held guard — the stall-in-guard protocol's
  /// "enter, touch, block": the guard must pin something before the
  /// stall window for the fault to bite.
  bool touch(guard& g, unsigned shard, std::uint64_t key) {
    return maps_[shard]->contains(g, key);
  }

  /// Release the calling thread's per-thread scheme state on every
  /// shard: finalize partial retirement batches (Hyaline family) and
  /// clear lingering burst-entry reservations (EBR/IBR), so an idle or
  /// departed connection cannot stall epoch/era advancement on any
  /// shard. Call wherever a thread stops issuing operations (tenant
  /// exit, after the main thread's prefill).
  void thread_quiesce() {
    for (auto& d : doms_) {
      if constexpr (detail::has_flush<D>) d->flush();
      if constexpr (detail::has_quiesce<D>) d->quiesce();
    }
  }

  /// Teardown, in the leak-gate order of registry.cpp's run_cell: destroy
  /// the maps (their destructors free live nodes directly), then
  /// quiescently drain every shard domain — after which retired == freed
  /// must hold or nodes leaked. Counters stay readable via snapshot().
  void shutdown() {
    maps_.clear();
    for (auto& d : doms_) d->drain();
  }

  std::vector<shard_snapshot> snapshot() const {
    std::vector<shard_snapshot> out;
    out.reserve(doms_.size());
    for (unsigned i = 0; i < doms_.size(); ++i) {
      shard_snapshot s;
      s.gets = counters_[i]->gets.load(std::memory_order_relaxed);
      s.hits = counters_[i]->hits.load(std::memory_order_relaxed);
      s.puts = counters_[i]->puts.load(std::memory_order_relaxed);
      s.dels = counters_[i]->dels.load(std::memory_order_relaxed);
      s.scans = counters_[i]->scans.load(std::memory_order_relaxed);
      const smr::stats& c = doms_[i]->counters();
      s.retired = c.retired.load(std::memory_order_relaxed);
      s.freed = c.freed.load(std::memory_order_relaxed);
      s.unreclaimed = c.unreclaimed();
      out.push_back(s);
    }
    return out;
  }

  /// Per-shard stats blocks for the aggregate telemetry sampler.
  std::vector<const smr::stats*> stats_pointers() const {
    std::vector<const smr::stats*> out;
    out.reserve(doms_.size());
    for (const auto& d : doms_) out.push_back(&d->counters());
    return out;
  }

 private:
  struct shard_counters {
    std::atomic<std::uint64_t> gets{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> puts{0};
    std::atomic<std::uint64_t> dels{0};
    std::atomic<std::uint64_t> scans{0};
  };

  std::vector<std::unique_ptr<D>> doms_;
  std::vector<std::unique_ptr<ds::michael_hashmap<D>>> maps_;
  std::vector<padded<shard_counters>> counters_;
};

}  // namespace hyaline::svc
