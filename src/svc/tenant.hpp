// Service scenario, part 3: tenant scripts.
//
// A tenant is one client connection (one worker thread holding a
// tid_lease on every shard domain it touches). The swarm is mostly
// well-behaved — paced, Zipfian, CO-safe — but a --tenant-script marks
// some tenants as *bad* for scheduled windows:
//
//   spec  := item (',' item)*
//   item  := ('hot' | 'scan' | 'stall') ':' tenant '@' start '+' dur
//
//   hot    — hammer the hottest key with unpaced writes (put/del) for
//            the window: one shard's bucket takes the contention.
//   scan   — unpaced scan storms: long runs of probes under a single
//            guard, the guard-residency pressure pattern.
//   stall  — enter a guard, touch a node, and block for the window (the
//            paper's stalled-thread fault, aimed at one shard); lowered
//            into a lab::fault_plan stall event and executed by the
//            fault_director.
//
// Times default to milliseconds with the fault-plan ns/us/ms/s suffixes
// (one time syntax across every schedule grammar in the suite).
// Example: `stall:3@250ms+200ms,hot:7@300ms+200ms`.
//
// Connection churn — tenants hanging up and reconnecting, recycling
// thread identities through tid_lease — is periodic rather than
// scripted: to_fault_plan() lowers a churn period into fault_plan churn
// events cycling over the well-behaved tenants.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lab/fault_plan.hpp"

namespace hyaline::svc {

enum class behavior_kind { hot_keys, scan_storm, stall_in_guard };

struct behavior_event {
  behavior_kind kind = behavior_kind::hot_keys;
  unsigned tenant = 0;
  double start_ms = 0;
  double dur_ms = 0;

  double end_ms() const { return start_ms + dur_ms; }
};

struct tenant_plan {
  std::vector<behavior_event> events;
  /// Original spec text, echoed into the --json config block.
  std::string spec;

  bool empty() const { return events.empty(); }

  /// Reject events naming a tenant the swarm will not run.
  bool validate(unsigned tenants, std::string* err) const;

  /// True if any scripted behavior names this tenant. Scripted tenants'
  /// latency is recorded separately — their self-inflicted backlog must
  /// not pollute the victim histogram the latency SLOs gate.
  bool is_scripted(unsigned tenant) const;

  /// The loop-driven behavior (hot/scan) active for `tenant` at `t_ms`,
  /// or nullptr. Stall windows are excluded: the fault_director drives
  /// those through its per-thread control words.
  const behavior_event* active(unsigned tenant, double t_ms) const;

  /// Disturbance window for the SLO gate: start of the earliest scripted
  /// behavior (+infinity when empty) and end of the latest (0 when
  /// empty).
  double first_start_ms() const;
  double last_end_ms() const;
};

/// Parse a --tenant-script spec; nullopt with a message in *err on any
/// syntax error (unknown behavior, missing '@'/'+', non-positive
/// window, ...).
std::optional<tenant_plan> parse_tenant_plan(std::string_view spec,
                                             std::string* err);

/// Lower the plan's stall windows plus a periodic connection-churn
/// schedule into a lab::fault_plan for the fault_director. Churn events
/// fire every `churn_period_ms` (0 = none) strictly inside the run,
/// cycling over the tenants no script names (every tenant when all are
/// scripted) — bad tenants keep their windows, well-behaved connections
/// recycle. The returned plan's lease_headroom() sizes the shard
/// domains.
lab::fault_plan to_fault_plan(const tenant_plan& plan, unsigned tenants,
                              unsigned churn_period_ms, double duration_ms);

}  // namespace hyaline::svc
