// Service scenario, part 5: the swarm driver.
//
// run_service<D> stands up a shard_router over scheme D, prefills it,
// and runs a tenant swarm against it for a fixed duration:
//
//   - every tenant is one worker thread with an open-loop pacer
//     (svc/loadgen.hpp) drawing Zipfian keys — the simulated slice of a
//     million-user population behind one connection;
//   - connection churn and stall-in-guard windows are lowered into a
//     lab::fault_plan (svc/tenant.hpp) and executed by the robustness
//     lab's fault_director — tenants poll its control words at op
//     boundaries exactly like the workload loops;
//   - hot-key and scan-storm windows run inline, unpaced, against the
//     router; a scripted tenant's latency goes to a separate histogram
//     so its self-inflicted backlog cannot pollute the victim numbers
//     the latency SLOs gate;
//   - the telemetry sampler aggregates retired/freed across all shard
//     domains into one time series for the memory SLOs.
//
// The teardown order matches run_workload: stop flag, director stop
// (releases in-guard stalls), telemetry stop BEFORE the joins (so
// thread-exit flushes cannot masquerade as recovery), join primaries,
// join churn replacements, then router shutdown (structures destroyed,
// domains drained) and the retired == freed leak gate reading.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "harness/schemes.hpp"
#include "lab/fault_plan.hpp"
#include "lab/telemetry.hpp"
#include "obs/trace.hpp"
#include "smr/stats.hpp"
#include "svc/loadgen.hpp"
#include "svc/shard_router.hpp"
#include "svc/tenant.hpp"

namespace hyaline::svc {

struct service_config {
  unsigned shards = 4;
  unsigned tenants = 16;
  /// Total offered load across the swarm, ops/s, split evenly over the
  /// tenants; 0 = closed-loop (no pacing, latency CO-unsafe — only for
  /// saturation probes).
  double rate_ops_s = 0;
  arrival_kind arrival = arrival_kind::poisson;
  /// Zipfian skew over [0, key_range); 0 = uniform, 0.99 = YCSB default.
  double zipf_theta = 0.99;
  std::uint64_t key_range = 100000;
  std::size_t prefill = 50000;
  /// Op mix, percent; must sum to 100. Cache default: read-mostly.
  unsigned insert_pct = 5;
  unsigned remove_pct = 5;
  unsigned get_pct = 90;
  unsigned duration_ms = 2000;
  unsigned sample_ms = 20;  ///< telemetry cadence; 0 = no timeline
  std::uint64_t seed = 0x5eed;
  /// Connection-churn period (0 = none): every period one well-behaved
  /// tenant hangs up and reconnects through tid_lease recycling.
  unsigned churn_period_ms = 0;
  std::size_t buckets_per_shard = 4096;
  /// Bad-tenant script (nullptr = everyone behaves). Must be validated
  /// against `tenants` and outlive the run.
  const tenant_plan* script = nullptr;
};

constexpr bool valid_service_mix(const service_config& cfg) {
  return std::uint64_t{cfg.insert_pct} + cfg.remove_pct + cfg.get_pct ==
         100;
}

struct service_result {
  lab::latency_histogram victim_hist;    ///< well-behaved tenants, CO-safe
  lab::latency_histogram scripted_hist;  ///< bad tenants (reported only)
  std::vector<lab::sample_point> timeline;
  std::vector<shard_snapshot> shards;  ///< post-shutdown, leak-gate state
  std::uint64_t ops = 0;               ///< tenant ops (prefill excluded)
  std::uint64_t retired = 0;           ///< summed across shard domains
  std::uint64_t freed = 0;
  std::uint64_t unreclaimed_peak = 0;  ///< worst timeline sample
  double duration_s = 0;
  double mops = 0;
  /// Domain counters summed across every shard domain after shutdown
  /// (scans/steals/finalizes and the retire->free lag histogram).
  smr::stats_snapshot obs;
  /// Retire->free lag percentiles (ns) over all shards; zero when lag
  /// tracking was off.
  double lag_p50_ns = 0;
  double lag_p99_ns = 0;
  std::uint64_t lag_max_ns = 0;
};

template <class D>
service_result run_service(const harness::scheme_params& base,
                           const service_config& cfg) {
  using guard_t = typename D::guard;
  using clock = pacer::clock;
  assert(valid_service_mix(cfg) && "op-mix percentages must sum to 100");

  const unsigned tenants = cfg.tenants == 0 ? 1 : cfg.tenants;
  const tenant_plan no_script;
  const tenant_plan& script =
      cfg.script != nullptr ? *cfg.script : no_script;
  const lab::fault_plan plan = to_fault_plan(
      script, tenants, cfg.churn_period_ms, cfg.duration_ms);

  // Every tenant may touch every shard's domain, and churn replacements
  // transiently overlap their predecessors' leases — size each domain
  // with the lab's one headroom formula.
  harness::scheme_params p = base;
  p.max_threads = plan.lease_headroom(tenants);

  shard_router<D> router(
      cfg.shards, [&] { return harness::scheme_traits<D>::make(p); },
      cfg.buckets_per_shard);
  const unsigned shards = router.shards();

  // --- prefill (quiescent) ---------------------------------------------
  {
    xoshiro256 rng(cfg.seed ^ 0x9e3779b97f4a7c15ULL);
    std::size_t live = 0;
    while (live < cfg.prefill) {
      if (router.put(rng.below(cfg.key_range), 1)) ++live;
    }
    router.thread_quiesce();  // main thread idles while tenants run
  }

  const zipf_generator zipf(cfg.key_range, cfg.zipf_theta);
  const double tenant_rate = cfg.rate_ops_s / tenants;

  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_ops{0};
  clock::time_point run_t0{};  // written before start, read after

  service_result res;
  std::mutex hist_mu;
  lab::fault_director* dir = nullptr;
  lab::telemetry_collector* tele = nullptr;

  auto tenant_body = [&](unsigned tid, std::uint32_t gen) {
    char tname[16];
    std::snprintf(tname, sizeof tname, gen == 0 ? "tenant-%u" : "churn-%u",
                  tid);
    obs::name_thread(tname);
    // Churn replacements (gen > 0) get fresh randomness: a reconnecting
    // user is a different request stream, not a replay.
    xoshiro256 rng(cfg.seed + tid * 1000003 + gen * 7919 + 1);
    pacer pace(cfg.arrival, tenant_rate, cfg.seed ^ (tid * 0x9e37 + gen));
    lab::latency_histogram lhist;
    const bool scripted = script.is_scripted(tid);
    std::uint64_t local_ops = 0;
    bool in_window = false;

    auto good_op = [&](std::uint64_t key) {
      const std::uint64_t dice = rng.below(100);
      if (dice < cfg.insert_pct) {
        router.put(key, key);
      } else if (dice < cfg.insert_pct + cfg.remove_pct) {
        router.del(key);
      } else {
        std::uint64_t out = 0;
        router.get(key, out);
      }
    };
    auto after_op = [&] {
      ++local_ops;
      if (tele != nullptr) tele->on_op(tid);
    };

    if (tele != nullptr) tele->thread_enter();
    while (!start.load(std::memory_order_acquire)) {
    }
    // Each tenant anchors its own schedule at its own loop entry, so a
    // churn replacement starts fresh instead of inheriting the backlog
    // of a schedule anchored at run start.
    pace.anchor(clock::now());

    while (!stop.load(std::memory_order_relaxed)) {
      if (dir != nullptr) {
        if (dir->exited(tid, gen)) break;
        if (dir->stalled(tid)) {
          // Stall-in-guard: enter one shard's domain, touch a node so
          // the guard pins something, and block for the window. The
          // blast radius is that shard; the others keep reclaiming.
          const unsigned s = tid % shards;
          guard_t g(router.domain(s));
          router.touch(g, s, rng.below(cfg.key_range));
          obs::emit(obs::event::stall_begin, tid);
          dir->wait_stall_end(tid);
          obs::emit(obs::event::stall_end, tid);
          // A stalled tenant is a scripted tenant: its pacer backlog is
          // the fault's doing, not the service's.
          pace.reanchor();
          continue;
        }
      }
      if (scripted) {
        const double t_ms =
            std::chrono::duration_cast<std::chrono::duration<double,
                                                             std::milli>>(
                clock::now() - run_t0)
                .count();
        if (const behavior_event* be = script.active(tid, t_ms)) {
          in_window = true;
          const auto t_op = clock::now();
          if (be->kind == behavior_kind::hot_keys) {
            // Hammer the hottest Zipf rank with unpaced writes: one
            // shard's bucket chain takes the retire churn.
            if ((local_ops & 1) == 0) {
              router.put(0, 0);
            } else {
              router.del(0);
            }
          } else {
            router.scan(static_cast<unsigned>(rng.below(shards)),
                        rng.below(cfg.key_range), 256);
          }
          lhist.record(intended_latency_ns(t_op, clock::now()));
          after_op();
          continue;
        }
        if (in_window) {
          in_window = false;
          pace.reanchor();  // the window's backlog was self-inflicted
        }
      }
      const clock::time_point intended =
          pace.paced() ? pace.next_intended() : clock::now();
      if (pace.paced() && !pacer::await(intended, stop)) break;
      good_op(zipf(rng));
      lhist.record(intended_latency_ns(intended, clock::now()));
      after_op();
    }

    total_ops.fetch_add(local_ops, std::memory_order_relaxed);
    router.thread_quiesce();
    {
      std::lock_guard<std::mutex> lk(hist_mu);
      (scripted ? res.scripted_hist : res.victim_hist).merge(lhist);
    }
    if (tele != nullptr) tele->thread_exit();
  };

  // Churn replacements spawned by the lab clock thread mid-run; joined
  // after the primaries (the director is stopped first, so the clock
  // thread no longer appends by then).
  std::vector<std::thread> replacements;
  std::mutex spawn_mu;
  std::unique_ptr<lab::fault_director> dir_holder;
  if (!plan.empty()) {
    dir_holder = std::make_unique<lab::fault_director>(
        plan, tenants, [&](unsigned tid) {
          const std::uint32_t gen = dir->generation(tid);
          std::lock_guard<std::mutex> lk(spawn_mu);
          replacements.emplace_back(tenant_body, tid, gen);
        });
  }
  dir = dir_holder.get();
  std::unique_ptr<lab::telemetry_collector> tele_holder;
  if (cfg.sample_ms != 0) {
    tele_holder = std::make_unique<lab::telemetry_collector>(
        tenants, cfg.sample_ms, router.stats_pointers());
  }
  tele = tele_holder.get();

  std::vector<std::thread> ts;
  ts.reserve(tenants);
  for (unsigned t = 0; t < tenants; ++t) {
    ts.emplace_back(tenant_body, t, 0);
  }

  run_t0 = clock::now();
  start.store(true, std::memory_order_release);
  if (dir != nullptr) dir->start();
  if (tele != nullptr) tele->start();
  std::this_thread::sleep_until(run_t0 +
                                std::chrono::milliseconds(cfg.duration_ms));
  stop.store(true, std::memory_order_release);
  // Director before joins: a stalled tenant cannot observe stop until
  // its wait is released. Telemetry before joins: teardown samples would
  // record the post-flush counters — thread exit is not recovery.
  if (dir != nullptr) dir->stop();
  if (tele != nullptr) {
    tele->stop();
    res.timeline = tele->take_points();
  }
  for (auto& th : ts) th.join();
  for (auto& th : replacements) th.join();
  const auto t1 = clock::now();

  res.duration_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - run_t0)
          .count();
  res.ops = total_ops.load(std::memory_order_relaxed);
  res.mops = static_cast<double>(res.ops) / res.duration_s / 1e6;
  for (const lab::sample_point& pt : res.timeline) {
    if (pt.unreclaimed > res.unreclaimed_peak) {
      res.unreclaimed_peak = pt.unreclaimed;
    }
  }

  // Leak gate: destroy structures, drain every shard domain, and read
  // the final ledger. retired != freed afterwards means the scheme
  // leaked under churn + faults.
  router.shutdown();
  res.shards = router.snapshot();
  for (const shard_snapshot& s : res.shards) {
    res.retired += s.retired;
    res.freed += s.freed;
  }
  // Full counter state, summed across the shard domains (each owns its
  // own stats block), then the lag buckets rehydrated through the shared
  // histogram math.
  for (const smr::stats* st : router.stats_pointers()) {
    res.obs.accumulate(st->snapshot());
  }
  const auto lagh = lab::latency_histogram::from_counts(
      res.obs.lag_bucket, res.obs.lag_max_ns);
  res.lag_p50_ns = lagh.percentile(0.50);
  res.lag_p99_ns = lagh.percentile(0.99);
  res.lag_max_ns = res.obs.lag_max_ns;
  return res;
}

/// Type-erased entry point for the scheme-name dispatch in svc/matrix.cpp
/// (every registry scheme except the Mutex external baseline, which has
/// no guard/retire protocol to shard).
using service_runner_fn = service_result (*)(const harness::scheme_params&,
                                             const service_config&);

/// nullptr for unknown or unsupported (Mutex) scheme names.
service_runner_fn find_service_runner(const std::string& scheme);

/// The scheme names with a service runner, in registry order.
std::vector<std::string> service_schemes();

}  // namespace hyaline::svc
