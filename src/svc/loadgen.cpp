#include "svc/loadgen.hpp"

#include <thread>

namespace hyaline::svc {

bool pacer::await(clock::time_point intended,
                  const std::atomic<bool>& stop) {
  constexpr auto kSlice = std::chrono::milliseconds(1);
  for (;;) {
    if (stop.load(std::memory_order_relaxed)) return false;
    const clock::time_point now = clock::now();
    if (now >= intended) return true;
    // Sleep in bounded slices so the stop flag is observed promptly even
    // when the next arrival is far out. The tail oversleep (scheduler
    // wakeup granularity) delays the *actual* start, and the recorded
    // intended-start latency charges it honestly.
    const auto left = intended - now;
    std::this_thread::sleep_for(left < kSlice ? left : kSlice);
  }
}

}  // namespace hyaline::svc
