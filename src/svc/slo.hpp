// Service scenario, part 4: the SLO gate.
//
// Declarative service-level objectives evaluated over a run's victim
// latency histogram and telemetry time series:
//
//   spec  := item (',' item)*
//   item  := ('p50' | 'p90' | 'p99' | 'max') '=' time     latency bound
//          | 'unreclaimed' '<' factor 'x'                 memory bound
//          | 'recovery' '<' time                          recovery bound
//
// Times use the fault-plan syntax (ms default, ns/us/ms/s suffixes),
// e.g.
// `p99=500us,unreclaimed<2x,recovery<1s`.
//
// Latency items gate EVERY scheme over the victim (unscripted) tenants'
// CO-safe histogram. The memory items take the fig_timeline stance:
// robustness is the paper's promise, so they *gate* robust schemes only
// (non-robust schemes are still measured and reported, ungated):
//
//   unreclaimed < Fx — steady-state bound: peak unreclaimed outside the
//     disturbance window (before it starts, and after the post-
//     disturbance settle point) stays within F times the pre-disturbance
//     peak, floored at the batching-slack constant check_recovery uses.
//     Growth *during* a scripted fault is expected even for robust
//     schemes (bounded != flat); the recovery item covers the return.
//   recovery < T — after the last scripted disturbance clears, the
//     unreclaimed count returns under the same limit within T.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lab/telemetry.hpp"

namespace hyaline::svc {

enum class slo_kind { p50, p90, p99, max_latency, unreclaimed, recovery };

struct slo_item {
  slo_kind kind = slo_kind::p99;
  /// Latency kinds: bound in ns. unreclaimed: the factor F. recovery:
  /// bound in ms.
  double bound = 0;
};

struct slo_spec {
  std::vector<slo_item> items;
  /// Original spec text, echoed into reports and the --json config.
  std::string text;

  bool empty() const { return items.empty(); }
};

/// Parse a --slo spec; nullopt with a message in *err on syntax errors,
/// unknown items, or duplicate kinds.
std::optional<slo_spec> parse_slo(std::string_view spec, std::string* err);

/// Everything one scheme's evaluation reads. Disturbance bounds come
/// from the tenant plan (+infinity when the swarm ran no script — the
/// memory items then bound growth over the run's second half against its
/// first, and recovery is unchecked).
struct slo_inputs {
  const lab::latency_histogram* latency = nullptr;  ///< victim tenants
  const std::vector<lab::sample_point>* timeline = nullptr;
  double disturb_start_ms = 0;
  double disturb_end_ms = 0;
  double duration_ms = 0;
  bool robust = false;  ///< scheme caps: gates the memory items
};

struct slo_verdict {
  slo_item item;
  bool gated = false;    ///< counts toward the exit status
  bool checked = false;  ///< enough data to judge (unchecked != failed)
  bool pass = false;
  double measured = 0;  ///< same unit as item.bound (limit for memory)
  double limit = 0;
  const char* note = "";  ///< why unchecked / ungated
};

std::vector<slo_verdict> evaluate_slo(const slo_spec& spec,
                                      const slo_inputs& in);

/// True if any gated, checked verdict failed — the exit-6 condition.
bool slo_violated(const std::vector<slo_verdict>& verdicts);

/// One human-readable report line, e.g.
/// "p99: 412us <= 500us [pass]" or "unreclaimed: ... [fail, ungated]".
std::string format_verdict(const slo_verdict& v);

}  // namespace hyaline::svc
