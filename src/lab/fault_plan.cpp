#include "lab/fault_plan.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "obs/trace.hpp"

namespace hyaline::lab {

/// Consume a time value with an optional unit suffix; milliseconds when
/// bare. Advances *p past the value. Negative and non-numeric input fail.
/// Exported (fault_plan.hpp): the svc tenant-script and SLO grammars
/// reuse it so all schedule specs share one time syntax.
bool parse_time_ms(const char*& p, double* out) {
  if (*p == '-') return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(p, &end);
  if (end == p || errno == ERANGE || !(v >= 0)) return false;
  p = end;
  double scale = 1.0;  // ms
  if (p[0] == 'u' && p[1] == 's') {
    scale = 1e-3;
    p += 2;
  } else if (p[0] == 'n' && p[1] == 's') {
    scale = 1e-6;
    p += 2;
  } else if (p[0] == 'm' && p[1] == 's') {
    p += 2;
  } else if (p[0] == 's') {
    scale = 1e3;
    p += 1;
  }
  *out = v * scale;
  return true;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool parse_uint(const char*& p, std::uint64_t* out) {
  if (*p < '0' || *p > '9') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(p, &end, 10);
  if (end == p || errno == ERANGE) return false;
  p = end;
  *out = v;
  return true;
}

bool fail(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
  return false;
}

/// Parse one comma-delimited event into *ev.
bool parse_event(std::string_view tok, fault_event* ev, std::string* err) {
  const std::string item(tok);  // NUL-terminated view for strto*
  const char* p = item.c_str();

  const auto starts = [&](const char* kw) {
    const std::size_t n = std::char_traits<char>::length(kw);
    return item.compare(0, n, kw) == 0 ? (p = item.c_str() + n, true)
                                       : false;
  };
  if (starts("stall:")) {
    ev->kind = fault_kind::stall;
  } else if (starts("slow:")) {
    ev->kind = fault_kind::slow;
  } else if (starts("burst:")) {
    ev->kind = fault_kind::burst;
  } else if (starts("exit:")) {
    ev->kind = fault_kind::exit_thread;
  } else if (starts("churn:")) {
    ev->kind = fault_kind::churn;
  } else {
    return fail(err, "unknown fault kind in '" + item +
                         "' (want stall/slow/burst/exit/churn)");
  }

  std::uint64_t arg = 0;
  if (!parse_uint(p, &arg)) {
    return fail(err, "missing tid/count in '" + item + "'");
  }
  if (ev->kind == fault_kind::burst) {
    if (arg == 0) return fail(err, "burst count must be > 0 in '" + item + "'");
    ev->count = arg;
  } else {
    if (arg > 1u << 20) {
      return fail(err, "implausible tid in '" + item + "'");
    }
    ev->tid = static_cast<unsigned>(arg);
  }

  if (ev->kind == fault_kind::slow) {
    if (*p != '/') {
      return fail(err, "slow wants tid/usec in '" + item + "'");
    }
    ++p;
    std::uint64_t us = 0;
    if (!parse_uint(p, &us) || us == 0 || us > 10'000'000) {
      return fail(err, "slow delay must be 1..10000000 us in '" + item + "'");
    }
    ev->delay_us = static_cast<std::uint32_t>(us);
  }

  if (*p != '@') return fail(err, "missing '@start' in '" + item + "'");
  ++p;
  if (!parse_time_ms(p, &ev->start_ms)) {
    return fail(err, "bad start time in '" + item + "'");
  }

  const bool windowed =
      ev->kind == fault_kind::stall || ev->kind == fault_kind::slow;
  if (windowed) {
    if (*p != '+') {
      return fail(err, "missing '+duration' in '" + item + "'");
    }
    ++p;
    if (item.compare(p - item.c_str(), 3, "inf") == 0) {
      if (ev->kind != fault_kind::stall) {
        return fail(err, "only stall windows may be infinite ('" + item + "')");
      }
      ev->dur_ms = kInf;
      p += 3;
    } else if (!parse_time_ms(p, &ev->dur_ms) || ev->dur_ms <= 0) {
      return fail(err, "bad duration in '" + item + "'");
    }
  }

  if (*p != '\0') {
    return fail(err, "trailing garbage in '" + item + "'");
  }
  return true;
}

}  // namespace

bool fault_plan::validate_tids(unsigned worker_threads,
                               std::string* err) const {
  for (const fault_event& e : events) {
    if (e.kind == fault_kind::burst) continue;
    if (e.tid >= worker_threads) {
      if (err != nullptr) {
        *err = "fault targets tid " + std::to_string(e.tid) +
               " but the run has only " + std::to_string(worker_threads) +
               " worker threads (tids 0.." +
               std::to_string(worker_threads - 1) + ")";
      }
      return false;
    }
  }
  return true;
}

double fault_plan::first_start_ms() const {
  double t = kInf;
  for (const fault_event& e : events) t = std::min(t, e.start_ms);
  return events.empty() ? 0 : t;
}

std::optional<double> fault_plan::last_end_ms() const {
  double t = 0;
  for (const fault_event& e : events) {
    if (std::isinf(e.dur_ms)) return std::nullopt;
    t = std::max(t, e.end_ms());
  }
  return t;
}

unsigned fault_plan::lease_headroom(unsigned worker_threads) const {
  unsigned churn = 0;
  for (const fault_event& e : events) {
    if (e.kind == fault_kind::churn) ++churn;
  }
  return worker_threads + 1 + churn;
}

std::optional<fault_plan> parse_fault_plan(std::string_view spec,
                                           std::string* err) {
  fault_plan plan;
  plan.spec = std::string(spec);
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view tok = spec.substr(pos, comma - pos);
    if (tok.empty()) {
      if (err != nullptr) *err = "empty event in fault spec";
      return std::nullopt;
    }
    fault_event ev;
    if (!parse_event(tok, &ev, err)) return std::nullopt;
    plan.events.push_back(ev);
    if (comma == spec.size()) break;
    pos = comma + 1;
  }
  if (plan.events.empty()) {
    if (err != nullptr) *err = "empty fault spec";
    return std::nullopt;
  }
  return plan;
}

fault_director::fault_director(const fault_plan& plan, unsigned threads,
                               std::function<void(unsigned)> spawn)
    : ctl_(threads), spawn_(std::move(spawn)) {
  for (const fault_event& e : plan.events) {
    switch (e.kind) {
      case fault_kind::stall:
      case fault_kind::slow:
        actions_.push_back({e.start_ms, e.kind, e.tid, 0, e.delay_us,
                            /*begin=*/true});
        if (!std::isinf(e.dur_ms)) {
          actions_.push_back({e.end_ms(), e.kind, e.tid, 0, e.delay_us,
                              /*begin=*/false});
        }
        break;
      case fault_kind::burst:
      case fault_kind::exit_thread:
      case fault_kind::churn:
        actions_.push_back({e.start_ms, e.kind, e.tid, e.count, 0,
                            /*begin=*/true});
        break;
    }
  }
  std::stable_sort(actions_.begin(), actions_.end(),
                   [](const action& a, const action& b) {
                     return a.t_ms < b.t_ms;
                   });
  // Open t=0 stall/slow windows right now, before any worker runs: a
  // thread meant to be stalled from the start (the legacy
  // permanently-stalled mode is stall:tid@0+inf) must not sneak in real
  // operations while the clock thread waits to be scheduled. One-shot
  // kinds (burst/exit/churn) stay on the clock — churn's spawn callback
  // must not run from the constructor.
  for (action& a : actions_) {
    if (a.t_ms > 0) break;
    if (!a.begin) continue;
    if (a.kind == fault_kind::stall) {
      ctl_[a.tid]->stall_depth.fetch_add(1, std::memory_order_relaxed);
      a.pre_applied = true;
    } else if (a.kind == fault_kind::slow) {
      ctl_[a.tid]->slow_us.fetch_add(a.delay_us, std::memory_order_relaxed);
      a.pre_applied = true;
    }
  }
}

fault_director::~fault_director() { stop(); }

void fault_director::start() {
  clock_ = std::thread([this] { run_clock(); });
}

void fault_director::stop() {
  quit_.store(true, std::memory_order_relaxed);
  if (clock_.joinable()) clock_.join();
  released_.store(true, std::memory_order_relaxed);
}

void fault_director::wait_stall_end(unsigned tid) const {
  const auto& c = *ctl_[tid];
  while (c.stall_depth.load(std::memory_order_relaxed) != 0 &&
         !released_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

std::uint64_t fault_director::claim_burst(std::uint64_t max_n) {
  std::uint64_t cur = burst_.load(std::memory_order_relaxed);
  while (cur != 0) {
    const std::uint64_t take = cur < max_n ? cur : max_n;
    if (burst_.compare_exchange_weak(cur, cur - take,
                                     std::memory_order_relaxed)) {
      return take;
    }
  }
  return 0;
}

void fault_director::run_clock() {
  obs::name_thread("fault-director");
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t next = 0;
  while (!quit_.load(std::memory_order_relaxed)) {
    const double now_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            std::chrono::steady_clock::now() - t0)
            .count();
    while (next < actions_.size() && actions_[next].t_ms <= now_ms) {
      const action& a = actions_[next++];
      if (a.pre_applied) continue;
      control& c = *ctl_[a.tid];
      switch (a.kind) {
        case fault_kind::stall:
          if (a.begin) {
            c.stall_depth.fetch_add(1, std::memory_order_relaxed);
          } else {
            c.stall_depth.fetch_sub(1, std::memory_order_relaxed);
          }
          break;
        case fault_kind::slow:
          // Additive so overlapping windows compose instead of clobbering.
          if (a.begin) {
            c.slow_us.fetch_add(a.delay_us, std::memory_order_relaxed);
          } else {
            c.slow_us.fetch_sub(a.delay_us, std::memory_order_relaxed);
          }
          break;
        case fault_kind::burst:
          burst_.fetch_add(a.count, std::memory_order_relaxed);
          break;
        case fault_kind::churn:
          c.exit_gen.fetch_add(1, std::memory_order_relaxed);
          if (spawn_) spawn_(a.tid);
          break;
        case fault_kind::exit_thread:
          c.exit_gen.fetch_add(1, std::memory_order_relaxed);
          break;
      }
    }
    if (next == actions_.size()) {
      // Schedule exhausted; linger only to keep open-ended stalls pinned
      // until stop() releases them.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

}  // namespace hyaline::lab
