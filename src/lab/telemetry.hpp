// Robustness lab, part 2: time-series telemetry.
//
// The workload loops publish per-thread operation counts into a ring of
// padded sample slots (one relaxed fetch_add per op); a sampler thread
// aggregates them at a fixed cadence (default 10 ms) together with the
// domain's retire/free counters into sample_point records:
//
//   { t_ms, mops, ops, retired, freed, unreclaimed, active_threads }
//
// A single end-of-run scalar cannot distinguish a scheme that spikes to
// 10x steady-state memory mid-run and recovers from one that never
// spikes; the series can, and check_recovery() turns "returns to
// baseline after the last fault clears" into a pass/fail property.
//
// Per-op latency rides alongside in a log-bucketed histogram
// (latency_histogram): bucket b >= 1 covers [2^(b-1), 2^b - 1] ns, with
// linear interpolation inside a bucket for the p50/p90/p99 estimates and
// the exact maximum tracked separately.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/align.hpp"
#include "smr/stats.hpp"

namespace hyaline::lab {

struct sample_point {
  double t_ms = 0;               ///< since run start
  double mops = 0;               ///< interval throughput, Mops/s
  std::uint64_t ops = 0;         ///< cumulative operations
  std::uint64_t retired = 0;     ///< cumulative domain counters
  std::uint64_t freed = 0;
  std::uint64_t unreclaimed = 0;
  unsigned active_threads = 0;
};

/// Log-bucketed latency histogram. Not thread-safe: each worker records
/// into its own instance and merges into a shared one at thread exit.
class latency_histogram {
 public:
  /// bit_width(uint64) is at most 64, plus the dedicated zero bucket.
  static constexpr unsigned kBuckets = 65;

  /// Bucket 0 holds exactly {0}; bucket b >= 1 holds [2^(b-1), 2^b - 1].
  static constexpr unsigned bucket_of(std::uint64_t ns) {
    return static_cast<unsigned>(std::bit_width(ns));
  }

  /// Inclusive value range of a bucket.
  static constexpr std::uint64_t bucket_lo(unsigned b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }
  static constexpr std::uint64_t bucket_hi(unsigned b) {
    return b == 0 ? 0 : (std::uint64_t{1} << (b - 1)) * 2 - 1;
  }

  void record(std::uint64_t ns) {
    ++counts_[bucket_of(ns)];
    ++total_;
    if (ns > max_) max_ = ns;
  }

  void merge(const latency_histogram& o) {
    for (unsigned b = 0; b < kBuckets; ++b) counts_[b] += o.counts_[b];
    total_ += o.total_;
    if (o.max_ > max_) max_ = o.max_;
  }

  /// Rehydrate from externally-accumulated bucket counts that share this
  /// class's geometry — smr::lag_counters records retire->free lag into
  /// the same 65 log2 buckets precisely so its snapshots can be fed back
  /// through percentile() here instead of duplicating the quantile math.
  static latency_histogram from_counts(
      const std::uint64_t (&counts)[kBuckets], std::uint64_t max_ns) {
    latency_histogram h;
    for (unsigned b = 0; b < kBuckets; ++b) {
      h.counts_[b] = counts[b];
      h.total_ += counts[b];
    }
    h.max_ = max_ns;
    return h;
  }

  /// Quantile estimate in ns, q in [0, 1]; linear interpolation within
  /// the covering bucket. 0 when empty.
  double percentile(double q) const;

  std::uint64_t total() const { return total_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t bucket_count(unsigned b) const { return counts_[b]; }

 private:
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
};

/// Aggregates per-thread op counters and the domain's reclamation
/// counters into a time series. Worker side is wait-free (one relaxed
/// fetch_add per op on a thread-private cache line); the sampler thread
/// is the only writer of the series.
class telemetry_collector {
 public:
  /// `slots` = highest worker tid + 1; `stats` = the domain's counters
  /// (outlives the collector); `sample_ms` = cadence.
  telemetry_collector(unsigned slots, unsigned sample_ms,
                      const smr::stats* stats);

  /// Multi-domain variant: each sample sums retired/freed across every
  /// stats block (all must outlive the collector). The svc shard router
  /// owns one domain per shard; the service timeline is the aggregate.
  telemetry_collector(unsigned slots, unsigned sample_ms,
                      std::vector<const smr::stats*> stats);

  ~telemetry_collector();

  telemetry_collector(const telemetry_collector&) = delete;
  telemetry_collector& operator=(const telemetry_collector&) = delete;

  /// Launch the sampler; the series' t=0 is now.
  void start();

  /// Take a final sample and join the sampler. Idempotent.
  void stop();

  // --- worker side -------------------------------------------------------

  void thread_enter() { active_.fetch_add(1, std::memory_order_relaxed); }
  void thread_exit() { active_.fetch_sub(1, std::memory_order_relaxed); }

  void on_op(unsigned tid) {
    slots_[tid]->fetch_add(1, std::memory_order_relaxed);
  }

  /// Valid after stop().
  const std::vector<sample_point>& points() const { return points_; }
  std::vector<sample_point> take_points() { return std::move(points_); }

 private:
  void run_sampler();
  void take_sample(double t_ms, double interval_ms);

  std::vector<padded<std::atomic<std::uint64_t>>> slots_;
  std::vector<const smr::stats*> stats_;
  unsigned sample_ms_;
  std::atomic<unsigned> active_{0};
  std::atomic<bool> quit_{false};
  std::vector<sample_point> points_;
  std::uint64_t prev_ops_ = 0;
  double prev_t_ms_ = 0;
  std::thread sampler_;
};

/// Verdict of the post-fault recovery check (fig_timeline's checked
/// property): after the last fault clears, a robust scheme's unreclaimed
/// count must return to within 2x its pre-fault baseline (or an absolute
/// floor covering batching slack, whichever is larger).
struct recovery_verdict {
  bool checked = false;    ///< false = not enough samples to judge
  bool recovered = false;
  double baseline = 0;     ///< peak unreclaimed before the first fault
  double post = 0;         ///< mean unreclaimed over the settled tail
  double limit = 0;        ///< the bound `post` was held to
  const char* why_unchecked = "";
};

/// Judge recovery from a sampled series. Baseline = peak unreclaimed of
/// samples before `fault_start_ms` (the quantity the paper's robustness
/// bound caps; the mean of a batch-granular counter is too noisy at
/// short scales); the settled tail = mean over samples in the second
/// half of (fault_end_ms, duration_ms]. Unchecked (not failed) when
/// either window holds no samples.
recovery_verdict check_recovery(const std::vector<sample_point>& points,
                                double fault_start_ms, double fault_end_ms,
                                double duration_ms);

}  // namespace hyaline::lab
