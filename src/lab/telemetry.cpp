#include "lab/telemetry.hpp"

#include <chrono>

#include "obs/trace.hpp"

namespace hyaline::lab {

double latency_histogram::percentile(double q) const {
  if (total_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target observation (1-based, ceil), then walk buckets.
  const std::uint64_t rank =
      std::uint64_t(q * static_cast<double>(total_ - 1)) + 1;
  std::uint64_t cum = 0;
  for (unsigned b = 0; b < kBuckets; ++b) {
    if (counts_[b] == 0) continue;
    if (cum + counts_[b] >= rank) {
      const double within =
          static_cast<double>(rank - cum - 1) /
          static_cast<double>(counts_[b]);
      const double lo = static_cast<double>(bucket_lo(b));
      const double hi = static_cast<double>(bucket_hi(b));
      const double v = lo + within * (hi - lo);
      // The top occupied bucket spans up to 2x the largest observation;
      // interpolating past max_ would report a p99 above the max column.
      const double cap = static_cast<double>(max_);
      return max_ != 0 && v > cap ? cap : v;
    }
    cum += counts_[b];
  }
  return static_cast<double>(max_);
}

telemetry_collector::telemetry_collector(unsigned slots, unsigned sample_ms,
                                         const smr::stats* stats)
    : telemetry_collector(slots, sample_ms,
                          std::vector<const smr::stats*>{stats}) {}

telemetry_collector::telemetry_collector(unsigned slots, unsigned sample_ms,
                                         std::vector<const smr::stats*> stats)
    : slots_(slots == 0 ? 1 : slots),
      stats_(std::move(stats)),
      sample_ms_(sample_ms == 0 ? 10 : sample_ms) {}

telemetry_collector::~telemetry_collector() { stop(); }

void telemetry_collector::start() {
  sampler_ = std::thread([this] { run_sampler(); });
}

void telemetry_collector::stop() {
  quit_.store(true, std::memory_order_relaxed);
  if (sampler_.joinable()) sampler_.join();
}

void telemetry_collector::take_sample(double t_ms, double interval_ms) {
  std::uint64_t ops = 0;
  for (const auto& s : slots_) {
    ops += s->load(std::memory_order_relaxed);
  }
  sample_point p;
  p.t_ms = t_ms;
  p.ops = ops;
  p.mops = interval_ms > 0
               ? static_cast<double>(ops - prev_ops_) / (interval_ms * 1e3)
               : 0;
  for (const smr::stats* s : stats_) {
    p.retired += s->retired.load(std::memory_order_relaxed);
    p.freed += s->freed.load(std::memory_order_relaxed);
  }
  // Summed from the snapshot above, not per-domain unreclaimed(): the
  // per-domain clamp-at-zero would hide one shard's deficit against
  // another's backlog.
  p.unreclaimed = p.retired > p.freed ? p.retired - p.freed : 0;
  p.active_threads = active_.load(std::memory_order_relaxed);
  points_.push_back(p);
  prev_ops_ = ops;
  prev_t_ms_ = t_ms;
}

void telemetry_collector::run_sampler() {
  obs::name_thread("sampler");
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const auto elapsed_ms = [&] {
    return std::chrono::duration_cast<
               std::chrono::duration<double, std::milli>>(clock::now() - t0)
        .count();
  };
  // Fixed cadence relative to t0, so a slow sample does not drift the
  // whole series (the recovery check compares absolute windows).
  std::uint64_t tick = 1;
  while (!quit_.load(std::memory_order_relaxed)) {
    const double due = static_cast<double>(tick * sample_ms_);
    double now = elapsed_ms();
    while (now < due && !quit_.load(std::memory_order_relaxed)) {
      const double left = due - now;
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          left < 1.0 ? left : 1.0));
      now = elapsed_ms();
    }
    if (quit_.load(std::memory_order_relaxed)) break;
    take_sample(now, now - prev_t_ms_);
    tick = static_cast<std::uint64_t>(now / sample_ms_) + 1;
  }
  // Closing sample so the series always covers the full run — unless a
  // tick fired just before quit: two samples microseconds apart would
  // collide at the JSON's fixed-precision t_ms and carry a meaningless
  // interval throughput.
  const double now = elapsed_ms();
  if (points_.empty() || now - prev_t_ms_ >= sample_ms_ * 0.5) {
    take_sample(now, now - prev_t_ms_);
  }
}

recovery_verdict check_recovery(const std::vector<sample_point>& points,
                                double fault_start_ms, double fault_end_ms,
                                double duration_ms) {
  recovery_verdict v;
  // Settle window: the second half of the fault-free tail, so transient
  // post-fault reclamation backlog is not misread as a leak.
  const double settle_from = fault_end_ms + (duration_ms - fault_end_ms) / 2;
  double base_peak = 0, post_sum = 0;
  std::uint64_t base_n = 0, post_n = 0;
  for (const sample_point& p : points) {
    if (p.t_ms < fault_start_ms) {
      const double u = static_cast<double>(p.unreclaimed);
      if (u > base_peak) base_peak = u;
      ++base_n;
    } else if (p.t_ms >= settle_from) {
      post_sum += static_cast<double>(p.unreclaimed);
      ++post_n;
    }
  }
  if (base_n == 0) {
    v.why_unchecked = "no samples before the first fault";
    return v;
  }
  if (post_n == 0) {
    v.why_unchecked = "no samples after the faults settled";
    return v;
  }
  v.checked = true;
  // Baseline = the pre-fault PEAK, not the mean: batching schemes
  // oscillate with an amplitude comparable to the mean (a batch flush
  // swings the counter by batch_min x slots), and the peak is the
  // quantity the paper's robustness bound actually caps. The settled
  // tail is averaged — a mean stuck above 2x the worst pre-fault sample
  // is a real failure to recover, not noise.
  v.baseline = base_peak;
  v.post = post_sum / static_cast<double>(post_n);
  // The floor absorbs batching slack when the pre-fault window was
  // nearly idle and the baseline is a handful of nodes.
  constexpr double kFloor = 2048;
  v.limit = v.baseline * 2 > kFloor ? v.baseline * 2 : kFloor;
  v.recovered = v.post <= v.limit;
  return v;
}

}  // namespace hyaline::lab
