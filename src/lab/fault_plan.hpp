// Robustness lab, part 1: the fault-injection scheduler.
//
// A fault plan is a declarative schedule of transient faults parsed from a
// `--faults` CLI spec and executed against a running workload by a lab
// clock thread. The workload loops poll per-thread atomic control words at
// operation boundaries, so injection never blocks the measured path.
//
// Spec grammar (times default to milliseconds; `us`/`ms`/`s` suffixes):
//
//   spec   := event (',' event)*
//   event  := 'stall' ':' tid '@' start '+' dur     dur may be 'inf'
//           | 'slow'  ':' tid '/' usec '@' start '+' dur
//           | 'burst' ':' count '@' start
//           | 'exit'  ':' tid '@' start
//           | 'churn' ':' tid '@' start
//
//   stall  — thread `tid` enters a guard, touches one node, and blocks
//            holding the guard for `dur` (the paper's stalled-thread
//            protocol; the harness's old permanently-stalled mode is the
//            degenerate case `stall:tid@0+inf`).
//   slow   — thread `tid` sleeps `usec` microseconds at every operation
//            boundary inside the window (overlapping windows add up).
//   burst  — `count` extra retire-generating operations (remove+reinsert
//            pairs on sets, push+pop pairs on containers) are distributed
//            to the workers at time `start`.
//   exit   — thread `tid` leaves the run permanently (its OS thread
//            returns, releasing its SMR thread identity).
//   churn  — like exit, but a replacement thread joins immediately,
//            exercising thread-identity recycling mid-run.
//
// Example: `stall:2@500ms+300ms,churn:4@1s`.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/align.hpp"

namespace hyaline::lab {

enum class fault_kind { stall, slow, burst, exit_thread, churn };

struct fault_event {
  fault_kind kind = fault_kind::stall;
  unsigned tid = 0;            ///< stall/slow/exit/churn target
  std::uint64_t count = 0;     ///< burst: retire-pair count
  std::uint32_t delay_us = 0;  ///< slow: injected per-op delay
  double start_ms = 0;
  /// stall/slow window length; +infinity = never ends (stall only).
  double dur_ms = 0;

  double end_ms() const { return start_ms + dur_ms; }
};

struct fault_plan {
  std::vector<fault_event> events;
  /// The original spec text, echoed into the --json config block.
  std::string spec;

  bool empty() const { return events.empty(); }

  /// Reject events targeting a thread id the workload will not run.
  bool validate_tids(unsigned worker_threads, std::string* err) const;

  /// Start of the earliest event (0 when empty).
  double first_start_ms() const;

  /// When the last fault clears, or nullopt if any event never ends —
  /// the recovery check needs a fault-free tail to measure.
  std::optional<double> last_end_ms() const;

  /// Scheme max_threads headroom for a run driving `worker_threads`
  /// workers under this plan: the workers, the main thread's transparent
  /// tid lease (it prefills/drains), and one lease of transient overlap
  /// per churn event — a replacement worker leases its thread identity
  /// before its predecessor's lease returns. The one formula both the
  /// timeline figure and the linearizability check driver size their
  /// domains with.
  unsigned lease_headroom(unsigned worker_threads) const;
};

/// Parse a --faults spec. Returns nullopt with a message in *err on any
/// syntax or range error (unknown kind, missing '@', zero burst count,
/// zero slow delay, non-positive window, ...).
std::optional<fault_plan> parse_fault_plan(std::string_view spec,
                                           std::string* err);

/// Consume a time value with an optional `us`/`ms`/`s` suffix
/// (milliseconds when bare), advancing *p past it; false on negative or
/// non-numeric input. Shared with the svc tenant-script and SLO grammars
/// so every schedule spec in the suite spells time the same way.
bool parse_time_ms(const char*& p, double* out);

/// Executes a fault plan against one workload repetition. The director's
/// clock thread walks the schedule and flips per-thread control words;
/// workers poll them at operation boundaries through the accessors below,
/// which are all wait-free except the deliberate in-guard stall wait.
class fault_director {
 public:
  /// `threads` = highest worker tid + 1. `spawn`, called from the clock
  /// thread at churn events, must start a replacement worker for the tid
  /// (capture the generation with `generation(tid)` before launching).
  fault_director(const fault_plan& plan, unsigned threads,
                 std::function<void(unsigned)> spawn = {});
  ~fault_director();

  fault_director(const fault_director&) = delete;
  fault_director& operator=(const fault_director&) = delete;

  /// Launch the clock thread; the schedule's t=0 is now.
  void start();

  /// End the run: releases every in-guard stall wait and joins the clock
  /// thread. Call after flipping the workload's stop flag and before
  /// joining workers (a stalled worker cannot observe stop until
  /// released). Idempotent.
  void stop();

  // --- worker-side polls (call at operation boundaries) ------------------

  /// True once an exit/churn event retired this worker's generation; the
  /// worker must leave its loop through the normal exit path.
  bool exited(unsigned tid, std::uint32_t my_gen) const {
    return ctl_[tid]->exit_gen.load(std::memory_order_relaxed) != my_gen;
  }

  /// Current generation for `tid` (a replacement worker's my_gen).
  std::uint32_t generation(unsigned tid) const {
    return ctl_[tid]->exit_gen.load(std::memory_order_relaxed);
  }

  bool stalled(unsigned tid) const {
    return ctl_[tid]->stall_depth.load(std::memory_order_relaxed) != 0;
  }

  /// Block while the stall window is open (or until stop()). The caller
  /// holds a guard, so whatever the scheme's reservation pins stays
  /// pinned for the whole window — that is the fault.
  void wait_stall_end(unsigned tid) const;

  /// Injected per-op delay, µs (0 = full speed).
  std::uint32_t slow_delay_us(unsigned tid) const {
    return ctl_[tid]->slow_us.load(std::memory_order_relaxed);
  }

  bool burst_pending() const {
    return burst_.load(std::memory_order_relaxed) != 0;
  }

  /// Claim up to `max_n` units of pending burst work (retire pairs the
  /// caller performs). Chunked so concurrent workers share a burst.
  std::uint64_t claim_burst(std::uint64_t max_n);

 private:
  struct control {
    std::atomic<std::uint32_t> stall_depth{0};
    std::atomic<std::uint32_t> slow_us{0};
    std::atomic<std::uint32_t> exit_gen{0};
  };

  /// One scheduled control-word flip (a stall window expands to two).
  struct action {
    double t_ms;
    fault_kind kind;
    unsigned tid;
    std::uint64_t count;
    std::uint32_t delay_us;
    bool begin;  ///< window open vs close (stall/slow)
    /// Applied synchronously in the constructor (t=0 stall/slow opens,
    /// including the legacy permanently-stalled mode) so their effect
    /// does not wait on the clock thread being scheduled; the clock
    /// skips them.
    bool pre_applied = false;
  };

  void run_clock();

  std::vector<padded<control>> ctl_;
  std::vector<action> actions_;  ///< sorted by t_ms
  std::function<void(unsigned)> spawn_;
  std::atomic<std::uint64_t> burst_{0};
  std::atomic<bool> quit_{false};
  std::atomic<bool> released_{false};
  std::thread clock_;
};

}  // namespace hyaline::lab
