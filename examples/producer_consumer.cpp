// Producer/consumer pipeline over the container family: jobs flow through
// a Michael–Scott MPMC queue, results land on a Treiber stack, and one
// Hyaline domain reclaims both structures' nodes (typed retire — the two
// node types share the same per-thread batches).
//
//   producers --> [ms_queue jobs] --> workers --> [treiber_stack results]
//
// Producers enqueue kJobs jobs each; workers dequeue, "process" (square
// the payload), and push the result. When the queue is drained and all
// producers are done, the main thread pops every result and checks the
// ledger: exactly kProducers * kJobs results, with the expected checksum.
// Exits non-zero on any mismatch, so the CTest smoke run is a real check.
//
// Build: cmake --build build && ./build/example_producer_consumer

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "ds/ms_queue.hpp"
#include "ds/treiber_stack.hpp"
#include "smr/hyaline.hpp"

int main() {
  using domain = hyaline::domain;
  domain dom(hyaline::config{.slots = 8});
  hyaline::ds::ms_queue<domain> jobs(dom);
  hyaline::ds::treiber_stack<domain> results(dom);

  constexpr unsigned kProducers = 2;
  constexpr unsigned kWorkers = 2;
  constexpr std::uint64_t kJobs = 20000;  // per producer

  std::atomic<unsigned> producers_live{kProducers};
  std::vector<std::thread> threads;

  for (unsigned p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kJobs; ++i) {
        domain::guard g(dom);
        jobs.enqueue(g, p * kJobs + i);
      }
      producers_live.fetch_sub(1, std::memory_order_release);
      dom.flush();
    });
  }

  for (unsigned w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&] {
      for (;;) {
        domain::guard g(dom);
        std::uint64_t job;
        if (jobs.try_dequeue(g, job)) {
          results.push(g, job * job);  // the "work"
        } else if (producers_live.load(std::memory_order_acquire) == 0) {
          // Queue observed empty *after* every producer finished: done.
          // (The other order could miss jobs enqueued in between.)
          std::uint64_t last;
          if (!jobs.try_dequeue(g, last)) break;
          results.push(g, last * last);
        }
      }
      dom.flush();
    });
  }
  for (auto& th : threads) th.join();

  // Drain the results and close the ledger.
  std::uint64_t count = 0;
  std::uint64_t checksum = 0;
  {
    domain::guard g(dom);
    std::uint64_t v;
    while (results.try_pop(g, v)) {
      ++count;
      checksum += v;
    }
  }
  dom.flush();

  std::uint64_t expected_sum = 0;
  for (std::uint64_t j = 0; j < kProducers * kJobs; ++j) {
    expected_sum += j * j;  // uint64 wraparound on both sides: still equal
  }

  const auto& c = dom.counters();
  std::printf("jobs=%llu results=%llu retired=%llu freed=%llu\n",
              static_cast<unsigned long long>(kProducers * kJobs),
              static_cast<unsigned long long>(count),
              static_cast<unsigned long long>(c.retired.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(c.freed.load(std::memory_order_relaxed)));

  if (count != kProducers * kJobs) {
    std::fprintf(stderr, "lost or duplicated results!\n");
    return 1;
  }
  if (checksum != expected_sum) {
    std::fprintf(stderr, "checksum mismatch: corrupted payloads!\n");
    return 1;
  }
  dom.drain();
  if (c.retired.load(std::memory_order_relaxed) != c.freed.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "leak: retired != freed after drain\n");
    return 1;
  }
  std::printf("pipeline ok\n");
  return 0;
}
