// Sharded read-mostly cache under a small tenant swarm.
//
// A thin demonstration of the service scenario (src/svc): a
// shard_router over Hyaline — each shard owning its own domain — driven
// by a few open-loop tenants (svc/service.hpp) with a scripted
// stall-in-guard window on one of them, then judged against a small SLO
// spec (svc/slo.hpp). The full matrix, CLI, and CI gate live in
// bench/fig_service.cpp; this is the minimal programmatic use.

#include <cstdio>
#include <string>

#include "smr/hyaline.hpp"
#include "svc/service.hpp"
#include "svc/slo.hpp"
#include "svc/tenant.hpp"

int main() {
  using namespace hyaline::svc;

  // One tenant stalls inside a guard for 100 ms mid-run; Hyaline is not
  // robust, so the memory SLOs report without gating, but the leak gate
  // and the CO-safe latency bound hold for every scheme.
  std::string err;
  const auto script = parse_tenant_plan("stall:1@150ms+100ms", &err);
  if (!script.has_value()) {
    std::fprintf(stderr, "script: %s\n", err.c_str());
    return 1;
  }

  service_config cfg;
  cfg.shards = 2;
  cfg.tenants = 4;
  cfg.rate_ops_s = 8000;
  cfg.zipf_theta = 0.9;
  cfg.key_range = 20000;
  cfg.prefill = 10000;
  cfg.duration_ms = 400;
  cfg.sample_ms = 20;
  cfg.churn_period_ms = 150;  // connections recycle while the swarm runs
  cfg.script = &*script;

  const service_result r =
      run_service<hyaline::domain>(hyaline::harness::scheme_params{}, cfg);

  const shard_totals totals = aggregate(r.shards);
  std::printf("cache: %.3f Mops/s, %llu ops over %u shards "
              "(imbalance %.2f), hit rate %.1f%%\n",
              r.mops, static_cast<unsigned long long>(r.ops), cfg.shards,
              totals.imbalance,
              totals.gets > 0
                  ? 100.0 * static_cast<double>(totals.hits) /
                        static_cast<double>(totals.gets)
                  : 0.0);
  std::printf("victim p99 %.0f us over %llu ops (CO-safe: intended-start "
              "latency)\n",
              r.victim_hist.percentile(0.99) / 1e3,
              static_cast<unsigned long long>(r.victim_hist.total()));

  if (r.retired != r.freed) {
    std::fprintf(stderr, "leak: retired %llu != freed %llu\n",
                 static_cast<unsigned long long>(r.retired),
                 static_cast<unsigned long long>(r.freed));
    return 1;
  }

  const auto slo = parse_slo("p99=250ms,unreclaimed<8x,recovery<1s", &err);
  if (!slo.has_value()) {
    std::fprintf(stderr, "slo: %s\n", err.c_str());
    return 1;
  }
  slo_inputs in;
  in.latency = &r.victim_hist;
  in.timeline = &r.timeline;
  in.disturb_start_ms = script->first_start_ms();
  in.disturb_end_ms = script->last_end_ms();
  in.duration_ms = cfg.duration_ms;
  in.robust = false;  // Hyaline: memory items report, latency items gate
  const auto verdicts = evaluate_slo(*slo, in);
  for (const slo_verdict& v : verdicts) {
    std::printf("  %s\n", format_verdict(v).c_str());
  }
  return slo_violated(verdicts) ? 1 : 0;
}
