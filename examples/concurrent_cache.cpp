// Read-mostly cache on the Bonsai tree, with trimming.
//
// Models the workload of Appendix A (90% get / 10% put) on the
// self-balancing snapshot tree, and demonstrates §3.3 trimming: a reader
// that performs *runs* of operations keeps one guard open and calls
// trim() between operations — logically leave+enter without touching the
// slot head, so previously retired nodes still get reclaimed promptly.

#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "ds/bonsai_tree.hpp"
#include "smr/hyaline.hpp"

int main() {
  // Small slot count on purpose: trim is the paper's answer for keeping k
  // small without paying enter/leave contention (Figure 10b).
  hyaline::domain dom(hyaline::config{.slots = 4});
  hyaline::ds::bonsai_tree<hyaline::domain> cache(dom);

  constexpr std::uint64_t kRange = 20000;
  constexpr unsigned kThreads = 4;
  constexpr unsigned kOpsPerThread = 50000;

  // Warm the cache.
  {
    hyaline::domain::guard g(dom);
    hyaline::xoshiro256 rng(1);
    for (std::uint64_t i = 0; i < kRange / 2; ++i) {
      cache.insert(g, rng.below(kRange), i);
    }
  }

  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      hyaline::xoshiro256 rng(t + 99);
      std::uint64_t h = 0, m = 0;
      // One guard per batch of operations; trim() after each op keeps
      // reclamation timely while avoiding per-op enter/leave.
      hyaline::domain::guard g(dom);
      for (unsigned i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t key = rng.below(kRange);
        const std::uint64_t dice = rng.below(100);
        if (dice < 90) {
          std::uint64_t v = 0;
          (cache.get(g, key, v) ? h : m)++;
        } else if (dice < 95) {
          cache.insert(g, key, key);
        } else {
          cache.remove(g, key);
        }
        g.trim();
      }
      hits.fetch_add(h, std::memory_order_relaxed);
      misses.fetch_add(m, std::memory_order_relaxed);
      dom.flush();
    });
  }
  for (auto& th : threads) th.join();

  std::printf("cache size: %zu, hits: %llu, misses: %llu\n",
              cache.unsafe_size(),
              static_cast<unsigned long long>(hits.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(misses.load(std::memory_order_relaxed)));
  const auto& c = dom.counters();
  std::printf("retired=%llu freed=%llu unreclaimed-before-drain=%llu\n",
              static_cast<unsigned long long>(c.retired.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(c.freed.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(c.unreclaimed()));
  dom.drain();
  return 0;
}
